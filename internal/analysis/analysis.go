package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Analyzer is one static check. Per-package analyzers set Run, which
// inspects a single type-checked package; whole-program analyzers set
// RunProgram instead, which sees every loaded package at once (the
// shape a cross-package lock-order graph needs). Exactly one of the
// two must be non-nil.
type Analyzer struct {
	// Name identifies the analyzer in reports and //lint:ignore
	// directives.
	Name string
	// Doc is a one-line description shown by coheralint -list.
	Doc string
	// Run performs a per-package analysis.
	Run func(*Pass)
	// RunProgram performs a whole-program analysis over every loaded
	// package in one invocation.
	RunProgram func(*ProgramPass)
}

// Pass carries one analyzer's view of one package plus the report sink.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExprString renders an expression compactly for use in messages.
func (p *Pass) ExprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Pkg.Fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// ProgramPass carries a whole-program analyzer's view of every loaded
// package plus the report sink.
type ProgramPass struct {
	// Pkgs are the packages under analysis, sorted by import path. They
	// share one token.FileSet.
	Pkgs []*Package

	scopes   []string
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Fset returns the file set shared by every package in the pass (nil
// when the pass is empty).
func (p *ProgramPass) Fset() *token.FileSet {
	if len(p.Pkgs) == 0 {
		return nil
	}
	return p.Pkgs[0].Fset
}

// InScope reports whether findings in the given package should be
// reported, per the Configured scopes the analyzer runs under. The
// whole program is still visible for graph building; scopes only gate
// reporting.
func (p *ProgramPass) InScope(pkgPath string) bool {
	return Configured{Scopes: p.scopes}.applies(pkgPath)
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportAt(p.Fset().Position(pos), format, args...)
}

// ReportAt records a finding at an already-resolved position — the
// hook for diagnostics anchored outside loaded sources (a stale line
// in a golden file).
func (p *ProgramPass) ReportAt(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, keyed by resolved file:line:col.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the canonical "file:line:col: [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Configured pairs an analyzer with the package scope it applies to.
type Configured struct {
	Analyzer *Analyzer
	// Scopes restricts the analyzer to packages whose import path
	// contains one of the listed fragments (empty = every package).
	Scopes []string
}

// applies reports whether the analyzer runs on the given package path.
func (c Configured) applies(pkgPath string) bool {
	if len(c.Scopes) == 0 {
		return true
	}
	for _, s := range c.Scopes {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

// Timing is one analyzer's cumulative wall time across every package
// it ran on.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// Run executes every configured analyzer over every package, applies
// //lint:ignore directives, and returns the surviving diagnostics sorted
// by position. Malformed directives (no reason) are reported under the
// reserved analyzer name "lintdir".
func Run(pkgs []*Package, suite []Configured) []Diagnostic {
	diags, _ := RunTimed(pkgs, suite)
	return diags
}

// RunTimed is Run plus per-analyzer wall times, in suite order — the
// numbers coheralint prints so the gate's latency budget stays visible
// as the suite grows.
func RunTimed(pkgs []*Package, suite []Configured) ([]Diagnostic, []Timing) {
	var diags []Diagnostic
	var ignores []ignoreDirective
	elapsed := make(map[string]time.Duration)
	for _, pkg := range pkgs {
		dirs, bad := collectIgnores(pkg)
		ignores = append(ignores, dirs...)
		diags = append(diags, bad...)
		for _, cfg := range suite {
			if cfg.Analyzer.Run == nil || !cfg.applies(pkg.Path) {
				continue
			}
			pass := &Pass{Pkg: pkg, analyzer: cfg.Analyzer, diags: &diags}
			start := time.Now()
			cfg.Analyzer.Run(pass)
			elapsed[cfg.Analyzer.Name] += time.Since(start)
		}
	}
	// Whole-program analyzers run once, after every package's ignore
	// directives are on the table.
	for _, cfg := range suite {
		if cfg.Analyzer.RunProgram == nil {
			continue
		}
		pass := &ProgramPass{Pkgs: pkgs, scopes: cfg.Scopes, analyzer: cfg.Analyzer, diags: &diags}
		start := time.Now()
		cfg.Analyzer.RunProgram(pass)
		elapsed[cfg.Analyzer.Name] += time.Since(start)
	}
	var timings []Timing
	for _, cfg := range suite {
		timings = append(timings, Timing{Name: cfg.Analyzer.Name, Elapsed: elapsed[cfg.Analyzer.Name]})
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, ignores) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, timings
}

// ignoreDirective is one parsed //lint:ignore comment. It suppresses
// diagnostics of the named analyzer ("*" = all) on the directive's own
// line and the line directly below it.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
}

// collectIgnores parses every //lint:ignore directive in the package.
// Directives without a reason are returned as diagnostics.
func collectIgnores(pkg *Package) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "lintdir",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: need \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				dirs = append(dirs, ignoreDirective{file: pos.Filename, line: pos.Line, analyzer: fields[0]})
			}
		}
	}
	return dirs, bad
}

// suppressed reports whether a directive covers the diagnostic.
func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	if d.Analyzer == "lintdir" {
		return false
	}
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename {
			continue
		}
		if dir.analyzer != "*" && dir.analyzer != d.Analyzer {
			continue
		}
		if d.Pos.Line == dir.line || d.Pos.Line == dir.line+1 {
			return true
		}
	}
	return false
}

// DefaultSuite is the project's analyzer configuration: the hazards each
// analyzer hunts are concentrated in specific layers, so scopes keep the
// signal high (see doc.go for the rationale per analyzer).
func DefaultSuite() []Configured {
	return []Configured{
		{Analyzer: LockSafe},
		{Analyzer: ErrDrop, Scopes: []string{"internal/", "cmd/coherad"}},
		{Analyzer: CtxLeak, Scopes: []string{
			"internal/federation", "internal/remote", "internal/wrapper",
			"internal/mview", "internal/warehouse", "internal/cache",
		}},
		{Analyzer: SleepSync},
		{Analyzer: BodyClose, Scopes: []string{"internal/wrapper", "internal/remote"}},
		{Analyzer: StreamClose, Scopes: []string{
			"internal/storage", "internal/exec", "internal/wrapper",
			"internal/remote", "internal/federation", "internal/bench",
		}},
		{Analyzer: LockOrder},
		{Analyzer: GoroLeak, Scopes: []string{"internal/", "cmd/coherad"}},
		{Analyzer: AtomicMix, Scopes: []string{"internal/", "cmd/coherad"}},
	}
}

// Analyzers returns the full suite without scoping, for -list and tests.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockSafe, ErrDrop, CtxLeak, SleepSync, BodyClose, StreamClose, LockOrder, GoroLeak, AtomicMix}
}
