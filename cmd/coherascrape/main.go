// Command coherascrape demonstrates wrapper training: it generates a
// supplier's HTML catalog page, induces an LR extraction wrapper from two
// labeled example records ("training", per Cohera Connect), applies it to
// the whole page — including records never labeled — and emits the
// normalized rows as CSV.
//
//	coherascrape            # demo on a generated page
//	coherascrape -url U     # scrape a live URL with the demo template
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"cohera/internal/value"
	"cohera/internal/workload"
	"cohera/internal/wrapper"
)

func main() {
	var liveURL = flag.String("url", "", "scrape this URL instead of the generated demo page")
	flag.Parse()

	sup := workload.Suppliers(3, 8, 0, 99)[2] // an HTML-format supplier
	page := workload.RenderHTML(sup)
	fields := []string{"part_no", "description", "unit_price", "lead_time", "on_hand"}

	// Label the first two records — everything a content manager does.
	examples := []wrapper.Example{labelRecord(sup, 0), labelRecord(sup, 1)}
	tpl, err := wrapper.Induce(page, fields, examples)
	if err != nil {
		fmt.Fprintf(os.Stderr, "induction failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("induced wrapper:")
	for _, f := range tpl.Fields {
		fmt.Printf("  %-12s left=%q right=%q\n", f.Name, f.Left, f.Right)
	}

	target := page
	if *liveURL != "" {
		sess, err := wrapper.NewSession()
		if err != nil {
			fmt.Fprintf(os.Stderr, "session: %v\n", err)
			os.Exit(1)
		}
		target, err = sess.Get(context.Background(), *liveURL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fetch: %v\n", err)
			os.Exit(1)
		}
	}
	records, err := tpl.Extract(target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "extract: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nextracted %d records (%d were labeled):\n", len(records), len(examples))
	fmt.Println("part_no,description,unit_price,lead_time,on_hand")
	for _, rec := range records {
		fmt.Printf("%s,%q,%s,%q,%s\n",
			rec["part_no"], rec["description"], rec["unit_price"],
			rec["lead_time"], rec["on_hand"])
	}
}

// labelRecord produces the example labels for one rendered record.
func labelRecord(s workload.Supplier, i int) wrapper.Example {
	it := s.Items[i]
	price := fmt.Sprintf("%d.%02d %s", it.PriceCents/100, it.PriceCents%100, s.Currency)
	if s.Currency == "USD" {
		price = fmt.Sprintf("$%d.%02d", it.PriceCents/100, it.PriceCents%100)
	}
	var lead string
	switch s.DeliverySemantics {
	case value.BusinessDays:
		lead = fmt.Sprintf("%d business days", it.Days)
	case value.NoSundayDays:
		lead = fmt.Sprintf("%d days (Sunday excluded)", it.Days)
	default:
		lead = fmt.Sprintf("%d days", it.Days)
	}
	return wrapper.Example{Values: []string{
		it.SKU, it.Name, price, lead, fmt.Sprintf("%d", it.Qty),
	}}
}
