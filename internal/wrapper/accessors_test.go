package wrapper

import (
	"context"
	"testing"

	"cohera/internal/storage"
	"cohera/internal/value"
)

// TestSourceAccessors exercises the trivial-but-contractual Source
// surface on every connector: names, schemas, volatility flags.
func TestSourceAccessors(t *testing.T) {
	def := partsDef()
	csvSrc := NewCSVSource("csv", def, StaticFetcher(map[string]string{"u": "sku\nP1\n"}), "u", nil)
	if csvSrc.Name() != "csv" || csvSrc.Schema() != def {
		t.Error("csv accessors")
	}
	csvSrc.SetVolatile(true)
	if !csvSrc.Capabilities().Volatile {
		t.Error("csv volatility flag lost")
	}

	xmlSrc := NewXMLSource("xml", def, StaticFetcher(nil), "u", "/r/i", nil)
	if xmlSrc.Name() != "xml" || xmlSrc.Schema() != def {
		t.Error("xml accessors")
	}
	xmlSrc.SetVolatile(true)
	if !xmlSrc.Capabilities().Volatile {
		t.Error("xml volatility flag lost")
	}

	htmlSrc := NewHTMLSource("html", def, StaticFetcher(nil), "u", LRTemplate{}, nil)
	if htmlSrc.Name() != "html" || htmlSrc.Schema() != def {
		t.Error("html accessors")
	}
	htmlSrc.SetVolatile(true)
	if !htmlSrc.Capabilities().Volatile {
		t.Error("html volatility flag lost")
	}

	tbl := storage.NewTable(def)
	erp := NewERPSource("erp", tbl)
	if erp.Name() != "erp" || erp.Schema() != def.Clone(def.Name) && erp.Schema().Name != def.Name {
		t.Error("erp accessors")
	}
	if erp.Table() != tbl {
		t.Error("erp table accessor")
	}

	static, err := NewStaticSource("static", def, nil)
	if err != nil {
		t.Fatal(err)
	}
	if static.Name() != "static" || static.Schema() != def || static.Capabilities().Volatile {
		t.Error("static accessors")
	}

	fn := NewFuncSource("fn", def, Capabilities{PushdownEq: []string{"sku"}},
		func(context.Context, []Filter) ([]storage.Row, error) { return nil, nil })
	if fn.Name() != "fn" || fn.Schema() != def || !fn.Capabilities().CanPush("sku") {
		t.Error("func accessors")
	}
}

// TestCSVSemicolonDelimiter exercises SetComma for European feeds.
func TestCSVSemicolonDelimiter(t *testing.T) {
	doc := "sku;name;price;qty\nP1;ink;1,00 EUR;5\n"
	src := NewCSVSource("eu", partsDef(), StaticFetcher(map[string]string{"u": doc}), "u", nil)
	src.SetComma(';')
	rows, err := src.Fetch(context.Background(), nil)
	if err != nil || len(rows) != 1 {
		t.Fatalf("semicolon fetch = %v, %v", rows, err)
	}
	// "1,00 EUR" — comma thousands-stripping makes it 100 minor units.
	if m, cur := rows[0][2].Money(); cur != "EUR" || m != 10000 {
		t.Errorf("eu price = %d %s", m, cur)
	}
	if rows[0][3].Int() != 5 {
		t.Errorf("qty = %v", rows[0][3])
	}
}

// TestERPFallbackScanWithoutIndex covers the unindexed pushdown path.
func TestERPFallbackScanWithoutIndex(t *testing.T) {
	tbl := storage.NewTable(partsDef())
	if _, err := tbl.Insert(storage.Row{
		value.NewString("P1"), value.NewString("ink"),
		value.NewMoney(1, "USD"), value.NewInt(1),
	}); err != nil {
		t.Fatal(err)
	}
	// Pushdown advertised on sku but no index built: falls back to scan.
	erp := NewERPSource("erp", tbl, "sku")
	rows, err := erp.Fetch(context.Background(), []Filter{{Column: "sku", Value: value.NewString("P1")}})
	if err != nil || len(rows) != 1 {
		t.Fatalf("fallback scan = %v, %v", rows, err)
	}
	rows, err = erp.Fetch(context.Background(), []Filter{{Column: "sku", Value: value.NewString("P9")}})
	if err != nil || len(rows) != 0 {
		t.Fatalf("fallback scan miss = %v, %v", rows, err)
	}
}

// TestShortestValidDelimiterFallback covers the degenerate case where
// every prefix occurs inside a value.
func TestShortestValidDelimiterFallback(t *testing.T) {
	// full = "ab"; values contain both "a" and "ab" → fallback to full.
	if got := shortestValidDelimiter("ab", []string{"xaby"}); got != "ab" {
		t.Errorf("fallback = %q", got)
	}
	if got := shortestValidDelimiter("ab", []string{"xy"}); got != "a" {
		t.Errorf("shortest = %q", got)
	}
	if got := shortestValidDelimiter("", nil); got != "" {
		t.Errorf("empty = %q", got)
	}
}

// TestHTMLSourceFetchErrors covers fetch and mapping error paths.
func TestHTMLSourceFetchErrors(t *testing.T) {
	def := partsDef()
	tpl := LRTemplate{Fields: []LRField{{Name: "sku", Left: ">", Right: "<"}}}
	// Missing document.
	src := NewHTMLSource("h", def, StaticFetcher(nil), "missing", tpl, nil)
	if _, err := src.Fetch(context.Background(), nil); err == nil {
		t.Error("missing doc should fail")
	}
	// Unknown mapped column.
	src = NewHTMLSource("h", def, StaticFetcher(map[string]string{"u": "<i>P1</i>"}), "u",
		tpl, []FieldMapping{{Column: "ghost", From: "sku"}})
	if _, err := src.Fetch(context.Background(), nil); err == nil {
		t.Error("unknown column should fail")
	}
	// Empty template errors at extraction.
	src = NewHTMLSource("h", def, StaticFetcher(map[string]string{"u": "x"}), "u", LRTemplate{}, nil)
	if _, err := src.Fetch(context.Background(), nil); err == nil {
		t.Error("empty template should fail")
	}
}
