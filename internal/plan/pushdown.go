package plan

import (
	"sort"
	"strings"

	"cohera/internal/sqlparse"
)

// Capability-aware predicate pushdown. A wrapper or site advertises a
// PushCaps record describing which operator classes it can filter on,
// whether it can project columns, and whether it can stop after a limit.
// SplitPushable divides a WHERE clause into the conjunction a site with
// those capabilities can evaluate and the residual the coordinator must
// keep. The split is sound under SQL three-valued logic: WHERE keeps
// exactly the truthy rows, and `A AND B` is truthy iff both conjuncts
// are, so filtering by the pushed part and then the residual keeps the
// same rows as filtering by the original — NULL outcomes drop the row at
// whichever layer evaluates the conjunct.

// FilterClass names one pushable operator class.
type FilterClass string

// Operator classes. A conjunct is pushable only when every class it
// requires is advertised. ClassText is never advertised: text predicates
// need the coordinator's inverted index and synonym tables.
const (
	// ClassEq covers =, <>, and IN over a column and literals.
	ClassEq FilterClass = "eq"
	// ClassRange covers <, <=, >, >=, and BETWEEN over a column and literals.
	ClassRange FilterClass = "range"
	// ClassLike covers LIKE / NOT LIKE with a literal pattern.
	ClassLike FilterClass = "like"
	// ClassNull covers IS NULL / IS NOT NULL.
	ClassNull FilterClass = "null"
	// ClassExpr covers everything else a full evaluator can run:
	// arithmetic, scalar calls, OR, NOT, comparisons between columns.
	ClassExpr FilterClass = "expr"
	// ClassText marks text-search predicates (CONTAINS/FUZZY/...).
	// It is never pushable.
	ClassText FilterClass = "text"
)

// PushCaps is a capability record advertised by a wrapper or site.
// The zero value can push nothing.
type PushCaps struct {
	// Classes lists the operator classes the source can filter on.
	Classes []FilterClass
	// Columns restricts filtering to the named columns (lowercased
	// here on first use); nil means any column.
	Columns []string
	// Project reports whether the source can return a column subset.
	Project bool
	// Limit reports whether the source can stop after N rows.
	Limit bool
}

// FullPushCaps advertises everything a complete SQL engine can do:
// every class except text, projection, and limit.
func FullPushCaps() PushCaps {
	return PushCaps{
		Classes: []FilterClass{ClassEq, ClassRange, ClassLike, ClassNull, ClassExpr},
		Project: true,
		Limit:   true,
	}
}

// HasClass reports whether the record advertises the class.
func (c PushCaps) HasClass(fc FilterClass) bool {
	for _, have := range c.Classes {
		if have == fc {
			return true
		}
	}
	return false
}

// CanFilter reports whether the record advertises any filtering at all.
func (c PushCaps) CanFilter() bool { return len(c.Classes) > 0 }

// allowsColumn reports whether filters may reference the column.
func (c PushCaps) allowsColumn(name string) bool {
	if c.Columns == nil {
		return true
	}
	name = strings.ToLower(name)
	for _, have := range c.Columns {
		if strings.ToLower(have) == name {
			return true
		}
	}
	return false
}

// ClassifyExpr returns the sorted set of operator classes a site must
// advertise to evaluate e. An expression touching only literals and
// column refs under a supported comparison yields that comparison's
// class; anything structurally richer adds ClassExpr; text predicates
// add ClassText.
func ClassifyExpr(e sqlparse.Expr) []FilterClass {
	set := map[FilterClass]bool{}
	classify(e, set)
	out := make([]FilterClass, 0, len(set))
	for fc := range set {
		out = append(out, fc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// simpleOperand reports whether e is a bare column, a literal, or a
// negated literal — the operand shapes index-backed filters handle.
func simpleOperand(e sqlparse.Expr) bool {
	switch x := e.(type) {
	case sqlparse.Literal, sqlparse.ColumnRef:
		return true
	case sqlparse.Neg:
		_, lit := x.Inner.(sqlparse.Literal)
		return lit
	}
	return false
}

// operand records the classes an operand side requires: nothing when it
// is simple, ClassExpr plus its own inner classes otherwise.
func operand(e sqlparse.Expr, set map[FilterClass]bool) {
	if simpleOperand(e) {
		return
	}
	set[ClassExpr] = true
	classify(e, set)
}

func classify(e sqlparse.Expr, set map[FilterClass]bool) {
	switch x := e.(type) {
	case nil:
	case sqlparse.Literal, sqlparse.ColumnRef, sqlparse.Star:
	case sqlparse.Neg:
		if !simpleOperand(x) {
			set[ClassExpr] = true
			classify(x.Inner, set)
		}
	case sqlparse.Binary:
		switch x.Op {
		case sqlparse.OpEq, sqlparse.OpNe:
			set[ClassEq] = true
			operand(x.Left, set)
			operand(x.Right, set)
		case sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
			set[ClassRange] = true
			operand(x.Left, set)
			operand(x.Right, set)
		case sqlparse.OpAnd:
			classify(x.Left, set)
			classify(x.Right, set)
		default:
			// OR, arithmetic: general expression evaluation.
			set[ClassExpr] = true
			classify(x.Left, set)
			classify(x.Right, set)
		}
	case sqlparse.Not:
		set[ClassExpr] = true
		classify(x.Inner, set)
	case sqlparse.IsNull:
		set[ClassNull] = true
		operand(x.Inner, set)
	case sqlparse.In:
		set[ClassEq] = true
		operand(x.Inner, set)
		for _, item := range x.List {
			operand(item, set)
		}
	case sqlparse.Between:
		set[ClassRange] = true
		operand(x.Inner, set)
		operand(x.Lo, set)
		operand(x.Hi, set)
	case sqlparse.Like:
		set[ClassLike] = true
		operand(x.Inner, set)
		operand(x.Pattern, set)
	case sqlparse.Call:
		set[ClassExpr] = true
		for _, a := range x.Args {
			classify(a, set)
		}
	case sqlparse.TextMatch:
		set[ClassText] = true
		classify(x.Query, set)
	default:
		// Unknown node kinds are conservatively unpushable.
		set[ClassExpr] = true
		set[ClassText] = true
	}
}

// Pushable reports whether a site with caps can evaluate e entirely.
func Pushable(e sqlparse.Expr, caps PushCaps) bool {
	if e == nil {
		return true
	}
	need := ClassifyExpr(e)
	for _, fc := range need {
		if fc == ClassText || !caps.HasClass(fc) {
			return false
		}
	}
	if caps.Columns != nil {
		for _, ref := range Columns(e) {
			if !caps.allowsColumn(ref.Column) {
				return false
			}
		}
	}
	return true
}

// SplitPushable divides a WHERE clause into the conjunction of terms a
// site with caps can evaluate (pushable) and the rest (residual).
// Either half may be nil. Filtering rows by pushable and then by
// residual keeps exactly the rows the original keeps.
func SplitPushable(e sqlparse.Expr, caps PushCaps) (pushable, residual sqlparse.Expr) {
	if e == nil {
		return nil, nil
	}
	if !caps.CanFilter() {
		return nil, e
	}
	var push, resid []sqlparse.Expr
	for _, term := range sqlparse.AndTerms(e) {
		if Pushable(term, caps) {
			push = append(push, term)
		} else {
			resid = append(resid, term)
		}
	}
	return sqlparse.AndJoin(push), sqlparse.AndJoin(resid)
}
