package bench

import (
	"context"
	"fmt"
	"time"

	"cohera/internal/federation"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// E11Pushdown is an ablation on a coordinator design decision: projection
// pushdown. Content-rich catalog rows are wide (descriptions, terms,
// imagery URLs); the paper's "route large volumes of rich content"
// framing makes the shipped-cell count a first-order cost. We run a
// narrow query over a wide replicated table with pushdown on and off,
// charging sites a per-cell transfer cost, and report latency and cells
// moved.
func E11Pushdown(cfg Config) (Table, error) {
	rows, width, queries := 400, 24, 40
	if cfg.Quick {
		rows, width, queries = 100, 12, 10
	}
	t := Table{
		ID:      "E11",
		Title:   "ablation: projection pushdown on a wide catalog table",
		Headers: []string{"pushdown", "cells shipped/query", "mean latency", "saving"},
		Notes:   "expected shape: pushdown ships ~3 of N columns and cuts latency proportionally",
	}
	var baseCells int
	var baseLat time.Duration
	for _, enabled := range []bool{false, true} {
		cells, lat, err := runE11(cfg.Seed, rows, width, queries, enabled)
		if err != nil {
			return t, err
		}
		if !enabled {
			baseCells, baseLat = cells, lat
		}
		saving := "-"
		if enabled && baseCells > 0 {
			saving = fmt.Sprintf("%.0f%% cells, %.0f%% time",
				100*(1-float64(cells)/float64(baseCells)),
				100*(1-float64(lat)/float64(baseLat)))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%v", enabled),
			fmt.Sprintf("%d", cells),
			fmtDur(lat),
			saving,
		})
	}
	return t, nil
}

func runE11(seed int64, rows, width, queries int, pushdown bool) (cellsPerQuery int, meanLat time.Duration, err error) {
	cols := []schema.Column{{Name: "id", Kind: value.KindInt, NotNull: true}}
	for i := 1; i < width; i++ {
		cols = append(cols, schema.Column{Name: fmt.Sprintf("attr%02d", i), Kind: value.KindString})
	}
	def := schema.MustTable("rich", cols, "id")
	fed := federation.New(federation.NewAgoric())
	fed.DisableProjectionPushdown = !pushdown
	s := federation.NewSite("s")
	// Per-row cost approximates per-cell transfer: scale it by width when
	// pushdown is off via the row width the site actually produces — the
	// executor projects at the site, so PerRow alone under-charges; use a
	// small PerRow so the dominant signal is the cell count plus the
	// coordinator's load cost of wide rows.
	s.SetCost(federation.CostModel{Latency: 100 * time.Microsecond, PerRow: 2 * time.Microsecond})
	if err := fed.AddSite(s); err != nil {
		return 0, 0, err
	}
	frag := federation.NewFragment("f", nil, s)
	if _, err := fed.DefineTable(def, frag); err != nil {
		return 0, 0, err
	}
	var batch []storage.Row
	for i := 0; i < rows; i++ {
		r := storage.Row{value.NewInt(int64(i))}
		for j := 1; j < width; j++ {
			r = append(r, value.NewString(fmt.Sprintf("attribute-%02d-of-row-%04d", j, i)))
		}
		batch = append(batch, r)
	}
	if err := fed.LoadFragment("rich", frag, batch); err != nil {
		return 0, 0, err
	}
	// Reference plan for the differential oracle: the same data with
	// every pushdown disabled, so all evaluation happens at the
	// coordinator. Each measured configuration must agree with it.
	ref := federation.New(federation.NewAgoric())
	ref.DisableProjectionPushdown = true
	ref.DisablePredicatePushdown = true
	rs := federation.NewSite("ref")
	if err := ref.AddSite(rs); err != nil {
		return 0, 0, err
	}
	rfrag := federation.NewFragment("f", nil, rs)
	if _, err := ref.DefineTable(def, rfrag); err != nil {
		return 0, 0, err
	}
	if err := ref.LoadFragment("rich", rfrag, batch); err != nil {
		return 0, 0, err
	}
	ctx := context.Background()
	var total time.Duration
	var cells int
	for q := 0; q < queries; q++ {
		sql := fmt.Sprintf("SELECT attr01 FROM rich WHERE id >= %d", q%10)
		start := time.Now()
		res, trace, err := fed.QueryTraced(ctx, sql)
		if err != nil {
			return 0, 0, err
		}
		total += time.Since(start)
		cells = trace.CellsShipped
		if q < 5 {
			want, err := ref.Query(ctx, sql)
			if err != nil {
				return 0, 0, err
			}
			if !sameRowMultiset(res.Rows, want.Rows) {
				return 0, 0, fmt.Errorf("E11 differential: pushdown=%v disagrees with unpushed plan on %q", pushdown, sql)
			}
		}
	}
	return cells, total / time.Duration(queries), nil
}

// sameRowMultiset reports whether two result sets hold the same rows,
// ignoring order — the pushed-vs-unpushed differential oracle.
func sameRowMultiset(a, b []storage.Row) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]int, len(a))
	key := func(r storage.Row) string {
		s := ""
		for _, v := range r {
			s += v.String() + "\x1f"
		}
		return s
	}
	for _, r := range a {
		seen[key(r)]++
	}
	for _, r := range b {
		seen[key(r)]--
		if seen[key(r)] < 0 {
			return false
		}
	}
	return true
}
