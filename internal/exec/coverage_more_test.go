package exec

import (
	"testing"

	"cohera/internal/ir"
)

func TestDatabaseAccessors(t *testing.T) {
	db := demoDB(t)
	names := db.TableNames()
	if len(names) != 2 || names[0] != "parts" || names[1] != "suppliers" {
		t.Errorf("TableNames = %v", names)
	}
	if db.Catalog() == nil {
		t.Error("Catalog accessor")
	}
	shared := ir.NewSynonyms()
	shared.Declare("a", "b")
	db.SetSynonyms(shared)
	if db.Synonyms() != shared {
		t.Error("SetSynonyms did not install")
	}
	db.SetSynonyms(nil) // nil is ignored
	if db.Synonyms() != shared {
		t.Error("SetSynonyms(nil) should be a no-op")
	}
}

func TestAggregateMoneyAndErrors(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Exec("CREATE TABLE sales (id INTEGER NOT NULL, amount MONEY, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"INSERT INTO sales (id, amount) VALUES (1, '$10.00')",
		"INSERT INTO sales (id, amount) VALUES (2, '$2.50')",
		"INSERT INTO sales (id, amount) VALUES (3, NULL)",
	} {
		if _, err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	r := exec1(t, db, "SELECT SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM sales")
	row := r.Rows[0]
	if m, c := row[0].Money(); m != 1250 || c != "USD" {
		t.Errorf("SUM money = %v", row[0])
	}
	if m, _ := row[1].Money(); m != 625 {
		t.Errorf("AVG money = %v", row[1])
	}
	if m, _ := row[2].Money(); m != 250 {
		t.Errorf("MIN money = %v", row[2])
	}
	if m, _ := row[3].Money(); m != 1000 {
		t.Errorf("MAX money = %v", row[3])
	}
	// Mixed currencies inside SUM fail loudly rather than mixing units.
	if _, err := db.Exec("INSERT INTO sales (id, amount) VALUES (4, '9.99 EUR')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT SUM(amount) FROM sales"); err == nil {
		t.Error("cross-currency SUM should fail")
	}
	// SUM over text fails.
	db2 := demoDB(t)
	if _, err := db2.Exec("SELECT SUM(name) FROM parts"); err == nil {
		t.Error("SUM over text should fail")
	}
	// MIN over mixed incomparable kinds fails.
	if _, err := db2.Exec("SELECT MIN(sku + name) FROM parts"); err == nil {
		// sku+name concatenates strings: MIN over strings is fine; force
		// incomparable by mixing kinds instead.
		t.Log("string MIN allowed (expected)")
	}
}

func TestAggregateExpressionsOverResults(t *testing.T) {
	db := demoDB(t)
	// Arithmetic over folded aggregates, plus aggregates in HAVING
	// expressions that also appear negated/IN/BETWEEN/LIKE forms — this
	// drives substituteAggregates through every node type.
	r := exec1(t, db, `SELECT sid, SUM(qty) + COUNT(*) AS score FROM parts
		GROUP BY sid
		HAVING NOT (SUM(qty) IS NULL) AND SUM(qty) BETWEEN 0 AND 100000
			AND COUNT(*) IN (1, 2, 3) AND UPPER('x') LIKE 'X%' AND -COUNT(*) < 0
		ORDER BY score DESC`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][1].Int() <= r.Rows[1][1].Int() {
		t.Errorf("order by computed aggregate failed: %v", r.Rows)
	}
}

func TestLeftJoinNonEquiResidual(t *testing.T) {
	db := demoDB(t)
	// LEFT JOIN whose ON has an equi key plus residual; unmatched rows
	// null-extend. P2 price 45 fails the residual → null-extended.
	r := exec1(t, db, `SELECT p.sku, s.name FROM parts p
		LEFT JOIN suppliers s ON p.sid = s.id AND p.price > 50
		WHERE p.sku IN ('P1','P2') ORDER BY p.sku`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][1].IsNull() || !r.Rows[1][1].IsNull() {
		t.Errorf("residual left join = %v", r.Rows)
	}
}

func TestAvgOverInts(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, "SELECT AVG(qty) FROM parts WHERE sid = 1")
	if r.Rows[0][0].Float() != 5 {
		t.Errorf("AVG = %v", r.Rows[0][0])
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	db := demoDB(t)
	if _, err := db.Exec("INSERT INTO parts (sku, name) VALUES ('PX', NULL)"); err != nil {
		t.Fatal(err)
	}
	r := exec1(t, db, "SELECT COUNT(*), COUNT(name) FROM parts")
	if r.Rows[0][0].Int() != r.Rows[0][1].Int()+1 {
		t.Errorf("COUNT(col) should skip NULLs: %v", r.Rows[0])
	}
}

func TestValueCoercionOnUpdate(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Exec("CREATE TABLE q (id INTEGER NOT NULL, price MONEY, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO q (id, price) VALUES (1, '$1.00')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE q SET price = '$2.50' WHERE id = 1"); err != nil {
		t.Fatalf("coercing update: %v", err)
	}
	r := exec1(t, db, "SELECT price FROM q")
	if m, _ := r.Rows[0][0].Money(); m != 250 {
		t.Errorf("updated price = %v", r.Rows[0][0])
	}
}
