package ir

import (
	"sort"
	"strings"
	"sync"
)

// Synonyms maintains synonym rings: sets of terms or phrases declared
// equivalent ("India ink" ≡ "black ink" ≡ "fountain pen ink, black").
// Rings are transitive — adding A≡B and B≡C merges all three — which
// matches how content managers incrementally grow a synonym table.
//
// The structure is safe for concurrent use.
type Synonyms struct {
	mu   sync.RWMutex
	ring map[string]int   // normalized phrase → ring id
	sets map[int][]string // ring id → members (normalized)
	next int
}

// NewSynonyms returns an empty synonym table.
func NewSynonyms() *Synonyms {
	return &Synonyms{ring: make(map[string]int), sets: make(map[int][]string)}
}

func normPhrase(s string) string {
	return strings.Join(Terms(s), " ")
}

// Declare makes all the given phrases mutually synonymous, merging any
// rings they already belong to.
func (s *Synonyms) Declare(phrases ...string) {
	if len(phrases) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	target := -1
	var members []string
	for _, p := range phrases {
		n := normPhrase(p)
		if n == "" {
			continue
		}
		if id, ok := s.ring[n]; ok {
			if target == -1 {
				target = id
			} else if id != target {
				// Merge ring id into target.
				for _, m := range s.sets[id] {
					s.ring[m] = target
					s.sets[target] = append(s.sets[target], m)
				}
				delete(s.sets, id)
			}
		} else {
			members = append(members, n)
		}
	}
	if target == -1 {
		target = s.next
		s.next++
	}
	for _, m := range members {
		if _, ok := s.ring[m]; ok {
			continue
		}
		s.ring[m] = target
		s.sets[target] = append(s.sets[target], m)
	}
}

// Expand returns the normalized phrase plus all its synonyms, sorted.
// A phrase with no ring returns just itself (normalized).
func (s *Synonyms) Expand(phrase string) []string {
	n := normPhrase(phrase)
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.ring[n]
	if !ok {
		return []string{n}
	}
	out := make([]string, len(s.sets[id]))
	copy(out, s.sets[id])
	sort.Strings(out)
	return out
}

// ExpandTerms expands a query's terms through the synonym table and
// returns the union of all expansions' terms, deduplicated. Rings are
// phrase-keyed ("utility knife" ≡ "box cutter"), so both the full query
// phrase and each individual term are looked up: the phrase lookup
// bridges multi-word synonyms whose members share no terms, the per-term
// lookups catch single-word rings embedded in longer queries.
func (s *Synonyms) ExpandTerms(terms []string) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t string) {
		if t != "" && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, t := range terms {
		add(t)
	}
	expandPhrase := func(phrase string) {
		for _, member := range s.Expand(phrase) {
			for _, pt := range strings.Fields(member) {
				add(pt)
			}
		}
	}
	if len(terms) > 1 {
		expandPhrase(strings.Join(terms, " "))
	}
	for _, t := range terms {
		expandPhrase(t)
	}
	return out
}

// Size returns the number of synonym rings.
func (s *Synonyms) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sets)
}
