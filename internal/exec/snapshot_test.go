package exec

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cohera/internal/ir"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := NewDatabase()
	def := schema.MustTable("catalog", []schema.Column{
		{Name: "sku", Kind: value.KindString, NotNull: true},
		{Name: "name", Kind: value.KindString, FullText: true, Taxonomy: "mro"},
		{Name: "price", Kind: value.KindMoney},
		{Name: "at", Kind: value.KindTime},
		{Name: "lead", Kind: value.KindDuration},
		{Name: "hot", Kind: value.KindBool},
		{Name: "score", Kind: value.KindFloat},
		{Name: "qty", Kind: value.KindInt},
	}, "sku")
	tbl, err := db.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("qty"); err != nil {
		t.Fatal(err)
	}
	when := time.Date(2001, 5, 21, 9, 30, 0, 0, time.UTC)
	rows := []storage.Row{
		{value.NewString("P1"), value.NewString("cordless drill"),
			value.NewMoney(9950, "USD"), value.NewTime(when),
			value.Days(2, value.BusinessDays), value.NewBool(true),
			value.NewFloat(4.5), value.NewInt(10)},
		{value.NewString("P2"), value.Null, value.Null, value.Null,
			value.Null, value.Null, value.Null, value.NewInt(3)},
	}
	for _, r := range rows {
		if _, err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	db2 := NewDatabase()
	if err := db2.LoadSnapshot(&buf); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	t2, err := db2.Table("catalog")
	if err != nil {
		t.Fatal(err)
	}
	if t2.Len() != 2 {
		t.Fatalf("restored rows = %d", t2.Len())
	}
	// Schema details survive.
	c, _ := t2.Def().Column("name")
	if !c.FullText || c.Taxonomy != "mro" {
		t.Errorf("column metadata lost: %+v", c)
	}
	if t2.Def().Key[0] != "sku" {
		t.Errorf("key lost: %v", t2.Def().Key)
	}
	// Indexes rebuilt and used.
	if !t2.HasIndex("qty") {
		t.Error("ordered index lost")
	}
	// Full value fidelity.
	_, r1, err := t2.GetByKey(value.NewString("P1"))
	if err != nil {
		t.Fatal(err)
	}
	if m, cur := r1[2].Money(); m != 9950 || cur != "USD" {
		t.Errorf("money = %d %s", m, cur)
	}
	if !r1[3].Time().Equal(when) {
		t.Errorf("time = %v", r1[3])
	}
	if d, sem := r1[4].Duration(); d != 48*time.Hour || sem != value.BusinessDays {
		t.Errorf("duration = %v %v", d, sem)
	}
	if !r1[5].Bool() || r1[6].Float() != 4.5 {
		t.Errorf("bool/float = %v", r1)
	}
	// NULLs stay NULL.
	_, r2, _ := t2.GetByKey(value.NewString("P2"))
	if !r2[1].IsNull() || !r2[4].IsNull() {
		t.Errorf("nulls lost: %v", r2)
	}
	// Full-text index rebuilt (FullText flag → inverted index on load).
	hits, err := t2.TextSearch("name", "drill", ir.SearchOptions{})
	if err != nil || len(hits) != 1 {
		t.Errorf("text search after restore = %v, %v", hits, err)
	}
	// Queries behave identically.
	res, err := db2.Exec("SELECT sku FROM catalog WHERE qty = 10")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Str() != "P1" {
		t.Errorf("query after restore = %v, %v", res, err)
	}
}

func TestSnapshotErrors(t *testing.T) {
	db := NewDatabase()
	if err := db.LoadSnapshot(strings.NewReader("not json")); err == nil {
		t.Error("bad JSON should fail")
	}
	if err := db.LoadSnapshot(strings.NewReader(`{"version":9}`)); err == nil {
		t.Error("unknown version should fail")
	}
	// Loading into a database that already has the table fails cleanly.
	demo := demoDB(t)
	var buf bytes.Buffer
	if err := demo.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := demo.LoadSnapshot(&buf); err == nil {
		t.Error("load over existing tables should fail")
	}
}

func TestSnapshotEmptyDatabase(t *testing.T) {
	db := NewDatabase()
	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase()
	if err := db2.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if len(db2.TableNames()) != 0 {
		t.Error("empty snapshot grew tables")
	}
}
