package cohera_test

import (
	"context"
	"fmt"
	"testing"

	"cohera/internal/bench"
	"cohera/internal/exec"
	"cohera/internal/federation"
	"cohera/internal/ir"
	"cohera/internal/mview"
	"cohera/internal/schema"
	"cohera/internal/sqlparse"
	"cohera/internal/storage"
	"cohera/internal/value"
	"cohera/internal/workload"
)

// One benchmark per experiment in DESIGN.md's index. Each runs the same
// code path as cmd/coherabench in quick mode; the full sweeps and their
// printed tables are recorded in EXPERIMENTS.md.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var run func(bench.Config) (bench.Table, error)
	for _, e := range bench.All() {
		if e.ID == id {
			run = e.Run
		}
	}
	if run == nil {
		b.Fatalf("no experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		cfg := bench.Quick()
		cfg.Seed = int64(i + 1)
		if _, err := run(cfg); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkE1Staleness(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2Hybrid(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE2bSemanticCache(b *testing.B) { benchExperiment(b, "E2b") }
func BenchmarkE3OptimizerScale(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4LoadBalance(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5Availability(b *testing.B)   { benchExperiment(b, "E5") }
func BenchmarkE6FuzzySearch(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7TaxonomyMatch(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8Pipeline(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9Syndication(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10ScaleOut(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11Pushdown(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12Remote(b *testing.B)        { benchExperiment(b, "E12") }

// --- Micro-benchmarks on the hot paths the experiments exercise ---

// BenchmarkLocalSelect measures the single-site executor on an indexed
// point query.
func BenchmarkLocalSelect(b *testing.B) {
	db := exec.NewDatabase()
	def := schema.MustTable("t", []schema.Column{
		{Name: "id", Kind: value.KindInt, NotNull: true},
		{Name: "payload", Kind: value.KindString},
	}, "id")
	tbl, err := db.CreateTable(def)
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.CreateIndex("id"); err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 10000; i++ {
		if _, err := tbl.Insert(storage.Row{value.NewInt(i), value.NewString("x")}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sql := fmt.Sprintf("SELECT payload FROM t WHERE id = %d", i%10000)
		if _, err := db.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFederatedSelect measures the full decompose-gather-recombine
// path over four fragments.
func BenchmarkFederatedSelect(b *testing.B) {
	fed := federation.New(federation.NewAgoric())
	def := schema.MustTable("t", []schema.Column{
		{Name: "id", Kind: value.KindInt, NotNull: true},
		{Name: "region", Kind: value.KindInt},
	}, "id")
	var frags []*federation.Fragment
	for i := 0; i < 4; i++ {
		s := federation.NewSite(fmt.Sprintf("s%d", i))
		if err := fed.AddSite(s); err != nil {
			b.Fatal(err)
		}
		pred, err := sqlparse.ParseExpr(fmt.Sprintf("region = %d", i))
		if err != nil {
			b.Fatal(err)
		}
		frags = append(frags, federation.NewFragment(fmt.Sprintf("f%d", i), pred, s))
	}
	if _, err := fed.DefineTable(def, frags...); err != nil {
		b.Fatal(err)
	}
	for i, f := range frags {
		var rows []storage.Row
		for j := 0; j < 500; j++ {
			rows = append(rows, storage.Row{value.NewInt(int64(i*500 + j)), value.NewInt(int64(i))})
		}
		if err := fed.LoadFragment("t", f, rows); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.Query(ctx, "SELECT COUNT(*) FROM t WHERE region = 2"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLParse measures the parser on a representative query.
func BenchmarkSQLParse(b *testing.B) {
	const q = `SELECT p.sku, s.name, SUM(p.qty) AS total FROM parts p
		JOIN suppliers s ON p.sid = s.id
		WHERE p.price BETWEEN 10 AND 500 AND FUZZY(p.name, 'drlls')
		GROUP BY p.sku, s.name HAVING SUM(p.qty) > 10 ORDER BY total DESC LIMIT 20`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFuzzyLookup measures trigram fuzzy matching over the MRO
// vocabulary-scale term set.
func BenchmarkFuzzyLookup(b *testing.B) {
	ix := ir.NewIndex()
	for i, s := range workload.Suppliers(20, 20, 0, 1) {
		for j, it := range s.Items {
			ix.Add(int64(i*100+j), it.Name)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits := ix.Search("drlls crdlss", ir.SearchOptions{Fuzzy: true, Limit: 5})
		if len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

// BenchmarkBTreeInsert measures ordered-index maintenance.
func BenchmarkBTreeInsert(b *testing.B) {
	b.ReportAllocs()
	bt := storage.NewBTree()
	for i := 0; i < b.N; i++ {
		bt.Insert(value.NewInt(int64(i%100000)), int64(i))
	}
}

// BenchmarkTransformPipeline measures per-row normalization cost.
func BenchmarkTransformPipeline(b *testing.B) {
	sup := workload.Suppliers(1, 100, 0, 3)[0]
	rates := value.DefaultCurrencyTable()
	rows, err := workload.GroundTruthRows(sup, rates)
	if err != nil {
		b.Fatal(err)
	}
	_ = rows
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.GroundTruthRows(sup, rates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatviewRefresh measures a view refresh over a 1k-row base.
func BenchmarkMatviewRefresh(b *testing.B) {
	fed := federation.New(federation.NewAgoric())
	s := federation.NewSite("s")
	if err := fed.AddSite(s); err != nil {
		b.Fatal(err)
	}
	def := schema.MustTable("t", []schema.Column{
		{Name: "id", Kind: value.KindInt, NotNull: true},
	}, "id")
	frag := federation.NewFragment("f", nil, s)
	if _, err := fed.DefineTable(def, frag); err != nil {
		b.Fatal(err)
	}
	var rows []storage.Row
	for i := int64(0); i < 1000; i++ {
		rows = append(rows, storage.Row{value.NewInt(i)})
	}
	if err := fed.LoadFragment("t", frag, rows); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	mgr, err := mview.NewManager(fed, "mv-cache")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mgr.Create(ctx, "snapshot", "SELECT id FROM t", 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mgr.Refresh(ctx, "snapshot"); err != nil {
			b.Fatal(err)
		}
	}
}
