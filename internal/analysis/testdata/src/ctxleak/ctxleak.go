// Package ctxleak is a coheralint fixture for the ctxleak analyzer:
// fresh root contexts minted inside library code versus contexts
// threaded from the caller.
package ctxleak

import (
	"context"
	"time"
)

func leakBackground() context.Context {
	return context.Background() // want `context.Background() created in library code; thread the caller's context instead`
}

func leakTODO() {
	ctx := context.TODO() // want `context.TODO() created in library code; thread the caller's context instead`
	use(ctx)
}

func threaded(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second) // negative: derives from the caller's context
}

func use(context.Context) {}
