package federation

import (
	"fmt"

	"cohera/internal/exec"
	"cohera/internal/wal"
)

// Durability wiring. A federation survives kill -9 with two kinds of
// write-ahead log:
//
//   - one wal.Log per site, attached to the site's exec.Database, so
//     every local mutation (routed inserts, broadcast UPDATE/DELETE,
//     reconciler replays and copy-repairs) is on disk before it
//     acknowledges;
//   - one coordinator-level wal.Log fed by the write-intent journal
//     through a journal.Sink, so intents queued for an unreachable
//     replica survive a coordinator crash and the Reconciler resumes
//     replay exactly where it stopped — no intent lost, and the
//     journal's applied/abandoned markers keep replay exactly-once.
//
// Boot order matters and is enforced by the callees: restore first
// (RestoreSite / RestoreJournal), then attach (AttachSiteWAL /
// AttachJournalWAL) — attaching first would re-log recovered state.

// walJournalSink adapts a wal.Log to the journal.Sink interface. The
// adapter lives here because journal and wal deliberately do not
// import each other: journal sits below the federation, wal below the
// engine, and only the federation knows both.
type walJournalSink struct{ l *wal.Log }

func (s walJournalSink) JournalAppend(site, table, frag string, frame []byte) error {
	return s.l.AppendJournalFrame(site, table, frag, frame)
}

func (s walJournalSink) JournalReset(site, table string) error {
	return s.l.JournalReset(site, table)
}

// RestoreSite rebuilds a site's database from what wal.Open recovered
// (snapshot, then replay) and then attaches the log so subsequent
// mutations are written ahead. Call before the site serves traffic.
func RestoreSite(site *Site, l *wal.Log, rec *wal.Recovered) (exec.RecoveryStats, error) {
	st, err := site.DB().Recover(rec)
	if err != nil {
		return st, fmt.Errorf("federation: restore site %s: %w", site.Name(), err)
	}
	site.DB().AttachWAL(l)
	return st, nil
}

// AttachSiteWAL attaches a log to a site that has nothing to recover
// (fresh boot). Mutations from here on are durable per l's policy.
func AttachSiteWAL(site *Site, l *wal.Log) {
	site.DB().AttachWAL(l)
}

// RestoreJournal rehydrates the federation's write-intent journal from
// the frames a coordinator WAL recovered (its own records plus the
// checkpoint's journal mirror), then attaches the log as the journal's
// sink so new intents and settle markers persist before they
// acknowledge. A torn per-group tail surfaces as that group's Lost
// flag, which routes the replica to copy-repair instead of replay —
// the same contract as in-memory operation.
func RestoreJournal(f *Federation, l *wal.Log, rec *wal.Recovered) error {
	if rec != nil {
		for _, jf := range rec.Journal {
			f.Journal().Restore(jf.Site, jf.Table, jf.Frag, jf.Bytes)
		}
	}
	f.Journal().SetSink(walJournalSink{l: l})
	return nil
}

// CheckpointSite snapshots a site's database through its attached WAL
// and truncates the log. No-op for a site without a WAL.
func CheckpointSite(site *Site) error {
	if err := site.DB().Checkpoint(); err != nil {
		return fmt.Errorf("federation: checkpoint site %s: %w", site.Name(), err)
	}
	return nil
}

// CheckpointJournal checkpoints a coordinator journal WAL: the
// checkpoint document carries only the log's journal mirror (there is
// no engine state at the coordinator), and the WAL truncates to it.
func CheckpointJournal(l *wal.Log) error {
	if l == nil {
		return nil
	}
	return l.Checkpoint(nil)
}
