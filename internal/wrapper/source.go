// Package wrapper implements the source connectors of the content
// integration system (paper, Characteristic 1): content owners have
// varying relationships with the integrator, from direct ERP access to
// arms-length web scraping, so the package provides
//
//   - an HTTP session agent handling cookies and form logins (the role of
//     Cohera Connect's web browser agent),
//   - CSV and XML wrappers with declarative field mappings,
//   - an HTML scraper whose extraction template can be induced from a
//     labeled example page ("training", per Cohera Connect's GUI), and
//   - a simulated ERP gateway with predicate pushdown, standing in for
//     direct access to systems like SAP.
//
// Every connector implements Source, the uniform fetch-on-demand
// interface the federation layer consumes.
package wrapper

import (
	"context"
	"fmt"

	"cohera/internal/plan"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// Filter is one remote predicate: column = value. Sources that can apply
// filters remotely advertise it in their capabilities.
type Filter struct {
	Column string
	Value  value.Value
}

// Capabilities describes what a source can do, letting the optimizer
// decide what to push down versus post-filter.
type Capabilities struct {
	// PushdownEq lists columns the source can filter by equality — the
	// legacy single-column protocol, still honored by every source.
	PushdownEq []string
	// Push describes the capability-aware σ/π/limit support consumed by
	// OpenPushStream. The zero value pushes nothing.
	Push plan.PushCaps
	// Volatile marks sources whose data changes between fetches, which
	// rules out long-lived caching (availability, prices).
	Volatile bool
}

// CanPush reports whether the source accepts an equality filter on col.
func (c Capabilities) CanPush(col string) bool {
	for _, p := range c.PushdownEq {
		if p == col {
			return true
		}
	}
	return false
}

// Source is a remote content provider. Fetch pulls rows matching the
// given filters; a source ignores filters it did not advertise (the
// caller re-checks), but should apply the ones it can to cut transfer.
type Source interface {
	// Name identifies the source (unique within an integrator).
	Name() string
	// Schema describes the rows the source produces.
	Schema() *schema.Table
	// Capabilities describes pushdown support and volatility.
	Capabilities() Capabilities
	// Fetch retrieves rows. Implementations must honor ctx cancellation.
	Fetch(ctx context.Context, filters []Filter) ([]storage.Row, error)
}

// FieldMapping declares how one output column is produced from the raw
// source: by position, by source-field name, or by path, depending on the
// connector.
type FieldMapping struct {
	// Column is the output column name (must exist in the schema).
	Column string
	// From identifies the source field: a CSV header, an XPath, or a
	// trained extraction slot, depending on the wrapper kind.
	From string
}

// parseInto converts raw text into the column's declared kind, mapping
// parse failures to descriptive errors.
func parseInto(def *schema.Table, column, raw string) (value.Value, error) {
	c, ok := def.Column(column)
	if !ok {
		return value.Null, fmt.Errorf("wrapper: schema %q has no column %q", def.Name, column)
	}
	v, err := value.Parse(c.Kind, raw)
	if err != nil {
		return value.Null, fmt.Errorf("wrapper: column %q: %w", column, err)
	}
	return v, nil
}

// ApplyFilters post-filters rows by the equality filters — used by
// sources without remote filtering, and to re-check pushed filters.
// Exposed for connectors built outside this package (e.g. the remote
// federation client).
func ApplyFilters(def *schema.Table, rows []storage.Row, filters []Filter) []storage.Row {
	return applyFilters(def, rows, filters)
}

func applyFilters(def *schema.Table, rows []storage.Row, filters []Filter) []storage.Row {
	if len(filters) == 0 {
		return rows
	}
	out := rows[:0]
	for _, r := range rows {
		keep := true
		for _, f := range filters {
			ci := def.ColumnIndex(f.Column)
			if ci < 0 {
				continue
			}
			c, err := r[ci].Compare(f.Value)
			if err != nil || c != 0 {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out
}
