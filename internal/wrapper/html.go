package wrapper

import (
	"context"
	"fmt"
	"regexp"
	"strings"

	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// LRTemplate is a left-right extraction wrapper over semi-structured HTML
// in the style of Kushmerick's LR wrapper class: each field is delimited
// by a left and right context string, and a record is one in-order pass
// through all fields. Templates are either written by hand or induced
// from a labeled example page (Induce) — the "training" workflow of
// Cohera Connect.
type LRTemplate struct {
	// Fields in the order they appear within a record.
	Fields []LRField
}

// LRField is one field's delimiters.
type LRField struct {
	// Name labels the extraction slot (referenced by FieldMapping.From).
	Name string
	// Left and Right delimit the field's text.
	Left, Right string
}

// Extract applies the template to a page, returning one map per record.
func (t LRTemplate) Extract(page string) ([]map[string]string, error) {
	if len(t.Fields) == 0 {
		return nil, fmt.Errorf("wrapper: empty LR template")
	}
	var out []map[string]string
	pos := 0
	for {
		rec := make(map[string]string, len(t.Fields))
		start := pos
		ok := true
		for _, f := range t.Fields {
			li := strings.Index(page[start:], f.Left)
			if li < 0 {
				ok = false
				break
			}
			vs := start + li + len(f.Left)
			ri := strings.Index(page[vs:], f.Right)
			if ri < 0 {
				ok = false
				break
			}
			rec[f.Name] = strings.TrimSpace(stripTags(page[vs : vs+ri]))
			// Advance to the start of the right delimiter without
			// consuming it: adjacent fields' delimiters typically overlap
			// (…</td><td…), and the right context doubles as the next
			// field's left context.
			start = vs + ri
		}
		if !ok {
			break
		}
		out = append(out, rec)
		pos = start
	}
	return out, nil
}

// stripTags removes any residual markup inside an extracted span.
var tagRe = regexp.MustCompile(`<[^>]*>`)

func stripTags(s string) string {
	return tagRe.ReplaceAllString(s, "")
}

// Example is one labeled record on a training page: the exact text of
// each field value, in record order.
type Example struct {
	Values []string
}

// Induce learns an LRTemplate from a page and two or more labeled example
// records. For each field it takes the longest common suffix of the text
// preceding each labeled instance as the left delimiter and the longest
// common prefix of the following text as the right delimiter. This is the
// semi-automatic scheme the paper calls for: the induced template should
// be reviewed (and is trivially editable) by the content manager.
func Induce(page string, fieldNames []string, examples []Example) (LRTemplate, error) {
	if len(examples) < 2 {
		return LRTemplate{}, fmt.Errorf("wrapper: induction needs at least 2 examples, got %d", len(examples))
	}
	nf := len(fieldNames)
	for i, ex := range examples {
		if len(ex.Values) != nf {
			return LRTemplate{}, fmt.Errorf("wrapper: example %d has %d values, want %d", i, len(ex.Values), nf)
		}
	}
	const contextLen = 64
	// Locate each example's field instances in order. The left context of
	// a field is clamped at the end of the previous field's value:
	// otherwise, when adjacent values share a suffix (every price ending
	// " FRF"), the induced left delimiter would absorb value text and the
	// extractor could never match it in sequence.
	befores := make([][]string, nf) // per field, per example: preceding context
	afters := make([][]string, nf)
	pos := 0
	for ei, ex := range examples {
		for fi, v := range ex.Values {
			idx := strings.Index(page[pos:], v)
			if idx < 0 {
				return LRTemplate{}, fmt.Errorf("wrapper: example %d field %q not found in page order", ei, fieldNames[fi])
			}
			abs := pos + idx
			lo := abs - contextLen
			if lo < pos {
				lo = pos // never reach into the previous value
			}
			if lo < 0 {
				lo = 0
			}
			hi := abs + len(v) + contextLen
			if hi > len(page) {
				hi = len(page)
			}
			befores[fi] = append(befores[fi], page[lo:abs])
			afters[fi] = append(afters[fi], page[abs+len(v):hi])
			pos = abs + len(v)
		}
	}
	tpl := LRTemplate{}
	for fi, name := range fieldNames {
		left := commonSuffix(befores[fi])
		right := commonPrefix(afters[fi])
		if left == "" || right == "" {
			return LRTemplate{}, fmt.Errorf("wrapper: cannot induce delimiters for field %q (no common context)", name)
		}
		// Per Kushmerick's LR class, the right delimiter should be the
		// shortest prefix of the common following context that cannot
		// occur inside a field value: shorter delimiters generalize to
		// records beyond the labeled ones (e.g. the page's final record,
		// whose following context differs).
		var values []string
		for _, ex := range examples {
			values = append(values, ex.Values[fi])
		}
		right = shortestValidDelimiter(right, values)
		tpl.Fields = append(tpl.Fields, LRField{Name: name, Left: left, Right: right})
	}
	// Verify: the induced template must re-extract the examples.
	recs, err := tpl.Extract(page)
	if err != nil {
		return LRTemplate{}, err
	}
	if len(recs) < len(examples) {
		return LRTemplate{}, fmt.Errorf("wrapper: induced template found %d records, examples had %d", len(recs), len(examples))
	}
	for ei, ex := range examples {
		for fi, want := range ex.Values {
			if got := recs[ei][fieldNames[fi]]; got != strings.TrimSpace(stripTags(want)) {
				return LRTemplate{}, fmt.Errorf("wrapper: induced template extracts %q for example %d field %q, want %q",
					got, ei, fieldNames[fi], want)
			}
		}
	}
	return tpl, nil
}

// shortestValidDelimiter returns the shortest non-empty prefix of full
// that is not a substring of any field value, falling back to full.
func shortestValidDelimiter(full string, values []string) string {
	for n := 1; n <= len(full); n++ {
		cand := full[:n]
		ok := true
		for _, v := range values {
			if strings.Contains(v, cand) {
				ok = false
				break
			}
		}
		if ok {
			return cand
		}
	}
	return full
}

func commonSuffix(ss []string) string {
	if len(ss) == 0 {
		return ""
	}
	suf := ss[0]
	for _, s := range ss[1:] {
		for !strings.HasSuffix(s, suf) {
			if len(suf) == 0 {
				return ""
			}
			suf = suf[1:]
		}
	}
	return suf
}

func commonPrefix(ss []string) string {
	if len(ss) == 0 {
		return ""
	}
	pre := ss[0]
	for _, s := range ss[1:] {
		for !strings.HasPrefix(s, pre) {
			if len(pre) == 0 {
				return ""
			}
			pre = pre[:len(pre)-1]
		}
	}
	return pre
}

// HTMLSource scrapes an HTML page with a trained LR template (or a
// hand-written regular expression via NewRegexHTMLSource).
type HTMLSource struct {
	name     string
	def      *schema.Table
	fetch    Fetcher
	url      string
	tpl      LRTemplate
	re       *regexp.Regexp // alternative: one match per record, groups = fields
	reFields []string
	mappings []FieldMapping
	volatile bool
}

// NewHTMLSource builds a scraper from an LR template. mappings bind
// template slot names to schema columns; nil maps slots to identically
// named columns.
func NewHTMLSource(name string, def *schema.Table, fetch Fetcher, url string, tpl LRTemplate, mappings []FieldMapping) *HTMLSource {
	if mappings == nil {
		for _, f := range tpl.Fields {
			mappings = append(mappings, FieldMapping{Column: f.Name, From: f.Name})
		}
	}
	return &HTMLSource{name: name, def: def, fetch: fetch, url: url, tpl: tpl, mappings: mappings}
}

// NewRegexHTMLSource builds a scraper from a record regexp whose capture
// groups align with fieldNames — the expert-user escape hatch the paper's
// Cohera Connect offers alongside trained wrappers.
func NewRegexHTMLSource(name string, def *schema.Table, fetch Fetcher, url string, re *regexp.Regexp, fieldNames []string, mappings []FieldMapping) (*HTMLSource, error) {
	if re.NumSubexp() != len(fieldNames) {
		return nil, fmt.Errorf("wrapper: regexp has %d groups, %d field names", re.NumSubexp(), len(fieldNames))
	}
	if mappings == nil {
		for _, f := range fieldNames {
			mappings = append(mappings, FieldMapping{Column: f, From: f})
		}
	}
	return &HTMLSource{name: name, def: def, fetch: fetch, url: url, re: re, reFields: fieldNames, mappings: mappings}, nil
}

// SetVolatile marks the page as volatile.
func (s *HTMLSource) SetVolatile(v bool) { s.volatile = v }

// Name implements Source.
func (s *HTMLSource) Name() string { return s.name }

// Schema implements Source.
func (s *HTMLSource) Schema() *schema.Table { return s.def }

// Capabilities implements Source. Scraped pages cannot filter remotely.
func (s *HTMLSource) Capabilities() Capabilities {
	return Capabilities{Volatile: s.volatile}
}

// Fetch implements Source.
func (s *HTMLSource) Fetch(ctx context.Context, filters []Filter) ([]storage.Row, error) {
	body, err := s.fetch.Get(ctx, s.url)
	if err != nil {
		return nil, err
	}
	var records []map[string]string
	if s.re != nil {
		for _, m := range s.re.FindAllStringSubmatch(body, -1) {
			rec := make(map[string]string, len(s.reFields))
			for i, f := range s.reFields {
				rec[f] = strings.TrimSpace(stripTags(m[i+1]))
			}
			records = append(records, rec)
		}
	} else {
		records, err = s.tpl.Extract(body)
		if err != nil {
			return nil, fmt.Errorf("wrapper: html %s: %w", s.name, err)
		}
	}
	var rows []storage.Row
	for rn, rec := range records {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := make(storage.Row, len(s.def.Columns))
		for i := range row {
			row[i] = value.Null
		}
		for _, m := range s.mappings {
			ci := s.def.ColumnIndex(m.Column)
			if ci < 0 {
				return nil, fmt.Errorf("wrapper: html %s maps unknown column %q", s.name, m.Column)
			}
			v, err := value.Parse(s.def.Columns[ci].Kind, rec[m.From])
			if err != nil {
				return nil, fmt.Errorf("wrapper: html %s record %d: %w", s.name, rn+1, err)
			}
			row[ci] = v
		}
		rows = append(rows, row)
	}
	return applyFilters(s.def, rows, filters), nil
}
