package federation

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"cohera/internal/sqlparse"
	"cohera/internal/storage"
)

// TestDivergenceTypedAndRepaired: a replica whose affected-row count
// disagrees with its peer is reported as a typed ReplicaDivergence (and
// as the legacy display marker), and the reconciler's digest comparison
// then repairs it from the healthy copy.
func TestDivergenceTypedAndRepaired(t *testing.T) {
	fed, _, fragWest := twoFragFed(t)
	ctx := context.Background()
	west1 := fragWest.Replicas()[0]
	west2 := fragWest.Replicas()[1]

	// Corrupt one replica behind the federation's back.
	if _, err := west2.DB().Exec("DELETE FROM parts WHERE sku = 'W2'"); err != nil {
		t.Fatal(err)
	}

	_, dr, err := fed.Exec(ctx, "UPDATE parts SET price = 42 WHERE region = 'west'")
	if err != nil {
		t.Fatal(err)
	}
	if dr.Rows != 2 {
		t.Fatalf("rows = %d, want 2 (first reporter)", dr.Rows)
	}
	if len(dr.Diverged) != 1 {
		t.Fatalf("diverged = %+v", dr.Diverged)
	}
	d := dr.Diverged[0]
	if d.Site != west2.Name() || d.Fragment != "west" || d.Rows != 1 || d.WantRows != 2 {
		t.Fatalf("divergence = %+v", d)
	}
	if !errors.Is(d.Err(), ErrReplicaDiverged) {
		t.Fatalf("Err() must wrap ErrReplicaDiverged: %v", d.Err())
	}
	// Legacy display marker preserved in SkippedReplicas.
	want := "west@west-2(diverged:1!=2)"
	var found bool
	for _, s := range dr.SkippedReplicas {
		if s == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("legacy marker %q missing from %v", want, dr.SkippedReplicas)
	}

	// The reconciler sees the digest mismatch and copy-repairs.
	rep, err := NewReconciler(fed).RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergent == 0 || rep.CopyRepaired == 0 {
		t.Fatalf("divergence not repaired: %+v", rep)
	}
	d1, _ := west1.DB().TableDigest("parts")
	d2, _ := west2.DB().TableDigest("parts")
	if !d1.Equal(d2) {
		t.Fatalf("digests still diverge: %+v vs %+v", d1, d2)
	}
	if n := west2.TableRows("parts"); n != 2 {
		t.Fatalf("repaired replica rows = %d, want 2", n)
	}
}

// TestRowsAttributionSharedSite: a site hosting several fragments of a
// table executes a searched statement once; the affected-row count is
// attributed per fragment by predicate census so DMLResult.Rows is
// exact, not the site-local total double-counted.
func TestRowsAttributionSharedSite(t *testing.T) {
	fed := New(NewAgoric())
	hub := NewSite("hub")
	westx := NewSite("west-x")
	for _, s := range []*Site{hub, westx} {
		if err := fed.AddSite(s); err != nil {
			t.Fatal(err)
		}
	}
	eastPred, _ := sqlparse.ParseExpr("region = 'east'")
	westPred, _ := sqlparse.ParseExpr("region = 'west'")
	fragEast := NewFragment("east", eastPred, hub)
	fragWest := NewFragment("west", westPred, hub, westx)
	if _, err := fed.DefineTable(partsDef(), fragEast, fragWest); err != nil {
		t.Fatal(err)
	}
	if err := fed.LoadFragment("parts", fragEast, []storage.Row{
		row("E1", "India ink", 3.5, "east"),
		row("E2", "ballpoint pen", 1.2, "east"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := fed.LoadFragment("parts", fragWest, []storage.Row{
		row("W1", "cordless drill", 99.5, "west"),
		row("W2", "forklift", 12000, "west"),
	}); err != nil {
		t.Fatal(err)
	}

	// Matches E1 (3.5), E2 (1.2) and W1 (99.5): 2 east rows + 1 west
	// row. The hub's local statement touches all 3 in one table; the
	// census must split them 2/1 across fragments, and the dedicated
	// west-x count must agree with the censused west count.
	ctx := context.Background()
	_, dr, err := fed.Exec(ctx, "UPDATE parts SET name = 'cheap' WHERE price < 100")
	if err != nil {
		t.Fatal(err)
	}
	if dr.Rows != 3 {
		t.Fatalf("rows = %d, want 3 (2 east + 1 west, no double count)", dr.Rows)
	}
	if len(dr.Diverged) != 0 {
		t.Fatalf("false divergence between censused and dedicated counts: %+v", dr.Diverged)
	}

	// DELETE through the same path.
	_, dr, err = fed.Exec(ctx, "DELETE FROM parts WHERE name = 'cheap'")
	if err != nil {
		t.Fatal(err)
	}
	if dr.Rows != 3 || len(dr.Diverged) != 0 {
		t.Fatalf("delete: %+v", dr)
	}
	if n := hub.TableRows("parts"); n != 1 {
		t.Fatalf("hub rows = %d, want 1 (forklift)", n)
	}
}

// TestDMLAbandonOnAllReplicasDown: a statement that no replica of a
// targeted fragment accepts fails with ErrNoReplica AND leaves no
// journaled intent behind — recovery replay must never resurrect a
// write the caller saw fail.
func TestDMLAbandonOnAllReplicasDown(t *testing.T) {
	fed, _, fragWest := twoFragFed(t)
	ctx := context.Background()
	for _, s := range fragWest.Replicas() {
		s.SetDown(true)
	}

	_, _, err := fed.Exec(ctx,
		"INSERT INTO parts (sku, name, price, region) VALUES ('W9', 'crane', 7.0, 'west')")
	if !errors.Is(err, ErrNoReplica) || !errors.Is(err, ErrSiteDown) {
		t.Fatalf("want ErrNoReplica wrapping ErrSiteDown, got %v", err)
	}
	_, _, err = fed.Exec(ctx, "UPDATE parts SET price = 1 WHERE region = 'west'")
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("update: want ErrNoReplica, got %v", err)
	}
	if n := fed.Journal().PendingTotal(); n != 0 {
		t.Fatalf("failed statements left %d pending intents", n)
	}

	// Recovery + repair must not resurrect either write.
	for _, s := range fragWest.Replicas() {
		s.SetDown(false)
	}
	if _, err := NewReconciler(fed).RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	for _, s := range fragWest.Replicas() {
		if n := s.TableRows("parts"); n != 2 {
			t.Fatalf("abandoned write resurrected at %s: %d rows", s.Name(), n)
		}
		res, err := s.DB().Exec("SELECT COUNT(*) FROM parts WHERE price = 1")
		if err != nil || res.Rows[0][0].Int() != 0 {
			t.Fatalf("abandoned update applied at %s: %v, %v", s.Name(), res, err)
		}
	}
}

// TestDMLPartialFragmentFailureKeepsAcceptedIntents: when one targeted
// fragment fails entirely but another fragment accepted the statement,
// the statement errors — yet intents at sites shared with the accepted
// fragment are kept so its copies still converge.
func TestDMLPartialFragmentFailureKeepsAcceptedIntents(t *testing.T) {
	fed, fragEast, fragWest := twoFragFed(t)
	ctx := context.Background()
	for _, s := range fragWest.Replicas() {
		s.SetDown(true)
	}

	// Targets both fragments (no predicate): east applies, west fails.
	_, _, err := fed.Exec(ctx, "UPDATE parts SET price = price + 1")
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("want ErrNoReplica, got %v", err)
	}
	// East applied the increment despite the statement error (partial
	// application is the documented best-effort contract).
	east := fragEast.Replicas()[0]
	res, err := east.DB().Exec("SELECT COUNT(*) FROM parts WHERE price = 4.5")
	if err != nil || res.Rows[0][0].Int() != 1 {
		t.Fatalf("east not applied: %v, %v", res, err)
	}
	// West's intents were abandoned — no shared site with an accepted
	// fragment exists in this layout.
	if n := fed.Journal().PendingTotal(); n != 0 {
		t.Fatalf("pending = %d, want 0", n)
	}
}

// TestQueryTraceStaleServedStreaming covers the streaming read path's
// stale-replica bookkeeping (the buffered path is covered by
// TestStaleReplicaPricing).
func TestQueryTraceStaleServedStreaming(t *testing.T) {
	fed, _, fragWest := twoFragFed(t)
	ctx := context.Background()
	west1 := fragWest.Replicas()[0]
	west2 := fragWest.Replicas()[1]
	west1.SetDown(true)
	if _, _, err := fed.Exec(ctx, "UPDATE parts SET price = 50 WHERE region = 'west'"); err != nil {
		t.Fatal(err)
	}
	west1.SetDown(false)
	west2.SetDown(true)

	rows, trace, err := fed.QueryStream(ctx, "SELECT sku FROM parts WHERE region = 'west'")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//lint:ignore errdrop test stream already drained to EOF
		_ = rows.Close()
	}()
	n := 0
	for {
		if _, rerr := rows.Next(); rerr != nil {
			if rerr != io.EOF {
				t.Fatalf("stream: %v", rerr)
			}
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("streamed rows = %d, want 2", n)
	}
	if len(trace.StaleServed) != 1 || !strings.Contains(trace.StaleServed[0], "west@west-1") {
		t.Fatalf("StaleServed = %v", trace.StaleServed)
	}
}
