package wrapper

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cohera/internal/plan"
	"cohera/internal/schema"
	"cohera/internal/storage"
)

// ERPSource simulates direct access to a content owner's internal system
// (SAP or another ERP): the close-relationship end of the paper's
// Characteristic 1 spectrum. Unlike scraped sources it supports predicate
// pushdown, serves live (volatile) data, and can apply a configurable
// per-call latency so federation benchmarks see realistic remote costs.
//
// Rows live in an internal storage.Table; the owning "enterprise" mutates
// it concurrently with integrator fetches, which is exactly the coupling
// the fetch-on-demand architecture is built for.
type ERPSource struct {
	name   string
	table  *storage.Table
	pushEq []string

	mu      sync.Mutex
	latency time.Duration
	fetches int
}

// NewERPSource wraps a live table as a gateway. pushEq lists columns the
// gateway filters remotely.
func NewERPSource(name string, table *storage.Table, pushEq ...string) *ERPSource {
	return &ERPSource{name: name, table: table, pushEq: pushEq}
}

// SetLatency configures the simulated per-call round trip. Safe to call
// while fetches are in flight — benchmarks reshape latency mid-run.
func (s *ERPSource) SetLatency(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latency = d
}

// Table exposes the backing table so the owning enterprise can mutate it.
func (s *ERPSource) Table() *storage.Table { return s.table }

// Fetches reports how many Fetch calls the gateway has served — used by
// the staleness experiments to count remote traffic.
func (s *ERPSource) Fetches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fetches
}

// Name implements Source.
func (s *ERPSource) Name() string { return s.name }

// Schema implements Source.
func (s *ERPSource) Schema() *schema.Table { return s.table.Def() }

// Capabilities implements Source. The gateway models direct access to a
// full engine, so it advertises complete σ/π/limit pushdown.
func (s *ERPSource) Capabilities() Capabilities {
	return Capabilities{PushdownEq: s.pushEq, Push: plan.FullPushCaps(), Volatile: true}
}

// Fetch implements Source: pushed equality filters use the table's
// indexes when present; remaining filters apply locally.
func (s *ERPSource) Fetch(ctx context.Context, filters []Filter) ([]storage.Row, error) {
	s.mu.Lock()
	s.fetches++
	latency := s.latency
	s.mu.Unlock()
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	caps := s.Capabilities()
	var pushed *Filter
	for i := range filters {
		if caps.CanPush(filters[i].Column) {
			pushed = &filters[i]
			break
		}
	}
	var rows []storage.Row
	if pushed != nil && s.table.HasIndex(pushed.Column) {
		ids, err := s.table.LookupEqual(pushed.Column, pushed.Value)
		if err != nil {
			return nil, fmt.Errorf("wrapper: erp %s: %w", s.name, err)
		}
		for _, id := range ids {
			if r, err := s.table.Get(id); err == nil {
				rows = append(rows, r)
			}
		}
	} else {
		s.table.Scan(func(_ int64, r storage.Row) bool {
			rows = append(rows, r)
			return true
		})
	}
	return applyFilters(s.table.Def(), rows, filters), nil
}

// StaticSource serves a fixed row set — the degenerate connector used for
// reference data and tests.
type StaticSource struct {
	name     string
	def      *schema.Table
	rows     []storage.Row
	volatile bool
}

// NewStaticSource builds a fixed source. Rows are validated eagerly.
func NewStaticSource(name string, def *schema.Table, rows []storage.Row) (*StaticSource, error) {
	for i, r := range rows {
		if err := def.Validate(r); err != nil {
			return nil, fmt.Errorf("wrapper: static %s row %d: %w", name, i, err)
		}
	}
	return &StaticSource{name: name, def: def, rows: rows}, nil
}

// Name implements Source.
func (s *StaticSource) Name() string { return s.name }

// Schema implements Source.
func (s *StaticSource) Schema() *schema.Table { return s.def }

// Capabilities implements Source.
func (s *StaticSource) Capabilities() Capabilities {
	return Capabilities{Volatile: s.volatile}
}

// Fetch implements Source.
func (s *StaticSource) Fetch(ctx context.Context, filters []Filter) ([]storage.Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]storage.Row, len(s.rows))
	for i, r := range s.rows {
		out[i] = r.Clone()
	}
	return applyFilters(s.def, out, filters), nil
}

// FuncSource generates rows on every fetch from a function — used to
// model business-rule "agents that automatically generate data like
// prices" (paper, Characteristic 5).
type FuncSource struct {
	name string
	def  *schema.Table
	gen  func(ctx context.Context, filters []Filter) ([]storage.Row, error)
	caps Capabilities
}

// NewFuncSource wraps a generator function as a volatile source.
func NewFuncSource(name string, def *schema.Table, caps Capabilities,
	gen func(ctx context.Context, filters []Filter) ([]storage.Row, error)) *FuncSource {
	caps.Volatile = true
	return &FuncSource{name: name, def: def, gen: gen, caps: caps}
}

// Name implements Source.
func (s *FuncSource) Name() string { return s.name }

// Schema implements Source.
func (s *FuncSource) Schema() *schema.Table { return s.def }

// Capabilities implements Source.
func (s *FuncSource) Capabilities() Capabilities { return s.caps }

// Fetch implements Source.
func (s *FuncSource) Fetch(ctx context.Context, filters []Filter) ([]storage.Row, error) {
	rows, err := s.gen(ctx, filters)
	if err != nil {
		return nil, fmt.Errorf("wrapper: func %s: %w", s.name, err)
	}
	for i, r := range rows {
		if err := s.def.Validate(r); err != nil {
			return nil, fmt.Errorf("wrapper: func %s row %d: %w", s.name, i, err)
		}
	}
	return applyFilters(s.def, rows, filters), nil
}
