// Package cohera is a from-scratch Go reproduction of the content
// integration system described in Stonebraker & Hellerstein, "Content
// Integration for E-Business" (SIGMOD 2001): an adaptive, agoric
// federated query processor in the Mariposa/Cohera tradition, together
// with the full stack it rests on — web/XML/CSV/ERP wrappers with
// trainable extraction, a transformation workbench, hierarchical
// taxonomies with semi-automatic matching, an object-relational SQL
// dialect with fuzzy and synonym search, materialized views, semantic
// caching, replication and fragmentation with failover, and custom
// syndication.
//
// The public API lives in internal/core (the Integrator facade); see the
// runnable programs under examples/ and the experiment harness in
// internal/bench reproduced by cmd/coherabench. DESIGN.md maps every
// subsystem to the paper's sections; EXPERIMENTS.md records measured
// behaviour against each of the paper's claims.
package cohera
