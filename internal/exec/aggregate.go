package exec

import (
	"fmt"
	"sort"
	"strings"

	"cohera/internal/plan"
	"cohera/internal/sqlparse"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// aggState accumulates one aggregate function over a group.
type aggState struct {
	name    string
	count   int64
	sumF    float64
	sumI    int64
	isFloat bool
	moneyC  string
	sumM    int64
	isMoney bool
	min     value.Value
	max     value.Value
}

func (a *aggState) add(v value.Value) error {
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs (except COUNT(*), handled apart)
	}
	a.count++
	switch a.name {
	case "SUM", "AVG":
		switch v.Kind() {
		case value.KindInt:
			a.sumI += v.Int()
			a.sumF += float64(v.Int())
		case value.KindFloat:
			a.isFloat = true
			a.sumF += v.Float()
		case value.KindMoney:
			m, c := v.Money()
			if a.isMoney && a.moneyC != c {
				return fmt.Errorf("%w in %s: %s vs %s", value.ErrCurrencyMismatch, a.name, a.moneyC, c)
			}
			a.isMoney = true
			a.moneyC = c
			a.sumM += m
		default:
			return fmt.Errorf("exec: %s over %s", a.name, v.Kind())
		}
	case "MIN", "MAX":
		if a.min.IsNull() {
			a.min, a.max = v, v
			return nil
		}
		if c, err := v.Compare(a.min); err != nil {
			return err
		} else if c < 0 {
			a.min = v
		}
		if c, err := v.Compare(a.max); err != nil {
			return err
		} else if c > 0 {
			a.max = v
		}
	}
	return nil
}

func (a *aggState) result() (value.Value, error) {
	switch a.name {
	case "COUNT":
		return value.NewInt(a.count), nil
	case "SUM":
		if a.count == 0 {
			return value.Null, nil
		}
		if a.isMoney {
			return value.NewMoney(a.sumM, a.moneyC), nil
		}
		if a.isFloat {
			return value.NewFloat(a.sumF), nil
		}
		return value.NewInt(a.sumI), nil
	case "AVG":
		if a.count == 0 {
			return value.Null, nil
		}
		if a.isMoney {
			return value.NewMoney(a.sumM/a.count, a.moneyC), nil
		}
		return value.NewFloat(a.sumF / float64(a.count)), nil
	case "MIN":
		return a.min, nil
	case "MAX":
		return a.max, nil
	default:
		return value.Null, fmt.Errorf("exec: unknown aggregate %s", a.name)
	}
}

// aggregate executes the grouped path: group rows by the GROUP BY keys,
// fold every aggregate call that appears in the select items, HAVING or
// ORDER BY, then evaluate those clauses with aggregate calls substituted
// by their folded values.
func (db *Database) aggregate(b *binding, items []sqlparse.SelectItem, s sqlparse.SelectStmt, ev *plan.Evaluator) (*Result, error) {
	// Collect distinct aggregate calls across all clauses.
	var aggCalls []sqlparse.Call
	seen := make(map[string]int)
	collect := func(e sqlparse.Expr) {
		plan.Walk(e, func(x sqlparse.Expr) bool {
			if c, ok := x.(sqlparse.Call); ok && plan.IsAggregateCall(c) {
				k := c.String()
				if _, dup := seen[k]; !dup {
					seen[k] = len(aggCalls)
					aggCalls = append(aggCalls, c)
				}
				return false
			}
			return true
		})
	}
	for _, it := range items {
		collect(it.Expr)
	}
	if s.Having != nil {
		collect(s.Having)
	}
	for _, o := range s.OrderBy {
		collect(o.Expr)
	}

	type group struct {
		keyVals  []value.Value
		firstEnv *plan.RowEnv
		states   []*aggState
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range b.rows {
		env := b.env(row)
		keyVals := make([]value.Value, len(s.GroupBy))
		kb := make([]byte, 0, 32)
		for i, g := range s.GroupBy {
			v, err := ev.Eval(g, env)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			kb = value.AppendKey(kb, v)
			kb = append(kb, 0)
		}
		k := string(kb)
		grp, ok := groups[k]
		if !ok {
			grp = &group{keyVals: keyVals, firstEnv: env}
			for _, c := range aggCalls {
				grp.states = append(grp.states, &aggState{name: c.Name})
			}
			groups[k] = grp
			order = append(order, k)
		}
		for i, c := range aggCalls {
			st := grp.states[i]
			if c.Name == "COUNT" {
				if len(c.Args) == 1 {
					if _, isStar := c.Args[0].(sqlparse.Star); isStar {
						st.count++
						continue
					}
				} else if len(c.Args) == 0 {
					st.count++
					continue
				}
			}
			if len(c.Args) != 1 {
				return nil, fmt.Errorf("exec: %s expects one argument", c.Name)
			}
			v, err := ev.Eval(c.Args[0], env)
			if err != nil {
				return nil, err
			}
			if err := st.add(v); err != nil {
				return nil, err
			}
		}
	}
	// Global aggregate over an empty input still yields one row.
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		grp := &group{firstEnv: plan.NewRowEnv(b.names, nullRow(len(b.names)))}
		for _, c := range aggCalls {
			grp.states = append(grp.states, &aggState{name: c.Name})
		}
		groups[""] = grp
		order = append(order, "")
	}

	res := &Result{Columns: itemNames(items)}
	type outRow struct {
		out  storage.Row
		keys map[string]value.Value // agg call string → folded value
		env  *plan.RowEnv
	}
	var rows []outRow
	for _, k := range order {
		grp := groups[k]
		folded := make(map[string]value.Value, len(aggCalls))
		for i, c := range aggCalls {
			v, err := grp.states[i].result()
			if err != nil {
				return nil, err
			}
			folded[c.String()] = v
		}
		aggEv := &plan.Evaluator{Text: ev.Text, Funcs: map[string]func([]value.Value) (value.Value, error){}}
		env := grp.firstEnv
		// HAVING first.
		if s.Having != nil {
			v, err := aggEv.Eval(substituteAggregates(s.Having, folded), env)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		out := make(storage.Row, len(items))
		for i, it := range items {
			v, err := aggEv.Eval(substituteAggregates(it.Expr, folded), env)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		rows = append(rows, outRow{out: out, keys: folded, env: env})
	}
	// ORDER BY over aliases, aggregate results, or group keys.
	if len(s.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(rows, func(i, j int) bool {
			for _, key := range s.OrderBy {
				vi, err := aggOrderValue(key.Expr, items, rows[i], ev)
				if err != nil {
					sortErr = err
					return false
				}
				vj, err := aggOrderValue(key.Expr, items, rows[j], ev)
				if err != nil {
					sortErr = err
					return false
				}
				c, err := vi.Compare(vj)
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if key.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, r.out)
	}
	return res, nil
}

func nullRow(n int) storage.Row {
	out := make(storage.Row, n)
	for i := range out {
		out[i] = value.Null
	}
	return out
}

func aggOrderValue(e sqlparse.Expr, items []sqlparse.SelectItem, r struct {
	out  storage.Row
	keys map[string]value.Value
	env  *plan.RowEnv
}, ev *plan.Evaluator) (value.Value, error) {
	if ref, ok := e.(sqlparse.ColumnRef); ok && ref.Table == "" {
		for i, it := range items {
			if strings.EqualFold(it.Alias, ref.Column) {
				return r.out[i], nil
			}
		}
	}
	sub := substituteAggregates(e, r.keys)
	aggEv := &plan.Evaluator{Text: ev.Text}
	return aggEv.Eval(sub, r.env)
}

// substituteAggregates replaces aggregate calls in the expression by
// literal folded values.
func substituteAggregates(e sqlparse.Expr, folded map[string]value.Value) sqlparse.Expr {
	switch x := e.(type) {
	case sqlparse.Call:
		if plan.IsAggregateCall(x) {
			if v, ok := folded[x.String()]; ok {
				return sqlparse.Literal{Value: v}
			}
			return x
		}
		args := make([]sqlparse.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substituteAggregates(a, folded)
		}
		return sqlparse.Call{Name: x.Name, Args: args}
	case sqlparse.Binary:
		return sqlparse.Binary{Op: x.Op,
			Left:  substituteAggregates(x.Left, folded),
			Right: substituteAggregates(x.Right, folded)}
	case sqlparse.Not:
		return sqlparse.Not{Inner: substituteAggregates(x.Inner, folded)}
	case sqlparse.Neg:
		return sqlparse.Neg{Inner: substituteAggregates(x.Inner, folded)}
	case sqlparse.IsNull:
		return sqlparse.IsNull{Inner: substituteAggregates(x.Inner, folded), Negate: x.Negate}
	case sqlparse.In:
		list := make([]sqlparse.Expr, len(x.List))
		for i, item := range x.List {
			list[i] = substituteAggregates(item, folded)
		}
		return sqlparse.In{Inner: substituteAggregates(x.Inner, folded), List: list, Negate: x.Negate}
	case sqlparse.Between:
		return sqlparse.Between{
			Inner:  substituteAggregates(x.Inner, folded),
			Lo:     substituteAggregates(x.Lo, folded),
			Hi:     substituteAggregates(x.Hi, folded),
			Negate: x.Negate,
		}
	case sqlparse.Like:
		return sqlparse.Like{
			Inner:   substituteAggregates(x.Inner, folded),
			Pattern: substituteAggregates(x.Pattern, folded),
			Negate:  x.Negate,
		}
	default:
		return e
	}
}
