package bench

import (
	"context"
	"fmt"
	"time"

	"cohera/internal/federation"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// E3OptimizerScale measures optimization cost as the federation grows —
// the paper's Characteristic 8 claim that "we see no way for
// compile-time, centralized cost-based optimizers to provide required
// scalability", versus the agoric design that "must scale to hundreds,
// if not thousands, of sites".
//
// The centralized baseline pays a serial statistics probe per registered
// site to refresh its snapshot (then ranks from the snapshot); the
// agoric optimizer collects bids from the fragment's replicas in
// parallel per query. We sweep the number of sites and report the time
// to produce a plan from a cold statistics state.
func E3OptimizerScale(cfg Config) (Table, error) {
	sizes := []int{4, 16, 64, 256, 1024}
	if cfg.Quick {
		sizes = []int{4, 32, 128}
	}
	t := Table{
		ID:      "E3",
		Title:   "cold-plan time vs federation size: agoric vs centralized",
		Headers: []string{"sites", "agoric plan", "centralized plan", "ratio"},
		Notes:   "expected shape: centralized grows linearly with site count (serial stat probes); agoric stays near-flat",
	}
	for _, n := range sizes {
		agoric, central, err := runE3(cfg.Seed, n)
		if err != nil {
			return t, err
		}
		ratio := float64(central) / float64(agoric)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmtDur(agoric),
			fmtDur(central),
			fmt.Sprintf("%.0fx", ratio),
		})
	}
	return t, nil
}

func runE3(seed int64, n int) (agoricTime, centralTime time.Duration, err error) {
	def := schema.MustTable("t", []schema.Column{
		{Name: "id", Kind: value.KindInt, NotNull: true},
	}, "id")
	fed := federation.New(federation.NewAgoric())
	sites := make([]*federation.Site, n)
	for i := range sites {
		s := federation.NewSite(fmt.Sprintf("site-%04d", i))
		s.SetCost(federation.CostModel{Latency: time.Duration(100+i%7*50) * time.Microsecond})
		if err := fed.AddSite(s); err != nil {
			return 0, 0, err
		}
		sites[i] = s
	}
	// One fragment replicated everywhere: the hardest planning case.
	frag := federation.NewFragment("f", nil, sites...)
	if _, err := fed.DefineTable(def, frag); err != nil {
		return 0, 0, err
	}
	if err := fed.LoadFragment("t", frag, []storage.Row{{value.NewInt(1)}}); err != nil {
		return 0, 0, err
	}
	ctx := context.Background()

	ag := federation.NewAgoric()
	start := time.Now()
	if ranked := ag.Rank(ctx, frag, 1); len(ranked) != n {
		return 0, 0, fmt.Errorf("bench: agoric ranked %d of %d", len(ranked), n)
	}
	agoricTime = time.Since(start)

	cen := federation.NewCentralized(fed)
	cen.ProbeLatency = 50 * time.Microsecond // modest per-site RPC
	start = time.Now()
	if ranked := cen.Rank(ctx, frag, 1); len(ranked) != n {
		return 0, 0, fmt.Errorf("bench: centralized ranked %d of %d", len(ranked), n)
	}
	centralTime = time.Since(start)
	return agoricTime, centralTime, nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
