package fault

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cohera/internal/ha"
)

func TestInjectorDeterministicStream(t *testing.T) {
	outcomes := func() []Outcome {
		inj := New("det", Config{ErrorRate: 0.3, HangRate: 0.1, TruncateRate: 0.2, Seed: 42})
		var out []Outcome
		for i := 0; i < 50; i++ {
			out = append(out, inj.Next())
		}
		return out
	}
	a, b := outcomes(), outcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed perturbs the stream.
	inj := New("det2", Config{ErrorRate: 0.3, HangRate: 0.1, TruncateRate: 0.2, Seed: 43})
	same := true
	for i := 0; i < 50; i++ {
		if inj.Next() != a[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seed should produce a different stream")
	}
}

func TestInjectorFailFirst(t *testing.T) {
	inj := New("ff", Config{FailFirst: 3, Seed: 1})
	for i := 0; i < 3; i++ {
		if err := inj.Inject(context.Background()); !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: want injected error, got %v", i, err)
		}
	}
	if err := inj.Inject(context.Background()); err != nil {
		t.Fatalf("after FailFirst drains, ops should pass: %v", err)
	}
}

func TestInjectorDisabled(t *testing.T) {
	inj := New("off", Config{ErrorRate: 1, Seed: 1})
	inj.SetEnabled(false)
	if inj.Enabled() {
		t.Fatal("should be disabled")
	}
	for i := 0; i < 10; i++ {
		if err := inj.Inject(context.Background()); err != nil {
			t.Fatalf("disabled injector must pass everything: %v", err)
		}
	}
}

func TestInjectorLatencyAndHang(t *testing.T) {
	inj := New("lat", Config{Latency: time.Millisecond, Seed: 1})
	start := time.Now()
	if err := inj.Inject(context.Background()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("latency injection should delay")
	}
	// A hang blocks until the context ends and reports injection.
	hang := New("hang", Config{HangRate: 1, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := hang.Inject(ctx)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("hang should report ErrInjected after cancellation, got %v", err)
	}
}

func TestScheduleWindows(t *testing.T) {
	s, err := NewSchedule(Window{Start: time.Second, End: 2 * time.Second},
		Window{Start: 3 * time.Second, End: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Duration
		down bool
	}{
		{0, false}, {time.Second, true}, {1500 * time.Millisecond, true},
		{2 * time.Second, false}, {3500 * time.Millisecond, true}, {5 * time.Second, false},
	}
	for _, c := range cases {
		if got := s.DownAt(c.at); got != c.down {
			t.Errorf("DownAt(%v) = %v, want %v", c.at, got, c.down)
		}
	}
	if s.End() != 4*time.Second {
		t.Errorf("End = %v", s.End())
	}
	// Malformed windows are rejected.
	if _, err := NewSchedule(Window{Start: time.Second, End: time.Second}); err == nil {
		t.Error("empty window should be rejected")
	}
	if _, err := NewSchedule(Window{Start: 2 * time.Second, End: 3 * time.Second},
		Window{Start: time.Second, End: 4 * time.Second}); err == nil {
		t.Error("out-of-order windows should be rejected")
	}
}

func TestFlapDeterministicAndBounded(t *testing.T) {
	a, err := Flap(time.Hour, 10*time.Minute, 24*time.Hour, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Flap(time.Hour, 10*time.Minute, 24*time.Hour, 5)
	aw, bw := a.Windows(), b.Windows()
	if len(aw) == 0 {
		t.Fatal("a day at MTBF=1h should flap at least once")
	}
	if len(aw) != len(bw) {
		t.Fatalf("same seed, different window count: %d vs %d", len(aw), len(bw))
	}
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("window %d differs", i)
		}
	}
	prev := time.Duration(0)
	for i, w := range aw {
		if w.Start >= w.End || w.Start < prev || w.End > 24*time.Hour {
			t.Fatalf("window %d malformed: %+v", i, w)
		}
		prev = w.End
	}
	// Invalid parameters are rejected.
	if _, err := Flap(0, time.Minute, time.Hour, 1); err == nil {
		t.Error("MTBF 0 should be rejected")
	}
	if _, err := Flap(time.Hour, time.Minute, 0, 1); err == nil {
		t.Error("horizon 0 should be rejected")
	}
	// MTTR 0 means instant repair: a valid, windowless schedule.
	z, err := Flap(time.Hour, 0, 24*time.Hour, 1)
	if err != nil {
		t.Fatalf("MTTR 0: %v", err)
	}
	if len(z.Windows()) != 0 {
		t.Errorf("instant repair should produce no outage windows, got %d", len(z.Windows()))
	}
}

func TestFlapFromHA(t *testing.T) {
	cfg := ha.Config{Sites: 1, Fragments: 1, Replicas: 1,
		MTBF: time.Hour, MTTR: 10 * time.Minute, Horizon: 48 * time.Hour, Seed: 9}
	s, err := FlapFromHA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Windows()) == 0 {
		t.Fatal("48h horizon should flap")
	}
}

func TestScheduledOutageThroughInjector(t *testing.T) {
	sched, err := NewSchedule(Window{Start: 0, End: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	clock := &ManualClock{}
	inj := New("flap", Config{Seed: 1})
	inj.SetSchedule(sched)
	inj.SetElapsed(clock.Elapsed)
	if !inj.Down() {
		t.Fatal("schedule starts down")
	}
	if err := inj.Inject(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("outage should inject, got %v", err)
	}
	clock.Advance(time.Second)
	if inj.Down() {
		t.Fatal("schedule should have cleared")
	}
	if err := inj.Inject(context.Background()); err != nil {
		t.Fatalf("after the window clears, ops pass: %v", err)
	}
}

func TestRoundTripperFaults(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"rows":[["a"],["b"],["c"],["d"]]}`)
	}))
	defer ts.Close()

	// Errors surface as transport failures wrapping ErrInjected.
	errClient := &http.Client{Transport: &RoundTripper{Injector: New("rt-err", Config{ErrorRate: 1, Seed: 1})}}
	_, err := errClient.Get(ts.URL)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected through url.Error, got %v", err)
	}

	// Truncation halves the body.
	truncClient := &http.Client{Transport: &RoundTripper{Injector: New("rt-trunc", Config{TruncateRate: 1, Seed: 1})}}
	resp, err := truncClient.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	full := len(`{"rows":[["a"],["b"],["c"],["d"]]}`)
	if len(body) != full/2 {
		t.Fatalf("truncated body = %d bytes, want %d", len(body), full/2)
	}

	// A hang respects the request context.
	hangClient := &http.Client{Transport: &RoundTripper{Injector: New("rt-hang", Config{HangRate: 1, Seed: 1})}}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := hangClient.Do(req); err == nil {
		t.Fatal("hang should fail once the context ends")
	}
	if time.Since(start) > time.Second {
		t.Fatal("hang should abort at the context deadline, not block")
	}

	// A clean injector passes requests through untouched.
	clean := &http.Client{Transport: &RoundTripper{Injector: New("rt-clean", Config{Seed: 1})}}
	resp, err = clean.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil || len(body) != full {
		t.Fatalf("clean pass-through: %d bytes, err %v", len(body), err)
	}
}
