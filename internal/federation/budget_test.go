package federation

import (
	"context"
	"testing"
	"time"

	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

func TestAgoricBudget(t *testing.T) {
	def := schema.MustTable("t", []schema.Column{
		{Name: "id", Kind: value.KindInt, NotNull: true},
	}, "id")
	fed := New(nil)
	cheap := NewSite("cheap")
	cheap.SetCost(CostModel{Latency: time.Microsecond})
	dear := NewSite("dear")
	dear.SetCost(CostModel{Latency: time.Millisecond})
	_ = fed.AddSite(cheap)
	_ = fed.AddSite(dear)
	frag := NewFragment("f", nil, cheap, dear)
	if _, err := fed.DefineTable(def, frag); err != nil {
		t.Fatal(err)
	}
	if err := fed.LoadFragment("t", frag, []storage.Row{{value.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	ag := NewAgoric()
	ag.Budget = float64(10 * time.Microsecond) // only the cheap site fits
	fed.SetOptimizer(ag)
	ctx := context.Background()
	ranked := ag.Rank(ctx, frag, 1)
	if len(ranked) != 1 || ranked[0].Name() != "cheap" {
		t.Fatalf("budget ranking = %v", names(ranked))
	}
	if ag.BidsRejected() == 0 {
		t.Error("expensive bid should have been rejected")
	}
	// When no bid fits, the cheapest wins anyway and the overrun counts.
	ag.Budget = float64(time.Nanosecond) / 10
	ranked = ag.Rank(ctx, frag, 1)
	if len(ranked) != 1 || ranked[0].Name() != "cheap" {
		t.Fatalf("overrun ranking = %v", names(ranked))
	}
	if ag.BudgetOverruns() == 0 {
		t.Error("overrun not counted")
	}
	// Queries still succeed under budget discipline.
	if _, err := fed.Query(ctx, "SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
}

func names(sites []*Site) []string {
	out := make([]string, len(sites))
	for i, s := range sites {
		out[i] = s.Name()
	}
	return out
}
