package fault

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RoundTripper wraps an http.RoundTripper with fault injection,
// turning any HTTP client — remote.Client via remote.WithTransport,
// wrapper.Session via wrapper.WithTransport — into a flaky one.
// Outright errors and scheduled outages surface as transport errors
// (wrapping ErrInjected), hangs block until the request context ends,
// latency delays the request, and truncation cuts the response body
// short so decoders see corrupt payloads.
type RoundTripper struct {
	// Base performs the real request; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Injector supplies the fault stream; nil passes everything through.
	Injector *Injector
}

// RoundTrip implements http.RoundTripper.
func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.Injector == nil {
		return base.RoundTrip(req)
	}
	o := t.Injector.Next()
	if o.Down {
		return nil, fmt.Errorf("%w: %s: scheduled outage", ErrInjected, t.Injector.Name())
	}
	if o.Err {
		return nil, fmt.Errorf("%w: %s: transport error", ErrInjected, t.Injector.Name())
	}
	if o.Hang {
		<-req.Context().Done()
		return nil, fmt.Errorf("%w: %s: hang aborted: %v", ErrInjected, t.Injector.Name(), req.Context().Err())
	}
	if o.Delay > 0 {
		timer := time.NewTimer(o.Delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !o.Truncate {
		return resp, err
	}
	return truncateResponse(resp)
}

// truncateResponse replaces the response body with its first half,
// simulating a connection dropped mid-transfer.
func truncateResponse(resp *http.Response) (*http.Response, error) {
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	closeErr := resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("fault: draining body for truncation: %w", err)
	}
	if closeErr != nil {
		return nil, fmt.Errorf("fault: closing body for truncation: %w", closeErr)
	}
	cut := body[:len(body)/2]
	resp.Body = io.NopCloser(bytes.NewReader(cut))
	resp.ContentLength = int64(len(cut))
	resp.Header.Del("Content-Length")
	return resp, nil
}
