// Command coheralint runs the project's static-analysis suite
// (internal/analysis) over module packages and reports findings keyed by
// file:line:col. It exits 1 when any finding survives //lint:ignore
// filtering, so scripts/check.sh can use it as a gate.
//
// Usage:
//
//	coheralint [flags] [packages]
//
// Packages are directory patterns relative to the module root
// ("./...", "./internal/federation", "./internal/..."); the default is
// "./...". Flags:
//
//	-list       print the analyzers and exit
//	-only a,b   run only the named analyzers
//	-v          print a per-package progress line
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cohera/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	verbose := flag.Bool("v", false, "print a per-package progress line")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintf(os.Stderr, "coheralint: loaded %s (%d files)\n", p.Path, len(p.Files))
		}
	}

	suite := analysis.DefaultSuite()
	if *only != "" {
		keep := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var filtered []analysis.Configured
		for _, c := range suite {
			if keep[c.Analyzer.Name] {
				filtered = append(filtered, c)
				delete(keep, c.Analyzer.Name)
			}
		}
		for n := range keep {
			fatal(fmt.Errorf("coheralint: unknown analyzer %q", n))
		}
		suite = filtered
	}

	diags := analysis.Run(pkgs, suite)
	for _, d := range diags {
		// Report paths relative to the module root for stable output.
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "coheralint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("coheralint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
