// Package taxonomy implements hierarchical product taxonomies (paper,
// Characteristic 3): UN/SPSC-style semantic hierarchies, subtree query
// expansion (a search for "refills" returns ink and lead refills),
// classification of free-text product names into categories, and a
// semi-automatic matcher that suggests correspondences between two
// taxonomies for a content manager to accept or edit.
package taxonomy

import (
	"fmt"
	"sort"

	"cohera/internal/ir"
)

// Category is one node of a taxonomy.
type Category struct {
	// Code is the stable identifier (e.g. a UN/SPSC segment code).
	Code string
	// Name is the human label ("Ink and lead refills").
	Name string
	// Parent is the parent code ("" for roots).
	Parent string
	// Synonyms are alternative labels content managers attach.
	Synonyms []string

	children []string
}

// Taxonomy is a forest of categories indexed by code. Not safe for
// concurrent mutation; build then share read-only.
type Taxonomy struct {
	// Name identifies the taxonomy (e.g. "unspsc").
	Name string

	nodes map[string]*Category
	roots []string
}

// New returns an empty taxonomy.
func New(name string) *Taxonomy {
	return &Taxonomy{Name: name, nodes: make(map[string]*Category)}
}

// ErrNoCategory is returned when a code is not defined.
var ErrNoCategory = fmt.Errorf("taxonomy: no such category")

// Add inserts a category. The parent must already exist (or be "").
func (t *Taxonomy) Add(code, name, parent string, synonyms ...string) error {
	if code == "" {
		return fmt.Errorf("taxonomy: empty code")
	}
	if _, dup := t.nodes[code]; dup {
		return fmt.Errorf("taxonomy: duplicate code %q", code)
	}
	if parent != "" {
		p, ok := t.nodes[parent]
		if !ok {
			return fmt.Errorf("%w: parent %q of %q", ErrNoCategory, parent, code)
		}
		p.children = append(p.children, code)
	} else {
		t.roots = append(t.roots, code)
	}
	t.nodes[code] = &Category{Code: code, Name: name, Parent: parent, Synonyms: synonyms}
	return nil
}

// MustAdd is Add panicking on error, for fixture construction.
func (t *Taxonomy) MustAdd(code, name, parent string, synonyms ...string) {
	if err := t.Add(code, name, parent, synonyms...); err != nil {
		panic(err)
	}
}

// Get returns a category by code.
func (t *Taxonomy) Get(code string) (*Category, error) {
	c, ok := t.nodes[code]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoCategory, code)
	}
	return c, nil
}

// Len returns the number of categories.
func (t *Taxonomy) Len() int { return len(t.nodes) }

// Roots returns the root codes in insertion order.
func (t *Taxonomy) Roots() []string {
	return append([]string(nil), t.roots...)
}

// Children returns the child codes of a category.
func (t *Taxonomy) Children(code string) ([]string, error) {
	c, err := t.Get(code)
	if err != nil {
		return nil, err
	}
	return append([]string(nil), c.children...), nil
}

// Path returns the codes from a root down to the category, inclusive.
func (t *Taxonomy) Path(code string) ([]string, error) {
	var rev []string
	for code != "" {
		c, err := t.Get(code)
		if err != nil {
			return nil, err
		}
		rev = append(rev, code)
		code = c.Parent
	}
	out := make([]string, len(rev))
	for i, c := range rev {
		out[len(rev)-1-i] = c
	}
	return out, nil
}

// Subtree returns the category and every descendant, pre-order.
// This is the paper's hierarchical query semantics: "a query to a
// hierarchical taxonomy of part names should return all parts at the
// matching levels as well as those below them".
func (t *Taxonomy) Subtree(code string) ([]string, error) {
	if _, err := t.Get(code); err != nil {
		return nil, err
	}
	var out []string
	var walk func(string)
	walk = func(c string) {
		out = append(out, c)
		for _, ch := range t.nodes[c].children {
			walk(ch)
		}
	}
	walk(code)
	return out, nil
}

// Depth returns the depth of the category (roots are depth 0).
func (t *Taxonomy) Depth(code string) (int, error) {
	p, err := t.Path(code)
	if err != nil {
		return 0, err
	}
	return len(p) - 1, nil
}

// Codes returns all codes sorted.
func (t *Taxonomy) Codes() []string {
	out := make([]string, 0, len(t.nodes))
	for c := range t.nodes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// labelTerms returns the analyzed terms of a category's name + synonyms.
func labelTerms(c *Category) []string {
	text := c.Name
	for _, s := range c.Synonyms {
		text += " " + s
	}
	return ir.Terms(text)
}

// Search finds categories whose labels match the query, best first. It is
// "browseable and searchable in the same manner as the data itself": the
// same analysis chain and fuzzy matching the IR engine uses.
func (t *Taxonomy) Search(query string, limit int) []SearchHit {
	qTerms := ir.Terms(query)
	if len(qTerms) == 0 {
		return nil
	}
	var hits []SearchHit
	for _, c := range t.nodes {
		terms := labelTerms(c)
		score := termOverlap(qTerms, terms)
		if score > 0 {
			hits = append(hits, SearchHit{Code: c.Code, Name: c.Name, Score: score})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Code < hits[j].Code
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// SearchHit is one taxonomy search result.
type SearchHit struct {
	Code  string
	Name  string
	Score float64
}

// termOverlap scores two term lists: exact term matches count 1, fuzzy
// matches (edit similarity ≥ 0.8) count their similarity, normalized by
// the query length.
func termOverlap(query, label []string) float64 {
	if len(query) == 0 || len(label) == 0 {
		return 0
	}
	total := 0.0
	for _, q := range query {
		best := 0.0
		for _, l := range label {
			var s float64
			if q == l {
				s = 1
			} else {
				s = ir.EditSimilarity(q, l)
				if s < 0.8 {
					s = 0
				}
			}
			if s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(query))
}

// ExpandCodes returns the subtree codes of every category matching the
// query above the threshold — the set a federated query's taxonomy
// predicate expands to.
func (t *Taxonomy) ExpandCodes(query string, minScore float64) []string {
	seen := make(map[string]bool)
	var out []string
	for _, h := range t.Search(query, 0) {
		if h.Score < minScore {
			continue
		}
		sub, err := t.Subtree(h.Code)
		if err != nil {
			continue
		}
		for _, c := range sub {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Strings(out)
	return out
}
