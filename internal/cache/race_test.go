package cache

import (
	"fmt"
	"sync"
	"testing"

	"cohera/internal/value"
)

// TestEvictionUnderConcurrentTraffic hammers a tiny cache with
// concurrent writers (every Store forces an LRU eviction), readers,
// and stats pollers. Run under -race this is the eviction race gate;
// in any mode it checks the structural invariants: the entry count
// never exceeds capacity, and a hit only ever returns rows from the
// requested region.
func TestEvictionUnderConcurrentTraffic(t *testing.T) {
	c := New(4)
	const (
		writers = 4
		readers = 4
		iters   = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Distinct region per iteration so stores never merely
				// subsume each other: the cache must evict.
				lo := int64((w*iters + i) * 10)
				if err := c.Store("t", []string{"k", "v"}, rng("k", lo, lo+9), rows(lo, lo+1)); err != nil {
					t.Errorf("store: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lo := int64((r*iters + i) * 10)
				got, ok := c.Lookup("t", []string{"k"}, rng("k", lo, lo+9))
				if !ok {
					continue // evicted or not yet stored — fine
				}
				for _, row := range got {
					k := row[0].Int()
					if k < lo || k > lo+9 {
						t.Errorf("hit for [%d,%d] returned key %d", lo, lo+9, k)
						return
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if n := c.Len(); n > 4 {
				t.Errorf("cache grew to %d entries, capacity 4", n)
				return
			}
			c.Stats()
		}
	}()
	wg.Wait()
	if n := c.Len(); n > 4 {
		t.Fatalf("final entry count %d exceeds capacity 4", n)
	}
}

// TestEvictionKeepsNewestStore: the entry just stored must never be
// the one evicted, even when every resident entry carries an older
// lastUsed stamp — the regression guard for LRU picking the wrong
// victim on a full cache.
func TestEvictionKeepsNewestStore(t *testing.T) {
	c := New(2)
	for i := int64(0); i < 10; i++ {
		lo := i * 10
		if err := c.Store("t", []string{"k", "v"}, rng("k", lo, lo+9), rows(lo)); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Lookup("t", []string{"k"}, rng("k", lo, lo+9)); !ok {
			t.Fatalf("entry stored at step %d was evicted immediately", i)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

// TestStoreDoesNotAliasCallerRows: Store must be safe against the
// caller reusing its row slice — the cached region's first value stays
// what it was at store time.
func TestStoreDoesNotAliasCallerRows(t *testing.T) {
	in := rows(5)
	if err := New(4).Store("t", []string{"k", "v"}, rng("k", 0, 9), in); err != nil {
		t.Fatal(err)
	}
	c := New(4)
	if err := c.Store("t", []string{"k", "v"}, rng("k", 0, 9), in); err != nil {
		t.Fatal(err)
	}
	in[0][0] = value.NewInt(999) // caller scribbles over its slice
	got, ok := c.Lookup("t", []string{"k"}, rng("k", 5, 5))
	if !ok {
		t.Fatal("stored region missing")
	}
	if len(got) != 1 || got[0][0].Int() != 5 {
		t.Fatalf("cached rows alias the caller's slice: got %v", got)
	}
}

func init() {
	// Guard against the helpers drifting: rows() builds (k, v) pairs.
	if r := rows(1); len(r[0]) != 2 {
		panic(fmt.Sprintf("rows helper shape changed: %v", r))
	}
}
