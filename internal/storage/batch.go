package storage

import "sync"

// DefaultBatchRows is the row-batch size streaming layers use when the
// caller does not configure one. Large enough to amortize per-batch
// overhead (one NDJSON line, one channel send), small enough that
// per-query coordinator memory stays O(batch × fragments).
const DefaultBatchRows = 256

// Batch is a reusable slice of rows flowing through the streaming
// pipeline. Batches come from a process-wide sync.Pool so the hot
// scatter-gather path does not allocate a fresh slice per chunk.
type Batch struct {
	Rows []Row
}

var batchPool = sync.Pool{
	New: func() any {
		return &Batch{Rows: make([]Row, 0, DefaultBatchRows)}
	},
}

// GetBatch returns an empty pooled batch.
func GetBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.Rows = b.Rows[:0]
	return b
}

// PutBatch returns a batch to the pool. The caller must not touch the
// batch afterwards; row references are dropped so pooled memory does
// not pin row data between uses.
func PutBatch(b *Batch) {
	if b == nil {
		return
	}
	for i := range b.Rows {
		b.Rows[i] = nil
	}
	b.Rows = b.Rows[:0]
	batchPool.Put(b)
}
