package core

import (
	"context"
	"strings"
	"testing"
)

func TestQueryFLWOR(t *testing.T) {
	in, _ := buildIntegrator(t, Options{})
	ctx := context.Background()
	out, err := in.QueryFLWOR(ctx,
		"SELECT sku, qty FROM catalog",
		`for $r in /result/row where $r/qty > 500 order by $r/qty descending
		 return <stocked sku="{$r/sku}">{$r/qty}</stocked>`,
		"inventory")
	if err != nil {
		t.Fatalf("QueryFLWOR: %v", err)
	}
	if !strings.HasPrefix(out, "<inventory>") || !strings.Contains(out, "<stocked sku=") {
		t.Errorf("flwor output = %q", out)
	}
	// Descending order by qty.
	first := strings.Index(out, "<stocked")
	if first < 0 {
		t.Fatal("no results")
	}
	// Errors propagate from each stage.
	if _, err := in.QueryFLWOR(ctx, "bad sql", "for $r in /x return <y/>", "r"); err == nil {
		t.Error("bad SQL should fail")
	}
	if _, err := in.QueryFLWOR(ctx, "SELECT sku FROM catalog", "not flwor", "r"); err == nil {
		t.Error("bad FLWOR should fail")
	}
}
