package cache

import (
	"context"
	"testing"
	"time"

	"cohera/internal/value"
)

// TestQuerierTTLRefetchesVolatileData wires a TTL'd cache to a live
// federation: cached answers serve inside the TTL (stale by design),
// then expire and refetch the current data — the knob that makes
// semantic caching safe for volatile content.
func TestQuerierTTLRefetchesVolatileData(t *testing.T) {
	fed := setupFed(t)
	c := New(8)
	c.TTL = 50 * time.Millisecond
	q := NewQuerier(fed, c)
	ctx := context.Background()
	const sql = "SELECT qty, name FROM parts WHERE qty BETWEEN 10 AND 12"
	res, err := q.Query(ctx, sql)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("cold = %v, %v", res, err)
	}
	// The source changes.
	gt, err := fed.Table("parts")
	if err != nil {
		t.Fatal(err)
	}
	site := gt.Fragments[0].Replicas()[0]
	tbl, err := site.DB().Table("parts")
	if err != nil {
		t.Fatal(err)
	}
	id, row, err := tbl.GetByKey(value.NewInt(11))
	if err != nil {
		t.Fatal(err)
	}
	row[1] = value.NewString("updated")
	if err := tbl.Update(id, row); err != nil {
		t.Fatal(err)
	}
	// Within the TTL the cached (stale) answer serves.
	res, err = q.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	stale := false
	for _, r := range res.Rows {
		if r[0].Int() == 11 && r[1].Str() != "updated" {
			stale = true
		}
	}
	if !stale {
		t.Error("expected the cached answer inside the TTL")
	}
	// After expiry the fresh row comes back.
	time.Sleep(60 * time.Millisecond)
	res, err = q.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	fresh := false
	for _, r := range res.Rows {
		if r[0].Int() == 11 && r[1].Str() == "updated" {
			fresh = true
		}
	}
	if !fresh {
		t.Error("expired cache did not refetch")
	}
}
