package storage

import (
	"fmt"
	"sort"

	"sync"

	"cohera/internal/ir"
	"cohera/internal/schema"
	"cohera/internal/value"
)

// Row is a stored tuple: values in schema column order.
type Row []value.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// ErrDuplicateKey is returned on inserting a row whose primary key exists.
var ErrDuplicateKey = fmt.Errorf("storage: duplicate primary key")

// ErrNoRow is returned for operations on a missing row id.
var ErrNoRow = fmt.Errorf("storage: no such row")

// ErrNoIndex is returned when an index lookup names an unindexed column.
var ErrNoIndex = fmt.Errorf("storage: no index on column")

// Table is a heap of rows with secondary indexes. All methods are safe for
// concurrent use.
type Table struct {
	def *schema.Table

	mu      sync.RWMutex
	rows    map[int64]Row
	nextID  int64
	pk      map[string]int64           // encoded key → row id (when schema has a key)
	btrees  map[int]*BTree             // column ordinal → ordered index
	hashes  map[int]map[string][]int64 // column ordinal → hash index
	texts   map[int]*ir.Index          // column ordinal → inverted index
	version uint64                     // bumped on every mutation (staleness tracking)
	digest  uint64                     // XOR of RowHash over stored rows (see digest.go)
}

// NewTable creates an empty table for the given schema. Columns marked
// FullText get inverted indexes automatically.
func NewTable(def *schema.Table) *Table {
	t := &Table{
		def:    def,
		rows:   make(map[int64]Row),
		nextID: 1,
		btrees: make(map[int]*BTree),
		hashes: make(map[int]map[string][]int64),
		texts:  make(map[int]*ir.Index),
	}
	if len(def.Key) > 0 {
		t.pk = make(map[string]int64)
	}
	for i, c := range def.Columns {
		if c.FullText {
			t.texts[i] = ir.NewIndex()
		}
	}
	return t
}

// Def returns the table's schema.
func (t *Table) Def() *schema.Table { return t.def }

// Version returns a counter bumped by every mutation. The materialized
// view layer compares versions to detect staleness.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// CreateIndex builds an ordered (B+tree) index on the named column,
// backfilling existing rows.
func (t *Table) CreateIndex(column string) error {
	ci := t.def.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("storage: table %q has no column %q", t.def.Name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.btrees[ci]; ok {
		return nil
	}
	bt := NewBTree()
	for id, row := range t.rows {
		if !row[ci].IsNull() {
			bt.Insert(row[ci], id)
		}
	}
	t.btrees[ci] = bt
	return nil
}

// CreateHashIndex builds an equality-only hash index on the named column.
func (t *Table) CreateHashIndex(column string) error {
	ci := t.def.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("storage: table %q has no column %q", t.def.Name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.hashes[ci]; ok {
		return nil
	}
	h := make(map[string][]int64)
	for id, row := range t.rows {
		if !row[ci].IsNull() {
			k := encodeValue(row[ci])
			h[k] = append(h[k], id)
		}
	}
	t.hashes[ci] = h
	return nil
}

// HasIndex reports whether column has an ordered index.
func (t *Table) HasIndex(column string) bool {
	ci := t.def.ColumnIndex(column)
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.btrees[ci]
	return ok
}

// encodeValue produces a stable map key for a value (kind-tagged).
func encodeValue(v value.Value) string {
	return value.Key(v)
}

func (t *Table) encodeKey(row Row) string {
	buf := make([]byte, 0, 32)
	for _, ki := range t.def.KeyIndexes() {
		buf = value.AppendKey(buf, row[ki])
		buf = append(buf, 0)
	}
	return string(buf)
}

// Insert validates and stores a row, returning its row id.
func (t *Table) Insert(row Row) (int64, error) {
	if err := t.def.Validate(row); err != nil {
		return 0, err
	}
	stored := row.Clone()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pk != nil {
		k := t.encodeKey(stored)
		if _, exists := t.pk[k]; exists {
			return 0, fmt.Errorf("%w: table %q key %v", ErrDuplicateKey, t.def.Name, k)
		}
		defer func() { t.pk[k] = t.nextID - 1 }()
	}
	id := t.nextID
	t.nextID++
	t.rows[id] = stored
	t.indexRowLocked(id, stored)
	t.version++
	return id, nil
}

// Upsert inserts the row or, when the primary key already exists, replaces
// the existing row in place. Tables without a key always insert.
func (t *Table) Upsert(row Row) (int64, error) {
	if err := t.def.Validate(row); err != nil {
		return 0, err
	}
	stored := row.Clone()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pk != nil {
		k := t.encodeKey(stored)
		if id, exists := t.pk[k]; exists {
			old := t.rows[id]
			t.unindexRowLocked(id, old)
			t.rows[id] = stored
			t.indexRowLocked(id, stored)
			t.version++
			return id, nil
		}
		t.pk[k] = t.nextID
	}
	id := t.nextID
	t.nextID++
	t.rows[id] = stored
	t.indexRowLocked(id, stored)
	t.version++
	return id, nil
}

// indexRowLocked maintains the secondary indexes and the content
// digest for a stored row; the caller holds t.mu. Every row addition
// flows through here and every removal through unindexRowLocked, and
// XOR is self-inverse, so the digest tracks the live row set exactly.
func (t *Table) indexRowLocked(id int64, row Row) {
	t.digest ^= RowHash(row)
	for ci, bt := range t.btrees {
		if !row[ci].IsNull() {
			bt.Insert(row[ci], id)
		}
	}
	for ci, h := range t.hashes {
		if !row[ci].IsNull() {
			k := encodeValue(row[ci])
			h[k] = append(h[k], id)
		}
	}
	for ci, ix := range t.texts {
		if !row[ci].IsNull() && row[ci].Kind() == value.KindString {
			ix.Add(id, row[ci].Str())
		}
	}
}

// unindexRowLocked removes a row from the secondary indexes and the
// content digest; the caller holds t.mu.
func (t *Table) unindexRowLocked(id int64, row Row) {
	t.digest ^= RowHash(row)
	for ci, bt := range t.btrees {
		if !row[ci].IsNull() {
			bt.Delete(row[ci], id)
		}
	}
	for ci, h := range t.hashes {
		if !row[ci].IsNull() {
			k := encodeValue(row[ci])
			ids := h[k]
			for j, r := range ids {
				if r == id {
					h[k] = append(ids[:j], ids[j+1:]...)
					break
				}
			}
			if len(h[k]) == 0 {
				delete(h, k)
			}
		}
	}
	for _, ix := range t.texts {
		ix.Remove(id)
	}
}

// Truncate removes every row, resetting indexes. Used by materialized
// view refresh to replace the view's contents atomically under the
// table's lock.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = make(map[int64]Row)
	if t.pk != nil {
		t.pk = make(map[string]int64)
	}
	for ci := range t.btrees {
		t.btrees[ci] = NewBTree()
	}
	for ci := range t.hashes {
		t.hashes[ci] = make(map[string][]int64)
	}
	for ci, ix := range t.texts {
		_ = ix
		t.texts[ci] = ir.NewIndex()
	}
	t.digest = 0
	t.version++
}

// Get returns a copy of the row with the given id.
func (t *Table) Get(id int64) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoRow, id)
	}
	return row.Clone(), nil
}

// Update replaces the row with the given id after validation.
func (t *Table) Update(id int64, row Row) error {
	if err := t.def.Validate(row); err != nil {
		return err
	}
	stored := row.Clone()
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoRow, id)
	}
	if t.pk != nil {
		oldK, newK := t.encodeKey(old), t.encodeKey(stored)
		if oldK != newK {
			if _, exists := t.pk[newK]; exists {
				return fmt.Errorf("%w: table %q", ErrDuplicateKey, t.def.Name)
			}
			delete(t.pk, oldK)
			t.pk[newK] = id
		}
	}
	t.unindexRowLocked(id, old)
	t.rows[id] = stored
	t.indexRowLocked(id, stored)
	t.version++
	return nil
}

// Delete removes the row with the given id.
func (t *Table) Delete(id int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoRow, id)
	}
	if t.pk != nil {
		delete(t.pk, t.encodeKey(row))
	}
	t.unindexRowLocked(id, row)
	delete(t.rows, id)
	t.version++
	return nil
}

// Scan visits every row (copy) in unspecified order. The visitor returns
// false to stop early.
func (t *Table) Scan(visit func(id int64, row Row) bool) {
	t.mu.RLock()
	ids := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	t.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t.mu.RLock()
		row, ok := t.rows[id]
		var c Row
		if ok {
			c = row.Clone()
		}
		t.mu.RUnlock()
		if !ok {
			continue
		}
		if !visit(id, c) {
			return
		}
	}
}

// IDs returns a snapshot of every row id, sorted ascending. Streaming
// scans iterate the snapshot and fetch rows lazily, so a stream holds
// O(ids) int64s instead of O(rows) materialized tuples; rows deleted
// after the snapshot are skipped at fetch time.
func (t *Table) IDs() []int64 {
	t.mu.RLock()
	ids := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	t.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// LookupEqual returns ids of rows whose column equals v, using the hash or
// B+tree index on that column.
func (t *Table) LookupEqual(column string, v value.Value) ([]int64, error) {
	ci := t.def.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("storage: table %q has no column %q", t.def.Name, column)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if h, ok := t.hashes[ci]; ok {
		ids := h[encodeValue(v)]
		out := make([]int64, len(ids))
		copy(out, ids)
		return out, nil
	}
	if bt, ok := t.btrees[ci]; ok {
		return bt.Lookup(v), nil
	}
	return nil, fmt.Errorf("%w: %q", ErrNoIndex, column)
}

// LookupRange returns ids of rows with lo <= column <= hi in key order,
// using the ordered index. NULL bounds are open.
func (t *Table) LookupRange(column string, lo, hi value.Value) ([]int64, error) {
	ci := t.def.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("storage: table %q has no column %q", t.def.Name, column)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	bt, ok := t.btrees[ci]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoIndex, column)
	}
	var out []int64
	bt.Range(lo, hi, func(_ value.Value, rows []int64) bool {
		out = append(out, rows...)
		return true
	})
	return out, nil
}

// TextSearch ranks rows of a full-text column against the query. See
// ir.SearchOptions for synonym and fuzzy expansion.
func (t *Table) TextSearch(column, query string, opts ir.SearchOptions) ([]ir.Hit, error) {
	ci := t.def.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("storage: table %q has no column %q", t.def.Name, column)
	}
	t.mu.RLock()
	ix, ok := t.texts[ci]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (not FullText)", ErrNoIndex, column)
	}
	return ix.Search(query, opts), nil
}

// TextIndex exposes the inverted index of a full-text column, or nil.
func (t *Table) TextIndex(column string) *ir.Index {
	ci := t.def.ColumnIndex(column)
	if ci < 0 {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.texts[ci]
}

// GetByKey fetches a row by primary key values (in key order).
func (t *Table) GetByKey(key ...value.Value) (int64, Row, error) {
	if t.pk == nil {
		return 0, nil, fmt.Errorf("storage: table %q has no primary key", t.def.Name)
	}
	kis := t.def.KeyIndexes()
	if len(key) != len(kis) {
		return 0, nil, fmt.Errorf("storage: table %q key arity %d, got %d", t.def.Name, len(kis), len(key))
	}
	probe := make(Row, len(t.def.Columns))
	for i, ki := range kis {
		probe[ki] = key[i]
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.pk[t.encodeKey(probe)]
	if !ok {
		return 0, nil, fmt.Errorf("%w: key %v", ErrNoRow, key)
	}
	return id, t.rows[id].Clone(), nil
}
