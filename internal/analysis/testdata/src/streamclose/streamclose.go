// Package streamclose is a coheralint fixture for the streamclose
// analyzer: row streams that leak versus closed or escaping streams.
package streamclose

import (
	"cohera/internal/admission"
	"cohera/internal/plan"
	"cohera/internal/storage"
)

func open() storage.RowStream {
	return storage.NewSliceStream([]string{"k"}, nil)
}

var lastCols []string

func leakDrain() {
	st := open() // want `row stream st is never closed`
	lastCols = st.Columns()
	for {
		if _, err := st.Next(); err != nil {
			return
		}
	}
}

func leakEarlyReturn(limit int) int {
	st := open() // want `row stream st is never closed`
	n := 0
	for n < limit {
		if _, err := st.Next(); err != nil {
			break
		}
		n++
	}
	return n
}

func leakConcrete() {
	st := storage.NewSliceStream([]string{"k"}, nil) // want `row stream st is never closed`
	lastCols = st.Columns()
}

func closedDefer() error {
	st := open() // negative: closed on the deferred path
	defer st.Close()
	_, err := st.Next()
	return err
}

func escapesReturn() storage.RowStream {
	st := open() // negative: returned, closing is the caller's contract
	lastCols = st.Columns()
	return st
}

func escapesCollect() ([]storage.Row, error) {
	st := open() // negative: CollectRows takes ownership and closes it
	return storage.CollectRows(st)
}

// The fused σ/π/limit decorator is a RowStream by interface
// satisfaction, not by declared type: the analyzer must catch the
// concrete *plan.FusedStream too.

func leakFused() {
	st := plan.FuseStream(open(), plan.FuseSpec{Limit: -1}) // want `row stream st is never closed`
	lastCols = st.Columns()
	for {
		if _, err := st.Next(); err != nil {
			return
		}
	}
}

func leakFusedEarlyBreak(limit int) int {
	st := plan.FuseStream(open(), plan.FuseSpec{Limit: limit}) // want `row stream st is never closed`
	n := 0
	for {
		if _, err := st.Next(); err != nil {
			break
		}
		n++
	}
	return n
}

func closedFusedDefer() error {
	st := plan.FuseStream(open(), plan.FuseSpec{Limit: -1}) // negative: closed on the deferred path
	defer st.Close()
	_, err := st.Next()
	return err
}

func escapesFusedReturn() storage.RowStream {
	st := plan.FuseStream(open(), plan.FuseSpec{Limit: -1}) // negative: returned, caller owns it
	return st
}

// The admission decorator wraps a stream to release its slot when the
// stream settles; leaking it leaks both the stream and the slot.

func leakTracked() {
	st := admission.NewTrackedStream(open(), func() {}) // want `row stream st is never closed`
	lastCols = st.Columns()
}

func closedTrackedDefer() error {
	st := admission.NewTrackedStream(open(), func() {}) // negative: closed on the deferred path
	defer st.Close()
	_, err := st.Next()
	return err
}

func escapesTrackedReturn() storage.RowStream {
	st := admission.NewTrackedStream(open(), func() {}) // negative: returned, caller owns the slot
	return st
}

type holder struct{ st storage.RowStream }

func escapesField(h *holder) {
	st := open() // negative: stored in a field, owner closes later
	h.st = st
}

func escapesComposite() *holder {
	st := open() // negative: handed to the composite literal
	return &holder{st: st}
}
