package remote

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cohera/internal/fault"
	"cohera/internal/resilience"
)

// flakyHandler returns 500 for the first fails requests, then 200.
func flakyHandler(fails int64) (http.Handler, *atomic.Int64) {
	var hits atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= fails {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte("{}"))
	})
	return h, &hits
}

func TestClientRetriesTransient5xx(t *testing.T) {
	h, hits := flakyHandler(2)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var retries atomic.Int64
	c := Dial(ts.URL, "", WithRetry(resilience.Retry{
		MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1,
		OnRetry: func(int, error, time.Duration) { retries.Add(1) },
	}))
	before := metClientRetries.Value()
	if !c.Healthy(context.Background()) {
		t.Fatal("third attempt should have succeeded")
	}
	if hits.Load() != 3 {
		t.Fatalf("server hits = %d, want 3 (two retries)", hits.Load())
	}
	if retries.Load() != 2 {
		t.Fatalf("OnRetry fired %d times, want 2", retries.Load())
	}
	if got := metClientRetries.Value() - before; got != 2 {
		t.Fatalf("retry counter advanced by %d, want 2", got)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"no such table"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	c := Dial(ts.URL, "", WithRetry(resilience.Retry{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1}))
	if _, err := c.Tables(context.Background()); err == nil {
		t.Fatal("404 should fail")
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want exactly 1 (4xx is permanent)", hits.Load())
	}
}

func TestClientNeverRetriesNonIdempotent(t *testing.T) {
	h, hits := flakyHandler(1)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := Dial(ts.URL, "", WithRetry(resilience.Retry{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1}))
	// A write-shaped call opts out of the retry policy entirely: a
	// blindly replayed statement could apply twice.
	if _, err := c.do(context.Background(), http.MethodPost, "/", nil, false); err == nil {
		t.Fatal("single failed attempt should surface")
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want exactly 1 (no blind retry)", hits.Load())
	}
}

func TestClientRetryExhaustionKeepsType(t *testing.T) {
	h, _ := flakyHandler(1 << 30)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := Dial(ts.URL, "", WithRetry(resilience.Retry{MaxAttempts: 2, BaseDelay: time.Millisecond, Seed: 1}))
	_, err := c.do(context.Background(), http.MethodGet, "/healthz", nil, true)
	if err == nil {
		t.Fatal("exhausted retries should fail")
	}
	var se *statusError
	if !errors.As(err, &se) || se.code != http.StatusInternalServerError {
		t.Fatalf("exhaustion error should wrap the last statusError, got %v", err)
	}
}

func TestClientRecoversThroughFaultyTransport(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`[]`))
	}))
	defer ts.Close()

	// The transport drops the first request on the floor; the retry
	// policy recovers the read without the caller noticing.
	inj := fault.New("client-rt", fault.Config{FailFirst: 1, Seed: 1})
	c := Dial(ts.URL, "",
		WithTransport(&fault.RoundTripper{Injector: inj}),
		WithRetry(resilience.Retry{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1}))
	if _, err := c.Tables(context.Background()); err != nil {
		t.Fatalf("retry should absorb the injected transport fault: %v", err)
	}

	// Without a retry policy the same fault surfaces, typed.
	inj2 := fault.New("client-rt2", fault.Config{FailFirst: 1, Seed: 1})
	c2 := Dial(ts.URL, "", WithTransport(&fault.RoundTripper{Injector: inj2}))
	if _, err := c2.Tables(context.Background()); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want fault.ErrInjected through the transport, got %v", err)
	}
}

func TestClientRetryRespectsContext(t *testing.T) {
	h, hits := flakyHandler(1 << 30)
	ts := httptest.NewServer(h)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := Dial(ts.URL, "", WithRetry(resilience.Retry{
		MaxAttempts: 100, BaseDelay: 10 * time.Millisecond, Seed: 1,
		OnRetry: func(attempt int, _ error, _ time.Duration) {
			if attempt == 2 {
				cancel()
			}
		},
	}))
	start := time.Now()
	if _, err := c.do(ctx, http.MethodGet, "/healthz", nil, true); err == nil {
		t.Fatal("cancelled retry loop should fail")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation should stop the retry loop promptly")
	}
	if hits.Load() >= 100 {
		t.Fatal("cancellation should not burn the whole attempt budget")
	}
}
