package obs

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestHandler() *Handler {
	return &Handler{Registry: NewRegistry(), Tracer: NewTracer(8), Slow: NewSlowLog(8)}
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestHealthz(t *testing.T) {
	h := newTestHandler()
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	h.Health = func() error { return errors.New("degraded") }
	rec = get(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("unhealthy status = %d, want 503", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] != "degraded" {
		t.Errorf("unhealthy body = %q", rec.Body.String())
	}
}

func TestMetricsEndpointTextAndJSON(t *testing.T) {
	h := newTestHandler()
	h.Registry.Counter("probe_total", "Probes.", nil).Add(2)
	h.Registry.Histogram("probe_seconds", "Latency.", nil).Observe(time.Millisecond)

	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"# TYPE probe_total counter", "probe_total 2",
		"# TYPE probe_seconds histogram", `probe_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}

	rec = get(t, h, "/metrics?format=json")
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 2 || len(snap.Histograms) != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	h := newTestHandler()
	rec := get(t, h, "/debug/trace/nope")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", rec.Code)
	}
	h.Tracer.record(Span{TraceID: "t1", SpanID: "a", Name: "root", Start: time.Unix(1, 0)})
	h.Tracer.record(Span{TraceID: "t1", SpanID: "b", ParentID: "a", Name: "kid", Start: time.Unix(2, 0)})
	rec = get(t, h, "/debug/trace/t1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp struct {
		TraceID   string      `json:"trace_id"`
		SpanCount int         `json:"span_count"`
		Roots     []*SpanNode `json:"roots"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != "t1" || resp.SpanCount != 2 || len(resp.Roots) != 1 || len(resp.Roots[0].Children) != 1 {
		t.Errorf("trace response = %+v", resp)
	}

	rec = get(t, h, "/debug/traces")
	var ids []string
	if err := json.Unmarshal(rec.Body.Bytes(), &ids); err != nil || len(ids) != 1 || ids[0] != "t1" {
		t.Errorf("traces = %v (%v)", ids, err)
	}
}

func TestDebugSlowEndpoint(t *testing.T) {
	h := newTestHandler()
	rec := get(t, h, "/debug/slow")
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("empty slow log = %d %q", rec.Code, rec.Body.String())
	}
	h.Slow.Record("SELECT 1", time.Second, "tid")
	rec = get(t, h, "/debug/slow")
	var recs []SlowQuery
	if err := json.Unmarshal(rec.Body.Bytes(), &recs); err != nil || len(recs) != 1 || recs[0].SQL != "SELECT 1" {
		t.Errorf("slow = %v (%v)", recs, err)
	}
}

func TestFallthroughToNext(t *testing.T) {
	h := newTestHandler()
	rec := get(t, h, "/something")
	if rec.Code != http.StatusNotFound {
		t.Errorf("nil Next should 404, got %d", rec.Code)
	}
	h.Next = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	rec = get(t, h, "/something")
	if rec.Code != http.StatusTeapot {
		t.Errorf("fallthrough status = %d, want 418", rec.Code)
	}
	// Observability paths are still intercepted.
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz with Next = %d", rec.Code)
	}
}
