package storage

import (
	"errors"
	"io"
	"testing"

	"cohera/internal/value"
)

func TestSliceStream(t *testing.T) {
	rows := []Row{
		{value.NewInt(1)},
		{value.NewInt(2)},
	}
	s := NewSliceStream([]string{"n"}, rows)
	if got := s.Columns(); len(got) != 1 || got[0] != "n" {
		t.Fatalf("Columns = %v", got)
	}
	for i := 0; i < 2; i++ {
		r, err := s.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if r[0].Int() != int64(i+1) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("exhausted Next = %v, want io.EOF", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Next after Close = %v, want ErrStreamClosed", err)
	}
}

func TestCollectRows(t *testing.T) {
	rows := []Row{{value.NewString("a")}, {value.NewString("b")}}
	got, err := CollectRows(NewSliceStream([]string{"s"}, rows))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("collected %d rows", len(got))
	}
}

func TestCollectRowsPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	if _, err := CollectRows(NewErrStream([]string{"c"}, boom)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestBatchPoolReuse(t *testing.T) {
	b := GetBatch()
	if len(b.Rows) != 0 {
		t.Fatalf("fresh batch has %d rows", len(b.Rows))
	}
	b.Rows = append(b.Rows, Row{value.NewInt(7)})
	PutBatch(b)
	b2 := GetBatch()
	if len(b2.Rows) != 0 {
		t.Fatalf("pooled batch not reset: %d rows", len(b2.Rows))
	}
	PutBatch(b2)
	PutBatch(nil) // must not panic
}
