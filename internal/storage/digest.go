package storage

import (
	"cohera/internal/value"
)

// Content digests for anti-entropy replica repair (see
// internal/federation's Reconciler). A table maintains an
// order-independent digest of its row content: the XOR of a stable
// 64-bit hash of every stored row. XOR is self-inverse, so the digest
// updates in O(1) on every insert, delete and in-place replace — two
// replicas that applied the same logical writes in any order report
// the same digest, and a replica that missed a write differs.
//
// The Rows count travels with the hash: a pair of identical rows in a
// keyless table XOR-cancels to the empty hash, so comparisons always
// check (Hash, Rows) together. Keyed tables cannot hold duplicate
// rows (the key is part of the row), so for them Hash alone is
// already collision-resistant up to the 64-bit birthday bound.

// TableDigest summarizes a table's (or a row subset's) content.
type TableDigest struct {
	// Hash is the XOR of RowHash over the covered rows (0 when empty).
	Hash uint64
	// Rows is the number of rows covered.
	Rows int
}

// Equal reports whether two digests describe identical content.
func (d TableDigest) Equal(o TableDigest) bool { return d.Hash == o.Hash && d.Rows == o.Rows }

// FNV-1a 64-bit parameters; inlined so hashing a row does not allocate
// a hash.Hash.
const (
	fnvOffset64 = 14695981039346816037
	fnvPrime64  = 1099511628211
)

// RowHash returns the stable content hash of a row: FNV-1a over the
// kind-tagged key encoding (value.AppendRowKey), so two rows hash
// identically iff their values are Equal column by column.
func RowHash(row Row) uint64 {
	buf := value.AppendRowKey(make([]byte, 0, 64), row)
	h := uint64(fnvOffset64)
	for _, b := range buf {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// Digest returns the whole-table content digest. O(1): the hash is
// maintained incrementally by every mutation.
func (t *Table) Digest() TableDigest {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return TableDigest{Hash: t.digest, Rows: len(t.rows)}
}

// DigestFunc digests the subset of rows match accepts — the
// per-fragment view of a table hosting several fragments. It scans
// under the read lock; match must not call back into the table or
// retain the row.
func (t *Table) DigestFunc(match func(Row) bool) TableDigest {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var d TableDigest
	for _, row := range t.rows {
		if match(row) {
			d.Hash ^= RowHash(row)
			d.Rows++
		}
	}
	return d
}
