package main

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"cohera/internal/admission"
	"cohera/internal/federation"
	"cohera/internal/storage"
)

// The overload scenario's capacity model: the single serving site is a
// pool of overloadWorkers, each request holding one worker for
// overloadService. Offered load beyond workers/service has to queue,
// shed, or blow up the tail — the whole point of the admission gate.
const (
	overloadWorkers = 4
	overloadService = 2 * time.Millisecond
)

// overloadSLO bounds admitted-request p99 measured from the scheduled
// arrival (open loop, coordinated-omission safe). It is deliberately
// generous — queue timeout + service time + CI scheduling noise — so
// the assertion only fires when the gate genuinely failed to bound
// queueing, not when the runner is slow.
const overloadSLO = 60 * time.Millisecond

// overloadFed is a one-site federation whose throughput ceiling is the
// worker pool above; the fault hook is the capacity model, not a fault.
func overloadFed() (*federation.Federation, error) {
	fed := federation.New(federation.NewAgoric())
	site := federation.NewSite("svc-1")
	if err := fed.AddSite(site); err != nil {
		return nil, err
	}
	frag := federation.NewFragment("all", nil, site)
	if _, err := fed.DefineTable(partsDef(), frag); err != nil {
		return nil, err
	}
	if err := fed.LoadFragment("parts", frag, []storage.Row{
		partsRow("E1", 3.5, "east"), partsRow("E2", 1.2, "east"),
		partsRow("W1", 99.5, "west"), partsRow("W2", 12000, "west"),
	}); err != nil {
		return nil, err
	}
	pool := make(chan struct{}, overloadWorkers)
	site.SetFaultHook(func(ctx context.Context) error {
		select {
		case pool <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		defer func() { <-pool }()
		t := time.NewTimer(overloadService)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	return fed, nil
}

// overloadCapacity measures sustainable throughput with a closed loop
// at concurrency = workers, so coordinator overhead is included and
// "4x" below means four times what this machine can actually serve.
func overloadCapacity() (float64, error) {
	fed, err := overloadFed()
	if err != nil {
		return 0, err
	}
	const perWorker = 40
	ctx := context.Background()
	errCh := make(chan error, overloadWorkers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < overloadWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < perWorker; q++ {
				if _, err := fed.Query(ctx, "SELECT sku FROM parts"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return 0, err
	}
	return float64(overloadWorkers*perWorker) / time.Since(start).Seconds(), nil
}

// overloadStats is one open-loop phase's outcome.
type overloadStats struct {
	admitted map[string]int // per tenant
	shed     map[string]int // per tenant
	lats     []time.Duration
	bad      error // first untyped or malformed refusal
}

func (st *overloadStats) totalShed() int {
	n := 0
	for _, v := range st.shed {
		n += v
	}
	return n
}

func (st *overloadStats) p99() time.Duration {
	if len(st.lats) == 0 {
		return 0
	}
	sort.Slice(st.lats, func(i, j int) bool { return st.lats[i] < st.lats[j] })
	return st.lats[int(0.99*float64(len(st.lats)-1))]
}

// overloadPhase fires perTenant open-loop requests per tenant at the
// given aggregate rate, latencies counted from the scheduled arrival.
// Every refusal must be the typed overload error carrying a positive
// Retry-After hint; anything else lands in stats.bad.
func overloadPhase(fed *federation.Federation, tenants []string, offered float64, perTenant int) *overloadStats {
	st := &overloadStats{admitted: map[string]int{}, shed: map[string]int{}}
	interval := time.Duration(float64(len(tenants)) * float64(time.Second) / offered)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for ti, tenant := range tenants {
		// Stagger tenants by a fraction of the interval so arrivals
		// interleave instead of stampeding in lockstep.
		phase := time.Duration(ti) * interval / time.Duration(len(tenants))
		ctx := admission.WithTenant(context.Background(), tenant)
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			sched := start.Add(phase + time.Duration(i)*interval)
			go func(tenant string, sched time.Time) {
				defer wg.Done()
				if d := time.Until(sched); d > 0 {
					//lint:ignore sleepsync open-loop pacing: the request fires at its scheduled arrival, synchronized with nothing
					time.Sleep(d)
				}
				_, err := fed.Query(ctx, "SELECT sku FROM parts")
				lat := time.Since(sched)
				mu.Lock()
				defer mu.Unlock()
				if err == nil {
					st.admitted[tenant]++
					st.lats = append(st.lats, lat)
					return
				}
				oe, ok := admission.AsOverload(err)
				switch {
				case !ok:
					if st.bad == nil {
						st.bad = fmt.Errorf("tenant %s: untyped refusal under overload: %w", tenant, err)
					}
				case oe.RetryAfter <= 0:
					if st.bad == nil {
						st.bad = fmt.Errorf("tenant %s: shed without a Retry-After hint: %v", tenant, oe)
					}
				default:
					st.shed[tenant]++
				}
			}(tenant, sched)
		}
	}
	wg.Wait()
	return st
}

// scenarioOverload: the serving-side robustness invariant. Three
// tenants drive an admission-gated federation open-loop at ~4x its
// measured capacity; the system must stay graceful — every refusal
// typed with a backoff hint, admitted p99 inside the SLO, no tenant
// starved — and when the offered load drops back below the per-tenant
// rates, serving must recover to shed-free with a drained gate.
func scenarioOverload(seed int64) error {
	_ = seed // arrivals are paced, not sampled: nothing random to seed
	capacity, err := overloadCapacity()
	if err != nil {
		return fmt.Errorf("calibration: %w", err)
	}

	fed, err := overloadFed()
	if err != nil {
		return err
	}
	tenants := []string{"alpha", "beta", "gamma"}
	rate := capacity / 6 // per tenant; the three sum to half capacity
	gate := admission.New(admission.Config{
		MaxInFlight:  overloadWorkers,
		QueueDepth:   4 * overloadWorkers,
		QueueTimeout: 20 * time.Millisecond,
		TenantRate:   rate,
		TenantBurst:  20,
	})
	defer gate.Close()
	fed.SetAdmission(gate)

	// Phase 1: 4x measured capacity, split evenly across the tenants.
	burst := overloadPhase(fed, tenants, 4*capacity, 600)
	if burst.bad != nil {
		return burst.bad
	}
	if burst.totalShed() == 0 {
		return fmt.Errorf("4x offered load shed nothing — the gate is not engaging")
	}
	if p99 := burst.p99(); p99 > overloadSLO {
		return fmt.Errorf("admitted p99 = %v under overload, want <= %v", p99, overloadSLO)
	}
	minAdm, maxAdm := -1, 0
	for _, tenant := range tenants {
		n := burst.admitted[tenant]
		if n == 0 {
			return fmt.Errorf("tenant %s fully starved under overload", tenant)
		}
		if minAdm < 0 || n < minAdm {
			minAdm = n
		}
		if n > maxAdm {
			maxAdm = n
		}
	}
	if float64(minAdm) < 0.5*float64(maxAdm) {
		return fmt.Errorf("unfair admission under overload: per-tenant admitted %v", burst.admitted)
	}

	// Let the token buckets refill to burst before declaring recovery.
	//lint:ignore sleepsync waiting out wall-clock token refill; there is no event to select on
	time.Sleep(150 * time.Millisecond)

	// Phase 2: offered load well under every tenant's sustained rate.
	calm := overloadPhase(fed, tenants, 3*0.4*rate, 40)
	if calm.bad != nil {
		return calm.bad
	}
	if n := calm.totalShed(); n != 0 {
		return fmt.Errorf("recovery phase still shedding (%d sheds): %v", n, calm.shed)
	}
	if p99 := calm.p99(); p99 > overloadSLO {
		return fmt.Errorf("recovery p99 = %v, want <= %v", p99, overloadSLO)
	}
	if q, f := gate.Queued(), gate.InFlight(); q != 0 || f != 0 {
		return fmt.Errorf("gate not drained after recovery: queued=%d inflight=%d", q, f)
	}
	if _, err := fed.Query(context.Background(), "SELECT sku FROM parts ORDER BY sku"); err != nil {
		return fmt.Errorf("post-recovery query: %w", err)
	}
	fmt.Printf("coherachaos: overload stats: capacity %.0f/s, burst admitted %v, shed %v, p99 %v; recovery p99 %v\n",
		capacity, burst.admitted, burst.shed, burst.p99(), calm.p99())
	return nil
}
