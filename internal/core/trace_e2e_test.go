package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cohera/internal/obs"
	"cohera/internal/remote"
	"cohera/internal/storage"
	"cohera/internal/value"
	"cohera/internal/workload"
)

// newCoheradLike assembles the handler stack coherad serves — the
// observability endpoints mounted in front of a remote server
// publishing one supplier catalog — and returns it as a test server.
func newCoheradLike(t *testing.T, supplier int, skuPrefix string) *httptest.Server {
	t.Helper()
	def := workload.CatalogDef()
	tbl := storage.NewTable(def.Clone("catalog"))
	sup := workload.Suppliers(supplier+1, 5, 0, 777)[supplier]
	rows, err := workload.GroundTruthRows(sup, value.DefaultCurrencyTable())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		r[0] = value.NewString(skuPrefix + "/" + r[0].Str())
		if _, err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	srv := remote.NewServer()
	srv.PublishTable(tbl, "sku")
	ts := httptest.NewServer(obs.NewHandler(srv))
	t.Cleanup(ts.Close)
	return ts
}

// TestFederatedQueryYieldsOneTraceTree is the acceptance path for span
// propagation: one federated SELECT over two coherad-backed sites must
// produce a single trace tree whose remote spans carry the
// coordinator's trace ID, and /debug/trace/{id} must serve that tree.
func TestFederatedQueryYieldsOneTraceTree(t *testing.T) {
	site1 := newCoheradLike(t, 0, "s1")
	site2 := newCoheradLike(t, 1, "s2")

	in, _ := buildIntegrator(t, Options{})
	ctx := context.Background()
	for _, ts := range []*httptest.Server{site1, site2} {
		if _, err := in.AttachRemote(ctx, ts.URL, ""); err != nil {
			t.Fatalf("AttachRemote(%s): %v", ts.URL, err)
		}
	}

	res, trace, err := in.Federation().QueryTraced(ctx, "SELECT sku FROM catalog")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("federated query returned no rows")
	}
	if trace.TraceID == "" {
		t.Fatal("query trace has no trace id")
	}

	spans := obs.DefaultTracer().Spans(trace.TraceID)
	fetches := map[string]bool{} // span id → is a remote.fetch span
	var serves []obs.Span
	for _, sp := range spans {
		if sp.TraceID != trace.TraceID {
			t.Errorf("span %s/%s strayed into trace %s", sp.Name, sp.SpanID, sp.TraceID)
		}
		switch sp.Name {
		case "remote.fetch", "remote.fetchstream":
			fetches[sp.SpanID] = true
		case "remote.serve":
			serves = append(serves, sp)
		}
	}
	// Both attached sites must have served a fetch inside this trace,
	// each parented under the coordinator's remote.fetch span — the
	// cross-process propagation the X-Cohera-* headers exist for.
	if len(serves) < 2 {
		t.Fatalf("remote.serve spans in trace = %d, want ≥ 2 (one per site)", len(serves))
	}
	for _, sp := range serves {
		if !fetches[sp.ParentID] {
			t.Errorf("remote.serve span %s parent %q is not a remote.fetch span", sp.SpanID, sp.ParentID)
		}
	}

	// The tree is visible through the daemon's introspection endpoint,
	// and hangs together as ONE tree under the federation.select root.
	resp, err := http.Get(site1.URL + "/debug/trace/" + trace.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status = %d", resp.StatusCode)
	}
	var tree struct {
		TraceID   string          `json:"trace_id"`
		SpanCount int             `json:"span_count"`
		Roots     []*obs.SpanNode `json:"roots"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		t.Fatal(err)
	}
	if tree.TraceID != trace.TraceID || tree.SpanCount != len(spans) {
		t.Errorf("endpoint tree = (%s, %d), want (%s, %d)", tree.TraceID, tree.SpanCount, trace.TraceID, len(spans))
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "federation.select" {
		t.Fatalf("want one federation.select root, got %d roots (first %q)",
			len(tree.Roots), tree.Roots[0].Name)
	}
	if countNodes(tree.Roots[0]) != tree.SpanCount {
		t.Errorf("tree holds %d spans of %d — broken parent links", countNodes(tree.Roots[0]), tree.SpanCount)
	}

	// An unknown trace 404s.
	resp2, err := http.Get(site1.URL + "/debug/trace/" + obs.NewTraceID())
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", resp2.StatusCode)
	}
}

func countNodes(n *obs.SpanNode) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// TestDaemonMetricsAfterFederatedQuery: after real traffic, the daemon's
// /metrics endpoint exports the per-site subquery histograms the agoric
// optimizer feeds on.
func TestDaemonMetricsAfterFederatedQuery(t *testing.T) {
	site := newCoheradLike(t, 0, "m1")
	in, _ := buildIntegrator(t, Options{})
	ctx := context.Background()
	if _, err := in.AttachRemote(ctx, site.URL, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Query(ctx, "SELECT sku FROM catalog"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(site.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		fmt.Sprintf(`cohera_site_subquery_seconds_bucket{site=%q`, site.URL),
		"cohera_remote_server_requests_total",
		"cohera_federation_queries_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
