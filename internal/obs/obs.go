// Package obs is the observability substrate of the content
// integration system: a lock-free metrics registry (atomic counters,
// gauges and fixed-bucket latency histograms rendered in Prometheus
// text format and as JSON), span-based tracing whose identifiers
// propagate across process boundaries through the X-Cohera-Trace-Id /
// X-Cohera-Span-Id HTTP headers, a bounded in-memory slow-query log,
// and the introspection endpoints (/metrics, /healthz,
// /debug/trace/{id}, /debug/slow) that expose all three.
//
// The package is a leaf: it depends only on the standard library, so
// every layer of the system — wrappers, the federated executor, the
// remote transport, caches and refresh daemons — can record into the
// shared default registry and tracer without import cycles. Metric
// write paths (Inc, Add, Observe) are purely atomic; registration uses
// a sync.Map so get-or-create lookups never serialize writers.
//
// Observed per-site latency histograms double as an optimizer input:
// federation/agoric.go blends each bidder's observed p50 into its bid
// price, closing the feedback loop the paper's market design implies
// (bids should reflect what a site actually delivers, not only what its
// cost model promises).
package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// defaultRegistry and defaultTracer back the package-level accessors.
var (
	defaultRegistry = NewRegistry()
	defaultTracer   = NewTracer(512)
)

// Default returns the process-wide metrics registry every instrumented
// component records into.
func Default() *Registry { return defaultRegistry }

// DefaultTracer returns the process-wide span store.
func DefaultTracer() *Tracer { return defaultTracer }

// idSeq seeds fallback IDs when the system entropy source fails.
var idSeq atomic.Uint64

// newID returns n random bytes hex-encoded (2n characters).
func newID(n int) string {
	b := make([]byte, n)
	if _, err := crand.Read(b); err != nil {
		// Entropy exhaustion is effectively unreachable, but IDs must
		// still be unique within the process: fall back to a counter.
		binary.BigEndian.PutUint64(b[:8:8], idSeq.Add(1))
	}
	return hex.EncodeToString(b)
}

// NewTraceID mints a 32-character trace identifier.
func NewTraceID() string { return newID(16) }

// NewSpanID mints a 16-character span identifier.
func NewSpanID() string { return newID(8) }
