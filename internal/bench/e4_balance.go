package bench

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"cohera/internal/federation"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// E4LoadBalance measures adaptive load balancing (Characteristic 8): a
// fragment replicated across heterogeneous sites under concurrent load,
// with a new machine joining mid-run. The agoric optimizer's bids
// reflect each site's *instantaneous* queue, so work spreads and the new
// machine is used immediately ("the optimizer takes advantage of them as
// soon as they are added, with no need for downtime"); the centralized
// baseline routes on its statistics snapshot, piling work on the
// snapshot-preferred site and ignoring the newcomer until a refresh.
func E4LoadBalance(cfg Config) (Table, error) {
	replicas, queriesPhase := 4, 160
	if cfg.Quick {
		replicas, queriesPhase = 3, 40
	}
	t := Table{
		ID:      "E4",
		Title:   "served-subquery balance under concurrency and mid-run scale-out",
		Headers: []string{"optimizer", "phase", "per-site served", "CoV", "new-site share"},
		Notes:   "expected shape: agoric spreads load (low CoV) and routes to the new machine immediately; centralized piles on the snapshot favourite",
	}
	for _, mode := range []string{"agoric", "centralized"} {
		rows, err := runE4(cfg.Seed, mode, replicas, queriesPhase)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

func runE4(seed int64, mode string, replicas, queriesPhase int) ([][]string, error) {
	def := schema.MustTable("t", []schema.Column{
		{Name: "id", Kind: value.KindInt, NotNull: true},
	}, "id")
	fed := federation.New(nil)
	cost := federation.CostModel{
		Latency: 300 * time.Microsecond, PerRow: 10 * time.Microsecond, LoadPenalty: 1,
	}
	var sites []*federation.Site
	for i := 0; i < replicas; i++ {
		s := federation.NewSite(fmt.Sprintf("site-%d", i))
		s.SetCost(cost)
		if err := fed.AddSite(s); err != nil {
			return nil, err
		}
		sites = append(sites, s)
	}
	frag := federation.NewFragment("f", nil, sites...)
	if _, err := fed.DefineTable(def, frag); err != nil {
		return nil, err
	}
	var rows []storage.Row
	for i := int64(0); i < 20; i++ {
		rows = append(rows, storage.Row{value.NewInt(i)})
	}
	if err := fed.LoadFragment("t", frag, rows); err != nil {
		return nil, err
	}
	switch mode {
	case "agoric":
		fed.SetOptimizer(federation.NewAgoric())
	default:
		cen := federation.NewCentralized(fed)
		cen.ProbeLatency = 0
		cen.StatsTTL = time.Hour // snapshot never refreshes mid-run
		cen.RefreshStats(context.Background())
		fed.SetOptimizer(cen)
	}
	ctx := context.Background()
	fire := func(n int) error {
		var wg sync.WaitGroup
		errs := make(chan error, n)
		sem := make(chan struct{}, 16)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if _, err := fed.Query(ctx, "SELECT id FROM t WHERE id < 10"); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		return <-errs
	}
	// Phase 1: steady state.
	if err := fire(queriesPhase); err != nil {
		return nil, err
	}
	served := make([]int64, len(sites))
	for i, s := range sites {
		served[i] = s.Served()
		s.ResetCounters()
	}
	phase1 := fmt.Sprintf("%v", served)
	cov1 := coefficientOfVariation(served)

	// Phase 2: a new machine joins with a copy of the fragment.
	newSite := federation.NewSite("site-new")
	newSite.SetCost(cost)
	if err := fed.AddSite(newSite); err != nil {
		return nil, err
	}
	if err := fed.LoadFragment("t", federation.NewFragment("copy", nil, newSite), rows); err != nil {
		return nil, err
	}
	frag.AddReplica(newSite)
	if err := fire(queriesPhase); err != nil {
		return nil, err
	}
	all := append(append([]*federation.Site{}, sites...), newSite)
	served2 := make([]int64, len(all))
	var total int64
	for i, s := range all {
		served2[i] = s.Served()
		total += s.Served()
	}
	share := float64(newSite.Served()) / float64(total)
	out := [][]string{
		{mode, "steady", phase1, fmt.Sprintf("%.2f", cov1), "-"},
		{mode, "after join", fmt.Sprintf("%v", served2), fmt.Sprintf("%.2f", coefficientOfVariation(served2)), fmt.Sprintf("%.0f%%", share*100)},
	}
	return out, nil
}

func coefficientOfVariation(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += float64(x)
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0
	}
	varsum := 0.0
	for _, x := range xs {
		d := float64(x) - mean
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(xs))) / mean
}
