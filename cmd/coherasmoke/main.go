// Command coherasmoke is the CI smoke probe for the observability
// endpoints: it assembles the same handler stack coherad serves —
// obs.Handler in front of a remote.Server publishing one table — runs a
// fetch through it to move the metrics, then asserts that /healthz
// answers 200, that /metrics emits non-empty, well-formed Prometheus
// text, and that the query-observability surface works end to end: an
// EXPLAIN ANALYZE whose per-fragment row counts sum to the result
// cardinality, an open stream visible in /debug/queries, and an
// operator cancel that kills it with the typed cause. Exit status 0
// means the daemon surface is healthy; any defect prints a diagnostic
// and exits 1. scripts/check.sh runs it as a gate.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"cohera/internal/federation"
	"cohera/internal/obs"
	"cohera/internal/remote"
	"cohera/internal/schema"
	"cohera/internal/sqlparse"
	"cohera/internal/storage"
	"cohera/internal/value"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "coherasmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("coherasmoke: /healthz ok, /metrics well-formed, explain+queries+cancel ok")
}

func run() error {
	srv := remote.NewServer()
	tbl, err := demoTable()
	if err != nil {
		return err
	}
	srv.PublishTable(tbl, "sku")
	h := obs.NewHandler(srv)
	h.Slow = obs.NewSlowLog(0)
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Exercise the content path first so the registry has real series.
	ctx := context.Background()
	cl := remote.Dial(ts.URL, "")
	sources, err := cl.Tables(ctx)
	if err != nil {
		return fmt.Errorf("/tables: %w", err)
	}
	if len(sources) != 1 {
		return fmt.Errorf("/tables: want 1 source, got %d", len(sources))
	}
	rows, err := sources[0].Fetch(ctx, nil)
	if err != nil {
		return fmt.Errorf("/fetch: %w", err)
	}
	if len(rows) == 0 {
		return fmt.Errorf("/fetch: no rows")
	}

	if err := checkHealth(ts.URL); err != nil {
		return err
	}
	if err := checkMetrics(ts.URL); err != nil {
		return err
	}
	return checkQueryObservability(ts.URL)
}

// checkQueryObservability drives a 3-site federation through the
// operator surface: EXPLAIN ANALYZE must account for every streamed
// row per fragment, the in-flight registry must list an open stream,
// and a cancel through the endpoint must terminate it with the typed
// cause.
func checkQueryObservability(base string) error {
	fed, err := smokeFederation()
	if err != nil {
		return err
	}
	ctx := context.Background()

	// EXPLAIN ANALYZE: the fragment stages' row counts must sum to the
	// result cardinality (disjoint fragments, no coordinator filter).
	stmt, err := sqlparse.Parse("EXPLAIN ANALYZE SELECT sku, price FROM parts")
	if err != nil {
		return err
	}
	rep, err := fed.Explain(ctx, stmt.(sqlparse.ExplainStmt))
	if err != nil {
		return fmt.Errorf("explain analyze: %w", err)
	}
	if rep.ResultRows != 15 {
		return fmt.Errorf("explain analyze: %d result rows, want 15", rep.ResultRows)
	}
	var sum int64
	frags := rep.FragmentRows()
	for _, n := range frags {
		sum += n
	}
	if int(sum) != rep.ResultRows || len(frags) != 3 {
		return fmt.Errorf("explain analyze: %d fragment stages summing %d rows, want 3 summing %d",
			len(frags), sum, rep.ResultRows)
	}
	if len(rep.Render().Rows) == 0 {
		return fmt.Errorf("explain analyze: empty rendering")
	}

	// Open a stream without draining it: it must appear in
	// /debug/queries (served off the same process-wide registry the
	// handler mounts).
	sel, err := sqlparse.Parse("SELECT sku, price FROM parts")
	if err != nil {
		return err
	}
	st, _, err := fed.SelectStream(ctx, sel.(sqlparse.SelectStmt))
	if err != nil {
		return fmt.Errorf("select stream: %w", err)
	}
	defer st.Close()
	resp, err := http.Get(base + "/debug/queries")
	if err != nil {
		return fmt.Errorf("/debug/queries: %w", err)
	}
	var snaps []obs.ActiveQuerySnapshot
	jerr := json.NewDecoder(resp.Body).Decode(&snaps)
	resp.Body.Close()
	if jerr != nil {
		return fmt.Errorf("/debug/queries: decoding: %w", jerr)
	}
	var open *obs.ActiveQuerySnapshot
	for i := range snaps {
		if strings.Contains(snaps[i].SQL, "FROM parts") {
			open = &snaps[i]
		}
	}
	if open == nil {
		return fmt.Errorf("/debug/queries: open stream not listed (%d entries)", len(snaps))
	}

	// Cancel it through the endpoint: the stream must die with the
	// typed operator-cancel cause, never a silent clean EOF.
	curl := fmt.Sprintf("%s/debug/queries/%d/cancel", base, open.ID)
	cresp, err := http.Post(curl, "application/json", nil)
	if err != nil {
		return fmt.Errorf("cancel: %w", err)
	}
	//lint:ignore errdrop status code is the assertion; the body is advisory
	io.Copy(io.Discard, cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		return fmt.Errorf("cancel: status %d, want 200", cresp.StatusCode)
	}
	for {
		_, err := st.Next()
		if err == nil {
			continue // buffered rows may still surface; the error must follow
		}
		if err == io.EOF {
			return fmt.Errorf("cancelled stream ended with clean EOF, want typed error")
		}
		if !errors.Is(err, obs.ErrQueryCanceled) {
			return fmt.Errorf("cancelled stream error = %v, want obs.ErrQueryCanceled", err)
		}
		break
	}
	return nil
}

// smokeFederation assembles three dedicated sites, each hosting one
// disjoint keyed fragment of a "parts" table (4 + 5 + 6 rows).
func smokeFederation() (*federation.Federation, error) {
	fed := federation.New(federation.NewAgoric())
	def, err := schema.NewTable("parts", []schema.Column{
		{Name: "sku", Kind: value.KindString},
		{Name: "price", Kind: value.KindFloat},
	}, "sku")
	if err != nil {
		return nil, err
	}
	sizes := []int{4, 5, 6}
	var frags []*federation.Fragment
	for i := range sizes {
		site := federation.NewSite(fmt.Sprintf("smoke-%d", i))
		if err := fed.AddSite(site); err != nil {
			return nil, err
		}
		frags = append(frags, federation.NewFragment(fmt.Sprintf("f%d", i+1), nil, site))
	}
	if _, err := fed.DefineTable(def, frags...); err != nil {
		return nil, err
	}
	for i, n := range sizes {
		rows := make([]storage.Row, 0, n)
		for j := 0; j < n; j++ {
			rows = append(rows, storage.Row{
				value.NewString(fmt.Sprintf("sku-%d-%d", i, j)),
				value.NewFloat(float64(10*i + j)),
			})
		}
		if err := fed.LoadFragment("parts", frags[i], rows); err != nil {
			return nil, err
		}
	}
	return fed, nil
}

func checkHealth(base string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("/healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/healthz: status %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("/healthz: reading body: %w", err)
	}
	if strings.TrimSpace(string(body)) != "ok" {
		return fmt.Errorf("/healthz: body %q, want \"ok\"", body)
	}
	return nil
}

// checkMetrics asserts the exposition is non-empty and well-formed:
// every non-comment line is `name{labels} value` or `name value`, every
// series is preceded by # HELP and # TYPE for its family, and the
// series the smoke traffic must have produced are present.
func checkMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: status %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("/metrics: reading body: %w", err)
	}
	text := string(body)
	if strings.TrimSpace(text) == "" {
		return fmt.Errorf("/metrics: empty exposition")
	}
	typed := map[string]bool{}
	series := 0
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) < 4 {
				return fmt.Errorf("/metrics line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				typed[parts[2]] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("/metrics line %d: unknown comment %q", ln+1, line)
		}
		name := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			if !strings.Contains(line, "} ") {
				return fmt.Errorf("/metrics line %d: unterminated labels %q", ln+1, line)
			}
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
		} else {
			return fmt.Errorf("/metrics line %d: no value %q", ln+1, line)
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[family] {
			return fmt.Errorf("/metrics line %d: series %q has no # TYPE", ln+1, name)
		}
		series++
	}
	if series == 0 {
		return fmt.Errorf("/metrics: no series emitted")
	}
	for _, want := range []string{
		"cohera_remote_server_requests_total",
		"cohera_remote_client_requests_total",
		"cohera_wrapper_fetches_total",
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("/metrics: missing expected series %s", want)
		}
	}
	return nil
}

func demoTable() (*storage.Table, error) {
	def, err := schema.NewTable("catalog", []schema.Column{
		{Name: "sku", Kind: value.KindString},
		{Name: "price", Kind: value.KindFloat},
	})
	if err != nil {
		return nil, err
	}
	tbl := storage.NewTable(def)
	for i, sku := range []string{"drill-01", "saw-02", "vise-03"} {
		if _, err := tbl.Insert(storage.Row{
			value.NewString(sku), value.NewFloat(float64(10 * (i + 1))),
		}); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}
