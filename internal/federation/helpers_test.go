package federation

import (
	"cohera/internal/sqlparse"
)

// fragPred aliases the fragment predicate expression type for tests.
type fragPred = sqlparse.Expr

// parseTestExpr parses a predicate for test fixtures.
func parseTestExpr(src string) (sqlparse.Expr, error) {
	return sqlparse.ParseExpr(src)
}
