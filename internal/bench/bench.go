// Package bench implements the experiment harness: one function per
// experiment in DESIGN.md's index (E1–E18), each returning a printable
// table. The paper (an industrial overview) publishes no numbered tables
// or figures, so each experiment operationalizes one of its testable
// claims; EXPERIMENTS.md records claim vs. measurement.
//
// All experiments are deterministic given their Config seed. Scale knobs
// let the same code run as quick testing.B benchmarks and as the full
// sweeps in cmd/coherabench.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result in printable form.
type Table struct {
	// ID is the experiment identifier ("E1").
	ID string
	// Title restates the claim under test.
	Title string
	// Headers label the columns.
	Headers []string
	// Rows are the measured series.
	Rows [][]string
	// Notes records caveats and the expected shape.
	Notes string
}

// Print renders the table with aligned columns.
func (t Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Config scales every experiment. Quick() keeps unit benchmarks fast;
// Full() reproduces the sweep ranges documented in EXPERIMENTS.md.
type Config struct {
	// Seed drives every generator.
	Seed int64
	// Quick shrinks sweeps for use inside testing.B.
	Quick bool
}

// Quick returns the fast configuration.
func Quick() Config { return Config{Seed: 1, Quick: true} }

// Full returns the full sweep configuration.
func Full() Config { return Config{Seed: 1} }

// Experiment couples an id to its runner.
type Experiment struct {
	ID   string
	Run  func(cfg Config) (Table, error)
	Desc string
}

// All returns every experiment in id order.
func All() []Experiment {
	return []Experiment{
		{"E1", E1Staleness, "warehouse refresh vs federated fetch-on-demand staleness"},
		{"E2", E2Hybrid, "on-demand vs materialized vs hybrid latency and staleness"},
		{"E2b", E2bSemanticCache, "semantic cache hit rate and latency on Zipf workloads"},
		{"E3", E3OptimizerScale, "optimization time vs federation size, agoric vs centralized"},
		{"E4", E4LoadBalance, "load balance under skew and mid-run scale-out"},
		{"E5", E5Availability, "availability of central/fragmented/replicated placements"},
		{"E6", E6FuzzySearch, "exact vs synonym vs fuzzy retrieval quality"},
		{"E7", E7TaxonomyMatch, "semi-automatic taxonomy matching accuracy and edit cost"},
		{"E8", E8Pipeline, "wrapper + transformation pipeline throughput at supplier scale"},
		{"E9", E9Syndication, "buyer-dependent quoting throughput and formats"},
		{"E10", E10ScaleOut, "throughput vs replica count at fixed offered load"},
		{"E11", E11Pushdown, "ablation: projection pushdown on wide catalog rows"},
		{"E12", E12Remote, "in-process vs HTTP federation overhead"},
		{"E13", E13Streaming, "streaming vs materialized scatter-gather memory and latency"},
		{"E14", E14AntiEntropy, "anti-entropy repair time vs outage size, replay vs copy-repair"},
		{"E15", E15Instrumentation, "query observability overhead: instrumented vs bare streamed scan"},
		{"E16", E16Durability, "durability cost and recovery: fsync policy vs DML, replay vs checkpoint restore"},
		{"E17", E17PushdownWire, "σ/π pushdown on the wire: rows decoded, payload bytes, p50 vs selectivity"},
		{"E18", E18Admission, "open-loop offered load vs p50/p99 with and without admission control"},
	}
}
