// Package syndicate implements custom syndication (paper,
// Characteristic 4): the same content published differently per
// recipient. Business rules make pricing and availability
// buyer-dependent — tier discounts, volume breaks, bundles spanning
// suppliers, and the airline trick of "making seats available" to
// top-tier customers when none are left. Formatters then render quotes
// in each recipient's legislated format (sender-makes-right) or the
// integrator's default (receiver-makes-right), and an enablement checker
// verifies a supplier document against a market's legislated format.
package syndicate

import (
	"fmt"
	"strings"

	"cohera/internal/value"
)

// Item is one catalog entry being syndicated.
type Item struct {
	SKU  string
	Name string
	// Price is the list price (a money Value).
	Price value.Value
	// Available is the publicly available quantity.
	Available int64
}

// Buyer identifies a recipient and their commercial relationship.
type Buyer struct {
	ID   string
	Tier string // e.g. "platinum", "gold", "standard"
}

// Request asks for a quote of a quantity of one item.
type Request struct {
	Item Item
	Qty  int64
}

// Quote is the buyer-specific offer for one item.
type Quote struct {
	SKU       string
	Name      string
	ListPrice value.Value
	// Price is the buyer-specific unit price after rules.
	Price value.Value
	Qty   int64
	// Available is the buyer-specific availability (rules may raise it).
	Available int64
	// Bumped marks availability granted beyond the public figure.
	Bumped bool
	// Applied lists the rules that fired, in order.
	Applied []string
}

// Rule adjusts a quote for a buyer. Rules run in registration order; each
// sees the effects of its predecessors.
type Rule interface {
	// Name labels the rule in Quote.Applied.
	Name() string
	// Apply mutates the quote when the rule fires for this buyer.
	Apply(b Buyer, q *Quote)
}

// TierDiscount gives a percentage off to one tier.
type TierDiscount struct {
	Tier string
	Pct  float64 // 10 = 10% off
}

// Name implements Rule.
func (r TierDiscount) Name() string { return fmt.Sprintf("tier-%s-%.0f%%", r.Tier, r.Pct) }

// Apply implements Rule.
func (r TierDiscount) Apply(b Buyer, q *Quote) {
	if !strings.EqualFold(b.Tier, r.Tier) || q.Price.Kind() != value.KindMoney {
		return
	}
	amt, cur := q.Price.Money()
	discounted := int64(float64(amt)*(1-r.Pct/100) + 0.5)
	q.Price = value.NewMoney(discounted, cur)
	q.Applied = append(q.Applied, r.Name())
}

// VolumeDiscount gives a percentage off at or above a quantity.
type VolumeDiscount struct {
	MinQty int64
	Pct    float64
}

// Name implements Rule.
func (r VolumeDiscount) Name() string { return fmt.Sprintf("volume-%d-%.0f%%", r.MinQty, r.Pct) }

// Apply implements Rule.
func (r VolumeDiscount) Apply(b Buyer, q *Quote) {
	if q.Qty < r.MinQty || q.Price.Kind() != value.KindMoney {
		return
	}
	amt, cur := q.Price.Money()
	q.Price = value.NewMoney(int64(float64(amt)*(1-r.Pct/100)+0.5), cur)
	q.Applied = append(q.Applied, r.Name())
}

// AvailabilityBump grants a tier extra availability beyond the public
// figure — the paper's "seats are made available to top-tier customers
// even when there are no seats left".
type AvailabilityBump struct {
	Tier  string
	Extra int64
}

// Name implements Rule.
func (r AvailabilityBump) Name() string { return fmt.Sprintf("bump-%s+%d", r.Tier, r.Extra) }

// Apply implements Rule.
func (r AvailabilityBump) Apply(b Buyer, q *Quote) {
	if !strings.EqualFold(b.Tier, r.Tier) {
		return
	}
	q.Available += r.Extra
	q.Bumped = true
	q.Applied = append(q.Applied, r.Name())
}

// Syndicator quotes items for buyers under a rule set and renders the
// result per recipient format.
type Syndicator struct {
	rules   []Rule
	bundles []Bundle
}

// New returns an empty syndicator.
func New() *Syndicator {
	return &Syndicator{}
}

// AddRule appends rules (evaluation order = registration order).
func (s *Syndicator) AddRule(rules ...Rule) {
	s.rules = append(s.rules, rules...)
}

// Bundle prices a set of SKUs jointly — "package prices for bundles of
// purchases that may span multiple suppliers".
type Bundle struct {
	Name string
	SKUs []string
	Pct  float64 // discount applied to every member when all present
}

// AddBundle registers a bundle.
func (s *Syndicator) AddBundle(b Bundle) {
	s.bundles = append(s.bundles, b)
}

// QuoteOne prices a single request for a buyer.
func (s *Syndicator) QuoteOne(b Buyer, req Request) Quote {
	q := Quote{
		SKU: req.Item.SKU, Name: req.Item.Name,
		ListPrice: req.Item.Price, Price: req.Item.Price,
		Qty: req.Qty, Available: req.Item.Available,
	}
	for _, r := range s.rules {
		r.Apply(b, &q)
	}
	return q
}

// QuoteAll prices a set of requests, applying per-item rules then bundle
// discounts for complete bundles.
func (s *Syndicator) QuoteAll(b Buyer, reqs []Request) []Quote {
	quotes := make([]Quote, len(reqs))
	have := make(map[string]int, len(reqs))
	for i, req := range reqs {
		quotes[i] = s.QuoteOne(b, req)
		have[strings.ToUpper(req.Item.SKU)] = i
	}
	for _, bundle := range s.bundles {
		complete := true
		for _, sku := range bundle.SKUs {
			if _, ok := have[strings.ToUpper(sku)]; !ok {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		for _, sku := range bundle.SKUs {
			q := &quotes[have[strings.ToUpper(sku)]]
			if q.Price.Kind() != value.KindMoney {
				continue
			}
			amt, cur := q.Price.Money()
			q.Price = value.NewMoney(int64(float64(amt)*(1-bundle.Pct/100)+0.5), cur)
			q.Applied = append(q.Applied, "bundle-"+bundle.Name)
		}
	}
	return quotes
}
