// Package remote puts real sockets under the federation: a Server
// exposes a site's local tables over HTTP (schema discovery + filtered
// fetch), and the client side presents each remote table as a
// wrapper.Source with equality pushdown, so a federation can span
// processes and machines exactly the way the paper's cross-enterprise
// setting demands. The wire format is JSON with kind-tagged values so
// money, durations and timestamps survive the trip.
package remote

import (
	"encoding/json"
	"fmt"
	"time"

	"cohera/internal/plan"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// wireValue is the JSON encoding of one value.Value.
type wireValue struct {
	Kind string `json:"k"`
	// I carries ints, money minor units, unix-nano timestamps and
	// duration nanoseconds.
	I int64 `json:"i,omitempty"`
	// F carries floats.
	F float64 `json:"f,omitempty"`
	// S carries strings, currency codes and duration semantics.
	S string `json:"s,omitempty"`
	// B carries booleans.
	B bool `json:"b,omitempty"`
}

func encodeValue(v value.Value) wireValue {
	switch v.Kind() {
	case value.KindNull:
		return wireValue{Kind: "null"}
	case value.KindBool:
		return wireValue{Kind: "bool", B: v.Bool()}
	case value.KindInt:
		return wireValue{Kind: "int", I: v.Int()}
	case value.KindFloat:
		return wireValue{Kind: "float", F: v.Float()}
	case value.KindString:
		return wireValue{Kind: "string", S: v.Str()}
	case value.KindMoney:
		amt, cur := v.Money()
		return wireValue{Kind: "money", I: amt, S: cur}
	case value.KindTime:
		return wireValue{Kind: "time", I: v.Time().UnixNano()}
	case value.KindDuration:
		d, sem := v.Duration()
		return wireValue{Kind: "duration", I: int64(d), S: string(sem)}
	default:
		return wireValue{Kind: "null"}
	}
}

func decodeValue(w wireValue) (value.Value, error) {
	switch w.Kind {
	case "null":
		return value.Null, nil
	case "bool":
		return value.NewBool(w.B), nil
	case "int":
		return value.NewInt(w.I), nil
	case "float":
		return value.NewFloat(w.F), nil
	case "string":
		return value.NewString(w.S), nil
	case "money":
		return value.NewMoney(w.I, w.S), nil
	case "time":
		return value.NewTime(time.Unix(0, w.I).UTC()), nil
	case "duration":
		return value.NewDuration(time.Duration(w.I), value.DurationSemantics(w.S)), nil
	default:
		return value.Null, fmt.Errorf("remote: unknown value kind %q", w.Kind)
	}
}

func encodeRows(rows []storage.Row) [][]wireValue {
	out := make([][]wireValue, len(rows))
	for i, r := range rows {
		wr := make([]wireValue, len(r))
		for j, v := range r {
			wr[j] = encodeValue(v)
		}
		out[i] = wr
	}
	return out
}

func decodeRows(in [][]wireValue) ([]storage.Row, error) {
	out := make([]storage.Row, len(in))
	for i, wr := range in {
		r := make(storage.Row, len(wr))
		for j, w := range wr {
			v, err := decodeValue(w)
			if err != nil {
				return nil, err
			}
			r[j] = v
		}
		out[i] = r
	}
	return out, nil
}

// wireColumn mirrors schema.Column.
type wireColumn struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	NotNull  bool   `json:"not_null,omitempty"`
	FullText bool   `json:"full_text,omitempty"`
	Taxonomy string `json:"taxonomy,omitempty"`
}

// wireSchema mirrors schema.Table.
type wireSchema struct {
	Name    string       `json:"name"`
	Columns []wireColumn `json:"columns"`
	Key     []string     `json:"key,omitempty"`
	// PushdownEq advertises the columns the server filters remotely.
	PushdownEq []string `json:"pushdown_eq,omitempty"`
	// Push advertises capability-aware σ/π/limit support. Old servers
	// omit it; old clients ignore it — either way the pushdown
	// negotiation degrades to the legacy equality-only protocol.
	Push *wirePushCaps `json:"push,omitempty"`
	// Volatile marks live tables.
	Volatile bool `json:"volatile,omitempty"`
}

// wirePushCaps is the JSON form of plan.PushCaps.
type wirePushCaps struct {
	Classes []string `json:"classes,omitempty"`
	Columns []string `json:"columns,omitempty"`
	Project bool     `json:"project,omitempty"`
	Limit   bool     `json:"limit,omitempty"`
}

func encodePushCaps(c plan.PushCaps) *wirePushCaps {
	out := &wirePushCaps{Columns: c.Columns, Project: c.Project, Limit: c.Limit}
	for _, fc := range c.Classes {
		out.Classes = append(out.Classes, string(fc))
	}
	return out
}

// decodePushCaps maps the wire record back; unknown class names from a
// newer server are kept verbatim — they simply never match a conjunct's
// required classes, so the client stays conservative.
func decodePushCaps(w *wirePushCaps) plan.PushCaps {
	if w == nil {
		return plan.PushCaps{}
	}
	out := plan.PushCaps{Columns: w.Columns, Project: w.Project, Limit: w.Limit}
	for _, s := range w.Classes {
		out.Classes = append(out.Classes, plan.FilterClass(s))
	}
	return out
}

// wirePushedAck is the server's receipt for pushed σ/π/limit, sent as
// the first NDJSON chunk of a /fetchstream response when the request
// carried push fields. Its absence is the old-server signal: the client
// then assumes nothing was applied and re-evaluates locally.
type wirePushedAck struct {
	// Where confirms rows are pre-filtered by the pushed predicate.
	Where bool `json:"where,omitempty"`
	// Cols, when non-empty, is the exact column set rows now carry.
	Cols []string `json:"cols,omitempty"`
	// Limit confirms the row cap is enforced server-side.
	Limit bool `json:"limit,omitempty"`
}

func encodeSchema(def *schema.Table, pushdown []string, volatile bool) wireSchema {
	ws := wireSchema{Name: def.Name, Key: def.Key, PushdownEq: pushdown, Volatile: volatile}
	for _, c := range def.Columns {
		ws.Columns = append(ws.Columns, wireColumn{
			Name: c.Name, Kind: c.Kind.String(), NotNull: c.NotNull,
			FullText: c.FullText, Taxonomy: c.Taxonomy,
		})
	}
	return ws
}

func decodeSchema(ws wireSchema) (*schema.Table, error) {
	cols := make([]schema.Column, 0, len(ws.Columns))
	for _, wc := range ws.Columns {
		k, err := value.KindFromName(wc.Kind)
		if err != nil {
			return nil, fmt.Errorf("remote: schema %q: %w", ws.Name, err)
		}
		cols = append(cols, schema.Column{
			Name: wc.Name, Kind: k, NotNull: wc.NotNull,
			FullText: wc.FullText, Taxonomy: wc.Taxonomy,
		})
	}
	return schema.NewTable(ws.Name, cols, ws.Key...)
}

// fetchRequest is the body of POST /fetch.
type fetchRequest struct {
	Table   string       `json:"table"`
	Filters []wireFilter `json:"filters,omitempty"`
}

type wireFilter struct {
	Column string    `json:"column"`
	Value  wireValue `json:"value"`
}

// fetchResponse is the body returned by POST /fetch.
type fetchResponse struct {
	Rows [][]wireValue `json:"rows"`
}

// digestRequest is the body of POST /digest.
type digestRequest struct {
	Table string `json:"table"`
}

// digestResponse carries a table's content digest. The 64-bit hash is
// zero-padded hex so it survives JSON readers that truncate large
// integers to float64.
type digestResponse struct {
	Hash string `json:"hash"`
	Rows int    `json:"rows"`
}

// replicationStatus is the body of GET /debug/replication.
type replicationStatus struct {
	Tables []tableReplication `json:"tables"`
}

type tableReplication struct {
	Name   string `json:"name"`
	Digest string `json:"digest"`
	Rows   int    `json:"rows"`
}

// errorResponse carries server-side failures.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w interface{ Write([]byte) (int, error) }, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
