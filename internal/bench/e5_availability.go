package bench

import (
	"fmt"
	"time"

	"cohera/internal/ha"
)

// E5Availability reproduces the paper's availability argument
// (Characteristic 8): central vs fragmented vs hot-standby replication vs
// fragmentation+replication, under an MTBF/MTTR failure process —
// "some of the content all of the time" vs "most of the content all of
// the time" — with the hardware bill alongside.
func E5Availability(cfg Config) (Table, error) {
	sites := 16
	horizon := 200000 * time.Hour
	if cfg.Quick {
		sites = 8
		horizon = 20000 * time.Hour
	}
	mtbf, mttr := 500*time.Hour, 4*time.Hour
	t := Table{
		ID:      "E5",
		Title:   "availability of placement strategies (MTBF 500h, MTTR 4h)",
		Headers: []string{"strategy", "content avail", "nines", "full avail", "any avail", "hw units"},
		Notes:   "expected shape: frag+repl dominates content availability; fragmentation alone maximizes 'some content' at minimum hardware",
	}
	for _, s := range []ha.Strategy{ha.Central, ha.Fragmented, ha.Replicated, ha.FragRepl} {
		// Average a few seeds so single sample paths don't mislead.
		var content, full, any, nines float64
		runs := 5
		if cfg.Quick {
			runs = 2
		}
		var hw int
		for r := 0; r < runs; r++ {
			res, err := ha.Simulate(ha.ConfigFor(s, sites, mtbf, mttr, horizon, cfg.Seed+int64(r)))
			if err != nil {
				return t, err
			}
			content += res.ContentAvailability / float64(runs)
			full += res.FullAvailability / float64(runs)
			any += res.AnyAvailability / float64(runs)
			nines += res.Nines / float64(runs)
			hw = res.HardwareUnits
		}
		t.Rows = append(t.Rows, []string{
			string(s),
			fmt.Sprintf("%.5f", content),
			fmt.Sprintf("%.2f", nines),
			fmt.Sprintf("%.5f", full),
			fmt.Sprintf("%.5f", any),
			fmt.Sprintf("%d", hw),
		})
	}
	return t, nil
}
