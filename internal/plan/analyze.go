package plan

import (
	"strings"

	"cohera/internal/sqlparse"
	"cohera/internal/value"
)

// Conjuncts splits a predicate on AND into its top-level conjuncts.
// A nil predicate yields nil.
func Conjuncts(e sqlparse.Expr) []sqlparse.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(sqlparse.Binary); ok && b.Op == sqlparse.OpAnd {
		return append(Conjuncts(b.Left), Conjuncts(b.Right)...)
	}
	return []sqlparse.Expr{e}
}

// AndExprs recombines conjuncts into a single predicate (nil when empty).
func AndExprs(cs []sqlparse.Expr) sqlparse.Expr {
	var out sqlparse.Expr
	for _, c := range cs {
		if out == nil {
			out = c
		} else {
			out = sqlparse.Binary{Op: sqlparse.OpAnd, Left: out, Right: c}
		}
	}
	return out
}

// Range is a one-column interval with optional open bounds (NULL value
// means unbounded on that side). Bounds are inclusive unless the
// corresponding Exclusive flag is set.
type Range struct {
	Column      string // lowercase bare column name
	Lo, Hi      value.Value
	LoExclusive bool
	HiExclusive bool
}

// Sargable extracts simple index-usable predicates of the forms
// col = lit, col < lit, col <= lit, col > lit, col >= lit and
// col BETWEEN lit AND lit from a single conjunct. The column may appear
// on either side of the comparison. It returns (range, true) on success.
func Sargable(e sqlparse.Expr) (Range, bool) {
	switch x := e.(type) {
	case sqlparse.Binary:
		col, lit, op, ok := colLit(x)
		if !ok {
			return Range{}, false
		}
		r := Range{Column: strings.ToLower(col.Column)}
		switch op {
		case sqlparse.OpEq:
			r.Lo, r.Hi = lit, lit
		case sqlparse.OpLt:
			r.Hi, r.HiExclusive = lit, true
		case sqlparse.OpLe:
			r.Hi = lit
		case sqlparse.OpGt:
			r.Lo, r.LoExclusive = lit, true
		case sqlparse.OpGe:
			r.Lo = lit
		default:
			return Range{}, false
		}
		return r, true
	case sqlparse.Between:
		col, ok := x.Inner.(sqlparse.ColumnRef)
		if !ok || x.Negate {
			return Range{}, false
		}
		lo, okLo := x.Lo.(sqlparse.Literal)
		hi, okHi := x.Hi.(sqlparse.Literal)
		if !okLo || !okHi {
			return Range{}, false
		}
		return Range{
			Column: strings.ToLower(col.Column),
			Lo:     lo.Value, Hi: hi.Value,
		}, true
	default:
		return Range{}, false
	}
}

// colLit decomposes a comparison into (column, literal, normalized op),
// flipping the operator when the literal is on the left.
func colLit(b sqlparse.Binary) (sqlparse.ColumnRef, value.Value, sqlparse.BinaryOp, bool) {
	if c, ok := b.Left.(sqlparse.ColumnRef); ok {
		if l, ok := b.Right.(sqlparse.Literal); ok {
			return c, l.Value, b.Op, true
		}
	}
	if c, ok := b.Right.(sqlparse.ColumnRef); ok {
		if l, ok := b.Left.(sqlparse.Literal); ok {
			return c, l.Value, flipOp(b.Op), true
		}
	}
	return sqlparse.ColumnRef{}, value.Null, 0, false
}

func flipOp(op sqlparse.BinaryOp) sqlparse.BinaryOp {
	switch op {
	case sqlparse.OpLt:
		return sqlparse.OpGt
	case sqlparse.OpLe:
		return sqlparse.OpGe
	case sqlparse.OpGt:
		return sqlparse.OpLt
	case sqlparse.OpGe:
		return sqlparse.OpLe
	default:
		return op
	}
}

// Contains reports whether range a contains range b (every value
// satisfying b satisfies a). Used by the semantic cache to answer a new
// query from a cached superset result. Incomparable bounds report false.
func (a Range) Contains(b Range) bool {
	if a.Column != b.Column {
		return false
	}
	// Lower bound: a.Lo must be ≤ b.Lo (or a unbounded below).
	if !a.Lo.IsNull() {
		if b.Lo.IsNull() {
			return false
		}
		c, err := a.Lo.Compare(b.Lo)
		if err != nil || c > 0 {
			return false
		}
		if c == 0 && a.LoExclusive && !b.LoExclusive {
			return false
		}
	}
	if !a.Hi.IsNull() {
		if b.Hi.IsNull() {
			return false
		}
		c, err := a.Hi.Compare(b.Hi)
		if err != nil || c < 0 {
			return false
		}
		if c == 0 && a.HiExclusive && !b.HiExclusive {
			return false
		}
	}
	return true
}

// Satisfies reports whether the value lies inside the range.
func (a Range) Satisfies(v value.Value) bool {
	if v.IsNull() {
		return false
	}
	if !a.Lo.IsNull() {
		c, err := v.Compare(a.Lo)
		if err != nil || c < 0 || (c == 0 && a.LoExclusive) {
			return false
		}
	}
	if !a.Hi.IsNull() {
		c, err := v.Compare(a.Hi)
		if err != nil || c > 0 || (c == 0 && a.HiExclusive) {
			return false
		}
	}
	return true
}

// SplitByTable partitions conjuncts into those referencing only the given
// table alias (pushdown candidates) and the rest. A conjunct with only
// unqualified references counts as local when localOnly is true (single
// table in scope).
func SplitByTable(conjuncts []sqlparse.Expr, alias string, localOnly bool) (local, rest []sqlparse.Expr) {
	alias = strings.ToLower(alias)
	for _, c := range conjuncts {
		belongs := true
		for _, col := range Columns(c) {
			q := strings.ToLower(col.Table)
			if q == "" {
				if !localOnly {
					belongs = false
					break
				}
				continue
			}
			if q != alias {
				belongs = false
				break
			}
		}
		if belongs {
			local = append(local, c)
		} else {
			rest = append(rest, c)
		}
	}
	return local, rest
}

// EquiJoinKeys extracts a.x = b.y pairs joining the two aliases from a
// join predicate's conjuncts. Returned as (leftCol, rightCol) pairs where
// leftCol belongs to leftAlias.
func EquiJoinKeys(on sqlparse.Expr, leftAlias, rightAlias string) (left, right []sqlparse.ColumnRef) {
	leftAlias = strings.ToLower(leftAlias)
	rightAlias = strings.ToLower(rightAlias)
	for _, c := range Conjuncts(on) {
		b, ok := c.(sqlparse.Binary)
		if !ok || b.Op != sqlparse.OpEq {
			continue
		}
		lc, lok := b.Left.(sqlparse.ColumnRef)
		rc, rok := b.Right.(sqlparse.ColumnRef)
		if !lok || !rok {
			continue
		}
		lq, rq := strings.ToLower(lc.Table), strings.ToLower(rc.Table)
		switch {
		case lq == leftAlias && rq == rightAlias:
			left = append(left, lc)
			right = append(right, rc)
		case lq == rightAlias && rq == leftAlias:
			left = append(left, rc)
			right = append(right, lc)
		}
	}
	return left, right
}

// EstimateSelectivity gives a coarse selectivity for a conjunct given the
// distinct count of its column (0 when unknown). The constants follow
// System R folklore.
func EstimateSelectivity(e sqlparse.Expr, distinct int) float64 {
	switch x := e.(type) {
	case sqlparse.Binary:
		switch x.Op {
		case sqlparse.OpEq:
			if distinct > 0 {
				return 1 / float64(distinct)
			}
			return 0.1
		case sqlparse.OpNe:
			return 0.9
		case sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
			return 0.3
		case sqlparse.OpAnd:
			return EstimateSelectivity(x.Left, distinct) * EstimateSelectivity(x.Right, distinct)
		case sqlparse.OpOr:
			a := EstimateSelectivity(x.Left, distinct)
			b := EstimateSelectivity(x.Right, distinct)
			return a + b - a*b
		}
	case sqlparse.Between:
		return 0.25
	case sqlparse.In:
		if distinct > 0 {
			s := float64(len(x.List)) / float64(distinct)
			if s > 1 {
				return 1
			}
			return s
		}
		return 0.2
	case sqlparse.Like:
		return 0.2
	case sqlparse.TextMatch:
		return 0.05
	case sqlparse.IsNull:
		return 0.05
	case sqlparse.Not:
		return 1 - EstimateSelectivity(x.Inner, distinct)
	}
	return 0.5
}
