package bench

import (
	"fmt"

	"cohera/internal/exec"
	"cohera/internal/ir"
	"cohera/internal/workload"
)

// E6FuzzySearch measures retrieval quality (Characteristic 7): "a query
// for 'India ink' should return the same answer as one for 'black ink'"
// (synonyms) and "a query for 'cordless drills' should fetch similar
// records to one for 'drlls: crdlss'" (fuzzy). We integrate supplier
// catalogs whose product names are vendor variants, then probe with
// exact, synonym and typo queries, scoring recall@5 against the
// canonical ground truth under four search configurations.
func E6FuzzySearch(cfg Config) (Table, error) {
	suppliers, items, probes := 12, 18, 150
	if cfg.Quick {
		suppliers, items, probes = 4, 10, 45
	}
	t := Table{
		ID:      "E6",
		Title:   "recall@5 by query kind: plain vs synonym vs fuzzy vs both",
		Headers: []string{"search mode", "verbatim queries", "canonical queries", "typo queries", "overall"},
		Notes:   "expected shape: plain search drops on canonical (term-disjoint synonyms) and typo probes; synonym and fuzzy each recover their axis; MATCHES recovers both",
	}

	// Build the integrated catalog: each row remembers its canonical name.
	db := exec.NewDatabase()
	def := workload.CatalogDef()
	tbl, err := db.CreateTable(def)
	if err != nil {
		return t, err
	}
	rates := defaultRates()
	canonicalOf := make(map[string]string) // sku → canonical
	for _, s := range workload.Suppliers(suppliers, items, 0.1, cfg.Seed) {
		rows, err := workload.GroundTruthRows(s, rates)
		if err != nil {
			return t, err
		}
		for i, r := range rows {
			// SKUs collide across suppliers in the generator; qualify.
			r[0] = valueString(s.Name + "/" + r[0].Str())
			if _, err := tbl.Insert(r); err != nil {
				return t, err
			}
			canonicalOf[r[0].Str()] = s.Items[i].Canonical
		}
	}
	// Synonym rings from the vocabulary (the content manager's table).
	for _, p := range workload.MROVocabulary() {
		db.Synonyms().Declare(append([]string{p.Canonical}, p.Variants...)...)
	}
	queries := workload.SearchQueries(cfg.Seed+1, probes)

	type mode struct {
		name string
		opts ir.SearchOptions
	}
	modes := []mode{
		{"plain", ir.SearchOptions{}},
		{"synonym", ir.SearchOptions{Synonyms: db.Synonyms()}},
		{"fuzzy", ir.SearchOptions{Fuzzy: true}},
		{"both (MATCHES)", ir.SearchOptions{Fuzzy: true, Synonyms: db.Synonyms()}},
	}
	for _, m := range modes {
		hitByKind := map[string][2]int{} // kind → (hits, total)
		for _, q := range queries {
			opts := m.opts
			opts.Limit = 5
			hits, err := tbl.TextSearch("name", q.Query, opts)
			if err != nil {
				return t, err
			}
			found := false
			for _, h := range hits {
				row, err := tbl.Get(h.DocID)
				if err != nil {
					continue
				}
				if canonicalOf[row[0].Str()] == q.Canonical {
					found = true
					break
				}
			}
			hk := hitByKind[q.Kind]
			hk[1]++
			if found {
				hk[0]++
			}
			hitByKind[q.Kind] = hk
		}
		recall := func(kind string) string {
			hk := hitByKind[kind]
			if hk[1] == 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.0f%%", 100*float64(hk[0])/float64(hk[1]))
		}
		totHits, tot := 0, 0
		for _, hk := range hitByKind {
			totHits += hk[0]
			tot += hk[1]
		}
		t.Rows = append(t.Rows, []string{
			m.name, recall("verbatim"), recall("canonical"), recall("typo"),
			fmt.Sprintf("%.0f%%", 100*float64(totHits)/float64(tot)),
		})
	}
	return t, nil
}
