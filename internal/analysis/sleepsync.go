package analysis

import (
	"go/ast"
)

// SleepSync flags time.Sleep in non-test code. A sleep neither observes
// cancellation nor establishes a happens-before edge: code that "waits a
// bit" for another goroutine is racing with it, and code that charges a
// simulated latency with Sleep ignores the caller's context. Use a
// select on ctx.Done()/time.After, or a real synchronization primitive.
var SleepSync = &Analyzer{
	Name: "sleepsync",
	Doc:  "time.Sleep used as synchronization in non-test code",
	Run:  runSleepSync,
}

func runSleepSync(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sleep" {
				return true
			}
			if !isPackageIdent(p, sel.X, "time") {
				return true
			}
			p.Reportf(call.Pos(), "time.Sleep is not synchronization; select on ctx.Done()/time.After or use a sync primitive")
			return true
		})
	}
}
