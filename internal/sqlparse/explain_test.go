package sqlparse

import (
	"strings"
	"testing"
)

func TestExplainParse(t *testing.T) {
	cases := []struct {
		sql     string
		analyze bool
		union   bool
	}{
		{"EXPLAIN SELECT a FROM t", false, false},
		{"explain analyze select a from t where a > 1 limit 3", true, false},
		{"EXPLAIN ANALYZE SELECT a FROM t UNION SELECT a FROM u", true, true},
	}
	for _, c := range cases {
		stmt, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		x, ok := stmt.(ExplainStmt)
		if !ok {
			t.Fatalf("%s: parsed %T, want ExplainStmt", c.sql, stmt)
		}
		if x.Analyze != c.analyze {
			t.Errorf("%s: Analyze = %v, want %v", c.sql, x.Analyze, c.analyze)
		}
		if _, isUnion := x.Stmt.(UnionStmt); isUnion != c.union {
			t.Errorf("%s: inner = %T", c.sql, x.Stmt)
		}
	}
}

func TestExplainRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"EXPLAIN SELECT a, b FROM t WHERE a > 1 ORDER BY b LIMIT 5",
		"EXPLAIN ANALYZE SELECT a FROM t UNION ALL SELECT a FROM u",
	} {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		again, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("%s: reparsing %q: %v", sql, stmt.String(), err)
		}
		if stmt.String() != again.String() {
			t.Errorf("round trip diverged: %q -> %q", stmt.String(), again.String())
		}
	}
}

func TestExplainRejectsNonSelect(t *testing.T) {
	for _, sql := range []string{
		"EXPLAIN INSERT INTO t (a) VALUES (1)",
		"EXPLAIN ANALYZE UPDATE t SET a = 1",
		"EXPLAIN DELETE FROM t",
		"EXPLAIN",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("%s: parsed, want error", sql)
		} else if !strings.Contains(err.Error(), "EXPLAIN") {
			t.Errorf("%s: error %q does not mention EXPLAIN", sql, err)
		}
	}
}
