package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"cohera/internal/cache"
	"cohera/internal/federation"
	"cohera/internal/mview"
	"cohera/internal/storage"
	"cohera/internal/workload"
	"cohera/internal/wrapper"
)

// E2Hybrid measures the paper's prescribed hybrid: static attributes
// ("the address of the hotel and its amenities") fetched in advance into
// a materialized view, volatile availability fetched on demand — against
// the two pure strategies. The workload mixes static-browse queries
// (majority) with availability checks: with a view, browse queries never
// touch the fifty reservation systems, while availability stays live.
func E2Hybrid(cfg Config) (Table, error) {
	chains, perChain, queries := 30, 4, 80
	siteLatency := 2 * time.Millisecond
	if cfg.Quick {
		chains, perChain, queries = 8, 3, 20
		siteLatency = 500 * time.Microsecond
	}

	t := Table{
		ID:      "E2",
		Title:   "mean latency and staleness over a 75% browse / 25% availability mix",
		Headers: []string{"strategy", "mean latency", "stale availability answers"},
		Notes:   "expected shape: hybrid matches on-demand freshness at near-materialized latency; pure materialized is fast but stale; pure on-demand pays full gather on every browse",
	}

	fed, tables, err := e2Federation(cfg.Seed, chains, perChain, siteLatency)
	if err != nil {
		return t, err
	}
	ctx := context.Background()
	mgr, err := mview.NewManager(fed, "matview-cache")
	if err != nil {
		return t, err
	}
	// Static attributes view: fetch in advance.
	if _, err := mgr.Create(ctx, "hotel_info",
		"SELECT hotel AS hname, city, miles_to_airport, health_club, corporate_rate FROM hotels", 0); err != nil {
		return t, err
	}
	// Full snapshot view: the pure-materialized strategy.
	if _, err := mgr.Create(ctx, "hotel_all",
		"SELECT hotel AS hname, city, miles_to_airport, health_club, corporate_rate, available FROM hotels", 0); err != nil {
		return t, err
	}
	churn := workload.AvailabilityChurn(tables, cfg.Seed+5)
	rng := rand.New(rand.NewSource(cfg.Seed + 6))

	// Two query templates per strategy: browse (static only) and check
	// (needs live availability).
	type strategy struct {
		name, browse, check string
	}
	strategies := []strategy{
		{
			"pure on-demand",
			`SELECT hotel, corporate_rate FROM hotels
				WHERE city = 'Atlanta' AND miles_to_airport < 10 AND health_club = TRUE`,
			`SELECT hotel, available FROM hotels WHERE city = 'Atlanta' AND available > 0`,
		},
		{
			"pure materialized",
			`SELECT hname, corporate_rate FROM hotel_all
				WHERE city = 'Atlanta' AND miles_to_airport < 10 AND health_club = TRUE`,
			`SELECT hname, available FROM hotel_all WHERE city = 'Atlanta' AND available > 0`,
		},
		{
			"hybrid (view + live)",
			`SELECT hname, corporate_rate FROM hotel_info
				WHERE city = 'Atlanta' AND miles_to_airport < 10 AND health_club = TRUE`,
			`SELECT hotel, available FROM hotels WHERE city = 'Atlanta' AND available > 0`,
		},
	}
	for _, s := range strategies {
		var total time.Duration
		stale, checks := 0, 0
		for q := 0; q < queries; q++ {
			for u := 0; u < 3; u++ {
				if err := churn(); err != nil {
					return t, err
				}
			}
			isCheck := q%4 == 3 // 25% availability checks
			sql := s.browse
			if isCheck {
				sql = s.check
			}
			start := time.Now()
			res, err := fed.Query(ctx, sql)
			if err != nil {
				return t, fmt.Errorf("%s: %w", s.name, err)
			}
			total += time.Since(start)
			if isCheck {
				checks++
				if len(res.Rows) > 0 {
					row := res.Rows[rng.Intn(len(res.Rows))]
					if fresh, err := e2Truth(tables, row[0].Str()); err == nil && row[1].Int() != fresh {
						stale++
					}
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			s.name,
			fmt.Sprintf("%.2fms", float64(total.Microseconds())/float64(queries)/1000),
			fmt.Sprintf("%d/%d", stale, checks),
		})
	}
	return t, nil
}

func e2Federation(seed int64, chains, perChain int, latency time.Duration) (*federation.Federation, []*storage.Table, error) {
	def := workload.HotelsDef()
	hotels := workload.Hotels(chains, perChain, seed)
	fed := federation.New(federation.NewAgoric())
	var tables []*storage.Table
	var frags []*federation.Fragment
	for c, chain := range hotels {
		tbl := storage.NewTable(def.Clone("hotels"))
		for _, h := range chain {
			if _, err := tbl.Insert(workload.HotelRow(h)); err != nil {
				return nil, nil, err
			}
		}
		tables = append(tables, tbl)
		site := federation.NewSite(fmt.Sprintf("chain-%02d", c))
		site.SetCost(federation.CostModel{Latency: latency})
		if err := fed.AddSite(site); err != nil {
			return nil, nil, err
		}
		site.AddSource(wrapper.NewERPSource(fmt.Sprintf("res-%02d", c), tbl))
		frags = append(frags, federation.NewFragment(fmt.Sprintf("chain-%02d", c), nil, site))
	}
	if _, err := fed.DefineTable(def, frags...); err != nil {
		return nil, nil, err
	}
	return fed, tables, nil
}

func e2Truth(tables []*storage.Table, hotel string) (int64, error) {
	for _, tbl := range tables {
		def := tbl.Def()
		if _, row, err := tbl.GetByKey(valueString(hotel)); err == nil {
			return row[def.ColumnIndex("available")].Int(), nil
		}
	}
	return 0, fmt.Errorf("bench: hotel %q missing", hotel)
}

// E2bSemanticCache measures the semantic cache on an overlapping Zipf
// range workload — the paper suggests "something closer to semantic
// caching" as the usable form of fetch in advance.
func E2bSemanticCache(cfg Config) (Table, error) {
	queries := 300
	siteLatency := time.Millisecond
	if cfg.Quick {
		queries = 40
		siteLatency = 200 * time.Microsecond
	}
	t := Table{
		ID:      "E2b",
		Title:   "semantic cache on Zipf range queries",
		Headers: []string{"config", "mean latency", "hits", "partial", "misses"},
		Notes:   "expected shape: hot ranges served locally; cache cuts mean latency well below the uncached run",
	}
	for _, enabled := range []bool{false, true} {
		fed, _, err := e2Federation(cfg.Seed, 10, 5, siteLatency)
		if err != nil {
			return t, err
		}
		c := cache.New(64)
		querier := cache.NewQuerier(fed, c)
		rng := rand.New(rand.NewSource(cfg.Seed + 9))
		zipf := workload.Zipf(20, 1.4, cfg.Seed+10)
		ctx := context.Background()
		var total time.Duration
		for i := 0; i < queries; i++ {
			hot := zipf()
			lo := hot
			hi := lo + 5 + rng.Intn(5)
			sql := fmt.Sprintf("SELECT miles_to_airport FROM hotels WHERE miles_to_airport BETWEEN %d AND %d", lo, hi)
			start := time.Now()
			if enabled {
				if _, err := querier.Query(ctx, sql); err != nil {
					return t, err
				}
			} else {
				if _, err := fed.Query(ctx, sql); err != nil {
					return t, err
				}
			}
			total += time.Since(start)
		}
		hits, misses, partial := c.Stats()
		name := "cache off"
		if enabled {
			name = "cache on"
		} else {
			hits, misses, partial = 0, queries, 0
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2fms", float64(total.Microseconds())/float64(queries)/1000),
			fmt.Sprintf("%d", hits),
			fmt.Sprintf("%d", partial),
			fmt.Sprintf("%d", misses),
		})
	}
	return t, nil
}
