package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cohera/internal/admission"
	"cohera/internal/obs"
	"cohera/internal/plan"
	"cohera/internal/schema"
	"cohera/internal/sqlparse"
	"cohera/internal/storage"
	"cohera/internal/wrapper"
)

// streamProjection maps requested column names onto a stream's column
// order, case-insensitively.
func streamProjection(have, want []string) ([]int, error) {
	idx := make([]int, len(want))
	for i, w := range want {
		idx[i] = -1
		for j, h := range have {
			if strings.EqualFold(h, w) {
				idx[i] = j
				break
			}
		}
		if idx[i] < 0 {
			return nil, fmt.Errorf("remote: pushed projection column %q not in stream", w)
		}
	}
	return idx, nil
}

// The chunked-transfer wire format: POST /fetchstream answers with
// newline-delimited JSON (NDJSON). Each line is one streamChunk — a
// batch of rows, a mid-stream error, or the {"eof":true} terminator.
// The terminator is load-bearing: a connection that dies mid-transfer
// ends the body without it, and the client reports ErrTruncated instead
// of passing off a prefix as the full result.

// ErrTruncated reports a stream body that ended before the EOF
// terminator — the transport died mid-transfer. Consumers must treat
// the rows received so far as incomplete.
var ErrTruncated = errors.New("remote: stream truncated before eof terminator")

// maxStreamLine bounds one NDJSON line on the client. A line carries at
// most maxStreamBatchRows encoded rows.
const maxStreamLine = 64 << 20

// maxStreamBatchRows caps the negotiated batch size so a hostile client
// cannot make the server buffer unbounded rows per chunk.
const maxStreamBatchRows = 8192

// streamRequest is the body of POST /fetchstream. The pushdown fields
// (where/cols/limit) are ignored by servers that predate them — JSON
// decoding drops unknown fields — and the missing first-chunk ack tells
// the client nothing was applied.
type streamRequest struct {
	Table   string       `json:"table"`
	Filters []wireFilter `json:"filters,omitempty"`
	// BatchRows asks the server for a specific rows-per-chunk; 0 lets
	// the server choose.
	BatchRows int `json:"batch_rows,omitempty"`
	// Where is a pushed predicate in SQL text form (bare column refs);
	// the server parses and applies it before encoding rows.
	Where string `json:"where,omitempty"`
	// Cols asks for a column subset, in order.
	Cols []string `json:"cols,omitempty"`
	// Limit caps delivered rows; <= 0 means no limit.
	Limit int `json:"limit,omitempty"`
}

// streamChunk is one NDJSON line of a /fetchstream response. A chunk
// carries rows, a pushdown ack, a mid-stream error, or the terminator;
// old clients see an ack chunk as zero rows and skip it.
type streamChunk struct {
	Rows   [][]wireValue  `json:"rows,omitempty"`
	Pushed *wirePushedAck `json:"pushed,omitempty"`
	Error  string         `json:"error,omitempty"`
	EOF    bool           `json:"eof,omitempty"`
}

// metStreamBatches counts NDJSON chunks by side ("server" encodes,
// "client" decodes).
func metStreamBatches(side string) *obs.Counter {
	return obs.Default().Counter("cohera_stream_batches_total",
		"Row-batch chunks moved through the streaming wire protocol.",
		obs.Labels{"side": side})
}

// metStreamBytes counts NDJSON payload bytes by side.
func metStreamBytes(side string) *obs.Counter {
	return obs.Default().Counter("cohera_stream_bytes_total",
		"Payload bytes moved through the streaming wire protocol.",
		obs.Labels{"side": side})
}

// metStreamInflight gauges streams currently open, by side.
func metStreamInflight(side string) *obs.Gauge {
	return obs.Default().Gauge("cohera_stream_inflight",
		"Row streams currently open.", obs.Labels{"side": side})
}

// batchRowBuckets are row counts disguised as durations: the obs
// histogram observes time.Duration, so the peak-batch histogram encodes
// N rows as time.Duration(N). Quantiles read back as row counts.
var batchRowBuckets = []time.Duration{1, 4, 16, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

var metStreamPeakBatch = obs.Default().HistogramBuckets("cohera_stream_peak_batch_rows",
	"Peak rows observed in a single chunk per stream (unit: rows, not seconds).",
	batchRowBuckets, nil)

// clampBatchRows resolves the effective rows-per-chunk from the
// client's ask and the server's default.
func clampBatchRows(asked, serverDefault int) int {
	n := asked
	if n <= 0 {
		n = serverDefault
	}
	if n <= 0 {
		n = storage.DefaultBatchRows
	}
	if n > maxStreamBatchRows {
		n = maxStreamBatchRows
	}
	return n
}

// countingWriter tallies bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// handleFetchStream streams a source's rows as NDJSON chunks. Each
// chunk is flushed as soon as it is full, so a slow consumer exerts
// backpressure on the producing scan through the socket's window
// instead of forcing the server to buffer the whole result.
func (s *Server) handleFetchStream(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, `{"error":"bad body"}`, http.StatusBadRequest)
		return
	}
	var req streamRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, `{"error":"bad json"}`, http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	src, ok := s.sources[strings.ToLower(req.Table)]
	s.mu.RUnlock()
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		//lint:ignore errdrop the status line is already committed; nothing useful can be done with an encode failure
		_ = writeJSON(w, errorResponse{Error: fmt.Sprintf("no table %q", req.Table)})
		return
	}
	var filters []wrapper.Filter
	for _, wf := range req.Filters {
		v, err := decodeValue(wf.Value)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			//lint:ignore errdrop the status line is already committed; nothing useful can be done with an encode failure
			_ = writeJSON(w, errorResponse{Error: err.Error()})
			return
		}
		filters = append(filters, wrapper.Filter{Column: wf.Column, Value: v})
	}
	// Capability-aware pushdown: parse the request's σ/π/limit, hand it
	// to the source, and fuse whatever the source could not apply right
	// here — rows failing the pushed WHERE are never encoded. With
	// DisablePushdown set the fields are ignored and no ack is sent,
	// reproducing an old server for fallback tests.
	var push wrapper.Pushdown
	if !s.DisablePushdown {
		if req.Where != "" {
			expr, perr := sqlparse.ParseExpr(req.Where)
			if perr != nil {
				w.WriteHeader(http.StatusBadRequest)
				//lint:ignore errdrop the status line is already committed; nothing useful can be done with an encode failure
				_ = writeJSON(w, errorResponse{Error: fmt.Sprintf("bad pushdown where: %v", perr)})
				return
			}
			push.Where = expr
		}
		if len(req.Cols) > 0 {
			push.Cols = req.Cols
		}
		if req.Limit > 0 {
			push.Limit = req.Limit
		}
	}
	st, applied, err := wrapper.OpenPushStream(r.Context(), src, filters, push)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		//lint:ignore errdrop the status line is already committed; nothing useful can be done with an encode failure
		_ = writeJSON(w, errorResponse{Error: err.Error()})
		return
	}
	var ack *wirePushedAck
	if !push.Empty() {
		spec := plan.FuseSpec{Limit: -1}
		fuse := false
		if push.Where != nil && !applied.Where {
			spec.Where = push.Where
			fuse = true
		}
		if push.Cols != nil && !applied.Cols {
			idx, ierr := streamProjection(st.Columns(), push.Cols)
			if ierr != nil {
				//lint:ignore errdrop the request is being rejected; close is best-effort cleanup
				_ = st.Close()
				w.WriteHeader(http.StatusBadRequest)
				//lint:ignore errdrop the status line is already committed; nothing useful can be done with an encode failure
				_ = writeJSON(w, errorResponse{Error: ierr.Error()})
				return
			}
			spec.Project = idx
			fuse = true
		}
		if push.Limit > 0 && !applied.Limit {
			spec.Limit = push.Limit
			fuse = true
		}
		if fuse {
			st = plan.FuseStream(st, spec)
		}
		ack = &wirePushedAck{Where: push.Where != nil, Cols: push.Cols, Limit: push.Limit > 0}
	}
	batchRows := clampBatchRows(req.BatchRows, s.StreamBatchRows)
	metStreamInflight("server").Add(1)
	defer metStreamInflight("server").Add(-1)

	// The encode stage lives on this process's span tree only — the
	// coordinator is across a process boundary, so the serving side's
	// operator profile travels through the propagated trace, not the
	// coordinator's stage collector.
	_, sp := obs.StartSpan(r.Context(), "remote.streamencode")
	sp.Set("table", req.Table)
	encStage := obs.NewStage("remote.encode", req.Table)
	// Closing the wrapper closes st; the defer covers every exit below.
	scan := storage.InstrumentStream(st, encStage, storage.TimingSample)
	defer scan.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	cw := &countingWriter{w: w}
	defer func() { metStreamBytes("server").Add(cw.n) }()
	enc := json.NewEncoder(cw)
	flusher, _ := w.(http.Flusher)
	// The ack must be the first line: the client reads it synchronously
	// to learn what was applied before it sees any rows.
	if ack != nil {
		if err := enc.Encode(streamChunk{Pushed: ack}); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	peak := 0
	defer func() {
		encStage.NotePeak(int64(peak))
		encStage.Done()
		sp.SetStage(encStage)
		sp.End()
	}()

	batch := storage.GetBatch()
	defer storage.PutBatch(batch)
	var sentBytes int64
	emit := func() bool {
		if len(batch.Rows) == 0 {
			return true
		}
		if len(batch.Rows) > peak {
			peak = len(batch.Rows)
		}
		// Encode writes the chunk plus the NDJSON newline.
		if err := enc.Encode(streamChunk{Rows: encodeRows(batch.Rows)}); err != nil {
			return false // consumer went away; stop producing
		}
		metStreamBatches("server").Inc()
		encStage.AddBatch(0, cw.n-sentBytes)
		sentBytes = cw.n
		batch.Rows = batch.Rows[:0]
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for {
		row, err := scan.Next()
		if err == io.EOF {
			if !emit() {
				return
			}
			//lint:ignore errdrop the stream is already committed as 200; a failed terminator reads as truncation on the client
			_ = enc.Encode(streamChunk{EOF: true})
			metStreamPeakBatch.Observe(time.Duration(peak))
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if err != nil {
			// Buffered rows are dropped: an error chunk tells the client
			// the result is broken, so a partial flush would only move
			// rows it must discard.
			//lint:ignore errdrop the stream is already committed as 200; the error chunk is best-effort
			_ = enc.Encode(streamChunk{Error: err.Error()})
			return
		}
		batch.Rows = append(batch.Rows, row)
		if len(batch.Rows) >= batchRows && !emit() {
			return
		}
	}
}

// FetchStream implements wrapper.StreamingSource over POST
// /fetchstream. The returned stream holds the response body open and
// decodes chunks on demand, so client-side memory is one chunk
// regardless of result size. Streaming calls are never retried — a
// replayed stream could double rows already consumed; failover belongs
// to the federation layer, which can dedupe by primary key.
func (s *Source) FetchStream(ctx context.Context, filters []wrapper.Filter) (storage.RowStream, error) {
	st, _, err := s.fetchPushStream(ctx, filters, wrapper.Pushdown{})
	return st, err
}

// FetchPushStream implements wrapper.PushStreamingSource: the pushed
// σ/π/limit travel as /fetchstream request fields. The first response
// chunk is the server's ack; a server too old to know the fields sends
// none, the receipt comes back all-false, and the caller re-evaluates
// locally — full-width unfiltered rows, exactly the pre-push behavior.
func (s *Source) FetchPushStream(ctx context.Context, filters []wrapper.Filter, push wrapper.Pushdown) (storage.RowStream, wrapper.Applied, error) {
	return s.fetchPushStream(ctx, filters, push)
}

func (s *Source) fetchPushStream(ctx context.Context, filters []wrapper.Filter, push wrapper.Pushdown) (storage.RowStream, wrapper.Applied, error) {
	ctx, sp := obs.StartSpan(ctx, "remote.fetchstream")
	sp.Set("table", s.def.Name)
	req := streamRequest{Table: s.def.Name, BatchRows: s.client.streamBatch}
	if push.Where != nil {
		req.Where = push.Where.String()
	}
	req.Cols = push.Cols
	if push.Limit > 0 {
		req.Limit = push.Limit
	}
	var local []wrapper.Filter
	for _, f := range filters {
		if s.caps.CanPush(f.Column) {
			req.Filters = append(req.Filters, wireFilter{Column: f.Column, Value: encodeValue(f.Value)})
		}
		local = append(local, f)
	}
	body, err := json.Marshal(req)
	if err != nil {
		sp.SetErr(err)
		sp.End()
		return nil, wrapper.Applied{}, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, s.client.base+"/fetchstream", bytes.NewReader(body))
	if err != nil {
		sp.SetErr(err)
		sp.End()
		metClientReqs("error").Inc()
		return nil, wrapper.Applied{}, fmt.Errorf("remote: request: %w", err)
	}
	if s.client.token != "" {
		httpReq.Header.Set("Authorization", "Bearer "+s.client.token)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	obs.InjectHeaders(ctx, httpReq.Header)
	httpReq.Header.Set(TenantHeader, admission.TenantOf(ctx))
	// The client's whole-call timeout would kill a long-lived stream
	// body mid-read, so streams go through a timeout-free client that
	// shares the transport (and any injected faults). Cancellation
	// stays with ctx.
	streamHTTP := &http.Client{Transport: s.client.http.Transport}
	resp, err := streamHTTP.Do(httpReq)
	if err != nil {
		sp.SetErr(err)
		sp.End()
		metClientReqs("error").Inc()
		return nil, wrapper.Applied{}, fmt.Errorf("remote: POST /fetchstream: %w", err)
	}
	metClientReqs(respClass(resp.StatusCode)).Inc()
	if resp.StatusCode != http.StatusOK {
		//lint:ignore errdrop the body is best-effort context for the status error
		out, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		//lint:ignore errdrop the response is already a failure; close is best-effort cleanup
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			err := shedError(ctx, http.MethodPost, "/fetchstream", resp.Header)
			sp.SetErr(err)
			sp.End()
			return nil, wrapper.Applied{}, err
		}
		se := &statusError{method: http.MethodPost, path: "/fetchstream", code: resp.StatusCode}
		var er errorResponse
		if json.Unmarshal(out, &er) == nil && er.Error != "" {
			se.msg = er.Error
		}
		sp.SetErr(se)
		sp.End()
		return nil, wrapper.Applied{}, se
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxStreamLine)
	metStreamInflight("client").Add(1)
	// The decode stage is a leaf under the wrapper.fetch stage: rows and
	// bytes are counted per chunk as they come off the wire, before the
	// local filter re-check drops anything.
	_, stage := obs.StartStage(ctx, "remote.decode", s.def.Name)
	cs := &clientStream{
		def:     s.def,
		cols:    wrapper.ColumnNames(s.def),
		filters: local,
		body:    resp.Body,
		sc:      sc,
		sp:      sp,
		stage:   stage,
	}
	cs.rebindFilters()
	var applied wrapper.Applied
	if !push.Empty() {
		// Read the first line now: a push-aware server leads with its
		// ack, an old server leads with rows (stashed for Next). Either
		// way the receipt is known before the caller sees the stream.
		if ack := cs.awaitAck(); ack != nil {
			applied = wrapper.Applied{
				Where: ack.Where && push.Where != nil,
				Cols:  len(ack.Cols) > 0 && push.Cols != nil,
				Limit: ack.Limit && push.Limit > 0,
			}
			if applied.Cols {
				// Rows arrive projected: narrow the stream's column set
				// and re-resolve the filter re-check against it.
				cs.cols = append([]string(nil), ack.Cols...)
				cs.rebindFilters()
			}
		}
	}
	return cs, applied, nil
}

// clientStream decodes NDJSON chunks from an open /fetchstream response
// into rows, one chunk in memory at a time.
type clientStream struct {
	def     *schema.Table
	cols    []string
	filters []wrapper.Filter
	// filterIdx maps filters onto the (possibly projected) row layout;
	// -1 skips a filter whose column the rows no longer carry.
	filterIdx []int
	body      io.ReadCloser
	sc        *bufio.Scanner
	sp        *obs.Span
	stage     *obs.StageStats

	// stash holds a chunk read ahead of its turn (the ack probe hit
	// rows on an old server); stashLen is its line length for byte
	// accounting.
	stash    *streamChunk
	stashLen int

	pending []storage.Row
	pos     int
	peak    int
	err     error // sticky terminal error (io.EOF for clean end)
	closed  bool
}

// Columns implements storage.RowStream.
func (c *clientStream) Columns() []string { return c.cols }

// rebindFilters resolves the equality-filter columns against the
// current row layout. Called again when an ack narrows the columns.
func (c *clientStream) rebindFilters() {
	c.filterIdx = make([]int, len(c.filters))
	for i, f := range c.filters {
		c.filterIdx[i] = -1
		for j, col := range c.cols {
			if strings.EqualFold(col, f.Column) {
				c.filterIdx[i] = j
				break
			}
		}
	}
}

// readChunk scans and decodes the next NDJSON line. ok=false means a
// terminal condition was recorded in c.err (truncation or corruption);
// empty lines are skipped.
func (c *clientStream) readChunk() (chunk streamChunk, lineLen int, ok bool) {
	for {
		// Time the chunk fetch+decode exactly: chunks are coarse enough
		// (hundreds of rows) that two clock reads per chunk are free, and
		// the wait on sc.Scan is precisely this stage's blocked-upstream
		// (network/server) time.
		chunkStart := time.Now()
		if !c.sc.Scan() {
			// The body ended (or broke) before the eof terminator:
			// report truncation, never a silent short result.
			if scanErr := c.sc.Err(); scanErr != nil {
				c.err = fmt.Errorf("%w: %v", ErrTruncated, scanErr)
			} else {
				c.err = ErrTruncated
			}
			return chunk, 0, false
		}
		line := bytes.TrimSpace(c.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := json.Unmarshal(line, &chunk); err != nil {
			if !c.sc.Scan() {
				// An undecodable final line is a connection cut
				// mid-chunk, not corruption: classify it as truncation
				// so callers see one typed error for "body ended early".
				c.err = fmt.Errorf("%w: partial final chunk: %v", ErrTruncated, err)
				return chunk, 0, false
			}
			c.err = fmt.Errorf("remote: decoding stream chunk: %w", err)
			return chunk, 0, false
		}
		metStreamBytes("client").Add(int64(len(line)))
		c.stage.BlockedUpstream(time.Since(chunkStart))
		return chunk, len(line), true
	}
}

// awaitAck reads the first chunk looking for a pushdown ack. A non-ack
// chunk (old server) is stashed for Next; a read failure stays sticky
// in c.err and surfaces on the first Next.
func (c *clientStream) awaitAck() *wirePushedAck {
	chunk, n, ok := c.readChunk()
	if !ok {
		return nil
	}
	if chunk.Pushed != nil {
		return chunk.Pushed
	}
	c.stash, c.stashLen = &chunk, n
	return nil
}

// Next implements storage.RowStream.
func (c *clientStream) Next() (storage.Row, error) {
	if c.closed {
		return nil, storage.ErrStreamClosed
	}
	for {
		if c.pos < len(c.pending) {
			r := c.pending[c.pos]
			c.pos++
			return r, nil
		}
		if c.err != nil {
			return nil, c.err
		}
		var chunk streamChunk
		var lineLen int
		if c.stash != nil {
			chunk, lineLen = *c.stash, c.stashLen
			c.stash = nil
		} else {
			var ok bool
			chunk, lineLen, ok = c.readChunk()
			if !ok {
				return nil, c.err
			}
		}
		if chunk.Error != "" {
			c.err = fmt.Errorf("remote: stream failed at server: %s", chunk.Error)
			return nil, c.err
		}
		if chunk.EOF {
			c.err = io.EOF
			return nil, c.err
		}
		if chunk.Pushed != nil && len(chunk.Rows) == 0 {
			// A stray ack chunk mid-stream carries no rows; skip it.
			continue
		}
		rows, err := decodeRows(chunk.Rows)
		if err != nil {
			c.err = err
			return nil, c.err
		}
		// A row of the wrong width is wire corruption; letting it
		// through would index-panic in the filter re-check or feed the
		// evaluator garbage.
		for _, r := range rows {
			if len(r) != len(c.cols) {
				c.err = fmt.Errorf("remote: stream row has %d cells, want %d", len(r), len(c.cols))
				return nil, c.err
			}
		}
		metStreamBatches("client").Inc()
		c.stage.AddBatch(int64(len(rows)), int64(lineLen))
		c.stage.NotePeak(int64(len(rows)))
		if len(rows) > c.peak {
			c.peak = len(rows)
		}
		// Re-check every filter locally: the server only applied the
		// pushable subset. Filters on columns a pushed projection
		// dropped are skipped — the caller holds the receipt and keeps
		// responsibility for anything it did not push.
		c.pending = c.pending[:0]
		c.pos = 0
		for _, r := range rows {
			if c.rowPassesFilters(r) {
				c.pending = append(c.pending, r)
			}
		}
	}
}

// rowPassesFilters re-applies equality filters to one decoded row using
// the prebound layout indexes.
func (c *clientStream) rowPassesFilters(r storage.Row) bool {
	for i, f := range c.filters {
		ci := c.filterIdx[i]
		if ci < 0 {
			continue
		}
		cmp, err := r[ci].Compare(f.Value)
		if err != nil || cmp != 0 {
			return false
		}
	}
	return true
}

// Close implements storage.RowStream. Idempotent; settles the stream's
// span and peak-batch observation.
func (c *clientStream) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	metStreamInflight("client").Add(-1)
	metStreamPeakBatch.Observe(time.Duration(c.peak))
	c.sp.Set("peak_batch_rows", strconv.Itoa(c.peak))
	if c.err != nil && c.err != io.EOF {
		c.sp.SetErr(c.err)
		c.stage.Fail(c.err)
	}
	c.stage.Done()
	c.sp.SetStage(c.stage)
	c.sp.End()
	return c.body.Close()
}
