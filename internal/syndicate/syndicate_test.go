package syndicate

import (
	"encoding/json"
	"strings"
	"testing"

	"cohera/internal/value"
)

func seat() Item {
	return Item{SKU: "ATL-101", Name: "ATL seat", Price: value.NewMoney(20000, "USD"), Available: 0}
}

func ink() Item {
	return Item{SKU: "INK-1", Name: "India ink", Price: value.NewMoney(350, "USD"), Available: 100}
}

func TestTierDiscount(t *testing.T) {
	s := New()
	s.AddRule(TierDiscount{Tier: "platinum", Pct: 20})
	plat := s.QuoteOne(Buyer{ID: "b1", Tier: "platinum"}, Request{Item: ink(), Qty: 1})
	std := s.QuoteOne(Buyer{ID: "b2", Tier: "standard"}, Request{Item: ink(), Qty: 1})
	if m, _ := plat.Price.Money(); m != 280 {
		t.Errorf("platinum price = %d", m)
	}
	if m, _ := std.Price.Money(); m != 350 {
		t.Errorf("standard price = %d", m)
	}
	if len(plat.Applied) != 1 || len(std.Applied) != 0 {
		t.Errorf("applied = %v / %v", plat.Applied, std.Applied)
	}
	// List price retained for audit.
	if m, _ := plat.ListPrice.Money(); m != 350 {
		t.Errorf("list price mutated: %d", m)
	}
}

func TestVolumeDiscountStacksAfterTier(t *testing.T) {
	s := New()
	s.AddRule(TierDiscount{Tier: "gold", Pct: 10}, VolumeDiscount{MinQty: 50, Pct: 10})
	q := s.QuoteOne(Buyer{Tier: "gold"}, Request{Item: ink(), Qty: 50})
	// 350 → 315 → 283.5 → 284 (rounded)
	if m, _ := q.Price.Money(); m != 284 {
		t.Errorf("stacked price = %d", m)
	}
	if len(q.Applied) != 2 {
		t.Errorf("applied = %v", q.Applied)
	}
	// Below the volume break only the tier discount applies.
	q = s.QuoteOne(Buyer{Tier: "gold"}, Request{Item: ink(), Qty: 10})
	if m, _ := q.Price.Money(); m != 315 {
		t.Errorf("tier-only price = %d", m)
	}
}

func TestAvailabilityBump(t *testing.T) {
	// The paper's example: no seats left — unless you are Platinum.
	s := New()
	s.AddRule(AvailabilityBump{Tier: "platinum", Extra: 2})
	plat := s.QuoteOne(Buyer{Tier: "platinum"}, Request{Item: seat(), Qty: 1})
	std := s.QuoteOne(Buyer{Tier: "standard"}, Request{Item: seat(), Qty: 1})
	if plat.Available != 2 || !plat.Bumped {
		t.Errorf("platinum avail = %d bumped=%v", plat.Available, plat.Bumped)
	}
	if std.Available != 0 || std.Bumped {
		t.Errorf("standard avail = %d bumped=%v", std.Available, std.Bumped)
	}
}

func TestBundles(t *testing.T) {
	s := New()
	s.AddBundle(Bundle{Name: "office-kit", SKUs: []string{"INK-1", "PEN-1"}, Pct: 15})
	pen := Item{SKU: "PEN-1", Name: "pen", Price: value.NewMoney(100, "USD"), Available: 10}
	// Complete bundle: both discounted.
	quotes := s.QuoteAll(Buyer{Tier: "standard"}, []Request{
		{Item: ink(), Qty: 1}, {Item: pen, Qty: 1},
	})
	if m, _ := quotes[0].Price.Money(); m != 298 { // 350*0.85 = 297.5 → 298
		t.Errorf("bundled ink = %d", m)
	}
	if m, _ := quotes[1].Price.Money(); m != 85 {
		t.Errorf("bundled pen = %d", m)
	}
	// Incomplete bundle: no discount.
	quotes = s.QuoteAll(Buyer{Tier: "standard"}, []Request{{Item: ink(), Qty: 1}})
	if m, _ := quotes[0].Price.Money(); m != 350 {
		t.Errorf("unbundled ink = %d", m)
	}
}

func TestCSVAndJSONFormatters(t *testing.T) {
	s := New()
	quotes := s.QuoteAll(Buyer{}, []Request{{Item: ink(), Qty: 3}})
	body, err := (CSVFormatter{}).Format(quotes)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "sku,name,unit_price,qty,available") ||
		!strings.Contains(text, "INK-1,India ink,3.50 USD,3,100") {
		t.Errorf("csv = %q", text)
	}
	if (CSVFormatter{}).ContentType() != "text/csv" {
		t.Error("csv content type")
	}
	body, err = (JSONFormatter{}).Format(quotes)
	if err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("json round trip: %v", err)
	}
	if parsed[0]["sku"] != "INK-1" || parsed[0]["qty"].(float64) != 3 {
		t.Errorf("json = %v", parsed)
	}
}

func marketFormat() LegislatedXML {
	return LegislatedXML{
		Root: "MarketFeed", RowElement: "Offer",
		FieldNames: [5]string{"PartNo", "Description", "UnitPrice", "Quantity", "InStock"},
	}
}

func TestLegislatedXML(t *testing.T) {
	s := New()
	quotes := s.QuoteAll(Buyer{}, []Request{{Item: ink(), Qty: 1}})
	body, err := marketFormat().Format(quotes)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, frag := range []string{"<MarketFeed>", "<Offer>", "<PartNo>INK-1</PartNo>", "<UnitPrice>3.50 USD</UnitPrice>"} {
		if !strings.Contains(text, frag) {
			t.Errorf("legislated xml %q missing %q", text, frag)
		}
	}
	// Validation of the format spec itself.
	if _, err := (LegislatedXML{}).Format(quotes); err == nil {
		t.Error("unnamed format should fail")
	}
	bad := marketFormat()
	bad.FieldNames[2] = ""
	if _, err := bad.Format(quotes); err == nil {
		t.Error("missing field name should fail")
	}
}

func TestCheckEnablement(t *testing.T) {
	f := marketFormat()
	good := `<MarketFeed><Offer><PartNo>X</PartNo><Description>d</Description>
		<UnitPrice>1.00 USD</UnitPrice><Quantity>1</Quantity><InStock>5</InStock></Offer></MarketFeed>`
	if problems := CheckEnablement(good, f); len(problems) != 0 {
		t.Errorf("good doc problems = %v", problems)
	}
	// A supplier's quote rendered through the legislated formatter is, by
	// construction, enabled.
	s := New()
	body, _ := f.Format(s.QuoteAll(Buyer{}, []Request{{Item: ink(), Qty: 1}}))
	if problems := CheckEnablement(string(body), f); len(problems) != 0 {
		t.Errorf("round-trip enablement = %v", problems)
	}
	// Problems are reported specifically.
	missing := `<MarketFeed><Offer><PartNo>X</PartNo></Offer></MarketFeed>`
	problems := CheckEnablement(missing, f)
	if len(problems) != 4 {
		t.Errorf("missing-field problems = %v", problems)
	}
	if ps := CheckEnablement(`<Wrong><Offer/></Wrong>`, f); len(ps) != 1 || !strings.Contains(ps[0], "MarketFeed") {
		t.Errorf("wrong root = %v", ps)
	}
	if ps := CheckEnablement(`<MarketFeed></MarketFeed>`, f); len(ps) != 1 {
		t.Errorf("no rows = %v", ps)
	}
	if ps := CheckEnablement(`garbage <<<`, f); len(ps) == 0 {
		t.Error("unparseable doc should report")
	}
}
