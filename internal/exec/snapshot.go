package exec

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// Snapshot support: a Database serializes to a JSON document (schemas,
// rows, declared indexes) and reloads into an empty Database. Sites use
// this to survive restarts — the paper's five-nines posture assumes a
// failed machine comes back with its fragment intact.

// snapDoc is the snapshot file shape.
type snapDoc struct {
	Version int         `json:"version"`
	Tables  []snapTable `json:"tables"`
}

type snapTable struct {
	Schema  snapSchema  `json:"schema"`
	Indexes snapIndexes `json:"indexes"`
	Rows    [][]snapVal `json:"rows"`
}

type snapSchema struct {
	Name    string       `json:"name"`
	Columns []snapColumn `json:"columns"`
	Key     []string     `json:"key,omitempty"`
}

type snapColumn struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	NotNull  bool   `json:"not_null,omitempty"`
	FullText bool   `json:"full_text,omitempty"`
	Taxonomy string `json:"taxonomy,omitempty"`
}

type snapIndexes struct {
	Ordered []string `json:"ordered,omitempty"`
	Hash    []string `json:"hash,omitempty"`
}

type snapVal struct {
	K string  `json:"k"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
	B bool    `json:"b,omitempty"`
}

func snapEncode(v value.Value) snapVal {
	switch v.Kind() {
	case value.KindNull:
		return snapVal{K: "null"}
	case value.KindBool:
		return snapVal{K: "bool", B: v.Bool()}
	case value.KindInt:
		return snapVal{K: "int", I: v.Int()}
	case value.KindFloat:
		return snapVal{K: "float", F: v.Float()}
	case value.KindString:
		return snapVal{K: "string", S: v.Str()}
	case value.KindMoney:
		amt, cur := v.Money()
		return snapVal{K: "money", I: amt, S: cur}
	case value.KindTime:
		return snapVal{K: "time", I: v.Time().UnixNano()}
	case value.KindDuration:
		d, sem := v.Duration()
		return snapVal{K: "duration", I: int64(d), S: string(sem)}
	default:
		return snapVal{K: "null"}
	}
}

func snapDecode(s snapVal) (value.Value, error) {
	switch s.K {
	case "null":
		return value.Null, nil
	case "bool":
		return value.NewBool(s.B), nil
	case "int":
		return value.NewInt(s.I), nil
	case "float":
		return value.NewFloat(s.F), nil
	case "string":
		return value.NewString(s.S), nil
	case "money":
		return value.NewMoney(s.I, s.S), nil
	case "time":
		return value.NewTime(time.Unix(0, s.I).UTC()), nil
	case "duration":
		return value.NewDuration(time.Duration(s.I), value.DurationSemantics(s.S)), nil
	default:
		return value.Null, fmt.Errorf("exec: snapshot value kind %q", s.K)
	}
}

// SaveSnapshot writes the database (every table's schema, index
// declarations and rows) as JSON.
func (db *Database) SaveSnapshot(w io.Writer) error {
	doc := snapDoc{Version: 1}
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		def := t.Def()
		st := snapTable{Schema: snapSchema{Name: def.Name, Key: def.Key}}
		for _, c := range def.Columns {
			st.Schema.Columns = append(st.Schema.Columns, snapColumn{
				Name: c.Name, Kind: c.Kind.String(), NotNull: c.NotNull,
				FullText: c.FullText, Taxonomy: c.Taxonomy,
			})
			if t.HasIndex(c.Name) {
				st.Indexes.Ordered = append(st.Indexes.Ordered, c.Name)
			}
		}
		t.Scan(func(_ int64, row storage.Row) bool {
			sr := make([]snapVal, len(row))
			for i, v := range row {
				sr[i] = snapEncode(v)
			}
			st.Rows = append(st.Rows, sr)
			return true
		})
		doc.Tables = append(doc.Tables, st)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// LoadSnapshot restores a snapshot into this (empty) database.
func (db *Database) LoadSnapshot(r io.Reader) error {
	var doc snapDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("exec: decoding snapshot: %w", err)
	}
	if doc.Version != 1 {
		return fmt.Errorf("exec: unsupported snapshot version %d", doc.Version)
	}
	for _, st := range doc.Tables {
		cols := make([]schema.Column, 0, len(st.Schema.Columns))
		for _, sc := range st.Schema.Columns {
			k, err := value.KindFromName(sc.Kind)
			if err != nil {
				return fmt.Errorf("exec: snapshot table %q: %w", st.Schema.Name, err)
			}
			cols = append(cols, schema.Column{
				Name: sc.Name, Kind: k, NotNull: sc.NotNull,
				FullText: sc.FullText, Taxonomy: sc.Taxonomy,
			})
		}
		def, err := schema.NewTable(st.Schema.Name, cols, st.Schema.Key...)
		if err != nil {
			return err
		}
		t, err := db.CreateTable(def)
		if err != nil {
			return err
		}
		for _, col := range st.Indexes.Ordered {
			if err := t.CreateIndex(col); err != nil {
				return err
			}
		}
		for _, col := range st.Indexes.Hash {
			if err := t.CreateHashIndex(col); err != nil {
				return err
			}
		}
		for ri, sr := range st.Rows {
			row := make(storage.Row, len(sr))
			for i, sv := range sr {
				v, err := snapDecode(sv)
				if err != nil {
					return err
				}
				row[i] = v
			}
			if _, err := t.Insert(row); err != nil {
				return fmt.Errorf("exec: snapshot table %q row %d: %w", st.Schema.Name, ri, err)
			}
		}
	}
	return nil
}
