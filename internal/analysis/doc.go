// Package analysis is the project's static-analysis engine: a
// zero-dependency (stdlib go/ast + go/parser + go/types) driver that
// loads every package in the module, type-checks it, and runs a suite of
// project-specific analyzers tuned to the real concurrency and
// error-handling hazards of the federation engine.
//
// The analyzers:
//
//   - locksafe:  a method on a struct with a sync.Mutex/RWMutex field
//     reads or writes a mutex-guarded sibling field without acquiring
//     the mutex on any path. Fields declared after the mutex are
//     guarded (the repo's layout convention); fields that are
//     themselves synchronization primitives (sync.Once, WaitGroup,
//     atomics, channels) are exempt, as are methods whose name ends in
//     "Locked" (documented as requiring the caller to hold the lock).
//   - errdrop:   an error result is discarded — assigned to _ or
//     dropped by a bare call statement. Deliberate drops must carry a
//     //lint:ignore errdrop <reason> directive.
//   - ctxleak:   context.Background()/context.TODO() is created inside
//     library call paths instead of threading the caller's context.
//   - sleepsync: time.Sleep in non-test code — sleeping is timing, not
//     synchronization; use a select on ctx.Done()/time.After or a real
//     synchronization primitive.
//   - bodyclose: an *http.Response obtained in internal/wrapper or
//     internal/remote whose Body is never closed.
//   - streamclose: a storage.RowStream obtained in the streaming query
//     layers (storage, exec, wrapper, remote, federation, bench) that
//     is never Closed and does not escape — leaked streams pin pooled
//     batches, producer goroutines and remote response bodies.
//
// Diagnostics are keyed file:line:col and can be suppressed with a
// directive comment on the same line or the line directly above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
// The analyzer name "*" suppresses every analyzer for that line.
//
// cmd/coheralint is the command-line driver; scripts/check.sh wires it
// into the repo's verification gate together with go vet and the race
// detector.
package analysis
