package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attaches dimensions to a metric ({"site": "west-1"}). A
// (name, labels) pair identifies one time series; label keys should be
// few and label values low-cardinality (site names, status classes),
// never per-row data.
type Labels map[string]string

// label is one resolved label pair; meta keeps them sorted by key.
type label struct{ k, v string }

// meta is the identity shared by every metric kind.
type meta struct {
	name   string
	help   string
	labels []label
}

func newMeta(name, help string, ls Labels) meta {
	m := meta{name: name, help: help}
	for k, v := range ls {
		m.labels = append(m.labels, label{k: k, v: v})
	}
	sort.Slice(m.labels, func(i, j int) bool { return m.labels[i].k < m.labels[j].k })
	return m
}

// Name returns the metric family name.
func (m meta) Name() string { return m.name }

// labelString renders {k="v",...} with Prometheus escaping, or "".
func (m meta) labelString(extra ...label) string {
	all := m.labels
	if len(extra) > 0 {
		all = append(append([]label(nil), m.labels...), extra...)
	}
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelMap rebuilds the Labels map for JSON snapshots.
func (m meta) labelMap() Labels {
	if len(m.labels) == 0 {
		return nil
	}
	out := make(Labels, len(m.labels))
	for _, l := range m.labels {
		out[l.k] = l.v
	}
	return out
}

// Counter is a monotonically increasing counter. All methods are
// atomic and safe for concurrent use.
type Counter struct {
	meta
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	meta
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultBuckets are the latency bucket upper bounds used when a
// histogram is created without explicit bounds: 100µs up to 5s, the
// span between an in-memory subquery and a badly overloaded remote.
var DefaultBuckets = []time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Observations and
// reads are atomic per cell; a concurrent render sees a consistent
// enough view for monitoring (cells may lag each other by an
// observation, never corrupt).
type Histogram struct {
	meta
	bounds []time.Duration // ascending upper bounds
	counts []atomic.Int64  // len(bounds)+1; last cell is +Inf
	sum    atomic.Int64    // nanoseconds
	n      atomic.Int64
}

// NewHistogram builds an unregistered histogram (used for per-instance
// measurements like a Site's bid prior). nil bounds mean
// DefaultBuckets.
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	sorted := append([]time.Duration(nil), bounds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &Histogram{bounds: sorted, counts: make([]atomic.Int64, len(sorted)+1)}
}

// Observe records one duration (negative durations clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation within the bucket containing the target rank. With no
// observations it returns 0; ranks landing in the +Inf bucket return
// the highest finite bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum int64
	var lower time.Duration
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		if c > 0 && float64(cum+c) >= target {
			frac := (target - float64(cum)) / float64(c)
			return lower + time.Duration(frac*float64(b-lower))
		}
		cum += c
		lower = b
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a lock-free metric store: the write path (Inc, Add,
// Observe) touches only atomics, and get-or-create registration rides
// on a sync.Map so concurrent registrations of the same series
// converge on one instance without a global lock.
type Registry struct {
	metrics sync.Map // seriesKey → *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry. Most callers want Default().
func NewRegistry() *Registry { return &Registry{} }

func seriesKey(name string, ls Labels) string {
	if len(ls) == 0 {
		return name
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(ls[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter for (name, labels), creating it on first
// use. Registering the same series under a different kind panics — a
// programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	key := seriesKey(name, ls)
	if m, ok := r.metrics.Load(key); ok {
		return mustCounter(key, m)
	}
	actual, _ := r.metrics.LoadOrStore(key, &Counter{meta: newMeta(name, help, ls)})
	return mustCounter(key, actual)
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, ls Labels) *Gauge {
	key := seriesKey(name, ls)
	if m, ok := r.metrics.Load(key); ok {
		return mustGauge(key, m)
	}
	actual, _ := r.metrics.LoadOrStore(key, &Gauge{meta: newMeta(name, help, ls)})
	return mustGauge(key, actual)
}

// Histogram returns the histogram for (name, labels) with
// DefaultBuckets, creating it on first use.
func (r *Registry) Histogram(name, help string, ls Labels) *Histogram {
	return r.HistogramBuckets(name, help, nil, ls)
}

// HistogramBuckets is Histogram with explicit bucket bounds. Bounds are
// fixed at first registration; later calls reuse the existing series.
func (r *Registry) HistogramBuckets(name, help string, bounds []time.Duration, ls Labels) *Histogram {
	key := seriesKey(name, ls)
	if m, ok := r.metrics.Load(key); ok {
		return mustHistogram(key, m)
	}
	h := NewHistogram(bounds)
	h.meta = newMeta(name, help, ls)
	actual, _ := r.metrics.LoadOrStore(key, h)
	return mustHistogram(key, actual)
}

func mustCounter(key string, m any) *Counter {
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: series %s already registered as %T, not a counter", key, m))
	}
	return c
}

func mustGauge(key string, m any) *Gauge {
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: series %s already registered as %T, not a gauge", key, m))
	}
	return g
}

func mustHistogram(key string, m any) *Histogram {
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: series %s already registered as %T, not a histogram", key, m))
	}
	return h
}

// entry pairs a series key with its metric for deterministic renders.
type entry struct {
	key  string
	name string
	m    any
}

func metaOf(m any) meta {
	switch x := m.(type) {
	case *Counter:
		return x.meta
	case *Gauge:
		return x.meta
	case *Histogram:
		return x.meta
	default:
		return meta{}
	}
}

// sortedEntries snapshots the registry ordered by family name then
// series key, keeping each family contiguous for HELP/TYPE emission.
func (r *Registry) sortedEntries() []entry {
	var out []entry
	r.metrics.Range(func(k, v any) bool {
		out = append(out, entry{key: k.(string), name: metaOf(v).name, m: v})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].key < out[j].key
	})
	return out
}
