// Package wal is the per-site write-ahead log behind durable storage:
// every mutation an exec.Database applies is recorded here before the
// statement acknowledges, periodic checkpoints bound replay time, and
// startup recovery rebuilds the engine (and the pending write-intent
// journal) from the last checkpoint plus the surviving log tail.
//
// Records use the journal's proven framing —
//
//	[4-byte big-endian payload length][4-byte IEEE CRC32 of payload][JSON payload]
//
// — so recovery detects a torn tail (partial header, short payload,
// corrupted bytes) and truncates the file at the last intact record.
// The codec is deliberately duplicated from internal/journal and
// internal/remote: wal sits below all of them and may import none.
//
// Records are logical, not physical: storage row ids are assigned per
// process and do not survive a restart, so put/upd/del records carry
// row contents and are resolved by primary key (or whole-row equality
// for keyless tables) during replay. Replayed content hashes to the
// same order-independent table digest as the pre-crash table, which is
// what lets anti-entropy verify a recovery was exact.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"time"

	"cohera/internal/value"
)

const (
	frameHeaderLen = 8
	// maxPayload bounds a single record so a corrupted length field
	// cannot make replay allocate gigabytes before the CRC catches it.
	maxPayload = 1 << 20
)

// Record kinds. Table-op kinds replay against the engine; journal
// kinds rehydrate write-intent groups.
const (
	// KindCreate defines a table (schema + key).
	KindCreate = "create"
	// KindIndex declares a secondary index on an existing table.
	KindIndex = "index"
	// KindPut upserts Row (insert, or replace-by-primary-key).
	KindPut = "put"
	// KindUpd replaces the row equal to Old with Row.
	KindUpd = "upd"
	// KindDel deletes the row equal to Row (the pre-image).
	KindDel = "del"
	// KindTrunc removes every row of Table.
	KindTrunc = "trunc"
	// KindJFrame carries one opaque journal record (already framed by
	// internal/journal) for the (Site, Table, Frag) intent log.
	KindJFrame = "jframe"
	// KindJReset clears every fragment log of the (Site, Table) journal
	// group — written when copy-repair re-established the replica.
	KindJReset = "jreset"
)

// Record is the JSON payload of one WAL frame.
type Record struct {
	LSN    uint64       `json:"lsn"`
	Kind   string       `json:"kind"`
	Table  string       `json:"table,omitempty"`
	Schema *TableSchema `json:"schema,omitempty"`
	Column string       `json:"col,omitempty"`
	Hash   bool         `json:"hash,omitempty"`
	Row    []Val        `json:"row,omitempty"`
	Old    []Val        `json:"old,omitempty"`
	Site   string       `json:"site,omitempty"`
	Frag   string       `json:"frag,omitempty"`
	Frame  []byte       `json:"frame,omitempty"`
}

// TableSchema is the serialized form of a schema.Table, mirroring the
// exec snapshot encoding so create records and checkpoints agree.
type TableSchema struct {
	Name    string         `json:"name"`
	Columns []ColumnSchema `json:"columns"`
	Key     []string       `json:"key,omitempty"`
}

// ColumnSchema is one column declaration.
type ColumnSchema struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	NotNull  bool   `json:"not_null,omitempty"`
	FullText bool   `json:"full_text,omitempty"`
	Taxonomy string `json:"taxonomy,omitempty"`
}

// Val is the kind-tagged JSON encoding of one value.Value.
type Val struct {
	K string  `json:"k"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
	B bool    `json:"b,omitempty"`
}

// EncodeVal converts a value.Value to its wire form.
func EncodeVal(v value.Value) Val {
	switch v.Kind() {
	case value.KindNull:
		return Val{K: "null"}
	case value.KindBool:
		return Val{K: "bool", B: v.Bool()}
	case value.KindInt:
		return Val{K: "int", I: v.Int()}
	case value.KindFloat:
		return Val{K: "float", F: v.Float()}
	case value.KindString:
		return Val{K: "string", S: v.Str()}
	case value.KindMoney:
		amt, cur := v.Money()
		return Val{K: "money", I: amt, S: cur}
	case value.KindTime:
		return Val{K: "time", I: v.Time().UnixNano()}
	case value.KindDuration:
		d, sem := v.Duration()
		return Val{K: "duration", I: int64(d), S: string(sem)}
	default:
		return Val{K: "null"}
	}
}

// DecodeVal converts a wire value back. Unknown kinds are a framing
// error: recovery must not guess at data it cannot read.
func DecodeVal(w Val) (value.Value, error) {
	switch w.K {
	case "null":
		return value.Null, nil
	case "bool":
		return value.NewBool(w.B), nil
	case "int":
		return value.NewInt(w.I), nil
	case "float":
		return value.NewFloat(w.F), nil
	case "string":
		return value.NewString(w.S), nil
	case "money":
		return value.NewMoney(w.I, w.S), nil
	case "time":
		return value.NewTime(time.Unix(0, w.I).UTC()), nil
	case "duration":
		return value.NewDuration(time.Duration(w.I), value.DurationSemantics(w.S)), nil
	default:
		return value.Null, fmt.Errorf("wal: unknown value kind %q", w.K)
	}
}

// EncodeRow converts a row of values.
func EncodeRow(row []value.Value) []Val {
	out := make([]Val, len(row))
	for i, v := range row {
		out[i] = EncodeVal(v)
	}
	return out
}

// DecodeRow converts a wire row back.
func DecodeRow(ws []Val) ([]value.Value, error) {
	out := make([]value.Value, len(ws))
	for i, w := range ws {
		v, err := DecodeVal(w)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// validKind reports whether k is a record kind recovery understands.
func validKind(k string) bool {
	switch k {
	case KindCreate, KindIndex, KindPut, KindUpd, KindDel, KindTrunc, KindJFrame, KindJReset:
		return true
	}
	return false
}

// validate rejects records that parsed as JSON but cannot replay —
// treated exactly like a CRC mismatch so a damaged record truncates
// the tail instead of half-applying.
func (r Record) validate() error {
	if !validKind(r.Kind) {
		return fmt.Errorf("wal: unknown record kind %q", r.Kind)
	}
	for _, w := range append(append([]Val(nil), r.Row...), r.Old...) {
		if _, err := DecodeVal(w); err != nil {
			return err
		}
	}
	if r.Kind == KindCreate && r.Schema == nil {
		return fmt.Errorf("wal: create record without schema")
	}
	return nil
}

// appendFrame marshals r and appends one framed record to dst.
func appendFrame(dst []byte, r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return dst, fmt.Errorf("wal: encode record: %w", err)
	}
	if len(payload) > maxPayload {
		return dst, fmt.Errorf("wal: record payload %d bytes exceeds cap %d", len(payload), maxPayload)
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// readFrame parses one framed record at buf[off:]. ok=false means the
// bytes at off are not an intact, replayable record — the torn-tail
// signal that truncates everything from off on.
func readFrame(buf []byte, off int) (r Record, next int, ok bool) {
	if off+frameHeaderLen > len(buf) {
		return Record{}, off, false
	}
	n := int(binary.BigEndian.Uint32(buf[off : off+4]))
	sum := binary.BigEndian.Uint32(buf[off+4 : off+8])
	if n > maxPayload || off+frameHeaderLen+n > len(buf) {
		return Record{}, off, false
	}
	payload := buf[off+frameHeaderLen : off+frameHeaderLen+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, off, false
	}
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, off, false
	}
	if err := r.validate(); err != nil {
		return Record{}, off, false
	}
	return r, off + frameHeaderLen + n, true
}

// ScanRecords parses every intact record from the start of buf,
// returning the records, the byte offset just past the last intact
// one, and the number of torn trailing bytes. Exposed for replay,
// tests and the fuzz target.
func ScanRecords(buf []byte) (recs []Record, good int, torn int) {
	off := 0
	for off < len(buf) {
		r, next, ok := readFrame(buf, off)
		if !ok {
			break
		}
		recs = append(recs, r)
		off = next
	}
	return recs, off, len(buf) - off
}
