package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cohera/internal/sqlparse"
	"cohera/internal/value"
)

func TestConjunctsAndRecombine(t *testing.T) {
	e, _ := sqlparse.ParseExpr("a = 1 AND b > 2 AND (c = 3 OR d = 4)")
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cs))
	}
	back := AndExprs(cs)
	if len(Conjuncts(back)) != 3 {
		t.Error("AndExprs did not recombine")
	}
	if Conjuncts(nil) != nil || AndExprs(nil) != nil {
		t.Error("nil handling")
	}
}

func TestSargable(t *testing.T) {
	cases := []struct {
		sql        string
		col        string
		lo, hi     value.Value
		loEx, hiEx bool
		ok         bool
	}{
		{"qty = 5", "qty", value.NewInt(5), value.NewInt(5), false, false, true},
		{"qty < 5", "qty", value.Null, value.NewInt(5), false, true, true},
		{"qty <= 5", "qty", value.Null, value.NewInt(5), false, false, true},
		{"qty > 5", "qty", value.NewInt(5), value.Null, true, false, true},
		{"qty >= 5", "qty", value.NewInt(5), value.Null, false, false, true},
		{"5 < qty", "qty", value.NewInt(5), value.Null, true, false, true},
		{"5 = qty", "qty", value.NewInt(5), value.NewInt(5), false, false, true},
		{"qty BETWEEN 2 AND 8", "qty", value.NewInt(2), value.NewInt(8), false, false, true},
		{"qty <> 5", "", value.Null, value.Null, false, false, false},
		{"qty + 1 = 5", "", value.Null, value.Null, false, false, false},
		{"a = b", "", value.Null, value.Null, false, false, false},
		{"qty NOT BETWEEN 2 AND 8", "", value.Null, value.Null, false, false, false},
	}
	for _, c := range cases {
		e, err := sqlparse.ParseExpr(c.sql)
		if err != nil {
			t.Fatalf("parse %q: %v", c.sql, err)
		}
		r, ok := Sargable(e)
		if ok != c.ok {
			t.Errorf("Sargable(%q) ok = %v, want %v", c.sql, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if r.Column != c.col || !r.Lo.Equal(c.lo) || !r.Hi.Equal(c.hi) ||
			r.LoExclusive != c.loEx || r.HiExclusive != c.hiEx {
			t.Errorf("Sargable(%q) = %+v", c.sql, r)
		}
	}
}

func TestRangeContains(t *testing.T) {
	mk := func(lo, hi int64, loEx, hiEx bool) Range {
		r := Range{Column: "x", LoExclusive: loEx, HiExclusive: hiEx}
		if lo != -999 {
			r.Lo = value.NewInt(lo)
		}
		if hi != -999 {
			r.Hi = value.NewInt(hi)
		}
		return r
	}
	open := mk(-999, -999, false, false)
	if !open.Contains(mk(1, 5, false, false)) {
		t.Error("open range should contain everything")
	}
	if mk(1, 5, false, false).Contains(open) {
		t.Error("bounded range cannot contain open range")
	}
	if !mk(0, 10, false, false).Contains(mk(2, 8, false, false)) {
		t.Error("[0,10] should contain [2,8]")
	}
	if mk(2, 8, false, false).Contains(mk(0, 10, false, false)) {
		t.Error("[2,8] should not contain [0,10]")
	}
	// Exclusivity at equal bounds.
	if mk(0, 10, true, false).Contains(mk(0, 10, false, false)) {
		t.Error("(0,10] should not contain [0,10]")
	}
	if !mk(0, 10, false, false).Contains(mk(0, 10, true, false)) {
		t.Error("[0,10] should contain (0,10]")
	}
	// Different columns never contain.
	other := Range{Column: "y"}
	if open.Contains(other) {
		t.Error("different columns")
	}
}

// Property: if a.Contains(b), then every value satisfying b satisfies a.
func TestContainmentSoundnessProperty(t *testing.T) {
	gen := func(r *rand.Rand) Range {
		rr := Range{Column: "x"}
		if r.Intn(4) > 0 {
			rr.Lo = value.NewInt(int64(r.Intn(20)))
			rr.LoExclusive = r.Intn(2) == 0
		}
		if r.Intn(4) > 0 {
			rr.Hi = value.NewInt(int64(r.Intn(20)))
			rr.HiExclusive = r.Intn(2) == 0
		}
		return rr
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		if !a.Contains(b) {
			return true
		}
		for v := int64(-2); v < 25; v++ {
			val := value.NewInt(v)
			if b.Satisfies(val) && !a.Satisfies(val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSplitByTable(t *testing.T) {
	e, _ := sqlparse.ParseExpr("p.a = 1 AND s.b = 2 AND p.c > 3 AND p.a = s.b")
	local, rest := SplitByTable(Conjuncts(e), "p", false)
	if len(local) != 2 || len(rest) != 2 {
		t.Errorf("split = %d local, %d rest", len(local), len(rest))
	}
	// Unqualified references count as local only in single-table scope.
	e2, _ := sqlparse.ParseExpr("a = 1 AND p.b = 2")
	local, rest = SplitByTable(Conjuncts(e2), "p", true)
	if len(local) != 2 || len(rest) != 0 {
		t.Errorf("single-table split = %d local, %d rest", len(local), len(rest))
	}
	local, rest = SplitByTable(Conjuncts(e2), "p", false)
	if len(local) != 1 || len(rest) != 1 {
		t.Errorf("multi-table split = %d local, %d rest", len(local), len(rest))
	}
}

func TestEquiJoinKeys(t *testing.T) {
	e, _ := sqlparse.ParseExpr("p.sid = s.id AND p.x > 1 AND s.region = p.region")
	l, r := EquiJoinKeys(e, "p", "s")
	if len(l) != 2 || len(r) != 2 {
		t.Fatalf("keys = %v / %v", l, r)
	}
	if l[0].Column != "sid" || r[0].Column != "id" {
		t.Errorf("first pair = %v = %v", l[0], r[0])
	}
	// Reversed orientation normalizes.
	if l[1].Column != "region" || l[1].Table != "p" {
		t.Errorf("second pair = %v = %v", l[1], r[1])
	}
}

func TestEstimateSelectivity(t *testing.T) {
	cases := []struct {
		sql    string
		lo, hi float64
	}{
		{"a = 1", 0.0, 0.2},
		{"a <> 1", 0.8, 1.0},
		{"a > 1", 0.2, 0.4},
		{"a BETWEEN 1 AND 2", 0.2, 0.3},
		{"a IN (1,2)", 0.1, 0.3},
		{"a LIKE 'x%'", 0.1, 0.3},
		{"a IS NULL", 0.0, 0.1},
		{"a = 1 AND b = 1", 0.0, 0.05},
		{"a = 1 OR b = 1", 0.1, 0.3},
	}
	for _, c := range cases {
		e, _ := sqlparse.ParseExpr(c.sql)
		s := EstimateSelectivity(e, 0)
		if s < c.lo || s > c.hi {
			t.Errorf("EstimateSelectivity(%q) = %g, want [%g,%g]", c.sql, s, c.lo, c.hi)
		}
	}
	// Equality with known distinct count.
	e, _ := sqlparse.ParseExpr("a = 1")
	if s := EstimateSelectivity(e, 100); s != 0.01 {
		t.Errorf("eq selectivity with distinct = %g", s)
	}
}
