// Package lintdir is a coheralint fixture: a //lint:ignore directive
// without a reason is itself a finding and suppresses nothing.
package lintdir

func covered() error { return nil }

func malformed() {
	//lint:ignore errdrop
	_ = covered()
}
