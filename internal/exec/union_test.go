package exec

import (
	"testing"
)

func TestUnionAll(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, `SELECT sku FROM parts WHERE sid = 1
		UNION ALL SELECT sku FROM parts WHERE sid = 1`)
	if len(r.Rows) != 4 { // 2 rows twice, duplicates kept
		t.Errorf("UNION ALL rows = %d, want 4", len(r.Rows))
	}
}

func TestUnionDeduplicates(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, `SELECT sku FROM parts WHERE sid = 1
		UNION SELECT sku FROM parts WHERE sid = 1
		UNION SELECT sku FROM parts WHERE sid = 2`)
	if len(r.Rows) != 4 { // P1,P2 deduped + P3,P4
		t.Errorf("UNION rows = %d, want 4", len(r.Rows))
	}
}

func TestUnionColumnNamesFromFirstBranch(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, `SELECT sku AS part_id FROM parts WHERE sid = 1
		UNION ALL SELECT name FROM suppliers WHERE id = 1`)
	if r.Columns[0] != "part_id" {
		t.Errorf("columns = %v", r.Columns)
	}
	if len(r.Rows) != 3 {
		t.Errorf("rows = %d", len(r.Rows))
	}
}

func TestUnionPerBranchLimit(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, `SELECT sku FROM parts ORDER BY sku LIMIT 1
		UNION ALL SELECT sku FROM parts ORDER BY sku DESC LIMIT 1`)
	if len(r.Rows) != 2 || r.Rows[0][0].Str() != "P1" || r.Rows[1][0].Str() != "P6" {
		t.Errorf("per-branch limit = %v", r.Rows)
	}
}

func TestUnionErrors(t *testing.T) {
	db := demoDB(t)
	// Arity mismatch.
	if _, err := db.Exec("SELECT sku FROM parts UNION ALL SELECT sku, name FROM parts"); err == nil {
		t.Error("arity mismatch should fail")
	}
	// Mixed UNION / UNION ALL.
	if _, err := db.Exec("SELECT sku FROM parts UNION SELECT sku FROM parts UNION ALL SELECT sku FROM parts"); err == nil {
		t.Error("mixed chain should fail to parse")
	}
	// Branch error surfaces.
	if _, err := db.Exec("SELECT sku FROM parts UNION ALL SELECT sku FROM ghost"); err == nil {
		t.Error("branch error should surface")
	}
}

func TestUnionStringRoundTrip(t *testing.T) {
	db := demoDB(t)
	_ = db
	const q = "SELECT sku FROM parts UNION ALL SELECT sku FROM parts"
	r := exec1(t, db, q)
	if len(r.Rows) != 12 {
		t.Errorf("round trip rows = %d", len(r.Rows))
	}
}
