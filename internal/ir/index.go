package ir

import (
	"math"
	"sort"
	"sync"
)

// Posting records one document's occurrences of a term.
type Posting struct {
	// DocID identifies the document (the storage layer uses row ids).
	DocID int64
	// TF is the term frequency within the document.
	TF int
}

// Index is an inverted index with TF-IDF ranking. It supports incremental
// insertion and deletion so the storage layer can keep it transactionally
// consistent with table updates — the paper notes that mixing efficient
// text search with structured search under update is the hard part.
//
// Index is safe for concurrent use.
type Index struct {
	mu       sync.RWMutex
	postings map[string][]Posting // term → postings sorted by DocID
	docLen   map[int64]int        // doc → token count
	fuzzy    *FuzzyMatcher
}

// NewIndex returns an empty inverted index with a trigram fuzzy matcher
// over its vocabulary.
func NewIndex() *Index {
	return &Index{
		postings: make(map[string][]Posting),
		docLen:   make(map[int64]int),
		fuzzy:    NewFuzzyMatcher(0.6),
	}
}

// Add indexes the text under docID. Adding an existing docID first removes
// the previous content (upsert semantics).
func (ix *Index) Add(docID int64, text string) {
	terms := Terms(text)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.docLen[docID]; ok {
		ix.removeLocked(docID)
	}
	if len(terms) == 0 {
		return
	}
	tf := make(map[string]int, len(terms))
	for _, t := range terms {
		tf[t]++
	}
	for t, n := range tf {
		ix.postings[t] = insertPosting(ix.postings[t], Posting{DocID: docID, TF: n})
		ix.fuzzy.Add(t)
	}
	ix.docLen[docID] = len(terms)
}

// Remove deletes a document from the index. Removing an unknown docID is a
// no-op.
func (ix *Index) Remove(docID int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(docID)
}

func (ix *Index) removeLocked(docID int64) {
	if _, ok := ix.docLen[docID]; !ok {
		return
	}
	for t, ps := range ix.postings {
		i := sort.Search(len(ps), func(i int) bool { return ps[i].DocID >= docID })
		if i < len(ps) && ps[i].DocID == docID {
			ix.postings[t] = append(ps[:i], ps[i+1:]...)
			if len(ix.postings[t]) == 0 {
				delete(ix.postings, t)
			}
		}
	}
	delete(ix.docLen, docID)
}

func insertPosting(ps []Posting, p Posting) []Posting {
	i := sort.Search(len(ps), func(i int) bool { return ps[i].DocID >= p.DocID })
	if i < len(ps) && ps[i].DocID == p.DocID {
		ps[i] = p
		return ps
	}
	ps = append(ps, Posting{})
	copy(ps[i+1:], ps[i:])
	ps[i] = p
	return ps
}

// DocCount returns the number of indexed documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docLen)
}

// VocabSize returns the number of distinct terms.
func (ix *Index) VocabSize() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// Hit is one ranked search result.
type Hit struct {
	DocID int64
	Score float64
}

// SearchOptions control query expansion.
type SearchOptions struct {
	// Synonyms, when non-nil, expands query terms through synonym rings.
	Synonyms *Synonyms
	// Fuzzy expands query terms to approximately matching vocabulary
	// terms (edit similarity ≥ 0.6), scoring them by similarity.
	Fuzzy bool
	// Limit caps the result count; 0 means unlimited.
	Limit int
	// MinScore drops hits scoring below the threshold.
	MinScore float64
}

// Search ranks documents against the query text by TF-IDF with cosine-style
// length normalization. Expanded terms (synonym or fuzzy) contribute with
// a weight equal to their match confidence.
func (ix *Index) Search(query string, opts SearchOptions) []Hit {
	qterms := Terms(query)
	if opts.Synonyms != nil {
		qterms = opts.Synonyms.ExpandTerms(qterms)
	}
	type weighted struct {
		term   string
		weight float64
	}
	var expanded []weighted
	seen := make(map[string]bool)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, t := range qterms {
		if !seen[t] {
			seen[t] = true
			expanded = append(expanded, weighted{t, 1})
		}
		if opts.Fuzzy {
			if _, exact := ix.postings[t]; exact {
				continue // exact vocabulary hit; no need to fuzz
			}
			for _, m := range ix.fuzzy.Lookup(t, 5) {
				if !seen[m.Term] {
					seen[m.Term] = true
					expanded = append(expanded, weighted{m.Term, m.Score})
				}
			}
		}
	}
	n := float64(len(ix.docLen))
	if n == 0 {
		return nil
	}
	scores := make(map[int64]float64)
	for _, w := range expanded {
		ps := ix.postings[w.term]
		if len(ps) == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(len(ps)))
		for _, p := range ps {
			dl := float64(ix.docLen[p.DocID])
			tf := float64(p.TF) / dl
			scores[p.DocID] += w.weight * tf * idf
		}
	}
	hits := make([]Hit, 0, len(scores))
	for id, s := range scores {
		if s >= opts.MinScore {
			hits = append(hits, Hit{DocID: id, Score: s})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].DocID < hits[j].DocID
	})
	if opts.Limit > 0 && len(hits) > opts.Limit {
		hits = hits[:opts.Limit]
	}
	return hits
}

// Contains reports whether the document contains every term of the query
// (after analysis) — the boolean CONTAINS predicate, cheaper than ranking.
func (ix *Index) Contains(docID int64, query string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, t := range Terms(query) {
		ps := ix.postings[t]
		i := sort.Search(len(ps), func(i int) bool { return ps[i].DocID >= docID })
		if i >= len(ps) || ps[i].DocID != docID {
			return false
		}
	}
	return true
}
