// Command coherachaos is the executable fault-injection harness for the
// resilience layer: it drives a federation of sites (plus a remote
// daemon reached over HTTP) through seeded fault schedules and asserts
// the robustness invariants the design promises:
//
//   - a SELECT under a dead fragment degrades to partial results with
//     the lost fragment's typed error, and heals when the fault clears;
//   - a transient remote read recovers through retry-with-backoff, with
//     the retry count visible on the daemon's /metrics;
//   - a site's circuit breaker opens under sustained faults, half-opens
//     after its timeout, and closes again once the schedule clears;
//   - federated DML never blind-retries a non-idempotent statement, and
//     never reports a replica in QueryTrace.FragmentSites that did not
//     apply the write;
//   - under a seeded mixed soak, every operation either succeeds,
//     degrades with reported fragments, or fails with a typed error —
//     and every breaker re-closes after the fault schedules end;
//   - the anti-entropy convergence invariant: after a DML-heavy workload
//     over replicas flapping on seeded MTBF/MTTR schedules, the
//     reconciler converges every replica within a bounded recovery
//     window — identical content digests, zero pending write intents
//     (gauge included), with at least one repair done by journal replay
//     — and a replica whose journal is torn is rebuilt by copy-repair
//     from its healthy peer;
//   - the overload invariant (-overload): at four times measured
//     capacity an admission-gated federation sheds excess load with
//     typed Retry-After errors only, keeps admitted p99 inside the
//     SLO, starves no tenant, and returns to shed-free serving once
//     the offered load drops back under the per-tenant rates.
//
// All randomness flows from -seed and all schedule time from manual
// clocks, so a fixed seed reproduces the fault sequence exactly. -smoke
// shrinks the soak for the CI gate (scripts/check.sh); exit status 0
// means every invariant held.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"cohera/internal/fault"
	"cohera/internal/federation"
	"cohera/internal/obs"
	"cohera/internal/remote"
	"cohera/internal/resilience"
	"cohera/internal/schema"
	"cohera/internal/sqlparse"
	"cohera/internal/storage"
	"cohera/internal/value"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for fault schedules and jitter")
	smoke := flag.Bool("smoke", false, "short deterministic run for CI (<10s)")
	iters := flag.Int("iters", 400, "soak workload operations (ignored with -smoke)")
	crash := flag.Bool("crash", false, "run only the kill -9 crash-recovery scenario (spawns child processes)")
	overload := flag.Bool("overload", false, "run only the admission-overload scenario (open-loop 4x load, three tenants)")
	crashChild := flag.String("crash-child", "", "internal: crash-scenario child mode (workload|verify)")
	crashDir := flag.String("crash-dir", "", "internal: crash-scenario state directory")
	flag.Parse()

	if *crashChild != "" {
		var err error
		switch *crashChild {
		case "workload":
			err = runCrashWorkload(*crashDir, *seed)
		case "verify":
			err = runCrashVerify(*crashDir, *seed)
		default:
			err = fmt.Errorf("unknown -crash-child mode %q", *crashChild)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "coherachaos: crash-child: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *crash {
		if err := scenarioCrash(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "coherachaos: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("coherachaos: crash-recovery invariants held")
		return
	}
	if *overload {
		if err := scenarioOverload(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "coherachaos: FAIL: overload: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("coherachaos: overload invariants held")
		return
	}

	n := *iters
	if *smoke {
		n = 80
	}
	if err := run(*seed, n); err != nil {
		fmt.Fprintf(os.Stderr, "coherachaos: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("coherachaos: all invariants held")
}

func run(seed int64, soakOps int) error {
	steps := []struct {
		name string
		fn   func(int64) error
	}{
		{"degraded-select", scenarioDegradedSelect},
		{"retry-metrics", scenarioRetryMetrics},
		{"breaker-lifecycle", scenarioBreakerLifecycle},
		{"dml-invariants", scenarioDMLInvariants},
		{"convergence", scenarioConvergence},
	}
	for _, s := range steps {
		if err := s.fn(seed); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Printf("coherachaos: %s ok\n", s.name)
	}
	if err := scenarioSoak(seed, soakOps); err != nil {
		return fmt.Errorf("soak: %w", err)
	}
	fmt.Printf("coherachaos: soak ok (%d ops)\n", soakOps)
	return nil
}

// partsDef is the demo global schema shared by every scenario.
func partsDef() *schema.Table {
	return schema.MustTable("parts", []schema.Column{
		{Name: "sku", Kind: value.KindString, NotNull: true},
		{Name: "price", Kind: value.KindFloat},
		{Name: "region", Kind: value.KindString},
	}, "sku")
}

func partsRow(sku string, price float64, region string) storage.Row {
	return storage.Row{value.NewString(sku), value.NewFloat(price), value.NewString(region)}
}

// testbed is one chaos federation: east fragment on a single site, west
// fragment replicated on two.
type testbed struct {
	fed                *federation.Federation
	east, west1, west2 *federation.Site
}

func newTestbed() (*testbed, error) {
	tb := &testbed{
		fed:   federation.New(federation.NewAgoric()),
		east:  federation.NewSite("east-1"),
		west1: federation.NewSite("west-1"),
		west2: federation.NewSite("west-2"),
	}
	for _, s := range []*federation.Site{tb.east, tb.west1, tb.west2} {
		if err := tb.fed.AddSite(s); err != nil {
			return nil, err
		}
	}
	eastPred, err := sqlparse.ParseExpr("region = 'east'")
	if err != nil {
		return nil, err
	}
	westPred, err := sqlparse.ParseExpr("region = 'west'")
	if err != nil {
		return nil, err
	}
	fragEast := federation.NewFragment("east", eastPred, tb.east)
	fragWest := federation.NewFragment("west", westPred, tb.west1, tb.west2)
	if _, err := tb.fed.DefineTable(partsDef(), fragEast, fragWest); err != nil {
		return nil, err
	}
	if err := tb.fed.LoadFragment("parts", fragEast, []storage.Row{
		partsRow("E1", 3.5, "east"), partsRow("E2", 1.2, "east"),
	}); err != nil {
		return nil, err
	}
	return tb, tb.fed.LoadFragment("parts", fragWest, []storage.Row{
		partsRow("W1", 99.5, "west"), partsRow("W2", 12000, "west"),
	})
}

// scenarioDegradedSelect: a scheduled outage kills the east fragment's
// only replica; with PartialResults on, the federation serves the west
// rows and reports the lost fragment's typed error; after the outage
// window the same query is whole again.
func scenarioDegradedSelect(seed int64) error {
	tb, err := newTestbed()
	if err != nil {
		return err
	}
	tb.fed.PartialResults = true
	ctx := context.Background()

	clock := &fault.ManualClock{}
	sched, err := fault.NewSchedule(fault.Window{Start: 0, End: time.Second})
	if err != nil {
		return err
	}
	inj := fault.New("east-outage", fault.Config{Seed: seed})
	inj.SetSchedule(sched)
	inj.SetElapsed(clock.Elapsed)
	tb.east.SetFaultHook(inj.Inject)

	res, trace, err := tb.fed.QueryTraced(ctx, "SELECT sku FROM parts ORDER BY sku")
	if err != nil {
		return fmt.Errorf("degraded query should still answer: %w", err)
	}
	if !trace.Degraded {
		return fmt.Errorf("trace not marked Degraded under a dead fragment")
	}
	if len(res.Rows) != 2 {
		return fmt.Errorf("degraded rows = %d, want 2 (west only)", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !strings.HasPrefix(r[0].Str(), "W") {
			return fmt.Errorf("row %v leaked from the dead fragment", r)
		}
	}
	fe, ok := trace.FragmentErrors["parts/east"]
	if !ok {
		return fmt.Errorf("FragmentErrors missing parts/east: %v", trace.FragmentErrors)
	}
	if !errors.Is(fe, federation.ErrNoReplica) || !errors.Is(fe, fault.ErrInjected) {
		return fmt.Errorf("fragment error lost its types: %v", fe)
	}

	// The outage window ends; the next query is whole.
	clock.Advance(2 * time.Second)
	res, trace, err = tb.fed.QueryTraced(ctx, "SELECT sku FROM parts")
	if err != nil || trace.Degraded || len(res.Rows) != 4 {
		return fmt.Errorf("after outage clears: rows=%d degraded=%v err=%v", len(res.Rows), trace.Degraded, err)
	}
	return nil
}

// scenarioRetryMetrics: a remote daemon behind a faulty transport; the
// client's retry policy recovers the read, and the daemon's /metrics
// shows the retries.
func scenarioRetryMetrics(seed int64) error {
	srv := remote.NewServer()
	tbl := storage.NewTable(partsDef())
	if _, err := tbl.Insert(partsRow("R1", 10, "east")); err != nil {
		return err
	}
	srv.PublishTable(tbl, "sku")
	ts := httptest.NewServer(obs.NewHandler(srv))
	defer ts.Close()

	before, err := scrapeCounter(ts.URL, "cohera_remote_client_retries_total")
	if err != nil {
		return err
	}

	inj := fault.New("chaos-transport", fault.Config{FailFirst: 2, Seed: seed})
	cl := remote.Dial(ts.URL, "",
		remote.WithTransport(&fault.RoundTripper{Injector: inj}),
		remote.WithRetry(resilience.Retry{MaxAttempts: 4, BaseDelay: time.Millisecond, Seed: seed}))
	ctx := context.Background()
	sources, err := cl.Tables(ctx)
	if err != nil {
		return fmt.Errorf("retry should absorb the injected faults: %w", err)
	}
	if len(sources) != 1 {
		return fmt.Errorf("want 1 source, got %d", len(sources))
	}
	rows, err := sources[0].Fetch(ctx, nil)
	if err != nil || len(rows) != 1 {
		return fmt.Errorf("fetch through recovered transport: rows=%d err=%v", len(rows), err)
	}

	after, err := scrapeCounter(ts.URL, "cohera_remote_client_retries_total")
	if err != nil {
		return err
	}
	if after-before < 2 {
		return fmt.Errorf("/metrics retries advanced by %d, want >= 2", after-before)
	}
	return nil
}

// scrapeCounter reads one unlabelled counter's value off /metrics.
func scrapeCounter(base, name string) (int64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, fmt.Errorf("/metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("/metrics: %w", err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("parsing %s: %w", name, err)
		}
		return v, nil
	}
	return 0, nil // series not created yet: zero
}

// scenarioBreakerLifecycle: sustained faults open a site's breaker, the
// open breaker sheds load without touching the site, and once the flap
// schedule clears the half-open probes close it again.
func scenarioBreakerLifecycle(seed int64) error {
	tb, err := newTestbed()
	if err != nil {
		return err
	}
	ctx := context.Background()
	clock := &fault.ManualClock{}
	br := tb.east.Breaker()
	br.FailureThreshold = 3
	br.OpenTimeout = 2 * time.Second
	br.HalfOpenSuccesses = 2
	br.Clock = clock.Now

	sched, err := fault.NewSchedule(fault.Window{Start: 0, End: 5 * time.Second})
	if err != nil {
		return err
	}
	inj := fault.New("east-flap", fault.Config{Seed: seed})
	inj.SetSchedule(sched)
	inj.SetElapsed(clock.Elapsed)
	tb.east.SetFaultHook(inj.Inject)

	for i := 0; i < 3; i++ {
		if _, err := tb.east.SubQuery(ctx, "parts", nil, nil); !errors.Is(err, federation.ErrSiteFailure) {
			return fmt.Errorf("fault %d: want ErrSiteFailure, got %v", i, err)
		}
	}
	if br.State() != resilience.Open {
		return fmt.Errorf("breaker = %v after sustained faults, want open", br.State())
	}
	if _, err := tb.east.SubQuery(ctx, "parts", nil, nil); !errors.Is(err, federation.ErrBreakerOpen) {
		return fmt.Errorf("open breaker should reject, got %v", err)
	}
	if score := tb.east.HealthScore(); score != 0 {
		return fmt.Errorf("open site health = %v, want 0", score)
	}

	// Half-open too early: the schedule still has the site down, so the
	// probe fails and the breaker re-opens.
	clock.Advance(3 * time.Second) // past OpenTimeout, inside the outage window
	if _, err := tb.east.SubQuery(ctx, "parts", nil, nil); !errors.Is(err, federation.ErrSiteFailure) {
		return fmt.Errorf("probe during outage: want ErrSiteFailure, got %v", err)
	}
	if br.State() != resilience.Open {
		return fmt.Errorf("failed probe should re-open, breaker = %v", br.State())
	}

	// Schedule clears; the next probes close the breaker for good.
	clock.Advance(5 * time.Second)
	for i := 0; i < 2; i++ {
		if _, err := tb.east.SubQuery(ctx, "parts", nil, nil); err != nil {
			return fmt.Errorf("probe %d after faults cleared: %v", i, err)
		}
	}
	if br.State() != resilience.Closed {
		return fmt.Errorf("breaker = %v after recovery, want closed", br.State())
	}
	for _, h := range tb.fed.Scoreboard() {
		if h.Score != 1 {
			return fmt.Errorf("scoreboard not fully healthy after recovery: %+v", h)
		}
	}
	return nil
}

// scenarioDMLInvariants: non-idempotent writes are never blind-retried
// (a faulted replica is skipped and reported, not replayed), every site
// reported in FragmentSites really applied the write, and a fully dead
// fragment fails typed instead of losing the write silently.
func scenarioDMLInvariants(seed int64) error {
	tb, err := newTestbed()
	if err != nil {
		return err
	}
	ctx := context.Background()

	priceAt := func(s *federation.Site, sku string) (float64, bool) {
		res, err := s.DB().Exec("SELECT price FROM parts WHERE sku = '" + sku + "'")
		if err != nil || len(res.Rows) == 0 {
			return 0, false
		}
		return res.Rows[0][0].Float(), true
	}
	before1, _ := priceAt(tb.west1, "W1")
	before2, _ := priceAt(tb.west2, "W1")

	// west-2 faults exactly once: after west-1 applied the increment.
	inj := fault.New("west2-once", fault.Config{FailFirst: 1, Seed: seed})
	tb.west2.SetFaultHook(inj.Inject)
	_, dr, trace, err := tb.fed.ExecTraced(ctx, "UPDATE parts SET price = price + 1 WHERE sku = 'W1'")
	if err != nil {
		return fmt.Errorf("best-effort write: %w", err)
	}
	if got, _ := priceAt(tb.west1, "W1"); got != before1+1 {
		return fmt.Errorf("west-1 W1 price = %v, want exactly one increment from %v", got, before1)
	}
	if got, _ := priceAt(tb.west2, "W1"); got != before2 {
		return fmt.Errorf("west-2 W1 price = %v, want untouched %v", got, before2)
	}
	if len(dr.SkippedReplicas) != 1 || !strings.Contains(dr.SkippedReplicas[0], "west-2") {
		return fmt.Errorf("skipped = %v, want the faulted west-2 copy", dr.SkippedReplicas)
	}
	if sites := trace.FragmentSites["parts/west"]; sites != "west-1" {
		return fmt.Errorf("FragmentSites lists %q for west, want only the applier west-1", sites)
	}

	// An INSERT's reported sites must each hold the new row.
	_, _, trace, err = tb.fed.ExecTraced(ctx, "INSERT INTO parts (sku, price, region) VALUES ('W9', 7, 'west')")
	if err != nil {
		return err
	}
	for _, name := range splitSites(trace.FragmentSites["parts/west"]) {
		s, err := tb.fed.Site(name)
		if err != nil {
			return err
		}
		if _, ok := priceAt(s, "W9"); !ok {
			return fmt.Errorf("FragmentSites reports %s but the row is not there", name)
		}
	}

	// Both west replicas down: the write must fail typed, naming the
	// fragment — never silently succeed.
	tb.west1.SetDown(true)
	tb.west2.SetDown(true)
	_, _, _, err = tb.fed.ExecTraced(ctx, "UPDATE parts SET price = 1 WHERE region = 'west'")
	if !errors.Is(err, federation.ErrNoReplica) || !errors.Is(err, federation.ErrSiteDown) {
		return fmt.Errorf("dead fragment write: want ErrNoReplica wrapping ErrSiteDown, got %v", err)
	}
	if !strings.Contains(err.Error(), "west") {
		return fmt.Errorf("dead fragment write error should name the fragment: %v", err)
	}

	// The skipped west-2 increment left a journaled intent. Recover the
	// sites and let the reconciler replay it, so this scenario hands the
	// convergence stage a clean (zero-pending) journal gauge — and
	// proves in passing that the skipped write was deferred, not lost.
	tb.west1.SetDown(false)
	tb.west2.SetDown(false)
	tb.west2.SetFaultHook(nil)
	rep, err := federation.NewReconciler(tb.fed).RunOnce(ctx)
	if err != nil {
		return err
	}
	if rep.Pending != 0 || rep.Replayed < 1 {
		return fmt.Errorf("recovery drain: %+v, want the skipped increment replayed", rep)
	}
	if got, _ := priceAt(tb.west2, "W1"); got != before2+1 {
		return fmt.Errorf("west-2 W1 price = %v after replay, want %v", got, before2+1)
	}
	d1, err := tb.west1.DB().TableDigest("parts")
	if err != nil {
		return err
	}
	d2, err := tb.west2.DB().TableDigest("parts")
	if err != nil {
		return err
	}
	if !d1.Equal(d2) {
		return fmt.Errorf("west digests diverge after replay: %+v vs %+v", d1, d2)
	}
	return nil
}

// scenarioConvergence: the anti-entropy convergence invariant. The west
// replicas flap on seeded MTBF/MTTR schedules under a DML-heavy
// workload, so each misses a different slice of the writes; once the
// flapping stops, a bounded number of repair passes must leave every
// replica with an identical content digest and an empty write-intent
// journal, with at least one repair done by journal replay. A replica
// whose journal is then torn mid-record must be rebuilt by copy-repair
// from its healthy peer — never by replaying the untrustworthy log.
func scenarioConvergence(seed int64) error {
	tb, err := newTestbed()
	if err != nil {
		return err
	}
	// Replica choice must not depend on wall-clock latency (see the soak
	// scenario) and breaker gating has its own scenario: here the flap
	// schedules alone decide availability.
	tb.fed.SetOptimizer(federation.NewCentralized(tb.fed))
	ctx := context.Background()
	for _, s := range []*federation.Site{tb.east, tb.west1, tb.west2} {
		s.Breaker().FailureThreshold = 1 << 30
	}
	ts := httptest.NewServer(obs.NewHandler(http.NotFoundHandler()))
	defer ts.Close()
	replaysBefore, err := scrapeCounter(ts.URL, "cohera_antientropy_replays_total")
	if err != nil {
		return err
	}

	const step = 10 * time.Millisecond
	const ops = 60
	clock := &fault.ManualClock{}
	flap1, err := fault.Flap(12*step, 5*step, ops*step, seed)
	if err != nil {
		return err
	}
	flap2, err := fault.Flap(16*step, 4*step, ops*step, seed+1)
	if err != nil {
		return err
	}

	var failed int
	for i := 0; i < ops; i++ {
		clock.Advance(step)
		e := clock.Elapsed()
		tb.west1.SetDown(flap1.DownAt(e))
		tb.west2.SetDown(flap2.DownAt(e))
		var sql string
		switch i % 3 {
		case 0:
			sql = fmt.Sprintf("INSERT INTO parts (sku, price, region) VALUES ('C%03d', %d, 'west')", i, i)
		case 1:
			sql = fmt.Sprintf("UPDATE parts SET price = %d WHERE sku = 'W1'", i)
		default:
			sql = "UPDATE parts SET price = price + 1 WHERE sku = 'W2'"
		}
		if _, _, err := tb.fed.Exec(ctx, sql); err != nil {
			// Both west replicas down: the statement must fail typed and
			// abandon its intents (verified below by the digest check —
			// an abandoned write replayed anywhere would diverge).
			if !errors.Is(err, federation.ErrNoReplica) {
				return fmt.Errorf("op %d failed untyped: %w", i, err)
			}
			failed++
		}
	}

	// The outage is over; the recovery window is a bounded number of
	// repair passes.
	tb.west1.SetDown(false)
	tb.west2.SetDown(false)
	r := federation.NewReconciler(tb.fed)
	var replayed, copied int
	for pass := 0; pass < 10; pass++ {
		rep, err := r.RunOnce(ctx)
		if err != nil {
			return fmt.Errorf("repair pass %d: %w", pass, err)
		}
		replayed += rep.Replayed
		copied += rep.CopyRepaired
		if rep.Pending == 0 {
			break
		}
	}
	if n := tb.fed.Journal().PendingTotal(); n != 0 {
		return fmt.Errorf("journal not empty within the recovery window: %d pending", n)
	}
	d1, err := tb.west1.DB().TableDigest("parts")
	if err != nil {
		return err
	}
	d2, err := tb.west2.DB().TableDigest("parts")
	if err != nil {
		return err
	}
	if !d1.Equal(d2) {
		return fmt.Errorf("replicas did not converge: %+v vs %+v", d1, d2)
	}
	if replayed < 1 {
		return fmt.Errorf("convergence used no journal replay (replayed=%d copied=%d); the flap should force at least one", replayed, copied)
	}
	replaysAfter, err := scrapeCounter(ts.URL, "cohera_antientropy_replays_total")
	if err != nil {
		return err
	}
	if replaysAfter-replaysBefore < int64(replayed) {
		return fmt.Errorf("replays counter advanced %d, want >= %d", replaysAfter-replaysBefore, replayed)
	}
	// The pending-intents gauge is global: zero here also proves every
	// earlier scenario settled its journals.
	if gauge, err := scrapeCounter(ts.URL, "cohera_antientropy_pending_intents"); err != nil || gauge != 0 {
		return fmt.Errorf("pending-intents gauge = %d after convergence (err=%v), want 0", gauge, err)
	}

	// Copy-repair fallback: a write lands while west-1 is down, then its
	// journal is torn mid-record. The reconciler must refuse to replay
	// the torn log and instead rebuild west-1 from west-2.
	copyBefore, err := scrapeCounter(ts.URL, "cohera_antientropy_copy_repairs_total")
	if err != nil {
		return err
	}
	tb.west1.SetDown(true)
	if _, _, err := tb.fed.Exec(ctx, "UPDATE parts SET price = 123456 WHERE sku = 'W2'"); err != nil {
		return fmt.Errorf("write during final outage: %w", err)
	}
	grp := tb.fed.Journal().Group(tb.west1.Name(), "parts")
	grp.TruncateTail("west", 3)
	if !grp.Lost() {
		return fmt.Errorf("torn journal tail not detected as lost")
	}
	tb.west1.SetDown(false)
	rep, err := r.RunOnce(ctx)
	if err != nil {
		return err
	}
	if rep.Replayed != 0 || rep.CopyRepaired < 1 {
		return fmt.Errorf("torn journal: want copy-repair and no replay, got %+v", rep)
	}
	res, err := tb.west1.DB().Exec("SELECT price FROM parts WHERE sku = 'W2'")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Float() != 123456 {
		return fmt.Errorf("copy-repair did not carry the missed write: %v, %v", res, err)
	}
	d1, err = tb.west1.DB().TableDigest("parts")
	if err != nil {
		return err
	}
	d2, err = tb.west2.DB().TableDigest("parts")
	if err != nil {
		return err
	}
	if !d1.Equal(d2) {
		return fmt.Errorf("replicas diverge after copy-repair: %+v vs %+v", d1, d2)
	}
	copyAfter, err := scrapeCounter(ts.URL, "cohera_antientropy_copy_repairs_total")
	if err != nil {
		return err
	}
	if copyAfter-copyBefore < 1 {
		return fmt.Errorf("copy-repairs counter did not advance")
	}
	fmt.Printf("coherachaos: convergence stats: %d replayed, %d copy-repaired, %d typed write failures\n",
		replayed, copied+rep.CopyRepaired, failed)
	return nil
}

// scenarioSoak: a seeded mixed workload over flapping sites. Every
// operation must succeed, degrade with reported fragments, or fail with
// a typed error; reported DML sites must have applied their writes; and
// once the schedules clear, every breaker re-closes.
func scenarioSoak(seed int64, ops int) error {
	tb, err := newTestbed()
	if err != nil {
		return err
	}
	tb.fed.PartialResults = true
	// The agoric optimizer ranks replicas by observed wall-clock latency,
	// which would let scheduling jitter reorder each site's seeded draw
	// stream. The snapshot optimizer ranks equal-cost replicas by name,
	// keeping the whole soak reproducible from -seed alone.
	tb.fed.SetOptimizer(federation.NewCentralized(tb.fed))
	ctx := context.Background()

	const step = 100 * time.Millisecond
	horizon := time.Duration(ops) * step
	clock := &fault.ManualClock{}
	var maxEnd time.Duration
	sites := []*federation.Site{tb.east, tb.west1, tb.west2}
	for i, s := range sites {
		sched, err := fault.Flap(20*step, 6*step, horizon, seed+int64(i))
		if err != nil {
			return err
		}
		if sched.End() > maxEnd {
			maxEnd = sched.End()
		}
		inj := fault.New(s.Name()+"-soak", fault.Config{ErrorRate: 0.05, Seed: seed + int64(i)})
		inj.SetSchedule(sched)
		inj.SetElapsed(clock.Elapsed)
		s.SetFaultHook(inj.Inject)
		br := s.Breaker()
		br.FailureThreshold = 3
		br.OpenTimeout = 4 * step
		br.HalfOpenSuccesses = 1
		br.Clock = clock.Now
	}

	var degraded, failed, wrote int
	for i := 0; i < ops; i++ {
		clock.Advance(step)
		switch i % 5 {
		case 0: // INSERT a fresh row; reported sites must hold it.
			region := "east"
			if i%2 == 0 {
				region = "west"
			}
			sku := fmt.Sprintf("S%04d", i)
			_, _, trace, err := tb.fed.ExecTraced(ctx,
				fmt.Sprintf("INSERT INTO parts (sku, price, region) VALUES ('%s', %d, '%s')", sku, i, region))
			if err != nil {
				if !errors.Is(err, federation.ErrNoReplica) {
					return fmt.Errorf("op %d: insert failed untyped: %w", i, err)
				}
				failed++
				continue
			}
			wrote++
			if err := verifyWritten(tb, trace, sku); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		case 1: // Absolute UPDATE; reported west sites must show the value.
			_, _, trace, err := tb.fed.ExecTraced(ctx,
				fmt.Sprintf("UPDATE parts SET price = %d WHERE sku = 'W1'", i))
			if err != nil {
				if !errors.Is(err, federation.ErrNoReplica) {
					return fmt.Errorf("op %d: update failed untyped: %w", i, err)
				}
				failed++
				continue
			}
			for _, name := range splitSites(trace.FragmentSites["parts/west"]) {
				s, err := tb.fed.Site(name)
				if err != nil {
					return err
				}
				res, err := s.DB().Exec("SELECT price FROM parts WHERE sku = 'W1'")
				if err != nil || len(res.Rows) == 0 || res.Rows[0][0].Float() != float64(i) {
					return fmt.Errorf("op %d: %s reported as written but price is stale", i, name)
				}
			}
		default: // SELECT: succeeds whole or degrades with typed errors.
			q := "SELECT sku FROM parts"
			if i%5 == 3 {
				q = "SELECT sku, price FROM parts WHERE region = 'west'"
			}
			_, trace, err := tb.fed.QueryTraced(ctx, q)
			if err != nil {
				return fmt.Errorf("op %d: partial-mode select must not fail: %w", i, err)
			}
			if trace.Degraded {
				degraded++
				if len(trace.FragmentErrors) == 0 {
					return fmt.Errorf("op %d: degraded without reported fragments", i)
				}
				for k, fe := range trace.FragmentErrors {
					if !errors.Is(fe, federation.ErrNoReplica) {
						return fmt.Errorf("op %d: fragment %s error untyped: %v", i, k, fe)
					}
				}
			}
		}
	}

	// Faults clear: remove every hook, let the breakers' open timeouts
	// lapse, and drive probes until the scoreboard is green.
	for _, s := range sites {
		s.SetFaultHook(nil)
	}
	clock.Advance(maxEnd + 10*step)
	for _, s := range sites {
		for p := 0; p < 3; p++ {
			if _, err := s.SubQuery(ctx, "parts", nil, nil); err != nil {
				return fmt.Errorf("recovery probe at %s: %v", s.Name(), err)
			}
		}
	}
	for _, h := range tb.fed.Scoreboard() {
		if h.Breaker != resilience.Closed || h.Score != 1 {
			return fmt.Errorf("breaker at %s did not re-close after faults cleared: %+v", h.Site, h)
		}
	}
	res, trace, err := tb.fed.QueryTraced(ctx, "SELECT sku FROM parts")
	if err != nil || trace.Degraded {
		return fmt.Errorf("post-recovery select: err=%v", err)
	}
	if len(res.Rows) < 4 {
		return fmt.Errorf("post-recovery rows = %d, want at least the seed rows", len(res.Rows))
	}
	// Anti-entropy epilogue: replay the writes skipped during the flaps
	// and converge the west replicas.
	r := federation.NewReconciler(tb.fed)
	for pass := 0; pass < 5; pass++ {
		rep, err := r.RunOnce(ctx)
		if err != nil {
			return fmt.Errorf("soak repair pass %d: %w", pass, err)
		}
		if rep.Pending == 0 {
			break
		}
	}
	if n := tb.fed.Journal().PendingTotal(); n != 0 {
		return fmt.Errorf("soak journal not drained: %d pending", n)
	}
	d1, err := tb.west1.DB().TableDigest("parts")
	if err != nil {
		return err
	}
	d2, err := tb.west2.DB().TableDigest("parts")
	if err != nil {
		return err
	}
	if !d1.Equal(d2) {
		return fmt.Errorf("west replicas diverge after soak repair: %+v vs %+v", d1, d2)
	}
	fmt.Printf("coherachaos: soak stats: %d writes applied, %d degraded reads, %d typed write failures\n",
		wrote, degraded, failed)
	return nil
}

// verifyWritten checks every site reported in the insert trace holds sku.
func verifyWritten(tb *testbed, trace *federation.QueryTrace, sku string) error {
	for key, joined := range trace.FragmentSites {
		if !strings.HasPrefix(key, "parts/") {
			continue
		}
		for _, name := range splitSites(joined) {
			s, err := tb.fed.Site(name)
			if err != nil {
				return err
			}
			res, err := s.DB().Exec("SELECT sku FROM parts WHERE sku = '" + sku + "'")
			if err != nil || len(res.Rows) != 1 {
				return fmt.Errorf("%s reported in FragmentSites but did not apply %s", name, sku)
			}
		}
	}
	return nil
}

func splitSites(joined string) []string {
	if joined == "" {
		return nil
	}
	return strings.Split(joined, ",")
}
