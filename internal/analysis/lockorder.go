package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// LockOrder builds a whole-program lock-acquisition graph over named
// sync.Mutex/sync.RWMutex locks (struct fields and package-level vars)
// and reports every cycle as a potential deadlock: two call paths that
// acquire the same pair of locks in opposite order can each hold one
// half and wait forever on the other. The graph is interprocedural —
// an edge A -> B is recorded when B is acquired while A is held,
// whether B's acquisition is textually inline, inside a callee, or
// inside a function value invoked by a callee that holds A (the
// journal Group.Execute/Drain/Exclusive pattern). Goroutine bodies
// start with an empty held set: a `go` statement does not hold the
// spawner's locks.
//
// Beyond cycles, the observed edge set is compared against a blessed,
// checked-in dump (see LockOrderGoldenFile): a new edge is reported so
// it gets reviewed — and added to the dump or restructured away — and
// a blessed edge that disappeared is reported so the dump never rots.
// Regenerate with `coheralint -write-lockorder`.
//
// The analysis is flow-insensitive within a function (an acquisition
// is considered held until its textual Unlock or function end;
// deferred unlocks hold to the end) and cannot see through interface
// method calls or function values stored in fields. Locks without a
// nameable identity (local mutexes, anonymous structs) are skipped:
// they cannot participate in a cross-function ordering contract.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "cross-package lock-acquisition cycles (potential deadlocks) and unreviewed order edges",
	RunProgram: runLockOrder,
}

// LockOrderGoldenFile, when non-empty, is the path of the blessed
// lock-order edge dump the analyzer diffs the observed graph against.
// cmd/coheralint points it at internal/analysis/lockorder.golden when
// linting the real tree; fixture runs leave it empty (cycles only).
var LockOrderGoldenFile string

// LockEdge is one observed ordering: To was acquired while From was
// held. Pos/Via witness the first observation.
type LockEdge struct {
	From, To string
	// Via is the function the acquisition was observed in.
	Via string
	// Pos is the acquisition (or call) site.
	Pos token.Position
	// PkgPath is the import path of the package containing Pos, for
	// scope filtering.
	PkgPath string
}

func runLockOrder(p *ProgramPass) {
	edges := ComputeLockEdges(p.Pkgs)
	reportLockCycles(p, edges)
	if LockOrderGoldenFile != "" {
		diffLockGolden(p, edges, LockOrderGoldenFile)
	}
}

// reportLockCycles finds strongly connected components of the edge
// graph and reports every edge participating in one.
func reportLockCycles(p *ProgramPass, edges []LockEdge) {
	scc := lockSCCs(edges)
	for _, e := range edges {
		if !p.InScope(e.PkgPath) {
			continue
		}
		if e.From == e.To {
			p.ReportAt(e.Pos, "lock-order cycle: %s acquired while already held (self-deadlock)", e.From)
			continue
		}
		if scc[e.From] != 0 && scc[e.From] == scc[e.To] {
			p.ReportAt(e.Pos, "lock-order cycle: acquiring %s while holding %s closes a cycle among %s",
				e.To, e.From, lockSCCNodes(scc, scc[e.From]))
		}
	}
}

// lockSCCs assigns each lock node a component id; nodes in components
// of size >1 share an id, all others get 0 (acyclic).
func lockSCCs(edges []LockEdge) map[string]int {
	adj := make(map[string][]string)
	for _, e := range edges {
		if e.From != e.To {
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	// Tarjan's algorithm, iterative enough for our graph sizes via
	// recursion (lock graphs are tiny).
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	comp := make(map[string]int)
	next, compID := 1, 0
	var strong func(v string)
	strong = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, m := range members {
					comp[m] = compID
				}
			}
		}
	}
	keys := make([]string, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if index[k] == 0 {
			strong(k)
		}
	}
	return comp
}

// lockSCCNodes renders one component's node set as "{a, b}" sorted.
func lockSCCNodes(comp map[string]int, id int) string {
	var names []string
	for n, c := range comp {
		if c == id {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ", ") + "}"
}

// diffLockGolden reports edges missing from the blessed dump and
// blessed edges no longer observed.
func diffLockGolden(p *ProgramPass, edges []LockEdge, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		p.ReportAt(token.Position{Filename: path, Line: 1},
			"lock-order golden dump unreadable: %v (regenerate with coheralint -write-lockorder)", err)
		return
	}
	blessed := make(map[string]int) // "A -> B" → golden line
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		blessed[line] = i + 1
	}
	observed := make(map[string]bool)
	for _, e := range edges {
		key := e.From + " -> " + e.To
		if observed[key] {
			continue
		}
		observed[key] = true
		if _, ok := blessed[key]; !ok && p.InScope(e.PkgPath) {
			p.ReportAt(e.Pos, "new lock-order edge %s -> %s (in %s) is not in the blessed ordering; review for deadlock and regenerate with coheralint -write-lockorder",
				e.From, e.To, e.Via)
		}
	}
	var stale []string
	for key := range blessed {
		if !observed[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	for _, key := range stale {
		p.ReportAt(token.Position{Filename: path, Line: blessed[key]},
			"blessed lock-order edge %s is no longer observed; regenerate with coheralint -write-lockorder", key)
	}
}

// FormatLockEdges renders edges in the golden-dump format: one
// "From -> To" line per distinct edge, sorted, each annotated with its
// first witness. The output is what -write-lockorder checks in.
func FormatLockEdges(edges []LockEdge) string {
	type w struct{ via string }
	seen := make(map[string]w)
	var keys []string
	for _, e := range edges {
		key := e.From + " -> " + e.To
		if _, ok := seen[key]; !ok {
			seen[key] = w{via: e.Via}
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# Blessed lock-acquisition ordering (generated by coheralint -write-lockorder).\n")
	b.WriteString("# Each line is one observed edge: the right lock is acquired while the left\n")
	b.WriteString("# is held. New edges fail the lint gate until reviewed into this file;\n")
	b.WriteString("# a cycle among these edges fails the gate unconditionally.\n")
	for _, key := range keys {
		fmt.Fprintf(&b, "%-55s # via %s\n", key, seen[key].via)
	}
	return b.String()
}

// ---- graph construction ----

// lockFuncNode is the per-function summary the interprocedural pass
// builds.
type lockFuncNode struct {
	pkg  *Package
	decl *ast.FuncDecl
	name string
	// acquires is the set of locks acquired directly in the body
	// (including function-literal arguments, which run within calls the
	// body makes — but excluding `go` bodies, which run concurrently).
	acquires map[string]bool
	// trans is acquires closed over callees.
	trans map[string]bool
	// callees are the module functions the body calls.
	callees map[*types.Func]bool
	// paramHeld is the union of lock sets held at call sites of
	// func-typed parameters: the locks a callback passed to this
	// function runs under.
	paramHeld map[string]bool
}

// lockProg indexes every function declaration of the loaded program.
type lockProg struct {
	nodes map[*types.Func]*lockFuncNode
	edges []LockEdge
	seen  map[[2]string]bool
}

// ComputeLockEdges builds the program's lock-order edge list. Exported
// for -write-lockorder and the golden test.
func ComputeLockEdges(pkgs []*Package) []LockEdge {
	prog := &lockProg{nodes: make(map[*types.Func]*lockFuncNode), seen: make(map[[2]string]bool)}
	var order []*lockFuncNode
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &lockFuncNode{
					pkg: pkg, decl: fd, name: lockFuncName(pkg, fd),
					acquires:  make(map[string]bool),
					callees:   make(map[*types.Func]bool),
					paramHeld: make(map[string]bool),
				}
				prog.nodes[obj] = n
				order = append(order, n)
			}
		}
	}
	// Phase A: per-function summaries (direct acquires, callees, locks
	// held around func-param invocations).
	for _, n := range order {
		s := &lockSim{prog: prog, node: n, summarize: true}
		s.walk(n.decl.Body)
	}
	// Transitive closure of acquires over the call graph.
	for _, n := range order {
		n.trans = make(map[string]bool, len(n.acquires))
		for l := range n.acquires {
			n.trans[l] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			for callee := range n.callees {
				cn := prog.nodes[callee]
				if cn == nil {
					continue
				}
				for l := range cn.trans {
					if !n.trans[l] {
						n.trans[l] = true
						changed = true
					}
				}
			}
		}
	}
	// Phase B: re-simulate each body, emitting edges from the held set
	// to direct acquisitions, callee closures, and callback arguments.
	for _, n := range order {
		s := &lockSim{prog: prog, node: n}
		s.walk(n.decl.Body)
	}
	return prog.edges
}

func (pr *lockProg) emit(from, to string, pos token.Pos, n *lockFuncNode) {
	key := [2]string{from, to}
	if pr.seen[key] {
		return
	}
	pr.seen[key] = true
	pr.edges = append(pr.edges, LockEdge{
		From: from, To: to, Via: n.name,
		Pos: n.pkg.Fset.Position(pos), PkgPath: n.pkg.Path,
	})
}

// lockSim walks one function body in source order, tracking the held
// set. With summarize it fills the node's summary; without, it emits
// edges using the completed summaries.
type lockSim struct {
	prog      *lockProg
	node      *lockFuncNode
	summarize bool
	held      []string
}

func (s *lockSim) holding(l string) bool {
	for _, h := range s.held {
		if h == l {
			return true
		}
	}
	return false
}

func (s *lockSim) acquire(l string, pos token.Pos) {
	if s.summarize {
		s.node.acquires[l] = true
	} else {
		for _, h := range s.held {
			s.prog.emit(h, l, pos, s.node)
		}
		if s.holding(l) {
			// Re-acquisition while held: a self-edge (self-deadlock for
			// Mutex, writer-starvation deadlock for RWMutex readers).
			s.prog.emit(l, l, pos, s.node)
		}
	}
	if !s.holding(l) {
		s.held = append(s.held, l)
	}
}

func (s *lockSim) release(l string) {
	for i, h := range s.held {
		if h == l {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

// walk descends n in source order, intercepting calls, defers, gos and
// function literals.
func (s *lockSim) walk(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch t := x.(type) {
		case *ast.CallExpr:
			s.call(t, false)
			return false
		case *ast.DeferStmt:
			s.call(t.Call, true)
			return false
		case *ast.GoStmt:
			// The goroutine runs concurrently: it does not hold the
			// spawner's locks, and its acquisitions are not the
			// spawner's. Its internal ordering is still analyzed.
			if lit, ok := t.Call.Fun.(*ast.FuncLit); ok {
				sub := &lockSim{prog: s.prog, node: s.node, summarize: s.summarize}
				if s.summarize {
					// A goroutine's acquires must not leak into the
					// spawner's summary; give it a throwaway node that
					// shares nothing but identity for edge reporting.
					sub.node = &lockFuncNode{
						pkg: s.node.pkg, decl: s.node.decl, name: s.node.name + " (goroutine)",
						acquires:  make(map[string]bool),
						callees:   make(map[*types.Func]bool),
						paramHeld: make(map[string]bool),
					}
				}
				sub.walk(lit.Body)
			}
			for _, arg := range t.Call.Args {
				s.walk(arg)
			}
			return false
		case *ast.FuncLit:
			// A literal not consumed by a call we understand (assigned,
			// returned, stored): analyze as an independent root.
			sub := &lockSim{prog: s.prog, node: s.node, summarize: s.summarize}
			sub.walk(t.Body)
			return false
		}
		return true
	})
}

// call processes one call expression: mutex operations mutate the held
// set; everything else records/emits via the callee's summary and
// hands function-literal arguments the locks they will run under.
func (s *lockSim) call(call *ast.CallExpr, deferred bool) {
	if op, lock, ok := s.mutexOp(call); ok {
		switch op {
		case "Lock", "RLock", "TryLock", "TryRLock":
			s.acquire(lock, call.Pos())
		case "Unlock", "RUnlock":
			if !deferred {
				s.release(lock)
			}
			// Deferred unlocks run at function end: the lock stays held
			// for everything that follows textually.
		}
		return
	}
	// Walk the callee expression first (x.f(y).g() — inner calls).
	s.walk(call.Fun)

	callee := s.calleeOf(call)
	if callee != nil {
		if s.summarize {
			s.node.callees[callee] = true
		} else if cn := s.prog.nodes[callee]; cn != nil && len(s.held) > 0 {
			for _, h := range s.held {
				for l := range cn.trans {
					s.prog.emit(h, l, call.Pos(), s.node)
				}
			}
		}
	} else if s.summarize {
		// Calling a func-typed parameter: remember the locks held here
		// so callback arguments at our call sites inherit them.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if v, ok := s.node.pkg.Info.Uses[id].(*types.Var); ok && isFuncParam(s.node.decl, v) {
				for _, h := range s.held {
					s.node.paramHeld[h] = true
				}
			}
		}
	}

	// Arguments: function literals run under the current held set plus
	// whatever the callee holds when invoking its callbacks; named
	// functions passed as values contribute their transitive acquires.
	var calleeHeld []string
	if !s.summarize && callee != nil {
		if cn := s.prog.nodes[callee]; cn != nil {
			for l := range cn.paramHeld {
				calleeHeld = append(calleeHeld, l)
			}
			sort.Strings(calleeHeld)
		}
	}
	for _, arg := range call.Args {
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			sub := &lockSim{prog: s.prog, node: s.node, summarize: s.summarize}
			sub.held = append(sub.held, s.held...)
			for _, l := range calleeHeld {
				if !sub.holding(l) {
					sub.held = append(sub.held, l)
				}
			}
			sub.walk(a.Body)
		default:
			if !s.summarize {
				if fn := s.funcValueOf(arg); fn != nil {
					if an := s.prog.nodes[fn]; an != nil {
						for l := range an.trans {
							for _, h := range s.held {
								s.prog.emit(h, l, arg.Pos(), s.node)
							}
							for _, h := range calleeHeld {
								s.prog.emit(h, l, arg.Pos(), s.node)
							}
						}
					}
				}
			}
			s.walk(arg)
		}
	}
}

// calleeOf resolves a call to a concrete module function (nil for
// interface methods, func values, builtins, and out-of-module calls).
func (s *lockSim) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := s.node.pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := s.node.pkg.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		} else if f, ok := s.node.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified call
		}
	}
	return nil
}

// funcValueOf resolves an argument expression naming a function (a
// func passed as a value, not called).
func (s *lockSim) funcValueOf(arg ast.Expr) *types.Func {
	switch a := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if f, ok := s.node.pkg.Info.Uses[a].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := s.node.pkg.Info.Uses[a.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// mutexOp classifies a call as a sync.Mutex/RWMutex operation and
// resolves the lock's stable identity. ok is false for non-mutex calls
// and for locks with no nameable identity (locals, anonymous structs).
func (s *lockSim) mutexOp(call *ast.CallExpr) (op, lock string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	m, isFn := s.node.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	rt := recv.Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	if !isNamedIn(rt, "sync", "Mutex") && !isNamedIn(rt, "sync", "RWMutex") {
		return "", "", false
	}
	// Embedded mutexes: the selection path's field prefix names the
	// embedded chain from the receiver expression's type.
	var embedded []string
	if selInfo, okSel := s.node.pkg.Info.Selections[sel]; okSel {
		idx := selInfo.Index()
		t := s.node.pkg.Info.TypeOf(sel.X)
		for _, i := range idx[:len(idx)-1] {
			t = derefType(t)
			st, okStruct := t.Underlying().(*types.Struct)
			if !okStruct {
				embedded = nil
				break
			}
			f := st.Field(i)
			embedded = append(embedded, f.Name())
			t = f.Type()
		}
	}
	id, okID := s.lockIdent(sel.X, embedded)
	if !okID {
		return "", "", false
	}
	return sel.Sel.Name, id, true
}

// lockIdent names the lock behind expr: "pkg.Type.field" for struct
// fields, "pkg.var" for package-level vars, "pkg.Type.method()" for
// accessor methods (unwrapped to the returned field when the accessor
// is a single `return &x.f`).
func (s *lockSim) lockIdent(expr ast.Expr, embedded []string) (string, bool) {
	info := s.node.pkg.Info
	suffix := ""
	if len(embedded) > 0 {
		suffix = "." + strings.Join(embedded, ".")
	}
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		// recv.path.mu — name by the field's owner type.
		base := derefType(info.TypeOf(x.X))
		if named, okN := base.(*types.Named); okN && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + x.Sel.Name + suffix, true
		}
		// pkgname.muVar — package-level mutex var.
		if v, okV := info.Uses[x.Sel].(*types.Var); okV && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name() + suffix, true
		}
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, okV := obj.(*types.Var); okV && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name() + suffix, true
			}
			// Local or receiver variable: nameable only when the mutex
			// is reached through an embedded chain of a named type.
			if named, okN := derefType(v.Type()).(*types.Named); okN && len(embedded) > 0 && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + suffix, true
			}
		}
	case *ast.UnaryExpr:
		return s.lockIdent(x.X, embedded)
	case *ast.CallExpr:
		// Accessor returning a mutex pointer: unwrap a single-return
		// `return &x.f` body to the underlying field, else name the
		// accessor itself.
		if f := s.calleeOf(x); f != nil {
			if id, okU := s.prog.unwrapAccessor(f, suffix); okU {
				return id, true
			}
			if recv := f.Type().(*types.Signature).Recv(); recv != nil {
				if named, okN := derefType(recv.Type()).(*types.Named); okN && named.Obj().Pkg() != nil {
					return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + f.Name() + "()" + suffix, true
				}
			}
			if f.Pkg() != nil {
				return f.Pkg().Name() + "." + f.Name() + "()" + suffix, true
			}
		}
	}
	return "", false
}

// unwrapAccessor resolves a `func (x T) mu() *sync.Mutex { return &x.a.mu }`
// accessor to the identity of the field it returns.
func (pr *lockProg) unwrapAccessor(f *types.Func, suffix string) (string, bool) {
	n := pr.nodes[f]
	if n == nil || len(n.decl.Body.List) != 1 {
		return "", false
	}
	ret, ok := n.decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return "", false
	}
	inner, ok := ast.Unparen(ret.Results[0]).(*ast.UnaryExpr)
	if !ok || inner.Op != token.AND {
		return "", false
	}
	sel, ok := ast.Unparen(inner.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base := derefType(n.pkg.Info.TypeOf(sel.X))
	if named, okN := base.(*types.Named); okN && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + sel.Sel.Name + suffix, true
	}
	return "", false
}

// lockFuncName renders "pkg.Func" / "pkg.Type.Method" for witnesses.
func lockFuncName(pkg *Package, fd *ast.FuncDecl) string {
	name := pkg.Types.Name() + "."
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name += id.Name + "."
		}
	}
	return name + fd.Name.Name
}

// isFuncParam reports whether v is a parameter of fd with a function
// type.
func isFuncParam(fd *ast.FuncDecl, v *types.Var) bool {
	if _, ok := v.Type().Underlying().(*types.Signature); !ok {
		return false
	}
	if fd.Type.Params == nil {
		return false
	}
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if name.Name == v.Name() && name.Pos() == v.Pos() {
				return true
			}
		}
	}
	return false
}

// derefType strips one pointer level.
func derefType(t types.Type) types.Type {
	if t == nil {
		return t
	}
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
