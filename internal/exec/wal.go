package exec

import (
	"bytes"
	"errors"
	"fmt"

	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
	"cohera/internal/wal"
)

// Write-ahead logging. When a wal.Log is attached, every mutating
// statement runs inside the log's commit latch: the mutation applies
// to the in-memory table, its logical record is staged, and the latch
// releases only after the records are written — so log order is apply
// order, and the log always holds exactly the mutations that applied
// (a mid-statement error leaves the applied prefix both in memory and
// in the log). The statement then waits for durability per the log's
// fsync policy before acknowledging.
//
// The classic ARIES rule logs before applying to protect half-flushed
// pages; here the engine is memory-resident, so nothing of an apply
// survives a crash except its record. Staging the record immediately
// after a successful apply (still inside the latch) keeps the log
// equal to the state, which is the invariant replay needs; the
// binding durability rule — no acknowledgement before the record is
// on disk under SyncAlways — is unchanged.

// AttachWAL attaches a write-ahead log. Call after Recover and before
// serving traffic; mutations from then on are logged and recovery
// state must already be loaded (it would otherwise be re-logged).
func (db *Database) AttachWAL(l *wal.Log) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.wlog = l
}

// WAL returns the attached log, or nil.
func (db *Database) WAL() *wal.Log {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.wlog
}

// Checkpoint writes a checkpoint of this database (plus the log's
// journal mirror) through the attached WAL and truncates the log.
// No-op without a WAL.
func (db *Database) Checkpoint() error {
	l := db.WAL()
	if l == nil {
		return nil
	}
	return l.Checkpoint(db.SaveSnapshot)
}

// mutate runs fn under the WAL commit latch, or directly when no log
// is attached (fn then receives a nil Appender, which the log helpers
// treat as "skip logging").
func (db *Database) mutate(fn func(a *wal.Appender) error) error {
	l := db.WAL()
	if l == nil {
		return fn(nil)
	}
	return l.Locked(fn)
}

// walSchema converts a table definition to its record form.
func walSchema(def *schema.Table) *wal.TableSchema {
	ts := &wal.TableSchema{Name: def.Name, Key: append([]string(nil), def.Key...)}
	for _, c := range def.Columns {
		ts.Columns = append(ts.Columns, wal.ColumnSchema{
			Name: c.Name, Kind: c.Kind.String(), NotNull: c.NotNull,
			FullText: c.FullText, Taxonomy: c.Taxonomy,
		})
	}
	return ts
}

// schemaFromWAL is the inverse of walSchema.
func schemaFromWAL(ts *wal.TableSchema) (*schema.Table, error) {
	cols := make([]schema.Column, 0, len(ts.Columns))
	for _, sc := range ts.Columns {
		k, err := value.KindFromName(sc.Kind)
		if err != nil {
			return nil, fmt.Errorf("exec: wal schema %q: %w", ts.Name, err)
		}
		cols = append(cols, schema.Column{
			Name: sc.Name, Kind: k, NotNull: sc.NotNull,
			FullText: sc.FullText, Taxonomy: sc.Taxonomy,
		})
	}
	return schema.NewTable(ts.Name, cols, ts.Key...)
}

func logCreate(a *wal.Appender, def *schema.Table) error {
	if a == nil {
		return nil
	}
	return a.Append(wal.Record{Kind: wal.KindCreate, Table: def.Name, Schema: walSchema(def)})
}

func logIndex(a *wal.Appender, table, column string, hash bool) error {
	if a == nil {
		return nil
	}
	return a.Append(wal.Record{Kind: wal.KindIndex, Table: table, Column: column, Hash: hash})
}

func logPut(a *wal.Appender, table string, row storage.Row) error {
	if a == nil {
		return nil
	}
	return a.Append(wal.Record{Kind: wal.KindPut, Table: table, Row: wal.EncodeRow(row)})
}

func logUpd(a *wal.Appender, table string, old, row storage.Row) error {
	if a == nil {
		return nil
	}
	return a.Append(wal.Record{Kind: wal.KindUpd, Table: table, Old: wal.EncodeRow(old), Row: wal.EncodeRow(row)})
}

func logDel(a *wal.Appender, table string, old storage.Row) error {
	if a == nil {
		return nil
	}
	return a.Append(wal.Record{Kind: wal.KindDel, Table: table, Row: wal.EncodeRow(old)})
}

func logTrunc(a *wal.Appender, table string) error {
	if a == nil {
		return nil
	}
	return a.Append(wal.Record{Kind: wal.KindTrunc, Table: table})
}

// CreateTableIndex declares a secondary index durably: unlike calling
// storage.Table.CreateIndex directly, the declaration is logged so a
// recovered site rebuilds the same access paths.
func (db *Database) CreateTableIndex(table, column string, hash bool) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	return db.mutate(func(a *wal.Appender) error {
		if hash {
			err = t.CreateHashIndex(column)
		} else {
			err = t.CreateIndex(column)
		}
		if err != nil {
			return err
		}
		return logIndex(a, t.Def().Name, column, hash)
	})
}

// UpsertRow durably upserts one row, creating the table from def when
// absent. This is the WAL-aware path federated row routing uses.
func (db *Database) UpsertRow(def *schema.Table, row storage.Row) error {
	t, err := db.EnsureTable(def)
	if err != nil {
		return err
	}
	return db.mutate(func(a *wal.Appender) error {
		if _, err := t.Upsert(row); err != nil {
			return err
		}
		return logPut(a, t.Def().Name, row)
	})
}

// LoadRows durably upserts a batch of rows under one commit-latch
// scope — one log write and at most one fsync for the whole batch,
// the bulk-load fast path.
func (db *Database) LoadRows(def *schema.Table, rows []storage.Row) error {
	t, err := db.EnsureTable(def)
	if err != nil {
		return err
	}
	name := t.Def().Name
	return db.mutate(func(a *wal.Appender) error {
		for _, r := range rows {
			if _, err := t.Upsert(r); err != nil {
				return err
			}
			if err := logPut(a, name, r); err != nil {
				return err
			}
		}
		return nil
	})
}

// RestoreRows durably replaces table content for copy-repair: either
// truncate the whole table or delete the listed row ids, then upsert
// the replacement rows — all under one commit-latch scope.
func (db *Database) RestoreRows(def *schema.Table, truncate bool, doomed []int64, rows []storage.Row) error {
	t, err := db.EnsureTable(def)
	if err != nil {
		return err
	}
	name := t.Def().Name
	return db.mutate(func(a *wal.Appender) error {
		if truncate {
			t.Truncate()
			if err := logTrunc(a, name); err != nil {
				return err
			}
		} else {
			for _, id := range doomed {
				old, err := t.Get(id)
				if err != nil {
					continue // already gone
				}
				if err := t.Delete(id); err != nil {
					continue
				}
				if err := logDel(a, name, old); err != nil {
					return err
				}
			}
		}
		for _, r := range rows {
			if _, err := t.Upsert(r); err != nil {
				return err
			}
			if err := logPut(a, name, r); err != nil {
				return err
			}
		}
		return nil
	})
}

// RecoveryStats summarizes what Recover rebuilt.
type RecoveryStats struct {
	// Checkpoint reports a checkpoint snapshot was restored.
	Checkpoint bool
	// CheckpointLSN is the snapshot's covering LSN.
	CheckpointLSN uint64
	// Replayed is the number of WAL records applied on top.
	Replayed int
	// Tables is the table count after recovery.
	Tables int
}

// Recover rebuilds this (empty) database from what wal.Open found:
// snapshot first, then replay of every record past the checkpoint
// LSN, in log order. Must run before AttachWAL — replayed mutations
// are not re-logged. Row-content records re-enter through the normal
// insert path, so secondary indexes and the order-independent content
// digest are re-seeded as a side effect.
func (db *Database) Recover(rec *wal.Recovered) (RecoveryStats, error) {
	var st RecoveryStats
	if db.WAL() != nil {
		return st, errors.New("exec: Recover must run before AttachWAL")
	}
	if rec == nil {
		return st, nil
	}
	if rec.State != nil {
		if err := db.LoadSnapshot(bytes.NewReader(rec.State)); err != nil {
			return st, err
		}
		st.Checkpoint = true
		st.CheckpointLSN = rec.CheckpointLSN
	}
	for _, r := range rec.Records {
		if err := db.applyRecord(r); err != nil {
			return st, fmt.Errorf("exec: wal replay lsn %d (%s %s): %w", r.LSN, r.Kind, r.Table, err)
		}
		st.Replayed++
	}
	st.Tables = len(db.TableNames())
	return st, nil
}

// applyRecord replays one table-op record.
func (db *Database) applyRecord(r wal.Record) error {
	switch r.Kind {
	case wal.KindCreate:
		def, err := schemaFromWAL(r.Schema)
		if err != nil {
			return err
		}
		_, err = db.CreateTable(def)
		return err
	case wal.KindJFrame, wal.KindJReset:
		return nil // journal records are rehydrated by the journal, not the engine
	}
	t, err := db.Table(r.Table)
	if err != nil {
		return err
	}
	switch r.Kind {
	case wal.KindIndex:
		if r.Hash {
			return t.CreateHashIndex(r.Column)
		}
		return t.CreateIndex(r.Column)
	case wal.KindPut:
		row, err := wal.DecodeRow(r.Row)
		if err != nil {
			return err
		}
		_, err = t.Upsert(row)
		return err
	case wal.KindUpd:
		old, err := wal.DecodeRow(r.Old)
		if err != nil {
			return err
		}
		row, err := wal.DecodeRow(r.Row)
		if err != nil {
			return err
		}
		return replayUpdate(t, old, row)
	case wal.KindDel:
		old, err := wal.DecodeRow(r.Row)
		if err != nil {
			return err
		}
		id, err := resolveRow(t, old)
		if err != nil {
			return err
		}
		return t.Delete(id)
	case wal.KindTrunc:
		t.Truncate()
		return nil
	}
	return fmt.Errorf("exec: unknown wal record kind %q", r.Kind)
}

// replayUpdate applies an upd record: replace the row matching the
// old image with the new one.
func replayUpdate(t *storage.Table, old, row storage.Row) error {
	id, err := resolveRow(t, old)
	if err != nil {
		return err
	}
	return t.Update(id, row)
}

// resolveRow finds the stored id of a row by primary key when the
// table has one, else by whole-row equality — row ids are not stable
// across restarts, so records carry content, not ids.
func resolveRow(t *storage.Table, row storage.Row) (int64, error) {
	def := t.Def()
	if len(def.Key) > 0 {
		keyVals := make([]value.Value, 0, len(def.Key))
		for _, ki := range def.KeyIndexes() {
			if ki >= len(row) {
				return 0, fmt.Errorf("exec: wal row shorter than key")
			}
			keyVals = append(keyVals, row[ki])
		}
		id, _, err := t.GetByKey(keyVals...)
		return id, err
	}
	found := int64(-1)
	t.Scan(func(id int64, r storage.Row) bool {
		if rowsEqual(r, row) {
			found = id
			return false
		}
		return true
	})
	if found < 0 {
		return 0, fmt.Errorf("%w: no row matching wal image", storage.ErrNoRow)
	}
	return found, nil
}

// rowsEqual compares rows by stable value encoding.
func rowsEqual(a, b storage.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if value.Key(a[i]) != value.Key(b[i]) {
			return false
		}
	}
	return true
}
