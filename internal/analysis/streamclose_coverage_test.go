package analysis

import (
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStreamCloseFixtureCoversDecorators pins a maintenance contract:
// every exported concrete RowStream implementation in the engine's
// stream packages must appear in the streamclose fixture, both as a
// leak positive and as a closed/escaping negative. A new stream
// decorator (like the fused σ/π/limit stream) that never gets fixture
// cases could regress out of the analyzer's reach without any test
// noticing; this test makes the omission loud.
func TestStreamCloseFixtureCoversDecorators(t *testing.T) {
	l, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	fixtureSrc, err := os.ReadFile(filepath.Join("testdata", "src", "streamclose", "streamclose.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"internal/storage", "internal/plan", "internal/admission"} {
		pkg, err := l.LoadDir(filepath.Join(moduleRoot, dir))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		iface := rowStreamIface(pkg.Types)
		if iface == nil {
			t.Fatalf("%s: storage.RowStream not reachable", dir)
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			obj, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || !obj.Exported() || obj.IsAlias() {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			if !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			if !strings.Contains(string(fixtureSrc), name) {
				t.Errorf("%s.%s implements storage.RowStream but has no case in the streamclose fixture", dir, name)
			}
		}
	}
}
