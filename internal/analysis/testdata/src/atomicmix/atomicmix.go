// Package atomicmix is the golden fixture for the atomicmix analyzer:
// fields mixing sync/atomic with plain access, unconditional channel
// sends, and the blessed idioms (typed atomics, guarded selects,
// function-owned channels).
package atomicmix

import (
	"context"
	"sync/atomic"
)

type counter struct {
	hits  int64
	plain int64
	typed atomic.Int64
}

// inc is the atomic half of the mix; the operand itself is not a
// plain access.
func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
}

// read mixes a plain load into the atomic field.
func (c *counter) read() int64 {
	return c.hits // want `field "hits" is accessed with sync/atomic elsewhere; this plain access races with the atomic path (use a typed atomic or go all-plain under a lock)`
}

// reset mixes a plain store into the atomic field.
func (c *counter) reset() {
	c.hits = 0 // want `field "hits" is accessed with sync/atomic elsewhere; this plain access races with the atomic path (use a typed atomic or go all-plain under a lock)`
}

// plainOnly and typedOnly are fine: no mix in either direction.
func (c *counter) plainOnly() int64 {
	c.plain++
	return c.plain
}

func (c *counter) typedOnly() int64 {
	c.typed.Add(1)
	return c.typed.Load()
}

// pushUnguarded blocks forever if the consumer is gone.
func pushUnguarded(ch chan int, v int) {
	ch <- v // want `unconditional send on ch can block forever if the receiver is gone; select on it with a ctx.Done()/stop case`
}

// pushSelectNoGuard: a select whose only case is the send guards
// nothing — it blocks exactly like a bare send.
func pushSelectNoGuard(ch chan int, v int) {
	select {
	case ch <- v: // want `unconditional send on ch can block forever if the receiver is gone; select on it with a ctx.Done()/stop case`
	}
}

// pushCancellable: the ctx.Done() case makes the send abandonable.
func pushCancellable(ctx context.Context, ch chan int, v int) bool {
	select {
	case ch <- v:
		return true
	case <-ctx.Done():
		return false
	}
}

// pushBestEffort: a default case never blocks.
func pushBestEffort(ch chan int, v int) {
	select {
	case ch <- v:
	default:
	}
}

// pushStopGuarded: a stop-channel case is as good as a context.
func pushStopGuarded(ch chan int, stop chan struct{}, v int) {
	select {
	case ch <- v:
	case <-stop:
	}
}

// gatherLocal owns both ends of its channel: the sends pair with the
// receive below and cannot strand.
func gatherLocal(vals []int) int {
	ch := make(chan int, len(vals))
	for _, v := range vals {
		ch <- v
	}
	close(ch)
	sum := 0
	for v := range ch {
		sum += v
	}
	return sum
}

// ignoredSend is acknowledged: the receiver is guaranteed by protocol.
func ignoredSend(ch chan int) {
	//lint:ignore atomicmix fixture: receiver guaranteed live
	ch <- 1
}

var (
	_ = (*counter).inc
	_ = (*counter).read
	_ = (*counter).reset
	_ = (*counter).plainOnly
	_ = (*counter).typedOnly
	_ = pushUnguarded
	_ = pushSelectNoGuard
	_ = pushCancellable
	_ = pushBestEffort
	_ = pushStopGuarded
	_ = gatherLocal
	_ = ignoredSend
)
