package analysis

import (
	"go/ast"
	"go/types"
)

// BodyClose flags *http.Response values whose Body is never closed in
// the function that obtained them. An unclosed body pins the underlying
// connection, so a scraping wrapper that forgets one leaks a socket per
// page. A response that is returned to the caller escapes the check —
// closing becomes the caller's contract.
var BodyClose = &Analyzer{
	Name: "bodyclose",
	Doc:  "http response bodies without a Close on all paths",
	Run:  runBodyClose,
}

func runBodyClose(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBodyClose(p, fn.Body)
		}
	}
}

func checkBodyClose(p *Pass, body *ast.BlockStmt) {
	type respVar struct {
		ident *ast.Ident
		obj   types.Object
	}
	var resps []respVar
	closed := make(map[types.Object]bool)
	escaped := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.Pkg.Info.Defs[id]
				if obj == nil {
					obj = p.Pkg.Info.Uses[id]
				}
				if obj == nil || !isHTTPResponse(obj.Type()) {
					continue
				}
				resps = append(resps, respVar{ident: id, obj: obj})
			}
		case *ast.CallExpr:
			// resp.Body.Close(): unwrap the two-level selector chain.
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Close" {
				return true
			}
			inner, ok := sel.X.(*ast.SelectorExpr)
			if !ok || inner.Sel.Name != "Body" {
				return true
			}
			if id, ok := inner.X.(*ast.Ident); ok {
				if obj := p.Pkg.Info.Uses[id]; obj != nil {
					closed[obj] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := p.Pkg.Info.Uses[id]; obj != nil && isHTTPResponse(obj.Type()) {
							escaped[obj] = true
						}
					}
					return true
				})
			}
		}
		return true
	})
	seen := make(map[types.Object]bool)
	for _, rv := range resps {
		if seen[rv.obj] || closed[rv.obj] || escaped[rv.obj] {
			continue
		}
		seen[rv.obj] = true
		p.Reportf(rv.ident.Pos(), "response body %s.Body is never closed", rv.ident.Name)
	}
}

// isHTTPResponse reports whether t is *net/http.Response.
func isHTTPResponse(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamedIn(ptr.Elem(), "net/http", "Response")
}
