package wal

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cohera/internal/value"
)

func openT(t *testing.T, dir string, opts Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func appendPut(t *testing.T, l *Log, table string, vals ...value.Value) {
	t.Helper()
	err := l.Locked(func(a *Appender) error {
		return a.Append(Record{Kind: KindPut, Table: table, Row: EncodeRow(vals)})
	})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, Options{Policy: SyncAlways})
	if rec.HasData() {
		t.Fatalf("fresh dir reported data: %+v", rec)
	}
	appendPut(t, l, "parts", value.NewString("a"), value.NewInt(1))
	appendPut(t, l, "parts", value.NewString("b"), value.NewInt(2))
	if got := l.LSN(); got != 2 {
		t.Fatalf("LSN = %d, want 2", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openT(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != 2 || rec2.TornBytes != 0 {
		t.Fatalf("recovered %d records, %d torn", len(rec2.Records), rec2.TornBytes)
	}
	if rec2.Records[0].LSN != 1 || rec2.Records[1].LSN != 2 {
		t.Fatalf("LSNs = %d,%d", rec2.Records[0].LSN, rec2.Records[1].LSN)
	}
	row, err := DecodeRow(rec2.Records[1].Row)
	if err != nil || len(row) != 2 || row[0].Str() != "b" {
		t.Fatalf("decoded row %v err %v", row, err)
	}
	// LSNs continue past what was recovered.
	appendPut(t, l2, "parts", value.NewString("c"))
	if got := l2.LSN(); got != 3 {
		t.Fatalf("LSN after reopen-append = %d, want 3", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncAlways})
	appendPut(t, l, "parts", value.NewString("a"))
	appendPut(t, l, "parts", value.NewString("b"))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, logFileName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-record: drop the last 3 bytes.
	if err := os.WriteFile(path, buf[:len(buf)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 1 || rec.Records[0].LSN != 1 {
		t.Fatalf("recovered %d records", len(rec.Records))
	}
	if rec.TornBytes == 0 {
		t.Fatalf("expected torn bytes")
	}
	// The file itself was truncated back to the intact prefix.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, good, torn := ScanRecords(after); torn != 0 || good != len(after) {
		t.Fatalf("file still torn after recovery: good=%d torn=%d", good, torn)
	}
}

func TestBitFlipTruncatesFromDamage(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncAlways})
	appendPut(t, l, "parts", value.NewString("a"))
	appendPut(t, l, "parts", value.NewString("b"))
	appendPut(t, l, "parts", value.NewString("c"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logFileName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload.
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	// Never applies past the damage: only the intact prefix survives.
	if len(rec.Records) >= 3 {
		t.Fatalf("replayed %d records past a corrupt frame", len(rec.Records))
	}
	for _, r := range rec.Records {
		if r.LSN >= 2 && r.Kind == KindPut && len(r.Row) > 0 {
			if v, _ := DecodeVal(r.Row[0]); v.Str() == "c" {
				t.Fatalf("record after the damaged one was replayed")
			}
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncAlways})
	appendPut(t, l, "parts", value.NewString("a"))
	appendPut(t, l, "parts", value.NewString("b"))
	state := []byte(`{"version":1,"tables":[]}`)
	if err := l.Checkpoint(writeState(state)); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if l.Size() != 0 {
		t.Fatalf("log not truncated after checkpoint: %d bytes", l.Size())
	}
	// Records after the checkpoint replay on top of the restored state.
	appendPut(t, l, "parts", value.NewString("c"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if !rec.HasCheckpoint || rec.CheckpointLSN != 2 {
		t.Fatalf("checkpoint lsn = %d (has=%v), want 2", rec.CheckpointLSN, rec.HasCheckpoint)
	}
	if !bytes.Equal(rec.State, state) {
		t.Fatalf("state = %s", rec.State)
	}
	if len(rec.Records) != 1 || rec.Records[0].LSN != 3 {
		t.Fatalf("post-checkpoint records: %+v", rec.Records)
	}
}

func TestRecordsAtOrBelowCheckpointLSNSkipped(t *testing.T) {
	// Simulate a crash between checkpoint rename and log truncation:
	// the full log survives next to a checkpoint covering part of it.
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncAlways})
	appendPut(t, l, "parts", value.NewString("a"))
	appendPut(t, l, "parts", value.NewString("b"))
	logBytes, err := os.ReadFile(filepath.Join(dir, logFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(writeState([]byte(`{"v":1}`))); err != nil {
		t.Fatal(err)
	}
	appendPut(t, l, "parts", value.NewString("c"))
	tail, err := os.ReadFile(filepath.Join(dir, logFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reconstruct the pre-truncation file: records 1,2 then 3.
	if err := os.WriteFile(filepath.Join(dir, logFileName), append(append([]byte(nil), logBytes...), tail...), 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 1 || rec.Records[0].LSN != 3 {
		t.Fatalf("want only LSN 3 replayed, got %+v", rec.Records)
	}
}

func writeState(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

func TestJournalMirrorRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncAlways})
	if err := l.AppendJournalFrame("west-2", "parts", "f1", []byte("frame-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendJournalFrame("west-2", "parts", "f1", []byte("frame-2")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendJournalFrame("west-2", "orders", "g", []byte("other")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, Options{})
	if len(rec.Journal) != 2 {
		t.Fatalf("journal frags = %+v", rec.Journal)
	}
	var parts *JournalFrag
	for i := range rec.Journal {
		if rec.Journal[i].Table == "parts" {
			parts = &rec.Journal[i]
		}
	}
	if parts == nil || !bytes.Equal(parts.Bytes, []byte("frame-1frame-2")) {
		t.Fatalf("parts frag = %+v", parts)
	}
	// A reset clears the group; checkpoint persists the cleared state.
	if err := l2.JournalReset("west-2", "parts"); err != nil {
		t.Fatal(err)
	}
	if err := l2.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, rec3 := openT(t, dir, Options{})
	defer l3.Close()
	if len(rec3.Journal) != 1 || rec3.Journal[0].Table != "orders" {
		t.Fatalf("after reset: %+v", rec3.Journal)
	}
	if rec3.State != nil {
		t.Fatalf("journal-only checkpoint carried state: %s", rec3.State)
	}
}

func TestBatchPolicyFlusherStops(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncBatch, BatchInterval: time.Millisecond})
	appendPut(t, l, "parts", value.NewString("a"))
	// Close must join the flusher and still persist everything.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 1 {
		t.Fatalf("records = %d", len(rec.Records))
	}
}

func TestStaleCheckpointTempRemoved(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, checkpointFileName+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := openT(t, dir, Options{})
	defer l.Close()
	if rec.HasCheckpoint {
		t.Fatal("temp file must not count as a checkpoint")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived: %v", err)
	}
}

func TestCorruptCheckpointRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointFileName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt checkpoint must fail Open")
	}
}
