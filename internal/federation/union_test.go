package federation

import (
	"context"
	"testing"
)

func TestFederatedUnion(t *testing.T) {
	fed, _, _ := twoFragFed(t)
	ctx := context.Background()
	// UNION ALL keeps the duplicate across branches.
	res, err := fed.Query(ctx, `SELECT sku FROM parts WHERE region = 'east'
		UNION ALL SELECT sku FROM parts WHERE region = 'east'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("UNION ALL rows = %d, want 4", len(res.Rows))
	}
	// Plain UNION deduplicates across branches.
	res, err = fed.Query(ctx, `SELECT sku FROM parts WHERE region = 'east'
		UNION SELECT sku FROM parts`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // E1,E2 dedup + W1,W2
		t.Errorf("UNION rows = %d, want 4", len(res.Rows))
	}
	// Traces accumulate across branches, including pruning.
	_, trace, err := fed.QueryTraced(ctx, `SELECT sku FROM parts WHERE region = 'east'
		UNION ALL SELECT sku FROM parts WHERE region = 'west'`)
	if err != nil {
		t.Fatal(err)
	}
	if trace.PrunedFragments != 2 { // each branch prunes the other region
		t.Errorf("pruned = %d, want 2", trace.PrunedFragments)
	}
	// Arity mismatch surfaces.
	if _, err := fed.Query(ctx, "SELECT sku FROM parts UNION ALL SELECT sku, name FROM parts"); err == nil {
		t.Error("arity mismatch should fail")
	}
}
