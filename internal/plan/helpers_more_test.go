package plan

import (
	"testing"
	"time"
)

// mustTime returns the fixed timestamp used by cross-kind compare tests.
func mustTime(t *testing.T) time.Time {
	t.Helper()
	ts, err := time.Parse("2006-01-02", "2001-05-21")
	if err != nil {
		t.Fatal(err)
	}
	return ts.UTC()
}
