package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// retrySeq perturbs the jitter stream of concurrent unseeded Runs.
var retrySeq atomic.Int64

// Retry is a capped-exponential-backoff policy with full jitter
// [AWS architecture blog: "Exponential Backoff And Jitter"]: before
// attempt n the caller sleeps a uniform random duration in
// [0, min(MaxDelay, BaseDelay·2ⁿ)]. Full jitter decorrelates the herd
// of clients a recovering site would otherwise see stampede back in
// lockstep. The zero value is usable; unset knobs use the defaults
// documented per field.
//
// Retry is a value type: configure it once and copy it freely. Run is
// safe for concurrent use.
type Retry struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3). Values below 1 mean the default.
	MaxAttempts int
	// BaseDelay is the backoff unit before the first retry (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 1s).
	MaxDelay time.Duration
	// PerAttempt, when positive, bounds each individual attempt with a
	// context deadline — a hung attempt is abandoned and retried rather
	// than consuming the caller's whole budget.
	PerAttempt time.Duration
	// Seed, when non-zero, makes the jitter stream deterministic for a
	// given Run invocation order (chaos harness and tests).
	Seed int64
	// OnRetry, when set, observes each retry decision: the attempt that
	// just failed (1-based), its error, and the backoff chosen.
	OnRetry func(attempt int, err error, delay time.Duration)
}

func (r Retry) attempts() int {
	if r.MaxAttempts > 0 {
		return r.MaxAttempts
	}
	return 3
}

func (r Retry) baseDelay() time.Duration {
	if r.BaseDelay > 0 {
		return r.BaseDelay
	}
	return 10 * time.Millisecond
}

func (r Retry) maxDelay() time.Duration {
	if r.MaxDelay > 0 {
		return r.MaxDelay
	}
	return time.Second
}

// backoff returns the full-jitter delay before retry number n (0-based).
func (r Retry) backoff(rng *rand.Rand, n int) time.Duration {
	ceiling := r.maxDelay()
	base := r.baseDelay()
	// base << n with overflow protection.
	if shifted := base << uint(min(n, 40)); shifted > 0 && shifted < ceiling {
		ceiling = shifted
	}
	if ceiling <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(ceiling) + 1))
}

// Run invokes op until it succeeds, the policy's attempts are
// exhausted, the caller's context ends, or retryable reports an error
// as permanent. A nil retryable treats every error as retryable.
// PerAttempt, when set, wraps each attempt in its own deadline; the
// attempt's context error is what retryable sees. The returned error
// wraps the last attempt's error, so errors.Is/As see through it.
func (r Retry) Run(ctx context.Context, op func(ctx context.Context) error, retryable func(error) bool) error {
	seed := r.Seed
	if seed == 0 {
		seed = time.Now().UnixNano() ^ (retrySeq.Add(1) * 0x5851F42D4C957F2D)
	}
	rng := rand.New(rand.NewSource(seed))
	attempts := r.attempts()
	tried := 0
	var lastErr error
	for i := 0; i < attempts; i++ {
		tried++
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if r.PerAttempt > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, r.PerAttempt)
		}
		err := op(attemptCtx)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The caller's context ended: the error is not transient
			// from our point of view, and sleeping would be pointless.
			break
		}
		if retryable != nil && !retryable(err) {
			return err
		}
		if i == attempts-1 {
			break
		}
		delay := r.backoff(rng, i)
		if r.OnRetry != nil {
			r.OnRetry(i+1, err, delay)
		}
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("resilience: retry interrupted: %w", errors.Join(ctx.Err(), lastErr))
			}
		}
	}
	if ctx.Err() != nil && !errors.Is(lastErr, ctx.Err()) {
		return fmt.Errorf("resilience: retry interrupted: %w", errors.Join(ctx.Err(), lastErr))
	}
	return fmt.Errorf("resilience: %d attempts failed: %w", tried, lastErr)
}
