package federation

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"cohera/internal/exec"
	"cohera/internal/obs"
	"cohera/internal/plan"
	"cohera/internal/schema"
	"cohera/internal/sqlparse"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// metDML returns the per-kind DML statement counter.
func metDML(kind string) *obs.Counter {
	return obs.Default().Counter("cohera_federation_dml_total",
		"Federated DML statements executed, by kind.", obs.Labels{"kind": kind})
}

var metDMLRows = obs.Default().Counter("cohera_federation_dml_rows_total",
	"Rows affected by federated DML (per fragment, not per replica).", nil)

// This file implements federated DML. The paper's integrator is
// read-mostly, but operational content changes (orders, availability
// updates) flow back through the same global schema:
//
//   - INSERT routes each row to the fragment whose predicate accepts it
//     (the first fragment when none match) and writes every replica, so
//     replicas stay in sync;
//   - UPDATE and DELETE broadcast to all fragments that are not provably
//     disjoint with the statement's predicate; every replica executes the
//     statement so copies converge.
//
// Writes are best-effort across replicas: a down replica is skipped and
// reported in the DMLResult so an operator (or anti-entropy job) can
// reconcile — the paper's availability stance favours serving content
// over blocking on a failed copy.

// DMLResult reports a federated write.
type DMLResult struct {
	// Rows is the affected-row count (per fragment, not multiplied by
	// replication factor). When one site hosts several fragments of the
	// same table, its local count cannot be split per fragment and the
	// total may over-report; dedicated-site layouts report exactly.
	Rows int
	// SkippedReplicas lists "fragment@site" copies that were down and
	// missed the write.
	SkippedReplicas []string
}

// Exec runs a DML or SELECT statement against the federation. SELECTs
// behave like Query; INSERT/UPDATE/DELETE are routed as described above.
func (f *Federation) Exec(ctx context.Context, sql string) (*exec.Result, *DMLResult, error) {
	res, dr, _, err := f.ExecTraced(ctx, sql)
	return res, dr, err
}

// ExecTraced is Exec returning the routing trace. For DML the trace
// records, per fragment, the comma-joined replicas actually written
// (FragmentSites), down replicas encountered (Failovers) and fragments
// skipped as provably disjoint from the statement predicate
// (PrunedFragments) — the same visibility QueryTraced gives selects.
func (f *Federation) ExecTraced(ctx context.Context, sql string) (*exec.Result, *DMLResult, *QueryTrace, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, nil, err
	}
	switch s := stmt.(type) {
	case sqlparse.SelectStmt, sqlparse.UnionStmt:
		res, trace, err := f.QueryTraced(ctx, sql)
		return res, nil, trace, err
	case sqlparse.InsertStmt:
		dr, trace, err := f.tracedDML(ctx, "insert", s.Table, func(ctx context.Context, trace *QueryTrace) (*DMLResult, error) {
			return f.execInsert(ctx, s, trace)
		})
		return nil, dr, trace, err
	case sqlparse.UpdateStmt:
		dr, trace, err := f.tracedDML(ctx, "update", s.Table, func(ctx context.Context, trace *QueryTrace) (*DMLResult, error) {
			return f.execWhereDML(ctx, s.Table, s.Where, s.String(), trace)
		})
		return nil, dr, trace, err
	case sqlparse.DeleteStmt:
		dr, trace, err := f.tracedDML(ctx, "delete", s.Table, func(ctx context.Context, trace *QueryTrace) (*DMLResult, error) {
			return f.execWhereDML(ctx, s.Table, s.Where, s.String(), trace)
		})
		return nil, dr, trace, err
	default:
		return nil, nil, nil, fmt.Errorf("federation: unsupported statement %T", stmt)
	}
}

// tracedDML wraps one DML execution in a span and a fresh trace.
func (f *Federation) tracedDML(ctx context.Context, kind, table string,
	run func(context.Context, *QueryTrace) (*DMLResult, error)) (*DMLResult, *QueryTrace, error) {
	ctx, sp := obs.StartSpan(ctx, "federation."+kind)
	sp.Set("table", table)
	defer sp.End()
	trace := &QueryTrace{TraceID: sp.TraceID, FragmentSites: make(map[string]string)}
	dr, err := run(ctx, trace)
	metDML(kind).Inc()
	if dr != nil {
		metDMLRows.Add(int64(dr.Rows))
	}
	sp.SetErr(err)
	return dr, trace, err
}

// noteDMLSite appends a written replica to the fragment's site list.
func noteDMLSite(trace *QueryTrace, key, site string) {
	if trace == nil {
		return
	}
	cur := trace.FragmentSites[key]
	for _, s := range strings.Split(cur, ",") {
		if s == site {
			return
		}
	}
	if cur == "" {
		trace.FragmentSites[key] = site
	} else {
		trace.FragmentSites[key] = cur + "," + site
	}
}

// execInsert routes INSERT rows to fragments by predicate.
func (f *Federation) execInsert(ctx context.Context, s sqlparse.InsertStmt, trace *QueryTrace) (*DMLResult, error) {
	gt, err := f.Table(s.Table)
	if err != nil {
		return nil, err
	}
	def := gt.Def
	cols := s.Columns
	if len(cols) == 0 {
		cols = def.ColumnNames()
	}
	ev := &plan.Evaluator{}
	emptyEnv := plan.NewRowEnv(nil, nil)
	dr := &DMLResult{}
	for _, exprRow := range s.Rows {
		if err := ctx.Err(); err != nil {
			return dr, err
		}
		if len(exprRow) != len(cols) {
			return dr, fmt.Errorf("federation: INSERT arity mismatch")
		}
		row := make(storage.Row, len(def.Columns))
		for i := range row {
			row[i] = value.Null
		}
		for i, cn := range cols {
			ci := def.ColumnIndex(cn)
			if ci < 0 {
				return dr, fmt.Errorf("federation: table %q has no column %q", def.Name, cn)
			}
			v, err := ev.Eval(exprRow[i], emptyEnv)
			if err != nil {
				return dr, err
			}
			if !v.IsNull() && v.Kind() != def.Columns[ci].Kind {
				if cv, err := value.Coerce(v, def.Columns[ci].Kind); err == nil {
					v = cv
				}
			}
			row[ci] = v
		}
		if err := def.Validate(row); err != nil {
			return dr, err
		}
		frag, err := routeRow(f.FragmentsOf(gt), def, row, ev)
		if err != nil {
			return dr, err
		}
		wrote := false
		var lastUnavail error
		for _, site := range frag.Replicas() {
			if aerr := site.CheckAvailable(ctx); aerr != nil {
				if ctx.Err() != nil {
					return dr, ctx.Err()
				}
				lastUnavail = aerr
				dr.SkippedReplicas = append(dr.SkippedReplicas, frag.ID+"@"+site.Name())
				if trace != nil {
					trace.Failovers++
				}
				continue
			}
			tbl, err := siteTable(site, def)
			if err != nil {
				return dr, err
			}
			if _, err := tbl.Upsert(row); err != nil {
				return dr, fmt.Errorf("federation: insert at %s: %w", site.Name(), err)
			}
			site.Breaker().RecordSuccess()
			noteDMLSite(trace, def.Name+"/"+frag.ID, site.Name())
			wrote = true
		}
		if !wrote {
			if lastUnavail != nil {
				return dr, fmt.Errorf("%w: fragment %s of %s: %w", ErrNoReplica, frag.ID, def.Name, lastUnavail)
			}
			return dr, fmt.Errorf("%w: fragment %s of %s", ErrNoReplica, frag.ID, def.Name)
		}
		dr.Rows++
	}
	return dr, nil
}

// routeRow picks the fragment whose predicate accepts the row; the first
// fragment is the default home for rows no predicate claims.
func routeRow(fragments []*Fragment, def *schema.Table, row storage.Row, ev *plan.Evaluator) (*Fragment, error) {
	env := plan.NewRowEnv(def.ColumnNames(), row)
	for _, frag := range fragments {
		if frag.Predicate == nil {
			continue
		}
		v, err := ev.Eval(frag.Predicate, env)
		if err != nil {
			return nil, fmt.Errorf("federation: fragment %s predicate: %w", frag.ID, err)
		}
		if v.Truthy() {
			return frag, nil
		}
	}
	return fragments[0], nil
}

// execWhereDML broadcasts an UPDATE/DELETE to every non-disjoint
// fragment's replicas.
func (f *Federation) execWhereDML(ctx context.Context, table string, where sqlparse.Expr, sql string, trace *QueryTrace) (*DMLResult, error) {
	gt, err := f.Table(table)
	if err != nil {
		return nil, err
	}
	push := unqualify(where)
	dr := &DMLResult{}
	// A site stores one local table per global name even when it hosts
	// several fragments of it, so each site executes the statement at
	// most once — re-running a non-idempotent SET (qty = qty - 1) would
	// corrupt the shared table.
	visited := make(map[*Site]int) // site → rows it reported
	for _, frag := range f.FragmentsOf(gt) {
		if err := ctx.Err(); err != nil {
			return dr, err
		}
		if frag.Predicate != nil && push != nil && disjoint(frag.Predicate, push) {
			if trace != nil {
				trace.PrunedFragments++
			}
			continue
		}
		fragRows := -1
		applied := 0
		var lastUnavail error
		for _, site := range frag.Replicas() {
			if aerr := site.CheckAvailable(ctx); aerr != nil {
				if ctx.Err() != nil {
					return dr, ctx.Err()
				}
				lastUnavail = aerr
				dr.SkippedReplicas = append(dr.SkippedReplicas, frag.ID+"@"+site.Name())
				if trace != nil {
					trace.Failovers++
				}
				continue
			}
			n, seen := visited[site]
			if !seen {
				res, err := site.DB().Exec(sql)
				if err != nil {
					if errors.Is(err, schema.ErrNoTable) {
						// The replica never materialized this table: a live
						// no-op, which still counts as an applied write (the
						// fragment's rows cannot exist there).
						applied++
						continue
					}
					return dr, fmt.Errorf("federation: dml at %s: %w", site.Name(), err)
				}
				n = int(res.Rows[0][0].Int())
				visited[site] = n
				site.Breaker().RecordSuccess()
			}
			applied++
			noteDMLSite(trace, gt.Def.Name+"/"+frag.ID, site.Name())
			if fragRows == -1 {
				fragRows = n
			} else if fragRows != n {
				// Replicas disagree — report the divergence loudly.
				dr.SkippedReplicas = append(dr.SkippedReplicas,
					fmt.Sprintf("%s@%s(diverged:%d!=%d)", frag.ID, site.Name(), n, fragRows))
			}
		}
		// A targeted fragment whose every replica was unavailable means
		// the write was lost, not merely degraded: say so with a typed
		// error instead of silently succeeding (the old behaviour).
		if applied == 0 && len(frag.Replicas()) > 0 {
			if lastUnavail != nil {
				return dr, fmt.Errorf("%w: fragment %s of %s: write not applied: %w",
					ErrNoReplica, frag.ID, gt.Def.Name, lastUnavail)
			}
			return dr, fmt.Errorf("%w: fragment %s of %s: write not applied", ErrNoReplica, frag.ID, gt.Def.Name)
		}
		if fragRows > 0 {
			dr.Rows += fragRows
		}
	}
	return dr, nil
}

// siteTable fetches (or lazily creates) the site's local table for a
// global schema.
func siteTable(site *Site, def *schema.Table) (*storage.Table, error) {
	if t, err := site.DB().Table(def.Name); err == nil {
		return t, nil
	}
	return site.DB().CreateTable(def.Clone(def.Name))
}
