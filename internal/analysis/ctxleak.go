package analysis

import (
	"go/ast"
	"go/types"
)

// CtxLeak flags context.Background() and context.TODO() created inside
// library code. Federation, wrapper and remote call paths all receive a
// caller context; minting a fresh root silently detaches the work from
// the caller's deadline and cancellation — the bug class that turns one
// slow site into a leaked goroutine. Long-lived daemons should accept a
// context at start instead of fabricating one per iteration.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "context.Background/TODO created inside library call paths",
	Run:  runCtxLeak,
}

func runCtxLeak(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
				return true
			}
			if !isPackageIdent(p, sel.X, "context") {
				return true
			}
			p.Reportf(call.Pos(), "context.%s() created in library code; thread the caller's context instead", sel.Sel.Name)
			return true
		})
	}
}

// isPackageIdent reports whether e is an identifier naming the import of
// the given package path.
func isPackageIdent(p *Pass, e ast.Expr, pkgPath string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}
