package bench

import (
	"context"
	"fmt"
	"math/rand"

	"cohera/internal/federation"
	"cohera/internal/storage"
	"cohera/internal/value"
	"cohera/internal/warehouse"
	"cohera/internal/workload"
	"cohera/internal/wrapper"
)

// E1Staleness reproduces the paper's central architectural claim
// (Characteristic 5): warehousing — fetch in advance with periodic
// refresh — "fundamentally breaks when live information is required",
// while a federated fetch-on-demand query is always current.
//
// Setup: hotel availability across many reservation systems. Between
// consecutive queries the sources absorb a configurable number of
// updates (the volatility knob). The warehouse refreshes every R
// queries. Metric: the fraction of availability answers that disagree
// with the live ground truth, plus the extraction bandwidth the
// warehouse pays.
func E1Staleness(cfg Config) (Table, error) {
	chains, perChain, queries := 20, 5, 400
	if cfg.Quick {
		chains, perChain, queries = 5, 4, 60
	}
	updateRates := []int{0, 1, 4, 16}
	refreshEvery := []int{10, 50}
	if cfg.Quick {
		updateRates = []int{1, 8}
		refreshEvery = []int{10}
	}

	t := Table{
		ID:    "E1",
		Title: "stale-answer fraction: warehouse refresh vs federated fetch on demand",
		Headers: []string{
			"updates/query", "warehouse(R)", "stale% warehouse", "stale% federated", "rows extracted",
		},
		Notes: "expected shape: warehouse staleness grows with volatility and refresh period; federation stays at 0",
	}
	for _, rate := range updateRates {
		for _, every := range refreshEvery {
			staleWH, staleFed, extracted, err := runE1(cfg.Seed, chains, perChain, queries, rate, every)
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", rate),
				fmt.Sprintf("every %d", every),
				fmt.Sprintf("%.1f%%", staleWH*100),
				fmt.Sprintf("%.1f%%", staleFed*100),
				fmt.Sprintf("%d", extracted),
			})
		}
	}
	return t, nil
}

// runE1 runs one (volatility, refresh) cell and returns the two stale
// fractions and the warehouse's extraction volume.
func runE1(seed int64, chains, perChain, queries, updatesPerQuery, refreshEvery int) (staleWH, staleFed float64, extracted int, err error) {
	def := workload.HotelsDef()
	hotels := workload.Hotels(chains, perChain, seed)

	// Live source tables, one per chain; both systems read through them.
	fed := federation.New(federation.NewAgoric())
	wh := warehouse.New()
	var tables []*storage.Table
	var names []string
	var frags []*federation.Fragment
	for c, chain := range hotels {
		tbl := storage.NewTable(def.Clone("hotels"))
		for _, h := range chain {
			if _, err := tbl.Insert(workload.HotelRow(h)); err != nil {
				return 0, 0, 0, err
			}
			names = append(names, h.Name)
		}
		tables = append(tables, tbl)
		site := federation.NewSite(fmt.Sprintf("chain-%02d", c))
		if err := fed.AddSite(site); err != nil {
			return 0, 0, 0, err
		}
		src := wrapper.NewERPSource(fmt.Sprintf("res-%02d", c), tbl)
		site.AddSource(src)
		frags = append(frags, federation.NewFragment(fmt.Sprintf("chain-%02d", c), nil, site))
		if err := wh.Register(src, nil); err != nil {
			return 0, 0, 0, err
		}
	}
	if _, err := fed.DefineTable(def, frags...); err != nil {
		return 0, 0, 0, err
	}
	ctx := context.Background()
	if err := wh.RefreshAll(ctx); err != nil {
		return 0, 0, 0, err
	}

	churn := workload.AvailabilityChurn(tables, seed+1)
	rng := rand.New(rand.NewSource(seed + 2))
	truth := func(hotel string) (int64, error) {
		for _, tbl := range tables {
			if _, row, err := tbl.GetByKey(value.NewString(hotel)); err == nil {
				return row[def.ColumnIndex("available")].Int(), nil
			}
		}
		return 0, fmt.Errorf("bench: hotel %q missing", hotel)
	}

	staleW, staleF := 0, 0
	for q := 0; q < queries; q++ {
		for u := 0; u < updatesPerQuery; u++ {
			if err := churn(); err != nil {
				return 0, 0, 0, err
			}
		}
		if refreshEvery > 0 && q > 0 && q%refreshEvery == 0 {
			if err := wh.RefreshAll(ctx); err != nil {
				return 0, 0, 0, err
			}
		}
		hotel := names[rng.Intn(len(names))]
		want, err := truth(hotel)
		if err != nil {
			return 0, 0, 0, err
		}
		sql := fmt.Sprintf("SELECT available FROM hotels WHERE hotel = '%s'", hotel)
		wres, err := wh.Query(sql)
		if err != nil {
			return 0, 0, 0, err
		}
		if len(wres.Rows) != 1 || wres.Rows[0][0].Int() != want {
			staleW++
		}
		fres, err := fed.Query(ctx, sql)
		if err != nil {
			return 0, 0, 0, err
		}
		if len(fres.Rows) != 1 || fres.Rows[0][0].Int() != want {
			staleF++
		}
	}
	return float64(staleW) / float64(queries), float64(staleF) / float64(queries), wh.RowsExtracted(), nil
}
