package wrapper

import (
	"context"
	"fmt"

	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
	"cohera/internal/xmlq"
)

// XMLSource wraps an XML feed: a row XPath selects record nodes and field
// mappings hold relative XPaths. As the paper notes, XML "ameliorates the
// problem of writing wrappers" — mapping is declarative, no induction
// needed.
type XMLSource struct {
	name     string
	def      *schema.Table
	fetch    Fetcher
	url      string
	rowPath  string
	mappings []FieldMapping
	volatile bool
}

// NewXMLSource builds an XML wrapper. rowPath selects record nodes;
// each mapping's From is an XPath relative to a record node.
func NewXMLSource(name string, def *schema.Table, fetch Fetcher, url, rowPath string, mappings []FieldMapping) *XMLSource {
	return &XMLSource{
		name: name, def: def, fetch: fetch, url: url,
		rowPath: rowPath, mappings: mappings,
	}
}

// SetVolatile marks the feed as volatile.
func (s *XMLSource) SetVolatile(v bool) { s.volatile = v }

// Name implements Source.
func (s *XMLSource) Name() string { return s.name }

// Schema implements Source.
func (s *XMLSource) Schema() *schema.Table { return s.def }

// Capabilities implements Source.
func (s *XMLSource) Capabilities() Capabilities {
	return Capabilities{Volatile: s.volatile}
}

// Fetch implements Source.
func (s *XMLSource) Fetch(ctx context.Context, filters []Filter) ([]storage.Row, error) {
	body, err := s.fetch.Get(ctx, s.url)
	if err != nil {
		return nil, err
	}
	doc, err := xmlq.ParseXMLString(body)
	if err != nil {
		return nil, fmt.Errorf("wrapper: xml %s: %w", s.name, err)
	}
	records, err := xmlq.XPath(doc, s.rowPath)
	if err != nil {
		return nil, fmt.Errorf("wrapper: xml %s row path: %w", s.name, err)
	}
	var rows []storage.Row
	for _, rec := range records {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := make(storage.Row, len(s.def.Columns))
		for i := range row {
			row[i] = value.Null
		}
		for _, m := range s.mappings {
			ci := s.def.ColumnIndex(m.Column)
			if ci < 0 {
				return nil, fmt.Errorf("wrapper: xml %s maps unknown column %q", s.name, m.Column)
			}
			raw, err := xmlq.XPathString(rec, m.From)
			if err != nil {
				return nil, fmt.Errorf("wrapper: xml %s field %q: %w", s.name, m.Column, err)
			}
			v, err := value.Parse(s.def.Columns[ci].Kind, raw)
			if err != nil {
				return nil, fmt.Errorf("wrapper: xml %s field %q: %w", s.name, m.Column, err)
			}
			row[ci] = v
		}
		rows = append(rows, row)
	}
	return applyFilters(s.def, rows, filters), nil
}
