package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cohera/internal/federation"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// E10ScaleOut measures incremental scalability (Characteristic 8): the
// same offered load against a fragment replicated on 1..R machines.
// The paper's bar: "a content integration solution must be architected
// to scale incrementally... a customer can simply scale the solution by
// adding more hardware". With bid prices reflecting queue depth, added
// replicas absorb proportional load and throughput grows until
// coordination costs dominate.
func E10ScaleOut(cfg Config) (Table, error) {
	replicaCounts := []int{1, 2, 4, 8, 16}
	queries := 256
	if cfg.Quick {
		replicaCounts = []int{1, 2, 4}
		queries = 64
	}
	t := Table{
		ID:      "E10",
		Title:   "throughput vs replica count at fixed offered load",
		Headers: []string{"replicas", "elapsed", "queries/s", "speedup"},
		Notes:   "expected shape: near-linear speedup at low replica counts, flattening as coordinator work dominates",
	}
	var base float64
	for _, r := range replicaCounts {
		elapsed, err := runE10(cfg.Seed, r, queries)
		if err != nil {
			return t, err
		}
		qps := float64(queries) / elapsed.Seconds()
		if base == 0 {
			base = qps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r),
			fmtDur(elapsed),
			fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.1fx", qps/base),
		})
	}
	return t, nil
}

func runE10(seed int64, replicas, queries int) (time.Duration, error) {
	def := schema.MustTable("t", []schema.Column{
		{Name: "id", Kind: value.KindInt, NotNull: true},
		{Name: "payload", Kind: value.KindString},
	}, "id")
	fed := federation.New(federation.NewAgoric())
	cost := federation.CostModel{
		Latency: 200 * time.Microsecond, PerRow: 20 * time.Microsecond, LoadPenalty: 1,
	}
	var sites []*federation.Site
	for i := 0; i < replicas; i++ {
		s := federation.NewSite(fmt.Sprintf("site-%02d", i))
		s.SetCost(cost)
		if err := fed.AddSite(s); err != nil {
			return 0, err
		}
		sites = append(sites, s)
	}
	frag := federation.NewFragment("f", nil, sites...)
	if _, err := fed.DefineTable(def, frag); err != nil {
		return 0, err
	}
	var rows []storage.Row
	for i := int64(0); i < 50; i++ {
		rows = append(rows, storage.Row{value.NewInt(i), value.NewString("x")})
	}
	if err := fed.LoadFragment("t", frag, rows); err != nil {
		return 0, err
	}
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, queries)
	sem := make(chan struct{}, 32) // offered concurrency
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if _, err := fed.Query(ctx, "SELECT id FROM t WHERE id < 25"); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
