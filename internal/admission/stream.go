package admission

import (
	"cohera/internal/storage"
)

// TrackedStream couples an admission slot to a RowStream's lifetime.
// A streaming query's coordinator work is not done when the stream is
// handed to the caller — it is done when the caller finishes draining
// it. Holding the slot until the stream settles is the backpressure
// half of admission control: a slow client keeps its slot occupied, so
// new work queues (and eventually sheds) at the gate instead of
// ballooning buffers behind a consumer that is not keeping up.
//
// The slot is released exactly once, at the first of: Close, clean end
// of stream (io.EOF), or a sticky stream error.
type TrackedStream struct {
	src     storage.RowStream
	release func()
}

// NewTrackedStream wraps src so release fires when the stream
// settles. release must be idempotent (Controller.Admit's release is);
// a nil release yields a plain pass-through.
func NewTrackedStream(src storage.RowStream, release func()) *TrackedStream {
	if release == nil {
		release = func() {}
	}
	return &TrackedStream{src: src, release: release}
}

// Columns names the stream's columns, in row order.
func (t *TrackedStream) Columns() []string { return t.src.Columns() }

// Next forwards to the source; any terminal condition (io.EOF or a
// sticky error) releases the admission slot — the coordinator work is
// over even if the caller has not called Close yet.
func (t *TrackedStream) Next() (storage.Row, error) {
	row, err := t.src.Next()
	if err != nil {
		t.release()
	}
	return row, err
}

// Close closes the source and releases the admission slot. Idempotent.
func (t *TrackedStream) Close() error {
	err := t.src.Close()
	t.release()
	return err
}
