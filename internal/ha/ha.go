// Package ha simulates the availability of content placement strategies
// (paper, Characteristic 8). The paper's argument, reproduced by E5:
//
//   - a central site delivers all of the content some of the time;
//   - fragmentation delivers *some of the content all of the time*
//     (a site failure only loses that fragment);
//   - a hot standby (full replication) buys availability at double the
//     hardware;
//   - fragmentation plus replication delivers *most of the content all
//     of the time* and is "the design of choice in most high-availability
//     environments".
//
// Sites alternate exponentially distributed up (MTBF) and down (MTTR)
// periods; the simulator sweeps the exact event timeline and reports
// time-weighted content availability, the fraction of time everything was
// reachable, and the equivalent "nines".
package ha

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Config describes one placement under failure assumptions.
type Config struct {
	// Sites is the machine pool size.
	Sites int
	// Fragments is the number of content fragments (1 = unfragmented).
	Fragments int
	// Replicas is the number of copies of each fragment (1 = none).
	Replicas int
	// MTBF is the mean up time of a site.
	MTBF time.Duration
	// MTTR is the mean repair time of a site.
	MTTR time.Duration
	// Horizon is the simulated duration.
	Horizon time.Duration
	// Seed drives the deterministic failure process.
	Seed int64
}

// Result reports the availability metrics of a simulation.
type Result struct {
	// ContentAvailability is the time-weighted mean fraction of
	// fragments reachable (≥1 live replica).
	ContentAvailability float64
	// FullAvailability is the fraction of time every fragment was
	// reachable — "all of the content".
	FullAvailability float64
	// AnyAvailability is the fraction of time at least one fragment was
	// reachable — "some of the content".
	AnyAvailability float64
	// Nines is -log10(1 - ContentAvailability), the marketing number.
	Nines float64
	// HardwareUnits is Fragments × Replicas — the cost side.
	HardwareUnits int
}

// Validate checks a config for simulability.
func (c Config) Validate() error {
	if c.Sites <= 0 || c.Fragments <= 0 || c.Replicas <= 0 {
		return fmt.Errorf("ha: sites, fragments and replicas must be positive")
	}
	if c.Replicas > c.Sites {
		return fmt.Errorf("ha: %d replicas need at least that many sites (have %d)", c.Replicas, c.Sites)
	}
	if c.MTBF <= 0 || c.Horizon <= 0 {
		return fmt.Errorf("ha: MTBF and Horizon must be positive")
	}
	if c.MTTR < 0 {
		return fmt.Errorf("ha: MTTR must be non-negative (0 means instantaneous repair)")
	}
	return nil
}

// Simulate runs the placement through the failure process.
func Simulate(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	horizon := cfg.Horizon.Seconds()
	mtbf := cfg.MTBF.Seconds()
	mttr := cfg.MTTR.Seconds()

	// Generate per-site toggle timelines (site starts up).
	type toggle struct {
		t    float64
		site int
		up   bool
	}
	var events []toggle
	for s := 0; s < cfg.Sites; s++ {
		t := 0.0
		up := true
		for t < horizon {
			var dur float64
			if up {
				dur = rng.ExpFloat64() * mtbf
			} else {
				dur = rng.ExpFloat64() * mttr
			}
			t += dur
			if t >= horizon {
				break
			}
			up = !up
			events = append(events, toggle{t: t, site: s, up: up})
		}
	}
	// MTTR 0 produces down/up event pairs at identical times; a stable
	// sort keeps each site's pair in generation order so the site never
	// looks wrongly down past the instant repair.
	sort.SliceStable(events, func(i, j int) bool { return events[i].t < events[j].t })

	// Chained-declustering placement: fragment f's replicas live on sites
	// (f+k) mod Sites for k in [0, Replicas), which are distinct whenever
	// Replicas ≤ Sites.
	replicaSites := make([][]int, cfg.Fragments)
	for f := 0; f < cfg.Fragments; f++ {
		for k := 0; k < cfg.Replicas; k++ {
			replicaSites[f] = append(replicaSites[f], (f+k)%cfg.Sites)
		}
	}
	// liveReplicas[f] counts live replicas of fragment f.
	siteUp := make([]bool, cfg.Sites)
	for i := range siteUp {
		siteUp[i] = true
	}
	liveReplicas := make([]int, cfg.Fragments)
	fragmentsUp := cfg.Fragments
	for f := range liveReplicas {
		liveReplicas[f] = cfg.Replicas
	}
	// Which fragments depend on each site.
	dependents := make([][]int, cfg.Sites)
	for f, sites := range replicaSites {
		for _, s := range sites {
			dependents[s] = append(dependents[s], f)
		}
	}

	var contentTime, fullTime, anyTime float64
	prev := 0.0
	accumulate := func(until float64) {
		dt := until - prev
		if dt <= 0 {
			return
		}
		contentTime += dt * float64(fragmentsUp) / float64(cfg.Fragments)
		if fragmentsUp == cfg.Fragments {
			fullTime += dt
		}
		if fragmentsUp > 0 {
			anyTime += dt
		}
		prev = until
	}
	for _, e := range events {
		accumulate(e.t)
		if siteUp[e.site] == e.up {
			continue
		}
		siteUp[e.site] = e.up
		for _, f := range dependents[e.site] {
			before := liveReplicas[f] > 0
			if e.up {
				liveReplicas[f]++
			} else {
				liveReplicas[f]--
			}
			after := liveReplicas[f] > 0
			if before && !after {
				fragmentsUp--
			}
			if !before && after {
				fragmentsUp++
			}
		}
	}
	accumulate(horizon)

	res := Result{
		ContentAvailability: clamp01(contentTime / horizon),
		FullAvailability:    clamp01(fullTime / horizon),
		AnyAvailability:     clamp01(anyTime / horizon),
		HardwareUnits:       cfg.Fragments * cfg.Replicas,
	}
	if res.ContentAvailability >= 1 {
		res.Nines = math.Inf(1)
	} else {
		res.Nines = -math.Log10(1 - res.ContentAvailability)
	}
	return res, nil
}

// clamp01 guards the availability ratios against float accumulation
// drifting a hair past 1 over long event timelines.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Strategy names the four placements the paper contrasts.
type Strategy string

// The placements of E5.
const (
	Central    Strategy = "central"
	Fragmented Strategy = "fragmented"
	Replicated Strategy = "replicated (hot standby)"
	FragRepl   Strategy = "fragmented+replicated"
)

// ConfigFor builds the standard configuration of a named strategy over a
// pool of sites.
func ConfigFor(s Strategy, sites int, mtbf, mttr, horizon time.Duration, seed int64) Config {
	cfg := Config{Sites: sites, MTBF: mtbf, MTTR: mttr, Horizon: horizon, Seed: seed}
	switch s {
	case Central:
		cfg.Fragments, cfg.Replicas = 1, 1
	case Fragmented:
		cfg.Fragments, cfg.Replicas = sites, 1
	case Replicated:
		cfg.Fragments, cfg.Replicas = 1, 2
	case FragRepl:
		cfg.Fragments, cfg.Replicas = sites, 2
	}
	return cfg
}
