package wrapper

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

func partsDef() *schema.Table {
	return schema.MustTable("parts", []schema.Column{
		{Name: "sku", Kind: value.KindString, NotNull: true},
		{Name: "name", Kind: value.KindString},
		{Name: "price", Kind: value.KindMoney},
		{Name: "qty", Kind: value.KindInt},
	}, "sku")
}

func TestCSVSource(t *testing.T) {
	csvDoc := "SKU, Product Name, Unit Price, Stock\n" +
		"P1, cordless drill, $99.50, 10\n" +
		"P2, India ink, 3.50 USD, \"1,200\"\n"
	fetch := StaticFetcher(map[string]string{"feed.csv": csvDoc})
	src := NewCSVSource("acme", partsDef(), fetch, "feed.csv", []FieldMapping{
		{Column: "sku", From: "SKU"},
		{Column: "name", From: "Product Name"},
		{Column: "price", From: "Unit Price"},
		{Column: "qty", From: "Stock"},
	})
	rows, err := src.Fetch(context.Background(), nil)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if m, c := rows[0][2].Money(); m != 9950 || c != "USD" {
		t.Errorf("price = %d %s", m, c)
	}
	if rows[1][3].Int() != 1200 {
		t.Errorf("qty with thousands separator = %v", rows[1][3])
	}
	// Filters apply locally.
	rows, _ = src.Fetch(context.Background(), []Filter{{Column: "sku", Value: value.NewString("P2")}})
	if len(rows) != 1 || rows[0][0].Str() != "P2" {
		t.Errorf("filtered = %v", rows)
	}
	if src.Capabilities().CanPush("sku") {
		t.Error("CSV source should not advertise pushdown")
	}
}

func TestCSVSourceHeaderAutoMatch(t *testing.T) {
	csvDoc := "sku,name,price,qty\nP1,ink,$1.00,5\n"
	src := NewCSVSource("s", partsDef(), StaticFetcher(map[string]string{"u": csvDoc}), "u", nil)
	rows, err := src.Fetch(context.Background(), nil)
	if err != nil || len(rows) != 1 || rows[0][1].Str() != "ink" {
		t.Fatalf("auto-match = %v, %v", rows, err)
	}
}

func TestCSVSourceErrors(t *testing.T) {
	def := partsDef()
	// Unknown mapped column.
	src := NewCSVSource("s", def, StaticFetcher(map[string]string{"u": "H\nx\n"}), "u",
		[]FieldMapping{{Column: "ghost", From: "H"}})
	if _, err := src.Fetch(context.Background(), nil); err == nil {
		t.Error("unknown column should fail")
	}
	// Unparseable cell.
	src = NewCSVSource("s", def, StaticFetcher(map[string]string{"u": "qty\nnotanumber\n"}), "u", nil)
	if _, err := src.Fetch(context.Background(), nil); err == nil {
		t.Error("bad cell should fail")
	}
	// Missing document.
	src = NewCSVSource("s", def, StaticFetcher(nil), "missing", nil)
	if _, err := src.Fetch(context.Background(), nil); err == nil {
		t.Error("missing doc should fail")
	}
	// Empty document yields no rows.
	src = NewCSVSource("s", def, StaticFetcher(map[string]string{"u": ""}), "u", nil)
	if rows, err := src.Fetch(context.Background(), nil); err != nil || rows != nil {
		t.Errorf("empty doc = %v, %v", rows, err)
	}
}

const supplierXML = `<feed>
  <item code="P1"><title>cordless drill</title><cost cur="USD">99.50</cost><avail>10</avail></item>
  <item code="P2"><title>India ink</title><cost cur="USD">3.50</cost><avail>200</avail></item>
</feed>`

func TestXMLSource(t *testing.T) {
	src := NewXMLSource("bolt", partsDef(),
		StaticFetcher(map[string]string{"feed.xml": supplierXML}), "feed.xml",
		"/feed/item", []FieldMapping{
			{Column: "sku", From: "@code"},
			{Column: "name", From: "title"},
			{Column: "price", From: "cost"},
			{Column: "qty", From: "avail"},
		})
	rows, err := src.Fetch(context.Background(), nil)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if len(rows) != 2 || rows[0][0].Str() != "P1" || rows[1][3].Int() != 200 {
		t.Errorf("rows = %v", rows)
	}
	// Bad row path.
	bad := NewXMLSource("b", partsDef(), StaticFetcher(map[string]string{"u": supplierXML}), "u", "//[", nil)
	if _, err := bad.Fetch(context.Background(), nil); err == nil {
		t.Error("bad row path should fail")
	}
	// Unknown mapped column.
	bad = NewXMLSource("b", partsDef(), StaticFetcher(map[string]string{"u": supplierXML}), "u",
		"/feed/item", []FieldMapping{{Column: "ghost", From: "title"}})
	if _, err := bad.Fetch(context.Background(), nil); err == nil {
		t.Error("unknown column should fail")
	}
}

const trainingPage = `<html><body><h1>Acme Catalog</h1><table>
<tr><td class="sku">P1</td><td class="nm">cordless drill</td><td class="pr">$99.50</td></tr>
<tr><td class="sku">P2</td><td class="nm">India ink</td><td class="pr">$3.50</td></tr>
<tr><td class="sku">P3</td><td class="nm">forklift</td><td class="pr">$12,000.00</td></tr>
</table></body></html>`

func TestInduceAndExtract(t *testing.T) {
	tpl, err := Induce(trainingPage, []string{"sku", "name", "price"}, []Example{
		{Values: []string{"P1", "cordless drill", "$99.50"}},
		{Values: []string{"P2", "India ink", "$3.50"}},
	})
	if err != nil {
		t.Fatalf("Induce: %v", err)
	}
	recs, err := tpl.Extract(trainingPage)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	// The induced wrapper generalizes to the unlabeled third record.
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if recs[2]["sku"] != "P3" || recs[2]["name"] != "forklift" || recs[2]["price"] != "$12,000.00" {
		t.Errorf("generalized record = %v", recs[2])
	}
}

func TestInduceErrors(t *testing.T) {
	fields := []string{"a"}
	if _, err := Induce("page", fields, []Example{{Values: []string{"x"}}}); err == nil {
		t.Error("single example should fail")
	}
	if _, err := Induce("page", fields, []Example{
		{Values: []string{"x", "y"}}, {Values: []string{"z"}},
	}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := Induce("nothing here", fields, []Example{
		{Values: []string{"missing1"}}, {Values: []string{"missing2"}},
	}); err == nil {
		t.Error("values absent from page should fail")
	}
}

func TestHTMLSourceWithInducedTemplate(t *testing.T) {
	tpl, err := Induce(trainingPage, []string{"sku", "name", "price"}, []Example{
		{Values: []string{"P1", "cordless drill", "$99.50"}},
		{Values: []string{"P2", "India ink", "$3.50"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	def := partsDef()
	src := NewHTMLSource("acme-web", def,
		StaticFetcher(map[string]string{"page": trainingPage}), "page", tpl, nil)
	rows, err := src.Fetch(context.Background(), nil)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if m, _ := rows[2][2].Money(); m != 1200000 {
		t.Errorf("forklift price = %v", rows[2][2])
	}
	// qty column unmapped → NULL.
	if !rows[0][3].IsNull() {
		t.Errorf("unmapped qty = %v", rows[0][3])
	}
}

func TestRegexHTMLSource(t *testing.T) {
	re := regexp.MustCompile(`<td class="sku">([^<]+)</td><td class="nm">([^<]+)</td><td class="pr">([^<]+)</td>`)
	src, err := NewRegexHTMLSource("rx", partsDef(),
		StaticFetcher(map[string]string{"p": trainingPage}), "p",
		re, []string{"sku", "name", "price"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := src.Fetch(context.Background(), nil)
	if err != nil || len(rows) != 3 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
	// Group count mismatch.
	if _, err := NewRegexHTMLSource("rx", partsDef(), nil, "p", re, []string{"one"}, nil); err == nil {
		t.Error("group mismatch should fail")
	}
}

func TestERPSource(t *testing.T) {
	tbl := storage.NewTable(partsDef())
	if err := tbl.CreateIndex("sku"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []storage.Row{
		{value.NewString("P1"), value.NewString("drill"), value.NewMoney(9950, "USD"), value.NewInt(10)},
		{value.NewString("P2"), value.NewString("ink"), value.NewMoney(350, "USD"), value.NewInt(200)},
	} {
		if _, err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	src := NewERPSource("sap", tbl, "sku")
	if !src.Capabilities().Volatile || !src.Capabilities().CanPush("sku") {
		t.Error("capabilities wrong")
	}
	rows, err := src.Fetch(context.Background(), []Filter{{Column: "sku", Value: value.NewString("P2")}})
	if err != nil || len(rows) != 1 || rows[0][1].Str() != "ink" {
		t.Fatalf("pushed fetch = %v, %v", rows, err)
	}
	// Live mutation is visible on the next fetch (fetch on demand).
	id, _, err := tbl.GetByKey(value.NewString("P2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(id, storage.Row{
		value.NewString("P2"), value.NewString("ink"), value.NewMoney(350, "USD"), value.NewInt(0),
	}); err != nil {
		t.Fatal(err)
	}
	rows, _ = src.Fetch(context.Background(), []Filter{{Column: "sku", Value: value.NewString("P2")}})
	if rows[0][3].Int() != 0 {
		t.Error("stale data from live gateway")
	}
	if src.Fetches() != 2 {
		t.Errorf("fetches = %d", src.Fetches())
	}
	// Latency honors context cancellation.
	src.SetLatency(time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := src.Fetch(ctx, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("latency cancel err = %v", err)
	}
}

func TestStaticAndFuncSources(t *testing.T) {
	def := partsDef()
	good := []storage.Row{{value.NewString("P1"), value.Null, value.Null, value.Null}}
	s, err := NewStaticSource("ref", def, good)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.Fetch(context.Background(), nil)
	if err != nil || len(rows) != 1 {
		t.Fatal(err)
	}
	rows[0][0] = value.NewString("mutated")
	rows2, _ := s.Fetch(context.Background(), nil)
	if rows2[0][0].Str() != "P1" {
		t.Error("static source shares row storage with callers")
	}
	if _, err := NewStaticSource("bad", def, []storage.Row{{value.NewInt(1)}}); err == nil {
		t.Error("invalid static rows should fail")
	}
	// FuncSource validates generated rows and is always volatile.
	calls := 0
	f := NewFuncSource("gen", def, Capabilities{}, func(context.Context, []Filter) ([]storage.Row, error) {
		calls++
		return good, nil
	})
	if !f.Capabilities().Volatile {
		t.Error("func source must be volatile")
	}
	if _, err := f.Fetch(context.Background(), nil); err != nil || calls != 1 {
		t.Errorf("func fetch: %v calls=%d", err, calls)
	}
	bad := NewFuncSource("gen2", def, Capabilities{}, func(context.Context, []Filter) ([]storage.Row, error) {
		return []storage.Row{{value.NewInt(1)}}, nil
	})
	if _, err := bad.Fetch(context.Background(), nil); err == nil {
		t.Error("invalid generated rows should fail")
	}
}

func TestSessionCookieLoginFlow(t *testing.T) {
	// A site requiring form login before serving the catalog, tracking the
	// session with a cookie — the paper's "cookies and passwords" case.
	mux := http.NewServeMux()
	mux.HandleFunc("/login", func(w http.ResponseWriter, r *http.Request) {
		if r.FormValue("user") == "buyer" && r.FormValue("pass") == "secret" {
			http.SetCookie(w, &http.Cookie{Name: "sid", Value: "tok123", Path: "/"})
			w.WriteHeader(http.StatusOK)
			return
		}
		http.Error(w, "bad credentials", http.StatusForbidden)
	})
	mux.HandleFunc("/catalog", func(w http.ResponseWriter, r *http.Request) {
		c, err := r.Cookie("sid")
		if err != nil || c.Value != "tok123" {
			http.Error(w, "login required", http.StatusUnauthorized)
			return
		}
		if _, err := w.Write([]byte("sku,name,price,qty\nP1,drill,$5.00,3\n")); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	sess, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Unauthenticated access fails.
	if _, err := sess.Get(ctx, srv.URL+"/catalog"); err == nil {
		t.Fatal("unauthenticated fetch should fail")
	}
	// Wrong credentials fail.
	if err := sess.Login(ctx, srv.URL+"/login", map[string]string{"user": "x", "pass": "y"}); err == nil {
		t.Fatal("bad login should fail")
	}
	// Correct login then fetch through the cookie.
	if err := sess.Login(ctx, srv.URL+"/login", map[string]string{"user": "buyer", "pass": "secret"}); err != nil {
		t.Fatalf("login: %v", err)
	}
	body, err := sess.Get(ctx, srv.URL+"/catalog")
	if err != nil || !strings.Contains(body, "drill") {
		t.Fatalf("catalog fetch = %q, %v", body, err)
	}
	// And the whole thing drives a CSVSource end to end.
	src := NewCSVSource("gated", partsDef(), sess, srv.URL+"/catalog", nil)
	rows, err := src.Fetch(ctx, nil)
	if err != nil || len(rows) != 1 || rows[0][0].Str() != "P1" {
		t.Fatalf("gated CSV = %v, %v", rows, err)
	}
}

func TestSessionBasicAuth(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		u, p, ok := r.BasicAuth()
		if !ok || u != "api" || p != "key" {
			http.Error(w, "auth", http.StatusUnauthorized)
			return
		}
		if _, err := w.Write([]byte("ok")); err != nil {
			t.Errorf("write: %v", err)
		}
	}))
	defer srv.Close()
	sess, _ := NewSession()
	if _, err := sess.Get(context.Background(), srv.URL); err == nil {
		t.Error("missing basic auth should fail")
	}
	sess.BasicUser, sess.BasicPass = "api", "key"
	body, err := sess.Get(context.Background(), srv.URL)
	if err != nil || body != "ok" {
		t.Errorf("basic auth = %q, %v", body, err)
	}
}
