// Net market — a B2B exchange composed from the library's pieces:
//
//  1. supplier enablement: feeds must conform to the market's legislated
//     XML before the supplier may sell (sender-makes-right);
//  2. enabled feeds are integrated into the market catalog;
//  3. buyers browse through the semantic cache (hot ranges served
//     locally);
//  4. orders execute as federated DML (availability decremented at the
//     owning fragment's replicas);
//  5. per-tier price lists publish via a FLWOR query over the integrated
//     XML view.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"cohera/internal/core"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/syndicate"
	"cohera/internal/value"
	"cohera/internal/workload"
	"cohera/internal/wrapper"
	"cohera/internal/xmlq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// marketFormat is the exchange's legislated feed shape.
func marketFormat() syndicate.LegislatedXML {
	return syndicate.LegislatedXML{
		Root: "MarketFeed", RowElement: "Offer",
		FieldNames: [5]string{"PartNo", "Description", "UnitPrice", "Quantity", "InStock"},
	}
}

func run() error {
	ctx := context.Background()
	in := core.New(core.Options{EnableCache: true, CacheEntries: 32})

	// --- 1. Supplier enablement -------------------------------------
	suppliers := workload.Suppliers(4, 10, 0, 77)
	format := marketFormat()
	var enabled []workload.Supplier
	for i, s := range suppliers {
		doc := renderMarketFeed(s, i == 3) // the last supplier ships a broken feed
		problems := syndicate.CheckEnablement(doc, format)
		if len(problems) > 0 {
			fmt.Printf("supplier %s REJECTED: %s\n", s.Name, problems[0])
			continue
		}
		fmt.Printf("supplier %s enabled\n", s.Name)
		enabled = append(enabled, s)
	}

	// --- 2. Integrate enabled feeds ----------------------------------
	def := marketCatalogDef()
	var specs []core.FragmentSpec
	for _, s := range enabled {
		if _, err := in.AddSite(s.Name); err != nil {
			return err
		}
		specs = append(specs, core.FragmentSpec{
			ID: s.Name, Predicate: fmt.Sprintf("supplier = '%s'", s.Name),
			Replicas: []string{s.Name},
		})
	}
	frags, err := in.DefineTable(def, specs...)
	if err != nil {
		return err
	}
	for i, s := range enabled {
		rows, err := marketRows(s, in.Rates())
		if err != nil {
			return err
		}
		src, err := wrapper.NewStaticSource(s.Name, def, rows)
		if err != nil {
			return err
		}
		if _, err := in.Ingest(ctx, "market", frags[i], src, nil); err != nil {
			return err
		}
	}
	res, err := in.Query(ctx, "SELECT COUNT(*) FROM market")
	if err != nil {
		return err
	}
	fmt.Printf("\nmarket catalog: %s offers from %d enabled suppliers\n", res.Rows[0][0], len(enabled))

	// --- 3. Buyers browse through the semantic cache -----------------
	for i := 0; i < 6; i++ {
		lo := 100 + (i%2)*50
		sql := fmt.Sprintf("SELECT qty FROM market WHERE qty BETWEEN %d AND %d", lo, lo+400)
		if _, err := in.Query(ctx, sql); err != nil {
			return err
		}
	}
	hits, misses, partial := in.Cache().Stats()
	fmt.Printf("browse traffic: %d cache hits, %d partial, %d misses\n", hits, partial, misses)

	// --- 4. An order executes as federated DML -----------------------
	pick, err := in.Query(ctx, "SELECT sku, qty FROM market WHERE qty > 10 ORDER BY sku LIMIT 1")
	if err != nil || len(pick.Rows) == 0 {
		return fmt.Errorf("no stocked offer: %v", err)
	}
	sku := pick.Rows[0][0].Str()
	before := pick.Rows[0][1].Int()
	_, dml, err := in.Exec(ctx, fmt.Sprintf("UPDATE market SET qty = qty - 10 WHERE sku = '%s'", sku))
	if err != nil {
		return err
	}
	after, err := in.Query(ctx, fmt.Sprintf("SELECT qty FROM market WHERE sku = '%s'", sku))
	if err != nil {
		return err
	}
	fmt.Printf("order: 10 units of %s (%d → %s; %d row updated at the owning fragment)\n",
		sku, before, after.Rows[0][0], dml.Rows)

	// --- 5. Publish a platinum price list via FLWOR ------------------
	in.Syndicator().AddRule(syndicate.TierDiscount{Tier: "platinum", Pct: 12})
	xmlOut, err := in.QueryFLWOR(ctx,
		"SELECT sku, name, price FROM market ORDER BY sku LIMIT 40",
		`for $r in /result/row where $r/price >= '0' order by $r/sku
		 return <offer sku="{$r/sku}"><desc>{$r/name}</desc><list>{$r/price}</list></offer>`,
		"PriceList")
	if err != nil {
		return err
	}
	doc, err := xmlq.ParseXMLString(xmlOut)
	if err != nil {
		return err
	}
	offers, err := xmlq.XPath(doc, "/PriceList/offer")
	if err != nil {
		return err
	}
	fmt.Printf("\nplatinum price list (FLWOR over the integrated XML view): %d offers, first 3:\n", len(offers))
	for i, o := range offers {
		if i == 3 {
			break
		}
		list, _ := xmlq.XPathString(o, "list")
		lp, err := value.ParseMoney(list)
		if err != nil {
			return err
		}
		q := in.Syndicator().QuoteOne(
			syndicate.Buyer{ID: "plat-1", Tier: "platinum"},
			syndicate.Request{Item: syndicate.Item{
				SKU: o.Attr("sku"), Name: "offer", Price: lp, Available: 1,
			}, Qty: 1})
		fmt.Printf("  %-22s list %-12s platinum %s\n", o.Attr("sku"), list, q.Price)
	}
	return nil
}

// marketCatalogDef is the exchange's catalog schema.
func marketCatalogDef() *schema.Table {
	return schema.MustTable("market", []schema.Column{
		{Name: "sku", Kind: value.KindString, NotNull: true},
		{Name: "supplier", Kind: value.KindString},
		{Name: "name", Kind: value.KindString, FullText: true},
		{Name: "price", Kind: value.KindMoney},
		{Name: "qty", Kind: value.KindInt},
	}, "sku")
}

// renderMarketFeed renders a supplier's catalog in the legislated format;
// broken=true omits a mandated field (the enablement failure case).
func renderMarketFeed(s workload.Supplier, broken bool) string {
	var b strings.Builder
	b.WriteString("<MarketFeed>")
	for _, it := range s.Items {
		b.WriteString("<Offer>")
		fmt.Fprintf(&b, "<PartNo>%s</PartNo>", it.SKU)
		fmt.Fprintf(&b, "<Description>%s</Description>", xmlEscape(it.Name))
		if !broken {
			fmt.Fprintf(&b, "<UnitPrice>%d.%02d %s</UnitPrice>", it.PriceCents/100, it.PriceCents%100, s.Currency)
		}
		fmt.Fprintf(&b, "<Quantity>1</Quantity><InStock>%d</InStock>", it.Qty)
		b.WriteString("</Offer>")
	}
	b.WriteString("</MarketFeed>")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// marketRows converts a supplier's items to market catalog rows with
// USD-normalized prices and market-qualified SKUs.
func marketRows(s workload.Supplier, rates *value.CurrencyTable) ([]storage.Row, error) {
	var out []storage.Row
	for _, it := range s.Items {
		price, err := rates.Convert(value.NewMoney(it.PriceCents, s.Currency), "USD")
		if err != nil {
			return nil, err
		}
		out = append(out, storage.Row{
			value.NewString(s.Name + "/" + it.SKU),
			value.NewString(s.Name),
			value.NewString(it.Name),
			price,
			value.NewInt(it.Qty),
		})
	}
	return out, nil
}
