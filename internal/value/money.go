package value

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// CurrencyTable converts money values between currencies. Rates are stored
// against a base currency; conversion between two non-base currencies goes
// through the base. The table is safe for concurrent use: content owners
// update rates while federated queries read them.
//
// The paper's Characteristic 2 example — "a US supplier quotes product
// prices in dollars, while a French supplier quotes prices in francs" — is
// resolved by a transformation rule backed by this table.
type CurrencyTable struct {
	// base is fixed at construction and immutable afterwards.
	base string

	mu    sync.RWMutex
	rates map[string]float64 // units of base per one unit of currency
}

// NewCurrencyTable returns a table with the given base currency. The base
// currency always has rate 1.
func NewCurrencyTable(base string) *CurrencyTable {
	base = strings.ToUpper(base)
	return &CurrencyTable{
		base:  base,
		rates: map[string]float64{base: 1},
	}
}

// Base returns the table's base currency code.
func (t *CurrencyTable) Base() string { return t.base }

// SetRate records that one unit of currency is worth rate units of the
// base currency. A non-positive rate is rejected.
func (t *CurrencyTable) SetRate(currency string, rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("value: non-positive rate %g for %s", rate, currency)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rates[strings.ToUpper(currency)] = rate
	return nil
}

// Rate returns units of base per one unit of currency.
func (t *CurrencyTable) Rate(currency string) (float64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rates[strings.ToUpper(currency)]
	return r, ok
}

// Currencies returns the known currency codes in sorted order.
func (t *CurrencyTable) Currencies() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.rates))
	for c := range t.rates {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Convert re-denominates a money Value into the target currency, rounding
// to the nearest minor unit. Non-money values and unknown currencies are
// errors.
func (t *CurrencyTable) Convert(v Value, target string) (Value, error) {
	if v.Kind() != KindMoney {
		return Null, fmt.Errorf("value: cannot convert %s to money", v.Kind())
	}
	amount, from := v.Money()
	target = strings.ToUpper(target)
	if from == target {
		return v, nil
	}
	fromRate, ok := t.Rate(from)
	if !ok {
		return Null, fmt.Errorf("value: unknown currency %q", from)
	}
	toRate, ok := t.Rate(target)
	if !ok {
		return Null, fmt.Errorf("value: unknown currency %q", target)
	}
	// amount is in minor units of `from`; move through base.
	inBase := float64(amount) * fromRate
	out := inBase / toRate
	rounded := int64(out)
	if frac := out - float64(rounded); frac >= 0.5 {
		rounded++
	} else if frac <= -0.5 {
		rounded--
	}
	return NewMoney(rounded, target), nil
}

// DefaultCurrencyTable returns a table seeded with the era-appropriate
// currencies used by the demo workloads (USD base).
func DefaultCurrencyTable() *CurrencyTable {
	t := NewCurrencyTable("USD")
	// Approximate early-2001 rates: units of USD per one unit of currency.
	seed := map[string]float64{
		"EUR": 0.89,
		"FRF": 0.136, // French franc, per the paper's example
		"GBP": 1.44,
		"JPY": 0.0082,
		"CAD": 0.65,
		"DEM": 0.455,
	}
	for c, r := range seed {
		//lint:ignore errdrop the seeded rates are positive constants, so SetRate cannot fail
		_ = t.SetRate(c, r)
	}
	return t
}
