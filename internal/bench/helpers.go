package bench

import (
	"cohera/internal/value"
)

// valueString wraps value.NewString for brevity in key lookups.
func valueString(s string) value.Value { return value.NewString(s) }
