package exec

import (
	"testing"

	"cohera/internal/schema"
	"cohera/internal/value"
)

// mustPartsDef returns a catalog schema with a full-text name column, as
// the integrator defines programmatically (CREATE TABLE has no FULLTEXT
// syntax; text indexing is schema metadata).
func mustPartsDef(t *testing.T) *schema.Table {
	t.Helper()
	return schema.MustTable("catalog", []schema.Column{
		{Name: "sku", Kind: value.KindString, NotNull: true},
		{Name: "name", Kind: value.KindString, FullText: true},
	}, "sku")
}
