module cohera

go 1.22
