// Command coherabench runs the experiment suite (E1–E18 in DESIGN.md)
// and prints each result table. By default it runs the full sweeps used
// to produce EXPERIMENTS.md; -quick shrinks them for a fast smoke run.
//
//	coherabench                  # all experiments, full sweeps
//	coherabench -quick           # all experiments, small sweeps
//	coherabench -e E3,E5         # a subset
//	coherabench -seed 7          # different deterministic seed
//	coherabench -json out.json   # machine-readable report with
//	                             # per-experiment median wall clock
//	coherabench -reps 5          # repetitions behind each median
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"cohera/internal/bench"
)

// report is the -json output: one entry per experiment with the median
// wall clock across -reps runs and the final run's result table.
type report struct {
	Generated   string             `json:"generated"`
	Seed        int64              `json:"seed"`
	Quick       bool               `json:"quick"`
	Reps        int                `json:"reps"`
	Experiments []experimentReport `json:"experiments"`
}

type experimentReport struct {
	ID            string     `json:"id"`
	Desc          string     `json:"desc"`
	MedianSeconds float64    `json:"median_seconds"`
	Headers       []string   `json:"headers"`
	Rows          [][]string `json:"rows"`
	Notes         string     `json:"notes,omitempty"`
}

func main() {
	var (
		quick    = flag.Bool("quick", false, "run reduced sweeps")
		only     = flag.String("e", "", "comma-separated experiment ids (default: all)")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		jsonPath = flag.String("json", "", "write a machine-readable report to this file")
		reps     = flag.Int("reps", 1, "runs per experiment; medians go in the -json report")
	)
	flag.Parse()
	if *reps < 1 {
		fmt.Fprintln(os.Stderr, "-reps must be >= 1")
		os.Exit(2)
	}

	cfg := bench.Full()
	if *quick {
		cfg = bench.Quick()
	}
	cfg.Seed = *seed

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Seed:      *seed,
		Quick:     *quick,
		Reps:      *reps,
	}
	for _, e := range bench.All() {
		if len(want) > 0 && !want[strings.ToUpper(e.ID)] {
			continue
		}
		var (
			t     bench.Table
			walls []float64
		)
		for r := 0; r < *reps; r++ {
			start := time.Now()
			var err error
			t, err = e.Run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
				os.Exit(1)
			}
			walls = append(walls, time.Since(start).Seconds())
		}
		sort.Float64s(walls)
		median := walls[(len(walls)-1)/2]
		t.Print(os.Stdout)
		fmt.Printf("  (%s; median %.3fs over %d run(s))\n", e.Desc, median, *reps)
		rep.Experiments = append(rep.Experiments, experimentReport{
			ID:            t.ID,
			Desc:          e.Desc,
			MedianSeconds: median,
			Headers:       t.Headers,
			Rows:          t.Rows,
			Notes:         t.Notes,
		})
	}
	if len(rep.Experiments) == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *only)
		os.Exit(1)
	}
	if *jsonPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}
}
