package remote

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"cohera/internal/federation"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
	"cohera/internal/wrapper"
)

func quotesTable(t *testing.T) *storage.Table {
	t.Helper()
	def := schema.MustTable("quotes", []schema.Column{
		{Name: "sku", Kind: value.KindString, NotNull: true},
		{Name: "price", Kind: value.KindMoney},
		{Name: "updated", Kind: value.KindTime},
		{Name: "lead", Kind: value.KindDuration},
		{Name: "hot", Kind: value.KindBool},
		{Name: "score", Kind: value.KindFloat},
		{Name: "note", Kind: value.KindString},
	}, "sku")
	tbl := storage.NewTable(def)
	if err := tbl.CreateIndex("sku"); err != nil {
		t.Fatal(err)
	}
	rows := []storage.Row{
		{value.NewString("P1"), value.NewMoney(9950, "USD"),
			value.NewTime(mustParseTime(t, "2001-05-21")), value.Days(2, value.BusinessDays),
			value.NewBool(true), value.NewFloat(0.75), value.Null},
		{value.NewString("P2"), value.NewMoney(350, "FRF"),
			value.NewTime(mustParseTime(t, "2001-05-22")), value.Days(1, value.CalendarDays),
			value.NewBool(false), value.NewFloat(-1.5), value.NewString("backorder")},
	}
	for _, r := range rows {
		if _, err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func mustParseTime(t *testing.T, s string) time.Time {
	t.Helper()
	v, err := value.Parse(value.KindTime, s)
	if err != nil {
		t.Fatal(err)
	}
	return v.Time()
}

func TestDiscoveryAndFetchRoundTrip(t *testing.T) {
	srv := NewServer()
	srv.PublishTable(quotesTable(t), "sku")
	hs := httptest.NewServer(srv)
	defer hs.Close()

	c := Dial(hs.URL, "")
	if !c.Healthy(context.Background()) {
		t.Fatal("healthz failed")
	}
	sources, err := c.Tables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 1 {
		t.Fatalf("sources = %d", len(sources))
	}
	src := sources[0]
	def := src.Schema()
	if def.Name != "quotes" || len(def.Columns) != 7 || def.Key[0] != "sku" {
		t.Fatalf("schema = %v", def)
	}
	if !src.Capabilities().CanPush("sku") || !src.Capabilities().Volatile {
		t.Errorf("capabilities = %+v", src.Capabilities())
	}
	rows, err := src.Fetch(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every kind survives the trip.
	byKey := map[string]storage.Row{}
	for _, r := range rows {
		byKey[r[0].Str()] = r
	}
	p1 := byKey["P1"]
	if m, cur := p1[1].Money(); m != 9950 || cur != "USD" {
		t.Errorf("money = %d %s", m, cur)
	}
	if p1[2].Time().Year() != 2001 {
		t.Errorf("time = %v", p1[2])
	}
	if d, sem := p1[3].Duration(); sem != value.BusinessDays || d.Hours() != 48 {
		t.Errorf("duration = %v %v", d, sem)
	}
	if !p1[4].Bool() || p1[5].Float() != 0.75 || !p1[6].IsNull() {
		t.Errorf("bool/float/null = %v", p1)
	}
	p2 := byKey["P2"]
	if p2[5].Float() != -1.5 || p2[6].Str() != "backorder" {
		t.Errorf("p2 = %v", p2)
	}
}

func TestRemotePushdown(t *testing.T) {
	tbl := quotesTable(t)
	srv := NewServer()
	erp := wrapper.NewERPSource("quotes", tbl, "sku")
	srv.Publish(erp)
	hs := httptest.NewServer(srv)
	defer hs.Close()
	sources, err := Dial(hs.URL, "").Tables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sources[0].Fetch(context.Background(),
		[]wrapper.Filter{{Column: "sku", Value: value.NewString("P2")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Str() != "P2" {
		t.Fatalf("pushed fetch = %v", rows)
	}
	// Non-pushable filters still apply client-side.
	rows, err = sources[0].Fetch(context.Background(),
		[]wrapper.Filter{{Column: "note", Value: value.NewString("backorder")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Str() != "P2" {
		t.Fatalf("client-side filter = %v", rows)
	}
}

func TestBearerToken(t *testing.T) {
	srv := NewServer()
	srv.Token = "sesame"
	srv.PublishTable(quotesTable(t))
	hs := httptest.NewServer(srv)
	defer hs.Close()
	if Dial(hs.URL, "").Healthy(context.Background()) {
		t.Error("unauthenticated health check should fail")
	}
	if _, err := Dial(hs.URL, "wrong").Tables(context.Background()); err == nil {
		t.Error("wrong token should fail")
	}
	c := Dial(hs.URL, "sesame")
	if !c.Healthy(context.Background()) {
		t.Error("token client should pass")
	}
	if _, err := c.Tables(context.Background()); err != nil {
		t.Errorf("tables with token: %v", err)
	}
}

func TestServerErrors(t *testing.T) {
	srv := NewServer()
	srv.PublishTable(quotesTable(t))
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := Dial(hs.URL, "")
	// Unknown table.
	s := &Source{client: c, def: schema.MustTable("ghost", []schema.Column{
		{Name: "x", Kind: value.KindInt},
	})}
	if _, err := s.Fetch(context.Background(), nil); err == nil {
		t.Error("fetch of unknown table should fail")
	}
	// Unreachable server.
	dead := Dial("http://127.0.0.1:1", "")
	if dead.Healthy(context.Background()) {
		t.Error("dead server healthy")
	}
	if _, err := dead.Tables(context.Background()); err == nil {
		t.Error("dead server tables should fail")
	}
}

// TestFederationOverTheWire is the headline: two enterprises publish
// their tables over HTTP; a third party federates them and runs one
// query spanning both, with live updates visible on the next query.
func TestFederationOverTheWire(t *testing.T) {
	// Enterprise A.
	tblA := quotesTable(t)
	srvA := NewServer()
	srvA.PublishTable(tblA, "sku")
	hsA := httptest.NewServer(srvA)
	defer hsA.Close()
	// Enterprise B, same schema, different rows.
	defB := tblA.Def().Clone("quotes")
	tblB := storage.NewTable(defB)
	if _, err := tblB.Insert(storage.Row{
		value.NewString("P9"), value.NewMoney(100, "USD"),
		value.Null, value.Null, value.NewBool(false), value.NewFloat(1), value.Null,
	}); err != nil {
		t.Fatal(err)
	}
	srvB := NewServer()
	srvB.PublishTable(tblB)
	hsB := httptest.NewServer(srvB)
	defer hsB.Close()

	fed := federation.New(federation.NewAgoric())
	ctx := context.Background()
	var frags []*federation.Fragment
	for i, url := range []string{hsA.URL, hsB.URL} {
		sources, err := Dial(url, "").Tables(ctx)
		if err != nil {
			t.Fatal(err)
		}
		site := federation.NewSite(url)
		if err := fed.AddSite(site); err != nil {
			t.Fatal(err)
		}
		site.AddSource(sources[0])
		frags = append(frags, federation.NewFragment(
			map[int]string{0: "ent-a", 1: "ent-b"}[i], nil, site))
	}
	if _, err := fed.DefineTable(tblA.Def().Clone("quotes"), frags...); err != nil {
		t.Fatal(err)
	}
	res, err := fed.Query(ctx, "SELECT COUNT(*) FROM quotes")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("federated count = %v", res.Rows[0][0])
	}
	// Enterprise A updates a quote; the next federated query sees it.
	id, row, err := tblA.GetByKey(value.NewString("P1"))
	if err != nil {
		t.Fatal(err)
	}
	row[1] = value.NewMoney(12345, "USD")
	if err := tblA.Update(id, row); err != nil {
		t.Fatal(err)
	}
	res, err = fed.Query(ctx, "SELECT price FROM quotes WHERE sku = 'P1'")
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := res.Rows[0][0].Money(); m != 12345 {
		t.Errorf("live update invisible over the wire: %v", res.Rows[0][0])
	}
}
