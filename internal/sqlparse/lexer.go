// Package sqlparse implements the lexer and parser for the engine's
// object-relational SQL dialect (paper, Characteristic 6: "any serious
// content integration solution must support a query language" and it must
// be the standard one). The dialect is a practical SQL subset extended
// with the text-search predicates the paper requires: CONTAINS, FUZZY and
// SYNONYM matching (Characteristic 7).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // ( ) , . * = <> < <= > >= + - / %
)

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind TokenKind
	Text string // keywords are uppercased; identifiers keep their case
	Pos  int
}

// keywords of the dialect. Membership decides TokKeyword vs TokIdent.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"AS": true, "JOIN": true, "INNER": true, "LEFT": true, "OUTER": true,
	"ON": true, "AND": true, "OR": true, "NOT": true, "NULL": true,
	"TRUE": true, "FALSE": true, "IN": true, "BETWEEN": true,
	"LIKE": true, "IS": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true,
	"CREATE": true, "TABLE": true, "PRIMARY": true, "KEY": true,
	"CONTAINS": true, "FUZZY": true, "SYNONYM": true, "OF": true,
	"MATCHES": true, "UNION": true, "ALL": true,
	"EXPLAIN": true, "ANALYZE": true,
}

// Lex tokenizes a SQL statement. It returns a descriptive error carrying
// the byte offset of the offending character.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && (isIdentRune(rune(input[i]))) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{TokKeyword, up, start})
			} else {
				toks = append(toks, Token{TokIdent, word, start})
			}
		case unicode.IsDigit(c):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			// Exponent suffix (1e-07, 2.5E3): consumed only when a
			// well-formed "[eE][+-]?digits" follows, so "1e" stays a
			// number then an identifier.
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && unicode.IsDigit(rune(input[j])) {
					for j < n && unicode.IsDigit(rune(input[j])) {
						j++
					}
					i = j
				}
			}
			toks = append(toks, Token{TokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", start)
			}
			toks = append(toks, Token{TokString, b.String(), start})
		case c == '"':
			// Quoted identifier.
			start := i
			i++
			j := strings.IndexByte(input[i:], '"')
			if j < 0 {
				return nil, fmt.Errorf("sqlparse: unterminated quoted identifier at offset %d", start)
			}
			if j == 0 {
				return nil, fmt.Errorf("sqlparse: empty quoted identifier at offset %d", start)
			}
			toks = append(toks, Token{TokIdent, input[i : i+j], start})
			i += j + 1
		case strings.ContainsRune("(),.*=+-/%", c):
			toks = append(toks, Token{TokSymbol, string(c), i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, Token{TokSymbol, input[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, Token{TokSymbol, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokSymbol, ">=", i})
				i += 2
			} else {
				toks = append(toks, Token{TokSymbol, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokSymbol, "<>", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sqlparse: unexpected %q at offset %d", c, i)
			}
		default:
			return nil, fmt.Errorf("sqlparse: unexpected %q at offset %d", c, i)
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

// Identifiers are ASCII-only. The lexer walks bytes, so a byte ≥ 0x80
// would be misread as its Latin-1 rune (0xD4 ⇒ 'Ô', a letter) and then
// mangled to U+FFFD by the parser's case folding — accepting input the
// printer cannot round-trip.
func isIdentStart(r rune) bool {
	return r == '_' || (r < 0x80 && unicode.IsLetter(r))
}

func isIdentRune(r rune) bool {
	return r == '_' || (r < 0x80 && (unicode.IsLetter(r) || unicode.IsDigit(r)))
}
