package transform

import (
	"fmt"
	"strings"

	"cohera/internal/plan"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// Discrepancy records one row a pipeline could not transform, with enough
// context for a content manager to repair it.
type Discrepancy struct {
	// RowIndex is the position of the offending row in the input batch.
	RowIndex int
	// Column is the target column whose step failed.
	Column string
	// Value is the offending source value rendered as text.
	Value string
	// Err is the underlying failure.
	Err error
}

func (d Discrepancy) String() string {
	return fmt.Sprintf("row %d, column %q, value %q: %v", d.RowIndex, d.Column, d.Value, d.Err)
}

// Pipeline transforms rows from a source schema to a target schema.
type Pipeline struct {
	src, dst *schema.Table
	steps    []Step
	// fixes holds fix-by-example repairs: target column → bad text →
	// replacement value.
	fixes map[string]map[string]value.Value
}

// NewPipeline creates an empty pipeline between two schemas.
func NewPipeline(src, dst *schema.Table) *Pipeline {
	return &Pipeline{src: src, dst: dst, fixes: make(map[string]map[string]value.Value)}
}

// Source returns the input schema.
func (p *Pipeline) Source() *schema.Table { return p.src }

// Target returns the output schema.
func (p *Pipeline) Target() *schema.Table { return p.dst }

// Add appends a step, validating its target column exists. Later steps
// for the same target override earlier ones (content managers iterate).
func (p *Pipeline) Add(steps ...Step) error {
	for _, s := range steps {
		if p.dst.ColumnIndex(s.Target()) < 0 {
			return fmt.Errorf("transform: target schema %q has no column %q", p.dst.Name, s.Target())
		}
		p.steps = append(p.steps, s)
	}
	return nil
}

// MustAdd is Add panicking on error, for statically known pipelines.
func (p *Pipeline) MustAdd(steps ...Step) {
	if err := p.Add(steps...); err != nil {
		panic(err)
	}
}

// AutoMap adds Copy steps for every target column that has an identically
// named source column of the same kind — the drag-and-drop default.
func (p *Pipeline) AutoMap() {
	for _, dc := range p.dst.Columns {
		if sc, ok := p.src.Column(dc.Name); ok && sc.Kind == dc.Kind {
			p.steps = append(p.steps, Copy{To: dc.Name, From: sc.Name})
		}
	}
}

// FixByExample installs a repair: whenever the step for column would
// produce an error and the offending source text equals badText, use
// replacement instead. This is the programmatic form of the Workbench's
// guided fixing.
func (p *Pipeline) FixByExample(column, badText string, replacement value.Value) {
	col := strings.ToLower(column)
	if p.fixes[col] == nil {
		p.fixes[col] = make(map[string]value.Value)
	}
	p.fixes[col][badText] = replacement
}

// StepCount returns the number of installed steps.
func (p *Pipeline) StepCount() int { return len(p.steps) }

// Run transforms a batch. Rows whose steps all succeed and that validate
// against the target schema are returned; failures become discrepancies.
func (p *Pipeline) Run(rows []storage.Row) ([]storage.Row, []Discrepancy) {
	var out []storage.Row
	var disc []Discrepancy
	// Resolve the effective step per target column (last wins), keeping
	// target-column order stable.
	effective := make(map[string]Step, len(p.steps))
	for _, s := range p.steps {
		effective[strings.ToLower(s.Target())] = s
	}
	srcNames := p.src.ColumnNames()
	for ri, row := range rows {
		if len(row) != len(p.src.Columns) {
			disc = append(disc, Discrepancy{RowIndex: ri, Err: fmt.Errorf("transform: row width %d != source width %d", len(row), len(p.src.Columns))})
			continue
		}
		ctx := &RowContext{Def: p.src, Row: row, Env: plan.NewRowEnv(srcNames, row)}
		outRow := make(storage.Row, len(p.dst.Columns))
		for i := range outRow {
			outRow[i] = value.Null
		}
		failed := false
		for di, dc := range p.dst.Columns {
			step, ok := effective[strings.ToLower(dc.Name)]
			if !ok {
				continue
			}
			v, err := step.Apply(ctx)
			if err == nil && !v.IsNull() && v.Kind() != dc.Kind && !(dc.Kind == value.KindFloat && v.Kind() == value.KindInt) {
				// Try the conventional coercion before declaring failure.
				if cv, cerr := value.Coerce(v, dc.Kind); cerr == nil {
					v = cv
				} else {
					err = fmt.Errorf("transform: column %q wants %s, got %s", dc.Name, dc.Kind, v.Kind())
				}
			}
			if err != nil {
				// Fix-by-example repair?
				if fix, ok := p.lookupFix(dc.Name, ctx, step); ok {
					outRow[di] = fix
					continue
				}
				disc = append(disc, Discrepancy{
					RowIndex: ri, Column: dc.Name,
					Value: sourceText(ctx, step), Err: err,
				})
				failed = true
				break
			}
			outRow[di] = v
		}
		if failed {
			continue
		}
		if err := p.dst.Validate(outRow); err != nil {
			disc = append(disc, Discrepancy{RowIndex: ri, Err: err})
			continue
		}
		out = append(out, outRow)
	}
	return out, disc
}

func (p *Pipeline) lookupFix(column string, ctx *RowContext, step Step) (value.Value, bool) {
	fixes := p.fixes[strings.ToLower(column)]
	if fixes == nil {
		return value.Null, false
	}
	v, ok := fixes[sourceText(ctx, step)]
	return v, ok
}

// sourceText renders the source value a step consumed, for discrepancy
// reports and fix matching. Steps with a single From column report that
// column; others report the whole row.
func sourceText(ctx *RowContext, step Step) string {
	from := ""
	switch s := step.(type) {
	case Copy:
		from = s.From
	case Currency:
		from = s.From
	case Delivery:
		from = s.From
	case Lookup:
		from = s.From
	case Canonicalize:
		from = s.From
	}
	if from != "" {
		if v, err := ctx.Get(from); err == nil {
			return v.String()
		}
	}
	parts := make([]string, len(ctx.Row))
	for i, v := range ctx.Row {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

// Compose runs q after p: p's target schema must equal q's source schema.
// The result is itself a Pipeline-shaped workflow (multi-step
// transformation workflows, per the paper).
type Workflow struct {
	stages []*Pipeline
}

// Compose chains pipelines into a workflow, validating stage boundaries.
func Compose(stages ...*Pipeline) (*Workflow, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("transform: empty workflow")
	}
	for i := 1; i < len(stages); i++ {
		prev, cur := stages[i-1].dst, stages[i].src
		if prev != cur && prev.Name != cur.Name {
			return nil, fmt.Errorf("transform: stage %d source %q != stage %d target %q",
				i, cur.Name, i-1, prev.Name)
		}
	}
	return &Workflow{stages: stages}, nil
}

// Run pushes a batch through every stage, accumulating discrepancies.
// Discrepancy row indexes refer to each stage's input batch.
func (w *Workflow) Run(rows []storage.Row) ([]storage.Row, []Discrepancy) {
	var all []Discrepancy
	cur := rows
	for _, stage := range w.stages {
		var disc []Discrepancy
		cur, disc = stage.Run(cur)
		all = append(all, disc...)
	}
	return cur, all
}
