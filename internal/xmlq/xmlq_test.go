package xmlq

import (
	"strings"
	"testing"

	"cohera/internal/value"
)

const catalogXML = `<?xml version="1.0"?>
<catalog vendor="Acme">
  <product sku="P1" featured="yes">
    <name>Cordless Drill</name>
    <price currency="USD">99.50</price>
    <stock>10</stock>
  </product>
  <product sku="P2">
    <name>India Ink</name>
    <price currency="FRF">24.00</price>
    <stock>200</stock>
  </product>
  <notes>Ships <b>fast</b></notes>
</catalog>`

func parse(t *testing.T) *Node {
	t.Helper()
	doc, err := ParseXMLString(catalogXML)
	if err != nil {
		t.Fatalf("ParseXMLString: %v", err)
	}
	return doc
}

func TestParseAndInnerText(t *testing.T) {
	doc := parse(t)
	els := doc.Elements()
	if len(els) != 1 || els[0].Name != "catalog" {
		t.Fatalf("root = %+v", els)
	}
	cat := els[0]
	if cat.Attr("vendor") != "Acme" {
		t.Errorf("vendor = %q", cat.Attr("vendor"))
	}
	if got := len(cat.Elements()); got != 3 {
		t.Errorf("children = %d", got)
	}
	notes, _ := XPathOne(doc, "/catalog/notes")
	if notes.InnerText() != "Ships fast" {
		t.Errorf("mixed content InnerText = %q", notes.InnerText())
	}
}

func TestXPathSteps(t *testing.T) {
	doc := parse(t)
	cases := []struct {
		path string
		n    int
	}{
		{"/catalog/product", 2},
		{"//product", 2},
		{"//name", 2},
		{"/catalog/*", 3},
		{"/catalog/product[1]", 1},
		{"/catalog/product[@sku='P2']", 1},
		{"/catalog/product[@featured]", 1},
		{"/catalog/product[name='India Ink']", 1},
		{"/catalog/product/price", 2},
		{"/catalog/ghost", 0},
		{"/catalog/product[5]", 0},
		{"/catalog/product[@sku='ZZ']", 0},
	}
	for _, c := range cases {
		ms, err := XPath(doc, c.path)
		if err != nil {
			t.Errorf("XPath(%q): %v", c.path, err)
			continue
		}
		if len(ms) != c.n {
			t.Errorf("XPath(%q) = %d matches, want %d", c.path, len(ms), c.n)
		}
	}
}

func TestXPathRelativeAndAttr(t *testing.T) {
	doc := parse(t)
	p2, err := XPathOne(doc, "/catalog/product[@sku='P2']")
	if err != nil || p2 == nil {
		t.Fatalf("p2 = %v, %v", p2, err)
	}
	if s, _ := XPathString(p2, "name"); s != "India Ink" {
		t.Errorf("relative name = %q", s)
	}
	if s, _ := XPathString(p2, "price/@currency"); s != "FRF" {
		t.Errorf("@currency = %q", s)
	}
	if s, _ := XPathString(p2, "name/text()"); s != "India Ink" {
		t.Errorf("text() = %q", s)
	}
	// Parent and self steps.
	if up, _ := XPathOne(p2, ".."); up == nil || up.Name != "catalog" {
		t.Error(".. failed")
	}
	if self, _ := XPathOne(p2, "."); self != p2 {
		t.Error(". failed")
	}
	// From a child, absolute path still resolves from document root.
	if ms, _ := XPath(p2, "/catalog/product"); len(ms) != 2 {
		t.Error("absolute path from inner node failed")
	}
}

func TestXPathErrors(t *testing.T) {
	doc := parse(t)
	for _, bad := range []string{
		"", "/catalog/product[", "/catalog/product[0]",
		"/catalog/product[@]", "/catalog/product[name=unquoted]",
		"/catalog/product[foo<3]", "/@", "//product[xyz]",
	} {
		if _, err := XPath(doc, bad); err == nil {
			t.Errorf("XPath(%q) should fail", bad)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	doc := parse(t)
	s := doc.String()
	for _, frag := range []string{`vendor="Acme"`, "<name>Cordless Drill</name>", `sku="P1"`} {
		if !strings.Contains(s, frag) {
			t.Errorf("serialized %q missing %q", s, frag)
		}
	}
	// Re-parse what we serialized.
	doc2, err := ParseXMLString(s)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if doc2.String() != s {
		t.Error("serialization not stable")
	}
	// Escaping.
	d := &Node{}
	el := d.AppendChild("x")
	el.AppendText("a<b&c")
	el.SetAttr("k", `v"1`)
	out := d.String()
	if !strings.Contains(out, "a&lt;b&amp;c") {
		t.Errorf("text escaping: %q", out)
	}
	// Empty element self-closes.
	d2 := &Node{}
	d2.AppendChild("empty")
	if d2.String() != "<empty/>" {
		t.Errorf("empty element = %q", d2.String())
	}
}

func TestTemplateApply(t *testing.T) {
	doc := parse(t)
	tpl := Template{
		Root:    "offers",
		ForEach: "//product",
		Element: "offer",
		Fields: []TemplateField{
			{Name: "id", Path: "@sku", Attr: true},
			{Name: "title", Path: "name"},
			{Name: "amount", Path: "price"},
			{Name: "ccy", Path: "price/@currency"},
		},
	}
	out, err := tpl.Apply(doc)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	s := out.String()
	for _, frag := range []string{
		"<offers>", `<offer id="P1">`, "<title>Cordless Drill</title>",
		"<ccy>FRF</ccy>", "<amount>24.00</amount>",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("template output %q missing %q", s, frag)
		}
	}
	// Validation.
	if _, err := (Template{}).Apply(doc); err == nil {
		t.Error("empty template should fail")
	}
	if _, err := (Template{Root: "r", Element: "e", ForEach: "//["}).Apply(doc); err == nil {
		t.Error("bad ForEach should fail")
	}
}

func TestResultToXML(t *testing.T) {
	cols := []string{"sku", "unit price", "qty"}
	rows := [][]value.Value{
		{value.NewString("P1"), value.NewMoney(9950, "USD"), value.NewInt(10)},
		{value.NewString("P2"), value.Null, value.NewInt(0)},
	}
	doc, err := ResultToXML(cols, rows, "parts", "part")
	if err != nil {
		t.Fatalf("ResultToXML: %v", err)
	}
	s := doc.String()
	for _, frag := range []string{
		"<parts>", "<part>", "<sku>P1</sku>", "<unit_price>99.50 USD</unit_price>",
		`<unit_price null="true"/>`, "<qty>0</qty>",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("xml %q missing %q", s, frag)
		}
	}
	// Defaults and width checking.
	if _, err := ResultToXML([]string{"a"}, [][]value.Value{{value.NewInt(1), value.NewInt(2)}}, "", ""); err == nil {
		t.Error("width mismatch should fail")
	}
	doc, _ = ResultToXML([]string{"9col"}, [][]value.Value{{value.NewInt(1)}}, "", "")
	if !strings.Contains(doc.String(), "<c9col>") {
		t.Errorf("sanitized name: %s", doc.String())
	}
}
