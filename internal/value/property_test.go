package value

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property: money survives a render→parse round trip for every currency
// the table knows.
func TestMoneyRoundTripProperty(t *testing.T) {
	currencies := []string{"USD", "EUR", "FRF", "GBP", "JPY", "CAD"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		amt := int64(rng.Intn(2_000_000) - 1_000_000)
		cur := currencies[rng.Intn(len(currencies))]
		v := NewMoney(amt, cur)
		back, err := ParseMoney(v.String())
		if err != nil {
			return false
		}
		return back.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: currency conversion round trips within one minor unit per
// leg (rounding), and identity conversion is exact.
func TestCurrencyConversionProperty(t *testing.T) {
	ct := DefaultCurrencyTable()
	currencies := ct.Currencies()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		amt := int64(rng.Intn(1_000_000))
		from := currencies[rng.Intn(len(currencies))]
		to := currencies[rng.Intn(len(currencies))]
		v := NewMoney(amt, from)
		there, err := ct.Convert(v, to)
		if err != nil {
			return false
		}
		back, err := ct.Convert(there, from)
		if err != nil {
			return false
		}
		got, _ := back.Money()
		diff := got - amt
		if diff < 0 {
			diff = -diff
		}
		// Each leg rounds to a minor unit; the bound scales with the
		// rate ratio (JPY has large minor-unit counts per USD cent).
		rate1, _ := ct.Rate(from)
		rate2, _ := ct.Rate(to)
		bound := int64(rate2/rate1) + int64(rate1/rate2) + 2
		return diff <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: delivery normalization never shortens a promise and calendar
// promises are fixed points, from any weekday.
func TestNormalizeDeliveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		days := rng.Intn(14)
		sems := []DurationSemantics{CalendarDays, BusinessDays, NoSundayDays}
		sem := sems[rng.Intn(len(sems))]
		from := time.Date(2001, 5, 1+rng.Intn(28), 9, 0, 0, 0, time.UTC)
		v := Days(days, sem)
		out, err := NormalizeDelivery(v, from)
		if err != nil {
			return false
		}
		d, gotSem := out.Duration()
		if gotSem != CalendarDays {
			return false
		}
		base := time.Duration(days) * 24 * time.Hour
		if sem == CalendarDays {
			return d == base
		}
		return d >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
