package obs

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"
)

// HTTP headers carrying span identity across process boundaries: a
// coordinator's remote fetch arrives at the serving coherad with its
// trace intact, so one federated query yields one tree spanning every
// process it touched.
const (
	// TraceHeader carries the 32-hex-character trace identifier.
	TraceHeader = "X-Cohera-Trace-Id"
	// SpanHeader carries the caller's span identifier, which becomes
	// the parent of the first span the callee opens.
	SpanHeader = "X-Cohera-Span-Id"
)

// SpanContext is the portable identity of a span: enough to parent
// children locally or across a process boundary.
type SpanContext struct {
	TraceID string
	SpanID  string
}

type spanCtxKey struct{}

// ContextWith returns ctx carrying sc as the current span identity.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// FromContext extracts the current span identity.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok
}

// InjectHeaders copies the current span identity from ctx into HTTP
// headers (no-op when ctx carries no span).
func InjectHeaders(ctx context.Context, h http.Header) {
	if sc, ok := FromContext(ctx); ok {
		h.Set(TraceHeader, sc.TraceID)
		h.Set(SpanHeader, sc.SpanID)
	}
}

// SpanContextFromHeaders reads propagated span identity from HTTP
// headers.
func SpanContextFromHeaders(h http.Header) (SpanContext, bool) {
	tid := h.Get(TraceHeader)
	if tid == "" {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: tid, SpanID: h.Get(SpanHeader)}, true
}

// Attr is one span attribute; a small sorted slice beats a map at the
// sizes spans carry (a handful of pairs).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation within a trace. A span is owned by the
// goroutine that started it until End, which records an immutable copy
// into the tracer; the struct itself is not safe for concurrent use.
type Span struct {
	TraceID  string        `json:"trace_id"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Err      string        `json:"error,omitempty"`

	tracer *Tracer
	ended  bool
}

// Set attaches (or replaces) an attribute.
func (s *Span) Set(key, value string) {
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetErr records a failure on the span (nil clears nothing and is safe
// to pass unconditionally).
func (s *Span) SetErr(err error) {
	if err != nil {
		s.Err = err.Error()
	}
}

// End stamps the duration and records the span. Safe to call once;
// later calls are ignored.
func (s *Span) End() {
	if s.ended || s.tracer == nil {
		return
	}
	s.ended = true
	s.Duration = time.Since(s.Start)
	s.tracer.record(*s)
}

// StartSpan opens a span named name as a child of the span identity in
// ctx (or as a new root when ctx carries none) and returns ctx updated
// so nested operations parent under it. Spans record into the default
// tracer on End.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{Name: name, SpanID: NewSpanID(), Start: time.Now(), tracer: defaultTracer}
	if parent, ok := FromContext(ctx); ok {
		sp.TraceID, sp.ParentID = parent.TraceID, parent.SpanID
	} else {
		sp.TraceID = NewTraceID()
	}
	return ContextWith(ctx, SpanContext{TraceID: sp.TraceID, SpanID: sp.SpanID}), sp
}

// maxSpansPerTrace bounds one trace's memory; pathological fan-out
// drops the overflow rather than the process.
const maxSpansPerTrace = 1024

// Tracer is a bounded in-memory store of finished spans, grouped by
// trace. When more than max traces are live, the oldest trace evicts
// whole — partial trees are worse than absent ones.
type Tracer struct {
	max int

	mu     sync.Mutex
	traces map[string][]Span
	order  []string // insertion order, for FIFO eviction
}

// NewTracer returns a tracer retaining at most maxTraces traces
// (≤0 means 512).
func NewTracer(maxTraces int) *Tracer {
	if maxTraces <= 0 {
		maxTraces = 512
	}
	return &Tracer{max: maxTraces, traces: make(map[string][]Span)}
}

func (t *Tracer) record(sp Span) {
	sp.tracer = nil
	t.mu.Lock()
	defer t.mu.Unlock()
	spans, live := t.traces[sp.TraceID]
	if !live {
		t.order = append(t.order, sp.TraceID)
		for len(t.order) > t.max {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
	}
	if len(spans) < maxSpansPerTrace {
		t.traces[sp.TraceID] = append(spans, sp)
	}
}

// Spans returns the finished spans of a trace, oldest start first
// (nil when the trace is unknown or evicted).
func (t *Tracer) Spans(traceID string) []Span {
	t.mu.Lock()
	out := append([]Span(nil), t.traces[traceID]...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceIDs lists retained traces, oldest first.
func (t *Tracer) TraceIDs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// Len reports how many traces are retained.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// SpanNode is a span with its children, the tree form served by
// /debug/trace/{id}.
type SpanNode struct {
	Span
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree assembles a trace's spans into root trees. Spans whose parent
// was dropped (overflow, cross-process parent not recorded here)
// surface as roots so nothing disappears.
func (t *Tracer) Tree(traceID string) []*SpanNode {
	spans := t.Spans(traceID)
	if len(spans) == 0 {
		return nil
	}
	nodes := make(map[string]*SpanNode, len(spans))
	for i := range spans {
		nodes[spans[i].SpanID] = &SpanNode{Span: spans[i]}
	}
	var roots []*SpanNode
	for _, sp := range spans {
		n := nodes[sp.SpanID]
		if parent, ok := nodes[sp.ParentID]; ok && sp.ParentID != sp.SpanID {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}
