// Package analysis is the project's static-analysis engine: a
// zero-dependency (stdlib go/ast + go/parser + go/types) driver that
// loads every package in the module, type-checks it, and runs a suite of
// project-specific analyzers tuned to the real concurrency and
// error-handling hazards of the federation engine.
//
// The analyzers:
//
//   - locksafe:  a method on a struct with a sync.Mutex/RWMutex field
//     reads or writes a mutex-guarded sibling field without acquiring
//     the mutex on any path. Fields declared after the mutex are
//     guarded (the repo's layout convention); fields that are
//     themselves synchronization primitives (sync.Once, WaitGroup,
//     atomics, channels) are exempt, as are methods whose name ends in
//     "Locked" (documented as requiring the caller to hold the lock).
//   - errdrop:   an error result is discarded — assigned to _ or
//     dropped by a bare call statement. Deliberate drops must carry a
//     //lint:ignore errdrop <reason> directive.
//   - ctxleak:   context.Background()/context.TODO() is created inside
//     library call paths instead of threading the caller's context.
//   - sleepsync: time.Sleep in non-test code — sleeping is timing, not
//     synchronization; use a select on ctx.Done()/time.After or a real
//     synchronization primitive.
//   - bodyclose: an *http.Response obtained in internal/wrapper or
//     internal/remote whose Body is never closed.
//   - streamclose: a storage.RowStream obtained in the streaming query
//     layers (storage, exec, wrapper, remote, federation, bench) that
//     is never Closed and does not escape — leaked streams pin pooled
//     batches, producer goroutines and remote response bodies.
//   - lockorder: whole-program lock-acquisition graph over named
//     sync.Mutex/RWMutex locks — an edge A -> B is recorded whenever B
//     is acquired while A is held, interprocedurally and through
//     callbacks run under a lock (the journal Group.Execute pattern).
//     Cycles are potential deadlocks and always fail; the full edge
//     set is diffed against the blessed dump in lockorder.golden so a
//     new ordering is reviewed (coheralint -write-lockorder), never
//     silently adopted. errdrop also covers the related write-path
//     hazard: `defer f.Close()` on a file opened for writing swallows
//     the flush error — silent data loss on WAL-style paths.
//   - goroleak: every `go` statement must be joined — its body (or the
//     same-package function it calls) must reach a WaitGroup
//     Done/Wait, a stop/done/quit channel receive, a select on
//     ctx.Done(), a `for range` over a channel, or a process exit.
//     Unjoined goroutines outlive their owners; targets declared
//     outside the package are reported for explicit annotation.
//   - atomicmix: a struct field accessed both through sync/atomic and
//     by plain loads/stores (the mix is a data race the race detector
//     only catches on schedules that run), and unconditional channel
//     sends in library code that can block forever when the receiver
//     is gone — sends must sit in a select with a ctx.Done()/stop
//     case or a default, unless the function made the channel itself.
//
// Diagnostics are keyed file:line:col and can be suppressed with a
// directive comment on the same line or the line directly above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
// The analyzer name "*" suppresses every analyzer for that line.
//
// cmd/coheralint is the command-line driver; scripts/check.sh wires it
// into the repo's verification gate together with go vet and the race
// detector.
package analysis
