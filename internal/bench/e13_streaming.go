package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"cohera/internal/federation"
	"cohera/internal/schema"
	"cohera/internal/sqlparse"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// E13Streaming is the streaming-vs-materialized micro-benchmark: the
// same full scan answered once through Federation.Query (the gather
// buffers every fragment's rows before returning) and once through
// Federation.QueryStream drained row by row. For each (total rows,
// fragment count) cell it records the median wall clock and the peak
// rows resident in the engine: the whole result set for the
// materialized path, the scatter-gather fan-in high-water mark
// (QueryTrace.PeakBufferedRows) for the streaming path. The claim under
// test is that the streaming bound is O(batch × fragments) — flat in
// the total row count.
func E13Streaming(cfg Config) (Table, error) {
	rowCounts := []int{1_000, 100_000, 1_000_000}
	fragCounts := []int{2, 8}
	reps := 3
	if cfg.Quick {
		rowCounts = []int{1_000, 10_000}
		fragCounts = []int{2}
		reps = 1
	}
	t := Table{
		ID:      "E13",
		Title:   "streaming vs materialized scatter-gather: wall clock and peak resident rows",
		Headers: []string{"rows", "fragments", "mode", "median wall", "peak resident rows"},
		Notes:   "expected shape: materialized peak grows with the row count; streaming peak stays near batch x fragments at every scale",
	}

	ctx := context.Background()
	for _, frags := range fragCounts {
		for _, total := range rowCounts {
			fed, err := streamBenchFed(total, frags, cfg.Seed)
			if err != nil {
				return t, err
			}
			const sql = "SELECT sku, qty FROM items"

			matWall := make([]time.Duration, 0, reps)
			matPeak := 0
			for r := 0; r < reps; r++ {
				start := time.Now()
				res, _, err := fed.QueryTraced(ctx, sql)
				if err != nil {
					return t, fmt.Errorf("E13 materialized %dx%d: %w", total, frags, err)
				}
				matWall = append(matWall, time.Since(start))
				if len(res.Rows) != total {
					return t, fmt.Errorf("E13 materialized %dx%d: %d rows, want %d", total, frags, len(res.Rows), total)
				}
				matPeak = len(res.Rows)
			}

			strWall := make([]time.Duration, 0, reps)
			strPeak := 0
			for r := 0; r < reps; r++ {
				start := time.Now()
				st, trace, err := fed.QueryStream(ctx, sql)
				if err != nil {
					return t, fmt.Errorf("E13 stream open %dx%d: %w", total, frags, err)
				}
				n, err := drainStream(st)
				if err != nil {
					return t, fmt.Errorf("E13 stream drain %dx%d: %w", total, frags, err)
				}
				strWall = append(strWall, time.Since(start))
				if n != total {
					return t, fmt.Errorf("E13 stream %dx%d: %d rows, want %d", total, frags, n, total)
				}
				if trace.PeakBufferedRows > strPeak {
					strPeak = trace.PeakBufferedRows
				}
			}

			for _, m := range []struct {
				mode string
				wall time.Duration
				peak int
			}{
				{"materialized", medianDuration(matWall), matPeak},
				{"streaming", medianDuration(strWall), strPeak},
			} {
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", total),
					fmt.Sprintf("%d", frags),
					m.mode,
					fmt.Sprintf("%.2fms", float64(m.wall.Microseconds())/1000),
					fmt.Sprintf("%d", m.peak),
				})
			}
		}
	}
	return t, nil
}

// streamBenchFed builds an in-process federation of nFrags fragments
// sharded by hash over `total` synthetic catalog rows.
func streamBenchFed(total, nFrags int, seed int64) (*federation.Federation, error) {
	def := schema.MustTable("items", []schema.Column{
		{Name: "sku", Kind: value.KindString, NotNull: true},
		{Name: "shard", Kind: value.KindInt, NotNull: true},
		{Name: "qty", Kind: value.KindInt},
	}, "sku")

	fed := federation.New(federation.NewAgoric())
	frags := make([]*federation.Fragment, nFrags)
	for f := 0; f < nFrags; f++ {
		site := federation.NewSite(fmt.Sprintf("s%d", f))
		if err := fed.AddSite(site); err != nil {
			return nil, err
		}
		pred, err := sqlparse.ParseExpr(fmt.Sprintf("shard = %d", f))
		if err != nil {
			return nil, err
		}
		frags[f] = federation.NewFragment(fmt.Sprintf("f%d", f), pred, site)
	}
	if _, err := fed.DefineTable(def, frags...); err != nil {
		return nil, err
	}

	byFrag := make([][]storage.Row, nFrags)
	for i := 0; i < total; i++ {
		f := i % nFrags
		byFrag[f] = append(byFrag[f], storage.Row{
			value.NewString(fmt.Sprintf("P%07d", i)),
			value.NewInt(int64(f)),
			value.NewInt(int64((i*7 + int(seed)) % 500)),
		})
	}
	for f := 0; f < nFrags; f++ {
		if err := fed.LoadFragment("items", frags[f], byFrag[f]); err != nil {
			return nil, err
		}
	}
	return fed, nil
}

// drainStream pulls a stream to EOF without retaining rows, closing it
// on every path, and returns the row count.
func drainStream(st storage.RowStream) (int, error) {
	defer st.Close()
	n := 0
	for {
		if _, err := st.Next(); err != nil {
			if err == io.EOF {
				return n, nil
			}
			return n, err
		}
		n++
	}
}

// medianDuration returns the middle sample (lower median on ties).
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)/2]
}
