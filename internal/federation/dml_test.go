package federation

import (
	"context"
	"testing"
)

func TestFederatedInsertRouting(t *testing.T) {
	fed, fragEast, fragWest := twoFragFed(t)
	ctx := context.Background()
	// Routed by the region predicate to the east fragment.
	_, dr, err := fed.Exec(ctx,
		"INSERT INTO parts (sku, name, price, region) VALUES ('E9', 'new ink', 2.0, 'east')")
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if dr.Rows != 1 || len(dr.SkippedReplicas) != 0 {
		t.Fatalf("dml result = %+v", dr)
	}
	east := fragEast.Replicas()[0]
	if n := east.TableRows("parts"); n != 3 {
		t.Errorf("east rows = %d, want 3", n)
	}
	for _, w := range fragWest.Replicas() {
		if n := w.TableRows("parts"); n != 2 {
			t.Errorf("west replica got the east row: %d", n)
		}
	}
	// Readable through the federation immediately.
	res, err := fed.Query(ctx, "SELECT sku FROM parts WHERE sku = 'E9'")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("read back = %v, %v", res, err)
	}
}

func TestFederatedInsertReplicatesAllCopies(t *testing.T) {
	fed, _, fragWest := twoFragFed(t)
	ctx := context.Background()
	if _, dr, err := fed.Exec(ctx,
		"INSERT INTO parts (sku, name, price, region) VALUES ('W9', 'saw', 10.0, 'west')"); err != nil || dr.Rows != 1 {
		t.Fatalf("insert: %+v, %v", dr, err)
	}
	for _, s := range fragWest.Replicas() {
		if n := s.TableRows("parts"); n != 3 {
			t.Errorf("replica %s rows = %d, want 3", s.Name(), n)
		}
	}
}

func TestFederatedInsertSkipsDownReplica(t *testing.T) {
	fed, _, fragWest := twoFragFed(t)
	ctx := context.Background()
	down := fragWest.Replicas()[0]
	down.SetDown(true)
	_, dr, err := fed.Exec(ctx,
		"INSERT INTO parts (sku, name, price, region) VALUES ('W8', 'saw', 10.0, 'west')")
	if err != nil {
		t.Fatal(err)
	}
	if dr.Rows != 1 || len(dr.SkippedReplicas) != 1 {
		t.Fatalf("dml result = %+v", dr)
	}
	// The live replica has it; the down one missed it (reported).
	live := fragWest.Replicas()[1]
	if live.TableRows("parts") != 3 || down.TableRows("parts") != 2 {
		t.Errorf("rows: live=%d down=%d", live.TableRows("parts"), down.TableRows("parts"))
	}
	// All replicas down → error.
	fragWest.Replicas()[1].SetDown(true)
	if _, _, err := fed.Exec(ctx,
		"INSERT INTO parts (sku, name, price, region) VALUES ('W7', 'saw', 1.0, 'west')"); err == nil {
		t.Error("insert with no live replica should fail")
	}
}

func TestFederatedInsertDefaultFragment(t *testing.T) {
	fed, fragEast, _ := twoFragFed(t)
	ctx := context.Background()
	// A row matching no predicate homes in the first fragment.
	if _, dr, err := fed.Exec(ctx,
		"INSERT INTO parts (sku, name, price, region) VALUES ('N1', 'thing', 1.0, 'north')"); err != nil || dr.Rows != 1 {
		t.Fatalf("insert: %v", err)
	}
	if n := fragEast.Replicas()[0].TableRows("parts"); n != 3 {
		t.Errorf("default-routed rows = %d", n)
	}
}

func TestFederatedUpdateDelete(t *testing.T) {
	fed, _, fragWest := twoFragFed(t)
	ctx := context.Background()
	// Update prunes to the west fragment only.
	_, dr, err := fed.Exec(ctx, "UPDATE parts SET price = 100 WHERE region = 'west'")
	if err != nil {
		t.Fatal(err)
	}
	if dr.Rows != 2 {
		t.Errorf("updated = %+v", dr)
	}
	// Both replicas converged.
	for _, s := range fragWest.Replicas() {
		res, err := s.DB().Exec("SELECT COUNT(*) FROM parts WHERE price = 100")
		if err != nil || res.Rows[0][0].Int() != 2 {
			t.Errorf("replica %s not converged: %v, %v", s.Name(), res, err)
		}
	}
	// Delete across fragments.
	_, dr, err = fed.Exec(ctx, "DELETE FROM parts WHERE price >= 100")
	if err != nil {
		t.Fatal(err)
	}
	if dr.Rows != 3 { // W1, W2 (now 100) + forklift already 12000 → W1,W2 updated to 100 plus forklift? recompute below
		// The west rows became price=100 (2 rows); E rows are 3.5 and 1.2.
		// price >= 100 matches both west rows on the west fragment = 2.
		if dr.Rows != 2 {
			t.Errorf("deleted = %+v", dr)
		}
	}
	res, err := fed.Query(ctx, "SELECT COUNT(*) FROM parts")
	if err != nil || res.Rows[0][0].Int() != 2 {
		t.Errorf("remaining = %v, %v", res, err)
	}
}

func TestFederatedExecErrors(t *testing.T) {
	fed, _, _ := twoFragFed(t)
	ctx := context.Background()
	bad := []string{
		"garbage",
		"INSERT INTO ghost VALUES (1)",
		"INSERT INTO parts (ghost) VALUES (1)",
		"INSERT INTO parts (sku) VALUES (1, 2)",
		"INSERT INTO parts (name) VALUES ('no key')", // NOT NULL key
		"UPDATE ghost SET x = 1",
		"DELETE FROM ghost",
		"CREATE TABLE t (a TEXT)",
	}
	for _, sql := range bad {
		if _, _, err := fed.Exec(ctx, sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
	// SELECT through Exec delegates to Query.
	res, _, err := fed.Exec(ctx, "SELECT COUNT(*) FROM parts")
	if err != nil || res.Rows[0][0].Int() != 4 {
		t.Errorf("select via exec = %v, %v", res, err)
	}
}
