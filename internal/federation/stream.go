package federation

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cohera/internal/admission"
	"cohera/internal/exec"
	"cohera/internal/obs"
	"cohera/internal/plan"
	"cohera/internal/schema"
	"cohera/internal/sqlparse"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// The streaming scatter-gather. One producer goroutine per live
// fragment pulls its site's subquery stream and ships pooled row
// batches over a bounded channel; a single consumer (the caller's
// goroutine, inside RowStream.Next) merges them. The channel holds at
// most one batch per fragment, so coordinator memory is
// O(batchRows × fragments) regardless of result size, and a consumer
// that stops reading (LIMIT reached, Close) back-pressures every
// producer through the blocked send.

// fragMsg is one message from a fragment producer: either a batch of
// rows or the fragment's completion record (done=true), which is
// always the producer's last message.
type fragMsg struct {
	frag   *Fragment
	batch  *storage.Batch
	done   bool
	site   *Site // serving site (done messages of successful fragments)
	rows   int   // rows delivered to the fan-in, post-residual (done messages)
	pushed int   // rows the site shipped, pre-residual (done messages)
	width  int   // columns per shipped row (done messages)
	fail   int   // replicas tried and found down (done messages)
	stale  bool  // serving site had journaled intents pending (done messages)
	err    error // fragment failure (done messages)
}

// streamCounters tracks rows resident in the fan-in channel, and the
// high-water mark the bench harness reports.
type streamCounters struct {
	inflight atomic.Int64
	peak     atomic.Int64
}

func (c *streamCounters) add(n int64) {
	v := c.inflight.Add(n)
	for {
		p := c.peak.Load()
		if v <= p || c.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// scatter fans one global table's fragment subqueries out to producer
// goroutines and returns the fan-in channel. The channel is closed
// after every producer has sent its done message. canReplay permits
// mid-stream failover to the next replica — sound only when the
// consumer dedupes by primary key, since the replacement replica
// replays rows the failed stream already shipped.
func (f *Federation) scatter(ctx context.Context, gt *GlobalTable, push sqlparse.Expr, cols []string,
	limit int, batchRows int, canReplay bool, counters *streamCounters) (ch <-chan fragMsg, active, pruned int) {
	var frags []*Fragment
	for _, frag := range f.FragmentsOf(gt) {
		if frag.Predicate != nil && push != nil && disjoint(frag.Predicate, push) {
			pruned++
			continue
		}
		frags = append(frags, frag)
	}
	out := make(chan fragMsg, len(frags))
	var wg sync.WaitGroup
	for _, frag := range frags {
		wg.Add(1)
		go func(frag *Fragment) {
			defer wg.Done()
			f.pumpFragment(ctx, gt, frag, push, cols, limit, batchRows, canReplay, counters, out)
		}(frag)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, len(frags), pruned
}

// pumpFragment streams one fragment from its best available replica
// into the fan-in channel, failing over across replicas, and finishes
// with exactly one done message. Per replica, the fragment predicate is
// split against that site's advertised capabilities: the pushable part
// travels with the subquery, the residual (plus projection and limit
// when the site declined them) is fused here, before the rows enter
// the fan-in — so every fragment contributes uniformly filtered,
// uniformly projected rows no matter how capable its serving site was.
// limit, when ≥ 0, caps each site's scan at OFFSET+LIMIT rows; it is
// only pushed to a site that applies the entire predicate, since the
// first K rows of a partially filtered stream are not the first K of
// the filtered one.
func (f *Federation) pumpFragment(ctx context.Context, gt *GlobalTable, frag *Fragment,
	push sqlparse.Expr, cols []string, limit int, batchRows int, canReplay bool,
	counters *streamCounters, out chan<- fragMsg) {
	gctx, gsp := obs.StartSpan(ctx, "federation.gatherstream")
	gsp.Set("table", gt.Def.Name)
	gsp.Set("fragment", frag.ID)
	defer gsp.End()
	gctx, fstage := obs.StartStage(gctx, "fragment", gt.Def.Name+"/"+frag.ID)

	send := func(m fragMsg) bool {
		m.frag = frag
		// Count the batch as resident before offering it: a batch parked
		// in a blocked send is coordinator memory just like one sitting
		// in the channel.
		if m.batch != nil {
			counters.add(int64(len(m.batch.Rows)))
		}
		// A blocked send is this fragment waiting on the consumer; batch
		// sends are measured exactly (per batch, not per row).
		var sendStart time.Time
		if fstage != nil && m.batch != nil {
			sendStart = time.Now()
		}
		select {
		case out <- m:
			if !sendStart.IsZero() {
				fstage.BlockedDownstream(time.Since(sendStart))
			}
			return true
		case <-gctx.Done():
			if m.batch != nil {
				counters.add(-int64(len(m.batch.Rows)))
				storage.PutBatch(m.batch)
			}
			return false
		}
	}
	finish := func(m fragMsg) {
		m.done = true
		if m.err != nil {
			gsp.SetErr(m.err)
			fstage.Fail(m.err)
		} else if m.site != nil {
			gsp.Set("site", m.site.Name())
			gsp.Set("rows", strconv.Itoa(m.rows))
			gsp.Set("failovers", strconv.Itoa(m.fail))
			fstage.SetDetail(gt.Def.Name + "/" + frag.ID + "@" + m.site.Name())
		}
		fstage.Done()
		gsp.SetStage(fstage)
		send(m)
	}

	ranked := f.optimizer().Rank(gctx, frag, estimateRows(frag, gt.Def.Name))
	if len(ranked) == 0 {
		// An auction can close empty (bid timeout shorter than the
		// slowest bidder, or a stale snapshot). The query must still
		// run: fall back to trying every replica in order.
		ranked = frag.Replicas()
	}
	fails := 0
	var lastErr error
	for _, site := range ranked {
		// Capability split, re-done per replica: a failover can land on a
		// site with different capabilities than the one that just died.
		sitePush, siteResid := push, sqlparse.Expr(nil)
		siteCols, siteLimit := cols, -1
		if f.DisablePredicatePushdown {
			sitePush, siteResid = nil, push
		} else {
			caps := site.PushCaps()
			sitePush, siteResid = plan.SplitPushable(push, caps)
			if !caps.Project {
				siteCols = nil
			}
			if limit >= 0 && caps.Limit && siteResid == nil {
				siteLimit = limit
			}
		}
		st, err := site.SubQueryStream(gctx, gt.Def.Name, sitePush, siteCols, siteLimit)
		if err != nil {
			if cutByConsumer(gctx) {
				fstage.Cut()
				return
			}
			// Availability failures — declared outages, an open breaker,
			// transient faults — fail over to the next replica; anything
			// else (semantic) aborts the fragment.
			if isAvailabilityErr(err) && gctx.Err() == nil {
				fails++
				lastErr = err
				continue
			}
			finish(fragMsg{err: err})
			return
		}
		// The residual stage sits between the site stream and the fan-in,
		// so fstage (and with it EXPLAIN ANALYZE's per-fragment rows)
		// counts what the fragment contributes to the merge, while the
		// fuse's RowsIn keeps what the site shipped for the trace's
		// pushed-vs-residual accounting.
		siteWidth := len(st.Columns())
		var fuse *plan.FusedStream
		if siteResid != nil || (cols != nil && siteCols == nil) {
			spec := plan.FuseSpec{Where: siteResid, Limit: -1}
			if cols != nil && siteCols == nil {
				idx, perr := projectIdx(st.Columns(), cols)
				if perr != nil {
					//lint:ignore errdrop the open already failed; close is best-effort cleanup
					_ = st.Close()
					finish(fragMsg{err: perr})
					return
				}
				spec.Project = idx
			}
			//lint:ignore streamclose fuse aliases st, which pumpStream and the failover cleanup close
			fuse = plan.FuseStream(st, spec)
			st = fuse
		}
		shipped, pumpErr := pumpStream(gctx, st, fstage, batchRows, send)
		pushedRows := shipped
		if fuse != nil {
			pushedRows = int(fuse.RowsIn())
		}
		if pumpErr == nil {
			finish(fragMsg{site: site, rows: shipped, pushed: pushedRows, width: siteWidth,
				fail: fails, stale: frag.PendingAt(site) > 0})
			return
		}
		if gctx.Err() != nil {
			// The consumer went away (LIMIT, Close); not a failure —
			// unless an operator killed the query, in which case the
			// cancellation the wrapper recorded stays on the stage.
			if cutByConsumer(gctx) {
				fstage.Cut()
			}
			return
		}
		// A stream that broke mid-flight may have shipped a prefix. With
		// primary-key dedupe downstream the next replica's full replay is
		// absorbed, so availability failures keep failing over; without a
		// key a replay would duplicate rows, so the fragment fails.
		if canReplay && isAvailabilityErr(pumpErr) {
			fails++
			lastErr = pumpErr
			continue
		}
		finish(fragMsg{err: pumpErr})
		return
	}
	if lastErr != nil {
		finish(fragMsg{err: fmt.Errorf("%w: fragment %s of %s: %w", ErrNoReplica, frag.ID, gt.Def.Name, lastErr)})
	} else {
		finish(fragMsg{err: fmt.Errorf("%w: fragment %s of %s", ErrNoReplica, frag.ID, gt.Def.Name)})
	}
}

// projectIdx resolves the projected column names against a shipped
// stream's column list, case-insensitively.
func projectIdx(have, want []string) ([]int, error) {
	idx := make([]int, len(want))
	for i, w := range want {
		idx[i] = -1
		for j, h := range have {
			if strings.EqualFold(h, w) {
				idx[i] = j
				break
			}
		}
		if idx[i] < 0 {
			return nil, fmt.Errorf("federation: shipped stream has no column %q", w)
		}
	}
	return idx, nil
}

// cutByConsumer reports whether ctx ended because the stream's own
// consumer cut the producers off — LIMIT satisfied, an early Close, or
// the caller abandoning the query — rather than an operator kill.
// Operator cancels through the query registry carry
// obs.ErrQueryCanceled as the cancel cause; internal cuts leave the
// plain context.Canceled.
func cutByConsumer(ctx context.Context) bool {
	return ctx.Err() != nil && !errors.Is(context.Cause(ctx), obs.ErrQueryCanceled)
}

// pumpStream drains one site stream into the fan-in channel in pooled
// batches, returning the rows shipped and the stream's terminal error
// (nil on clean EOF). stage, when non-nil, accounts the rows pulled
// off the site stream (a failover replay pumps again into the same
// stage, so its row count is "rows shipped", not distinct rows).
func pumpStream(ctx context.Context, st storage.RowStream, stage *obs.StageStats, batchRows int,
	send func(fragMsg) bool) (int, error) {
	// Closing the wrapper closes st and settles the stage; with a nil
	// stage InstrumentStream returns st itself.
	src := storage.InstrumentStream(st, stage, storage.TimingSample)
	defer src.Close()
	shipped := 0
	batch := storage.GetBatch()
	flush := func() bool {
		if len(batch.Rows) == 0 {
			return true
		}
		shipped += len(batch.Rows)
		if !send(fragMsg{batch: batch}) {
			batch = nil
			return false
		}
		batch = storage.GetBatch()
		return true
	}
	for {
		row, err := src.Next()
		if err == io.EOF {
			if !flush() {
				return shipped, ctx.Err()
			}
			storage.PutBatch(batch)
			return shipped, nil
		}
		if err != nil {
			storage.PutBatch(batch)
			return shipped, err
		}
		batch.Rows = append(batch.Rows, row)
		if len(batch.Rows) >= batchRows && !flush() {
			return shipped, ctx.Err()
		}
	}
}

// clampFedBatch resolves the federation's rows-per-batch setting.
func clampFedBatch(n int) int {
	if n <= 0 {
		return storage.DefaultBatchRows
	}
	return n
}

// StreamableSelect reports whether a federated SELECT can run on the
// incremental merge path: single table, no joins/grouping/aggregation/
// ordering/DISTINCT (exec.Streamable) and no text predicates, which
// need the coordinator's inverted index over gathered rows.
func StreamableSelect(sel sqlparse.SelectStmt) bool {
	if !exec.Streamable(sel) {
		return false
	}
	hasText := false
	check := func(e sqlparse.Expr) {
		plan.Walk(e, func(x sqlparse.Expr) bool {
			if _, ok := x.(sqlparse.TextMatch); ok {
				hasText = true
				return false
			}
			return true
		})
	}
	check(sel.Where)
	for _, it := range sel.Items {
		check(it.Expr)
	}
	return !hasText
}

// QueryStream parses and executes one federated SELECT as a row
// stream. See SelectStream for the contract.
func (f *Federation) QueryStream(ctx context.Context, sql string) (storage.RowStream, *QueryTrace, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := stmt.(sqlparse.SelectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("federation: only SELECT streams, got %T", stmt)
	}
	return f.SelectStream(ctx, sel)
}

// SelectStream executes a federated SELECT as a pull-based row stream.
// Streamable statements merge the fragment streams incrementally:
// rows flow from sites through pooled batches and a bounded channel,
// so coordinator memory is O(batch × fragments) instead of O(total
// rows), and LIMIT cancels the remaining producers as soon as it is
// satisfied. Non-streamable statements (joins, aggregates, ORDER BY,
// text search) run the materialized path and stream the finished
// result. The caller must Close the stream; the returned trace's
// fields settle once the stream ends (EOF, error, or Close).
func (f *Federation) SelectStream(ctx context.Context, sel sqlparse.SelectStmt) (storage.RowStream, *QueryTrace, error) {
	ctx, release, err := f.admit(ctx)
	if err != nil {
		return nil, nil, err
	}
	if !StreamableSelect(sel) {
		// Materialized fallback: the coordinator work is done when
		// Select returns, so the slot is released here; the returned
		// stream is a pure in-memory replay.
		defer release()
		res, trace, err := f.Select(ctx, sel)
		if err != nil {
			return nil, nil, err
		}
		return storage.NewSliceStream(res.Columns, res.Rows), trace, nil
	}
	ctx, sp := obs.StartSpan(ctx, "federation.selectstream")
	sp.Set("table", sel.From.Name)
	if f.gate != nil {
		sp.Set("tenant", admission.TenantOf(ctx))
	}
	metQueries.Inc()
	ctx, aq := f.registerQuery(ctx, "select", sel.String())
	aq.SetTraceID(sp.TraceID)

	st, trace, err := f.openSelectStream(ctx, sel, sp, aq)
	if err != nil {
		release()
		metQueryErrs.Inc()
		sp.SetErr(err)
		sp.End()
		aq.Finish()
		return nil, nil, err
	}
	trace.TraceID = sp.TraceID
	// The admission slot rides the stream: it frees when the caller
	// drains or closes it, so a slow consumer exerts backpressure at
	// the gate (new work queues or sheds) instead of inflating buffers.
	return admission.NewTrackedStream(st, release), trace, nil
}

// openSelectStream builds the merge stream for a streamable SELECT.
// aq is the stream's registry entry (nil when observability is off);
// the stream owns it and unregisters it when it settles.
func (f *Federation) openSelectStream(ctx context.Context, sel sqlparse.SelectStmt, sp *obs.Span, aq *obs.ActiveQuery) (storage.RowStream, *QueryTrace, error) {
	gt, err := f.Table(sel.From.Name)
	if err != nil {
		return nil, nil, err
	}
	alias := lower(sel.From.EffectiveName())
	trace := &QueryTrace{FragmentSites: make(map[string]string)}

	// Predicate pushdown, as in the materialized path: all conjuncts are
	// local to the single table; text predicates were excluded by
	// StreamableSelect.
	conjuncts := plan.Conjuncts(sel.Where)
	local, _ := plan.SplitByTable(conjuncts, alias, true)
	push := unqualify(plan.AndExprs(dropTextPredicates(local)))

	// Projection pushdown: ship only the referenced columns plus the
	// primary key the merge dedupes on.
	def := gt.Def
	var cols []string
	if !f.DisableProjectionPushdown {
		aliases := map[string]aliasInfo{alias: {table: lower(gt.Def.Name), def: gt.Def}}
		if want, ok := neededColumns(sel, aliases)[lower(gt.Def.Name)]; ok {
			if projected, pc := projectDef(gt.Def, want); projected != nil {
				def, cols = projected, pc
			}
		}
	}

	// The merge evaluates the original statement over shipped rows:
	// qualified env names resolve both "alias.col" and bare "col" refs.
	names := make([]string, len(def.Columns))
	for i, c := range def.Columns {
		names[i] = alias + "." + lower(c.Name)
	}
	items, err := expandFedStars(sel.Items, alias, def)
	if err != nil {
		return nil, nil, err
	}
	var keyIdx []int
	for _, k := range def.Key {
		ci := def.ColumnIndex(k)
		if ci < 0 {
			keyIdx = nil
			break
		}
		keyIdx = append(keyIdx, ci)
	}

	// The consumer side is two stages: "filter/limit" (WHERE re-check,
	// projection, OFFSET/LIMIT — the rows the caller actually sees) over
	// "merge" (the fan-in: every row shipped by every fragment). Both
	// ride the context so the fragment pumps parent under the merge.
	limitDetail := lower(sel.From.Name)
	if sel.Limit >= 0 {
		limitDetail += " limit " + strconv.Itoa(sel.Limit)
	}
	if sel.Offset > 0 {
		limitDetail += " offset " + strconv.Itoa(sel.Offset)
	}
	ctx, limitStage := obs.StartStage(ctx, "filter/limit", limitDetail)
	ctx, mergeStage := obs.StartStage(ctx, "merge", lower(sel.From.Name))

	sctx, cancel := context.WithCancel(ctx)
	counters := &streamCounters{}
	batchRows := clampFedBatch(f.StreamBatchRows)
	// Each fragment may hold the whole answer, so a per-site limit must
	// cover OFFSET+LIMIT rows; the PK dedupe and this stream's own
	// offset/limit do the rest.
	fragLimit := -1
	if sel.Limit >= 0 {
		fragLimit = sel.Limit + sel.Offset
	}
	ch, active, pruned := f.scatter(sctx, gt, push, cols, fragLimit, batchRows, len(keyIdx) > 0, counters)
	trace.PrunedFragments += pruned
	metPruned.Add(int64(pruned))

	remain := -1
	if sel.Limit >= 0 {
		remain = sel.Limit
	}
	return &fedStream{
		f: f, ctx: ctx, cancel: cancel, sp: sp, start: time.Now(),
		aq: aq, sql: sel.String(), limitStage: limitStage, mergeStage: mergeStage,
		trace: trace, ch: ch, counters: counters,
		table: gt.Def.Name, fullWidth: len(gt.Def.Columns),
		env: plan.NewRowEnvRaw(names, nil), where: sel.Where, items: items,
		cols: fedItemNames(items), keyIdx: keyIdx,
		seen: make(map[string]bool), waiting: active,
		skip: sel.Offset, remain: remain,
	}, trace, nil
}

// expandFedStars expands * / alias.* select items against the shipped
// schema, mirroring the executor's expansion so streamed and
// materialized results name columns identically.
func expandFedStars(items []sqlparse.SelectItem, alias string, def *schema.Table) ([]sqlparse.SelectItem, error) {
	var out []sqlparse.SelectItem
	for _, it := range items {
		star, ok := it.Expr.(sqlparse.Star)
		if !ok {
			out = append(out, it)
			continue
		}
		want := lower(star.Table)
		if want != "" && want != alias {
			return nil, fmt.Errorf("federation: %s matches no columns", star)
		}
		for _, c := range def.Columns {
			col := lower(c.Name)
			out = append(out, sqlparse.SelectItem{
				Expr:  sqlparse.ColumnRef{Table: alias, Column: col},
				Alias: col,
			})
		}
	}
	return out, nil
}

// fedItemNames mirrors the executor's output-column naming.
func fedItemNames(items []sqlparse.SelectItem) []string {
	out := make([]string, len(items))
	for i, it := range items {
		switch {
		case it.Alias != "":
			out[i] = it.Alias
		default:
			if c, ok := it.Expr.(sqlparse.ColumnRef); ok {
				out[i] = c.Column
			} else {
				out[i] = it.Expr.String()
			}
		}
	}
	return out
}

// fedStream is the coordinator side of the streaming scatter-gather:
// the single consumer of the fan-in channel. It dedupes by primary
// key (first write wins — fragments are disjoint or replicated, so
// any copy is the row), re-checks the statement's WHERE, projects the
// select items, applies OFFSET/LIMIT, and folds producers' completion
// records into the query trace.
//
// The dedupe set is the one deliberate exception to the O(batch ×
// fragments) memory bound: keyed streams record one encoded key per
// distinct shipped row, because nothing guarantees fragment
// predicates are disjoint (nil means "may hold anything") and a
// mid-stream replica failover replays the failed stream's prefix.
// Keys are a few bytes where rows are whole tuples, and keyless
// tables carry no set at all — but coordinator memory on keyed
// streams is O(distinct keys), not constant. See DESIGN.md
// "Streaming execution".
type fedStream struct {
	f        *Federation
	ctx      context.Context
	cancel   context.CancelFunc
	sp       *obs.Span
	start    time.Time
	trace    *QueryTrace
	ch       <-chan fragMsg
	counters *streamCounters

	aq         *obs.ActiveQuery // registry entry; finished when the stream settles
	sql        string           // statement text, for the slow-query log
	limitStage *obs.StageStats  // rows surviving WHERE/OFFSET/LIMIT
	mergeStage *obs.StageStats  // rows arriving over the fan-in
	limitRows  int64            // emitted rows not yet flushed to limitStage

	table     string
	fullWidth int // unprojected width, for pushdown accounting
	ev        plan.Evaluator
	env       *plan.RowEnv
	where     sqlparse.Expr
	items     []sqlparse.SelectItem
	cols      []string
	keyIdx    []int
	seen      map[string]bool
	keyBuf    []byte

	pending []storage.Row
	pos     int
	waiting int // producers still owing a done message
	skip    int
	remain  int // -1 = unlimited
	err     error
	closed  bool
	settled bool
}

// Columns implements storage.RowStream.
func (s *fedStream) Columns() []string { return s.cols }

// Next implements storage.RowStream.
func (s *fedStream) Next() (storage.Row, error) {
	if s.closed {
		return nil, storage.ErrStreamClosed
	}
	for {
		if s.remain == 0 {
			return nil, s.finish(io.EOF)
		}
		for s.pos < len(s.pending) {
			row := s.pending[s.pos]
			s.pos++
			if s.skip > 0 {
				s.skip--
				continue
			}
			if s.remain > 0 {
				s.remain--
				if s.remain == 0 {
					// LIMIT satisfied: stop every producer now rather than
					// letting them finish their scans.
					s.cancel()
				}
			}
			// Counted locally and flushed per batch (and at finish): the
			// consumer loop pays no atomic per emitted row, and live
			// snapshots lag by at most one batch.
			s.limitRows++
			return row, nil
		}
		if s.err != nil {
			return nil, s.err
		}
		if s.waiting == 0 {
			return nil, s.finishEOF()
		}
		// The fan-in receive is the merge's producer wait; it is measured
		// exactly (per message, not per row) so the cost stays O(batches).
		recvStart := time.Now()
		msg, ok := <-s.ch
		s.mergeStage.BlockedUpstream(time.Since(recvStart))
		if !ok {
			s.waiting = 0
			return nil, s.finishEOF()
		}
		if msg.done {
			s.waiting--
			s.noteDone(msg)
			continue
		}
		s.consumeBatch(msg.batch)
	}
}

// consumeBatch turns one shipped batch into pending output rows.
func (s *fedStream) consumeBatch(b *storage.Batch) {
	s.counters.add(-int64(len(b.Rows)))
	s.mergeStage.AddBatch(int64(len(b.Rows)), 0)
	s.flushLimitRows()
	defer storage.PutBatch(b)
	s.pending = s.pending[:0]
	s.pos = 0
	for _, r := range b.Rows {
		if len(s.keyIdx) > 0 {
			s.keyBuf = s.keyBuf[:0]
			for _, ki := range s.keyIdx {
				s.keyBuf = value.AppendRowKey(s.keyBuf, storage.Row{r[ki]})
			}
			k := string(s.keyBuf)
			if s.seen[k] {
				continue
			}
			s.seen[k] = true
		}
		s.env.Values = r
		if s.where != nil {
			v, err := s.ev.Eval(s.where, s.env)
			if err != nil {
				s.fail(err)
				return
			}
			if !v.Truthy() {
				continue
			}
		}
		out := make(storage.Row, len(s.items))
		for i, it := range s.items {
			v, err := s.ev.Eval(it.Expr, s.env)
			if err != nil {
				s.fail(err)
				return
			}
			out[i] = v
		}
		s.pending = append(s.pending, out)
	}
}

// noteDone folds one fragment's completion record into the trace —
// the single-consumer discipline that keeps QueryTrace race-free.
func (s *fedStream) noteDone(m fragMsg) {
	s.trace.Failovers += m.fail
	metFailovers.Add(int64(m.fail))
	if m.err != nil {
		// Under PartialResults a fragment lost to unavailability is
		// degraded around: its typed error lands on the trace and the
		// live fragments still answer. Semantic errors always fail.
		if s.f.PartialResults && isAvailabilityErr(m.err) && s.ctx.Err() == nil {
			s.trace.noteFragmentError(s.table+"/"+m.frag.ID, m.err)
			obs.MarkDegraded(s.ctx)
			return
		}
		s.fail(m.err)
		return
	}
	s.trace.FragmentSites[s.table+"/"+m.frag.ID] = m.site.Name()
	if m.stale {
		s.trace.StaleServed = append(s.trace.StaleServed, s.table+"/"+m.frag.ID+"@"+m.site.Name())
		metStaleReads.Inc()
		obs.MarkStale(s.ctx)
	}
	// Shipping cost is what crossed the site boundary: the rows the
	// site actually served (pre-residual) at the width it served them.
	metSiteRows(m.site.Name()).Add(int64(m.pushed))
	s.trace.CellsShipped += m.pushed * m.width
	s.trace.CellsWithoutPushdown += m.pushed * s.fullWidth
	metCellsShipped.Add(int64(m.pushed * m.width))
	metCellsSaved.Add(int64(m.pushed * (s.fullWidth - m.width)))
	s.trace.notePushed(s.table+"/"+m.frag.ID, m.pushed, m.pushed-m.rows)
}

// finishEOF ends the stream after the last producer message — unless
// the caller's context was cancelled, in which case producers may have
// stopped mid-fragment without a done record and a clean EOF would
// silently truncate the result. The RowStream contract forbids a
// silent early EOF, so cancellation surfaces as the stream's terminal
// error instead. (The internal cancel — LIMIT satisfied, Close — never
// touches s.ctx, so those paths still end clean.)
func (s *fedStream) finishEOF() error {
	if s.ctx.Err() != nil {
		// Cause keeps an operator kill typed (obs.ErrQueryCanceled)
		// through the wrap; Err would flatten it to context.Canceled.
		s.fail(fmt.Errorf("federation: streaming select interrupted: %w", context.Cause(s.ctx)))
		return s.err
	}
	return s.finish(io.EOF)
}

// flushLimitRows moves the locally counted emitted rows onto the
// filter/limit stage's atomic.
func (s *fedStream) flushLimitRows() {
	if s.limitRows > 0 {
		s.limitStage.AddRows(s.limitRows)
		s.limitRows = 0
	}
}

// fail records the stream's terminal error and stops the producers.
func (s *fedStream) fail(err error) {
	if s.err == nil {
		s.err = s.finish(err)
	}
}

// finish settles the trace, metrics and span exactly once; it returns
// the terminal value Next should report (err, or io.EOF for a clean
// end).
func (s *fedStream) finish(err error) error {
	if s.settled {
		return err
	}
	s.settled = true
	s.cancel()
	s.flushLimitRows()
	s.trace.PeakBufferedRows = int(s.counters.peak.Load())
	metQuerySeconds.Observe(time.Since(s.start))
	if err != nil && err != io.EOF {
		metQueryErrs.Inc()
		s.sp.SetErr(err)
		s.limitStage.Fail(err)
	} else {
		if s.trace.Degraded {
			s.sp.Set("degraded", strconv.Itoa(len(s.trace.FragmentErrors)))
			metDegraded.Inc()
			metDegradedFragments.Add(int64(len(s.trace.FragmentErrors)))
		}
		s.sp.Set("peak_buffered_rows", strconv.Itoa(s.trace.PeakBufferedRows))
	}
	s.mergeStage.NotePeak(s.counters.peak.Load())
	s.mergeStage.Done()
	s.limitStage.Done()
	s.sp.SetStage(s.mergeStage)
	s.sp.End()
	if s.f.Slow != nil && s.aq != nil {
		s.f.Slow.RecordStages(s.sql, time.Since(s.start), s.trace.TraceID, s.aq.Stages().Snapshot())
	}
	s.aq.Finish()
	return err
}

// Close implements storage.RowStream: cancels the producers and drains
// the fan-in channel so every pooled batch is returned. Idempotent.
func (s *fedStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	//lint:ignore errdrop Close reports success; the stream's terminal error belongs to Next
	s.finish(nil)
	for msg := range s.ch {
		if msg.batch != nil {
			s.counters.add(-int64(len(msg.batch.Rows)))
			storage.PutBatch(msg.batch)
		}
	}
	return nil
}
