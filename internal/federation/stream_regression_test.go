package federation

import (
	"context"
	"errors"
	"io"
	"testing"

	"cohera/internal/resilience"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/wrapper"
)

// Regression tests for the streaming scatter-gather failure semantics:
// a cancelled caller context must never surface as a clean (silently
// short) result, a degraded materialized result must never contain a
// failed fragment's partial prefix, and a site that dies mid-transfer
// must trip its circuit breaker like one that fails at open.

// flakyStream yields a fixed prefix of rows, then hands control to
// onEnd — which may return an error (a source dying mid-transfer) or
// cancel the caller and report the cancellation.
type flakyStream struct {
	cols  []string
	rows  []storage.Row
	pos   int
	onEnd func() error
}

func (s *flakyStream) Columns() []string { return s.cols }

func (s *flakyStream) Next() (storage.Row, error) {
	if s.pos < len(s.rows) {
		r := s.rows[s.pos]
		s.pos++
		return r, nil
	}
	return nil, s.onEnd()
}

func (s *flakyStream) Close() error { return nil }

// flakySource is a stream-only wrapper source backing the flaky
// streams above.
type flakySource struct {
	def   *schema.Table
	rows  []storage.Row
	onEnd func(ctx context.Context) error
}

func (s *flakySource) Name() string                       { return "flaky-" + s.def.Name }
func (s *flakySource) Schema() *schema.Table              { return s.def }
func (s *flakySource) Capabilities() wrapper.Capabilities { return wrapper.Capabilities{} }

func (s *flakySource) Fetch(ctx context.Context, _ []wrapper.Filter) ([]storage.Row, error) {
	return nil, errors.New("flaky source is stream-only")
}

func (s *flakySource) FetchStream(ctx context.Context, _ []wrapper.Filter) (storage.RowStream, error) {
	return &flakyStream{
		cols:  wrapper.ColumnNames(s.def),
		rows:  s.rows,
		onEnd: func() error { return s.onEnd(ctx) },
	}, nil
}

// flakyFed builds a federation whose single "parts" fragment is served
// by one site fronting a flakySource, with batch size 1 so every row
// the source yields is shipped before the failure lands.
func flakyFed(t *testing.T, src *flakySource) (*Federation, *Site) {
	t.Helper()
	fed := New(NewAgoric())
	site := NewSite("flaky")
	if err := fed.AddSite(site); err != nil {
		t.Fatal(err)
	}
	site.AddSource(src)
	if _, err := fed.DefineTable(partsDef(), NewFragment("all", nil, site)); err != nil {
		t.Fatal(err)
	}
	fed.StreamBatchRows = 1
	return fed, site
}

// TestSelectStreamParentCancelNotSilentEOF asserts that when the
// caller's context dies mid-stream, Next surfaces the cancellation
// rather than a clean io.EOF over a prefix of the rows.
func TestSelectStreamParentCancelNotSilentEOF(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &flakySource{
		def:  partsDef(),
		rows: []storage.Row{row("F1", "widget", 1, "east"), row("F2", "widget", 2, "east")},
		onEnd: func(sctx context.Context) error {
			cancel() // caller times out mid-transfer
			<-sctx.Done()
			return sctx.Err()
		},
	}
	fed, _ := flakyFed(t, src)
	st, _, err := fed.QueryStream(ctx, "SELECT sku FROM parts")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rows, err := storage.CollectRows(st)
	if err == nil || err == io.EOF {
		t.Fatalf("cancelled stream drained clean with %d rows — silent truncation", len(rows))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation surfaced as %v, want context.Canceled in the chain", err)
	}
}

// TestGatherParentCancelNotPartialSuccess is the materialized twin:
// a SELECT whose context dies mid-gather must fail, not return the
// shipped prefix as a complete result.
func TestGatherParentCancelNotPartialSuccess(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &flakySource{
		def:  partsDef(),
		rows: []storage.Row{row("F1", "widget", 1, "east"), row("F2", "widget", 2, "east")},
		onEnd: func(sctx context.Context) error {
			cancel()
			<-sctx.Done()
			return sctx.Err()
		},
	}
	fed, _ := flakyFed(t, src)
	res, err := fed.Query(ctx, "SELECT sku FROM parts")
	if err == nil {
		t.Fatalf("cancelled gather returned success with %d rows — silent truncation", len(res.Rows))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation surfaced as %v, want context.Canceled in the chain", err)
	}
}

// TestPartialResultsExcludesMidStreamFailedFragment asserts a degraded
// materialized result contains only whole surviving fragments: a
// fragment that ships a prefix and then loses its only replica must
// contribute no rows, while its typed error lands on the trace.
func TestPartialResultsExcludesMidStreamFailedFragment(t *testing.T) {
	fed := New(NewAgoric())
	east := NewSite("east-ok")
	west := NewSite("west-flaky")
	for _, s := range []*Site{east, west} {
		if err := fed.AddSite(s); err != nil {
			t.Fatal(err)
		}
	}
	west.AddSource(&flakySource{
		def:  partsDef(),
		rows: []storage.Row{row("W1", "drill", 99, "west"), row("W2", "forklift", 12000, "west")},
		onEnd: func(context.Context) error {
			return errors.New("replica died mid-transfer")
		},
	})
	fragEast := NewFragment("east", nil, east)
	fragWest := NewFragment("west", nil, west)
	if _, err := fed.DefineTable(partsDef(), fragEast, fragWest); err != nil {
		t.Fatal(err)
	}
	if err := fed.LoadFragment("parts", fragEast, []storage.Row{
		row("E1", "ink", 3.5, "east"),
		row("E2", "pen", 1.2, "east"),
	}); err != nil {
		t.Fatal(err)
	}
	fed.StreamBatchRows = 1 // ship the west prefix row by row before the failure
	fed.PartialResults = true

	res, trace, err := fed.QueryTraced(context.Background(), "SELECT sku FROM parts")
	if err != nil {
		t.Fatalf("degraded select: %v", err)
	}
	got := sortedFirstCol(res.Rows)
	if len(got) != 2 || got[0] != "E1" || got[1] != "E2" {
		t.Fatalf("degraded rows = %v, want exactly [E1 E2] (no partial west prefix)", got)
	}
	if !trace.Degraded {
		t.Fatal("trace must be marked degraded")
	}
	if fe := trace.FragmentErrors["parts/west"]; fe == nil || !errors.Is(fe, ErrNoReplica) {
		t.Fatalf("fragment error = %v, want ErrNoReplica", fe)
	}
}

// TestBreakerRecordsMidStreamFailure asserts the streaming subquery
// path charges mid-transfer deaths to the site's circuit breaker: a
// site whose streams open fine but keep dying must trip open, exactly
// like one whose materialized subqueries fail.
func TestBreakerRecordsMidStreamFailure(t *testing.T) {
	src := &flakySource{
		def:  partsDef(),
		rows: []storage.Row{row("F1", "widget", 1, "east")},
		onEnd: func(context.Context) error {
			return errors.New("wire cut")
		},
	}
	_, site := flakyFed(t, src)
	site.Breaker().FailureThreshold = 2

	for i := 0; i < 2; i++ {
		st, err := site.SubQueryStream(context.Background(), "parts", nil, nil, -1)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		for {
			if _, err := st.Next(); err != nil {
				if !errors.Is(err, ErrSiteFailure) {
					t.Fatalf("mid-stream death surfaced as %v, want ErrSiteFailure", err)
				}
				break
			}
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}
	if got := site.Breaker().State(); got != resilience.Open {
		t.Fatalf("breaker state after repeated mid-stream deaths = %v, want Open", got)
	}
}
