// Package goroleak is the golden fixture for the goroleak analyzer:
// fire-and-forget goroutines (literal, named, foreign) and the
// recognized join idioms (WaitGroup, stop channel, ctx.Done(), range
// over channel, process exit, helper one call down).
package goroleak

import (
	"context"
	"fmt"
	"os"
	"sync"
)

// leakyLiteral fires and forgets: nothing ever joins it.
func leakyLiteral() {
	go func() { // want `goroutine is never joined: tie it to a WaitGroup, a stop/close channel, or a select on ctx.Done()`
		fmt.Println("hi")
	}()
}

// spin never checks any termination signal.
func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

// leakyNamed spawns a same-package function with no join signal.
func leakyNamed() {
	go spin() // want `goroutine is never joined: tie it to a WaitGroup, a stop/close channel, or a select on ctx.Done()`
}

// leakyForeign spawns a function this package cannot see into.
func leakyForeign() {
	go fmt.Println("bye") // want `goroutine runs Println, declared outside this package; cannot verify it is joined (annotate with //lint:ignore goroleak <why it terminates>)`
}

type daemon struct {
	wg     sync.WaitGroup
	stopCh chan struct{}
}

// joinedByWaitGroup: Done in the body pairs with the owner's Wait.
func (d *daemon) joinedByWaitGroup() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		fmt.Println("work")
	}()
}

// joinedByStopChannel: the stop-channel receive bounds the loop.
func (d *daemon) joinedByStopChannel() {
	go func() {
		for {
			select {
			case <-d.stopCh:
				return
			default:
			}
		}
	}()
}

// joinedByContext: a ctx.Done() receive bounds the goroutine.
func joinedByContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// joinedByRange: the loop ends when the channel closes.
func joinedByRange(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

func (d *daemon) loop() {
	for {
		select {
		case <-d.stopCh:
			return
		}
	}
}

// startLoop spawns a named method whose select-loop is one call down.
func (d *daemon) startLoop() {
	go d.loop()
}

type dispatcher struct {
	reqs chan int
	stop chan struct{}
	done chan struct{}
}

// joinedQueueWorker is the admission-controller idiom: a dispatch loop
// that drains arrivals into a local FIFO, bounded by the stop channel
// and joined through the done channel it closes on exit.
func (d *dispatcher) joinedQueueWorker() {
	go func() {
		defer close(d.done)
		var fifo []int
		for {
			select {
			case v := <-d.reqs:
				fifo = append(fifo, v)
			case <-d.stop:
				return
			}
		}
	}()
}

// exitHandler terminates the process; no join needed.
func exitHandler(sig chan os.Signal) {
	go func() {
		<-sig
		os.Exit(1)
	}()
}

// ignoredLeak is acknowledged: the goroutine runs for process lifetime.
func ignoredLeak() {
	//lint:ignore goroleak fixture: process-lifetime goroutine
	go func() {
		fmt.Println("forever")
	}()
}

var (
	_ = leakyLiteral
	_ = leakyNamed
	_ = leakyForeign
	_ = (*daemon).joinedByWaitGroup
	_ = (*daemon).joinedByStopChannel
	_ = joinedByContext
	_ = joinedByRange
	_ = (*daemon).startLoop
	_ = (*dispatcher).joinedQueueWorker
	_ = exitHandler
	_ = ignoredLeak
)
