package federation

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Bid is one site's offer to execute a subquery — the unit of the
// Mariposa-style microeconomic protocol [Stonebraker et al., VLDB J. 5(1)].
type Bid struct {
	// Site is the bidder.
	Site *Site
	// Price is the bid in cost units (simulated nanoseconds, scaled by
	// the site's current load). Lower wins.
	Price float64
}

// Agoric is the bid-based optimizer the paper advocates: for each
// fragment subquery the broker solicits bids from the fragment's
// replicas in parallel; each live replica prices the work off its
// *current* load and cost model; the broker ranks by price. Because
// bidding happens per query and reflects instantaneous load, the
// optimizer adapts to hot spots, node additions and failures without any
// central statistics refresh — the properties E3 and E4 measure.
type Agoric struct {
	// BidTimeout bounds how long the broker waits for bids (default 50ms;
	// unreachable sites simply miss the auction).
	BidTimeout time.Duration
	// Greed adds price sensitivity to queue depth beyond the cost model's
	// own load penalty (default 1.0).
	Greed float64
	// Congestion, when set, reports coordinator admission-queue pressure
	// in [0,1]; every bid is marked up by (1 + Congestion()), so overload
	// raises market prices across the board — queries on a Budget are
	// priced out (shed economically) exactly when the system is busiest.
	// Federation.SetAdmission wires this to the admission controller.
	Congestion func() float64
	// Budget, when positive, is the broker's per-subquery spending cap in
	// price units (Mariposa's bid-curve discipline): bids above it are
	// rejected. If every bid exceeds the budget, the cheapest is taken
	// anyway (the query must run) and the overrun is counted.
	Budget float64
	// PriorWeight blends each bidder's *observed* p50 subquery latency
	// (Site.ObservedLatency, fed by the obs histograms) into its bid
	// base: base = (1-w)·model + w·p50. Cost models promise; observed
	// latency reports. 0 disables the prior; NewAgoric sets 0.5.
	PriorWeight float64
	// PriorMinSamples gates the prior until a site has produced that
	// many observations (≤0 means 8), so cold sites bid purely on
	// their model instead of on noise.
	PriorMinSamples int

	auctions atomic.Int64
	bids     atomic.Int64
	rejected atomic.Int64
	overruns atomic.Int64
	priored  atomic.Int64
}

// NewAgoric returns an agoric optimizer with default tuning.
func NewAgoric() *Agoric {
	return &Agoric{BidTimeout: 50 * time.Millisecond, Greed: 1.0, PriorWeight: 0.5, PriorMinSamples: 8}
}

// Name implements Optimizer.
func (a *Agoric) Name() string { return "agoric" }

// Auctions reports how many bid rounds have run.
func (a *Agoric) Auctions() int64 { return a.auctions.Load() }

// BidsCollected reports the total number of bids received.
func (a *Agoric) BidsCollected() int64 { return a.bids.Load() }

// BidsRejected reports bids refused for exceeding the budget.
func (a *Agoric) BidsRejected() int64 { return a.rejected.Load() }

// BudgetOverruns reports auctions where every bid exceeded the budget
// and the broker had to pay over cap.
func (a *Agoric) BudgetOverruns() int64 { return a.overruns.Load() }

// PrioredBids reports bids whose price blended in an observed-latency
// prior — the measure of how often the feedback loop is live.
func (a *Agoric) PrioredBids() int64 { return a.priored.Load() }

// Rank implements Optimizer: solicit bids from all replicas in parallel,
// return live bidders ordered by ascending price.
func (a *Agoric) Rank(ctx context.Context, frag *Fragment, estRows int) []*Site {
	replicas := frag.Replicas()
	a.auctions.Add(1)
	// The bid sheet is shared with bidder goroutines that may still be
	// running when the auction closes (timeout or cancellation), so every
	// access goes through the sheet's own lock and the broker works from
	// a snapshot; late bids land harmlessly after the copy.
	var sheet struct {
		sync.Mutex
		bids []Bid
	}
	var wg sync.WaitGroup
	for _, s := range replicas {
		wg.Add(1)
		go func(s *Site) {
			defer wg.Done()
			// Down or breaker-open sites sit the auction out; a half-open
			// site still bids (it needs probe traffic to close) but at a
			// health-marked-up price so it only wins when alternatives are
			// worse.
			if !s.Available() {
				return
			}
			// A bidder prices the subquery from its own cost model and
			// instantaneous queue depth; no coordinator statistics needed.
			base := float64(s.EstimateCost(estRows))
			if a.PriorWeight > 0 {
				min := int64(a.PriorMinSamples)
				if min <= 0 {
					min = 8
				}
				if p50, n := s.ObservedLatency(); n >= min && p50 > 0 {
					base = (1-a.PriorWeight)*base + a.PriorWeight*float64(p50)
					a.priored.Add(1)
				}
			}
			price := base * (1 + a.Greed*float64(s.Load()))
			if a.Congestion != nil {
				// Coordinator congestion is a market-wide price level:
				// scarce capacity makes every replica's work dearer.
				price *= 1 + a.Congestion()
			}
			if h := s.HealthScore(); h > 0 && h < 1 {
				price /= h
			}
			// A replica with journaled intents pending is stale — its
			// content predates unreplayed writes — so it bids itself up
			// and only wins when fresher copies are unavailable or far
			// more expensive.
			if p := frag.PendingAt(s); p > 0 {
				price *= 1 + stalePenalty*float64(p)
			}
			sheet.Lock()
			sheet.bids = append(sheet.bids, Bid{Site: s, Price: price})
			sheet.Unlock()
		}(s)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	timeout := a.BidTimeout
	if timeout <= 0 {
		timeout = 50 * time.Millisecond
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	select {
	case <-done:
	case <-deadline.C:
	case <-ctx.Done():
	}
	sheet.Lock()
	bids := append([]Bid(nil), sheet.bids...)
	sheet.Unlock()
	a.bids.Add(int64(len(bids)))
	sort.Slice(bids, func(i, j int) bool {
		if bids[i].Price != bids[j].Price {
			return bids[i].Price < bids[j].Price
		}
		return bids[i].Site.Name() < bids[j].Site.Name()
	})
	if a.Budget > 0 && len(bids) > 0 {
		within := bids[:0]
		for _, b := range bids {
			if b.Price <= a.Budget {
				within = append(within, b)
			} else {
				a.rejected.Add(1)
			}
		}
		if len(within) == 0 {
			// Every bidder priced above budget: pay over cap rather than
			// fail the query, but record the overrun for tuning.
			a.overruns.Add(1)
			within = bids[:1]
		}
		bids = within
	}
	out := make([]*Site, len(bids))
	for i, b := range bids {
		out[i] = b.Site
	}
	return out
}
