package obs

import (
	"sync"
	"time"
)

// SlowQuery is one retained slow-query record. TraceURL points at the
// span tree for the same execution (/debug/trace/{id}) and TopStages
// carries the three operator stages that spent the longest blocked on
// their producers — enough to answer "where did this query's time go"
// from the slow log alone.
type SlowQuery struct {
	SQL       string          `json:"sql"`
	Duration  time.Duration   `json:"duration_ns"`
	TraceID   string          `json:"trace_id,omitempty"`
	TraceURL  string          `json:"trace_url,omitempty"`
	TopStages []StageSnapshot `json:"top_stages,omitempty"`
	At        time.Time       `json:"at"`
}

// SlowLog is a bounded ring of the most recent queries at or above a
// latency threshold. Safe for concurrent use.
type SlowLog struct {
	// Threshold gates recording; 0 records every query (useful in the
	// shell, where the log doubles as query history). Set before the
	// log is shared; Record reads it without synchronization.
	Threshold time.Duration

	capacity int

	mu    sync.Mutex
	ring  []SlowQuery
	next  int
	total int64
}

// NewSlowLog returns a log retaining the last capacity records
// (≤0 means 64).
func NewSlowLog(capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &SlowLog{capacity: capacity}
}

// Record notes a finished query; it reports whether the query cleared
// the threshold and was retained.
func (l *SlowLog) Record(sql string, d time.Duration, traceID string) bool {
	return l.RecordStages(sql, d, traceID, nil)
}

// RecordStages is Record carrying the query's operator stages; the
// three slowest (by blocked-upstream time) are retained with the
// entry, and the trace id becomes a /debug/trace link.
func (l *SlowLog) RecordStages(sql string, d time.Duration, traceID string, stages []StageSnapshot) bool {
	if d < l.Threshold {
		return false
	}
	rec := SlowQuery{SQL: sql, Duration: d, TraceID: traceID, At: time.Now(), TopStages: TopStages(stages, 3)}
	if traceID != "" {
		rec.TraceURL = "/debug/trace/" + traceID
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < l.capacity {
		l.ring = append(l.ring, rec)
	} else {
		l.ring[l.next] = rec
	}
	l.next = (l.next + 1) % l.capacity
	l.total++
	return true
}

// Total reports how many queries have been recorded since start
// (including ones the ring has since overwritten).
func (l *SlowLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Last returns up to n retained records, newest first (n ≤ 0 means
// all retained).
func (l *SlowLog) Last(n int) []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := len(l.ring)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]SlowQuery, 0, n)
	for i := 1; i <= n; i++ {
		// next-1 is the newest slot; walk backwards through the ring.
		out = append(out, l.ring[((l.next-i)%size+size)%size])
	}
	return out
}
