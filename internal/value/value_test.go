package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "INTEGER",
		KindFloat: "FLOAT", KindString: "TEXT", KindMoney: "MONEY",
		KindTime: "TIMESTAMP", KindDuration: "DURATION",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFromName(t *testing.T) {
	for name, want := range map[string]Kind{
		"int": KindInt, "VARCHAR": KindString, "Money": KindMoney,
		"decimal": KindFloat, "bool": KindBool, "timestamp": KindTime,
		"interval": KindDuration,
	} {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := KindFromName("blob"); err == nil {
		t.Error("KindFromName(blob) should fail")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("bool round trip failed")
	}
	if NewInt(-42).Int() != -42 {
		t.Error("int round trip failed")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("float round trip failed")
	}
	if NewInt(3).Float() != 3.0 {
		t.Error("int should widen to float")
	}
	if NewString("ink").Str() != "ink" {
		t.Error("string round trip failed")
	}
	amt, cur := NewMoney(199, "usd").Money()
	if amt != 199 || cur != "USD" {
		t.Errorf("money = %d %s, want 199 USD", amt, cur)
	}
	now := time.Date(2001, 5, 21, 9, 0, 0, 0, time.UTC)
	if !NewTime(now).Time().Equal(now) {
		t.Error("time round trip failed")
	}
	d, sem := Days(2, BusinessDays).Duration()
	if d != 48*time.Hour || sem != BusinessDays {
		t.Errorf("duration = %v %v", d, sem)
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic using string as int")
		}
	}()
	_ = NewString("x").Int()
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "true"},
		{NewInt(7), "7"},
		{NewFloat(2.5), "2.5"},
		{NewString("black ink"), "black ink"},
		{NewMoney(129999, "USD"), "1299.99 USD"},
		{NewMoney(-55, "EUR"), "-0.55 EUR"},
		{Days(2, BusinessDays), "48h0m0s (business)"},
		{Days(1, CalendarDays), "24h0m0s"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewFloat(2.5), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewMoney(100, "USD"), NewMoney(200, "USD"), -1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewTime(time.Unix(1, 0)), NewTime(time.Unix(2, 0)), -1},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Errorf("Compare(%v,%v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := NewString("a").Compare(NewInt(1)); err == nil {
		t.Error("string vs int should be incomparable")
	}
	if _, err := NewMoney(1, "USD").Compare(NewMoney(1, "EUR")); err == nil {
		t.Error("cross-currency compare should fail")
	}
}

func TestTruthy(t *testing.T) {
	if Null.Truthy() || NewInt(0).Truthy() || NewString("").Truthy() || NewBool(false).Truthy() {
		t.Error("falsy values reported truthy")
	}
	if !NewInt(1).Truthy() || !NewString("x").Truthy() || !NewBool(true).Truthy() || !NewFloat(0.1).Truthy() {
		t.Error("truthy values reported falsy")
	}
}

// randomValue generates an arbitrary comparable Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return NewInt(int64(r.Intn(2000) - 1000))
	case 1:
		return NewFloat(r.Float64()*200 - 100)
	case 2:
		return NewString(string(rune('a' + r.Intn(26))))
	case 3:
		return Null
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

// Property: Compare is antisymmetric and consistent with Equal for values
// of the same kind.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		if !Comparable(a.Kind(), b.Kind()) && a.Kind() != KindNull && b.Kind() != KindNull {
			return true
		}
		ab, err1 := a.Compare(b)
		ba, err2 := b.Compare(a)
		if err1 != nil || err2 != nil {
			return (err1 == nil) == (err2 == nil)
		}
		return ab == -ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is transitive over random int/float triples.
func TestCompareTransitivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nums := func() Value {
			if r.Intn(2) == 0 {
				return NewInt(int64(r.Intn(20) - 10))
			}
			return NewFloat(float64(r.Intn(40))/2 - 10)
		}
		a, b, c := nums(), nums(), nums()
		ab := a.MustCompare(b)
		bc := b.MustCompare(c)
		ac := a.MustCompare(c)
		if ab <= 0 && bc <= 0 && ac > 0 {
			return false
		}
		if ab >= 0 && bc >= 0 && ac < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestEqual(t *testing.T) {
	if !NewInt(5).Equal(NewInt(5)) {
		t.Error("equal ints not Equal")
	}
	if NewInt(5).Equal(NewFloat(5)) {
		t.Error("Equal must require matching kinds")
	}
	if !Null.Equal(Null) {
		t.Error("NULL should Equal NULL")
	}
	if !NewMoney(5, "USD").Equal(NewMoney(5, "USD")) {
		t.Error("equal money not Equal")
	}
	if NewMoney(5, "USD").Equal(NewMoney(5, "EUR")) {
		t.Error("different currencies Equal")
	}
}

func TestEqualReflexiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r)
		return v.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueIsSmall(t *testing.T) {
	// Rows are []Value; keep the struct compact.
	if sz := reflect.TypeOf(Value{}).Size(); sz > 48 {
		t.Errorf("Value size %d exceeds 48 bytes", sz)
	}
}
