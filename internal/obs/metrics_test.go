package obs

import (
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help", nil)
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help", nil)
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "h", Labels{"site": "x"})
	b := r.Counter("same_total", "h", Labels{"site": "x"})
	if a != b {
		t.Error("same (name, labels) must return the same counter")
	}
	other := r.Counter("same_total", "h", Labels{"site": "y"})
	if a == other {
		t.Error("different labels must be a different series")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kind_clash", "h", nil)
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter should panic")
		}
	}()
	r.Gauge("kind_clash", "h", nil)
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 50; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := 50*time.Millisecond + 50*100*time.Millisecond
	if h.Sum() != wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
	// p50 must land in the 1ms bucket's range, p99 near 100ms.
	if p := h.Quantile(0.5); p <= 0 || p > time.Millisecond {
		t.Errorf("p50 = %v, want in (0, 1ms]", p)
	}
	if p := h.Quantile(0.99); p < 50*time.Millisecond || p > 100*time.Millisecond {
		t.Errorf("p99 = %v, want in [50ms, 100ms]", p)
	}
}

func TestHistogramNegativeClampsAndOverflowBucket(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond})
	h.Observe(-time.Second) // clamps to 0 → first bucket
	h.Observe(time.Hour)    // +Inf bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	// Rank in the +Inf bucket reports the highest finite bound.
	if p := h.Quantile(0.99); p != time.Millisecond {
		t.Errorf("overflow quantile = %v, want 1ms", p)
	}
}

func TestPrometheusRenderGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "Total requests.", Labels{"code": "200"})
	c.Add(3)
	r.Counter("app_requests_total", "Total requests.", Labels{"code": "500"}).Inc()
	r.Gauge("app_queue_depth", "Queue depth.", nil).Set(7)
	h := r.HistogramBuckets("app_latency_seconds", "Latency.",
		[]time.Duration{time.Millisecond, 10 * time.Millisecond}, nil)
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(20 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.001"} 1
app_latency_seconds_bucket{le="0.01"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 0.0255
app_latency_seconds_count 3
# HELP app_queue_depth Queue depth.
# TYPE app_queue_depth gauge
app_queue_depth 7
# HELP app_requests_total Total requests.
# TYPE app_requests_total counter
app_requests_total{code="200"} 3
app_requests_total{code="500"} 1
`
	if got := b.String(); got != want {
		t.Errorf("render mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", Labels{"path": "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped render = %q, want to contain %q", b.String(), want)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total", "h", Labels{"k": "v"}).Add(2)
	h := r.Histogram("snap_seconds", "h", nil)
	h.Observe(time.Millisecond)
	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 2 || s.Counters[0].Labels["k"] != "v" {
		t.Errorf("counters = %+v", s.Counters)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 {
		t.Errorf("histograms = %+v", s.Histograms)
	}
	if s.Histograms[0].P50Seconds <= 0 {
		t.Errorf("p50 = %v, want > 0", s.Histograms[0].P50Seconds)
	}
}

// TestRegistryConcurrencyHammer drives parallel registration, increments,
// observations and renders through one registry; run under -race it is
// the lock-freedom proof for the whole metrics path.
func TestRegistryConcurrencyHammer(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ls := Labels{"w": strconv.Itoa(w % 4)}
			for i := 0; i < iters; i++ {
				r.Counter("hammer_total", "h", ls).Inc()
				r.Gauge("hammer_gauge", "h", nil).Set(int64(i))
				r.Histogram("hammer_seconds", "h", ls).Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	// Concurrent readers: render and snapshot while writers are hot.
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("render: %v", err)
					return
				}
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	var total int64
	for w := 0; w < 4; w++ {
		total += r.Counter("hammer_total", "h", Labels{"w": strconv.Itoa(w)}).Value()
	}
	if want := int64(workers * iters); total != want {
		t.Errorf("counter total = %d, want %d (lost updates)", total, want)
	}
	var observed int64
	for w := 0; w < 4; w++ {
		observed += r.Histogram("hammer_seconds", "h", Labels{"w": strconv.Itoa(w)}).Count()
	}
	if want := int64(workers * iters); observed != want {
		t.Errorf("histogram observations = %d, want %d", observed, want)
	}
}
