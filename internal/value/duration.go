package value

import (
	"fmt"
	"time"
)

// DurationSemantics records what a content owner means by a "day" in a
// delivery promise. The paper's Characteristic 2 observes that "two day
// delivery" is two calendar days for some companies, two business days for
// others, and two calendar days excluding Sunday for yet others (FedEx).
type DurationSemantics string

// The delivery-day interpretations seen in supplier feeds.
const (
	// CalendarDays counts every day.
	CalendarDays DurationSemantics = "calendar"
	// BusinessDays counts Monday through Friday only.
	BusinessDays DurationSemantics = "business"
	// NoSundayDays counts every day except Sunday.
	NoSundayDays DurationSemantics = "no-sunday"
)

// ValidSemantics reports whether s is a recognized DurationSemantics tag.
func ValidSemantics(s DurationSemantics) bool {
	switch s {
	case CalendarDays, BusinessDays, NoSundayDays, "":
		return true
	}
	return false
}

const day = 24 * time.Hour

// NormalizeDelivery converts a delivery promise expressed in source
// semantics into an equivalent number of calendar days starting from a
// given order date, returning a calendar-semantics duration Value. This is
// the canonical form the integrator stores so promises from different
// vendors become comparable.
func NormalizeDelivery(v Value, from time.Time) (Value, error) {
	if v.Kind() != KindDuration {
		return Null, fmt.Errorf("value: NormalizeDelivery on %s", v.Kind())
	}
	d, sem := v.Duration()
	if !ValidSemantics(sem) {
		return Null, fmt.Errorf("value: unknown duration semantics %q", sem)
	}
	if sem == "" || sem == CalendarDays {
		return NewDuration(d, CalendarDays), nil
	}
	days := int(d / day)
	rem := d % day
	arrival := from
	for counted := 0; counted < days; {
		arrival = arrival.Add(day)
		if countsAsDay(arrival.Weekday(), sem) {
			counted++
		}
	}
	elapsed := arrival.Sub(from) + rem
	return NewDuration(elapsed, CalendarDays), nil
}

func countsAsDay(w time.Weekday, sem DurationSemantics) bool {
	switch sem {
	case BusinessDays:
		return w != time.Saturday && w != time.Sunday
	case NoSundayDays:
		return w != time.Sunday
	default:
		return true
	}
}

// Days builds a duration Value of n days under the given semantics.
func Days(n int, sem DurationSemantics) Value {
	return NewDuration(time.Duration(n)*day, sem)
}
