package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cohera/internal/federation"
	"cohera/internal/wal"
)

// The kill -9 crash-recovery scenario. The parent process spawns a
// child (this same binary in -crash-child workload mode) that runs a
// durable two-replica federation under a deterministic DML workload,
// appending one fsynced line to an acknowledgement log after every
// acknowledged statement. Once the log shows enough acknowledged
// operations the parent SIGKILLs the child mid-flight — there is no
// shutdown hook, no final checkpoint — and restarts it in verify mode.
// The restarted child recovers the sites and the write-intent journal
// from their WALs, drains the journal through the reconciler, and
// asserts the durability contract:
//
//   - both replicas converge to identical content digests;
//   - the journal backlog drains to zero;
//   - every acknowledged insert is present (nothing acknowledged was
//     lost);
//   - the increment counter lies in [acked, issued] on both replicas
//     (no acknowledged increment lost, none applied twice — the
//     exactly-once check journal replay must satisfy).
//
// The workload flaps one replica down on a deterministic schedule so a
// slice of the writes is journaled rather than applied, forcing the
// recovery to exercise journal rehydration and replay, not just WAL
// redo. Site WALs and the journal WAL run fsync=always: an
// acknowledgement implies durable.

const (
	crashCounterSKU = "CTR"
	// crashCkptEvery checkpoints one site (deliberately only one — the
	// other must recover by pure replay) and the journal every N ops,
	// so the kill can land mid-interval, right after a truncation, or
	// between checkpoint and the next append.
	crashCkptEvery = 25
)

// crashBed is the durable federation both child modes rebuild from dir.
type crashBed struct {
	fed      *federation.Federation
	w1, w2   *federation.Site
	siteLogs []*wal.Log
	jlog     *wal.Log
}

func newCrashBed(dir string) (*crashBed, error) {
	cb := &crashBed{
		fed: federation.New(federation.NewAgoric()),
		w1:  federation.NewSite("west-1"),
		w2:  federation.NewSite("west-2"),
	}
	// Deterministic replica ranking: the workload must be reproducible
	// from -seed alone (see scenarioSoak for the rationale).
	cb.fed.SetOptimizer(federation.NewCentralized(cb.fed))
	for _, s := range []*federation.Site{cb.w1, cb.w2} {
		if err := cb.fed.AddSite(s); err != nil {
			return nil, err
		}
		l, rec, err := wal.Open(filepath.Join(dir, s.Name()), wal.Options{Policy: wal.SyncAlways, Name: s.Name()})
		if err != nil {
			return nil, err
		}
		cb.siteLogs = append(cb.siteLogs, l)
		if _, err := federation.RestoreSite(s, l, rec); err != nil {
			return nil, err
		}
	}
	jl, jrec, err := wal.Open(filepath.Join(dir, "journal"), wal.Options{Policy: wal.SyncAlways, Name: "journal"})
	if err != nil {
		return nil, err
	}
	cb.jlog = jl
	if err := federation.RestoreJournal(cb.fed, jl, jrec); err != nil {
		return nil, err
	}
	frag := federation.NewFragment("west", nil, cb.w1, cb.w2)
	if _, err := cb.fed.DefineTable(partsDef(), frag); err != nil {
		return nil, err
	}
	return cb, nil
}

// ackLog is the parent↔child coordination file: "issue"/"ack" lines,
// each fsynced before the workload proceeds, so the log never claims
// an acknowledgement the process did not give.
type ackLog struct{ f *os.File }

func openAckLog(dir string) (*ackLog, error) {
	f, err := os.OpenFile(filepath.Join(dir, "acks.log"), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &ackLog{f: f}, nil
}

func (a *ackLog) line(kind, op string, n int) error {
	if _, err := fmt.Fprintf(a.f, "%s %s %d\n", kind, op, n); err != nil {
		return err
	}
	return a.f.Sync()
}

// runCrashWorkload is the child's workload mode: loop a deterministic
// DML mix until killed. i is the op number; the replica flap, the op
// kind, and every value derive from it, so a restarted run (the
// crash-point matrix in internal/exec covers torn bytes; this covers
// whole-process death) is reproducible up to where the kill landed.
func runCrashWorkload(dir string, seed int64) error {
	cb, err := newCrashBed(dir)
	if err != nil {
		return err
	}
	acks, err := openAckLog(dir)
	if err != nil {
		return err
	}
	ctx := context.Background()
	// Seed rows, idempotent under Upsert semantics: the counter starts
	// at zero only when its row does not exist yet.
	if res, err := cb.w1.DB().Exec("SELECT sku FROM parts WHERE sku = '" + crashCounterSKU + "'"); err != nil || len(res.Rows) == 0 {
		if _, _, err := cb.fed.Exec(ctx, fmt.Sprintf(
			"INSERT INTO parts (sku, price, region) VALUES ('%s', 0, 'west')", crashCounterSKU)); err != nil {
			return fmt.Errorf("seeding counter: %w", err)
		}
	}
	for i := 0; i < 1_000_000; i++ {
		// Deterministic flap: west-2 is down for 3 of every 10 ops, so
		// those writes journal intents instead of applying.
		cb.w2.SetDown((int64(i)+seed)%10 >= 7)
		var sql, op string
		switch i % 3 {
		case 0:
			op = "ins"
			sql = fmt.Sprintf("INSERT INTO parts (sku, price, region) VALUES ('S%06d', %d, 'west')", i, i)
		case 1:
			op = "ctr"
			sql = fmt.Sprintf("UPDATE parts SET price = price + 1 WHERE sku = '%s'", crashCounterSKU)
		default:
			op = "abs"
			sql = fmt.Sprintf("UPDATE parts SET price = %d WHERE sku = '%s'", i, crashCounterSKU+"-base")
		}
		if op == "abs" && i == 2 {
			// First abs op targets a row that must exist; create it once.
			sql = fmt.Sprintf("INSERT INTO parts (sku, price, region) VALUES ('%s', 2, 'west')", crashCounterSKU+"-base")
		}
		if err := acks.line("issue", op, i); err != nil {
			return err
		}
		if _, _, err := cb.fed.Exec(ctx, sql); err != nil {
			return fmt.Errorf("op %d (%s): %w", i, sql, err)
		}
		if err := acks.line("ack", op, i); err != nil {
			return err
		}
		if i%crashCkptEvery == crashCkptEvery-1 {
			if err := federation.CheckpointSite(cb.w1); err != nil {
				return err
			}
			if err := federation.CheckpointJournal(cb.jlog); err != nil {
				return err
			}
		}
	}
	return nil
}

// crashAcks is the parsed acknowledgement log.
type crashAcks struct {
	ackedIns          []int
	issuedCtr, ackCtr int
	issuedAbs, ackAbs int
	total             int
}

func parseAcks(dir string) (*crashAcks, error) {
	f, err := os.Open(filepath.Join(dir, "acks.log"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ca := &crashAcks{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		parts := strings.Fields(sc.Text())
		if len(parts) != 3 {
			continue // torn final line: the kill landed mid-write
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			continue
		}
		acked := parts[0] == "ack"
		if acked {
			ca.total++
		}
		switch parts[1] {
		case "ins":
			if acked {
				ca.ackedIns = append(ca.ackedIns, n)
			}
		case "ctr":
			if acked {
				ca.ackCtr++
			} else {
				ca.issuedCtr++
			}
		case "abs":
			if acked {
				ca.ackAbs = n
			} else {
				ca.issuedAbs = n
			}
		}
	}
	return ca, sc.Err()
}

// runCrashVerify is the child's second life: recover everything from
// the WALs, reconcile, and assert the durability contract against the
// acknowledgement log.
func runCrashVerify(dir string, seed int64) error {
	cb, err := newCrashBed(dir)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	acks, err := parseAcks(dir)
	if err != nil {
		return err
	}
	if acks.total == 0 {
		return fmt.Errorf("acknowledgement log is empty; the kill landed before any op completed")
	}
	ctx := context.Background()
	recovered := cb.fed.Journal().PendingTotal()
	r := federation.NewReconciler(cb.fed)
	var replayed, copied int
	for pass := 0; pass < 10; pass++ {
		rep, err := r.RunOnce(ctx)
		if err != nil {
			return fmt.Errorf("repair pass %d: %w", pass, err)
		}
		replayed += rep.Replayed
		copied += rep.CopyRepaired
		if rep.Pending == 0 {
			break
		}
	}
	if n := cb.fed.Journal().PendingTotal(); n != 0 {
		return fmt.Errorf("journal backlog did not drain: %d pending", n)
	}
	d1, err := cb.w1.DB().TableDigest("parts")
	if err != nil {
		return err
	}
	d2, err := cb.w2.DB().TableDigest("parts")
	if err != nil {
		return err
	}
	if !d1.Equal(d2) {
		return fmt.Errorf("replica digests diverge after recovery: %+v vs %+v", d1, d2)
	}
	// Every acknowledged insert must be present on both replicas.
	for _, n := range acks.ackedIns {
		sku := fmt.Sprintf("S%06d", n)
		for _, s := range []*federation.Site{cb.w1, cb.w2} {
			res, err := s.DB().Exec("SELECT sku FROM parts WHERE sku = '" + sku + "'")
			if err != nil || len(res.Rows) != 1 {
				return fmt.Errorf("acknowledged insert %s lost at %s (rows=%d, err=%v)", sku, s.Name(), len(res.Rows), err)
			}
		}
	}
	// The counter must hold every acknowledged increment and no more
	// than the issued ones: below ackCtr an acknowledged write was
	// lost, above issuedCtr a replayed intent was applied twice.
	for _, s := range []*federation.Site{cb.w1, cb.w2} {
		res, err := s.DB().Exec("SELECT price FROM parts WHERE sku = '" + crashCounterSKU + "'")
		if err != nil || len(res.Rows) != 1 {
			return fmt.Errorf("counter row missing at %s: %v", s.Name(), err)
		}
		c := int(res.Rows[0][0].Float())
		if c < acks.ackCtr {
			return fmt.Errorf("%s counter = %d < %d acknowledged increments: acknowledged write lost", s.Name(), c, acks.ackCtr)
		}
		if c > acks.issuedCtr {
			return fmt.Errorf("%s counter = %d > %d issued increments: intent double-applied", s.Name(), c, acks.issuedCtr)
		}
	}
	fmt.Printf("crash-verify: %d acked ops, %d pending recovered, %d replayed, %d copy-repaired, counter within [%d,%d]\n",
		acks.total, recovered, replayed, copied, acks.ackCtr, acks.issuedCtr)
	return nil
}

// scenarioCrash is the parent: run the workload child, SIGKILL it once
// enough operations acknowledged, restart in verify mode.
func scenarioCrash(seed int64) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "coherachaos-crash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	child := osexec.Command(exe, "-crash-child", "workload",
		"-crash-dir", dir, "-seed", strconv.FormatInt(seed, 10))
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		return err
	}
	// The kill lands after a seeded number of acknowledged ops — far
	// enough in to span checkpoints and flap windows.
	target := 60 + int(seed%25)
	ackPath := filepath.Join(dir, "acks.log")
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	deadline := time.After(60 * time.Second)
	for acked := 0; acked < target; {
		select {
		case <-deadline:
			killErr := child.Process.Kill()
			_ = killErr // already failing; the timeout is the error to report
			waitErr := child.Wait()
			_ = waitErr
			return fmt.Errorf("workload child acknowledged %d/%d ops within 60s", acked, target)
		case <-tick.C:
			b, err := os.ReadFile(ackPath)
			if err != nil {
				continue // not created yet
			}
			acked = strings.Count(string(b), "ack ")
		}
	}
	if err := child.Process.Kill(); err != nil { // SIGKILL: no handler runs
		return fmt.Errorf("kill -9: %w", err)
	}
	waitErr := child.Wait()
	_ = waitErr // the child was killed; a non-nil exit is the point

	verify := osexec.Command(exe, "-crash-child", "verify",
		"-crash-dir", dir, "-seed", strconv.FormatInt(seed, 10))
	verify.Stdout = os.Stdout
	verify.Stderr = os.Stderr
	if err := verify.Run(); err != nil {
		return fmt.Errorf("post-crash verification failed: %w", err)
	}
	return nil
}
