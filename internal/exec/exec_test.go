package exec

import (
	"strings"
	"testing"

	"cohera/internal/value"
)

// demoDB builds a two-table database used across the tests.
func demoDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	mustExec := func(sql string) *Result {
		t.Helper()
		r, err := db.Exec(sql)
		if err != nil {
			t.Fatalf("Exec(%q): %v", sql, err)
		}
		return r
	}
	mustExec(`CREATE TABLE suppliers (id INTEGER NOT NULL, name TEXT, region TEXT, PRIMARY KEY (id))`)
	mustExec(`CREATE TABLE parts (sku TEXT NOT NULL, name TEXT, price FLOAT, qty INTEGER, sid INTEGER, PRIMARY KEY (sku))`)
	mustExec(`INSERT INTO suppliers (id, name, region) VALUES
		(1, 'Acme Industrial', 'west'),
		(2, 'Bolt Brothers', 'east'),
		(3, 'Chandler Supply', 'west')`)
	mustExec(`INSERT INTO parts (sku, name, price, qty, sid) VALUES
		('P1', 'cordless drill', 99.5, 10, 1),
		('P2', 'corded drill', 45.0, 0, 1),
		('P3', 'India ink bottle', 3.5, 200, 2),
		('P4', 'black ballpoint pen', 1.25, 500, 2),
		('P5', 'forklift', 12000.0, 2, 3),
		('P6', 'lightbulb 60w', 0.99, 1000, 3)`)
	return db
}

func exec1(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	r, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return r
}

func TestSelectAll(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, "SELECT * FROM parts")
	if len(r.Rows) != 6 || len(r.Columns) != 5 {
		t.Fatalf("rows=%d cols=%v", len(r.Rows), r.Columns)
	}
	if r.Columns[0] != "sku" {
		t.Errorf("columns = %v", r.Columns)
	}
	for _, row := range r.Rows {
		if strings.Contains(strings.Join(r.Columns, ","), "_rowid") {
			t.Fatal("synthetic _rowid leaked into output")
		}
		if len(row) != 5 {
			t.Fatalf("row width = %d", len(row))
		}
	}
}

func TestWhereFilters(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, "SELECT sku FROM parts WHERE price < 10")
	if len(r.Rows) != 3 {
		t.Errorf("price<10 rows = %d, want 3", len(r.Rows))
	}
	r = exec1(t, db, "SELECT sku FROM parts WHERE qty = 0")
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "P2" {
		t.Errorf("qty=0 = %v", r.Rows)
	}
	r = exec1(t, db, "SELECT sku FROM parts WHERE name LIKE '%drill%' AND qty > 0")
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "P1" {
		t.Errorf("like+qty = %v", r.Rows)
	}
	r = exec1(t, db, "SELECT sku FROM parts WHERE sku IN ('P1','P9')")
	if len(r.Rows) != 1 {
		t.Errorf("IN = %v", r.Rows)
	}
}

func TestProjectionAndAliases(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, "SELECT sku AS id, price * qty AS stock_value FROM parts WHERE sku = 'P1'")
	if r.Columns[0] != "id" || r.Columns[1] != "stock_value" {
		t.Errorf("columns = %v", r.Columns)
	}
	if v := r.Rows[0][1].Float(); v != 995 {
		t.Errorf("stock_value = %v", v)
	}
}

func TestOrderLimitOffset(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, "SELECT sku, price FROM parts ORDER BY price DESC LIMIT 2")
	if len(r.Rows) != 2 || r.Rows[0][0].Str() != "P5" || r.Rows[1][0].Str() != "P1" {
		t.Errorf("order desc limit = %v", r.Rows)
	}
	r = exec1(t, db, "SELECT sku FROM parts ORDER BY price LIMIT 2 OFFSET 1")
	if len(r.Rows) != 2 || r.Rows[0][0].Str() != "P4" {
		t.Errorf("offset = %v", r.Rows)
	}
	// Order by output alias.
	r = exec1(t, db, "SELECT sku, price * 2 AS p2 FROM parts ORDER BY p2 DESC LIMIT 1")
	if r.Rows[0][0].Str() != "P5" {
		t.Errorf("order by alias = %v", r.Rows)
	}
	// Offset beyond end.
	r = exec1(t, db, "SELECT sku FROM parts OFFSET 100")
	if len(r.Rows) != 0 {
		t.Errorf("big offset = %v", r.Rows)
	}
}

func TestDistinct(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, "SELECT DISTINCT region FROM suppliers")
	if len(r.Rows) != 2 {
		t.Errorf("distinct regions = %v", r.Rows)
	}
}

func TestInnerJoin(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, `SELECT p.sku, s.name FROM parts p
		JOIN suppliers s ON p.sid = s.id WHERE s.region = 'west' ORDER BY p.sku`)
	if len(r.Rows) != 4 {
		t.Fatalf("west join rows = %d, want 4", len(r.Rows))
	}
	if r.Rows[0][0].Str() != "P1" || r.Rows[0][1].Str() != "Acme Industrial" {
		t.Errorf("first = %v", r.Rows[0])
	}
}

func TestLeftJoin(t *testing.T) {
	db := demoDB(t)
	// Add a part with no supplier.
	if _, err := db.Exec("INSERT INTO parts (sku, name, price, qty, sid) VALUES ('P7', 'orphan', 1.0, 1, 99)"); err != nil {
		t.Fatal(err)
	}
	r := exec1(t, db, `SELECT p.sku, s.name FROM parts p
		LEFT JOIN suppliers s ON p.sid = s.id ORDER BY p.sku`)
	if len(r.Rows) != 7 {
		t.Fatalf("left join rows = %d, want 7", len(r.Rows))
	}
	last := r.Rows[6]
	if last[0].Str() != "P7" || !last[1].IsNull() {
		t.Errorf("null-extended row = %v", last)
	}
}

func TestJoinWithResidualOn(t *testing.T) {
	db := demoDB(t)
	// Equi key plus a non-equi residual in ON.
	r := exec1(t, db, `SELECT p.sku FROM parts p
		JOIN suppliers s ON p.sid = s.id AND p.price > 50 ORDER BY p.sku`)
	if len(r.Rows) != 2 { // P1 (99.5) and P5 (12000)
		t.Errorf("residual-on rows = %v", r.Rows)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	db := demoDB(t)
	// Non-equi ON forces nested loop.
	r := exec1(t, db, `SELECT p.sku, s.id FROM parts p
		JOIN suppliers s ON p.sid < s.id WHERE p.sku = 'P1'`)
	// sid=1 < {2,3} → two rows.
	if len(r.Rows) != 2 {
		t.Errorf("nested loop rows = %v", r.Rows)
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := demoDB(t)
	if _, err := db.Exec("CREATE TABLE regions (code TEXT NOT NULL, label TEXT, PRIMARY KEY (code))"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO regions (code, label) VALUES ('west', 'West Coast'), ('east', 'East Coast')"); err != nil {
		t.Fatal(err)
	}
	r := exec1(t, db, `SELECT p.sku, r.label FROM parts p
		JOIN suppliers s ON p.sid = s.id
		JOIN regions r ON s.region = r.code
		WHERE p.sku = 'P1'`)
	if len(r.Rows) != 1 || r.Rows[0][1].Str() != "West Coast" {
		t.Errorf("three-way = %v", r.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, "SELECT COUNT(*), SUM(qty), MIN(price), MAX(price), AVG(qty) FROM parts")
	row := r.Rows[0]
	if row[0].Int() != 6 || row[1].Int() != 1712 {
		t.Errorf("count/sum = %v", row)
	}
	if row[2].Float() != 0.99 || row[3].Float() != 12000 {
		t.Errorf("min/max = %v", row)
	}
	if row[4].Float() != 1712.0/6 {
		t.Errorf("avg = %v", row[4])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, `SELECT s.region, COUNT(*) AS n, SUM(p.qty) AS total
		FROM parts p JOIN suppliers s ON p.sid = s.id
		GROUP BY s.region HAVING COUNT(*) > 1 ORDER BY s.region`)
	if len(r.Rows) != 2 {
		t.Fatalf("groups = %v", r.Rows)
	}
	if r.Rows[0][0].Str() != "east" || r.Rows[0][1].Int() != 2 || r.Rows[0][2].Int() != 700 {
		t.Errorf("east group = %v", r.Rows[0])
	}
	if r.Rows[1][0].Str() != "west" || r.Rows[1][1].Int() != 4 {
		t.Errorf("west group = %v", r.Rows[1])
	}
}

func TestGroupByWithNulls(t *testing.T) {
	db := demoDB(t)
	if _, err := db.Exec("INSERT INTO parts (sku, name, price, qty) VALUES ('P8', 'no supplier', 2.0, 5)"); err != nil {
		t.Fatal(err)
	}
	r := exec1(t, db, "SELECT sid, COUNT(*) FROM parts GROUP BY sid ORDER BY sid")
	// NULL group sorts first.
	if len(r.Rows) != 4 || !r.Rows[0][0].IsNull() {
		t.Errorf("null group = %v", r.Rows)
	}
	// SUM skips NULLs.
	r = exec1(t, db, "SELECT SUM(sid) FROM parts")
	if r.Rows[0][0].Int() != 1+1+2+2+3+3 {
		t.Errorf("SUM skipping nulls = %v", r.Rows[0][0])
	}
}

func TestEmptyAggregate(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, "SELECT COUNT(*), SUM(qty) FROM parts WHERE sku = 'NOPE'")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 0 || !r.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", r.Rows)
	}
	// Grouped empty input yields no rows.
	r = exec1(t, db, "SELECT sid, COUNT(*) FROM parts WHERE sku = 'NOPE' GROUP BY sid")
	if len(r.Rows) != 0 {
		t.Errorf("empty grouped = %v", r.Rows)
	}
}

func TestOrderByAggregate(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, `SELECT sid, SUM(qty) AS total FROM parts
		GROUP BY sid ORDER BY SUM(qty) DESC LIMIT 1`)
	if r.Rows[0][0].Int() != 3 || r.Rows[0][1].Int() != 1002 {
		t.Errorf("top group = %v", r.Rows)
	}
}

func TestTextPredicates(t *testing.T) {
	db := demoDB(t)
	// parts.name has no FullText flag via CREATE TABLE; build a text table.
	if _, err := db.Exec("CREATE TABLE docs (id INTEGER NOT NULL, body TEXT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("docs")
	_ = tbl
	// Mark body as full-text by recreating via schema? CREATE TABLE has no
	// FULLTEXT syntax, so use the programmatic path like the integrator does.
	db2 := NewDatabase()
	def := mustPartsDef(t)
	if _, err := db2.CreateTable(def); err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]any{
		{"P1", "cordless drill 18V"},
		{"P2", "India ink bottle"},
		{"P3", "ballpoint pen black"},
	} {
		tb, _ := db2.Table("catalog")
		if _, err := tb.Insert([]value.Value{
			value.NewString(row[0].(string)), value.NewString(row[1].(string)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := db2.Exec("SELECT sku FROM catalog WHERE CONTAINS(name, 'drill')")
	if err != nil {
		t.Fatalf("CONTAINS: %v", err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "P1" {
		t.Errorf("CONTAINS = %v", r.Rows)
	}
	// Fuzzy typo.
	r, err = db2.Exec("SELECT sku FROM catalog WHERE FUZZY(name, 'drlls crdlss')")
	if err != nil {
		t.Fatalf("FUZZY: %v", err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "P1" {
		t.Errorf("FUZZY = %v", r.Rows)
	}
	// Synonym.
	db2.Synonyms().Declare("black ink", "india ink")
	r, err = db2.Exec("SELECT sku FROM catalog WHERE SYNONYM(name, 'black ink')")
	if err != nil {
		t.Fatalf("SYNONYM: %v", err)
	}
	found := false
	for _, row := range r.Rows {
		if row[0].Str() == "P2" {
			found = true
		}
	}
	if !found {
		t.Errorf("SYNONYM = %v", r.Rows)
	}
	// MATCHES combines; works in joins too (qualified).
	r, err = db2.Exec("SELECT c.sku FROM catalog c WHERE MATCHES(c.name, 'drlls')")
	if err != nil {
		t.Fatalf("MATCHES: %v", err)
	}
	if len(r.Rows) != 1 {
		t.Errorf("MATCHES = %v", r.Rows)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := demoDB(t)
	r := exec1(t, db, "UPDATE parts SET qty = qty + 1 WHERE sid = 1")
	if r.Rows[0][0].Int() != 2 {
		t.Errorf("update count = %v", r.Rows)
	}
	r = exec1(t, db, "SELECT qty FROM parts WHERE sku = 'P1'")
	if r.Rows[0][0].Int() != 11 {
		t.Errorf("updated qty = %v", r.Rows)
	}
	r = exec1(t, db, "DELETE FROM parts WHERE qty > 400")
	if r.Rows[0][0].Int() != 2 { // P4 (500), P6 (1000)
		t.Errorf("delete count = %v", r.Rows)
	}
	r = exec1(t, db, "SELECT COUNT(*) FROM parts")
	if r.Rows[0][0].Int() != 4 {
		t.Errorf("remaining = %v", r.Rows)
	}
}

func TestIndexAccessPath(t *testing.T) {
	db := demoDB(t)
	tbl, _ := db.Table("parts")
	if err := tbl.CreateIndex("qty"); err != nil {
		t.Fatal(err)
	}
	// Equality via index.
	r := exec1(t, db, "SELECT sku FROM parts WHERE qty = 200")
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "P3" {
		t.Errorf("indexed eq = %v", r.Rows)
	}
	// Range via index, with extra conjunct as residual.
	r = exec1(t, db, "SELECT sku FROM parts WHERE qty > 100 AND price < 2")
	if len(r.Rows) != 2 {
		t.Errorf("indexed range = %v", r.Rows)
	}
	// Exclusive bound correctness: qty > 200 must exclude 200.
	r = exec1(t, db, "SELECT sku FROM parts WHERE qty > 200")
	for _, row := range r.Rows {
		if row[0].Str() == "P3" {
			t.Error("exclusive bound included boundary row")
		}
	}
}

func TestInsertCoercion(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Exec("CREATE TABLE quotes (id INTEGER NOT NULL, price MONEY, at TIMESTAMP, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO quotes (id, price, at) VALUES (1, '$12.50', '2001-05-21')"); err != nil {
		t.Fatalf("coercing insert: %v", err)
	}
	r := exec1(t, db, "SELECT price FROM quotes WHERE id = 1")
	m, c := r.Rows[0][0].Money()
	if m != 1250 || c != "USD" {
		t.Errorf("coerced money = %d %s", m, c)
	}
}

func TestExecErrors(t *testing.T) {
	db := demoDB(t)
	bad := []string{
		"SELECT * FROM ghost",
		"SELECT ghost FROM parts",
		"SELECT * FROM parts p JOIN ghost g ON p.sid = g.id",
		"INSERT INTO ghost VALUES (1)",
		"INSERT INTO parts (ghost) VALUES (1)",
		"INSERT INTO parts (sku) VALUES (1, 2)",
		"UPDATE ghost SET x = 1",
		"UPDATE parts SET ghost = 1",
		"DELETE FROM ghost",
		"CREATE TABLE parts (x TEXT)",
		"CREATE TABLE bad (x BLOB)",
		"SELECT p.* FROM parts q",
		"SELECT * FROM parts p JOIN parts p ON p.sku = p.sku",
		"SELECT COUNT(*, 2) FROM parts",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
	// Duplicate key insert fails midway and reports the error.
	if _, err := db.Exec("INSERT INTO parts (sku, name, price, qty, sid) VALUES ('P1', 'dup', 1.0, 1, 1)"); err == nil {
		t.Error("duplicate insert should fail")
	}
}
