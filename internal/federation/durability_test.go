package federation

import (
	"context"
	"path/filepath"
	"testing"

	"cohera/internal/sqlparse"
	"cohera/internal/storage"
	"cohera/internal/wal"
)

// durableFed builds a two-site replicated federation whose sites and
// write-intent journal are backed by WALs under root. Calling it a
// second time with the same root models a process restart: the new
// generation recovers everything from disk.
func durableFed(t *testing.T, root string) (*Federation, *Site, *Site, *wal.Log) {
	t.Helper()
	fed := New(NewAgoric())
	w1 := NewSite("west-1")
	w2 := NewSite("west-2")
	for _, s := range []*Site{w1, w2} {
		if err := fed.AddSite(s); err != nil {
			t.Fatal(err)
		}
		l, rec, err := wal.Open(filepath.Join(root, s.Name()), wal.Options{Policy: wal.SyncNone, Name: s.Name()})
		if err != nil {
			t.Fatalf("wal.Open %s: %v", s.Name(), err)
		}
		t.Cleanup(func() { _ = l.Close() })
		if _, err := RestoreSite(s, l, rec); err != nil {
			t.Fatal(err)
		}
	}
	jl, jrec, err := wal.Open(filepath.Join(root, "journal"), wal.Options{Policy: wal.SyncNone, Name: "journal"})
	if err != nil {
		t.Fatalf("wal.Open journal: %v", err)
	}
	t.Cleanup(func() { _ = jl.Close() })
	if err := RestoreJournal(fed, jl, jrec); err != nil {
		t.Fatal(err)
	}
	pred, _ := sqlparse.ParseExpr("region = 'west'")
	frag := NewFragment("west", pred, w1, w2)
	if _, err := fed.DefineTable(partsDef(), frag); err != nil {
		t.Fatal(err)
	}
	return fed, w1, w2, jl
}

// TestFederationCrashRestoreConverges: writes land while one replica is
// down (journaling intents), the whole process "dies" (nothing is
// closed cleanly), and a second generation restores sites and journal
// from disk. The reconciler must then drain the recovered backlog into
// the recovered replica and converge both copies — no write lost, none
// double-applied.
func TestFederationCrashRestoreConverges(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()

	fed, w1, w2, jl := durableFed(t, root)
	frag := fed.GlobalTables()[0].Fragments[0]
	if err := fed.LoadFragment("parts", frag, []storage.Row{
		row("W1", "cordless drill", 99.5, "west"),
		row("W2", "forklift", 12000, "west"),
	}); err != nil {
		t.Fatal(err)
	}
	// Checkpoint one site and the journal so recovery exercises the
	// snapshot-plus-tail path, not just pure replay.
	if err := CheckpointSite(w1); err != nil {
		t.Fatal(err)
	}
	if err := CheckpointJournal(jl); err != nil {
		t.Fatal(err)
	}

	w2.SetDown(true)
	if _, _, err := fed.Exec(ctx, "INSERT INTO parts (sku, name, price, region) VALUES ('W3', 'crane', 7.5, 'west')"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fed.Exec(ctx, "UPDATE parts SET price = 100 WHERE sku = 'W1'"); err != nil {
		t.Fatal(err)
	}
	if p := fed.Journal().PendingTotal(); p == 0 {
		t.Fatal("expected journaled intents for the down replica")
	}
	want, err := w1.DB().TableDigest("parts")
	if err != nil {
		t.Fatal(err)
	}

	// Crash: no Close, no checkpoint. The next generation sees exactly
	// what reached the OS through the WAL appends.
	fed2, r1, r2, _ := durableFed(t, root)
	d1, err := r1.DB().TableDigest("parts")
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(want) {
		t.Fatalf("west-1 digest after restore = %+v, want %+v", d1, want)
	}
	if p := fed2.Journal().PendingTotal(); p == 0 {
		t.Fatal("journal backlog lost across restart")
	}

	rep, err := NewReconciler(fed2).RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed == 0 {
		t.Fatalf("no intents replayed: %+v", rep)
	}
	if p := fed2.Journal().PendingTotal(); p != 0 {
		t.Fatalf("pending after reconcile = %d, want 0", p)
	}
	d2, err := r2.DB().TableDigest("parts")
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Equal(want) {
		t.Fatalf("replica digests diverge after recovery: %+v vs %+v", d2, want)
	}
	if n := r2.TableRows("parts"); n != 3 {
		t.Fatalf("west-2 rows = %d, want 3", n)
	}
}

// TestFederationRestartIdempotent: a second restart after full
// convergence must not re-apply settled intents (the applied markers
// are durable too).
func TestFederationRestartIdempotent(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()

	fed, w1, w2, _ := durableFed(t, root)
	frag := fed.GlobalTables()[0].Fragments[0]
	if err := fed.LoadFragment("parts", frag, []storage.Row{row("W1", "drill", 5, "west")}); err != nil {
		t.Fatal(err)
	}
	w2.SetDown(true)
	if _, _, err := fed.Exec(ctx, "UPDATE parts SET price = 6 WHERE sku = 'W1'"); err != nil {
		t.Fatal(err)
	}
	w2.SetDown(false)
	if _, err := NewReconciler(fed).RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	want, _ := w1.DB().TableDigest("parts")

	fed2, _, r2, _ := durableFed(t, root)
	if p := fed2.Journal().PendingTotal(); p != 0 {
		t.Fatalf("settled intents resurrected: pending = %d", p)
	}
	rep, err := NewReconciler(fed2).RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 0 {
		t.Fatalf("settled intents replayed again: %+v", rep)
	}
	d2, _ := r2.DB().TableDigest("parts")
	if !d2.Equal(want) {
		t.Fatalf("digest after idempotent restart = %+v, want %+v", d2, want)
	}
}
