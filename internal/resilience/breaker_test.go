package resilience

import (
	"sync"
	"testing"
	"time"
)

// manualClock is a settable time source for deterministic breaker tests.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBreakerLifecycle(t *testing.T) {
	clock := &manualClock{t: time.Unix(0, 0)}
	var transitions []string
	b := &Breaker{
		FailureThreshold:  3,
		OpenTimeout:       time.Second,
		HalfOpenSuccesses: 2,
		Clock:             clock.Now,
		OnTransition: func(from, to State) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	}
	if b.State() != Closed || !b.Allow() {
		t.Fatal("new breaker should be closed and allowing")
	}
	// Two failures: still closed.
	b.RecordFailure()
	b.RecordFailure()
	if b.State() != Closed || b.ConsecutiveFailures() != 2 {
		t.Fatalf("state = %v failures = %d", b.State(), b.ConsecutiveFailures())
	}
	// A success resets the streak.
	b.RecordSuccess()
	if b.ConsecutiveFailures() != 0 {
		t.Fatal("success should reset the failure streak")
	}
	// Three consecutive failures trip it.
	b.RecordFailure()
	b.RecordFailure()
	b.RecordFailure()
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker should reject")
	}
	// Before the timeout it stays open.
	clock.Advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker should reject before OpenTimeout")
	}
	// After the timeout the next Allow half-opens.
	clock.Advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("expired open breaker should admit a probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// One success is not enough to close.
	b.RecordSuccess()
	if b.State() != HalfOpen {
		t.Fatal("one probe success should not close yet")
	}
	b.RecordSuccess()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after 2 probe successes", b.State())
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Errorf("transition %d = %s, want %s", i, transitions[i], want[i])
		}
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clock := &manualClock{t: time.Unix(0, 0)}
	b := &Breaker{FailureThreshold: 1, OpenTimeout: time.Second, Clock: clock.Now}
	b.RecordFailure()
	if b.State() != Open {
		t.Fatal("threshold 1 should open on first failure")
	}
	clock.Advance(time.Second)
	if !b.Allow() || b.State() != HalfOpen {
		t.Fatal("should half-open after timeout")
	}
	b.RecordFailure()
	if b.State() != Open {
		t.Fatal("probe failure should reopen")
	}
	// The open window restarts from the probe failure.
	if b.Allow() {
		t.Fatal("freshly reopened breaker should reject")
	}
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("should admit another probe after a full timeout")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := &Breaker{}
	for i := 0; i < 4; i++ {
		b.RecordFailure()
	}
	if b.State() != Closed {
		t.Fatal("default threshold is 5; 4 failures should not trip")
	}
	b.RecordFailure()
	if b.State() != Open {
		t.Fatal("5th failure should trip the default breaker")
	}
}

func TestBreakerReset(t *testing.T) {
	b := &Breaker{FailureThreshold: 1}
	b.RecordFailure()
	if b.State() != Open {
		t.Fatal("should be open")
	}
	b.Reset()
	if b.State() != Closed || !b.Allow() {
		t.Fatal("reset should force closed")
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := &Breaker{FailureThreshold: 2, OpenTimeout: time.Nanosecond}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if b.Allow() {
					if (n+j)%3 == 0 {
						b.RecordFailure()
					} else {
						b.RecordSuccess()
					}
				}
				_ = b.State()
			}
		}(i)
	}
	wg.Wait()
}
