# Developer entry points. `make check` is the full gate CI should run;
# `make test` is the quick tier-1 loop.

GO ?= go

.PHONY: build test lint race check

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/coheralint ./...

race:
	$(GO) test -race ./...

check:
	sh scripts/check.sh
