// Command coheralint runs the project's static-analysis suite
// (internal/analysis) over module packages and reports findings keyed by
// file:line:col. It exits 1 when any finding survives //lint:ignore
// filtering, so scripts/check.sh can use it as a gate.
//
// Usage:
//
//	coheralint [flags] [packages]
//
// Packages are directory patterns relative to the module root
// ("./...", "./internal/federation", "./internal/..."); the default is
// "./...". Flags:
//
//	-list             print the analyzers and exit
//	-only a,b         run only the named analyzers
//	-v                print a per-package progress line
//	-json             emit findings as NDJSON records instead of text
//	-timings          print load + per-analyzer wall times to stderr
//	-write-lockorder  regenerate internal/analysis/lockorder.golden and exit
//
// The lockorder analyzer diffs the observed lock graph against the
// blessed dump only on whole-module runs (no patterns, or "./...");
// partial loads see a partial graph and would report every unloaded
// edge as stale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cohera/internal/analysis"
)

// lockOrderGoldenRel locates the blessed lock-order dump inside the
// module.
const lockOrderGoldenRel = "internal/analysis/lockorder.golden"

// jsonFinding is the -json record schema CI consumes: one object per
// line, stable field names.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	verbose := flag.Bool("v", false, "print a per-package progress line")
	asJSON := flag.Bool("json", false, "emit findings as NDJSON records")
	timings := flag.Bool("timings", false, "print load and per-analyzer wall times to stderr")
	writeLockOrder := flag.Bool("write-lockorder", false, "regenerate "+lockOrderGoldenRel+" from the observed graph and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	loadStart := time.Now()
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fatal(err)
	}
	loadElapsed := time.Since(loadStart)
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintf(os.Stderr, "coheralint: loaded %s (%d files)\n", p.Path, len(p.Files))
		}
	}

	if *writeLockOrder {
		path := filepath.Join(root, lockOrderGoldenRel)
		content := analysis.FormatLockEdges(analysis.ComputeLockEdges(pkgs))
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "coheralint: wrote %s\n", lockOrderGoldenRel)
		return
	}
	if wholeModule(flag.Args()) {
		analysis.LockOrderGoldenFile = filepath.Join(root, lockOrderGoldenRel)
	}

	suite := analysis.DefaultSuite()
	if *only != "" {
		keep := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var filtered []analysis.Configured
		for _, c := range suite {
			if keep[c.Analyzer.Name] {
				filtered = append(filtered, c)
				delete(keep, c.Analyzer.Name)
			}
		}
		for n := range keep {
			fatal(fmt.Errorf("coheralint: unknown analyzer %q", n))
		}
		suite = filtered
	}

	diags, perAnalyzer := analysis.RunTimed(pkgs, suite)
	if *timings || *verbose {
		fmt.Fprintf(os.Stderr, "coheralint: loaded %d packages in %v\n", len(pkgs), loadElapsed.Round(time.Millisecond))
		for _, tm := range perAnalyzer {
			fmt.Fprintf(os.Stderr, "coheralint: %-12s %8v\n", tm.Name, tm.Elapsed.Round(time.Microsecond))
		}
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		// Report paths relative to the module root for stable output.
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		if *asJSON {
			if err := enc.Encode(jsonFinding{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			}); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "coheralint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// wholeModule reports whether the patterns cover the entire module, the
// precondition for diffing the whole-program lock graph against the
// blessed dump.
func wholeModule(patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			return true
		}
	}
	return false
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("coheralint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
