package xmlq

import (
	"strings"
	"testing"
)

func flworDoc(t *testing.T) *Node {
	t.Helper()
	doc, err := ParseXMLString(`<catalog>
		<product sku="P1"><name>cordless drill</name><price>99.50</price></product>
		<product sku="P2"><name>India ink</name><price>3.50</price></product>
		<product sku="P3"><name>forklift</name><price>12000</price></product>
	</catalog>`)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestFLWORBasic(t *testing.T) {
	q, err := ParseFLWOR(`for $p in //product return <offer><id>{$p/@sku}</id></offer>`)
	if err != nil {
		t.Fatalf("ParseFLWOR: %v", err)
	}
	nodes, err := q.Eval(flworDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	if got := nodes[0].String(); got != "<offer><id>P1</id></offer>" {
		t.Errorf("first = %q", got)
	}
}

func TestFLWORWhereNumericAndString(t *testing.T) {
	q, err := ParseFLWOR(`for $p in //product
		where $p/price > 50 and $p/@sku != 'P3'
		return <hit>{$p/name}</hit>`)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := q.Eval(flworDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].InnerText() != "cordless drill" {
		t.Errorf("nodes = %v", nodes)
	}
	// All six operators parse and evaluate.
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		q, err := ParseFLWOR(`for $p in //product where $p/price ` + op + ` 99.50 return <x/>`)
		if err != nil {
			t.Fatalf("op %s: %v", op, err)
		}
		if _, err := q.Eval(flworDoc(t)); err != nil {
			t.Fatalf("eval op %s: %v", op, err)
		}
	}
}

func TestFLWOROrderBy(t *testing.T) {
	q, err := ParseFLWOR(`for $p in //product
		order by $p/price descending
		return <r>{$p/@sku}</r>`)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := q.Eval(flworDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, n := range nodes {
		order = append(order, n.InnerText())
	}
	if strings.Join(order, ",") != "P3,P1,P2" {
		t.Errorf("order = %v", order)
	}
	// Ascending (default).
	q, _ = ParseFLWOR(`for $p in //product order by $p/price return <r>{$p/@sku}</r>`)
	nodes, _ = q.Eval(flworDoc(t))
	if nodes[0].InnerText() != "P2" {
		t.Errorf("ascending first = %q", nodes[0].InnerText())
	}
	// String ordering.
	q, _ = ParseFLWOR(`for $p in //product order by $p/name return <r>{$p/@sku}</r>`)
	nodes, _ = q.Eval(flworDoc(t))
	if nodes[0].InnerText() != "P2" { // "India ink" sorts before others
		t.Errorf("string order first = %q", nodes[0].InnerText())
	}
}

func TestFLWORConstructorFeatures(t *testing.T) {
	// Attributes with interpolation, nesting, literal text, self-closing.
	q, err := ParseFLWOR(`for $p in //product
		where $p/@sku = 'P1'
		return <offer id="x-{$p/@sku}" v="1"><info>price is {$p/price} USD</info><flag/></offer>`)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := q.Eval(flworDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	got := nodes[0].String()
	for _, frag := range []string{`id="x-P1"`, `v="1"`, "<info>price is 99.50 USD</info>", "<flag/>"} {
		if !strings.Contains(got, frag) {
			t.Errorf("constructed %q missing %q", got, frag)
		}
	}
}

func TestFLWOREvalToDoc(t *testing.T) {
	q, err := ParseFLWOR(`for $p in //product where $p/price < 100 return <r>{$p/@sku}</r>`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := q.EvalToDoc(flworDoc(t), "results")
	if err != nil {
		t.Fatal(err)
	}
	s := doc.String()
	if !strings.HasPrefix(s, "<results>") || strings.Count(s, "<r>") != 2 {
		t.Errorf("doc = %q", s)
	}
}

func TestFLWORBareVariable(t *testing.T) {
	q, err := ParseFLWOR(`for $p in //name return <n>{$p}</n>`)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := q.Eval(flworDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || nodes[0].InnerText() != "cordless drill" {
		t.Errorf("bare variable = %v", nodes)
	}
}

func TestFLWORParseErrors(t *testing.T) {
	bad := []string{
		"",
		"for p in //x return <r/>",
		"for $p //x return <r/>",
		"for $p in",
		"for $p in //x where return <r/>",
		"for $p in //x where $p/a ~ 1 return <r/>",
		"for $p in //x where $q/a = 1 return <r/>",
		"for $p in //x where $p/a = 'unterminated return <r/>",
		"for $p in //x order $p return <r/>",
		"for $p in //x return",
		"for $p in //x return <r>",
		"for $p in //x return <r>{$p/</r>",
		"for $p in //x return <r a=1/>",
		"for $p in //x return <r>{$q}</r>",
		"for $p in //x return <r/> trailing",
	}
	for _, src := range bad {
		if _, err := ParseFLWOR(src); err == nil {
			t.Errorf("ParseFLWOR(%q) should fail", src)
		}
	}
}

func TestFLWOREvalErrors(t *testing.T) {
	// Bad in-path surfaces at eval.
	q, err := ParseFLWOR(`for $p in //x[bad return <r/>`)
	if err == nil {
		// The in-path is token-delimited; "[bad" stays in the path and
		// fails at evaluation time.
		if _, err := q.Eval(flworDoc(t)); err == nil {
			t.Error("bad in-path should fail at eval")
		}
	}
}
