// Package schema defines relational schemas for the content integration
// engine. The paper's Characteristic 3 requires support for a multitude of
// schemas across vertical markets (airline seats vs. steel beams), so the
// catalog is dynamic: schemas are created, versioned and looked up at run
// time rather than compiled in.
package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cohera/internal/value"
)

// Column describes one attribute of a table.
type Column struct {
	// Name is the column identifier, case-insensitive on lookup.
	Name string
	// Kind is the column's declared value type.
	Kind value.Kind
	// NotNull rejects NULL on insert when set.
	NotNull bool
	// Taxonomy optionally names the taxonomy whose codes classify this
	// column's values (e.g. a part_name column tied to "unspsc").
	Taxonomy string
	// FullText marks the column for inverted-index maintenance so it is
	// searchable with CONTAINS/FUZZY predicates.
	FullText bool
}

// Table describes a relation: ordered columns plus an optional primary key.
type Table struct {
	// Name is the table identifier, case-insensitive on lookup.
	Name string
	// Columns in declaration order.
	Columns []Column
	// Key lists the primary key column names (may be empty).
	Key []string

	byName map[string]int // lazily built lowercase name → ordinal
	once   sync.Once
}

// NewTable builds a Table and validates it: at least one column, unique
// column names, and key columns that exist.
func NewTable(name string, cols []Column, key ...string) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("schema: table %q has no columns", name)
	}
	t := &Table{Name: name, Columns: cols, Key: key}
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		lc := strings.ToLower(c.Name)
		if lc == "" {
			return nil, fmt.Errorf("schema: table %q has an unnamed column", name)
		}
		if seen[lc] {
			return nil, fmt.Errorf("schema: table %q duplicates column %q", name, c.Name)
		}
		seen[lc] = true
	}
	for _, k := range key {
		if !seen[strings.ToLower(k)] {
			return nil, fmt.Errorf("schema: table %q key column %q does not exist", name, k)
		}
	}
	return t, nil
}

// MustTable is NewTable panicking on error, for statically known schemas in
// generators and tests.
func MustTable(name string, cols []Column, key ...string) *Table {
	t, err := NewTable(name, cols, key...)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Table) index() map[string]int {
	t.once.Do(func() {
		t.byName = make(map[string]int, len(t.Columns))
		for i, c := range t.Columns {
			t.byName[strings.ToLower(c.Name)] = i
		}
	})
	return t.byName
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.index()[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Column returns the named column definition.
func (t *Table) Column(name string) (Column, bool) {
	i := t.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return t.Columns[i], true
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// KeyIndexes returns the ordinals of the primary key columns.
func (t *Table) KeyIndexes() []int {
	out := make([]int, len(t.Key))
	for i, k := range t.Key {
		out[i] = t.ColumnIndex(k)
	}
	return out
}

// Validate checks a row against the schema: arity, kinds (NULL always
// admissible unless NotNull) and key non-nullness.
func (t *Table) Validate(row []value.Value) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("schema: table %q expects %d columns, row has %d",
			t.Name, len(t.Columns), len(row))
	}
	for i, c := range t.Columns {
		v := row[i]
		if v.IsNull() {
			if c.NotNull {
				return fmt.Errorf("schema: table %q column %q is NOT NULL", t.Name, c.Name)
			}
			continue
		}
		if v.Kind() != c.Kind && !(c.Kind == value.KindFloat && v.Kind() == value.KindInt) {
			return fmt.Errorf("schema: table %q column %q wants %s, got %s",
				t.Name, c.Name, c.Kind, v.Kind())
		}
	}
	for _, ki := range t.KeyIndexes() {
		if row[ki].IsNull() {
			return fmt.Errorf("schema: table %q key column %q is NULL", t.Name, t.Columns[ki].Name)
		}
	}
	return nil
}

// Project returns a new Table containing only the named columns, in the
// given order, preserving their definitions. Key information is dropped.
func (t *Table) Project(names []string) (*Table, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		c, ok := t.Column(n)
		if !ok {
			return nil, fmt.Errorf("schema: table %q has no column %q", t.Name, n)
		}
		cols = append(cols, c)
	}
	return NewTable(t.Name, cols)
}

// Clone returns a deep copy of the table definition with a new name.
func (t *Table) Clone(name string) *Table {
	cols := make([]Column, len(t.Columns))
	copy(cols, t.Columns)
	key := make([]string, len(t.Key))
	copy(key, t.Key)
	return &Table{Name: name, Columns: cols, Key: key}
}

// String renders the schema as a CREATE TABLE statement.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", t.Name)
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	if len(t.Key) > 0 {
		fmt.Fprintf(&b, ", PRIMARY KEY (%s)", strings.Join(t.Key, ", "))
	}
	b.WriteString(")")
	return b.String()
}

// Catalog is a thread-safe registry of table schemas. Each federation
// member and the integrator itself hold one.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// ErrDuplicateTable is returned when defining a table whose name exists.
var ErrDuplicateTable = fmt.Errorf("schema: table already exists")

// ErrNoTable is returned when looking up an undefined table.
var ErrNoTable = fmt.Errorf("schema: no such table")

// Define registers a table schema.
func (c *Catalog) Define(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	lc := strings.ToLower(t.Name)
	if _, ok := c.tables[lc]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateTable, t.Name)
	}
	c.tables[lc] = t
	return nil
}

// Lookup fetches a table schema by name.
func (c *Catalog) Lookup(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Drop removes a table schema.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	lc := strings.ToLower(name)
	if _, ok := c.tables[lc]; !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	delete(c.tables, lc)
	return nil
}

// Names returns the defined table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}
