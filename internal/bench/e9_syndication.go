package bench

import (
	"fmt"
	"time"

	"cohera/internal/syndicate"
	"cohera/internal/value"
	"cohera/internal/workload"
)

// E9Syndication measures custom syndication throughput
// (Characteristic 4): buyer-dependent pricing and availability via
// business rules, rendered per recipient in receiver-makes-right (CSV/
// JSON) and sender-makes-right (legislated XML) formats.
func E9Syndication(cfg Config) (Table, error) {
	buyers, itemsPerQuote, quotes := 3, 20, 2000
	if cfg.Quick {
		quotes = 300
	}
	t := Table{
		ID:      "E9",
		Title:   "buyer-specific quoting and formatting throughput",
		Headers: []string{"output", "rules", "quotes/s", "bytes/quote"},
		Notes:   "expected shape: rule evaluation is cheap; formatting dominates; all formats within the same order of magnitude",
	}
	s := syndicate.New()
	s.AddRule(
		syndicate.TierDiscount{Tier: "platinum", Pct: 15},
		syndicate.TierDiscount{Tier: "gold", Pct: 7},
		syndicate.VolumeDiscount{MinQty: 100, Pct: 5},
		syndicate.AvailabilityBump{Tier: "platinum", Extra: 2},
	)
	s.AddBundle(syndicate.Bundle{Name: "starter", SKUs: []string{"S0", "S1"}, Pct: 10})

	items := make([]syndicate.Item, itemsPerQuote)
	for i := range items {
		p := workload.MROVocabulary()[i%len(workload.MROVocabulary())]
		items[i] = syndicate.Item{
			SKU: fmt.Sprintf("S%d", i), Name: p.Canonical,
			Price: value.NewMoney(p.BasePriceCents, "USD"), Available: int64(i % 7),
		}
	}
	tiers := []string{"platinum", "gold", "standard"}
	formats := []syndicate.Formatter{
		syndicate.CSVFormatter{},
		syndicate.JSONFormatter{},
		syndicate.LegislatedXML{
			Root: "MarketFeed", RowElement: "Offer",
			FieldNames: [5]string{"PartNo", "Description", "UnitPrice", "Quantity", "InStock"},
		},
	}
	for _, f := range formats {
		start := time.Now()
		bytes := 0
		for q := 0; q < quotes; q++ {
			b := syndicate.Buyer{ID: fmt.Sprintf("b%d", q%buyers), Tier: tiers[q%len(tiers)]}
			reqs := make([]syndicate.Request, len(items))
			for i, it := range items {
				reqs[i] = syndicate.Request{Item: it, Qty: int64(1 + (q+i)%150)}
			}
			out := s.QuoteAll(b, reqs)
			body, err := f.Format(out)
			if err != nil {
				return t, err
			}
			bytes += len(body)
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			f.ContentType(),
			"5",
			fmt.Sprintf("%.0f", float64(quotes)/elapsed.Seconds()),
			fmt.Sprintf("%d", bytes/quotes),
		})
	}
	return t, nil
}
