package bench

import (
	"context"
	"fmt"
	"time"

	"cohera/internal/federation"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// E14AntiEntropy measures replica repair time against outage size: a
// two-replica fragment takes one replica down, runs W writes (half
// fresh INSERTs, half searched UPDATEs) that all journal intents for
// the dead copy, then times one reconciler pass bringing it back —
// once replaying the intact journal, and once forced onto the
// copy-repair fallback by tearing the journal tail. The claim under
// test is the crossover: journal replay scales with the number of
// missed writes (each searched statement re-executes against the
// table), while copy-repair scales with table size alone — so replay
// wins short outages and copying wins once the backlog rivals the
// table.
func E14AntiEntropy(cfg Config) (Table, error) {
	base := 4096
	outages := []int{4, 16, 64, 256, 1024}
	reps := 3
	if cfg.Quick {
		base = 512
		outages = []int{4, 16}
		reps = 1
	}
	t := Table{
		ID:      "E14",
		Title:   "anti-entropy repair time vs outage size: journal replay vs copy-repair",
		Headers: []string{"base rows", "missed writes", "mode", "median repair wall", "per-write"},
		Notes:   "expected shape: replay wall grows with the missed-write count, copy-repair stays near the (base + missed) table copy cost; the crossover is where the backlog rivals the table size",
	}

	ctx := context.Background()
	for _, missed := range outages {
		for _, mode := range []string{"replay", "copy-repair"} {
			walls := make([]time.Duration, 0, reps)
			for r := 0; r < reps; r++ {
				wall, err := repairOnce(ctx, base, missed, mode, cfg.Seed+int64(r))
				if err != nil {
					return t, fmt.Errorf("E14 %s missed=%d: %w", mode, missed, err)
				}
				walls = append(walls, wall)
			}
			med := medianDuration(walls)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", base),
				fmt.Sprintf("%d", missed),
				mode,
				fmt.Sprintf("%.2fms", float64(med.Microseconds())/1000),
				fmt.Sprintf("%.1fµs", float64(med.Microseconds())/float64(missed)),
			})
		}
	}
	return t, nil
}

// repairOnce builds a fresh two-replica federation with `base` rows,
// journals `missed` writes against a downed replica, and times the
// reconciler pass that repairs it — by replay (intact journal) or by
// copy (torn journal), verifying the digests converge either way.
func repairOnce(ctx context.Context, base, missed int, mode string, seed int64) (time.Duration, error) {
	def := schema.MustTable("stock", []schema.Column{
		{Name: "sku", Kind: value.KindString, NotNull: true},
		{Name: "qty", Kind: value.KindInt},
	}, "sku")
	fed := federation.New(federation.NewAgoric())
	a := federation.NewSite("rep-a")
	b := federation.NewSite("rep-b")
	for _, s := range []*federation.Site{a, b} {
		if err := fed.AddSite(s); err != nil {
			return 0, err
		}
	}
	frag := federation.NewFragment("all", nil, a, b)
	if _, err := fed.DefineTable(def, frag); err != nil {
		return 0, err
	}
	rows := make([]storage.Row, base)
	for i := range rows {
		rows[i] = storage.Row{
			value.NewString(fmt.Sprintf("P%07d", i)),
			value.NewInt((int64(i)*7 + seed) % 500),
		}
	}
	if err := fed.LoadFragment("stock", frag, rows); err != nil {
		return 0, err
	}

	a.SetDown(true)
	for i := 0; i < missed; i++ {
		var sql string
		if i%2 == 0 {
			sql = fmt.Sprintf("INSERT INTO stock (sku, qty) VALUES ('N%07d', %d)", i, i%500)
		} else {
			sql = fmt.Sprintf("UPDATE stock SET qty = qty + 1 WHERE sku = 'P%07d'", (i*37)%base)
		}
		if _, _, err := fed.Exec(ctx, sql); err != nil {
			return 0, err
		}
	}
	if got := fed.Journal().PendingAt(a.Name(), "stock"); got != missed {
		return 0, fmt.Errorf("pending = %d, want %d", got, missed)
	}
	if mode == "copy-repair" {
		grp := fed.Journal().Group(a.Name(), "stock")
		grp.TruncateTail("all", 3)
		if !grp.Lost() {
			return 0, fmt.Errorf("torn tail not detected")
		}
	}
	a.SetDown(false)

	r := federation.NewReconciler(fed)
	start := time.Now()
	rep, err := r.RunOnce(ctx)
	if err != nil {
		return 0, err
	}
	wall := time.Since(start)
	switch mode {
	case "replay":
		if rep.Replayed != missed || rep.CopyRepaired != 0 {
			return 0, fmt.Errorf("replay mode report: %+v", rep)
		}
	case "copy-repair":
		if rep.CopyRepaired != 1 || rep.Replayed != 0 {
			return 0, fmt.Errorf("copy mode report: %+v", rep)
		}
	}
	da, err := a.DB().TableDigest("stock")
	if err != nil {
		return 0, err
	}
	db, err := b.DB().TableDigest("stock")
	if err != nil {
		return 0, err
	}
	if !da.Equal(db) {
		return 0, fmt.Errorf("repair did not converge: %+v vs %+v", da, db)
	}
	return wall, nil
}
