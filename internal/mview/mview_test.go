package mview

import (
	"context"
	"testing"
	"time"

	"cohera/internal/federation"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

func hotelsDef() *schema.Table {
	return schema.MustTable("hotels", []schema.Column{
		{Name: "name", Kind: value.KindString, NotNull: true},
		{Name: "city", Kind: value.KindString},
		{Name: "miles", Kind: value.KindFloat},
		{Name: "available", Kind: value.KindInt},
	}, "name")
}

func hotelRow(name, city string, miles float64, avail int64) storage.Row {
	return storage.Row{
		value.NewString(name), value.NewString(city),
		value.NewFloat(miles), value.NewInt(avail),
	}
}

func setup(t *testing.T) (*federation.Federation, *federation.Fragment, *Manager) {
	t.Helper()
	fed := federation.New(federation.NewAgoric())
	site := federation.NewSite("chain-1")
	if err := fed.AddSite(site); err != nil {
		t.Fatal(err)
	}
	frag := federation.NewFragment("all", nil, site)
	if _, err := fed.DefineTable(hotelsDef(), frag); err != nil {
		t.Fatal(err)
	}
	if err := fed.LoadFragment("hotels", frag, []storage.Row{
		hotelRow("Airport Inn", "Atlanta", 2.5, 5),
		hotelRow("Downtown Suites", "Atlanta", 11.0, 3),
		hotelRow("Bayview", "Oakland", 1.0, 9),
	}); err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(fed, "matview-cache")
	if err != nil {
		t.Fatal(err)
	}
	return fed, frag, mgr
}

func TestCreateAndQueryView(t *testing.T) {
	fed, _, mgr := setup(t)
	ctx := context.Background()
	v, err := mgr.Create(ctx, "atlanta_hotels",
		"SELECT name, miles FROM hotels WHERE city = 'Atlanta'", 0)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if v.Rows() != 2 || v.Refreshes() != 1 {
		t.Errorf("view rows=%d refreshes=%d", v.Rows(), v.Refreshes())
	}
	// The view is queryable through the federation like any table —
	// data independence.
	res, err := fed.Query(ctx, "SELECT name FROM atlanta_hotels WHERE miles < 10")
	if err != nil {
		t.Fatalf("query view: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Airport Inn" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestViewStalenessAndRefresh(t *testing.T) {
	fed, frag, mgr := setup(t)
	ctx := context.Background()
	if _, err := mgr.Create(ctx, "avail_snapshot",
		"SELECT name, available FROM hotels", 0); err != nil {
		t.Fatal(err)
	}
	// Source data changes (a room is sold).
	if err := fed.LoadFragment("hotels", frag, []storage.Row{
		hotelRow("Airport Inn", "Atlanta", 2.5, 0),
	}); err != nil {
		t.Fatal(err)
	}
	// Stale view still shows 5 — the warehouse problem.
	res, err := fed.Query(ctx, "SELECT available FROM avail_snapshot WHERE name = 'Airport Inn'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		// expected stale value is 5
		if res.Rows[0][0].Int() != 5 {
			t.Fatalf("unexpected value %v", res.Rows[0][0])
		}
	} else {
		t.Fatal("view refreshed itself without being asked")
	}
	// Live table shows 0.
	live, _ := fed.Query(ctx, "SELECT available FROM hotels WHERE name = 'Airport Inn'")
	if live.Rows[0][0].Int() != 0 {
		t.Errorf("live = %v", live.Rows[0][0])
	}
	// Manual refresh catches up.
	if err := mgr.Refresh(ctx, "avail_snapshot"); err != nil {
		t.Fatal(err)
	}
	res, _ = fed.Query(ctx, "SELECT available FROM avail_snapshot WHERE name = 'Airport Inn'")
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("after refresh = %v", res.Rows[0][0])
	}
	v, _ := mgr.View("avail_snapshot")
	if v.Refreshes() != 2 || v.LastErr() != nil {
		t.Errorf("refreshes=%d err=%v", v.Refreshes(), v.LastErr())
	}
}

func TestHybridQuery(t *testing.T) {
	// Static attributes in a view (fetch in advance), availability from
	// the live table (fetch on demand), joined in one query — the paper's
	// hotel example.
	fed, frag, mgr := setup(t)
	ctx := context.Background()
	if _, err := mgr.Create(ctx, "hotel_info",
		"SELECT name AS hname, city, miles FROM hotels", 0); err != nil {
		t.Fatal(err)
	}
	// Availability changes after the view materialized.
	if err := fed.LoadFragment("hotels", frag, []storage.Row{
		hotelRow("Airport Inn", "Atlanta", 2.5, 1),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := fed.Query(ctx, `
		SELECT i.hname, h.available FROM hotel_info i
		JOIN hotels h ON i.hname = h.name
		WHERE i.city = 'Atlanta' AND i.miles < 10 AND h.available > 0`)
	if err != nil {
		t.Fatalf("hybrid query: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Airport Inn" || res.Rows[0][1].Int() != 1 {
		t.Errorf("hybrid = %v", res.Rows)
	}
}

func TestAutoRefresh(t *testing.T) {
	fed, frag, mgr := setup(t)
	ctx := context.Background()
	v, err := mgr.Create(ctx, "auto_view",
		"SELECT name, available FROM hotels", 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	mgr.StartAuto(context.Background())
	defer mgr.Stop()
	if err := fed.LoadFragment("hotels", frag, []storage.Row{
		hotelRow("Airport Inn", "Atlanta", 2.5, 0),
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		res, err := fed.Query(ctx, "SELECT available FROM auto_view WHERE name = 'Airport Inn'")
		if err == nil && len(res.Rows) == 1 && res.Rows[0][0].Int() == 0 {
			if v.Refreshes() < 2 {
				t.Errorf("refreshes = %d", v.Refreshes())
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("auto refresh never caught up")
}

func TestCreateErrors(t *testing.T) {
	_, _, mgr := setup(t)
	ctx := context.Background()
	if _, err := mgr.Create(ctx, "v", "not sql", 0); err == nil {
		t.Error("bad SQL should fail")
	}
	if _, err := mgr.Create(ctx, "v", "SELECT * FROM ghost", 0); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := mgr.Create(ctx, "hotels", "SELECT * FROM hotels", 0); err == nil {
		t.Error("name clash with global table should fail")
	}
	if _, err := mgr.View("ghost"); err == nil {
		t.Error("missing view should fail")
	}
	if err := mgr.Refresh(ctx, "ghost"); err == nil {
		t.Error("refreshing missing view should fail")
	}
}

func TestViewAge(t *testing.T) {
	_, _, mgr := setup(t)
	v, err := mgr.Create(context.Background(), "v1", "SELECT name FROM hotels", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Age() > time.Minute {
		t.Errorf("fresh view age = %v", v.Age())
	}
	if len(mgr.Views()) != 1 {
		t.Errorf("Views = %d", len(mgr.Views()))
	}
}
