// Command coherasmoke is the CI smoke probe for the observability
// endpoints: it assembles the same handler stack coherad serves —
// obs.Handler in front of a remote.Server publishing one table — runs a
// fetch through it to move the metrics, then asserts that /healthz
// answers 200 and that /metrics emits non-empty, well-formed Prometheus
// text. Exit status 0 means the daemon surface is healthy; any defect
// prints a diagnostic and exits 1. scripts/check.sh runs it as a gate.
package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"cohera/internal/obs"
	"cohera/internal/remote"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "coherasmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("coherasmoke: /healthz ok, /metrics well-formed")
}

func run() error {
	srv := remote.NewServer()
	tbl, err := demoTable()
	if err != nil {
		return err
	}
	srv.PublishTable(tbl, "sku")
	h := obs.NewHandler(srv)
	h.Slow = obs.NewSlowLog(0)
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Exercise the content path first so the registry has real series.
	ctx := context.Background()
	cl := remote.Dial(ts.URL, "")
	sources, err := cl.Tables(ctx)
	if err != nil {
		return fmt.Errorf("/tables: %w", err)
	}
	if len(sources) != 1 {
		return fmt.Errorf("/tables: want 1 source, got %d", len(sources))
	}
	rows, err := sources[0].Fetch(ctx, nil)
	if err != nil {
		return fmt.Errorf("/fetch: %w", err)
	}
	if len(rows) == 0 {
		return fmt.Errorf("/fetch: no rows")
	}

	if err := checkHealth(ts.URL); err != nil {
		return err
	}
	return checkMetrics(ts.URL)
}

func checkHealth(base string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("/healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/healthz: status %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("/healthz: reading body: %w", err)
	}
	if strings.TrimSpace(string(body)) != "ok" {
		return fmt.Errorf("/healthz: body %q, want \"ok\"", body)
	}
	return nil
}

// checkMetrics asserts the exposition is non-empty and well-formed:
// every non-comment line is `name{labels} value` or `name value`, every
// series is preceded by # HELP and # TYPE for its family, and the
// series the smoke traffic must have produced are present.
func checkMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: status %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("/metrics: reading body: %w", err)
	}
	text := string(body)
	if strings.TrimSpace(text) == "" {
		return fmt.Errorf("/metrics: empty exposition")
	}
	typed := map[string]bool{}
	series := 0
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) < 4 {
				return fmt.Errorf("/metrics line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				typed[parts[2]] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("/metrics line %d: unknown comment %q", ln+1, line)
		}
		name := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			if !strings.Contains(line, "} ") {
				return fmt.Errorf("/metrics line %d: unterminated labels %q", ln+1, line)
			}
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
		} else {
			return fmt.Errorf("/metrics line %d: no value %q", ln+1, line)
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[family] {
			return fmt.Errorf("/metrics line %d: series %q has no # TYPE", ln+1, name)
		}
		series++
	}
	if series == 0 {
		return fmt.Errorf("/metrics: no series emitted")
	}
	for _, want := range []string{
		"cohera_remote_server_requests_total",
		"cohera_remote_client_requests_total",
		"cohera_wrapper_fetches_total",
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("/metrics: missing expected series %s", want)
		}
	}
	return nil
}

func demoTable() (*storage.Table, error) {
	def, err := schema.NewTable("catalog", []schema.Column{
		{Name: "sku", Kind: value.KindString},
		{Name: "price", Kind: value.KindFloat},
	})
	if err != nil {
		return nil, err
	}
	tbl := storage.NewTable(def)
	for i, sku := range []string{"drill-01", "saw-02", "vise-03"} {
		if _, err := tbl.Insert(storage.Row{
			value.NewString(sku), value.NewFloat(float64(10 * (i + 1))),
		}); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}
