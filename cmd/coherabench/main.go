// Command coherabench runs the experiment suite (E1–E10 in DESIGN.md)
// and prints each result table. By default it runs the full sweeps used
// to produce EXPERIMENTS.md; -quick shrinks them for a fast smoke run.
//
//	coherabench            # all experiments, full sweeps
//	coherabench -quick     # all experiments, small sweeps
//	coherabench -e E3,E5   # a subset
//	coherabench -seed 7    # different deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cohera/internal/bench"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "run reduced sweeps")
		only  = flag.String("e", "", "comma-separated experiment ids (default: all)")
		seed  = flag.Int64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	cfg := bench.Full()
	if *quick {
		cfg = bench.Quick()
	}
	cfg.Seed = *seed

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ran := 0
	for _, e := range bench.All() {
		if len(want) > 0 && !want[strings.ToUpper(e.ID)] {
			continue
		}
		start := time.Now()
		t, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		t.Print(os.Stdout)
		fmt.Printf("  (%s in %s)\n", e.Desc, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *only)
		os.Exit(1)
	}
}
