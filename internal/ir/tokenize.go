// Package ir implements the information-retrieval services required by
// content integration (paper, Characteristic 7): tokenization, an inverted
// index with TF-IDF ranking, synonym expansion, and fuzzy (approximate)
// matching so that a query for "drlls: crdlss" finds cordless drills.
//
// The engine plays the architectural role AltaVista's text engine plays in
// Cohera Integrate: it is compiled into the query engine and modeled by
// the optimizer as an access path for text predicates.
package ir

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase terms. Letters and digits form
// tokens; everything else separates. Single-character tokens are kept:
// part numbers like "a 4" matter in catalogs.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// stopwords are dropped at indexing and query time. The list is small:
// catalog text is terse and over-aggressive stopping hurts recall.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "the": true, "of": true,
	"for": true, "with": true, "in": true, "on": true, "to": true,
}

// IsStopword reports whether the term is on the stopword list.
func IsStopword(term string) bool { return stopwords[term] }

// Stem applies a light suffix-stripping stemmer (a reduced Porter step 1)
// suitable for product text: plurals and simple -ing/-ed forms fold
// together without mangling part numbers.
func Stem(term string) string {
	if len(term) <= 3 || hasDigit(term) {
		return term
	}
	switch {
	case strings.HasSuffix(term, "sses"):
		return term[:len(term)-2]
	case strings.HasSuffix(term, "ies"):
		return term[:len(term)-3] + "y"
	case strings.HasSuffix(term, "ss"):
		return term
	case strings.HasSuffix(term, "s"):
		return term[:len(term)-1]
	}
	return term
}

func hasDigit(s string) bool {
	for _, r := range s {
		if unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

// Terms tokenizes, removes stopwords and stems — the full analysis chain
// applied identically at index and query time.
func Terms(text string) []string {
	raw := Tokenize(text)
	out := raw[:0]
	for _, t := range raw {
		if IsStopword(t) {
			continue
		}
		out = append(out, Stem(t))
	}
	return out
}
