package analysis

import (
	"os"
	"strings"
	"testing"
)

// TestLockOrderGoldenCurrent loads the real module — the same pass
// cmd/coheralint runs — and asserts the checked-in blessed dump still
// matches the observed lock graph byte for byte. A mismatch means a
// lock was added, removed, or reordered without review: run
// `go run ./cmd/coheralint -write-lockorder ./...` and commit the diff.
func TestLockOrderGoldenCurrent(t *testing.T) {
	l, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	got := FormatLockEdges(ComputeLockEdges(pkgs))
	want, err := os.ReadFile("lockorder.golden")
	if err != nil {
		t.Fatalf("reading blessed dump: %v", err)
	}
	if got != string(want) {
		t.Errorf("observed lock graph differs from lockorder.golden; review the diff and regenerate with coheralint -write-lockorder\n--- observed ---\n%s--- blessed ---\n%s", got, want)
	}
}

// TestLockOrderAcyclic is the deadlock regression test for the whole
// module: the journal Group lock is held across federation callbacks
// that reach site, breaker, table, catalog, and index locks, so any
// path acquiring Group.mu while holding one of those would deadlock
// under concurrency. The graph must stay a DAG with no self-edges.
func TestLockOrderAcyclic(t *testing.T) {
	l, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	edges := ComputeLockEdges(pkgs)
	if len(edges) == 0 {
		t.Fatal("no lock-order edges observed: the analyzer lost sight of the real lock graph")
	}
	for _, e := range edges {
		if e.From == e.To {
			t.Errorf("self-deadlock edge %s at %s (via %s)", e.From, e.Pos, e.Via)
		}
	}
	if comp := lockSCCs(edges); len(comp) != 0 {
		var nodes []string
		for n := range comp {
			nodes = append(nodes, n)
		}
		t.Errorf("lock-order cycle among %s", strings.Join(nodes, ", "))
	}
}

// TestLockOrderHubEdges pins the load-bearing facts of the topology:
// the journal group lock is the ordering hub, held while the per-site
// scoreboard, breaker, and storage locks are taken — never the
// reverse.
func TestLockOrderHubEdges(t *testing.T) {
	l, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool)
	for _, e := range ComputeLockEdges(pkgs) {
		have[e.From+" -> "+e.To] = true
	}
	for _, want := range []string{
		"journal.Group.mu -> federation.Site.mu",
		"journal.Group.mu -> resilience.Breaker.mu",
		"journal.Group.mu -> storage.Table.mu",
		"storage.Table.mu -> ir.Index.mu",
	} {
		if !have[want] {
			t.Errorf("expected blessed edge %q not observed; the interprocedural pass lost a real acquisition path", want)
		}
	}
}
