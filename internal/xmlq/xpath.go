package xmlq

import (
	"fmt"
	"strconv"
	"strings"
)

// XPath evaluates a path expression against a node and returns the
// matching nodes in document order. The supported subset covers what
// wrapper navigation and integrated XML views need:
//
//	/a/b          child steps from the root
//	a/b           child steps from the context node
//	//a           descendant-or-self step
//	*             any element
//	.             context node
//	..            parent
//	@attr         attribute access (terminal step; yields text nodes)
//	text()        text children
//	a[3]          positional predicate (1-based)
//	a[@k='v']     attribute equality predicate
//	a[b='v']      child-text equality predicate
//	a[@k]         attribute existence predicate
func XPath(n *Node, path string) ([]*Node, error) {
	steps, fromRoot, err := parsePath(path)
	if err != nil {
		return nil, err
	}
	ctx := []*Node{n}
	if fromRoot {
		root := n
		for root.Parent != nil {
			root = root.Parent
		}
		ctx = []*Node{root}
	}
	for _, st := range steps {
		next, err := applyStep(ctx, st)
		if err != nil {
			return nil, err
		}
		ctx = next
	}
	return ctx, nil
}

// XPathOne returns the first match or nil.
func XPathOne(n *Node, path string) (*Node, error) {
	ms, err := XPath(n, path)
	if err != nil {
		return nil, err
	}
	if len(ms) == 0 {
		return nil, nil
	}
	return ms[0], nil
}

// XPathString returns the inner text of the first match ("" when none).
func XPathString(n *Node, path string) (string, error) {
	m, err := XPathOne(n, path)
	if err != nil || m == nil {
		return "", err
	}
	if m.IsText() {
		return strings.TrimSpace(m.Text), nil
	}
	return m.InnerText(), nil
}

type step struct {
	descendant bool // // prefix
	name       string
	attr       string // @attr terminal
	textFn     bool   // text()
	self       bool   // .
	parent     bool   // ..
	pred       *predicate
}

type predicate struct {
	position int    // 1-based; 0 when unused
	attr     string // attribute name (or "" for child test)
	child    string // child element name
	val      string // comparison value; equality only
	exists   bool   // existence-only test
}

func parsePath(path string) ([]step, bool, error) {
	path = strings.TrimSpace(path)
	if path == "" {
		return nil, false, fmt.Errorf("xmlq: empty path")
	}
	fromRoot := false
	if strings.HasPrefix(path, "/") {
		fromRoot = true
	}
	var steps []step
	i := 0
	for i < len(path) {
		desc := false
		for i < len(path) && path[i] == '/' {
			i++
			if i < len(path) && path[i] == '/' {
				desc = true
			}
		}
		if i >= len(path) {
			break
		}
		j := i
		depth := 0
		for j < len(path) && (path[j] != '/' || depth > 0) {
			switch path[j] {
			case '[':
				depth++
			case ']':
				depth--
			}
			j++
		}
		raw := path[i:j]
		i = j
		st, err := parseStep(raw)
		if err != nil {
			return nil, false, err
		}
		st.descendant = desc
		steps = append(steps, st)
	}
	if len(steps) == 0 {
		return nil, false, fmt.Errorf("xmlq: path %q has no steps", path)
	}
	return steps, fromRoot, nil
}

func parseStep(raw string) (step, error) {
	var st step
	// Predicate?
	if k := strings.IndexByte(raw, '['); k >= 0 {
		if !strings.HasSuffix(raw, "]") {
			return st, fmt.Errorf("xmlq: malformed predicate in %q", raw)
		}
		inner := raw[k+1 : len(raw)-1]
		raw = raw[:k]
		p, err := parsePredicate(inner)
		if err != nil {
			return st, err
		}
		st.pred = &p
	}
	switch {
	case raw == ".":
		st.self = true
	case raw == "..":
		st.parent = true
	case raw == "text()":
		st.textFn = true
	case strings.HasPrefix(raw, "@"):
		st.attr = raw[1:]
		if st.attr == "" {
			return st, fmt.Errorf("xmlq: empty attribute step")
		}
	default:
		if raw == "" {
			return st, fmt.Errorf("xmlq: empty step")
		}
		st.name = raw
	}
	return st, nil
}

func parsePredicate(inner string) (predicate, error) {
	inner = strings.TrimSpace(inner)
	if inner == "" {
		return predicate{}, fmt.Errorf("xmlq: empty predicate")
	}
	if n, err := strconv.Atoi(inner); err == nil {
		if n < 1 {
			return predicate{}, fmt.Errorf("xmlq: positions are 1-based, got %d", n)
		}
		return predicate{position: n}, nil
	}
	var p predicate
	expr := inner
	if strings.HasPrefix(expr, "@") {
		expr = expr[1:]
		if eq := strings.IndexByte(expr, '='); eq >= 0 {
			p.attr = strings.TrimSpace(expr[:eq])
			v, err := unquote(strings.TrimSpace(expr[eq+1:]))
			if err != nil {
				return p, err
			}
			p.val = v
		} else {
			p.attr = strings.TrimSpace(expr)
			p.exists = true
		}
		if p.attr == "" {
			return p, fmt.Errorf("xmlq: empty attribute in predicate %q", inner)
		}
		return p, nil
	}
	eq := strings.IndexByte(expr, '=')
	if eq < 0 {
		return p, fmt.Errorf("xmlq: unsupported predicate %q", inner)
	}
	p.child = strings.TrimSpace(expr[:eq])
	v, err := unquote(strings.TrimSpace(expr[eq+1:]))
	if err != nil {
		return p, err
	}
	p.val = v
	return p, nil
}

func unquote(s string) (string, error) {
	if len(s) >= 2 && (s[0] == '\'' && s[len(s)-1] == '\'' || s[0] == '"' && s[len(s)-1] == '"') {
		return s[1 : len(s)-1], nil
	}
	return "", fmt.Errorf("xmlq: expected quoted value, got %q", s)
}

func applyStep(ctx []*Node, st step) ([]*Node, error) {
	var out []*Node
	push := func(n *Node) { out = append(out, n) }
	for _, n := range ctx {
		switch {
		case st.self:
			push(n)
		case st.parent:
			if n.Parent != nil {
				push(n.Parent)
			}
		case st.textFn:
			for _, c := range n.Children {
				if c.IsText() {
					push(c)
				}
			}
		case st.attr != "":
			if v, ok := n.Attrs[st.attr]; ok {
				push(&Node{Text: v, Parent: n})
			}
		default:
			if st.descendant {
				var walk func(*Node)
				walk = func(x *Node) {
					for _, c := range x.Children {
						if !c.IsText() && (st.name == "*" || c.Name == st.name) {
							push(c)
						}
						walk(c)
					}
				}
				walk(n)
			} else {
				for _, c := range n.Children {
					if !c.IsText() && (st.name == "*" || c.Name == st.name) {
						push(c)
					}
				}
			}
		}
	}
	if st.pred != nil {
		filtered, err := applyPredicate(out, *st.pred)
		if err != nil {
			return nil, err
		}
		out = filtered
	}
	return out, nil
}

func applyPredicate(nodes []*Node, p predicate) ([]*Node, error) {
	if p.position > 0 {
		if p.position > len(nodes) {
			return nil, nil
		}
		return nodes[p.position-1 : p.position], nil
	}
	var out []*Node
	for _, n := range nodes {
		switch {
		case p.attr != "" && p.exists:
			if _, ok := n.Attrs[p.attr]; ok {
				out = append(out, n)
			}
		case p.attr != "":
			if n.Attrs[p.attr] == p.val {
				out = append(out, n)
			}
		case p.child != "":
			for _, c := range n.Elements() {
				if c.Name == p.child && c.InnerText() == p.val {
					out = append(out, n)
					break
				}
			}
		}
	}
	return out, nil
}
