package federation

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cohera/internal/plan"
	"cohera/internal/remote"
	"cohera/internal/sqlparse"
	"cohera/internal/storage"
	"cohera/internal/workload"
)

// The pushdown differential harness: capability-aware σ/π/limit
// pushdown is an optimization, so a query must return the identical
// row multiset whether predicates run at the site scan, at the
// coordinator residual stage, or anywhere in between. We pin that by
// running a seeded corpus across three regimes of the same federation
// — pushdown forced on (every site full-capability), forced off
// (DisablePredicatePushdown), and capability-mixed (per-site PushCaps
// overrides from eq-only to nothing) — on both executors, including
// under fault-injected failover and degraded PartialResults.

// pushdownRegimes builds one hotels federation per pushdown regime.
// The "mixed" regime overrides site capabilities so the planner's
// per-replica split exercises every residual shape: eq-only sites,
// σ-incapable sites, π-incapable sites, limit-incapable sites.
func pushdownRegimes(t *testing.T) map[string]*Federation {
	t.Helper()
	feds := map[string]*Federation{}
	for _, name := range []string{"on", "off", "mixed"} {
		fed, _ := hotelsFed(t)
		switch name {
		case "off":
			fed.DisablePredicatePushdown = true
		case "mixed":
			applyMixedCaps(t, fed)
		}
		feds[name] = fed
	}
	return feds
}

// applyMixedCaps installs per-site capability overrides on a hotelsFed
// federation (sites h{frag}-{replica}; fragments 1 and 3 replicated).
func applyMixedCaps(t *testing.T, fed *Federation) {
	t.Helper()
	overrides := map[string]*plan.PushCaps{
		"h0-0": {Classes: []plan.FilterClass{plan.ClassEq}},      // eq-only, no π, no limit
		"h1-0": {},                                               // nothing pushable
		"h1-1": nil,                                              // full (default)
		"h2-0": {Classes: []plan.FilterClass{plan.ClassRange, plan.ClassLike, plan.ClassNull}, Project: true},
		"h3-0": {Project: true, Limit: true},                     // π and limit but no σ
		"h3-1": {Classes: plan.FullPushCaps().Classes, Limit: true}, // σ and limit but no π
	}
	for name, caps := range overrides {
		s, err := fed.Site(name)
		if err != nil {
			t.Fatalf("mixed caps: %v", err)
		}
		s.SetPushCaps(caps)
	}
}

// runBothPaths executes sql on one federation through both executors
// and asserts they agree. A LIMIT without a total order (unordered)
// lets each executor keep any satisfying subset, so those compare by
// cardinality only; everything else must be multiset-identical. The
// streamed rows are returned.
func runBothPaths(t *testing.T, fed *Federation, sql string, unordered bool) []storage.Row {
	t.Helper()
	ctx := context.Background()
	res, err := fed.Query(ctx, sql)
	if err != nil {
		t.Fatalf("%s: materialized: %v", sql, err)
	}
	st, _, err := fed.QueryStream(ctx, sql)
	if err != nil {
		t.Fatalf("%s: stream open: %v", sql, err)
	}
	rows, err := storage.CollectRows(st)
	if err != nil {
		t.Fatalf("%s: stream drain: %v", sql, err)
	}
	if len(rows) != len(res.Rows) {
		t.Fatalf("%s: stream %d rows, materialized %d", sql, len(rows), len(res.Rows))
	}
	if !unordered && !sameMultiset(multiset(rows), multiset(res.Rows)) {
		t.Fatalf("%s: stream and materialized multisets differ", sql)
	}
	return rows
}

// checkPushdownDifferential is the shared oracle: one generated query,
// every regime, both executors — identical row multisets. A LIMIT
// without a total order may legally keep any satisfying subset, so
// those queries compare by count plus sub-multiset of the unlimited
// superset (computed once, on the forced-off regime — the reference
// where every predicate runs at the coordinator).
func checkPushdownDifferential(t *testing.T, feds map[string]*Federation, q workload.GenQuery) {
	t.Helper()
	ref := runBothPaths(t, feds["off"], q.SQL, q.Unordered)
	var super map[string]int
	if q.Unordered {
		superRes, err := feds["off"].Query(context.Background(), q.Base)
		if err != nil {
			t.Fatalf("%s: superset: %v", q.Base, err)
		}
		super = multiset(superRes.Rows)
	}
	for _, name := range []string{"on", "mixed"} {
		rows := runBothPaths(t, feds[name], q.SQL, q.Unordered)
		if len(rows) != len(ref) {
			t.Fatalf("%s: regime %q returned %d rows, forced-off returned %d",
				q.SQL, name, len(rows), len(ref))
		}
		if q.Unordered {
			for k, n := range multiset(rows) {
				if super[k] < n {
					t.Fatalf("%s: regime %q emitted a row outside the unlimited superset", q.SQL, name)
				}
			}
			continue
		}
		if !sameMultiset(multiset(rows), multiset(ref)) {
			t.Fatalf("%s: regime %q multiset differs from forced-off", q.SQL, name)
		}
	}
}

// TestPushdownDifferentialModes runs the seeded 650-query corpus
// across all three pushdown regimes and both executors.
func TestPushdownDifferentialModes(t *testing.T) {
	feds := pushdownRegimes(t)
	for _, q := range workload.HotelSelects(650, 20250809) {
		checkPushdownDifferential(t, feds, q)
	}
}

// TestPushdownDifferentialUnderFaultInjection re-runs a corpus slice
// with the preferred replica of each replicated fragment refusing
// every other open: queries fail over (sometimes mid-plan, after the
// capability split already happened against the flaky replica) and
// the three regimes must still agree row for row.
func TestPushdownDifferentialUnderFaultInjection(t *testing.T) {
	feds := pushdownRegimes(t)
	for _, fed := range feds {
		for _, name := range []string{"h1-0", "h3-0"} {
			s, err := fed.Site(name)
			if err != nil {
				t.Fatal(err)
			}
			var calls atomic.Int64
			s.SetFaultHook(func(context.Context) error {
				if calls.Add(1)%2 == 1 {
					return errors.New("injected transient fault")
				}
				return nil
			})
			// Keep the breaker from latching open on the injected faults:
			// the point is repeated per-query failover, not a lockout.
			s.Breaker().FailureThreshold = 1 << 30
		}
	}
	for _, q := range workload.HotelSelects(150, 424242) {
		checkPushdownDifferential(t, feds, q)
	}
}

// TestPushdownDifferentialDegraded loses every replica of one fragment
// under PartialResults in all three regimes: the degraded results must
// still be identical multisets.
func TestPushdownDifferentialDegraded(t *testing.T) {
	feds := pushdownRegimes(t)
	for _, fed := range feds {
		fed.PartialResults = true
		for _, name := range []string{"h2-0"} {
			s, err := fed.Site(name)
			if err != nil {
				t.Fatal(err)
			}
			s.SetDown(true)
		}
	}
	for _, q := range workload.HotelSelects(150, 777) {
		checkPushdownDifferential(t, feds, q)
	}
	// The degradation record agrees across regimes too.
	for name, fed := range feds {
		_, trace, err := fed.QueryTraced(context.Background(), "SELECT hotel FROM hotels")
		if err != nil {
			t.Fatalf("regime %q: %v", name, err)
		}
		if !trace.Degraded || !errors.Is(trace.FragmentErrors["hotels/f2"], ErrNoReplica) {
			t.Fatalf("regime %q: degraded=%v fragment error=%v",
				name, trace.Degraded, trace.FragmentErrors["hotels/f2"])
		}
	}
}

// TestPushdownLimitAccounting pins the limit-pushdown contract on the
// trace: with full capabilities and a fully-pushable predicate, a
// LIMIT larger than the result never ships more than the matching
// rows, and the per-fragment pushed counts minus residual drops sum to
// the pre-limit cardinality. (A LIMIT that actually cuts the stream
// cancels producers before their completion records fold into the
// trace, so the accounting claim is made on the uncut run; the cut
// behavior itself is covered by the corpus' Unordered queries.)
func TestPushdownLimitAccounting(t *testing.T) {
	fed, _ := hotelsFed(t)
	st, trace, err := fed.QueryStream(context.Background(),
		"SELECT hotel FROM hotels WHERE chain = 'chain-03' LIMIT 1000")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := storage.CollectRows(st)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for key, pushed := range trace.PushedRows {
		total += pushed - trace.ResidualDropped[key]
		if trace.ResidualDropped[key] != 0 {
			t.Errorf("fragment %s dropped %d rows at the coordinator despite full site capabilities",
				key, trace.ResidualDropped[key])
		}
	}
	if total != len(rows) {
		t.Fatalf("pushed−residual = %d, result = %d rows", total, len(rows))
	}
	// chain-03 lives in exactly one fragment; everything else pruned or
	// shipped zero rows after the pushed predicate. The projection keeps
	// the predicate column alongside the selected one (the split is
	// per-replica, after projection planning), so each row ships 2 cells.
	if trace.CellsShipped != len(rows)*2 {
		t.Fatalf("cells shipped = %d, want %d (σ pushed, π = hotel+chain)", trace.CellsShipped, 2*len(rows))
	}
}

// TestCapabilityChangeBetweenPlanAndExecution plans (EXPLAIN) against
// a full-capability site, weakens the site, executes, then restores
// it: every run returns the same rows, because the split re-reads the
// live capability record per replica at execution time.
func TestCapabilityChangeBetweenPlanAndExecution(t *testing.T) {
	fed, _ := hotelsFed(t)
	sql := "SELECT hotel, city FROM hotels WHERE available >= 5 AND city = 'Denver'"
	stmt, err := sqlparse.Parse("EXPLAIN " + sql)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fed.Explain(context.Background(), stmt.(sqlparse.ExplainStmt))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Tables[0].Fragments[0].Replicas[0].Push; got != "full" {
		t.Fatalf("planned capability = %q, want full", got)
	}
	before := multiset(runBothPaths(t, fed, sql, false))

	for _, frag := range []string{"h0-0", "h1-0", "h1-1", "h2-0", "h3-0", "h3-1"} {
		s, err := fed.Site(frag)
		if err != nil {
			t.Fatal(err)
		}
		s.SetPushCaps(&plan.PushCaps{}) // capability revoked after planning
	}
	_, trace, err := fed.QueryTraced(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	after := multiset(runBothPaths(t, fed, sql, false))
	if !sameMultiset(before, after) {
		t.Fatal("capability change between plan and execution changed the result")
	}
	// With nothing pushable the coordinator's residual stage did the
	// filtering: drops must show up in the trace.
	dropped := 0
	for _, n := range trace.ResidualDropped {
		dropped += n
	}
	if dropped == 0 {
		t.Fatal("expected residual drops after revoking all site capabilities")
	}
}

// TestFailoverToWeakerPeerMidQuery streams from a full-capability
// replica that dies after shipping a prefix; the fragment fails over
// mid-query to a σ-incapable peer and the primary-key dedupe absorbs
// the replayed prefix. The result must match the predicate exactly and
// the trace must show the weak peer serving with residual drops.
func TestFailoverToWeakerPeerMidQuery(t *testing.T) {
	fed := New(NewAgoric())
	strong := NewSite("strong-flaky")
	weak := NewSite("weak-ok")
	// Rank the flaky full-capability replica first, deterministically.
	weak.SetCost(CostModel{Latency: 50 * time.Millisecond})
	for _, s := range []*Site{strong, weak} {
		if err := fed.AddSite(s); err != nil {
			t.Fatal(err)
		}
	}
	weak.SetPushCaps(&plan.PushCaps{}) // peer can evaluate nothing remotely
	all := []storage.Row{
		row("P1", "ink", 3.5, "east"),
		row("P2", "pen", 1.2, "east"),
		row("P3", "drill", 99, "west"),
		row("P4", "press", 12000, "west"),
	}
	strong.AddSource(&flakySource{
		def:  partsDef(),
		rows: all[:2], // ships a prefix, then dies
		onEnd: func(context.Context) error {
			return errors.New("replica died mid-transfer")
		},
	})
	frag := NewFragment("all", nil, strong, weak)
	if _, err := fed.DefineTable(partsDef(), frag); err != nil {
		t.Fatal(err)
	}
	if err := fed.LoadFragment("parts", frag, all); err != nil {
		t.Fatal(err)
	}
	fed.StreamBatchRows = 1 // ship the prefix row by row before the death

	st, trace, err := fed.QueryStream(context.Background(),
		"SELECT sku FROM parts WHERE price < 100")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := storage.CollectRows(st)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedFirstCol(rows)
	if len(got) != 3 || got[0] != "P1" || got[1] != "P2" || got[2] != "P3" {
		t.Fatalf("rows after mid-query failover = %v, want [P1 P2 P3]", got)
	}
	if trace.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", trace.Failovers)
	}
	if got := trace.FragmentSites["parts/all"]; got != "weak-ok" {
		t.Fatalf("fragment served by %q, want weak-ok", got)
	}
	// The weak peer shipped everything; the coordinator dropped P4.
	if trace.PushedRows["parts/all"] != 4 || trace.ResidualDropped["parts/all"] != 1 {
		t.Fatalf("pushed=%d dropped=%d, want 4/1",
			trace.PushedRows["parts/all"], trace.ResidualDropped["parts/all"])
	}
}

// TestOldServerPushdownFallback covers the wire-compatibility path: a
// remote server is discovered while push-capable, then starts ignoring
// the pushdown request fields and sending no ack (an old server, or a
// capability lost between discovery and execution). The client detects
// the missing ack and the site re-applies everything locally — same
// rows, no error.
func TestOldServerPushdownFallback(t *testing.T) {
	def := workload.HotelsDef()
	tbl := storage.NewTable(def.Clone("hotels"))
	for _, h := range workload.Hotels(2, 12, 31) {
		for _, hh := range h {
			if _, err := tbl.Insert(workload.HotelRow(hh)); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv := remote.NewServer()
	srv.PublishTable(tbl)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := remote.Dial(ts.URL, "")
	sources, err := client.Tables(context.Background())
	if err != nil || len(sources) != 1 {
		t.Fatalf("tables: %v (%d sources)", err, len(sources))
	}
	fed := New(NewAgoric())
	site := NewSite("remote-hotels")
	if err := fed.AddSite(site); err != nil {
		t.Fatal(err)
	}
	site.AddSource(sources[0])
	if _, err := fed.DefineTable(def, NewFragment("all", nil, site)); err != nil {
		t.Fatal(err)
	}

	sql := "SELECT hotel FROM hotels WHERE city = 'Denver' AND available >= 3 LIMIT 500"
	withPush := runBothPaths(t, fed, sql, false)

	// The server forgets how to push between queries: requests still
	// carry the fields, but no ack comes back, so the site must fall
	// back to fetch-and-fuse.
	srv.DisablePushdown = true
	withoutAck := runBothPaths(t, fed, sql, false)
	if !sameMultiset(multiset(withPush), multiset(withoutAck)) {
		t.Fatal("old-server fallback changed the result")
	}
}

// TestExplainAnalyzePushedResidualSums is the acceptance check on the
// observability contract: on a failover-free run, EXPLAIN ANALYZE's
// per-fragment pushed and residual counts must sum to the result
// cardinality, in every capability regime.
func TestExplainAnalyzePushedResidualSums(t *testing.T) {
	for _, regime := range []string{"on", "off", "mixed"} {
		fed, _ := hotelsFed(t)
		switch regime {
		case "off":
			fed.DisablePredicatePushdown = true
		case "mixed":
			applyMixedCaps(t, fed)
		}
		stmt, err := sqlparse.Parse(
			"EXPLAIN ANALYZE SELECT hotel, chain FROM hotels WHERE available >= 4 AND city IN ('Denver', 'Boston')")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fed.Explain(context.Background(), stmt.(sqlparse.ExplainStmt))
		if err != nil {
			t.Fatalf("regime %q: %v", regime, err)
		}
		if rep.Trace.Failovers != 0 {
			t.Fatalf("regime %q: unexpected failovers", regime)
		}
		sum := 0
		for key, pushed := range rep.Trace.PushedRows {
			sum += pushed - rep.Trace.ResidualDropped[key]
		}
		if sum != rep.ResultRows {
			t.Fatalf("regime %q: Σ(pushed−residual) = %d, result = %d rows",
				regime, sum, rep.ResultRows)
		}
		// The rendered plan carries the counts the operator reads.
		if regime == "off" && len(rep.Trace.ResidualDropped) == 0 && rep.ResultRows != sum {
			t.Fatalf("regime off: residual accounting missing")
		}
		// Per-fragment stage rows agree with the trace's accounting.
		for key, n := range rep.FragmentRows() {
			var want int64
			for tk, pushed := range rep.Trace.PushedRows {
				if key[:len(key)-len("@"+rep.Trace.FragmentSites[tk])] == tk {
					want = int64(pushed - rep.Trace.ResidualDropped[tk])
				}
			}
			if n != want {
				t.Fatalf("regime %q: fragment stage %s rows=%d, trace says %d", regime, key, n, want)
			}
		}
	}
}

// TestProjectionPushdownOracle re-checks the legacy projection-pushdown
// scenarios through the shared differential oracle: the wide-table
// queries of pushdown_test.go must return identical multisets with
// predicate pushdown forced on and off.
func TestProjectionPushdownOracle(t *testing.T) {
	for _, sql := range []string{
		"SELECT c1 FROM wide WHERE id < 10",
		"SELECT * FROM wide WHERE id = 3",
		"SELECT c2, COUNT(*) FROM wide GROUP BY c2 ORDER BY c2 LIMIT 3",
		"SELECT c1, c3 FROM wide WHERE id >= 5 AND c0 LIKE 'v0-1%'",
	} {
		fedOn, _ := wideFed(t)
		fedOff, _ := wideFed(t)
		fedOff.DisablePredicatePushdown = true
		onRows, err := fedOn.Query(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s: on: %v", sql, err)
		}
		offRows, err := fedOff.Query(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s: off: %v", sql, err)
		}
		if !sameMultiset(multiset(onRows.Rows), multiset(offRows.Rows)) {
			t.Fatalf("%s: pushdown on/off disagree", sql)
		}
	}
}

// TestMixedCapsShipMoreCellsThanFull sanity-checks that the capability
// model actually bites: a σ-incapable site ships more rows (and cells)
// than a full-capability one for the same selective query.
func TestMixedCapsShipMoreCellsThanFull(t *testing.T) {
	full, _ := hotelsFed(t)
	weak, _ := hotelsFed(t)
	for _, name := range []string{"h0-0", "h1-0", "h1-1", "h2-0", "h3-0", "h3-1"} {
		s, err := weak.Site(name)
		if err != nil {
			t.Fatal(err)
		}
		s.SetPushCaps(&plan.PushCaps{})
	}
	sql := "SELECT hotel FROM hotels WHERE available >= 12"
	_, ft, err := full.QueryTraced(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	_, wt, err := weak.QueryTraced(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if ft.CellsShipped >= wt.CellsShipped {
		t.Fatalf("full-caps shipped %d cells, weak shipped %d — pushdown saved nothing",
			ft.CellsShipped, wt.CellsShipped)
	}
}
