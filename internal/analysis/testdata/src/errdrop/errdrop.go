// Package errdrop is a coheralint fixture for the errdrop analyzer:
// blank-discarded and bare-call-dropped errors, the never-fails
// exemptions, and the //lint:ignore suppression path.
package errdrop

import (
	"fmt"
	"os"
	"strings"
)

func fails() error { return nil }

func failsWith() (int, error) { return 0, nil }

func dropBlank() {
	_ = fails() // want `error result of fails discarded with _`
}

func dropTuple() {
	n, _ := failsWith() // want `error result of failsWith discarded with _`
	use(n)
}

func dropBare() {
	fails() // want `error result of fails dropped by bare call`
}

func kept() error {
	if err := fails(); err != nil { // negative: error is checked
		return err
	}
	return nil
}

func deferred(f *os.File) {
	defer f.Close() // negative: deferred calls are exempt by idiom
}

func neverFailing() string {
	var b strings.Builder
	b.WriteString("never fails") // negative: strings.Builder never fails
	fmt.Println(b.String())      // negative: fmt print family is exempt
	return b.String()
}

func suppressed() {
	//lint:ignore errdrop fixture exercises suppression of a deliberate drop
	_ = fails() // negative: the directive above covers this line
}

func wildcard() {
	//lint:ignore * a wildcard directive suppresses every analyzer
	fails() // negative: wildcard suppression
}

func wrongName() {
	//lint:ignore sleepsync the analyzer name must match for suppression
	_ = fails() // want `error result of fails discarded with _`
}

func use(int) {}

// Journal-like append/replay patterns (write-intent logs): durability
// mutations whose dropped errors silently lose or double-apply writes.

type wal struct{ records [][]byte }

func (w *wal) append(rec []byte) error { w.records = append(w.records, rec); return nil }

func (w *wal) replay(apply func([]byte) error) (int, error) { return len(w.records), nil }

func (w *wal) settle(id string) error { use(len(id)); return nil }

func journalAppendDropped(w *wal) {
	w.append([]byte("intent")) // want `error result of w.append dropped by bare call`
}

func journalReplayDropped(w *wal) {
	n, _ := w.replay(func([]byte) error { return nil }) // want `error result of w.replay discarded with _`
	use(n)
}

func journalSettleDroppedInLoop(w *wal) {
	for _, id := range []string{"s1", "s2"} {
		_ = w.settle(id) // want `error result of w.settle discarded with _`
	}
}

func journalKept(w *wal) error {
	if err := w.append(nil); err != nil { // negative: checked append
		return err
	}
	n, err := w.replay(func(b []byte) error { return w.settle("s") }) // negative: checked replay
	if err != nil {
		return err
	}
	use(n)
	return nil
}

// deferCloseWritable: the deferred close swallows the flush error —
// the write looks durable but may not be.
func deferCloseWritable(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f.Close() on a writable file discards the close error; buffered writes can fail at close — close explicitly and check`
	_, err = f.Write(data)
	return err
}

// deferCloseAppend: OpenFile with write bits is a writable open too.
func deferCloseAppend(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f.Close() on a writable file discards the close error; buffered writes can fail at close — close explicitly and check`
	return nil
}

// deferCloseReadOnly: a read-side close cannot lose data; the idiom
// stays exempt.
func deferCloseReadOnly(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return buf[:n], err
}

// closeChecked is the fix: close explicitly on the success path and
// return its error; the failure-path close is annotated best-effort.
func closeChecked(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //lint:ignore errdrop fixture: write already failed, close is best-effort
		return err
	}
	return f.Close()
}

// deferSyncWritable: fsync is the durability point; deferring it
// swallows the one error that means the data never reached disk.
func deferSyncWritable(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Sync()  // want `defer f.Sync() on a writable file discards the sync error; fsync is the durability point — sync explicitly and check`
	defer f.Close() // want `defer f.Close() on a writable file discards the close error; buffered writes can fail at close — close explicitly and check`
	_, err = f.Write(data)
	return err
}

// deferSyncReadOnly: syncing a read-only handle is pointless but
// cannot lose data; the deferred form stays exempt.
func deferSyncReadOnly(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Sync()
	defer f.Close()
	return nil
}

// syncChecked is the fix: sync explicitly before close and surface
// its error.
func syncChecked(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //lint:ignore errdrop fixture: write already failed, close is best-effort
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //lint:ignore errdrop fixture: sync already failed, close is best-effort
		return err
	}
	return f.Close()
}
