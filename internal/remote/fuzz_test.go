package remote

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"testing"

	"cohera/internal/obs"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
	"cohera/internal/wrapper"
)

// FuzzDecodeStream feeds arbitrary bytes to the NDJSON chunk decoder
// as if they were a /fetchstream response body. Invariants: the
// decoder never panics, every yielded row has exactly the schema's
// width, the stream always terminates in io.EOF or a typed error
// (never runs forever), the terminal error is sticky, and Close always
// succeeds.
func FuzzDecodeStream(f *testing.F) {
	f.Add([]byte(`{"rows":[[{"k":"INT","i":1},{"k":"TEXT","s":"a"}]]}` + "\n" + `{"eof":true}` + "\n"))
	f.Add([]byte(`{"rows":[[{"k":"INT","i":1},{"k":"TEXT","s":"a"}]]}` + "\n")) // missing terminator
	f.Add([]byte(`{"error":"disk on fire"}` + "\n"))
	f.Add([]byte(`{"eof":true}` + "\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"rows":[[{"k":"INT","i":1}]]}` + "\n" + `{"eof":true}` + "\n")) // short row
	f.Add([]byte(`{"rows":[[{"k":"MONEY","i":100,"s":"USD"},{"k":"TEXT","s":"x"},{"k":"BOOL","b":true}]]}` + "\n"))
	f.Add([]byte(`{"rows":`)) // cut mid-chunk
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"rows":[[{"k":"NOSUCHKIND"} ,{"k":"TEXT","s":"a"}]]}` + "\n" + `{"eof":true}` + "\n"))

	def := schema.MustTable("fuzzed", []schema.Column{
		{Name: "id", Kind: value.KindInt, NotNull: true},
		{Name: "name", Kind: value.KindString},
	}, "id")

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 64<<10), maxStreamLine)
		_, sp := obs.StartSpan(context.Background(), "remote.fetchstream")
		metStreamInflight("client").Add(1)
		cs := &clientStream{
			def:  def,
			cols: wrapper.ColumnNames(def),
			body: io.NopCloser(bytes.NewReader(nil)),
			sc:   sc,
			sp:   sp,
		}
		var terminal error
		for i := 0; i < 1<<17; i++ {
			row, err := cs.Next()
			if err != nil {
				terminal = err
				break
			}
			if len(row) != len(cs.cols) {
				t.Fatalf("row width %d, want %d", len(row), len(cs.cols))
			}
		}
		if terminal == nil {
			t.Fatal("stream did not terminate")
		}
		if _, err := cs.Next(); err != terminal && err.Error() != terminal.Error() {
			t.Fatalf("terminal error not sticky: %v then %v", terminal, err)
		}
		if err := cs.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if _, err := cs.Next(); err != storage.ErrStreamClosed {
			t.Fatalf("Next after Close = %v", err)
		}
	})
}
