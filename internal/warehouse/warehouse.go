// Package warehouse implements the baseline the paper argues against
// (§3.2, Characteristic 5): an Extract-Transform-Load data warehouse
// built "solely around the fetch in advance paradigm". Sources are
// extracted in batch through their wrappers, pushed through a
// transformation pipeline, and loaded wholesale into a local store;
// queries are then answered from that store — fast, but exactly as fresh
// as the last refresh.
//
// The staleness experiments (E1) run this warehouse against the federated
// fetch-on-demand path over identical sources and volatility, reproducing
// the paper's claim that "this paradigm fundamentally breaks when live
// information is required".
package warehouse

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"cohera/internal/exec"
	"cohera/internal/obs"
	"cohera/internal/transform"
	"cohera/internal/wrapper"
)

// metWHRefreshes counts ETL refresh cycles by outcome ("ok" / "error").
func metWHRefreshes(outcome string) *obs.Counter {
	return obs.Default().Counter("cohera_warehouse_refreshes_total",
		"Warehouse ETL refresh cycles by outcome.", obs.Labels{"outcome": outcome})
}

var (
	metWHRows = obs.Default().Counter("cohera_warehouse_rows_extracted_total",
		"Rows extracted from sources across warehouse refreshes.", nil)
	metWHSeconds = obs.Default().Histogram("cohera_warehouse_refresh_seconds",
		"Warehouse full-refresh latency (extract + transform + load).", nil)
)

// Warehouse is a batch-refresh store over wrapper sources.
type Warehouse struct {
	db *exec.Database

	mu          sync.Mutex
	sources     []registration
	lastRefresh time.Time
	refreshes   int
	extracted   int   // cumulative rows pulled from sources
	lastErr     error // most recent auto-refresh failure (nil = healthy)

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

type registration struct {
	src      wrapper.Source
	pipeline *transform.Pipeline // nil = load raw
	table    string
}

// New returns an empty warehouse.
func New() *Warehouse {
	return &Warehouse{db: exec.NewDatabase(), stopCh: make(chan struct{})}
}

// DB exposes the warehouse store (for ad-hoc inspection).
func (w *Warehouse) DB() *exec.Database { return w.db }

// Register adds a source. When pipeline is non-nil, extracted rows run
// through it (ETL's T) and land in the pipeline's target schema;
// otherwise the source schema is loaded raw. The local table is created
// on first registration.
func (w *Warehouse) Register(src wrapper.Source, pipeline *transform.Pipeline) error {
	def := src.Schema()
	if pipeline != nil {
		def = pipeline.Target()
	}
	table := def.Name
	if _, err := w.db.Table(table); err != nil {
		if _, err := w.db.CreateTable(def.Clone(def.Name)); err != nil {
			return fmt.Errorf("warehouse: creating %q: %w", table, err)
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sources = append(w.sources, registration{src: src, pipeline: pipeline, table: table})
	return nil
}

// RefreshAll re-extracts every source and rebuilds the affected tables.
// The whole batch is re-pulled — ETL tools are engineered around batch
// processes, not incremental feeds.
func (w *Warehouse) RefreshAll(ctx context.Context) (err error) {
	ctx, sp := obs.StartSpan(ctx, "warehouse.refresh")
	start := time.Now()
	defer func() {
		metWHSeconds.Observe(time.Since(start))
		if err != nil {
			metWHRefreshes("error").Inc()
		} else {
			metWHRefreshes("ok").Inc()
		}
		sp.SetErr(err)
		sp.End()
	}()
	w.mu.Lock()
	regs := append([]registration(nil), w.sources...)
	w.mu.Unlock()

	// Truncate each target table once.
	seen := map[string]bool{}
	for _, r := range regs {
		if !seen[strings.ToLower(r.table)] {
			seen[strings.ToLower(r.table)] = true
			t, err := w.db.Table(r.table)
			if err != nil {
				return err
			}
			t.Truncate()
		}
	}
	total := 0
	for _, r := range regs {
		rows, err := r.src.Fetch(ctx, nil)
		if err != nil {
			return fmt.Errorf("warehouse: extracting %s: %w", r.src.Name(), err)
		}
		total += len(rows)
		if r.pipeline != nil {
			clean, disc := r.pipeline.Run(rows)
			if len(disc) > 0 {
				// ETL batches tolerate reject files; keep the clean rows.
				rows = clean
			} else {
				rows = clean
			}
		}
		t, err := w.db.Table(r.table)
		if err != nil {
			return err
		}
		for _, row := range rows {
			if _, err := t.Upsert(row); err != nil {
				return fmt.Errorf("warehouse: loading %s: %w", r.table, err)
			}
		}
	}
	metWHRows.Add(int64(total))
	w.mu.Lock()
	w.lastRefresh = time.Now()
	w.refreshes++
	w.extracted += total
	w.mu.Unlock()
	return nil
}

// Query answers from the local store — no source contact.
func (w *Warehouse) Query(sql string) (*exec.Result, error) {
	return w.db.Exec(sql)
}

// Age reports time since the last refresh.
func (w *Warehouse) Age() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.lastRefresh.IsZero() {
		return time.Duration(1<<62 - 1)
	}
	return time.Since(w.lastRefresh)
}

// Refreshes reports completed refresh cycles.
func (w *Warehouse) Refreshes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.refreshes
}

// RowsExtracted reports cumulative rows pulled from sources — the
// bandwidth cost of refreshing "more frequently", which the paper calls
// "neither scalable nor sufficiently close to real time".
func (w *Warehouse) RowsExtracted() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.extracted
}

// LastErr returns the most recent auto-refresh failure (nil when the
// last cycle succeeded).
func (w *Warehouse) LastErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastErr
}

// StartAuto refreshes every interval until Stop or until ctx is
// cancelled. The context bounds each extract, so shutting down does not
// strand slow sources. A failed extract leaves the previous load in
// place and records the error for LastErr.
func (w *Warehouse) StartAuto(ctx context.Context, interval time.Duration) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-w.stopCh:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				err := w.RefreshAll(ctx)
				w.mu.Lock()
				w.lastErr = err
				w.mu.Unlock()
			}
		}
	}()
}

// Stop halts auto refresh.
func (w *Warehouse) Stop() {
	w.stopOnce.Do(func() { close(w.stopCh) })
	w.wg.Wait()
}
