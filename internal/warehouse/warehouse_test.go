package warehouse

import (
	"context"
	"sync"
	"testing"
	"time"

	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/transform"
	"cohera/internal/value"
	"cohera/internal/wrapper"
)

func quoteDef() *schema.Table {
	return schema.MustTable("quotes", []schema.Column{
		{Name: "sku", Kind: value.KindString, NotNull: true},
		{Name: "price", Kind: value.KindInt},
	}, "sku")
}

// mutableSource is a volatile source whose rows change under the
// warehouse's feet.
type mutableSource struct {
	mu   sync.Mutex
	def  *schema.Table
	rows []storage.Row
}

func (m *mutableSource) Name() string          { return "mut" }
func (m *mutableSource) Schema() *schema.Table { return m.def }
func (m *mutableSource) Capabilities() wrapper.Capabilities {
	return wrapper.Capabilities{Volatile: true}
}
func (m *mutableSource) Fetch(ctx context.Context, f []wrapper.Filter) ([]storage.Row, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]storage.Row, len(m.rows))
	for i, r := range m.rows {
		out[i] = r.Clone()
	}
	return out, nil
}
func (m *mutableSource) set(sku string, price int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, r := range m.rows {
		if r[0].Str() == sku {
			m.rows[i][1] = value.NewInt(price)
			return
		}
	}
	m.rows = append(m.rows, storage.Row{value.NewString(sku), value.NewInt(price)})
}

func TestRegisterRefreshQuery(t *testing.T) {
	w := New()
	src := &mutableSource{def: quoteDef()}
	src.set("P1", 100)
	src.set("P2", 200)
	if err := w.Register(src, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := w.Query("SELECT price FROM quotes WHERE sku = 'P1'")
	if err != nil || res.Rows[0][0].Int() != 100 {
		t.Fatalf("query = %v, %v", res, err)
	}
	// Source changes; warehouse stays stale until the next refresh.
	src.set("P1", 999)
	res, _ = w.Query("SELECT price FROM quotes WHERE sku = 'P1'")
	if res.Rows[0][0].Int() != 100 {
		t.Errorf("warehouse should be stale, got %v", res.Rows[0][0])
	}
	if err := w.RefreshAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, _ = w.Query("SELECT price FROM quotes WHERE sku = 'P1'")
	if res.Rows[0][0].Int() != 999 {
		t.Errorf("after refresh = %v", res.Rows[0][0])
	}
	if w.Refreshes() != 2 || w.RowsExtracted() != 4 {
		t.Errorf("refreshes=%d extracted=%d", w.Refreshes(), w.RowsExtracted())
	}
	if w.Age() > time.Minute {
		t.Errorf("age = %v", w.Age())
	}
}

func TestRefreshReplacesDeletedRows(t *testing.T) {
	w := New()
	src := &mutableSource{def: quoteDef()}
	src.set("P1", 1)
	src.set("P2", 2)
	_ = w.Register(src, nil)
	_ = w.RefreshAll(context.Background())
	// Row disappears at the source.
	src.mu.Lock()
	src.rows = src.rows[:1]
	src.mu.Unlock()
	_ = w.RefreshAll(context.Background())
	res, _ := w.Query("SELECT COUNT(*) FROM quotes")
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("deleted row survived refresh: %v", res.Rows)
	}
}

func TestWarehouseWithPipeline(t *testing.T) {
	// ETL's T stage: map raw feed columns into the warehouse schema.
	raw := schema.MustTable("raw_feed", []schema.Column{
		{Name: "code", Kind: value.KindString},
		{Name: "cents", Kind: value.KindInt},
	})
	p := transform.NewPipeline(raw, quoteDef())
	p.MustAdd(
		transform.Copy{To: "sku", From: "code"},
		transform.Copy{To: "price", From: "cents"},
	)
	src, err := wrapper.NewStaticSource("feed", raw, []storage.Row{
		{value.NewString("A"), value.NewInt(42)},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := New()
	if err := w.Register(src, p); err != nil {
		t.Fatal(err)
	}
	if err := w.RefreshAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, _ := w.Query("SELECT sku, price FROM quotes")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "A" || res.Rows[0][1].Int() != 42 {
		t.Errorf("pipeline load = %v", res.Rows)
	}
}

func TestAutoRefresh(t *testing.T) {
	w := New()
	src := &mutableSource{def: quoteDef()}
	src.set("P1", 1)
	_ = w.Register(src, nil)
	_ = w.RefreshAll(context.Background())
	w.StartAuto(context.Background(), 10*time.Millisecond)
	defer w.Stop()
	src.set("P1", 77)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		res, err := w.Query("SELECT price FROM quotes WHERE sku = 'P1'")
		if err == nil && len(res.Rows) == 1 && res.Rows[0][0].Int() == 77 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("auto refresh never converged")
}

func TestMultipleSourcesOneTable(t *testing.T) {
	// Two suppliers feed the same warehouse table (catalog integration).
	a := &mutableSource{def: quoteDef()}
	a.set("A1", 1)
	b := &mutableSource{def: quoteDef()}
	b.set("B1", 2)
	w := New()
	_ = w.Register(a, nil)
	_ = w.Register(b, nil)
	if err := w.RefreshAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, _ := w.Query("SELECT COUNT(*) FROM quotes")
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("combined load = %v", res.Rows)
	}
}
