package resilience

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	r := Retry{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, Seed: 7}
	calls := 0
	err := r.Run(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryExhaustionWrapsLastError(t *testing.T) {
	sentinel := errors.New("boom")
	r := Retry{MaxAttempts: 3, BaseDelay: time.Microsecond, Seed: 1}
	calls := 0
	err := r.Run(context.Background(), func(context.Context) error {
		calls++
		return sentinel
	}, nil)
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("exhausted error should wrap the last attempt error, got %v", err)
	}
}

func TestRetryNonRetryableStopsImmediately(t *testing.T) {
	permanent := errors.New("permanent")
	r := Retry{MaxAttempts: 5, BaseDelay: time.Microsecond, Seed: 1}
	calls := 0
	err := r.Run(context.Background(), func(context.Context) error {
		calls++
		return permanent
	}, func(err error) bool { return !errors.Is(err, permanent) })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry of permanent errors)", calls)
	}
	// Permanent errors come back unwrapped so callers see them verbatim.
	if !errors.Is(err, permanent) {
		t.Fatalf("err = %v", err)
	}
}

func TestRetryHonorsCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Retry{MaxAttempts: 100, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second, Seed: 1}
	calls := 0
	start := time.Now()
	err := r.Run(ctx, func(context.Context) error {
		calls++
		cancel()
		return errors.New("transient")
	}, nil)
	if err == nil {
		t.Fatal("cancelled run should error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err should wrap context.Canceled, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retries after cancellation)", calls)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation should not wait out the backoff")
	}
}

func TestRetryPerAttemptTimeout(t *testing.T) {
	r := Retry{MaxAttempts: 2, PerAttempt: 5 * time.Millisecond, BaseDelay: time.Microsecond, Seed: 1}
	hangs := 0
	err := r.Run(context.Background(), func(ctx context.Context) error {
		hangs++
		if hangs == 1 {
			// Simulate a hung attempt: block until the per-attempt
			// deadline fires.
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}, nil)
	if err != nil {
		t.Fatalf("second attempt should have succeeded: %v", err)
	}
	if hangs != 2 {
		t.Fatalf("attempts = %d, want 2", hangs)
	}
}

func TestRetryBackoffIsCappedAndJittered(t *testing.T) {
	r := Retry{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	rng := rand.New(rand.NewSource(3))
	sawNonZero := false
	for n := 0; n < 20; n++ {
		d := r.backoff(rng, n)
		if d < 0 || d > 40*time.Millisecond {
			t.Fatalf("backoff(%d) = %v outside [0, cap]", n, d)
		}
		if d > 0 {
			sawNonZero = true
		}
	}
	if !sawNonZero {
		t.Fatal("jitter should produce non-zero delays")
	}
	// Early retries are bounded by the exponential ceiling, not the cap.
	for i := 0; i < 50; i++ {
		if d := r.backoff(rng, 0); d > 10*time.Millisecond {
			t.Fatalf("backoff(0) = %v exceeds base ceiling", d)
		}
	}
}

func TestRetryOnRetryHook(t *testing.T) {
	var seen []int
	r := Retry{MaxAttempts: 3, BaseDelay: time.Microsecond, Seed: 2,
		OnRetry: func(attempt int, err error, delay time.Duration) {
			seen = append(seen, attempt)
		}}
	//lint:ignore errdrop the run is expected to exhaust; only the hook sequence matters here
	_ = r.Run(context.Background(), func(context.Context) error { return errors.New("x") }, nil)
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("OnRetry attempts = %v, want [1 2]", seen)
	}
}

func TestRetryDeterministicWithSeed(t *testing.T) {
	delays := func() []time.Duration {
		var out []time.Duration
		r := Retry{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Seed: 99,
			OnRetry: func(_ int, _ error, d time.Duration) { out = append(out, d) }}
		//lint:ignore errdrop exhaustion is the point; the delay sequence is the observable
		_ = r.Run(context.Background(), func(context.Context) error { return errors.New("x") }, nil)
		return out
	}
	a, b := delays(), delays()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("want 3 backoffs, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded delays differ at %d: %v vs %v", i, a, b)
		}
	}
}
