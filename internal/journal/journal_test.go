package journal

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"cohera/internal/value"
)

var errDown = errors.New("site down")

func deferAll(error) bool { return true }
func gateOK() error       { return nil }
func gateDown() error     { return errDown }
func directOK() error     { return nil }
func directBoom() error   { return errors.New("boom") }
func noDefer(error) bool  { return false }

func intent(id, frag string, row ...value.Value) Intent {
	return Intent{StmtID: id, Table: "parts", Fragment: frag, Op: OpUpsert, Row: row}
}

func sqlIntent(id string) Intent {
	return Intent{StmtID: id, Table: "parts", Fragment: "f1", Op: OpSQL, SQL: "UPDATE parts SET price = 1"}
}

// A skipped write's intent must survive a byte-for-byte round trip
// through the durable form, values included.
func TestFramingRoundTrip(t *testing.T) {
	j := New()
	g := j.Group("west-2", "parts")
	it := intent("s1", "f1",
		value.NewString("sku-1"), value.NewInt(42), value.NewFloat(1.5),
		value.NewBool(true), value.Null, value.NewMoney(999, "USD"))
	out, err := g.Execute(it, gateDown, directOK, deferAll)
	if out != Skipped || !errors.Is(err, errDown) {
		t.Fatalf("Execute = %v, %v; want Skipped, errDown", out, err)
	}
	raw := g.Bytes("f1")
	if len(raw) == 0 {
		t.Fatal("no bytes journaled")
	}

	// "Restart": load the raw bytes into a fresh journal.
	j2 := New()
	g2 := j2.Group("west-2", "parts")
	g2.SetBytes("f1", raw)
	if g2.Lost() {
		t.Fatal("clean log marked lost")
	}
	if n := g2.Pending(); n != 1 {
		t.Fatalf("pending after recovery = %d, want 1", n)
	}
	var got Intent
	if _, err := g2.Drain(context.Background(), func(it Intent) error { got = it; return nil }); err != nil {
		t.Fatal(err)
	}
	if got.StmtID != "s1" || got.Table != "parts" || got.Fragment != "f1" || got.Op != OpUpsert {
		t.Fatalf("recovered intent header mismatch: %+v", got)
	}
	if len(got.Row) != len(it.Row) {
		t.Fatalf("recovered %d values, want %d", len(got.Row), len(it.Row))
	}
	for i := range it.Row {
		if !got.Row[i].Equal(it.Row[i]) {
			t.Fatalf("value %d: got %v want %v", i, got.Row[i], it.Row[i])
		}
	}
}

// Recovery must truncate a torn tail at the last intact record and
// mark the log lost; earlier records stay replayable.
func TestTornTailTruncation(t *testing.T) {
	j := New()
	g := j.Group("s", "parts")
	for i := 0; i < 3; i++ {
		if out, _ := g.Execute(intent(fmt.Sprintf("s%d", i), "f1", value.NewInt(int64(i))), gateDown, directOK, deferAll); out != Skipped {
			t.Fatalf("intent %d not journaled", i)
		}
	}
	g.TruncateTail("f1", 3) // rip bytes out of the last record
	if !g.Lost() {
		t.Fatal("torn tail not marked lost")
	}
	if n := g.Pending(); n != 2 {
		t.Fatalf("pending after torn tail = %d, want 2 (last record dropped)", n)
	}

	// A flipped byte mid-log truncates everything from that record on.
	raw := g.Bytes("f1")
	raw[len(raw)/2] ^= 0xFF
	g.SetBytes("f1", raw)
	if n := g.Pending(); n >= 2 {
		t.Fatalf("corrupted mid-log still reports %d pending", n)
	}
	if !g.Lost() {
		t.Fatal("mid-log corruption not marked lost")
	}
}

// A truncation that lands exactly on a record boundary is
// indistinguishable from a shorter-but-clean log: Lost stays false
// (digest divergence is the detector for that case).
func TestCleanBoundaryTruncationNotLost(t *testing.T) {
	j := New()
	g := j.Group("s", "parts")
	if _, err := g.Execute(intent("a", "f1", value.NewInt(1)), gateDown, directOK, deferAll); !errors.Is(err, errDown) {
		t.Fatal(err)
	}
	one := g.Bytes("f1")
	if _, err := g.Execute(intent("b", "f1", value.NewInt(2)), gateDown, directOK, deferAll); !errors.Is(err, errDown) {
		t.Fatal(err)
	}
	g.SetBytes("f1", one)
	if g.Lost() {
		t.Fatal("record-boundary truncation marked lost")
	}
	if n := g.Pending(); n != 1 {
		t.Fatalf("pending = %d, want 1", n)
	}
}

// Replay must be exactly-once per statement ID: a drained intent stays
// settled across a restart because its applied marker is durable, and
// tearing the marker off revives the intent but flags the log lost.
func TestIdempotentReplay(t *testing.T) {
	j := New()
	g := j.Group("s", "parts")
	if _, err := g.Execute(intent("s1", "f1", value.NewInt(7)), gateDown, directOK, deferAll); !errors.Is(err, errDown) {
		t.Fatal(err)
	}
	preMarker := len(g.Bytes("f1"))
	applies := 0
	if n, err := g.Drain(context.Background(), func(Intent) error { applies++; return nil }); err != nil || n != 1 {
		t.Fatalf("first drain = %d, %v", n, err)
	}
	if n, err := g.Drain(context.Background(), func(Intent) error { applies++; return nil }); err != nil || n != 0 {
		t.Fatalf("second drain = %d, %v", n, err)
	}
	if applies != 1 {
		t.Fatalf("intent applied %d times", applies)
	}

	// Restart with the marker intact: still settled.
	raw := g.Bytes("f1")
	g2 := New().Group("s", "parts")
	g2.SetBytes("f1", raw)
	if n := g2.Pending(); n != 0 {
		t.Fatalf("applied intent pending again after restart: %d", n)
	}

	// Restart with the marker torn off: the intent is pending again
	// AND the log is lost — the reconciler must copy-repair, not
	// blindly re-apply.
	g3 := New().Group("s", "parts")
	g3.SetBytes("f1", raw[:preMarker+4])
	if !g3.Lost() {
		t.Fatal("torn applied marker not marked lost")
	}
	if n := g3.Pending(); n != 1 {
		t.Fatalf("pending after torn marker = %d, want 1", n)
	}
}

// While a group has a backlog, a reachable replica's new write must
// queue behind it, and Drain must replay in statement order across
// fragments of the group.
func TestQueueBehindBacklogOrdering(t *testing.T) {
	j := New()
	g := j.Group("s", "parts")
	if out, _ := g.Execute(intent("older", "f1", value.NewInt(1)), gateDown, directOK, deferAll); out != Skipped {
		t.Fatal("seed intent not journaled")
	}
	direct := 0
	out, err := g.Execute(sqlIntent("newer"), gateOK, func() error { direct++; return nil }, deferAll)
	if err != nil || out != Queued {
		t.Fatalf("Execute with backlog = %v, %v; want Queued", out, err)
	}
	if direct != 0 {
		t.Fatal("direct write ran ahead of the backlog")
	}
	// A third write lands in a different fragment's log to prove the
	// drain merges across the group's logs by sequence, not per log.
	if out, _ := g.Execute(intent("third", "f2", value.NewInt(3)), gateOK, directOK, deferAll); out != Queued {
		t.Fatal("third write not queued")
	}
	var order []string
	if n, err := g.Drain(context.Background(), func(it Intent) error { order = append(order, it.StmtID); return nil }); err != nil || n != 3 {
		t.Fatalf("drain = %d, %v", n, err)
	}
	want := []string{"older", "newer", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("replay order %v, want %v", order, want)
		}
	}
	if g.Pending() != 0 {
		t.Fatal("pending after full drain")
	}
}

// Abandoned intents are settled durably and survive a restart settled.
func TestAbandon(t *testing.T) {
	j := New()
	g := j.Group("s", "parts")
	if _, err := g.Execute(intent("s1", "f1", value.NewInt(1)), gateDown, directOK, deferAll); !errors.Is(err, errDown) {
		t.Fatal(err)
	}
	if err := g.Abandon("f1", "s1"); err != nil {
		t.Fatal(err)
	}
	if g.Pending() != 0 {
		t.Fatal("abandoned intent still pending")
	}
	g2 := New().Group("s", "parts")
	g2.SetBytes("f1", g.Bytes("f1"))
	if g2.Pending() != 0 {
		t.Fatal("abandoned intent pending after restart")
	}
	if err := g.Abandon("f1", "missing"); err != nil {
		t.Fatalf("abandoning a settled/unknown id must be a no-op: %v", err)
	}
}

// Non-deferrable errors must not journal anything.
func TestFailedWritesNotJournaled(t *testing.T) {
	j := New()
	g := j.Group("s", "parts")
	if out, err := g.Execute(intent("s1", "f1"), gateOK, directBoom, noDefer); out != Failed || err == nil {
		t.Fatalf("Execute = %v, %v; want Failed", out, err)
	}
	if out, err := g.Execute(intent("s2", "f1"), gateDown, directOK, noDefer); out != Failed || !errors.Is(err, errDown) {
		t.Fatalf("Execute = %v, %v; want Failed, errDown", out, err)
	}
	if g.Pending() != 0 || len(g.Bytes("f1")) != 0 {
		t.Fatal("failed write left journal state behind")
	}
}

// Exclusive resets the group only when fn succeeds.
func TestExclusiveReset(t *testing.T) {
	j := New()
	g := j.Group("s", "parts")
	if _, err := g.Execute(intent("s1", "f1", value.NewInt(1)), gateDown, directOK, deferAll); !errors.Is(err, errDown) {
		t.Fatal(err)
	}
	g.TruncateTail("f1", 1)
	boom := errors.New("repair failed")
	if err := g.Exclusive(func(pending int, lost bool) error {
		if !lost {
			t.Fatal("fn not told about lost log")
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if !g.Lost() {
		t.Fatal("failed Exclusive reset the group anyway")
	}
	if err := g.Exclusive(func(pending int, lost bool) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if g.Lost() || g.Pending() != 0 || len(g.Bytes("f1")) != 0 {
		t.Fatal("successful Exclusive did not reset the group")
	}
}

// Journal-level accounting: groups are per (site, table), PendingAt /
// PendingTotal see through to group state, and Drop forgets a group.
func TestJournalAccounting(t *testing.T) {
	j := New()
	before := metPending.Value()
	ga := j.Group("a", "parts")
	gb := j.Group("b", "parts")
	if ga == gb || j.Group("a", "parts") != ga {
		t.Fatal("group identity broken")
	}
	if j.PeekGroup("c", "parts") != nil {
		t.Fatal("PeekGroup created a group")
	}
	for i, g := range []*Group{ga, gb} {
		if _, err := g.Execute(intent(fmt.Sprintf("s%d", i), "f1", value.NewInt(int64(i))), gateDown, directOK, deferAll); !errors.Is(err, errDown) {
			t.Fatal(err)
		}
	}
	if j.PendingAt("a", "parts") != 1 || j.PendingTotal() != 2 {
		t.Fatalf("accounting: at=%d total=%d", j.PendingAt("a", "parts"), j.PendingTotal())
	}
	if d := metPending.Value() - before; d != 2 {
		t.Fatalf("gauge delta = %d, want 2", d)
	}
	j.Drop("a", "parts")
	if j.PendingTotal() != 1 || j.PendingAt("a", "parts") != 0 {
		t.Fatal("Drop did not forget the group")
	}
	if d := metPending.Value() - before; d != 1 {
		t.Fatalf("gauge delta after Drop = %d, want 1", d)
	}
	if _, err := gb.Drain(context.Background(), func(Intent) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if d := metPending.Value() - before; d != 0 {
		t.Fatalf("gauge delta after drain = %d, want 0", d)
	}
}

// A cancelled context stops a drain between intents.
func TestDrainCtxCancel(t *testing.T) {
	j := New()
	g := j.Group("s", "parts")
	for i := 0; i < 2; i++ {
		if _, err := g.Execute(intent(fmt.Sprintf("s%d", i), "f1", value.NewInt(int64(i))), gateDown, directOK, deferAll); !errors.Is(err, errDown) {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	n, err := g.Drain(ctx, func(Intent) error { cancel(); return nil })
	if !errors.Is(err, context.Canceled) || n != 1 {
		t.Fatalf("drain under cancel = %d, %v", n, err)
	}
	if g.Pending() != 1 {
		t.Fatalf("pending after cancelled drain = %d, want 1", g.Pending())
	}
}
