package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Cordless Drill, 18V (Heavy-Duty)")
	want := []string{"cordless", "drill", "18v", "heavy", "duty"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if Tokenize("") != nil {
		t.Error("Tokenize(empty) should be nil")
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"drills": "drill", "batteries": "battery", "glasses": "glass",
		"pass": "pass", "ink": "ink", "18v": "18v", "abc123s": "abc123s",
		"cats": "cat",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTerms(t *testing.T) {
	got := Terms("The drills of a Supplier")
	want := []string{"drill", "supplier"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "abc", 3},
		{"kitten", "sitting", 3}, {"drill", "drill", 0},
		{"drlls", "drills", 1}, {"crdlss", "cordless", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Levenshtein is symmetric, zero iff equal, and obeys the
// triangle inequality.
func TestLevenshteinMetricProperty(t *testing.T) {
	gen := func(r *rand.Rand) string {
		n := r.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(4))
		}
		return string(b)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		if Levenshtein(a, b) != Levenshtein(b, a) {
			return false
		}
		if (Levenshtein(a, b) == 0) != (a == b) {
			return false
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEditSimilarity(t *testing.T) {
	if EditSimilarity("drill", "drill") != 1 {
		t.Error("identical strings should score 1")
	}
	if s := EditSimilarity("drlls", "drills"); s < 0.8 {
		t.Errorf("drlls~drills = %g, want ≥ 0.8", s)
	}
	if s := EditSimilarity("xyz", "drill"); s > 0.3 {
		t.Errorf("xyz~drill = %g, want low", s)
	}
	if EditSimilarity("", "") != 1 {
		t.Error("empty strings should score 1")
	}
}

func TestNGrams(t *testing.T) {
	g := NGrams("ab", 3)
	// padded: __ab__ → __a, _ab, ab_, b__
	if len(g) != 4 {
		t.Errorf("NGrams(ab,3) = %v", g)
	}
	if NGrams("x", 0) != nil {
		t.Error("n=0 should be nil")
	}
	if s := JaccardNGrams("drill", "drill", 3); s != 1 {
		t.Errorf("Jaccard identical = %g", s)
	}
	if s := JaccardNGrams("drill", "zzzzz", 3); s != 0 {
		t.Errorf("Jaccard disjoint = %g", s)
	}
}

func TestFuzzyMatcher(t *testing.T) {
	m := NewFuzzyMatcher(0.6)
	for _, term := range []string{"cordless", "drill", "drills", "corded", "ink"} {
		m.Add(term)
	}
	m.Add("drill") // duplicate ignored
	if m.Len() != 5 {
		t.Errorf("Len = %d, want 5", m.Len())
	}
	got := m.Lookup("drlls", 3)
	if len(got) == 0 {
		t.Fatal("Lookup(drlls) found nothing")
	}
	if got[0].Term != "drill" && got[0].Term != "drills" {
		t.Errorf("Lookup(drlls)[0] = %v", got[0])
	}
	got = m.Lookup("crdlss", 3)
	if len(got) == 0 || got[0].Term != "cordless" {
		t.Errorf("Lookup(crdlss) = %v, want cordless first", got)
	}
	// Exact hit scores 1.
	got = m.Lookup("ink", 1)
	if len(got) != 1 || got[0].Score != 1 {
		t.Errorf("Lookup(ink) = %v", got)
	}
}

func TestSynonyms(t *testing.T) {
	s := NewSynonyms()
	s.Declare("India ink", "black ink")
	s.Declare("black ink", "fountain pen ink, black")
	got := s.Expand("india ink")
	if len(got) != 3 {
		t.Fatalf("Expand = %v, want 3 members", got)
	}
	// Transitive merge happened.
	found := false
	for _, p := range got {
		if p == "fountain pen ink black" {
			found = true
		}
	}
	if !found {
		t.Errorf("transitive synonym missing from %v", got)
	}
	// Unknown phrase returns itself normalized.
	if got := s.Expand("Cordless Drills"); len(got) != 1 || got[0] != "cordles drill" && got[0] != "cordless drill" {
		// stemmer folds "drills"→"drill"; "cordless"→"cordles" (strip s)
		t.Logf("Expand unknown = %v", got)
	}
	if s.Size() != 1 {
		t.Errorf("Size = %d, want 1 merged ring", s.Size())
	}
	// Merging two existing rings.
	s.Declare("pencil", "lead stick")
	s.Declare("pencil", "india ink") // merges both rings
	if s.Size() != 1 {
		t.Errorf("Size after merge = %d, want 1", s.Size())
	}
	s.Declare() // no-op
}

func TestSynonymExpandTerms(t *testing.T) {
	s := NewSynonyms()
	s.Declare("ink", "india ink")
	out := s.ExpandTerms([]string{"ink"})
	// Should include both "ink" and "india".
	has := func(term string) bool {
		for _, o := range out {
			if o == term {
				return true
			}
		}
		return false
	}
	if !has("ink") || !has("india") {
		t.Errorf("ExpandTerms = %v", out)
	}
}

func TestIndexAddSearch(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "cordless drill 18V heavy duty")
	ix.Add(2, "corded drill 12V")
	ix.Add(3, "black India ink for fountain pens")
	if ix.DocCount() != 3 {
		t.Fatalf("DocCount = %d", ix.DocCount())
	}
	hits := ix.Search("cordless drill", SearchOptions{})
	if len(hits) == 0 || hits[0].DocID != 1 {
		t.Errorf("Search(cordless drill) = %v, want doc 1 first", hits)
	}
	// Both drill docs match "drill".
	hits = ix.Search("drill", SearchOptions{})
	if len(hits) != 2 {
		t.Errorf("Search(drill) = %v, want 2 hits", hits)
	}
	// Limit.
	hits = ix.Search("drill", SearchOptions{Limit: 1})
	if len(hits) != 1 {
		t.Errorf("limit not applied: %v", hits)
	}
}

func TestIndexFuzzySearch(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "cordless drill")
	ix.Add(2, "black ink")
	// Exact search misses the typo.
	if hits := ix.Search("drlls crdlss", SearchOptions{}); len(hits) != 0 {
		t.Errorf("exact search on typos = %v, want none", hits)
	}
	// Fuzzy search recovers it — the paper's "drlls: crdlss" example.
	hits := ix.Search("drlls: crdlss", SearchOptions{Fuzzy: true})
	if len(hits) == 0 || hits[0].DocID != 1 {
		t.Errorf("fuzzy search = %v, want doc 1", hits)
	}
}

func TestIndexSynonymSearch(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "India ink, 50ml bottle")
	ix.Add(2, "blue ballpoint pen")
	syn := NewSynonyms()
	syn.Declare("black ink", "india ink")
	hits := ix.Search("black ink", SearchOptions{Synonyms: syn})
	if len(hits) == 0 || hits[0].DocID != 1 {
		t.Errorf("synonym search = %v, want doc 1", hits)
	}
}

func TestIndexUpsertRemove(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "drill")
	ix.Add(1, "ink") // upsert replaces
	if hits := ix.Search("drill", SearchOptions{}); len(hits) != 0 {
		t.Errorf("stale postings after upsert: %v", hits)
	}
	if hits := ix.Search("ink", SearchOptions{}); len(hits) != 1 {
		t.Errorf("upserted content missing: %v", hits)
	}
	ix.Remove(1)
	if ix.DocCount() != 0 {
		t.Errorf("DocCount after remove = %d", ix.DocCount())
	}
	ix.Remove(99) // no-op
	if hits := ix.Search("ink", SearchOptions{}); len(hits) != 0 {
		t.Errorf("search after remove = %v", hits)
	}
}

func TestIndexContains(t *testing.T) {
	ix := NewIndex()
	ix.Add(7, "heavy duty cordless drill")
	if !ix.Contains(7, "cordless drill") {
		t.Error("Contains should match both terms")
	}
	if ix.Contains(7, "cordless saw") {
		t.Error("Contains should require all terms")
	}
	if ix.Contains(8, "drill") {
		t.Error("Contains on unknown doc")
	}
}

func TestIndexMinScore(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "drill drill drill")
	ix.Add(2, "drill and many other words about unrelated topics entirely")
	hits := ix.Search("drill", SearchOptions{})
	if len(hits) != 2 || hits[0].DocID != 1 {
		t.Fatalf("hits = %v", hits)
	}
	filtered := ix.Search("drill", SearchOptions{MinScore: hits[0].Score})
	if len(filtered) != 1 {
		t.Errorf("MinScore filter = %v", filtered)
	}
}

// Property: after any sequence of adds and removes, DocCount matches the
// set of live documents and search never returns a removed document.
func TestIndexLivenessProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ix := NewIndex()
		live := make(map[int64]bool)
		words := []string{"drill", "ink", "pen", "forklift", "bulb"}
		for i := 0; i < 50; i++ {
			id := int64(r.Intn(10))
			if r.Intn(3) == 0 {
				ix.Remove(id)
				delete(live, id)
			} else {
				ix.Add(id, words[r.Intn(len(words))]+" "+words[r.Intn(len(words))])
				live[id] = true
			}
		}
		if ix.DocCount() != len(live) {
			return false
		}
		for _, w := range words {
			for _, h := range ix.Search(w, SearchOptions{}) {
				if !live[h.DocID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
