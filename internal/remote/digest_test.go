package remote

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cohera/internal/storage"
	"cohera/internal/value"
)

// The remote digest must equal the local one byte for byte — hex
// round-trip included — and track mutations.
func TestDigestRoundTrip(t *testing.T) {
	tbl := quotesTable(t)
	srv := NewServer()
	srv.PublishTable(tbl, "sku")
	hs := httptest.NewServer(srv)
	defer hs.Close()

	c := Dial(hs.URL, "")
	got, err := c.Digest(context.Background(), "quotes")
	if err != nil {
		t.Fatal(err)
	}
	if want := tbl.Digest(); !got.Equal(want) {
		t.Fatalf("remote digest %+v != local %+v", got, want)
	}
	if got.Rows != 2 {
		t.Fatalf("rows = %d, want 2", got.Rows)
	}

	// Mutate and re-ask: the digest endpoint sees live content.
	if _, err := tbl.Upsert(storage.Row{
		value.NewString("P3"), value.Null, value.Null, value.Null,
		value.NewBool(false), value.NewFloat(0), value.Null,
	}); err != nil {
		t.Fatal(err)
	}
	got2, err := c.Digest(context.Background(), "quotes")
	if err != nil {
		t.Fatal(err)
	}
	if got2.Equal(got) {
		t.Fatal("digest unchanged after upsert")
	}
	if want := tbl.Digest(); !got2.Equal(want) {
		t.Fatalf("remote digest %+v != local %+v after upsert", got2, want)
	}

	// Unknown table → typed HTTP status error.
	if _, err := c.Digest(context.Background(), "nope"); err == nil {
		t.Fatal("digest of unknown table succeeded")
	} else {
		var se *statusError
		if !errors.As(err, &se) || se.code != http.StatusNotFound {
			t.Fatalf("want 404 statusError, got %v", err)
		}
	}
}

// /debug/replication lists every published stored table with the same
// hex digest /digest reports.
func TestDebugReplication(t *testing.T) {
	tbl := quotesTable(t)
	srv := NewServer()
	srv.Token = "sesame"
	srv.PublishTable(tbl, "sku")
	hs := httptest.NewServer(srv)
	defer hs.Close()

	req, err := http.NewRequest(http.MethodGet, hs.URL+"/debug/replication", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The token gate covers debug pages too.
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("unauthenticated /debug/replication = %d", resp.StatusCode)
		}
	}
	req.Header.Set("Authorization", "Bearer sesame")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st replicationStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Tables) != 1 || st.Tables[0].Name != "quotes" {
		t.Fatalf("replication status = %+v", st)
	}
	d := tbl.Digest()
	if st.Tables[0].Rows != d.Rows || !strings.EqualFold(st.Tables[0].Digest, hexDigest(d.Hash)) {
		t.Fatalf("status %+v != local digest %+v", st.Tables[0], d)
	}
}

func hexDigest(h uint64) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = digits[h&0xF]
		h >>= 4
	}
	return string(out)
}
