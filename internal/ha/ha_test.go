package ha

import (
	"math"
	"testing"
	"time"
)

func baseCfg() Config {
	return Config{
		Sites: 8, Fragments: 8, Replicas: 2,
		MTBF: 100 * time.Hour, MTTR: time.Hour,
		Horizon: 10000 * time.Hour, Seed: 42,
	}
}

func TestValidate(t *testing.T) {
	good := baseCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Sites = 0 },
		func(c *Config) { c.Fragments = 0 },
		func(c *Config) { c.Replicas = 0 },
		func(c *Config) { c.Replicas = 99 },
		func(c *Config) { c.MTBF = 0 },
		func(c *Config) { c.MTTR = -time.Hour },
		func(c *Config) { c.Horizon = 0 },
	}
	for i, mutate := range bads {
		c := baseCfg()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
		if _, err := Simulate(c); err == nil {
			t.Errorf("case %d should fail Simulate", i)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	// More replicas than sites cannot be placed distinctly: a config
	// error, not a panic.
	over := baseCfg()
	over.Replicas = over.Sites + 1
	if _, err := Simulate(over); err == nil {
		t.Error("Replicas > Sites should be rejected")
	}

	// Zero horizon would divide by zero: rejected up front.
	zh := baseCfg()
	zh.Horizon = 0
	if _, err := Simulate(zh); err == nil {
		t.Error("zero Horizon should be rejected")
	}

	// MTTR 0 models instantaneous repair: valid, deterministic, and the
	// system is (measure-one) always up.
	inst := baseCfg()
	inst.MTTR = 0
	res, err := Simulate(inst)
	if err != nil {
		t.Fatalf("MTTR 0 should simulate: %v", err)
	}
	for name, v := range map[string]float64{
		"content": res.ContentAvailability,
		"full":    res.FullAvailability,
		"any":     res.AnyAvailability,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s availability %f outside [0,1]", name, v)
		}
	}
	if res.ContentAvailability != 1 {
		t.Errorf("instant repair availability = %f, want 1", res.ContentAvailability)
	}
	again, err := Simulate(inst)
	if err != nil || res != again {
		t.Errorf("MTTR 0 should be deterministic: %+v vs %+v (err %v)", res, again, err)
	}

	// Availabilities stay within [0,1] across a parameter sweep,
	// including pathological repair-dominated regimes.
	for _, mttr := range []time.Duration{0, time.Nanosecond, time.Hour, 1000 * time.Hour} {
		c := baseCfg()
		c.MTTR = mttr
		c.Horizon = 1000 * time.Hour
		r, err := Simulate(c)
		if err != nil {
			t.Fatalf("MTTR %v: %v", mttr, err)
		}
		if r.ContentAvailability < 0 || r.ContentAvailability > 1 ||
			r.FullAvailability < 0 || r.FullAvailability > 1 ||
			r.AnyAvailability < 0 || r.AnyAvailability > 1 {
			t.Errorf("MTTR %v: availability outside [0,1]: %+v", mttr, r)
		}
	}
}

func TestCentralMatchesTheory(t *testing.T) {
	// A single site's availability is MTBF/(MTBF+MTTR) ≈ 0.990099.
	cfg := ConfigFor(Central, 1, 100*time.Hour, time.Hour, 200000*time.Hour, 7)
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	theory := 100.0 / 101.0
	if math.Abs(res.ContentAvailability-theory) > 0.004 {
		t.Errorf("central availability = %.5f, theory %.5f", res.ContentAvailability, theory)
	}
	// Central: content == full == any.
	if res.FullAvailability != res.ContentAvailability || res.AnyAvailability != res.ContentAvailability {
		t.Errorf("central metrics disagree: %+v", res)
	}
	if res.HardwareUnits != 1 {
		t.Errorf("hardware = %d", res.HardwareUnits)
	}
}

func TestReplicationBeatsCentral(t *testing.T) {
	seedSum := func(s Strategy) float64 {
		total := 0.0
		for seed := int64(1); seed <= 5; seed++ {
			cfg := ConfigFor(s, 8, 100*time.Hour, time.Hour, 50000*time.Hour, seed)
			res, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			total += res.ContentAvailability
		}
		return total / 5
	}
	central := seedSum(Central)
	replicated := seedSum(Replicated)
	if replicated <= central {
		t.Errorf("replication (%f) should beat central (%f)", replicated, central)
	}
	// Hot standby should be roughly 1-(1-a)^2.
	a := 100.0 / 101.0
	theory := 1 - (1-a)*(1-a)
	if math.Abs(replicated-theory) > 0.002 {
		t.Errorf("replicated = %f, theory %f", replicated, theory)
	}
}

func TestFragmentationTradeoffs(t *testing.T) {
	// "Some of the content all of the time": fragmented placement has
	// high any-availability but lower full-availability than central's
	// single coin flip would suggest.
	mtbf, mttr := 100*time.Hour, time.Hour
	horizon := 50000 * time.Hour
	frag, err := Simulate(ConfigFor(Fragmented, 8, mtbf, mttr, horizon, 3))
	if err != nil {
		t.Fatal(err)
	}
	central, err := Simulate(ConfigFor(Central, 8, mtbf, mttr, horizon, 3))
	if err != nil {
		t.Fatal(err)
	}
	if frag.AnyAvailability <= central.AnyAvailability {
		t.Errorf("fragmented any (%f) should exceed central (%f)", frag.AnyAvailability, central.AnyAvailability)
	}
	if frag.FullAvailability >= central.FullAvailability {
		t.Errorf("fragmented full (%f) should trail central (%f)", frag.FullAvailability, central.FullAvailability)
	}
	// Mean content availability equals single-site availability either way.
	if math.Abs(frag.ContentAvailability-central.ContentAvailability) > 0.01 {
		t.Errorf("content availability should match: %f vs %f", frag.ContentAvailability, central.ContentAvailability)
	}
}

func TestFragReplDominates(t *testing.T) {
	// "Most of the content all of the time": frag+repl beats everything
	// on content availability and dominates fragmented on full.
	mtbf, mttr := 100*time.Hour, time.Hour
	horizon := 50000 * time.Hour
	var fr, f, c Result
	for seed := int64(1); seed <= 3; seed++ {
		a, err := Simulate(ConfigFor(FragRepl, 8, mtbf, mttr, horizon, seed))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Simulate(ConfigFor(Fragmented, 8, mtbf, mttr, horizon, seed))
		d, _ := Simulate(ConfigFor(Central, 8, mtbf, mttr, horizon, seed))
		fr.ContentAvailability += a.ContentAvailability / 3
		fr.FullAvailability += a.FullAvailability / 3
		f.ContentAvailability += b.ContentAvailability / 3
		f.FullAvailability += b.FullAvailability / 3
		c.ContentAvailability += d.ContentAvailability / 3
	}
	if fr.ContentAvailability <= f.ContentAvailability || fr.ContentAvailability <= c.ContentAvailability {
		t.Errorf("frag+repl content = %f should dominate (frag %f, central %f)",
			fr.ContentAvailability, f.ContentAvailability, c.ContentAvailability)
	}
	if fr.FullAvailability <= f.FullAvailability {
		t.Errorf("frag+repl full = %f should beat fragmented %f", fr.FullAvailability, f.FullAvailability)
	}
}

func TestNinesComputation(t *testing.T) {
	res, err := Simulate(ConfigFor(Replicated, 4, 1000*time.Hour, time.Hour, 100000*time.Hour, 11))
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentAvailability < 1 {
		want := -math.Log10(1 - res.ContentAvailability)
		if math.Abs(res.Nines-want) > 1e-9 {
			t.Errorf("nines = %f, want %f", res.Nines, want)
		}
	}
	// A site that never fails within the horizon yields +Inf nines.
	perfect := Config{
		Sites: 1, Fragments: 1, Replicas: 1,
		MTBF: 1 << 60, MTTR: time.Hour,
		Horizon: time.Hour, Seed: 1,
	}
	res, err = Simulate(perfect)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentAvailability == 1 && !math.IsInf(res.Nines, 1) {
		t.Errorf("perfect availability nines = %f", res.Nines)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseCfg()
	a, _ := Simulate(cfg)
	b, _ := Simulate(cfg)
	if a != b {
		t.Error("same seed should reproduce identical results")
	}
	cfg.Seed = 43
	c, _ := Simulate(cfg)
	if a == c {
		t.Error("different seed should perturb results")
	}
}

func TestConfigFor(t *testing.T) {
	for _, s := range []Strategy{Central, Fragmented, Replicated, FragRepl} {
		cfg := ConfigFor(s, 8, time.Hour, time.Minute, time.Hour, 1)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s config invalid: %v", s, err)
		}
	}
	if c := ConfigFor(FragRepl, 8, time.Hour, time.Minute, time.Hour, 1); c.Fragments != 8 || c.Replicas != 2 {
		t.Errorf("fragrepl = %+v", c)
	}
}
