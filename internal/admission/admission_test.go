package admission

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cohera/internal/storage"
	"cohera/internal/value"
)

// fakeClock is a manually advanced clock for deterministic refill and
// budget timing.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func TestOverloadErrorChain(t *testing.T) {
	err := error(&OverloadError{Tenant: "acme", Reason: "queue-full", RetryAfter: 100 * time.Millisecond})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("OverloadError must unwrap to ErrOverloaded")
	}
	wrapped := errors.Join(errors.New("outer"), err)
	ra, ok := RetryAfter(wrapped)
	if !ok || ra != 100*time.Millisecond {
		t.Fatalf("RetryAfter(wrapped) = %v, %v; want 100ms, true", ra, ok)
	}
	if oe, ok := AsOverload(wrapped); !ok || oe.Tenant != "acme" {
		t.Fatalf("AsOverload(wrapped) = %+v, %v", oe, ok)
	}
	if _, ok := RetryAfter(errors.New("plain")); ok {
		t.Fatal("RetryAfter on a non-overload error must report false")
	}
}

func TestTenantContext(t *testing.T) {
	ctx := context.Background()
	if got := TenantOf(ctx); got != DefaultTenant {
		t.Fatalf("TenantOf(untagged) = %q, want %q", got, DefaultTenant)
	}
	if got := TenantOf(WithTenant(ctx, "acme")); got != "acme" {
		t.Fatalf("TenantOf = %q, want acme", got)
	}
	if got := TenantOf(WithTenant(ctx, "")); got != DefaultTenant {
		t.Fatalf("TenantOf(empty tag) = %q, want %q", got, DefaultTenant)
	}
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	if c.Congestion() != 0 {
		t.Fatal("nil controller must report zero congestion")
	}
}

func TestAdmitWithinWindow(t *testing.T) {
	c := New(Config{MaxInFlight: 4})
	defer c.Close()
	var releases []func()
	for i := 0; i < 4; i++ {
		release, err := c.Admit(context.Background())
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		releases = append(releases, release)
	}
	if got := c.InFlight(); got != 4 {
		t.Fatalf("InFlight = %d, want 4", got)
	}
	for _, r := range releases {
		r()
	}
}

func TestQueueFullShedsImmediately(t *testing.T) {
	c := New(Config{MaxInFlight: 1, QueueDepth: 1, QueueTimeout: 50 * time.Millisecond})
	defer c.Close()
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Occupy the single queue slot with a parked waiter.
	parked := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background())
		parked <- err
	}()
	// Wait until the waiter is actually queued before probing.
	for i := 0; i < 1000 && c.Queued() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if c.Queued() == 0 {
		t.Fatal("waiter never queued")
	}
	_, err = c.Admit(context.Background())
	oe, ok := AsOverload(err)
	if !ok || oe.Reason != "queue-full" {
		t.Fatalf("overflow admit = %v, want queue-full shed", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatal("shed must carry a positive Retry-After")
	}
	if err := <-parked; err == nil {
		// The parked waiter timed out or was granted after release;
		// either way it must not hang. A grant here means release()
		// above already ran via defer ordering — not possible, so the
		// queue timeout should have fired.
		t.Fatal("parked waiter admitted while the window was full")
	} else if oe, ok := AsOverload(err); !ok || oe.Reason != "queue-timeout" {
		t.Fatalf("parked waiter error = %v, want queue-timeout shed", err)
	}
}

func TestReleaseUnblocksQueuedWaiter(t *testing.T) {
	c := New(Config{MaxInFlight: 1, QueueDepth: 4, QueueTimeout: 5 * time.Second})
	defer c.Close()
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r2, err := c.Admit(context.Background())
		if err == nil {
			r2()
		}
		got <- err
	}()
	for i := 0; i < 1000 && c.Queued() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued waiter after release: %v", err)
	}
}

func TestCancelWhileQueuedReturnsCtxErr(t *testing.T) {
	c := New(Config{MaxInFlight: 1, QueueDepth: 4, QueueTimeout: 5 * time.Second})
	defer c.Close()
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx)
		got <- err
	}()
	for i := 0; i < 1000 && c.Queued() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	err = <-got
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter error = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatal("caller cancellation must not be reported as overload")
	}
}

func TestTenantRateLimiting(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MaxInFlight: 16, TenantRate: 1, TenantBurst: 2, Clock: clk.Now})
	defer c.Close()
	ctx := WithTenant(context.Background(), "hot")
	for i := 0; i < 2; i++ {
		release, err := c.Admit(ctx)
		if err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
		release()
	}
	_, err := c.Admit(ctx)
	oe, ok := AsOverload(err)
	if !ok || oe.Reason != "tenant-rate" {
		t.Fatalf("over-rate admit = %v, want tenant-rate shed", err)
	}
	if oe.RetryAfter <= 0 || oe.RetryAfter > 5*time.Second {
		t.Fatalf("Retry-After = %v, want in (0, 5s]", oe.RetryAfter)
	}
	// Another tenant's bucket is untouched.
	release, err := c.Admit(WithTenant(context.Background(), "cold"))
	if err != nil {
		t.Fatalf("other tenant blocked by hot tenant's bucket: %v", err)
	}
	release()
	// A second's refill restores one token.
	clk.Advance(time.Second)
	release, err = c.Admit(ctx)
	if err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	release()
}

func TestRetryAfterGrowsWithShedStreak(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MaxInFlight: 16, TenantRate: 100, TenantBurst: 1, Clock: clk.Now})
	defer c.Close()
	ctx := WithTenant(context.Background(), "storm")
	release, err := c.Admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	release()
	var first, last time.Duration
	for i := 0; i < 4; i++ {
		_, err := c.Admit(ctx)
		oe, ok := AsOverload(err)
		if !ok {
			t.Fatalf("shed %d: %v", i, err)
		}
		if i == 0 {
			first = oe.RetryAfter
		}
		last = oe.RetryAfter
	}
	if last <= first {
		t.Fatalf("Retry-After must grow across a shed streak: first %v, last %v", first, last)
	}
}

func TestBudgetShedsOnlyUnderCongestion(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MaxInFlight: 2, QueueDepth: 2, QueueTimeout: 50 * time.Millisecond,
		TenantBudget: 0.1, Clock: clk.Now})
	defer c.Close()
	over := WithTenant(context.Background(), "spender")
	// Drive the tenant deep over budget: one admitted request that
	// consumes 10 coordinator-seconds against a 0.1/s accrual.
	release, err := c.Admit(over)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	release()
	// Idle system: over-budget tenant still runs (work conservation).
	release, err = c.Admit(over)
	if err != nil {
		t.Fatalf("over-budget tenant shed on an idle system: %v", err)
	}
	release()
	// Saturate the window with another tenant, then the over-budget
	// tenant is shed first.
	filler := WithTenant(context.Background(), "filler")
	r1, err := c.Admit(filler)
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	r2, err := c.Admit(filler)
	if err != nil {
		t.Fatal(err)
	}
	defer r2()
	_, err = c.Admit(over)
	oe, ok := AsOverload(err)
	if !ok || oe.Reason != "budget" {
		t.Fatalf("over-budget admit under congestion = %v, want budget shed", err)
	}
	// A solvent tenant under the same congestion queues instead of
	// being budget-shed (it times out waiting, which is the point:
	// budget decides who is refused instantly, not who waits).
	_, err = c.Admit(WithTenant(context.Background(), "solvent"))
	if oe, ok := AsOverload(err); !ok || oe.Reason == "budget" {
		t.Fatalf("solvent tenant = %v, want a non-budget outcome", err)
	}
}

func TestInflightNeverExceedsWindowUnderRace(t *testing.T) {
	const window = 8
	c := New(Config{MaxInFlight: window, QueueDepth: 64, QueueTimeout: 2 * time.Second})
	defer c.Close()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				release, err := c.Admit(context.Background())
				if err != nil {
					continue
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cur.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > window {
		t.Fatalf("observed %d concurrent admissions, window is %d", p, window)
	}
}

func TestDoubleReleaseIsIdempotent(t *testing.T) {
	c := New(Config{MaxInFlight: 1})
	defer c.Close()
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	release()
	// If the double release freed two slots the dispatcher's inflight
	// would go negative and a later pair of admits could both pass a
	// 1-wide window; assert the accounting stayed sane instead.
	r1, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.InFlight(); got != 1 {
		t.Fatalf("InFlight after re-admit = %d, want 1", got)
	}
	r1()
}

// sliceStream is a minimal RowStream over fixed rows.
type sliceStream struct {
	rows   []storage.Row
	i      int
	closed bool
}

func (s *sliceStream) Columns() []string { return []string{"id"} }

func (s *sliceStream) Next() (storage.Row, error) {
	if s.closed {
		return nil, storage.ErrStreamClosed
	}
	if s.i >= len(s.rows) {
		return nil, io.EOF
	}
	r := s.rows[s.i]
	s.i++
	return r, nil
}

func (s *sliceStream) Close() error {
	s.closed = true
	return nil
}

func TestTrackedStreamHoldsSlotUntilDrained(t *testing.T) {
	c := New(Config{MaxInFlight: 1, QueueDepth: 1, QueueTimeout: 50 * time.Millisecond})
	defer c.Close()
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrackedStream(&sliceStream{rows: []storage.Row{{value.NewInt(1)}}}, release)
	if cols := ts.Columns(); len(cols) != 1 || cols[0] != "id" {
		t.Fatalf("Columns = %v", cols)
	}
	// Slot is held while the stream is open: a second admit times out.
	if _, err := c.Admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit while stream open = %v, want overload", err)
	}
	if _, err := ts.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Next(); err != io.EOF {
		t.Fatalf("Next at end = %v, want io.EOF", err)
	}
	// EOF released the slot even before Close.
	r2, err := c.Admit(context.Background())
	if err != nil {
		t.Fatalf("admit after stream drained: %v", err)
	}
	r2()
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackedStreamReleasesOnClose(t *testing.T) {
	var released atomic.Int32
	ts := NewTrackedStream(&sliceStream{rows: []storage.Row{{value.NewInt(1)}}},
		func() { released.Add(1) })
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	if released.Load() == 0 {
		t.Fatal("Close must release the slot")
	}
	if _, err := ts.Next(); !errors.Is(err, storage.ErrStreamClosed) {
		t.Fatalf("Next after Close = %v, want ErrStreamClosed", err)
	}
}

// TestCancelVsGrantRaceDoesNotLeakQueueCount is the queuedN-leak
// regression: when a waiter's deadline fires in the same instant the
// dispatcher grants it, the CAS loser must still settle the queue
// counter. Before the fix, each lost race left queuedN permanently
// inflated until the gate shed everything as queue-full forever.
func TestCancelVsGrantRaceDoesNotLeakQueueCount(t *testing.T) {
	c := New(Config{MaxInFlight: 16, QueueDepth: 256, QueueTimeout: 2 * time.Second})
	defer c.Close()
	// A pre-canceled context makes ctx.Done ready the moment Admit
	// reaches its wait select, while the near-empty window means the
	// dispatcher's grant lands at the same instant — the select picks
	// either branch, exercising the CAS-loss path constantly.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				release, err := c.Admit(canceled)
				if err == nil {
					release()
				}
			}
		}()
	}
	wg.Wait()
	// Every Admit has returned, so nothing is waiting: a nonzero count
	// here is a leaked waiter in the accounting.
	if q := c.Queued(); q != 0 {
		t.Fatalf("queuedN leaked: %d phantom waiters after all admits returned", q)
	}
}

func TestAdmitAfterCloseShedsFast(t *testing.T) {
	c := New(Config{MaxInFlight: 1, QueueTimeout: 5 * time.Second})
	c.Close()
	start := time.Now()
	_, err := c.Admit(context.Background())
	oe, ok := AsOverload(err)
	if !ok || oe.Reason != "closed" {
		t.Fatalf("admit on closed controller = %v, want closed shed", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("closed controller took %v to shed; must not wait out the queue timeout", elapsed)
	}
}

// TestShedWhileQueuedRefundsTenantToken pins that a request shed after
// its rate token was debited gets the token back: tokens pay for
// admitted work, so being refused must not also drain the bucket.
func TestShedWhileQueuedRefundsTenantToken(t *testing.T) {
	clk := newFakeClock()
	// Rate is negligible and the clock never advances, so refills are
	// zero and the burst of 2 is the whole supply.
	c := New(Config{MaxInFlight: 1, QueueDepth: 4, QueueTimeout: 30 * time.Millisecond,
		TenantRate: 0.001, TenantBurst: 2, Clock: clk.Now})
	defer c.Close()
	ctx := WithTenant(context.Background(), "acme")
	release, err := c.Admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Second admit debits the last token, queues behind the full
	// window, and times out — the token must come back.
	_, err = c.Admit(ctx)
	if oe, ok := AsOverload(err); !ok || oe.Reason != "queue-timeout" {
		t.Fatalf("queued admit = %v, want queue-timeout shed", err)
	}
	release()
	release, err = c.Admit(ctx)
	if err != nil {
		t.Fatalf("admit after refund = %v; the shed request kept the tenant's token", err)
	}
	release()
}

func TestCloseJoinsDispatcher(t *testing.T) {
	c := New(Config{MaxInFlight: 2})
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	release() // releasing after Close must not block (freed is buffered)
}
