package federation

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"cohera/internal/fault"
	"cohera/internal/resilience"
)

// TestSentinelWrapChains pins the errors.Is contract of the availability
// sentinels through every wrap depth callers see.
func TestSentinelWrapChains(t *testing.T) {
	fed, _, _ := twoFragFed(t)
	ctx := context.Background()

	east, err := fed.Site("east-1")
	if err != nil {
		t.Fatal(err)
	}

	// Liveness flag → ErrSiteDown.
	east.SetDown(true)
	_, err = east.SubQuery(ctx, "parts", nil, nil)
	if !errors.Is(err, ErrSiteDown) {
		t.Fatalf("down site: want ErrSiteDown, got %v", err)
	}
	if errors.Is(err, ErrBreakerOpen) || errors.Is(err, ErrSiteFailure) {
		t.Fatalf("down site error should not classify as breaker/transient: %v", err)
	}

	// A whole-query failure over a dead fragment wraps ErrNoReplica AND
	// the last replica's ErrSiteDown.
	_, _, err = fed.QueryTraced(ctx, "SELECT sku FROM parts")
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("dead fragment: want ErrNoReplica, got %v", err)
	}
	if !errors.Is(err, ErrSiteDown) {
		t.Fatalf("dead fragment: chain should retain ErrSiteDown, got %v", err)
	}
	if !strings.Contains(err.Error(), "east") {
		t.Fatalf("dead fragment error should name the fragment: %v", err)
	}
	east.SetDown(false)

	// Fault hook → ErrSiteFailure wrapping the hook's own error.
	inj := fault.New("east-hook", fault.Config{FailFirst: 1, Seed: 1})
	east.SetFaultHook(inj.Inject)
	_, err = east.SubQuery(ctx, "parts", nil, nil)
	if !errors.Is(err, ErrSiteFailure) {
		t.Fatalf("hook failure: want ErrSiteFailure, got %v", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("hook failure: chain should retain fault.ErrInjected, got %v", err)
	}
	east.SetFaultHook(nil)

	// Forced-open breaker → ErrBreakerOpen.
	east.Breaker().Clock = (&fault.ManualClock{}).Now
	for i := 0; i < 10; i++ {
		east.Breaker().RecordFailure()
	}
	_, err = east.SubQuery(ctx, "parts", nil, nil)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker: want ErrBreakerOpen, got %v", err)
	}
	east.Breaker().Reset()
	if _, err = east.SubQuery(ctx, "parts", nil, nil); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

// TestPartialResultsDegradedSelect is the graceful-degradation contract:
// with PartialResults on, losing every replica of one fragment yields
// the live fragments' rows plus a typed per-fragment error.
func TestPartialResultsDegradedSelect(t *testing.T) {
	fed, _, _ := twoFragFed(t)
	ctx := context.Background()
	east, _ := fed.Site("east-1")
	east.SetDown(true)

	// Default mode: the query fails outright.
	if _, _, err := fed.QueryTraced(ctx, "SELECT sku FROM parts"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("strict mode should fail with ErrNoReplica, got %v", err)
	}

	fed.PartialResults = true
	res, trace, err := fed.QueryTraced(ctx, "SELECT sku FROM parts ORDER BY sku")
	if err != nil {
		t.Fatalf("degraded query should succeed: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("degraded rows = %d, want 2 (west only)", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !strings.HasPrefix(r[0].String(), "W") {
			t.Fatalf("unexpected row %v from dead fragment", r)
		}
	}
	if !trace.Degraded {
		t.Fatal("trace should be marked Degraded")
	}
	fe, ok := trace.FragmentErrors["parts/east"]
	if !ok {
		t.Fatalf("FragmentErrors should name parts/east, got %v", trace.FragmentErrors)
	}
	if !errors.Is(fe, ErrNoReplica) || !errors.Is(fe, ErrSiteDown) {
		t.Fatalf("fragment error should wrap ErrNoReplica and ErrSiteDown: %v", fe)
	}
	if _, live := trace.FragmentSites["parts/west"]; !live {
		t.Fatal("live fragment should still be recorded in FragmentSites")
	}

	// Recovery: faults clear, the same query is whole again.
	east.SetDown(false)
	res, trace, err = fed.QueryTraced(ctx, "SELECT sku FROM parts")
	if err != nil || len(res.Rows) != 4 || trace.Degraded {
		t.Fatalf("recovered query: rows=%d degraded=%v err=%v", len(res.Rows), trace.Degraded, err)
	}
}

// TestPartialResultsSemanticErrorStillFails: degradation only covers
// availability; a malformed statement must not half-answer.
func TestPartialResultsSemanticErrorStillFails(t *testing.T) {
	fed, _, _ := twoFragFed(t)
	fed.PartialResults = true
	if _, _, err := fed.QueryTraced(context.Background(), "SELECT nope FROM parts"); err == nil {
		t.Fatal("unknown column should fail even in partial mode")
	}
}

// TestBreakerLifecycleOnSite drives a site's breaker open with a fault
// hook, verifies it sheds load while open, and closes it again through
// half-open probes once faults clear — the scoreboard tracking every
// step.
func TestBreakerLifecycleOnSite(t *testing.T) {
	fed, _, _ := twoFragFed(t)
	ctx := context.Background()
	east, _ := fed.Site("east-1")

	clock := &fault.ManualClock{}
	br := east.Breaker()
	br.FailureThreshold = 2
	br.OpenTimeout = time.Second
	br.HalfOpenSuccesses = 2
	br.Clock = clock.Now

	inj := fault.New("east-chaos", fault.Config{ErrorRate: 1, Seed: 7})
	east.SetFaultHook(inj.Inject)

	// Sustained faults trip the breaker at the threshold.
	for i := 0; i < 2; i++ {
		if _, err := east.SubQuery(ctx, "parts", nil, nil); !errors.Is(err, ErrSiteFailure) {
			t.Fatalf("fault %d: want ErrSiteFailure, got %v", i, err)
		}
	}
	if br.State() != resilience.Open {
		t.Fatalf("breaker state = %v, want Open", br.State())
	}
	if east.Available() || east.HealthScore() != 0 {
		t.Fatalf("open site should be unavailable with score 0, got %v/%v", east.Available(), east.HealthScore())
	}
	if _, err := east.SubQuery(ctx, "parts", nil, nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker should reject without running the hook, got %v", err)
	}

	// Scoreboard reflects the outage.
	var eastRow SiteHealth
	for _, h := range fed.Scoreboard() {
		if h.Site == "east-1" {
			eastRow = h
		}
	}
	if eastRow.Site != "east-1" || eastRow.Breaker != resilience.Open || eastRow.Score != 0 {
		t.Fatalf("scoreboard row = %+v, want Open/0", eastRow)
	}

	// Faults clear; after the open timeout the half-open probes re-close.
	inj.SetEnabled(false)
	clock.Advance(2 * time.Second)
	for i := 0; i < 2; i++ {
		if _, err := east.SubQuery(ctx, "parts", nil, nil); err != nil {
			t.Fatalf("probe %d should pass: %v", i, err)
		}
	}
	if br.State() != resilience.Closed {
		t.Fatalf("breaker state = %v, want Closed after probes", br.State())
	}
	if east.HealthScore() != 1 {
		t.Fatalf("healthy score = %v, want 1", east.HealthScore())
	}
}

// TestRankingSkipsOpenBreaker: the health scoreboard replaces the
// binary down flag in replica selection, so a breaker-open replica is
// never even tried.
func TestRankingSkipsOpenBreaker(t *testing.T) {
	fed, _, fragWest := twoFragFed(t)
	ctx := context.Background()
	west1, _ := fed.Site("west-1")
	west1.Breaker().Clock = (&fault.ManualClock{}).Now
	for i := 0; i < 10; i++ {
		west1.Breaker().RecordFailure()
	}

	ranked := fed.Optimizer().Rank(ctx, fragWest, 2)
	for _, s := range ranked {
		if s.Name() == "west-1" {
			t.Fatal("open-breaker site should sit the auction out")
		}
	}

	_, trace, err := fed.QueryTraced(ctx, "SELECT sku FROM parts WHERE region = 'west'")
	if err != nil {
		t.Fatal(err)
	}
	if got := trace.FragmentSites["parts/west"]; got != "west-2" {
		t.Fatalf("west fragment served by %q, want west-2", got)
	}

	// The centralized baseline's snapshot sees the same scoreboard.
	cent := NewCentralized(fed)
	cent.ProbeLatency = 0
	cent.RefreshStats(ctx)
	for _, s := range cent.Rank(ctx, fragWest, 2) {
		if s.Name() == "west-1" {
			t.Fatal("centralized snapshot should exclude the open-breaker site")
		}
	}
}

// TestDMLAllReplicasDownTyped is the silent-degradation regression test:
// a write whose targeted fragment has no available replica must fail
// with ErrNoReplica naming the fragment, not report success.
func TestDMLAllReplicasDownTyped(t *testing.T) {
	fed, _, _ := twoFragFed(t)
	ctx := context.Background()
	west1, _ := fed.Site("west-1")
	west2, _ := fed.Site("west-2")
	west1.SetDown(true)
	west2.SetDown(true)

	// UPDATE targeting only the dead fragment.
	_, dr, _, err := fed.ExecTraced(ctx, "UPDATE parts SET price = 1 WHERE region = 'west'")
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("want ErrNoReplica, got %v (result %+v)", err, dr)
	}
	if !errors.Is(err, ErrSiteDown) {
		t.Fatalf("chain should retain the replica's ErrSiteDown: %v", err)
	}
	if !strings.Contains(err.Error(), "west") {
		t.Fatalf("error should name the lost fragment: %v", err)
	}

	// DELETE takes the same path.
	if _, _, _, err := fed.ExecTraced(ctx, "DELETE FROM parts WHERE region = 'west'"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("delete: want ErrNoReplica, got %v", err)
	}

	// INSERT routed to the dead fragment fails the same way.
	_, _, _, err = fed.ExecTraced(ctx, "INSERT INTO parts (sku, name, price, region) VALUES ('W9', 'crate', 5, 'west')")
	if !errors.Is(err, ErrNoReplica) || !errors.Is(err, ErrSiteDown) {
		t.Fatalf("insert: want ErrNoReplica wrapping ErrSiteDown, got %v", err)
	}

	// The live fragment still accepts writes; only one replica down is
	// best-effort, reported, and not an error.
	west2.SetDown(false)
	_, dr, trace, err := fed.ExecTraced(ctx, "UPDATE parts SET price = 2 WHERE region = 'west'")
	if err != nil {
		t.Fatalf("one live replica should carry the write: %v", err)
	}
	if len(dr.SkippedReplicas) != 1 || !strings.Contains(dr.SkippedReplicas[0], "west-1") {
		t.Fatalf("skipped replicas = %v, want west@west-1", dr.SkippedReplicas)
	}
	if got := trace.FragmentSites["parts/west"]; got != "west-2" {
		t.Fatalf("write recorded at %q, want west-2", got)
	}
}

// TestDMLNoBlindRetry pins the no-blind-retry rule for non-idempotent
// writes: when a fault strikes one replica after another has applied a
// relative UPDATE, nothing re-runs the statement — the increment lands
// exactly once per live replica and the miss is reported, not retried.
func TestDMLNoBlindRetry(t *testing.T) {
	fed, _, _ := twoFragFed(t)
	ctx := context.Background()
	west1, _ := fed.Site("west-1")
	west2, _ := fed.Site("west-2")

	priceAt := func(s *Site) float64 {
		res, err := s.DB().Exec("SELECT price FROM parts WHERE sku = 'W1'")
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].Float()
	}
	before1, before2 := priceAt(west1), priceAt(west2)

	// west-2's hook fails exactly once: the fault lands after west-1 (an
	// earlier replica in the fragment's order) has already applied the
	// non-idempotent increment.
	inj := fault.New("west2-once", fault.Config{FailFirst: 1, Seed: 1})
	west2.SetFaultHook(inj.Inject)

	_, dr, _, err := fed.ExecTraced(ctx, "UPDATE parts SET price = price + 1 WHERE sku = 'W1'")
	if err != nil {
		t.Fatalf("best-effort write should succeed on the live replica: %v", err)
	}
	if len(dr.SkippedReplicas) != 1 || !strings.Contains(dr.SkippedReplicas[0], "west-2") {
		t.Fatalf("skipped = %v, want the faulted west-2 copy", dr.SkippedReplicas)
	}
	if got := priceAt(west1); got != before1+1 {
		t.Fatalf("west-1 price = %v, want exactly one increment from %v (no blind retry)", got, before1)
	}
	if got := priceAt(west2); got != before2 {
		t.Fatalf("west-2 price = %v, want untouched %v (fault skipped the copy)", got, before2)
	}

	// Row count is stable too: no retry duplicated the row anywhere.
	res, err := fed.Query(ctx, "SELECT sku FROM parts WHERE sku = 'W1'")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("rows for W1 = %d (err %v), want 1", len(res.Rows), err)
	}
}

// TestFaultHookRecoveryWithFailover: a transient hook fault on one west
// replica fails over to the other transparently — the query succeeds
// and the failover is counted.
func TestFaultHookRecoveryWithFailover(t *testing.T) {
	fed, _, _ := twoFragFed(t)
	ctx := context.Background()
	west1, _ := fed.Site("west-1")
	west2, _ := fed.Site("west-2")
	for _, s := range []*Site{west1, west2} {
		inj := fault.New(s.Name()+"-flaky", fault.Config{FailFirst: 1, Seed: 3})
		s.SetFaultHook(inj.Inject)
	}

	// Both replicas fail their first call, so the query fails over and
	// still comes up empty-handed: a typed ErrNoReplica.
	if _, _, err := fed.QueryTraced(ctx, "SELECT sku FROM parts WHERE region = 'west'"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("both replicas faulted: want ErrNoReplica, got %v", err)
	}

	// Second attempt: FailFirst drained, both replicas are healthy again.
	res, trace, err := fed.QueryTraced(ctx, "SELECT sku FROM parts WHERE region = 'west'")
	if err != nil {
		t.Fatalf("after faults drain: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if trace.Degraded {
		t.Fatal("healthy query must not be degraded")
	}
}
