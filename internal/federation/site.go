// Package federation implements the heart of the content integration
// system (paper, §3.2 and §4): an adaptive, load-balancing federated
// query processor in the style of Cohera Integrate and the Mariposa
// system it derives from.
//
// A Federation is a set of Sites, each running a full local engine
// (internal/exec) or fronting a remote source through a wrapper
// (internal/wrapper). Global tables are divided into Fragments, each
// replicated on one or more sites. Queries against the global schema are
// decomposed into per-fragment local queries; replica and site selection
// is delegated to an Optimizer — either the agoric (bid-based) optimizer
// the paper advocates or the centralized compile-time cost-based baseline
// it criticizes — and intermediate results are combined at the
// coordinator.
package federation

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cohera/internal/exec"
	"cohera/internal/obs"
	"cohera/internal/plan"
	"cohera/internal/resilience"
	"cohera/internal/sqlparse"
	"cohera/internal/storage"
	"cohera/internal/wrapper"
)

// Sentinel errors of the site availability machinery. They are
// errors.New sentinels so failover and degradation logic can classify
// failures with errors.Is through arbitrarily deep wrap chains.
var (
	// ErrSiteDown is returned by operations against a site whose
	// liveness flag is off (an operator- or harness-declared outage).
	ErrSiteDown = errors.New("federation: site down")
	// ErrBreakerOpen is returned when a site's circuit breaker is
	// rejecting traffic after persistent failures.
	ErrBreakerOpen = errors.New("federation: circuit breaker open")
	// ErrSiteFailure marks a transient failure at a site — an injected
	// fault or a failed fetch from the source it fronts. The gather
	// loop fails over to the next replica on it.
	ErrSiteFailure = errors.New("federation: transient site failure")
)

// FaultHook is a site-level fault injection point (see internal/fault:
// Injector.Inject matches this signature). A non-nil error makes the
// site refuse the operation as a transient failure; the hook may also
// delay or block to simulate slowness, honoring ctx.
type FaultHook func(ctx context.Context) error

// metBreakerState is the per-site breaker position gauge
// (0 closed, 1 open, 2 half-open — resilience.State values).
func metBreakerState(site string) *obs.Gauge {
	return obs.Default().Gauge("cohera_breaker_state",
		"Circuit breaker position per site (0 closed, 1 open, 2 half-open).",
		obs.Labels{"site": site})
}

// metBreakerTransitions counts breaker state changes per site.
func metBreakerTransitions(site, to string) *obs.Counter {
	return obs.Default().Counter("cohera_breaker_transitions_total",
		"Circuit breaker transitions per site, by target state.",
		obs.Labels{"site": site, "to": to})
}

// CostModel describes a site's simulated performance: the paper's testbed
// is a wide-area network of heterogeneous machines, which we reproduce
// with per-site latency and per-row processing costs. Zero values make a
// site free and instantaneous (useful in unit tests).
type CostModel struct {
	// Latency is the round-trip cost of reaching the site.
	Latency time.Duration
	// PerRow is the processing cost per row produced.
	PerRow time.Duration
	// LoadPenalty scales cost by (1 + LoadPenalty × concurrent queries):
	// the knob that makes load balancing matter.
	LoadPenalty float64
}

// Site is one federation member: a named local engine plus wrapper-backed
// virtual tables, a cost model, and liveness state.
type Site struct {
	name string
	db   *exec.Database

	// latShared is the site's series in the shared registry (what
	// /metrics exports); latLocal is a private copy backing the agoric
	// bid prior, isolated so unrelated federations reusing a site name
	// in the same process cannot contaminate each other's rankings.
	latShared *obs.Histogram
	latLocal  *obs.Histogram

	// breaker is the site's circuit breaker, set in NewSite and
	// immutable afterwards (the breaker synchronizes itself). It feeds
	// the health scoreboard that replaces the binary down flag in site
	// selection: persistent failures open it, stopping traffic; a
	// half-open probe discovers recovery.
	breaker *resilience.Breaker

	mu      sync.RWMutex
	sources map[string]wrapper.Source
	cost    CostModel
	hook    FaultHook
	// pushCaps overrides the σ/π/limit capabilities the site advertises
	// to the federation planner; nil means the default full record (a
	// site fronts a complete engine). Tests and benchmarks install
	// weaker records to model capability-limited members.
	pushCaps *plan.PushCaps

	down     atomic.Bool
	inFlight atomic.Int64
	served   atomic.Int64
	busyNS   atomic.Int64
}

// NewSite creates a site with an empty local database.
func NewSite(name string) *Site {
	br := &resilience.Breaker{}
	br.OnTransition = func(_, to resilience.State) {
		metBreakerState(name).Set(int64(to))
		metBreakerTransitions(name, to.String()).Inc()
	}
	return &Site{
		name: name,
		db:   exec.NewDatabase(),
		latShared: obs.Default().Histogram("cohera_site_subquery_seconds",
			"Observed wall-clock latency of subqueries served per site.",
			obs.Labels{"site": name}),
		latLocal: obs.NewHistogram(nil),
		breaker:  br,
		sources:  make(map[string]wrapper.Source),
	}
}

// Name returns the site's identifier.
func (s *Site) Name() string { return s.name }

// DB exposes the site's local engine so workload generators can load
// fragments directly.
func (s *Site) DB() *exec.Database { return s.db }

// SetCost installs the simulated cost model.
func (s *Site) SetCost(c CostModel) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cost = c
}

// Cost returns the current cost model.
func (s *Site) Cost() CostModel {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cost
}

// AddSource registers a wrapper-backed virtual table under its schema
// name. Queries against it fetch on demand from the remote owner. The
// source is wrapped with wrapper.Instrument so fetches show up in the
// shared metrics registry and span traces.
func (s *Site) AddSource(src wrapper.Source) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources[lower(src.Schema().Name)] = wrapper.Instrument(src)
}

// PushCaps reports the σ/π/limit capabilities the site advertises to
// the federation planner. The default is plan.FullPushCaps: a site
// fronts a complete engine, so any split the planner computes against a
// weaker override is honored by simply not sending the residual here.
func (s *Site) PushCaps() plan.PushCaps {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.pushCaps == nil {
		return plan.FullPushCaps()
	}
	return *s.pushCaps
}

// SetPushCaps overrides the advertised capabilities; nil restores the
// full default. Capability-mixed tests and benchmarks use it to model
// sites that cannot filter, project, or stop early.
func (s *Site) SetPushCaps(caps *plan.PushCaps) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if caps == nil {
		s.pushCaps = nil
		return
	}
	c := *caps
	s.pushCaps = &c
}

// SetDown injects or clears a failure.
func (s *Site) SetDown(down bool) { s.down.Store(down) }

// Alive reports liveness.
func (s *Site) Alive() bool { return !s.down.Load() }

// Breaker exposes the site's circuit breaker so harnesses can tune
// thresholds and install deterministic clocks.
func (s *Site) Breaker() *resilience.Breaker { return s.breaker }

// SetFaultHook installs a fault-injection hook consulted before the
// site serves any operation; nil clears it.
func (s *Site) SetFaultHook(h FaultHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

func (s *Site) faultHook() FaultHook {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hook
}

// Available reports whether the site would currently accept work: it is
// alive and its breaker is not open. Unlike CheckAvailable it does not
// admit a half-open probe or run the fault hook, so optimizers can poll
// it without consuming probe slots.
func (s *Site) Available() bool {
	return s.Alive() && s.breaker.State() != resilience.Open
}

// HealthScore collapses liveness and breaker position into a [0, 1]
// score for rankers: 0 when down or open, 0.5 while half-open (probe
// traffic only), 1 when closed.
func (s *Site) HealthScore() float64 {
	if !s.Alive() {
		return 0
	}
	switch s.breaker.State() {
	case resilience.Open:
		return 0
	case resilience.HalfOpen:
		return 0.5
	default:
		return 1
	}
}

// CheckAvailable is the admission gate every site operation passes
// through: the liveness flag, then the circuit breaker (consuming a
// half-open probe slot when one is due), then the fault hook. Hook
// failures count against the breaker unless the caller's context was
// already cancelled — caller aborts must not trip breakers.
func (s *Site) CheckAvailable(ctx context.Context) error {
	if !s.Alive() {
		return fmt.Errorf("%w: %s", ErrSiteDown, s.name)
	}
	if !s.breaker.Allow() {
		return fmt.Errorf("%w: %s", ErrBreakerOpen, s.name)
	}
	if h := s.faultHook(); h != nil {
		if err := h(ctx); err != nil {
			if ctx.Err() == nil {
				s.breaker.RecordFailure()
			}
			return fmt.Errorf("%w: %s: %w", ErrSiteFailure, s.name, err)
		}
	}
	return nil
}

// Served reports how many subqueries the site has executed — the load
// distribution metric for the balancing experiments.
func (s *Site) Served() int64 { return s.served.Load() }

// BusyTime reports cumulative simulated execution time.
func (s *Site) BusyTime() time.Duration { return time.Duration(s.busyNS.Load()) }

// ResetCounters clears the served/busy counters between experiment runs.
func (s *Site) ResetCounters() {
	s.served.Store(0)
	s.busyNS.Store(0)
}

// Load returns the number of subqueries currently executing at the site.
func (s *Site) Load() int64 { return s.inFlight.Load() }

// SubQuery executes a single-table selection at the site:
// SELECT <cols> FROM table WHERE <where>, with where referencing only
// bare column names. cols nil means all columns. It is the unit of work
// the federated executor ships to sites.
func (s *Site) SubQuery(ctx context.Context, table string, where sqlparse.Expr, cols []string) (*exec.Result, error) {
	if err := s.CheckAvailable(ctx); err != nil {
		return nil, err
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.served.Add(1)

	ctx, sp := obs.StartSpan(ctx, "site.subquery")
	sp.Set("site", s.name)
	sp.Set("table", table)
	start := time.Now()

	var res *exec.Result
	var err error
	if src := s.source(table); src != nil {
		res, err = s.querySource(ctx, src, where, cols)
	} else {
		res, err = s.queryStored(table, where, cols)
	}
	if err == nil {
		err = s.simulateCost(ctx, len(res.Rows))
	}
	s.ObserveLatency(time.Since(start))
	if err != nil {
		// Only transient site failures move the breaker; semantic errors
		// (unknown table, bad filter) and caller cancellations do not.
		if errors.Is(err, ErrSiteFailure) && ctx.Err() == nil {
			s.breaker.RecordFailure()
		}
		sp.SetErr(err)
		sp.End()
		return nil, err
	}
	s.breaker.RecordSuccess()
	sp.Set("rows", strconv.Itoa(len(res.Rows)))
	sp.End()
	return res, nil
}

// ObserveLatency records one observed subquery latency for the site —
// called after every SubQuery, and exported so external monitors can
// feed replayed or synthetic measurements into the same histograms the
// agoric bid prior consumes.
func (s *Site) ObserveLatency(d time.Duration) {
	s.latShared.Observe(d)
	s.latLocal.Observe(d)
}

// ObservedLatency returns the site's observed p50 subquery latency and
// the number of samples behind it. The agoric optimizer uses it as a
// bid-latency prior once enough samples accumulate.
func (s *Site) ObservedLatency() (p50 time.Duration, samples int64) {
	return s.latLocal.Quantile(0.5), s.latLocal.Count()
}

func (s *Site) source(table string) wrapper.Source {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sources[lower(table)]
}

func (s *Site) queryStored(table string, where sqlparse.Expr, cols []string) (*exec.Result, error) {
	items := []sqlparse.SelectItem{{Expr: sqlparse.Star{}}}
	if cols != nil {
		items = items[:0]
		for _, c := range cols {
			items = append(items, sqlparse.SelectItem{Expr: sqlparse.ColumnRef{Column: c}, Alias: c})
		}
	}
	stmt := sqlparse.SelectStmt{
		Items: items,
		From:  sqlparse.TableRef{Name: table},
		Where: where,
		Limit: -1,
	}
	return s.db.Select(stmt)
}

// querySource serves a subquery from a wrapper source: equality conjuncts
// the source advertises are pushed to the remote; everything else is
// post-filtered here at the site.
func (s *Site) querySource(ctx context.Context, src wrapper.Source, where sqlparse.Expr, cols []string) (*exec.Result, error) {
	def := src.Schema()
	caps := src.Capabilities()
	var filters []wrapper.Filter
	for _, c := range plan.Conjuncts(where) {
		r, ok := plan.Sargable(c)
		if !ok || r.Lo.IsNull() || !r.Lo.Equal(r.Hi) || r.LoExclusive || r.HiExclusive {
			continue
		}
		if caps.CanPush(r.Column) {
			filters = append(filters, wrapper.Filter{Column: r.Column, Value: r.Lo})
		}
	}
	rows, err := src.Fetch(ctx, filters)
	if err != nil {
		return nil, fmt.Errorf("%w: source %s: %w", ErrSiteFailure, src.Name(), err)
	}
	names := def.ColumnNames()
	ev := &plan.Evaluator{}
	outCols := names
	var colIdx []int
	if cols != nil {
		outCols = cols
		for _, c := range cols {
			ci := def.ColumnIndex(c)
			if ci < 0 {
				return nil, fmt.Errorf("federation: source %s has no column %q", src.Name(), c)
			}
			colIdx = append(colIdx, ci)
		}
	}
	res := &exec.Result{Columns: outCols}
	for _, r := range rows {
		if where != nil {
			v, err := ev.Eval(where, plan.NewRowEnv(names, r))
			if err != nil {
				return nil, fmt.Errorf("federation: source %s filter: %w", src.Name(), err)
			}
			if !v.Truthy() {
				continue
			}
		}
		if colIdx != nil {
			pr := make(storage.Row, len(colIdx))
			for i, ci := range colIdx {
				pr[i] = r[ci]
			}
			res.Rows = append(res.Rows, pr)
		} else {
			res.Rows = append(res.Rows, r)
		}
	}
	return res, nil
}

// simulateCost charges the cost model for a subquery producing n rows.
func (s *Site) simulateCost(ctx context.Context, n int) error {
	c := s.Cost()
	if c.Latency == 0 && c.PerRow == 0 {
		return nil
	}
	d := c.Latency + time.Duration(n)*c.PerRow
	if c.LoadPenalty > 0 {
		concurrent := float64(s.inFlight.Load() - 1)
		if concurrent > 0 {
			d = time.Duration(float64(d) * (1 + c.LoadPenalty*concurrent))
		}
	}
	s.busyNS.Add(int64(d))
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// EstimateCost predicts the cost of a subquery producing estRows rows at
// the site's *current* load — the quantity a bidder prices.
func (s *Site) EstimateCost(estRows int) time.Duration {
	c := s.Cost()
	d := c.Latency + time.Duration(estRows)*c.PerRow
	if d == 0 {
		d = time.Microsecond // break ties deterministically by site order
	}
	if c.LoadPenalty > 0 {
		if concurrent := float64(s.inFlight.Load()); concurrent > 0 {
			d = time.Duration(float64(d) * (1 + c.LoadPenalty*concurrent))
		}
	}
	return d
}

// TableRows reports the local cardinality of a stored table (0 for
// sources, which do not advertise cardinality).
func (s *Site) TableRows(table string) int {
	if t, err := s.db.Table(table); err == nil {
		return t.Len()
	}
	return 0
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
