// Package admission bounds the federation's concurrent work so heavy
// traffic degrades gracefully instead of melting the coordinator.
//
// Three mechanisms compose, checked in order on every Admit:
//
//  1. Per-tenant token buckets — a hot tenant is rate-limited before it
//     can touch shared capacity, so it cannot starve the rest.
//  2. Tenant budgets — each tenant accrues coordinator-seconds per
//     wall-clock second; when the system is congested, tenants that
//     have overspent are shed first (the agoric view: they are out of
//     currency at exactly the moment prices spike). When the system is
//     idle the budget is not enforced, keeping admission
//     work-conserving.
//  3. A bounded global queue in front of a fixed in-flight window —
//     the only place work waits. The queue is FIFO, depth-bounded, and
//     wait-bounded; anything beyond it is shed immediately with a
//     typed ErrOverloaded carrying a Retry-After hint.
//
// Shedding is always loud and typed: callers (and remote peers, via
// HTTP 429) can distinguish "the system chose not to run this" from
// "the system tried and failed", and retry policies must never blindly
// retry it — retrying into an overload is how collapses happen.
package admission

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"cohera/internal/obs"
)

// ErrOverloaded is the sentinel all admission sheds unwrap to. Check
// with errors.Is; use AsOverload / RetryAfter for the structured hint.
var ErrOverloaded = errors.New("admission: overloaded")

// OverloadError is a typed shed: which tenant was refused, why, and
// how long the caller should back off before trying again.
type OverloadError struct {
	// Tenant is the tenant whose request was shed.
	Tenant string
	// Reason is the shed cause: "tenant-rate", "budget", "queue-full",
	// "queue-timeout", or "closed".
	Reason string
	// RetryAfter is the suggested backoff before retrying. Always > 0.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("admission: overloaded (tenant %s, %s, retry after %v)", e.Tenant, e.Reason, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) hold for every shed.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// AsOverload extracts the typed shed from an error chain.
func AsOverload(err error) (*OverloadError, bool) {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe, true
	}
	return nil, false
}

// RetryAfter reports the backoff hint carried by a shed error, if any.
func RetryAfter(err error) (time.Duration, bool) {
	if oe, ok := AsOverload(err); ok && oe.RetryAfter > 0 {
		return oe.RetryAfter, true
	}
	return 0, false
}

// DefaultTenant is the tenant ascribed to requests whose context
// carries no explicit tenant.
const DefaultTenant = "default"

type tenantKey struct{}

// WithTenant tags a context with the tenant on whose behalf the
// request runs. Empty tenant leaves the context unchanged.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantOf reports the context's tenant, DefaultTenant if untagged.
func TenantOf(ctx context.Context) string {
	if t, ok := ctx.Value(tenantKey{}).(string); ok && t != "" {
		return t
	}
	return DefaultTenant
}

// Config sizes a Controller. The zero value of each field falls back
// to the default documented on it.
type Config struct {
	// MaxInFlight is the number of requests executing concurrently
	// (default 64). This is the serving window; everything else queues.
	MaxInFlight int
	// QueueDepth bounds how many admitted-rate requests may wait for a
	// slot (default 2×MaxInFlight). Beyond it, requests shed instantly.
	QueueDepth int
	// QueueTimeout bounds how long a queued request waits before it is
	// shed (default 1s). A bounded wait keeps queue time out of the
	// tail instead of converting overload into unbounded latency.
	QueueTimeout time.Duration
	// TenantRate is each tenant's sustained admission rate in requests
	// per second. 0 disables per-tenant rate limiting.
	TenantRate float64
	// TenantBurst is each tenant's bucket capacity (default
	// max(TenantRate, 1)).
	TenantBurst float64
	// TenantBudget is each tenant's accrual of coordinator service
	// seconds per wall-clock second. 0 disables budget shedding.
	// Budgets only bite under congestion — an over-budget tenant on an
	// idle system still runs (work conservation).
	TenantBudget float64
	// Clock supplies the current time; nil means time.Now. Injected by
	// tests and the chaos harness for deterministic refill timing.
	Clock func() time.Time
}

// tenantState is one tenant's token bucket and budget account.
type tenantState struct {
	tokens     float64   // admission tokens, ≤ burst
	tokensAt   time.Time // last refill
	budget     float64   // coordinator-seconds remaining, ≤ budget cap
	budgetAt   time.Time // last accrual
	shedStreak int       // consecutive sheds, drives Retry-After growth
}

// waiter is one queued request. state moves 0 (waiting) → 1 (granted,
// by the dispatcher) or 0 → 2 (abandoned, by the requester on timeout
// or cancel); the CAS loser follows the winner's decision, so a slot
// is never granted to nobody and never leaks.
type waiter struct {
	tenant string
	ready  chan struct{} // closed by the dispatcher on grant
	state  atomic.Int32
}

const (
	waiting   = 0
	granted   = 1
	abandoned = 2
)

// Controller is the admission gate. Create with New; Close releases
// its dispatcher. A nil *Controller admits everything (gate disabled).
type Controller struct {
	cfg Config
	now func() time.Time

	reqs  chan *waiter  // arrival handoff to the dispatcher's FIFO
	freed chan struct{} // slot returns, buffered MaxInFlight deep
	stop  chan struct{}
	done  chan struct{} // dispatcher exit, joined by Close

	stopOnce sync.Once

	queuedN   atomic.Int64
	inflightN atomic.Int64
	ewmaNanos atomic.Int64 // EWMA of admitted service time

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// New builds a Controller and starts its dispatcher goroutine
// (stopped by Close).
func New(cfg Config) *Controller {
	c := &Controller{
		cfg:     cfg,
		now:     cfg.Clock,
		tenants: make(map[string]*tenantState),
	}
	if c.now == nil {
		c.now = time.Now
	}
	c.reqs = make(chan *waiter, c.queueDepth())
	c.freed = make(chan struct{}, c.maxInFlight())
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.dispatch()
	return c
}

func (c *Controller) maxInFlight() int {
	if c.cfg.MaxInFlight > 0 {
		return c.cfg.MaxInFlight
	}
	return 64
}

func (c *Controller) queueDepth() int {
	if c.cfg.QueueDepth > 0 {
		return c.cfg.QueueDepth
	}
	return 2 * c.maxInFlight()
}

func (c *Controller) queueTimeout() time.Duration {
	if c.cfg.QueueTimeout > 0 {
		return c.cfg.QueueTimeout
	}
	return time.Second
}

func (c *Controller) burst() float64 {
	if c.cfg.TenantBurst > 0 {
		return c.cfg.TenantBurst
	}
	return math.Max(c.cfg.TenantRate, 1)
}

// Close stops the dispatcher and waits for it to exit. Outstanding
// slots may still be released afterwards (freed is buffered); new
// Admit calls on a closed controller shed rather than hang.
func (c *Controller) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// dispatch is the queue worker: it drains arrivals into a local FIFO
// and grants slots strictly in arrival order while the in-flight
// window has room. It is the only goroutine that closes ready
// channels, so a grant is a single happens-before edge to exactly one
// waiter. Abandoned waiters (timeout/cancel) lose the state CAS and
// are dropped at the head without consuming a slot; the FIFO's length
// is bounded by the queue-depth gate in Admit plus those stragglers.
func (c *Controller) dispatch() {
	defer close(c.done)
	var fifo []*waiter
	inflight := 0
	for {
		for inflight < c.maxInFlight() && len(fifo) > 0 {
			w := fifo[0]
			fifo[0] = nil
			fifo = fifo[1:]
			if w.state.CompareAndSwap(waiting, granted) {
				inflight++
				c.inflightN.Add(1)
				close(w.ready)
			}
		}
		if len(fifo) == 0 {
			fifo = nil // let the drained backing array go
		}
		select {
		case w := <-c.reqs:
			fifo = append(fifo, w)
		case <-c.freed:
			// The shared gauge was already decremented by releaseSlot;
			// only the dispatcher's local window count catches up here.
			inflight--
		case <-c.stop:
			return
		}
	}
}

// Admit asks to run one request for the context's tenant. On success
// it returns an idempotent release that must be called when the
// request's coordinator work ends (for streams: when the stream
// settles, see TrackedStream). On overload it returns a typed
// *OverloadError unwrapping to ErrOverloaded; on caller cancellation
// it returns the context's error.
//
// A nil Controller admits everything with a no-op release.
func (c *Controller) Admit(ctx context.Context) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	tenant := TenantOf(ctx)
	select {
	case <-c.stop:
		// Closed controller: shed immediately instead of enqueueing into
		// a buffer no dispatcher will ever drain.
		return nil, c.shed(tenant, "closed", 0)
	default:
	}
	if wait, ok := c.takeToken(tenant); !ok {
		return nil, c.shed(tenant, "tenant-rate", wait)
	}
	if c.cfg.TenantBudget > 0 && c.saturated() && !c.budgetOK(tenant) {
		c.refundToken(tenant)
		return nil, c.shed(tenant, "budget", 0)
	}
	if c.queuedN.Add(1) > int64(c.queueDepth()) {
		c.queuedN.Add(-1)
		c.refundToken(tenant)
		return nil, c.shed(tenant, "queue-full", 0)
	}
	metQueueDepth().Set(c.queuedN.Load())
	w := &waiter{tenant: tenant, ready: make(chan struct{})}
	select {
	case c.reqs <- w:
	case <-c.stop:
		c.queuedN.Add(-1)
		metQueueDepth().Set(c.queuedN.Load())
		c.refundToken(tenant)
		return nil, c.shed(tenant, "closed", 0)
	}
	enq := c.now()
	timer := time.NewTimer(c.queueTimeout())
	defer timer.Stop()
	select {
	case <-w.ready:
	case <-c.stop:
		// Close raced the enqueue: the waiter may sit in a dead buffer
		// nobody will drain. Abandon it — unless a last-instant grant
		// already landed, in which case fall through and use the slot.
		if w.state.CompareAndSwap(waiting, abandoned) {
			c.queuedN.Add(-1)
			metQueueDepth().Set(c.queuedN.Load())
			c.refundToken(tenant)
			return nil, c.shed(tenant, "closed", 0)
		}
		<-w.ready
	case <-timer.C:
		if w.state.CompareAndSwap(waiting, abandoned) {
			c.queuedN.Add(-1)
			metQueueDepth().Set(c.queuedN.Load())
			c.refundToken(tenant)
			return nil, c.shed(tenant, "queue-timeout", 0)
		}
		// Granted in the same instant the timer fired: the slot is
		// ours, use it rather than wasting the grant.
		<-w.ready
	case <-ctx.Done():
		if w.state.CompareAndSwap(waiting, abandoned) {
			c.queuedN.Add(-1)
			metQueueDepth().Set(c.queuedN.Load())
			c.refundToken(tenant)
			return nil, ctx.Err()
		}
		// Granted concurrently but the caller is gone: settle the queue
		// count the grant moved us out of, then hand the slot straight
		// back so neither it nor the tenant's token is leaked.
		<-w.ready
		c.queuedN.Add(-1)
		metQueueDepth().Set(c.queuedN.Load())
		c.refundToken(tenant)
		c.releaseSlot(tenant, 0)
		return nil, ctx.Err()
	}
	c.queuedN.Add(-1)
	metQueueDepth().Set(c.queuedN.Load())
	metQueueWait().Observe(c.now().Sub(enq))
	metAdmitted(tenant).Inc()
	metInflight().Set(c.inflightN.Load())
	c.noteAdmitted(tenant)
	start := c.now()
	var once sync.Once
	return func() {
		once.Do(func() { c.releaseSlot(tenant, c.now().Sub(start)) })
	}, nil
}

// releaseSlot returns a slot to the dispatcher and settles the
// tenant's account with the actual service time consumed.
func (c *Controller) releaseSlot(tenant string, elapsed time.Duration) {
	if elapsed > 0 {
		c.chargeBudget(tenant, elapsed)
		c.observeService(elapsed)
	}
	// Decrement the shared count here, not in the dispatcher, so
	// InFlight and saturated() see the release the moment it returns;
	// the dispatcher's own window count follows via freed.
	c.inflightN.Add(-1)
	// freed is buffered as deep as the in-flight window, so with at
	// most MaxInFlight slots outstanding this send cannot block even
	// after Close stops the dispatcher.
	//lint:ignore atomicmix freed's buffer is as deep as the in-flight window; a release can never outnumber outstanding grants
	c.freed <- struct{}{}
	metInflight().Set(c.inflightN.Load())
}

// takeToken refills and debits the tenant's bucket. On refusal it
// returns how long until one token accrues.
func (c *Controller) takeToken(tenant string) (time.Duration, bool) {
	rate := c.cfg.TenantRate
	if rate <= 0 {
		return 0, true
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.tenantLocked(tenant, now)
	ts.tokens = math.Min(c.burst(), ts.tokens+now.Sub(ts.tokensAt).Seconds()*rate)
	ts.tokensAt = now
	if ts.tokens >= 1 {
		ts.tokens--
		return 0, true
	}
	return time.Duration((1 - ts.tokens) / rate * float64(time.Second)), false
}

// refundToken returns one admission token to the tenant's bucket when
// a request that debited it was shed or canceled without running, so
// tokens pay for admitted work rather than for being refused.
func (c *Controller) refundToken(tenant string) {
	if c.cfg.TenantRate <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.tenantLocked(tenant, c.now())
	ts.tokens = math.Min(c.burst(), ts.tokens+1)
}

// budgetOK accrues and checks the tenant's budget without spending it;
// spending happens at release with the measured service time.
func (c *Controller) budgetOK(tenant string) bool {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.tenantLocked(tenant, now)
	ceiling := math.Max(c.cfg.TenantBudget, 1)
	ts.budget = math.Min(ceiling, ts.budget+now.Sub(ts.budgetAt).Seconds()*c.cfg.TenantBudget)
	ts.budgetAt = now
	return ts.budget > 0
}

// chargeBudget debits consumed coordinator time from the tenant.
func (c *Controller) chargeBudget(tenant string, elapsed time.Duration) {
	if c.cfg.TenantBudget <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.tenantLocked(tenant, c.now())
	ts.budget -= elapsed.Seconds()
	metBudget(tenant).Set(int64(ts.budget * 1000))
}

// tenantLocked returns the tenant's account, creating a full bucket
// and a full budget on first sight. Callers hold c.mu.
func (c *Controller) tenantLocked(name string, now time.Time) *tenantState {
	ts := c.tenants[name]
	if ts == nil {
		ts = &tenantState{
			tokens:   c.burst(),
			tokensAt: now,
			budget:   math.Max(c.cfg.TenantBudget, 1),
			budgetAt: now,
		}
		c.tenants[name] = ts
	}
	return ts
}

// noteAdmitted resets the tenant's shed streak.
func (c *Controller) noteAdmitted(tenant string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tenantLocked(tenant, c.now()).shedStreak = 0
}

// observeService folds one admitted request's service time into the
// EWMA used for Retry-After hints.
func (c *Controller) observeService(elapsed time.Duration) {
	const alpha = 0.2
	for {
		old := c.ewmaNanos.Load()
		next := int64(float64(old)*(1-alpha) + float64(elapsed)*alpha)
		if old == 0 {
			next = int64(elapsed)
		}
		if c.ewmaNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// saturated reports whether the in-flight window is full — the point
// past which new work waits, and budget enforcement switches on.
func (c *Controller) saturated() bool {
	return int(c.inflightN.Load()) >= c.maxInFlight()
}

// Congestion reports queue pressure in [0,1]: 0 when no request is
// waiting, 1 when the admission queue is full. The agoric optimizer
// multiplies bid prices by (1 + Congestion), making overload an
// economic signal sites can price.
func (c *Controller) Congestion() float64 {
	if c == nil {
		return 0
	}
	q := float64(c.queuedN.Load()) / float64(c.queueDepth())
	return math.Min(1, math.Max(0, q))
}

// InFlight reports the number of currently admitted requests.
func (c *Controller) InFlight() int { return int(c.inflightN.Load()) }

// Queued reports the number of requests waiting for a slot.
func (c *Controller) Queued() int { return int(c.queuedN.Load()) }

// shed builds the typed refusal, counts it, and computes the
// Retry-After hint: the rate-limit refill time when known, otherwise
// the expected drain time of the work ahead of the caller, growing
// with the tenant's consecutive-shed streak so persistent overload
// backs clients off harder.
func (c *Controller) shed(tenant, reason string, hint time.Duration) error {
	metShed(tenant, reason).Inc()
	c.mu.Lock()
	ts := c.tenantLocked(tenant, c.now())
	ts.shedStreak++
	streak := ts.shedStreak
	c.mu.Unlock()
	if hint <= 0 {
		svc := time.Duration(c.ewmaNanos.Load())
		if svc <= 0 {
			svc = 50 * time.Millisecond
		}
		ahead := float64(c.queuedN.Load())/float64(c.maxInFlight()) + 1
		hint = time.Duration(float64(svc) * ahead)
	}
	if streak > 1 {
		hint *= time.Duration(math.Min(float64(streak), 8))
	}
	if hint < 10*time.Millisecond {
		hint = 10 * time.Millisecond
	}
	if hint > 5*time.Second {
		hint = 5 * time.Second
	}
	return &OverloadError{Tenant: tenant, Reason: reason, RetryAfter: hint}
}

func metAdmitted(tenant string) *obs.Counter {
	return obs.Default().Counter("cohera_admission_admitted_total",
		"Requests admitted past the admission gate, by tenant.",
		obs.Labels{"tenant": tenant})
}

func metShed(tenant, reason string) *obs.Counter {
	return obs.Default().Counter("cohera_admission_shed_total",
		"Requests shed by the admission gate, by tenant and reason.",
		obs.Labels{"tenant": tenant, "reason": reason})
}

func metQueueDepth() *obs.Gauge {
	return obs.Default().Gauge("cohera_admission_queue_depth",
		"Requests waiting in the admission queue.", nil)
}

func metInflight() *obs.Gauge {
	return obs.Default().Gauge("cohera_admission_inflight",
		"Requests currently admitted and executing.", nil)
}

func metBudget(tenant string) *obs.Gauge {
	return obs.Default().Gauge("cohera_admission_tenant_budget_millis",
		"Remaining tenant budget in coordinator-milliseconds (may go negative).",
		obs.Labels{"tenant": tenant})
}

func metQueueWait() *obs.Histogram {
	return obs.Default().Histogram("cohera_admission_queue_wait_seconds",
		"Time admitted requests spent waiting in the admission queue.", nil)
}
