package wrapper

import (
	"context"
	"fmt"
	"io"
	"time"

	"cohera/internal/schema"
	"cohera/internal/storage"
)

// StreamingSource is the optional streaming face of a connector. Sources
// that can produce rows incrementally implement it; everything else is
// adapted through OpenStream, so the federation programs against streams
// regardless of what a connector can do natively.
type StreamingSource interface {
	Source
	// FetchStream retrieves rows as a pull-based stream. The same filter
	// contract as Fetch applies: pushable filters cut transfer, the
	// caller may re-check. The caller must Close the stream.
	FetchStream(ctx context.Context, filters []Filter) (storage.RowStream, error)
}

// OpenStream fetches from src as a stream, using the native streaming
// path when the source has one and falling back to a materialized fetch
// wrapped as a stream otherwise.
func OpenStream(ctx context.Context, src Source, filters []Filter) (storage.RowStream, error) {
	if ss, ok := src.(StreamingSource); ok {
		return ss.FetchStream(ctx, filters)
	}
	rows, err := src.Fetch(ctx, filters)
	if err != nil {
		return nil, err
	}
	return storage.NewSliceStream(ColumnNames(src.Schema()), rows), nil
}

// ColumnNames lists a schema's column names in declaration order — the
// Columns() value for streams carrying that schema's rows.
func ColumnNames(def *schema.Table) []string {
	out := make([]string, len(def.Columns))
	for i, c := range def.Columns {
		out[i] = c.Name
	}
	return out
}

// matchesFilters is the per-row form of applyFilters, for streaming
// paths that never hold a row slice.
func matchesFilters(def *schema.Table, r storage.Row, filters []Filter) bool {
	for _, f := range filters {
		ci := def.ColumnIndex(f.Column)
		if ci < 0 {
			continue
		}
		c, err := r[ci].Compare(f.Value)
		if err != nil || c != 0 {
			return false
		}
	}
	return true
}

// FetchStream implements StreamingSource: the gateway walks an id
// snapshot and fetches rows lazily, so a slow or LIMIT-terminated
// consumer never forces the whole table into memory. Pushed equality
// filters use the table's indexes exactly like Fetch.
func (s *ERPSource) FetchStream(ctx context.Context, filters []Filter) (storage.RowStream, error) {
	s.mu.Lock()
	s.fetches++
	latency := s.latency
	s.mu.Unlock()
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	caps := s.Capabilities()
	var pushed *Filter
	for i := range filters {
		if caps.CanPush(filters[i].Column) {
			pushed = &filters[i]
			break
		}
	}
	var ids []int64
	if pushed != nil && s.table.HasIndex(pushed.Column) {
		var err error
		ids, err = s.table.LookupEqual(pushed.Column, pushed.Value)
		if err != nil {
			return nil, fmt.Errorf("wrapper: erp %s: %w", s.name, err)
		}
	} else {
		ids = s.table.IDs()
	}
	return &tableStream{
		ctx: ctx, table: s.table, def: s.table.Def(),
		cols: ColumnNames(s.table.Def()), filters: filters, ids: ids,
	}, nil
}

// tableStream iterates a storage.Table lazily over an id snapshot,
// applying equality filters row by row.
type tableStream struct {
	ctx     context.Context
	table   *storage.Table
	def     *schema.Table
	cols    []string
	filters []Filter
	ids     []int64
	pos     int
	closed  bool
}

// Columns implements storage.RowStream.
func (s *tableStream) Columns() []string { return s.cols }

// Next implements storage.RowStream.
func (s *tableStream) Next() (storage.Row, error) {
	if s.closed {
		return nil, storage.ErrStreamClosed
	}
	for s.pos < len(s.ids) {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
		id := s.ids[s.pos]
		s.pos++
		r, err := s.table.Get(id)
		if err != nil {
			continue // deleted since the snapshot
		}
		if !matchesFilters(s.def, r, s.filters) {
			continue
		}
		return r, nil
	}
	return nil, io.EOF
}

// Close implements storage.RowStream.
func (s *tableStream) Close() error {
	s.closed = true
	s.ids = nil
	return nil
}
