package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// moduleRoot is the repository root relative to this package's
// directory, where go test sets the working directory.
const moduleRoot = "../.."

// fixturePkg loads testdata/src/<name> through a fresh loader, the same
// code path cmd/coheralint uses on the real tree.
func fixturePkg(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// wantRE extracts the backquoted messages of a "// want" comment.
// Backquotes delimit because the diagnostics themselves contain double
// quotes (%q-rendered field names).
var wantRE = regexp.MustCompile("`([^`]*)`")

// wantsOf parses the fixture's `// want` comments into the same
// "file:line: message" strings diagnostics render to. A want comment
// sits on the line the diagnostic is expected at.
func wantsOf(t *testing.T, pkg *Package) []string {
	t.Helper()
	var out []string
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: want comment without a backquoted message",
						filepath.Base(pos.Filename), pos.Line)
				}
				for _, m := range ms {
					out = append(out, fmt.Sprintf("%s:%d: %s",
						filepath.Base(pos.Filename), pos.Line, m[1]))
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// diagStrings renders diagnostics to the comparable "file:line: message"
// form (column dropped: want comments anchor to lines).
func diagStrings(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s:%d: %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message))
	}
	sort.Strings(out)
	return out
}

func diffStrings(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) == len(want) {
		same := true
		for i := range got {
			if got[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	t.Errorf("diagnostics mismatch:\n  got:\n    %s\n  want:\n    %s",
		strings.Join(got, "\n    "), strings.Join(want, "\n    "))
}

// TestFixtures runs each analyzer over its golden fixture package and
// asserts the exact file:line: message set — positives must fire,
// negatives must stay silent, and //lint:ignore directives inside the
// fixtures must suppress exactly their own analyzer.
func TestFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			pkg := fixturePkg(t, a.Name)
			got := diagStrings(Run([]*Package{pkg}, []Configured{{Analyzer: a}}))
			want := wantsOf(t, pkg)
			if len(want) < 2 {
				t.Fatalf("fixture declares %d positive cases; every analyzer needs at least 2", len(want))
			}
			diffStrings(t, got, want)
		})
	}
}

// TestMalformedIgnoreDirective asserts a reason-less //lint:ignore is
// reported under the reserved "lintdir" name and suppresses nothing.
func TestMalformedIgnoreDirective(t *testing.T) {
	pkg := fixturePkg(t, "lintdir")
	got := diagStrings(Run([]*Package{pkg}, []Configured{{Analyzer: ErrDrop}}))
	want := []string{
		`lintdir.go:8: malformed //lint:ignore directive: need "//lint:ignore <analyzer> <reason>"`,
		`lintdir.go:9: error result of covered discarded with _`,
	}
	diffStrings(t, got, want)
}

// TestConfiguredScopes pins the scope-matching contract DefaultSuite
// relies on: substring of the import path, empty means everywhere.
func TestConfiguredScopes(t *testing.T) {
	c := Configured{Analyzer: ErrDrop, Scopes: []string{"internal/wrapper", "internal/remote"}}
	for path, want := range map[string]bool{
		"cohera/internal/wrapper": true,
		"cohera/internal/remote":  true,
		"cohera/internal/plan":    false,
		"cohera/cmd/coheraql":     false,
	} {
		if got := c.applies(path); got != want {
			t.Errorf("applies(%q) = %v, want %v", path, got, want)
		}
	}
	all := Configured{Analyzer: ErrDrop}
	if !all.applies("anything/at/all") {
		t.Error("empty scopes must apply everywhere")
	}
}
