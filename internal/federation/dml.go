package federation

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"cohera/internal/admission"
	"cohera/internal/exec"
	"cohera/internal/journal"
	"cohera/internal/obs"
	"cohera/internal/plan"
	"cohera/internal/schema"
	"cohera/internal/sqlparse"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// metDML returns the per-kind DML statement counter.
func metDML(kind string) *obs.Counter {
	return obs.Default().Counter("cohera_federation_dml_total",
		"Federated DML statements executed, by kind.", obs.Labels{"kind": kind})
}

var metDMLRows = obs.Default().Counter("cohera_federation_dml_rows_total",
	"Rows affected by federated DML (per fragment, not per replica).", nil)

// This file implements federated DML. The paper's integrator is
// read-mostly, but operational content changes (orders, availability
// updates) flow back through the same global schema:
//
//   - INSERT routes each row to the fragment whose predicate accepts it
//     (the first fragment when none match) and writes every replica, so
//     replicas stay in sync;
//   - UPDATE and DELETE broadcast to all fragments that are not provably
//     disjoint with the statement's predicate; every replica executes the
//     statement so copies converge.
//
// Writes are best-effort across replicas, but no longer fire-and-forget:
// a replica the statement cannot reach (down, breaker-open, transient
// fault) gets a write intent journaled under its (site, table) group,
// and the Reconciler replays the backlog once the replica recovers. A
// statement only fails when a targeted fragment has no replica that
// either applied the write or accepted it into a journal behind a
// reachable backlog — and then the statement's intents are abandoned so
// a later replay cannot resurrect a write the caller saw fail.

// ErrReplicaDiverged marks a replica whose affected-row count for a
// statement disagreed with its peers — the copies no longer hold the
// same content. Inspect with errors.Is; the Reconciler's digest
// comparison is the authoritative detector and repairs the divergence.
var ErrReplicaDiverged = errors.New("federation: replica diverged")

// ReplicaDivergence describes one replica's disagreement: it reported
// Rows affected where the fragment's first-reporting replica said
// WantRows.
type ReplicaDivergence struct {
	Table    string
	Fragment string
	Site     string
	Rows     int
	WantRows int
}

// String renders the legacy display marker, e.g. "f1@west-2(diverged:0!=3)".
func (d ReplicaDivergence) String() string {
	return fmt.Sprintf("%s@%s(diverged:%d!=%d)", d.Fragment, d.Site, d.Rows, d.WantRows)
}

// Err returns the divergence as an error wrapping ErrReplicaDiverged.
func (d ReplicaDivergence) Err() error {
	return fmt.Errorf("%w: fragment %s of %s at %s: %d rows affected, want %d",
		ErrReplicaDiverged, d.Fragment, d.Table, d.Site, d.Rows, d.WantRows)
}

// DMLResult reports a federated write.
type DMLResult struct {
	// Rows is the affected-row count (per fragment, not multiplied by
	// replication factor). Counts are attributed per fragment: a site
	// hosting exactly one fragment of the table reports exactly; at a
	// site hosting several, predicated fragments are counted by
	// pre-statement predicate census and a predicate-less fragment gets
	// the clamped residual (see execWhereDML for the residual
	// ambiguity that leaves).
	Rows int
	// SkippedReplicas lists "fragment@site" copies that were
	// unavailable and missed the write; each has a journaled intent
	// awaiting replay. Divergence display markers
	// ("frag@site(diverged:n!=m)") are also kept here for backward
	// compatibility — Diverged carries them typed.
	SkippedReplicas []string
	// QueuedReplicas lists "fragment@site" copies that were reachable
	// but had a journaled backlog, so the write was queued behind it
	// (ordering) rather than applied inline. Queued writes count as
	// accepted.
	QueuedReplicas []string
	// Diverged lists replicas whose attributed affected-row count
	// disagreed with the fragment's first reporter.
	Diverged []ReplicaDivergence
}

// Exec runs a DML or SELECT statement against the federation. SELECTs
// behave like Query; INSERT/UPDATE/DELETE are routed as described above.
func (f *Federation) Exec(ctx context.Context, sql string) (*exec.Result, *DMLResult, error) {
	res, dr, _, err := f.ExecTraced(ctx, sql)
	return res, dr, err
}

// ExecTraced is Exec returning the routing trace. For DML the trace
// records, per fragment, the comma-joined replicas actually written
// (FragmentSites), unavailable replicas encountered (Failovers) and
// fragments skipped as provably disjoint from the statement predicate
// (PrunedFragments) — the same visibility QueryTraced gives selects.
func (f *Federation) ExecTraced(ctx context.Context, sql string) (*exec.Result, *DMLResult, *QueryTrace, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, nil, err
	}
	switch s := stmt.(type) {
	case sqlparse.SelectStmt, sqlparse.UnionStmt, sqlparse.ExplainStmt:
		res, trace, err := f.QueryTraced(ctx, sql)
		return res, nil, trace, err
	case sqlparse.InsertStmt:
		dr, trace, err := f.tracedDML(ctx, "insert", s.Table, sql, func(ctx context.Context, trace *QueryTrace) (*DMLResult, error) {
			return f.execInsert(ctx, s, trace)
		})
		return nil, dr, trace, err
	case sqlparse.UpdateStmt:
		dr, trace, err := f.tracedDML(ctx, "update", s.Table, sql, func(ctx context.Context, trace *QueryTrace) (*DMLResult, error) {
			return f.execWhereDML(ctx, s.Table, s.Where, s.String(), trace)
		})
		return nil, dr, trace, err
	case sqlparse.DeleteStmt:
		dr, trace, err := f.tracedDML(ctx, "delete", s.Table, sql, func(ctx context.Context, trace *QueryTrace) (*DMLResult, error) {
			return f.execWhereDML(ctx, s.Table, s.Where, s.String(), trace)
		})
		return nil, dr, trace, err
	default:
		return nil, nil, nil, fmt.Errorf("federation: unsupported statement %T", stmt)
	}
}

// tracedDML wraps one DML execution in a span, a fresh trace, and an
// in-flight registry entry so searched writes show up (and are
// killable) in /debug/queries like selects.
func (f *Federation) tracedDML(ctx context.Context, kind, table, sql string,
	run func(context.Context, *QueryTrace) (*DMLResult, error)) (*DMLResult, *QueryTrace, error) {
	ctx, release, err := f.admit(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	ctx, sp := obs.StartSpan(ctx, "federation."+kind)
	sp.Set("table", table)
	if f.gate != nil {
		sp.Set("tenant", admission.TenantOf(ctx))
	}
	defer sp.End()
	ctx, aq := f.registerQuery(ctx, kind, sql)
	defer aq.Finish()
	aq.SetTraceID(sp.TraceID)
	trace := &QueryTrace{TraceID: sp.TraceID, FragmentSites: make(map[string]string)}
	dr, err := run(ctx, trace)
	metDML(kind).Inc()
	if dr != nil {
		metDMLRows.Add(int64(dr.Rows))
	}
	sp.SetErr(err)
	return dr, trace, err
}

// noteDMLSite appends a written replica to the fragment's site list.
func noteDMLSite(trace *QueryTrace, key, site string) {
	if trace == nil {
		return
	}
	cur := trace.FragmentSites[key]
	for _, s := range strings.Split(cur, ",") {
		if s == site {
			return
		}
	}
	if cur == "" {
		trace.FragmentSites[key] = site
	} else {
		trace.FragmentSites[key] = cur + "," + site
	}
}

// deferOn reports whether a replica-write error is worth journaling an
// intent for: availability-class faults with a live statement context.
// Semantic failures and caller cancellation must fail, not defer.
func deferOn(ctx context.Context) func(error) bool {
	return func(err error) bool {
		return isAvailabilityErr(err) && ctx.Err() == nil
	}
}

// execInsert routes INSERT rows to fragments by predicate.
func (f *Federation) execInsert(ctx context.Context, s sqlparse.InsertStmt, trace *QueryTrace) (*DMLResult, error) {
	gt, err := f.Table(s.Table)
	if err != nil {
		return nil, err
	}
	def := gt.Def
	cols := s.Columns
	if len(cols) == 0 {
		cols = def.ColumnNames()
	}
	ev := &plan.Evaluator{}
	emptyEnv := plan.NewRowEnv(nil, nil)
	dr := &DMLResult{}
	for _, exprRow := range s.Rows {
		if err := ctx.Err(); err != nil {
			return dr, err
		}
		if len(exprRow) != len(cols) {
			return dr, fmt.Errorf("federation: INSERT arity mismatch")
		}
		row := make(storage.Row, len(def.Columns))
		for i := range row {
			row[i] = value.Null
		}
		for i, cn := range cols {
			ci := def.ColumnIndex(cn)
			if ci < 0 {
				return dr, fmt.Errorf("federation: table %q has no column %q", def.Name, cn)
			}
			v, err := ev.Eval(exprRow[i], emptyEnv)
			if err != nil {
				return dr, err
			}
			if !v.IsNull() && v.Kind() != def.Columns[ci].Kind {
				if cv, err := value.Coerce(v, def.Columns[ci].Kind); err == nil {
					v = cv
				}
			}
			row[ci] = v
		}
		if err := def.Validate(row); err != nil {
			return dr, err
		}
		frag, err := routeRow(f.FragmentsOf(gt), def, row, ev)
		if err != nil {
			return dr, err
		}
		// One statement ID per routed row: a multi-row INSERT's rows
		// journal and replay independently.
		stmtID := f.nextStmtID()
		accepted := 0
		var journaled []*journal.Group
		var lastUnavail error
		for _, site := range frag.Replicas() {
			grp := f.journal.Group(site.Name(), def.Name)
			it := journal.Intent{
				StmtID: stmtID, Table: def.Name, Fragment: frag.ID,
				Op: journal.OpUpsert, Row: append([]value.Value(nil), row...),
			}
			out, werr := grp.Execute(it,
				func() error { return site.CheckAvailable(ctx) },
				func() error {
					// UpsertRow is the WAL-aware path: with a log attached
					// the row is durable before the statement acknowledges.
					if err := site.DB().UpsertRow(def.Clone(def.Name), row); err != nil {
						return fmt.Errorf("federation: insert at %s: %w", site.Name(), err)
					}
					site.Breaker().RecordSuccess()
					return nil
				},
				deferOn(ctx))
			switch out {
			case journal.Applied:
				noteDMLSite(trace, def.Name+"/"+frag.ID, site.Name())
				accepted++
			case journal.Queued:
				dr.QueuedReplicas = append(dr.QueuedReplicas, frag.ID+"@"+site.Name())
				journaled = append(journaled, grp)
				accepted++
			case journal.Skipped:
				lastUnavail = werr
				dr.SkippedReplicas = append(dr.SkippedReplicas, frag.ID+"@"+site.Name())
				journaled = append(journaled, grp)
				if trace != nil {
					trace.Failovers++
				}
			default: // journal.Failed
				if cerr := ctx.Err(); cerr != nil {
					return dr, cerr
				}
				return dr, werr
			}
		}
		if accepted == 0 {
			// No replica applied or durably accepted the row: the
			// statement fails, so its intents must not linger and be
			// replayed into a write the caller saw rejected.
			if aerr := abandonAll(journaled, frag.ID, stmtID); aerr != nil {
				return dr, aerr
			}
			if lastUnavail != nil {
				return dr, fmt.Errorf("%w: fragment %s of %s: %w", ErrNoReplica, frag.ID, def.Name, lastUnavail)
			}
			return dr, fmt.Errorf("%w: fragment %s of %s", ErrNoReplica, frag.ID, def.Name)
		}
		dr.Rows++
	}
	return dr, nil
}

// abandonAll settles stmtID as abandoned in every journaled group.
func abandonAll(groups []*journal.Group, frag, stmtID string) error {
	for _, g := range groups {
		if err := g.Abandon(frag, stmtID); err != nil {
			return fmt.Errorf("federation: abandoning intent %s: %w", stmtID, err)
		}
	}
	return nil
}

// routeRow picks the fragment whose predicate accepts the row; the first
// fragment is the default home for rows no predicate claims.
func routeRow(fragments []*Fragment, def *schema.Table, row storage.Row, ev *plan.Evaluator) (*Fragment, error) {
	env := plan.NewRowEnv(def.ColumnNames(), row)
	for _, frag := range fragments {
		if frag.Predicate == nil {
			continue
		}
		v, err := ev.Eval(frag.Predicate, env)
		if err != nil {
			return nil, fmt.Errorf("federation: fragment %s predicate: %w", frag.ID, err)
		}
		if v.Truthy() {
			return frag, nil
		}
	}
	return fragments[0], nil
}

// siteWhereOutcome caches one site's single execution of a searched
// UPDATE/DELETE — a site stores one local table per global name even
// when it hosts several fragments of it, so the statement runs there
// at most once (re-running a non-idempotent SET would corrupt the
// shared table).
type siteWhereOutcome struct {
	out     journal.Outcome
	err     error
	rows    int            // local affected rows (out == Applied, !noTable)
	pre     map[string]int // per-fragment pre-statement census (multi-fragment sites)
	noTable bool           // replica never materialized the table: live no-op
	grp     *journal.Group // set when an intent was journaled (Queued/Skipped)
}

// execWhereDML broadcasts an UPDATE/DELETE to every non-disjoint
// fragment's replicas.
//
// Affected-row attribution: a site's local count covers its whole
// local table. When the site hosts exactly one fragment of the table
// that count is the fragment's count, exactly. When it hosts several,
// the statement's reach into each predicated fragment is measured by a
// pre-statement census (rows matching WHERE ∧ fragment predicate) and
// a predicate-less fragment gets the residual, clamped at zero.
// Residual ambiguity that attribution cannot remove: several
// predicate-less fragments co-hosted at one site split an arbitrary
// residual (the first gets it), and an UPDATE that rewrites a routing
// column is censused under the pre-image predicate.
func (f *Federation) execWhereDML(ctx context.Context, table string, where sqlparse.Expr, sql string, trace *QueryTrace) (*DMLResult, error) {
	gt, err := f.Table(table)
	if err != nil {
		return nil, err
	}
	push := unqualify(where)
	dr := &DMLResult{}
	all := f.FragmentsOf(gt)
	var targeted []*Fragment
	for _, frag := range all {
		if frag.Predicate != nil && push != nil && disjoint(frag.Predicate, push) {
			if trace != nil {
				trace.PrunedFragments++
			}
			continue
		}
		targeted = append(targeted, frag)
	}
	// hostCount: how many fragments of this table each site hosts at
	// all — the dedicated-site test; hostTargeted: the targeted ones,
	// for the census.
	hostCount := make(map[*Site]int)
	hostTargeted := make(map[*Site][]*Fragment)
	for _, frag := range all {
		for _, site := range frag.Replicas() {
			hostCount[site]++
		}
	}
	for _, frag := range targeted {
		for _, site := range frag.Replicas() {
			hostTargeted[site] = append(hostTargeted[site], frag)
		}
	}

	stmtID := f.nextStmtID()
	done := make(map[*Site]*siteWhereOutcome)
	type fragState struct {
		accepted int
		rows     int // first applied replica's attributed count, -1 until known
		unavail  error
	}
	states := make([]*fragState, len(targeted))

	for fi, frag := range targeted {
		st := &fragState{rows: -1}
		states[fi] = st
		if err := ctx.Err(); err != nil {
			return dr, err
		}
		for _, site := range frag.Replicas() {
			o, seen := done[site]
			if !seen {
				o = f.execWhereAtSite(ctx, site, gt.Def, frag, stmtID, sql, push, hostCount[site], hostTargeted[site])
				done[site] = o
			}
			switch o.out {
			case journal.Applied:
				st.accepted++
				if o.noTable {
					// The replica never materialized this table: a live
					// no-op (the fragment's rows cannot exist there), not
					// a divergence.
					continue
				}
				noteDMLSite(trace, gt.Def.Name+"/"+frag.ID, site.Name())
				n := attributeRows(o, frag, hostCount[site], hostTargeted[site])
				if st.rows == -1 {
					st.rows = n
				} else if st.rows != n {
					// Replicas disagree — report the divergence loudly,
					// typed and (for display compatibility) as a marker.
					d := ReplicaDivergence{
						Table: gt.Def.Name, Fragment: frag.ID, Site: site.Name(),
						Rows: n, WantRows: st.rows,
					}
					dr.Diverged = append(dr.Diverged, d)
					dr.SkippedReplicas = append(dr.SkippedReplicas, d.String())
				}
			case journal.Queued:
				st.accepted++
				dr.QueuedReplicas = append(dr.QueuedReplicas, frag.ID+"@"+site.Name())
			case journal.Skipped:
				st.unavail = o.err
				dr.SkippedReplicas = append(dr.SkippedReplicas, frag.ID+"@"+site.Name())
				if trace != nil {
					trace.Failovers++
				}
			default: // journal.Failed
				if cerr := ctx.Err(); cerr != nil {
					return dr, cerr
				}
				return dr, o.err
			}
		}
		if st.rows > 0 {
			dr.Rows += st.rows
		}
	}

	// A targeted fragment whose every replica was unavailable means the
	// write was lost, not merely degraded: abandon the statement's
	// intents at sites no accepted fragment shares (replaying a write
	// the caller saw fail would diverge the copies the other way) and
	// say so with a typed error.
	for fi, frag := range targeted {
		st := states[fi]
		if st.accepted > 0 || len(frag.Replicas()) == 0 {
			continue
		}
		for site, o := range done {
			if o.grp == nil {
				continue
			}
			keep := false
			for _, hf := range hostTargeted[site] {
				if hfState := states[indexOfFragment(targeted, hf)]; hfState != nil && hfState.accepted > 0 {
					keep = true
					break
				}
			}
			if !keep {
				if aerr := o.grp.Abandon(o.intentFragment(hostTargeted[site]), stmtID); aerr != nil {
					return dr, fmt.Errorf("federation: abandoning intent %s: %w", stmtID, aerr)
				}
			}
		}
		if st.unavail != nil {
			return dr, fmt.Errorf("%w: fragment %s of %s: write not applied: %w",
				ErrNoReplica, frag.ID, gt.Def.Name, st.unavail)
		}
		return dr, fmt.Errorf("%w: fragment %s of %s: write not applied", ErrNoReplica, frag.ID, gt.Def.Name)
	}
	return dr, nil
}

// intentFragment returns the fragment log the site's intent was
// journaled under: the first targeted fragment hosted there (the same
// choice execWhereAtSite made).
func (o *siteWhereOutcome) intentFragment(hosted []*Fragment) string {
	if len(hosted) == 0 {
		return ""
	}
	return hosted[0].ID
}

func indexOfFragment(frags []*Fragment, want *Fragment) int {
	for i, f := range frags {
		if f == want {
			return i
		}
	}
	return -1
}

// execWhereAtSite runs one site's share of a searched UPDATE/DELETE
// through the journal gate. The intent (one per site per statement) is
// journaled under the site's first targeted fragment's log; replay
// re-executes the SQL against the whole local table, which is exactly
// the direct path's effect.
func (f *Federation) execWhereAtSite(ctx context.Context, site *Site, def *schema.Table, frag *Fragment,
	stmtID, sql string, push sqlparse.Expr, hostCount int, hosted []*Fragment) *siteWhereOutcome {
	o := &siteWhereOutcome{}
	grp := f.journal.Group(site.Name(), def.Name)
	it := journal.Intent{
		StmtID: stmtID, Table: def.Name, Fragment: frag.ID,
		Op: journal.OpSQL, SQL: sql,
	}
	if len(hosted) > 0 {
		it.Fragment = hosted[0].ID
	}
	out, err := grp.Execute(it,
		func() error { return site.CheckAvailable(ctx) },
		func() error {
			// Census before the statement mutates the table: how far
			// does the WHERE reach into each predicated fragment this
			// site co-hosts? (Skipped for dedicated sites — their local
			// count is already exact.)
			if hostCount > 1 {
				o.pre = make(map[string]int)
				for _, hf := range hosted {
					if hf.Predicate == nil {
						continue
					}
					n, cerr := countMatching(site.DB(), def, push, unqualify(hf.Predicate))
					if cerr != nil {
						if errors.Is(cerr, schema.ErrNoTable) {
							break // the exec below reports noTable
						}
						return fmt.Errorf("federation: census at %s: %w", site.Name(), cerr)
					}
					o.pre[hf.ID] = n
				}
			}
			res, xerr := site.DB().Exec(sql)
			if xerr != nil {
				if errors.Is(xerr, schema.ErrNoTable) {
					o.noTable = true
					return nil
				}
				return fmt.Errorf("federation: dml at %s: %w", site.Name(), xerr)
			}
			o.rows = int(res.Rows[0][0].Int())
			site.Breaker().RecordSuccess()
			return nil
		},
		deferOn(ctx))
	o.out, o.err = out, err
	if out == journal.Queued || out == journal.Skipped {
		o.grp = grp
	}
	return o
}

// attributeRows maps a site's local affected-row count onto one
// fragment (see execWhereDML's attribution contract).
func attributeRows(o *siteWhereOutcome, frag *Fragment, hostCount int, hosted []*Fragment) int {
	if hostCount <= 1 {
		return o.rows // dedicated site: local count is the fragment count
	}
	if frag.Predicate != nil {
		return o.pre[frag.ID]
	}
	// Predicate-less fragment at a shared site: the residual after the
	// censused fragments, clamped (a census can overcount when rows
	// satisfy several fragments' predicates).
	rest := o.rows
	for _, hf := range hosted {
		if hf.Predicate != nil {
			rest -= o.pre[hf.ID]
		}
	}
	if rest < 0 {
		rest = 0
	}
	return rest
}

// countMatching counts the site's local rows satisfying both the
// statement predicate and the fragment predicate (either may be nil =
// always true). This is the pre-statement census behind per-fragment
// row attribution.
func countMatching(db *exec.Database, def *schema.Table, push, fragPred sqlparse.Expr) (int, error) {
	tbl, err := db.Table(def.Name)
	if err != nil {
		return 0, err
	}
	ev := &plan.Evaluator{}
	cols := def.ColumnNames()
	n := 0
	var evalErr error
	tbl.Scan(func(_ int64, row storage.Row) bool {
		env := plan.NewRowEnv(cols, row)
		for _, e := range []sqlparse.Expr{push, fragPred} {
			if e == nil {
				continue
			}
			v, err := ev.Eval(e, env)
			if err != nil {
				evalErr = err
				return false
			}
			if !v.Truthy() {
				return true
			}
		}
		n++
		return true
	})
	if evalErr != nil {
		return 0, evalErr
	}
	return n, nil
}
