// Package lockorder is the golden fixture for the lockorder analyzer:
// opposite-order acquisition pairs, an interprocedural self-deadlock,
// a cycle closed through a callback run under a lock, and negatives
// (consistent ordering, sequential acquisition, goroutines).
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.RWMutex
	n  int
}

// abFirst acquires A.mu then B.mu.
func abFirst(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.RLock() // want `lock-order cycle: acquiring lockorder.B.mu while holding lockorder.A.mu closes a cycle among {lockorder.A.mu, lockorder.B.mu}`
	_ = b.n
	b.mu.RUnlock()
}

// baSecond acquires the same pair in the opposite order: deadlock.
func baSecond(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock-order cycle: acquiring lockorder.A.mu while holding lockorder.B.mu closes a cycle among {lockorder.A.mu, lockorder.B.mu}`
	a.n++
	a.mu.Unlock()
}

type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// bumpLocked calls a method that re-acquires the lock it already
// holds: self-deadlock, visible only interprocedurally.
func (c *C) bumpLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // want `lock-order cycle: lockorder.C.mu acquired while already held (self-deadlock)`
}

type D struct {
	mu sync.Mutex
	n  int
}

type E struct {
	mu sync.Mutex
	n  int
}

// withD runs fn while holding D.mu — callbacks inherit the lock.
func (d *D) withD(fn func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fn()
}

func (d *D) poke() {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
}

// deUnderCallback acquires E.mu inside a withD callback: the closure
// runs under D.mu even though no Lock call is textually in scope.
func deUnderCallback(d *D, e *E) {
	d.withD(func() {
		e.mu.Lock() // want `lock-order cycle: acquiring lockorder.E.mu while holding lockorder.D.mu closes a cycle among {lockorder.D.mu, lockorder.E.mu}`
		e.n++
		e.mu.Unlock()
	})
}

// edBackwards closes the cycle: D.mu acquired (inside poke) while E.mu
// is held.
func edBackwards(d *D, e *E) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d.poke() // want `lock-order cycle: acquiring lockorder.D.mu while holding lockorder.E.mu closes a cycle among {lockorder.D.mu, lockorder.E.mu}`
}

type H struct {
	mu sync.Mutex
	n  int
}

type I struct {
	mu sync.Mutex
	n  int
}

// hiOne's half of the H/I cycle is annotated away; ihTwo's half still
// fires — directives suppress per-line, not per-cycle.
func hiOne(h *H, i *I) {
	h.mu.Lock()
	defer h.mu.Unlock()
	//lint:ignore lockorder fixture: suppression sanity check
	i.mu.Lock()
	i.n++
	i.mu.Unlock()
}

func ihTwo(h *H, i *I) {
	i.mu.Lock()
	defer i.mu.Unlock()
	h.mu.Lock() // want `lock-order cycle: acquiring lockorder.H.mu while holding lockorder.I.mu closes a cycle among {lockorder.H.mu, lockorder.I.mu}`
	h.n++
	h.mu.Unlock()
}

type F struct {
	mu sync.Mutex
	n  int
}

type G struct {
	mu sync.Mutex
	n  int
}

// fgOne and fgTwo agree on F-before-G: edges exist but no cycle, so
// nothing is reported.
func fgOne(f *F, g *G) {
	f.mu.Lock()
	defer f.mu.Unlock()
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func fgTwo(f *F, g *G) {
	f.mu.Lock()
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	f.n++
	f.mu.Unlock()
}

// sequential releases each lock before taking the next: no edge.
func sequential(a *A, b *B) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

// goSpawner's goroutine does not inherit G.mu: no G->F edge, so the
// F/G pair stays acyclic.
func goSpawner(f *F, g *G) {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		f.mu.Lock()
		f.n++
		f.mu.Unlock()
	}()
}

var (
	_ = abFirst
	_ = baSecond
	_ = deUnderCallback
	_ = edBackwards
	_ = hiOne
	_ = ihTwo
	_ = fgOne
	_ = fgTwo
	_ = sequential
	_ = goSpawner
)
