package obs

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The in-flight query registry. Every federated query (and reconciler
// repair pass) registers here for its lifetime, so an operator can
// list what the process is doing right now — query text, trace id,
// elapsed time, per-stage progress — and cancel a runaway query
// through its context. Served over HTTP as GET /debug/queries and
// POST /debug/queries/{id}/cancel by Handler.

// ErrQueryCanceled is the cancellation cause installed when a query
// is killed through the registry (the /debug/queries/{id}/cancel
// endpoint or QueryRegistry.Cancel). Streams terminated this way
// surface an error satisfying errors.Is(err, ErrQueryCanceled).
var ErrQueryCanceled = errors.New("query canceled by operator")

// ActiveQuery is one registered in-flight query. The zero of use is
// the nil pointer: every method no-ops, so nested registrations (a
// UNION branch inside an already-registered query) can hold nil.
type ActiveQuery struct {
	id    int64
	kind  string
	sql   string
	start time.Time

	reg      *QueryRegistry
	cancel   context.CancelCauseFunc
	stages   *QueryStages
	traceID  atomic.Value // string
	degraded atomic.Bool
	stale    atomic.Bool
	finished atomic.Bool
}

// ID reports the registry-assigned query id (0 for nil).
func (q *ActiveQuery) ID() int64 {
	if q == nil {
		return 0
	}
	return q.id
}

// Stages returns the query's stage collector (nil for nil).
func (q *ActiveQuery) Stages() *QueryStages {
	if q == nil {
		return nil
	}
	return q.stages
}

// SetTraceID attaches the query's trace identity, shown by
// /debug/queries so operators can jump to /debug/trace/{id}.
func (q *ActiveQuery) SetTraceID(id string) {
	if q != nil && id != "" {
		q.traceID.Store(id)
	}
}

// TraceID reports the attached trace id ("" when none).
func (q *ActiveQuery) TraceID() string {
	if q == nil {
		return ""
	}
	id, _ := q.traceID.Load().(string)
	return id
}

// Finish unregisters the query and releases its cancel cause.
// Idempotent and nil-safe; call it when the query's last stream
// closes.
func (q *ActiveQuery) Finish() {
	if q == nil || !q.finished.CompareAndSwap(false, true) {
		return
	}
	if q.reg != nil {
		q.reg.remove(q.id)
	}
	if q.cancel != nil {
		// Release the context node; the query is over, so the cause is
		// plain context.Canceled, never ErrQueryCanceled.
		q.cancel(nil)
	}
}

// Cancel kills the query: its context is canceled with
// ErrQueryCanceled as the cause. The query stays registered until its
// owner observes the cancellation and calls Finish.
func (q *ActiveQuery) Cancel() {
	if q != nil && q.cancel != nil {
		q.cancel(ErrQueryCanceled)
	}
}

type queryCtxKey struct{}

// QueryFromContext extracts the registered query (nil when absent).
func QueryFromContext(ctx context.Context) *ActiveQuery {
	q, _ := ctx.Value(queryCtxKey{}).(*ActiveQuery)
	return q
}

// MarkDegraded flags the query in ctx as running degraded (a fragment
// failed under PartialResults). No-op outside a registered query.
func MarkDegraded(ctx context.Context) {
	if q := QueryFromContext(ctx); q != nil {
		q.degraded.Store(true)
	}
}

// MarkStale flags the query in ctx as having read a replica with
// pending write-intents. No-op outside a registered query.
func MarkStale(ctx context.Context) {
	if q := QueryFromContext(ctx); q != nil {
		q.stale.Store(true)
	}
}

// StartStage opens an operator stage under the query registered in
// ctx, parented beneath the current stage. Outside a registered query
// it returns ctx unchanged and a nil stage, so instrumentation is
// free on unobserved paths.
func StartStage(ctx context.Context, name, detail string) (context.Context, *StageStats) {
	if q := QueryFromContext(ctx); q != nil {
		return q.stages.Stage(ctx, name, detail)
	}
	return ctx, nil
}

// ActiveQuerySnapshot is the /debug/queries wire form of one query.
type ActiveQuerySnapshot struct {
	ID        int64           `json:"id"`
	Kind      string          `json:"kind"`
	SQL       string          `json:"sql"`
	TraceID   string          `json:"trace_id,omitempty"`
	StartedAt time.Time       `json:"started_at"`
	ElapsedNs int64           `json:"elapsed_ns"`
	Degraded  bool            `json:"degraded,omitempty"`
	Stale     bool            `json:"stale_served,omitempty"`
	Stages    []StageSnapshot `json:"stages,omitempty"`
}

// QueryRegistry tracks in-flight queries. Safe for concurrent use.
type QueryRegistry struct {
	seq atomic.Int64

	mu      sync.Mutex
	queries map[int64]*ActiveQuery
}

// NewQueryRegistry returns an empty registry.
func NewQueryRegistry() *QueryRegistry {
	return &QueryRegistry{queries: make(map[int64]*ActiveQuery)}
}

var defaultQueries = NewQueryRegistry()

// ActiveQueries returns the process-wide registry.
func ActiveQueries() *QueryRegistry { return defaultQueries }

// Register enters a query into the registry and returns a context
// wired for cancellation (context.Cause reports ErrQueryCanceled when
// the registry killed it) and carrying the query's stage collector.
// If ctx already carries a registered query — a UNION branch, a
// nested select — Register returns ctx unchanged and a nil handle:
// stages keep collecting under the enclosing query, and the nil
// handle's Finish is a no-op so the outer registration survives.
func (r *QueryRegistry) Register(ctx context.Context, kind, sql string) (context.Context, *ActiveQuery) {
	if QueryFromContext(ctx) != nil {
		return ctx, nil
	}
	ctx, cancel := context.WithCancelCause(ctx)
	q := &ActiveQuery{
		id:     r.seq.Add(1),
		kind:   kind,
		sql:    sql,
		start:  time.Now(),
		reg:    r,
		cancel: cancel,
		stages: NewQueryStages(),
	}
	if sc, ok := FromContext(ctx); ok {
		q.traceID.Store(sc.TraceID)
	}
	r.mu.Lock()
	r.queries[q.id] = q
	r.mu.Unlock()
	return context.WithValue(ctx, queryCtxKey{}, q), q
}

func (r *QueryRegistry) remove(id int64) {
	r.mu.Lock()
	delete(r.queries, id)
	r.mu.Unlock()
}

// Cancel kills the query with the given id, reporting whether it was
// found. The cancellation cause is ErrQueryCanceled.
func (r *QueryRegistry) Cancel(id int64) bool {
	r.mu.Lock()
	q := r.queries[id]
	r.mu.Unlock()
	if q == nil {
		return false
	}
	q.Cancel()
	return true
}

// Len reports how many queries are currently in flight.
func (r *QueryRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queries)
}

// Snapshot lists in-flight queries ordered by id (registration
// order). Stage snapshots are taken outside the registry lock.
func (r *QueryRegistry) Snapshot() []ActiveQuerySnapshot {
	r.mu.Lock()
	live := make([]*ActiveQuery, 0, len(r.queries))
	for _, q := range r.queries {
		live = append(live, q)
	}
	r.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	out := make([]ActiveQuerySnapshot, len(live))
	for i, q := range live {
		out[i] = ActiveQuerySnapshot{
			ID:        q.id,
			Kind:      q.kind,
			SQL:       q.sql,
			TraceID:   q.TraceID(),
			StartedAt: q.start,
			ElapsedNs: time.Since(q.start).Nanoseconds(),
			Degraded:  q.degraded.Load(),
			Stale:     q.stale.Load(),
			Stages:    q.stages.Snapshot(),
		}
	}
	return out
}
