// Package sleepsync is a coheralint fixture for the sleepsync analyzer:
// time.Sleep used as pseudo-synchronization versus ctx-aware waits.
package sleepsync

import (
	"context"
	"time"
)

func waitABit() {
	time.Sleep(10 * time.Millisecond) // want `time.Sleep is not synchronization; select on ctx.Done()/time.After or use a sync primitive`
}

func pollLoop(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		time.Sleep(time.Millisecond) // want `time.Sleep is not synchronization; select on ctx.Done()/time.After or use a sync primitive`
	}
}

func charge(ctx context.Context, d time.Duration) error {
	select {
	case <-time.After(d): // negative: the wait observes cancellation
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

type clock struct{}

func (clock) Sleep(time.Duration) {}

func fakeClock(c clock, d time.Duration) {
	c.Sleep(d) // negative: not the time package's Sleep
}
