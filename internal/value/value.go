// Package value implements the typed value system used throughout the
// content integration engine.
//
// Content integrated from many enterprises arrives with heterogeneous
// syntax and semantics (paper, Characteristic 2): prices in different
// currencies, "two day delivery" meaning different things to different
// vendors, free-text part names next to numeric quantities. The value
// package gives every cell a dynamic type with well-defined comparison,
// arithmetic and conversion semantics so that the transformation layer can
// normalize content and the query engine can evaluate predicates uniformly.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindMoney
	KindTime
	KindDuration
)

// String returns the SQL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindMoney:
		return "MONEY"
	case KindTime:
		return "TIMESTAMP"
	case KindDuration:
		return "DURATION"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindFromName parses a SQL type name into a Kind. It accepts the common
// aliases found in supplier feeds (VARCHAR, NUMERIC, ...).
func KindFromName(name string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL":
		return KindFloat, nil
	case "TEXT", "STRING", "VARCHAR", "CHAR", "CLOB":
		return KindString, nil
	case "MONEY", "PRICE":
		return KindMoney, nil
	case "TIME", "TIMESTAMP", "DATE", "DATETIME":
		return KindTime, nil
	case "DURATION", "INTERVAL":
		return KindDuration, nil
	default:
		return KindNull, fmt.Errorf("value: unknown type name %q", name)
	}
}

// Value is a dynamically typed cell value. The zero Value is NULL.
//
// Value is a small immutable struct passed by value; rows are []Value.
type Value struct {
	kind Kind
	// n holds ints, bools (0/1), money minor units, time as UnixNano,
	// and durations in nanoseconds.
	n int64
	f float64
	s string // strings; currency code for money; duration unit tag
}

// Null is the NULL value.
var Null = Value{}

// NewBool returns a boolean Value.
func NewBool(b bool) Value {
	var n int64
	if b {
		n = 1
	}
	return Value{kind: KindBool, n: n}
}

// NewInt returns an integer Value.
func NewInt(i int64) Value { return Value{kind: KindInt, n: i} }

// NewFloat returns a floating point Value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a text Value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewMoney returns a monetary Value. amountMinor is in minor units
// (e.g. cents) and currency is an ISO-4217 style code such as "USD".
func NewMoney(amountMinor int64, currency string) Value {
	return Value{kind: KindMoney, n: amountMinor, s: strings.ToUpper(currency)}
}

// NewTime returns a timestamp Value.
func NewTime(t time.Time) Value { return Value{kind: KindTime, n: t.UnixNano()} }

// NewDuration returns a duration Value with calendar-day semantics.
// The semantics tag records what the source meant by a "day"
// (see DurationSemantics); it matters when normalizing delivery promises.
func NewDuration(d time.Duration, sem DurationSemantics) Value {
	return Value{kind: KindDuration, n: int64(d), s: string(sem)}
}

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload. It panics if v is not a boolean;
// callers must check Kind first.
func (v Value) Bool() bool {
	v.mustBe(KindBool)
	return v.n != 0
}

// Int returns the integer payload.
func (v Value) Int() int64 {
	v.mustBe(KindInt)
	return v.n
}

// Float returns the float payload. Integers are widened.
func (v Value) Float() float64 {
	if v.kind == KindInt {
		return float64(v.n)
	}
	v.mustBe(KindFloat)
	return v.f
}

// Str returns the string payload.
func (v Value) Str() string {
	v.mustBe(KindString)
	return v.s
}

// Money returns the monetary payload in minor units and its currency code.
func (v Value) Money() (amountMinor int64, currency string) {
	v.mustBe(KindMoney)
	return v.n, v.s
}

// Time returns the timestamp payload.
func (v Value) Time() time.Time {
	v.mustBe(KindTime)
	return time.Unix(0, v.n).UTC()
}

// Duration returns the duration payload and its semantics tag.
func (v Value) Duration() (time.Duration, DurationSemantics) {
	v.mustBe(KindDuration)
	return time.Duration(v.n), DurationSemantics(v.s)
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("value: %s used as %s", v.kind, k))
	}
}

// String renders v for display. NULL renders as "NULL"; money renders with
// its currency code; durations render with their semantics tag.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.n != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.n, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindMoney:
		sign := ""
		n := v.n
		if n < 0 {
			sign = "-"
			n = -n
		}
		return fmt.Sprintf("%s%d.%02d %s", sign, n/100, n%100, v.s)
	case KindTime:
		return v.Time().Format(time.RFC3339)
	case KindDuration:
		d, sem := v.Duration()
		if sem == "" || sem == CalendarDays {
			return d.String()
		}
		return fmt.Sprintf("%s (%s)", d, sem)
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// Equal reports deep equality: both kind and payload must match. NULL
// equals NULL for the purposes of this method (unlike SQL comparison,
// see Compare).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	default:
		return v.n == o.n && v.s == o.s
	}
}

// Comparable reports whether values of kinds a and b may be ordered
// against each other. Numeric kinds are mutually comparable; money is
// comparable to money only (possibly requiring currency conversion);
// everything else must match exactly.
func Comparable(a, b Kind) bool {
	if a == b {
		return true
	}
	num := func(k Kind) bool { return k == KindInt || k == KindFloat }
	return num(a) && num(b)
}

// ErrIncomparable is returned by Compare when the operand kinds cannot be
// ordered against each other.
var ErrIncomparable = fmt.Errorf("value: incomparable kinds")

// ErrCurrencyMismatch is returned when two money values in different
// currencies are compared or combined without a conversion step.
var ErrCurrencyMismatch = fmt.Errorf("value: currency mismatch")

// Compare orders v against o returning -1, 0 or +1. NULL orders before
// every non-NULL value (and equal to NULL), matching index ordering
// semantics. Comparing money in different currencies fails with
// ErrCurrencyMismatch: the caller must normalize first (the transformation
// layer does this).
func (v Value) Compare(o Value) (int, error) {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0, nil
		case v.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if !Comparable(v.kind, o.kind) {
		return 0, fmt.Errorf("%w: %s vs %s", ErrIncomparable, v.kind, o.kind)
	}
	switch v.kind {
	case KindBool:
		return cmpInt64(v.n, o.n), nil
	case KindInt:
		if o.kind == KindFloat {
			return cmpFloat(float64(v.n), o.f), nil
		}
		return cmpInt64(v.n, o.n), nil
	case KindFloat:
		if o.kind == KindInt {
			return cmpFloat(v.f, float64(o.n)), nil
		}
		return cmpFloat(v.f, o.f), nil
	case KindString:
		return strings.Compare(v.s, o.s), nil
	case KindMoney:
		if v.s != o.s {
			return 0, fmt.Errorf("%w: %s vs %s", ErrCurrencyMismatch, v.s, o.s)
		}
		return cmpInt64(v.n, o.n), nil
	case KindTime, KindDuration:
		return cmpInt64(v.n, o.n), nil
	default:
		return 0, fmt.Errorf("%w: %s", ErrIncomparable, v.kind)
	}
}

// MustCompare is Compare for callers that have already verified
// comparability (e.g. index code on a typed column). It panics on error.
func (v Value) MustCompare(o Value) int {
	c, err := v.Compare(o)
	if err != nil {
		panic(err)
	}
	return c
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Truthy reports whether v counts as true in a WHERE clause. NULL is not
// truthy (SQL three-valued logic collapses unknown to false at the filter).
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.n != 0
	case KindInt:
		return v.n != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	case KindNull:
		return false
	default:
		return true
	}
}
