package value

import (
	"math"
	"strconv"
)

// AppendKey appends a stable, kind-tagged encoding of v to dst, suitable
// as a map key via string(dst). Two values encode identically iff they
// are Equal. It exists because key encoding sits on the hottest paths —
// primary keys, hash indexes, join and grouping keys — where
// fmt.Sprintf-based rendering dominates profiles.
func AppendKey(dst []byte, v Value) []byte {
	dst = append(dst, byte('0'+v.kind))
	dst = append(dst, '|')
	switch v.kind {
	case KindNull:
		// tag alone
	case KindBool:
		if v.n != 0 {
			dst = append(dst, '1')
		} else {
			dst = append(dst, '0')
		}
	case KindInt, KindTime:
		dst = strconv.AppendInt(dst, v.n, 10)
	case KindFloat:
		f := v.f
		if math.IsNaN(f) {
			f = math.NaN() // canonical NaN so Equal values share a key
		}
		dst = strconv.AppendUint(dst, math.Float64bits(f), 16)
	case KindString:
		dst = append(dst, v.s...)
	case KindMoney, KindDuration:
		dst = strconv.AppendInt(dst, v.n, 10)
		dst = append(dst, '|')
		dst = append(dst, v.s...)
	}
	return dst
}

// Key returns string(AppendKey(nil, v)).
func Key(v Value) string {
	return string(AppendKey(make([]byte, 0, 24), v))
}

// AppendRowKey encodes a row of values with separators.
func AppendRowKey(dst []byte, row []Value) []byte {
	for _, v := range row {
		dst = AppendKey(dst, v)
		dst = append(dst, 0)
	}
	return dst
}
