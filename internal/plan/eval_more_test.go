package plan

import (
	"testing"

	"cohera/internal/sqlparse"
	"cohera/internal/value"
)

// evalErr asserts the expression fails to evaluate.
func evalErr(t *testing.T, expr string, e Env) {
	t.Helper()
	x, err := sqlparse.ParseExpr(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	var ev Evaluator
	if _, err := ev.Eval(x, e); err == nil {
		t.Errorf("Eval(%q) should fail", expr)
	}
}

func TestEvalErrorPaths(t *testing.T) {
	e := NewRowEnv([]string{"s", "m", "b"}, []value.Value{
		value.NewString("txt"), value.NewMoney(100, "USD"), value.NewBool(true),
	})
	evalErr(t, "-s", e)          // negate a string
	evalErr(t, "s * 2", e)       // arithmetic on strings
	evalErr(t, "m + 1", e)       // money + bare number
	evalErr(t, "m - 'x'", e)     // money - string
	evalErr(t, "2 / m", e)       // number / money
	evalErr(t, "m / 0", e)       // money division by zero
	evalErr(t, "b LIKE 'x%'", e) // LIKE over non-strings
	evalErr(t, "s BETWEEN 1 AND 2", e)
	evalErr(t, "ghost + 1", e) // unknown column propagates
}

func TestEvalNegMoneyAndNull(t *testing.T) {
	e := NewRowEnv([]string{"m", "n"}, []value.Value{value.NewMoney(250, "EUR"), value.Null})
	ev := &Evaluator{}
	x, _ := sqlparse.ParseExpr("-m")
	v, err := ev.Eval(x, e)
	if err != nil {
		t.Fatal(err)
	}
	if amt, cur := v.Money(); amt != -250 || cur != "EUR" {
		t.Errorf("-money = %v", v)
	}
	x, _ = sqlparse.ParseExpr("-n")
	if v, err := ev.Eval(x, e); err != nil || !v.IsNull() {
		t.Errorf("-NULL = %v, %v", v, err)
	}
	// NULL arithmetic is NULL.
	x, _ = sqlparse.ParseExpr("n + 1")
	if v, _ := ev.Eval(x, e); !v.IsNull() {
		t.Errorf("NULL+1 = %v", v)
	}
	// money * number on the left.
	x, _ = sqlparse.ParseExpr("2 * m")
	v, err = ev.Eval(x, e)
	if err != nil {
		t.Fatal(err)
	}
	if amt, _ := v.Money(); amt != 500 {
		t.Errorf("2*money = %v", v)
	}
}

func TestBetweenNullAndCoercion(t *testing.T) {
	e := NewRowEnv([]string{"x", "n", "s"}, []value.Value{
		value.NewInt(5), value.Null, value.NewString("5"),
	})
	ev := &Evaluator{}
	x, _ := sqlparse.ParseExpr("n BETWEEN 1 AND 9")
	if v, _ := ev.Eval(x, e); !v.IsNull() {
		t.Errorf("NULL BETWEEN = %v", v)
	}
	x, _ = sqlparse.ParseExpr("x BETWEEN n AND 9")
	if v, _ := ev.Eval(x, e); !v.IsNull() {
		t.Errorf("BETWEEN NULL bound = %v", v)
	}
	// String coerces to the numeric bounds.
	x, _ = sqlparse.ParseExpr("s BETWEEN 1 AND 9")
	if v, err := ev.Eval(x, e); err != nil || !v.Truthy() {
		t.Errorf("'5' BETWEEN 1 AND 9 = %v, %v", v, err)
	}
}

func TestLikeNullOperands(t *testing.T) {
	e := NewRowEnv([]string{"n", "s"}, []value.Value{value.Null, value.NewString("abc")})
	ev := &Evaluator{}
	x, _ := sqlparse.ParseExpr("n LIKE 'a%'")
	if v, _ := ev.Eval(x, e); !v.IsNull() {
		t.Errorf("NULL LIKE = %v", v)
	}
	x, _ = sqlparse.ParseExpr("s LIKE n")
	if v, _ := ev.Eval(x, e); !v.IsNull() {
		t.Errorf("LIKE NULL = %v", v)
	}
}

func TestCompareForEvalCrossKinds(t *testing.T) {
	// number vs string-coercible-to-number.
	e := NewRowEnv([]string{"s", "t"}, []value.Value{
		value.NewString("2001-05-21"), value.NewTime(mustTime(t)),
	})
	ev := &Evaluator{}
	x, _ := sqlparse.ParseExpr("s = t")
	v, err := ev.Eval(x, e)
	if err != nil {
		t.Fatalf("string vs time compare: %v", err)
	}
	if !v.Truthy() {
		t.Errorf("'2001-05-21' = timestamp → %v", v)
	}
	// Same-kind incomparable stays an error (money cross-currency).
	e2 := NewRowEnv([]string{"a", "b"}, []value.Value{
		value.NewMoney(1, "USD"), value.NewMoney(1, "EUR"),
	})
	x, _ = sqlparse.ParseExpr("a < b")
	if _, err := ev.Eval(x, e2); err == nil {
		t.Error("cross-currency compare should fail")
	}
}

func TestFlipOpAllCases(t *testing.T) {
	// Literal-on-left forms exercise every flip.
	cases := map[string]struct {
		lo, hi         int64
		loEx, hiEx     bool
		loNull, hiNull bool
	}{
		"5 <= qty": {lo: 5},
		"5 > qty":  {hi: 5, hiEx: true, loNull: true},
		"5 >= qty": {hi: 5, loNull: true},
		"5 <> qty": {}, // not sargable
	}
	for sql, want := range cases {
		e, _ := sqlparse.ParseExpr(sql)
		r, ok := Sargable(e)
		if sql == "5 <> qty" {
			if ok {
				t.Errorf("%q should not be sargable", sql)
			}
			continue
		}
		if !ok {
			t.Errorf("%q should be sargable", sql)
			continue
		}
		if !want.loNull && (r.Lo.IsNull() || r.Lo.Int() != want.lo || r.LoExclusive != want.loEx) {
			t.Errorf("%q lo = %+v", sql, r)
		}
		if want.hi != 0 && (r.Hi.IsNull() || r.Hi.Int() != want.hi || r.HiExclusive != want.hiEx) {
			t.Errorf("%q hi = %+v", sql, r)
		}
	}
}

func TestEstimateSelectivityMore(t *testing.T) {
	cases := []string{
		"FUZZY(name, 'x')", "NOT a = 1", "a + 1", "a IN (1,2,3)",
	}
	for _, sql := range cases {
		e, err := sqlparse.ParseExpr(sql)
		if err != nil {
			t.Fatal(err)
		}
		s := EstimateSelectivity(e, 10)
		if s < 0 || s > 1 {
			t.Errorf("EstimateSelectivity(%q) = %g out of range", sql, s)
		}
	}
	// IN with distinct smaller than the list clamps to 1.
	e, _ := sqlparse.ParseExpr("a IN (1,2,3)")
	if s := EstimateSelectivity(e, 2); s != 1 {
		t.Errorf("clamped IN selectivity = %g", s)
	}
}

func TestWalkCoversAllNodeTypes(t *testing.T) {
	exprs := []string{
		"a BETWEEN 1 AND 2",
		"a LIKE 'x%'",
		"NOT a IS NULL",
		"-a",
		"FUZZY(name, 'q')",
		"UPPER(a)",
		"a IN (1, b)",
	}
	for _, sql := range exprs {
		e, err := sqlparse.ParseExpr(sql)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		Walk(e, func(sqlparse.Expr) bool { count++; return true })
		if count < 2 {
			t.Errorf("Walk(%q) visited %d nodes", sql, count)
		}
	}
	Walk(nil, func(sqlparse.Expr) bool { t.Error("nil walk should not visit"); return true })
}
