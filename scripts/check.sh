#!/usr/bin/env sh
# check.sh — the full verification gate, a superset of the tier-1
# build+test check. Run from anywhere inside the repo; fails fast on
# the first broken stage.
#
#   1. go build ./...            every package compiles
#   2. go vet ./...              stock vet suite
#   3. go run ./cmd/coheralint   project-specific analyzers (see
#      ./...                     internal/analysis/doc.go), with
#                                per-analyzer wall times on stderr
#   3b. coheralint self-lint     the analysis framework and the linter
#                                CLI are explicitly held to their own
#                                rules (the ./... run covers them too,
#                                but this stage keeps them covered even
#                                if the main run is ever narrowed)
#   4. go run ./cmd/coherasmoke  daemon smoke: in-process coherad
#                                handler, /healthz 200, /metrics parses
#   5. go run ./cmd/coherachaos  seeded fault-injection harness: the
#      -smoke                    resilience invariants hold end to end,
#                                including the anti-entropy convergence
#                                stage (replica digests equal + journal
#                                empty after a seeded flap workload)
#   5b. go run ./cmd/coherachaos kill-and-restart: a durable federation
#      -crash                    child is SIGKILLed mid-workload and
#                                recovered from its WALs — digests
#                                identical, journal drained, no
#                                acknowledged write lost or doubled
#   5c. go run ./cmd/coherachaos overload SLO gate: open-loop load at
#      -overload                 4x measured capacity against the
#                                admission gate — typed sheds only,
#                                admitted p99 in SLO, no tenant
#                                starved, shed-free recovery
#   6. go test -race ./...       full tests under the race detector
#   7. go test -fuzz ... 10s     fuzz smoke: parser, NDJSON stream
#                                decoder, WAL replay, and the pushdown
#                                split oracle each survive a short run
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> coheralint ./..."
go run ./cmd/coheralint -timings ./...

echo "==> coheralint self-lint (internal/analysis, cmd/coheralint)"
go run ./cmd/coheralint ./internal/analysis ./cmd/coheralint

echo "==> coherasmoke"
go run ./cmd/coherasmoke

echo "==> coherachaos -smoke"
go run ./cmd/coherachaos -smoke

echo "==> coherachaos -crash (kill -9 + restart recovery)"
go run ./cmd/coherachaos -crash -seed 42

echo "==> coherachaos -overload (open-loop admission SLO gate)"
go run ./cmd/coherachaos -overload -seed 42

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (10s per target)"
go test -fuzz 'FuzzParse$' -fuzztime 10s ./internal/sqlparse/
go test -fuzz FuzzParseExpr -fuzztime 10s ./internal/sqlparse/
go test -fuzz FuzzDecodeStream -fuzztime 10s ./internal/remote/
go test -fuzz FuzzWALReplay -fuzztime 10s ./internal/wal/
go test -fuzz FuzzPushdownSplit -fuzztime 10s ./internal/plan/

echo "check: all gates passed"
