package bench

import (
	"context"
	"fmt"
	"time"

	"cohera/internal/schema"
	"cohera/internal/transform"
	"cohera/internal/value"
	"cohera/internal/workload"
	"cohera/internal/wrapper"
)

// E8Pipeline measures the supplier-enablement pipeline at scale
// (Characteristic 2): the paper's Home Depot example has 60,000
// suppliers, so the cost per supplier — wrapper setup plus
// transformation throughput — is the figure of merit. Every supplier
// publishes in one of three formats; each format gets one *shared*
// declarative pipeline (rules parameterized by supplier), so the
// per-supplier configuration is a handful of declarations rather than
// bespoke code.
func E8Pipeline(cfg Config) (Table, error) {
	counts := []int{10, 50, 200}
	items := 20
	if cfg.Quick {
		counts = []int{10, 40}
		items = 10
	}
	t := Table{
		ID:      "E8",
		Title:   "supplier feed integration throughput (wrapper + normalize)",
		Headers: []string{"suppliers", "rows", "elapsed", "rows/s", "discrepancies", "clean%"},
		Notes:   "expected shape: linear scaling with supplier count; dirty rows surface as discrepancies, not load failures",
	}
	for _, n := range counts {
		rows, elapsed, disc, err := runE8(cfg.Seed, n, items)
		if err != nil {
			return t, err
		}
		total := n * items
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", total),
			fmtDur(elapsed),
			fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()),
			fmt.Sprintf("%d", disc),
			fmt.Sprintf("%.1f%%", 100*float64(rows)/float64(total)),
		})
	}
	return t, nil
}

// e8RawDef is the shared intermediate schema all three wrappers emit.
func e8RawDef() *schema.Table {
	return schema.MustTable("raw_feed", []schema.Column{
		{Name: "part_no", Kind: value.KindString},
		{Name: "description", Kind: value.KindString},
		{Name: "unit_price", Kind: value.KindMoney},
		{Name: "lead_time", Kind: value.KindDuration},
		{Name: "on_hand", Kind: value.KindInt},
	})
}

func runE8(seed int64, suppliers, items int) (clean int, elapsed time.Duration, discrepancies int, err error) {
	raw := e8RawDef()
	catalog := workload.CatalogDef()
	rates := defaultRates()
	sups := workload.Suppliers(suppliers, items, 0.05, seed)

	// One wrapper per format; induction trains the HTML wrapper once from
	// two labeled examples on the first HTML supplier's page.
	var htmlTpl wrapper.LRTemplate
	for _, s := range sups {
		if s.Format == workload.FormatHTML && len(s.Items) >= 2 {
			page := workload.RenderHTML(s)
			htmlTpl, err = wrapper.Induce(page,
				[]string{"part_no", "description", "unit_price", "lead_time", "on_hand"},
				[]wrapper.Example{
					exampleFor(s, 0), exampleFor(s, 1),
				})
			if err != nil {
				return 0, 0, 0, fmt.Errorf("bench: induction: %w", err)
			}
			break
		}
	}

	ctx := context.Background()
	start := time.Now()
	for _, s := range sups {
		src, err := e8Source(s, raw, htmlTpl)
		if err != nil {
			return clean, time.Since(start), discrepancies, err
		}
		rows, err := src.Fetch(ctx, nil)
		if err != nil {
			return clean, time.Since(start), discrepancies, fmt.Errorf("bench: %s fetch: %w", s.Name, err)
		}
		p := transform.NewPipeline(raw, catalog)
		skuExpr, err := transform.NewExpr("sku", fmt.Sprintf("'%s/' + part_no", s.Name))
		if err != nil {
			return clean, time.Since(start), discrepancies, err
		}
		supExpr, err := transform.NewExpr("supplier", fmt.Sprintf("'%s'", s.Name))
		if err != nil {
			return clean, time.Since(start), discrepancies, err
		}
		p.MustAdd(
			skuExpr, supExpr,
			transform.Copy{To: "name", From: "description"},
			transform.Currency{To: "price", From: "unit_price", Into: "USD", Rates: rates},
			transform.Delivery{To: "delivery", From: "lead_time"},
			transform.Copy{To: "qty", From: "on_hand"},
		)
		out, disc := p.Run(rows)
		clean += len(out)
		discrepancies += len(disc)
	}
	return clean, time.Since(start), discrepancies, nil
}

// e8Source builds the right wrapper for a supplier's format.
func e8Source(s workload.Supplier, raw *schema.Table, htmlTpl wrapper.LRTemplate) (wrapper.Source, error) {
	switch s.Format {
	case workload.FormatCSV:
		doc := workload.RenderCSV(s)
		return wrapper.NewCSVSource(s.Name, raw,
			wrapper.StaticFetcher(map[string]string{"u": doc}), "u",
			[]wrapper.FieldMapping{
				{Column: "part_no", From: "Part No"},
				{Column: "description", From: "Description"},
				{Column: "unit_price", From: "Unit Price"},
				{Column: "lead_time", From: "Lead Time"},
				{Column: "on_hand", From: "On Hand"},
			}), nil
	case workload.FormatXML:
		doc := workload.RenderXML(s)
		return wrapper.NewXMLSource(s.Name, raw,
			wrapper.StaticFetcher(map[string]string{"u": doc}), "u",
			"/feed/item", []wrapper.FieldMapping{
				{Column: "part_no", From: "@code"},
				{Column: "description", From: "desc"},
				{Column: "unit_price", From: "price"},
				{Column: "lead_time", From: "lead"},
				{Column: "on_hand", From: "stock"},
			}), nil
	default:
		doc := workload.RenderHTML(s)
		return wrapper.NewHTMLSource(s.Name, raw,
			wrapper.StaticFetcher(map[string]string{"u": doc}), "u", htmlTpl, nil), nil
	}
}

// exampleFor labels one record of a supplier's HTML page for induction.
func exampleFor(s workload.Supplier, i int) wrapper.Example {
	it := s.Items[i]
	return wrapper.Example{Values: []string{
		it.SKU, htmlEscapeLite(it.Name),
		priceText(it.PriceCents, s.Currency),
		deliveryText(it.Days, s.DeliverySemantics),
		fmt.Sprintf("%d", it.Qty),
	}}
}

func htmlEscapeLite(s string) string { return s } // generator names avoid markup

func priceText(cents int64, currency string) string {
	if currency == "USD" {
		return fmt.Sprintf("$%d.%02d", cents/100, cents%100)
	}
	return fmt.Sprintf("%d.%02d %s", cents/100, cents%100, currency)
}

func deliveryText(days int, sem value.DurationSemantics) string {
	switch sem {
	case value.BusinessDays:
		return fmt.Sprintf("%d business days", days)
	case value.NoSundayDays:
		return fmt.Sprintf("%d days (Sunday excluded)", days)
	default:
		return fmt.Sprintf("%d days", days)
	}
}
