package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cohera/internal/admission"
	"cohera/internal/obs"
	"cohera/internal/resilience"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/wrapper"
)

// DefaultTimeout bounds each client call unless WithTimeout overrides it.
const DefaultTimeout = 30 * time.Second

// TenantHeader carries the caller's tenant identity to the server's
// admission gate; DefaultTenant when the context is untagged.
const TenantHeader = "X-Cohera-Tenant"

// ShedReasonHeader carries the server-side shed reason of a 429 back
// to the client, so the typed overload error survives the wire.
const ShedReasonHeader = "X-Cohera-Shed-Reason"

// metClientReqs counts client calls by outcome class ("2xx", "4xx",
// "5xx", ... or "error" for transport failures that never got a status).
func metClientReqs(class string) *obs.Counter {
	return obs.Default().Counter("cohera_remote_client_requests_total",
		"Remote client calls by status class (error = transport failure).",
		obs.Labels{"class": class})
}

var (
	metClientBytes = obs.Default().Counter("cohera_remote_client_bytes_read_total",
		"Response bytes read by the remote client.", nil)
	metClientSeconds = obs.Default().Histogram("cohera_remote_client_seconds",
		"Remote client call latency.", nil)
	metClientRetries = obs.Default().Counter("cohera_remote_client_retries_total",
		"Retries of idempotent remote reads (attempts beyond the first).", nil)
)

// Client talks to a remote Server.
type Client struct {
	base        string
	token       string
	http        *http.Client
	retry       *resilience.Retry
	streamBatch int
}

// DialOption customizes a Client.
type DialOption func(*Client)

// WithTimeout overrides the whole-call timeout (DefaultTimeout). d ≤ 0
// disables the timeout entirely, leaving cancellation to the context.
func WithTimeout(d time.Duration) DialOption {
	return func(c *Client) {
		if d < 0 {
			d = 0
		}
		c.http.Timeout = d
	}
}

// WithTransport overrides the client's HTTP transport — the seam a
// fault.RoundTripper plugs into. nil restores the default transport.
func WithTransport(rt http.RoundTripper) DialOption {
	return func(c *Client) { c.http.Transport = rt }
}

// WithStreamBatch asks /fetchstream servers for n rows per chunk.
// 0 (the default) accepts the server's choice; the server clamps
// oversized asks.
func WithStreamBatch(n int) DialOption {
	return func(c *Client) {
		if n < 0 {
			n = 0
		}
		c.streamBatch = n
	}
}

// WithRetry installs a retry policy for idempotent reads (Tables,
// Fetch, Healthy). Transport failures and 5xx responses are retried
// with capped exponential backoff and full jitter; 4xx responses are
// the caller's fault and fail immediately. Writes are never retried:
// a blindly replayed non-idempotent statement could apply twice.
func WithRetry(r resilience.Retry) DialOption {
	return func(c *Client) { c.retry = &r }
}

// Dial creates a client for a server base URL ("http://host:port").
// token may be empty for unauthenticated servers.
func Dial(base, token string, opts ...DialOption) *Client {
	c := &Client{
		base:  base,
		token: token,
		http:  &http.Client{Timeout: DefaultTimeout},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// statusError carries a non-200 response through the error chain so the
// retry policy can distinguish server faults (5xx) from caller errors.
type statusError struct {
	method, path string
	code         int
	msg          string
}

func (e *statusError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("remote: %s %s: %s", e.method, e.path, e.msg)
	}
	return fmt.Sprintf("remote: %s %s: status %d", e.method, e.path, e.code)
}

// retryableError classifies one failed attempt: 5xx and transport-level
// failures are transient; 4xx, context expiry, and overload sheds are
// permanent. A shed is never blind-retried — the server just said it
// is at capacity, and an immediate retry is the start of a retry storm;
// honoring the Retry-After hint is the caller's (scheduler's) job.
func retryableError(err error) bool {
	if errors.Is(err, admission.ErrOverloaded) {
		return false
	}
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// shedError converts a 429 response into the same typed overload error
// a local admission gate produces, so errors.Is(err, ErrOverloaded)
// holds whether the shed happened in-process or across the wire.
// Retry-After is parsed as delta-seconds; absent or malformed, a
// conservative default stands in. The server's shed reason rides
// ShedReasonHeader, prefixed "remote-" to keep origins distinguishable.
func shedError(ctx context.Context, method, path string, h http.Header) error {
	ra := 250 * time.Millisecond
	if v := h.Get("Retry-After"); v != "" {
		if secs, err := strconv.ParseFloat(v, 64); err == nil && secs >= 0 && secs <= 3600 {
			ra = time.Duration(secs * float64(time.Second))
		}
	}
	reason := h.Get(ShedReasonHeader)
	if reason == "" {
		reason = "unknown"
	}
	oe := &admission.OverloadError{
		Tenant:     admission.TenantOf(ctx),
		Reason:     "remote-" + reason,
		RetryAfter: ra,
	}
	return fmt.Errorf("remote: %s %s: %w", method, path, oe)
}

// do performs one client call. idempotent calls run under the client's
// retry policy (when one is installed); non-idempotent calls get
// exactly one attempt regardless.
func (c *Client) do(ctx context.Context, method, path string, body []byte, idempotent bool) ([]byte, error) {
	if c.retry == nil || !idempotent {
		return c.doOnce(ctx, method, path, body)
	}
	r := *c.retry
	prev := r.OnRetry
	r.OnRetry = func(attempt int, err error, delay time.Duration) {
		metClientRetries.Inc()
		if prev != nil {
			prev(attempt, err, delay)
		}
	}
	var out []byte
	err := r.Run(ctx, func(ctx context.Context) error {
		var opErr error
		out, opErr = c.doOnce(ctx, method, path, body)
		return opErr
	}, retryableError)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// doOnce is a single client call attempt.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	start := time.Now()
	defer func() { metClientSeconds.Observe(time.Since(start)) }()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		metClientReqs("error").Inc()
		return nil, fmt.Errorf("remote: request: %w", err)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the caller's trace so the server's spans join our tree,
	// and the tenant so the server's admission gate bills the right
	// account.
	obs.InjectHeaders(ctx, req.Header)
	req.Header.Set(TenantHeader, admission.TenantOf(ctx))
	resp, err := c.http.Do(req)
	if err != nil {
		metClientReqs("error").Inc()
		return nil, fmt.Errorf("remote: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	metClientReqs(respClass(resp.StatusCode)).Inc()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("remote: reading %s: %w", path, err)
	}
	metClientBytes.Add(int64(len(out)))
	if resp.StatusCode == http.StatusTooManyRequests {
		return nil, shedError(ctx, method, path, resp.Header)
	}
	if resp.StatusCode != http.StatusOK {
		se := &statusError{method: method, path: path, code: resp.StatusCode}
		var er errorResponse
		if json.Unmarshal(out, &er) == nil && er.Error != "" {
			se.msg = er.Error
		}
		return nil, se
	}
	return out, nil
}

// statusClass folds an HTTP status into its hundreds class ("2xx"…).
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// respClass is statusClass with sheds broken out: 429s get their own
// "shed" class in the request counters so overload is visible at a
// glance instead of hiding inside 4xx.
func respClass(code int) string {
	if code == http.StatusTooManyRequests {
		return "shed"
	}
	return statusClass(code)
}

// Tables discovers the remote schemas as ready-to-register sources.
func (c *Client) Tables(ctx context.Context) ([]wrapper.Source, error) {
	body, err := c.do(ctx, http.MethodGet, "/tables", nil, true)
	if err != nil {
		return nil, err
	}
	var schemas []wireSchema
	if err := json.Unmarshal(body, &schemas); err != nil {
		return nil, fmt.Errorf("remote: decoding /tables: %w", err)
	}
	var out []wrapper.Source
	for _, ws := range schemas {
		def, err := decodeSchema(ws)
		if err != nil {
			return nil, err
		}
		out = append(out, &Source{
			client: c, def: def,
			caps: wrapper.Capabilities{
				PushdownEq: ws.PushdownEq,
				Push:       decodePushCaps(ws.Push),
				Volatile:   ws.Volatile,
			},
		})
	}
	return out, nil
}

// Healthy probes /healthz.
func (c *Client) Healthy(ctx context.Context) bool {
	_, err := c.do(ctx, http.MethodGet, "/healthz", nil, true)
	return err == nil
}

// Digest fetches the content digest of a stored table published on
// the server — the remote half of anti-entropy divergence detection.
// Read-only, so it rides the idempotent retry policy.
func (c *Client) Digest(ctx context.Context, table string) (storage.TableDigest, error) {
	body, err := json.Marshal(digestRequest{Table: table})
	if err != nil {
		return storage.TableDigest{}, err
	}
	out, err := c.do(ctx, http.MethodPost, "/digest", body, true)
	if err != nil {
		return storage.TableDigest{}, err
	}
	var resp digestResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		return storage.TableDigest{}, fmt.Errorf("remote: decoding /digest: %w", err)
	}
	h, err := strconv.ParseUint(resp.Hash, 16, 64)
	if err != nil {
		return storage.TableDigest{}, fmt.Errorf("remote: /digest hash %q: %w", resp.Hash, err)
	}
	return storage.TableDigest{Hash: h, Rows: resp.Rows}, nil
}

// Source is a remote table presented through the standard connector
// interface: the federation treats an enterprise across the network
// exactly like a local wrapper (Characteristic 1's arms-length end, with
// structure instead of scraping).
type Source struct {
	client *Client
	def    *schema.Table
	caps   wrapper.Capabilities
}

// Name implements wrapper.Source.
func (s *Source) Name() string { return s.client.base + "/" + s.def.Name }

// Schema implements wrapper.Source.
func (s *Source) Schema() *schema.Table { return s.def }

// Capabilities implements wrapper.Source.
func (s *Source) Capabilities() wrapper.Capabilities { return s.caps }

// Fetch implements wrapper.Source: pushable filters travel to the
// server; the caller re-checks everything as usual.
func (s *Source) Fetch(ctx context.Context, filters []wrapper.Filter) ([]storage.Row, error) {
	ctx, sp := obs.StartSpan(ctx, "remote.fetch")
	sp.Set("table", s.def.Name)
	defer sp.End()
	req := fetchRequest{Table: s.def.Name}
	for _, f := range filters {
		if s.caps.CanPush(f.Column) {
			req.Filters = append(req.Filters, wireFilter{Column: f.Column, Value: encodeValue(f.Value)})
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	out, err := s.client.do(ctx, http.MethodPost, "/fetch", body, true)
	if err != nil {
		sp.SetErr(err)
		return nil, err
	}
	var resp fetchResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		sp.SetErr(err)
		return nil, fmt.Errorf("remote: decoding /fetch: %w", err)
	}
	rows, err := decodeRows(resp.Rows)
	if err != nil {
		sp.SetErr(err)
		return nil, err
	}
	sp.Set("rows", strconv.Itoa(len(rows)))
	// Re-apply all filters locally: the server only handled pushable ones.
	return wrapper.ApplyFilters(s.def, rows, filters), nil
}
