package storage

import (
	"cohera/internal/value"
)

// ColumnStats summarizes one column for the optimizers.
type ColumnStats struct {
	// Distinct is the number of distinct non-NULL values.
	Distinct int
	// Nulls is the number of NULL cells.
	Nulls int
	// Min and Max bound the non-NULL values (NULL when empty or
	// incomparable).
	Min, Max value.Value
}

// TableStats summarizes a table for the optimizers. Both the centralized
// cost-based optimizer and the agoric bidders consume these.
type TableStats struct {
	// Rows is the cardinality.
	Rows int
	// Columns maps column name to its statistics.
	Columns map[string]ColumnStats
}

// Stats computes fresh statistics with a full pass over the table. Sites
// recompute periodically and advertise the result to the federation.
func (t *Table) Stats() TableStats {
	st := TableStats{Columns: make(map[string]ColumnStats, len(t.def.Columns))}
	distinct := make([]map[string]bool, len(t.def.Columns))
	mins := make([]value.Value, len(t.def.Columns))
	maxs := make([]value.Value, len(t.def.Columns))
	nulls := make([]int, len(t.def.Columns))
	for i := range distinct {
		distinct[i] = make(map[string]bool)
	}
	t.Scan(func(_ int64, row Row) bool {
		st.Rows++
		for i, v := range row {
			if v.IsNull() {
				nulls[i]++
				continue
			}
			distinct[i][encodeValue(v)] = true
			if mins[i].IsNull() {
				mins[i], maxs[i] = v, v
				continue
			}
			if c, err := v.Compare(mins[i]); err == nil && c < 0 {
				mins[i] = v
			}
			if c, err := v.Compare(maxs[i]); err == nil && c > 0 {
				maxs[i] = v
			}
		}
		return true
	})
	for i, c := range t.def.Columns {
		st.Columns[c.Name] = ColumnStats{
			Distinct: len(distinct[i]),
			Nulls:    nulls[i],
			Min:      mins[i],
			Max:      maxs[i],
		}
	}
	return st
}

// Selectivity estimates the fraction of rows an equality predicate on the
// column retains, using the uniform-distinct assumption. Unknown columns
// estimate 0.1.
func (s TableStats) Selectivity(column string) float64 {
	cs, ok := s.Columns[column]
	if !ok || cs.Distinct == 0 {
		return 0.1
	}
	return 1 / float64(cs.Distinct)
}
