// Package plan implements expression evaluation and predicate analysis
// shared by the local executor (internal/exec), the federated query
// processor (internal/federation) and the semantic cache (internal/cache).
package plan

import (
	"fmt"
	"strings"

	"cohera/internal/sqlparse"
	"cohera/internal/value"
)

// Env resolves column references during evaluation.
type Env interface {
	// Resolve returns the value bound to the (optionally qualified)
	// column reference.
	Resolve(ref sqlparse.ColumnRef) (value.Value, error)
}

// RowEnv is the standard Env: parallel slices of binding names and values.
// Names may be bare ("price") or qualified ("p.price"); resolution tries
// the qualified form first, then unique bare match.
type RowEnv struct {
	Names  []string // lowercase, possibly "table.column"
	Values []value.Value
}

// NewRowEnv builds an environment. Names are normalized to lowercase.
func NewRowEnv(names []string, values []value.Value) *RowEnv {
	ln := make([]string, len(names))
	for i, n := range names {
		ln[i] = strings.ToLower(n)
	}
	return &RowEnv{Names: ln, Values: values}
}

// NewRowEnvRaw wraps names that are already lowercase without copying.
// Row-at-a-time executors build the name list once and swap Values per
// row; the per-row ToLower pass of NewRowEnv dominates tight loops.
func NewRowEnvRaw(names []string, values []value.Value) *RowEnv {
	return &RowEnv{Names: names, Values: values}
}

// ErrUnknownColumn is returned when a reference resolves to no binding.
var ErrUnknownColumn = fmt.Errorf("plan: unknown column")

// ErrAmbiguousColumn is returned when a bare reference matches several
// bindings.
var ErrAmbiguousColumn = fmt.Errorf("plan: ambiguous column")

// Resolve implements Env.
func (e *RowEnv) Resolve(ref sqlparse.ColumnRef) (value.Value, error) {
	col := strings.ToLower(ref.Column)
	if ref.Table != "" {
		want := strings.ToLower(ref.Table) + "." + col
		for i, n := range e.Names {
			if n == want {
				return e.Values[i], nil
			}
		}
		return value.Null, fmt.Errorf("%w: %s", ErrUnknownColumn, ref)
	}
	found := -1
	for i, n := range e.Names {
		bare := n
		if dot := strings.LastIndexByte(n, '.'); dot >= 0 {
			bare = n[dot+1:]
		}
		if bare == col {
			if found >= 0 {
				return value.Null, fmt.Errorf("%w: %s", ErrAmbiguousColumn, ref)
			}
			found = i
		}
	}
	if found < 0 {
		return value.Null, fmt.Errorf("%w: %s", ErrUnknownColumn, ref)
	}
	return e.Values[found], nil
}

// TextMatcher evaluates a text-search predicate for the current row.
// The executor installs one backed by the inverted index; contexts without
// text support leave it nil and TextMatch expressions fail.
type TextMatcher func(tm sqlparse.TextMatch, env Env) (bool, error)

// Evaluator evaluates expressions. The zero value works for expressions
// without text predicates.
type Evaluator struct {
	// Text, when non-nil, handles TextMatch predicates.
	Text TextMatcher
	// Funcs adds or overrides scalar functions by uppercase name.
	Funcs map[string]func(args []value.Value) (value.Value, error)
}

// Eval computes the expression under the environment.
func (ev *Evaluator) Eval(e sqlparse.Expr, env Env) (value.Value, error) {
	switch x := e.(type) {
	case sqlparse.Literal:
		return x.Value, nil
	case sqlparse.ColumnRef:
		return env.Resolve(x)
	case sqlparse.Binary:
		return ev.evalBinary(x, env)
	case sqlparse.Not:
		v, err := ev.Eval(x.Inner, env)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() {
			return value.Null, nil
		}
		return value.NewBool(!v.Truthy()), nil
	case sqlparse.Neg:
		v, err := ev.Eval(x.Inner, env)
		if err != nil {
			return value.Null, err
		}
		switch v.Kind() {
		case value.KindInt:
			return value.NewInt(-v.Int()), nil
		case value.KindFloat:
			return value.NewFloat(-v.Float()), nil
		case value.KindNull:
			return value.Null, nil
		case value.KindMoney:
			m, c := v.Money()
			return value.NewMoney(-m, c), nil
		default:
			return value.Null, fmt.Errorf("plan: cannot negate %s", v.Kind())
		}
	case sqlparse.IsNull:
		v, err := ev.Eval(x.Inner, env)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(v.IsNull() != x.Negate), nil
	case sqlparse.In:
		return ev.evalIn(x, env)
	case sqlparse.Between:
		return ev.evalBetween(x, env)
	case sqlparse.Like:
		return ev.evalLike(x, env)
	case sqlparse.Call:
		return ev.evalCall(x, env)
	case sqlparse.TextMatch:
		if ev.Text == nil {
			return value.Null, fmt.Errorf("plan: %s predicate unsupported in this context", x.Mode)
		}
		ok, err := ev.Text(x, env)
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(ok), nil
	case sqlparse.Star:
		return value.Null, fmt.Errorf("plan: * is not a scalar expression")
	default:
		return value.Null, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

func (ev *Evaluator) evalBinary(x sqlparse.Binary, env Env) (value.Value, error) {
	// AND/OR get SQL three-valued logic with short circuit.
	if x.Op == sqlparse.OpAnd || x.Op == sqlparse.OpOr {
		l, err := ev.Eval(x.Left, env)
		if err != nil {
			return value.Null, err
		}
		if x.Op == sqlparse.OpAnd && !l.IsNull() && !l.Truthy() {
			return value.NewBool(false), nil
		}
		if x.Op == sqlparse.OpOr && !l.IsNull() && l.Truthy() {
			return value.NewBool(true), nil
		}
		r, err := ev.Eval(x.Right, env)
		if err != nil {
			return value.Null, err
		}
		if l.IsNull() || r.IsNull() {
			// unknown AND true = unknown; unknown OR false = unknown
			if x.Op == sqlparse.OpAnd && !r.IsNull() && !r.Truthy() {
				return value.NewBool(false), nil
			}
			if x.Op == sqlparse.OpOr && !r.IsNull() && r.Truthy() {
				return value.NewBool(true), nil
			}
			return value.Null, nil
		}
		if x.Op == sqlparse.OpAnd {
			return value.NewBool(l.Truthy() && r.Truthy()), nil
		}
		return value.NewBool(l.Truthy() || r.Truthy()), nil
	}
	l, err := ev.Eval(x.Left, env)
	if err != nil {
		return value.Null, err
	}
	r, err := ev.Eval(x.Right, env)
	if err != nil {
		return value.Null, err
	}
	switch x.Op {
	case sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
		if l.IsNull() || r.IsNull() {
			return value.Null, nil
		}
		c, err := compareForEval(l, r)
		if err != nil {
			return value.Null, err
		}
		var out bool
		switch x.Op {
		case sqlparse.OpEq:
			out = c == 0
		case sqlparse.OpNe:
			out = c != 0
		case sqlparse.OpLt:
			out = c < 0
		case sqlparse.OpLe:
			out = c <= 0
		case sqlparse.OpGt:
			out = c > 0
		case sqlparse.OpGe:
			out = c >= 0
		}
		return value.NewBool(out), nil
	default:
		return arith(x.Op, l, r)
	}
}

// compareForEval relaxes value.Compare slightly: string-vs-other compares
// via string coercion failing which it errors. Money and numbers stay
// strict so currency bugs surface.
func compareForEval(l, r value.Value) (int, error) {
	if c, err := l.Compare(r); err == nil {
		return c, nil
	} else if l.Kind() == r.Kind() {
		return 0, err
	}
	// Try coercing one side toward the other for mixed literal/text data.
	if l.Kind() == value.KindString {
		if cv, err := value.Coerce(l, r.Kind()); err == nil {
			return cv.Compare(r)
		}
	}
	if r.Kind() == value.KindString {
		if cv, err := value.Coerce(r, l.Kind()); err == nil {
			return l.Compare(cv)
		}
	}
	return l.Compare(r) // surface the original error
}

func arith(op sqlparse.BinaryOp, l, r value.Value) (value.Value, error) {
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	// String concatenation via +.
	if op == sqlparse.OpAdd && l.Kind() == value.KindString && r.Kind() == value.KindString {
		return value.NewString(l.Str() + r.Str()), nil
	}
	// Money arithmetic: money ± money (same currency), money * scalar.
	if l.Kind() == value.KindMoney || r.Kind() == value.KindMoney {
		return moneyArith(op, l, r)
	}
	if l.Kind() == value.KindInt && r.Kind() == value.KindInt && op != sqlparse.OpDiv {
		a, b := l.Int(), r.Int()
		switch op {
		case sqlparse.OpAdd:
			return value.NewInt(a + b), nil
		case sqlparse.OpSub:
			return value.NewInt(a - b), nil
		case sqlparse.OpMul:
			return value.NewInt(a * b), nil
		}
	}
	if !isNumeric(l) || !isNumeric(r) {
		return value.Null, fmt.Errorf("plan: %s %s %s unsupported", l.Kind(), op, r.Kind())
	}
	a, b := l.Float(), r.Float()
	switch op {
	case sqlparse.OpAdd:
		return value.NewFloat(a + b), nil
	case sqlparse.OpSub:
		return value.NewFloat(a - b), nil
	case sqlparse.OpMul:
		return value.NewFloat(a * b), nil
	case sqlparse.OpDiv:
		if b == 0 {
			return value.Null, fmt.Errorf("plan: division by zero")
		}
		return value.NewFloat(a / b), nil
	default:
		return value.Null, fmt.Errorf("plan: unsupported arithmetic op %s", op)
	}
}

func moneyArith(op sqlparse.BinaryOp, l, r value.Value) (value.Value, error) {
	switch {
	case l.Kind() == value.KindMoney && r.Kind() == value.KindMoney:
		la, lc := l.Money()
		ra, rc := r.Money()
		if lc != rc {
			return value.Null, fmt.Errorf("%w: %s vs %s", value.ErrCurrencyMismatch, lc, rc)
		}
		switch op {
		case sqlparse.OpAdd:
			return value.NewMoney(la+ra, lc), nil
		case sqlparse.OpSub:
			return value.NewMoney(la-ra, lc), nil
		}
		return value.Null, fmt.Errorf("plan: money %s money unsupported", op)
	case l.Kind() == value.KindMoney && isNumeric(r):
		la, lc := l.Money()
		switch op {
		case sqlparse.OpMul:
			return value.NewMoney(int64(float64(la)*r.Float()+0.5), lc), nil
		case sqlparse.OpDiv:
			if r.Float() == 0 {
				return value.Null, fmt.Errorf("plan: division by zero")
			}
			return value.NewMoney(int64(float64(la)/r.Float()+0.5), lc), nil
		}
		return value.Null, fmt.Errorf("plan: money %s number unsupported", op)
	case isNumeric(l) && r.Kind() == value.KindMoney && op == sqlparse.OpMul:
		ra, rc := r.Money()
		return value.NewMoney(int64(l.Float()*float64(ra)+0.5), rc), nil
	default:
		return value.Null, fmt.Errorf("plan: %s %s %s unsupported", l.Kind(), op, r.Kind())
	}
}

func isNumeric(v value.Value) bool {
	return v.Kind() == value.KindInt || v.Kind() == value.KindFloat
}

func (ev *Evaluator) evalIn(x sqlparse.In, env Env) (value.Value, error) {
	v, err := ev.Eval(x.Inner, env)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() {
		return value.Null, nil
	}
	sawNull := false
	for _, item := range x.List {
		iv, err := ev.Eval(item, env)
		if err != nil {
			return value.Null, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		c, err := compareForEval(v, iv)
		if err != nil {
			continue // incomparable list item can never match
		}
		if c == 0 {
			return value.NewBool(!x.Negate), nil
		}
	}
	if sawNull {
		return value.Null, nil
	}
	return value.NewBool(x.Negate), nil
}

func (ev *Evaluator) evalBetween(x sqlparse.Between, env Env) (value.Value, error) {
	v, err := ev.Eval(x.Inner, env)
	if err != nil {
		return value.Null, err
	}
	lo, err := ev.Eval(x.Lo, env)
	if err != nil {
		return value.Null, err
	}
	hi, err := ev.Eval(x.Hi, env)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return value.Null, nil
	}
	cl, err := compareForEval(v, lo)
	if err != nil {
		return value.Null, err
	}
	ch, err := compareForEval(v, hi)
	if err != nil {
		return value.Null, err
	}
	in := cl >= 0 && ch <= 0
	return value.NewBool(in != x.Negate), nil
}

func (ev *Evaluator) evalLike(x sqlparse.Like, env Env) (value.Value, error) {
	v, err := ev.Eval(x.Inner, env)
	if err != nil {
		return value.Null, err
	}
	p, err := ev.Eval(x.Pattern, env)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() || p.IsNull() {
		return value.Null, nil
	}
	if v.Kind() != value.KindString || p.Kind() != value.KindString {
		return value.Null, fmt.Errorf("plan: LIKE requires strings")
	}
	ok := likeMatch(strings.ToLower(v.Str()), strings.ToLower(p.Str()))
	return value.NewBool(ok != x.Negate), nil
}

// likeMatch implements SQL LIKE (% = any run, _ = any single rune) with
// iterative backtracking over the last %.
func likeMatch(s, pattern string) bool {
	sr, pr := []rune(s), []rune(pattern)
	si, pi := 0, 0
	starSi, starPi := -1, -1
	for si < len(sr) {
		switch {
		case pi < len(pr) && (pr[pi] == '_' || pr[pi] == sr[si]):
			si++
			pi++
		case pi < len(pr) && pr[pi] == '%':
			starPi = pi
			starSi = si
			pi++
		case starPi >= 0:
			starSi++
			si = starSi
			pi = starPi + 1
		default:
			return false
		}
	}
	for pi < len(pr) && pr[pi] == '%' {
		pi++
	}
	return pi == len(pr)
}
