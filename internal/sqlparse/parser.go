package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"cohera/internal/value"
)

// Parse parses a single SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().Text)
	}
	return stmt, nil
}

// ParseExpr parses a standalone scalar expression (used by the
// transformation rule language and view definitions).
func ParseExpr(input string) (Expr, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().Text)
	}
	return e, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, p.errf("expected %s, found %q", want, p.cur().Text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: offset %d: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(TokKeyword, "SELECT"):
		return p.selectOrUnion()
	case p.at(TokKeyword, "INSERT"):
		return p.insertStmt()
	case p.at(TokKeyword, "UPDATE"):
		return p.updateStmt()
	case p.at(TokKeyword, "DELETE"):
		return p.deleteStmt()
	case p.at(TokKeyword, "CREATE"):
		return p.createStmt()
	case p.at(TokKeyword, "EXPLAIN"):
		return p.explainStmt()
	default:
		return nil, p.errf("expected a statement, found %q", p.cur().Text)
	}
}

// explainStmt parses EXPLAIN [ANALYZE] <select>. Only SELECT/UNION can
// be explained: the interesting plan is the federated decomposition,
// and DML routing is already reported through DMLResult.
func (p *parser) explainStmt() (Statement, error) {
	if _, err := p.expect(TokKeyword, "EXPLAIN"); err != nil {
		return nil, err
	}
	analyze := p.accept(TokKeyword, "ANALYZE")
	if !p.at(TokKeyword, "SELECT") {
		return nil, p.errf("EXPLAIN expects a SELECT, found %q", p.cur().Text)
	}
	inner, err := p.selectOrUnion()
	if err != nil {
		return nil, err
	}
	return ExplainStmt{Analyze: analyze, Stmt: inner}, nil
}

// selectOrUnion parses a SELECT, continuing into a UNION chain when the
// keyword follows. Mixing UNION and UNION ALL in one chain is rejected.
func (p *parser) selectOrUnion() (Statement, error) {
	first, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.at(TokKeyword, "UNION") {
		return first, nil
	}
	u := UnionStmt{Selects: []SelectStmt{first.(SelectStmt)}}
	allSet := false
	for p.accept(TokKeyword, "UNION") {
		all := p.accept(TokKeyword, "ALL")
		if !allSet {
			u.All = all
			allSet = true
		} else if u.All != all {
			return nil, p.errf("cannot mix UNION and UNION ALL in one chain")
		}
		next, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		u.Selects = append(u.Selects, next.(SelectStmt))
	}
	return u, nil
}

func (p *parser) selectStmt() (Statement, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := SelectStmt{Limit: -1}
	s.Distinct = p.accept(TokKeyword, "DISTINCT")
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	s.From = from
	for {
		var kind JoinKind
		switch {
		case p.at(TokKeyword, "JOIN") || p.at(TokKeyword, "INNER"):
			p.accept(TokKeyword, "INNER")
			kind = JoinInner
		case p.at(TokKeyword, "LEFT"):
			p.next()
			p.accept(TokKeyword, "OUTER")
			kind = JoinLeft
		default:
			goto joinsDone
		}
		if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
			return nil, err
		}
		tr, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, Join{Kind: kind, Table: tr, On: on})
	}
joinsDone:
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, g)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		h, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, key)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		s.Limit = n
	}
	if p.accept(TokKeyword, "OFFSET") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		s.Offset = n
	}
	return s, nil
}

func (p *parser) intLiteral() (int, error) {
	t, err := p.expect(TokNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.Text)
	}
	return n, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Expr: Star{}}, nil
	}
	// table.* form
	if p.cur().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokSymbol && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokSymbol && p.toks[p.pos+2].Text == "*" {
		tbl := p.next().Text
		p.next()
		p.next()
		return SelectItem{Expr: Star{Table: tbl}}, nil
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	} else if p.cur().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) tableRef() (TableRef, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: t.Text}
	if p.accept(TokKeyword, "AS") {
		a, err := p.expect(TokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a.Text
	} else if p.cur().Kind == TokIdent {
		tr.Alias = p.next().Text
	}
	return tr, nil
}

// Expression grammar, loosest to tightest:
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | predicate
//	predicate := addExpr [compOp addExpr | IS [NOT] NULL | [NOT] IN (...) |
//	             [NOT] BETWEEN addExpr AND addExpr | [NOT] LIKE addExpr]
//	addExpr := mulExpr (('+'|'-') mulExpr)*
//	mulExpr := unary (('*'|'/') unary)*
//	unary   := '-' unary | primary
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Not{Inner: inner}, nil
	}
	return p.predicate()
}

var compOps = map[string]BinaryOp{
	"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) predicate() (Expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokSymbol {
		if op, ok := compOps[p.cur().Text]; ok {
			p.next()
			right, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return Binary{Op: op, Left: left, Right: right}, nil
		}
	}
	negate := false
	if p.at(TokKeyword, "NOT") {
		// lookahead: NOT IN / NOT BETWEEN / NOT LIKE
		nxt := p.toks[p.pos+1]
		if nxt.Kind == TokKeyword && (nxt.Text == "IN" || nxt.Text == "BETWEEN" || nxt.Text == "LIKE") {
			p.next()
			negate = true
		}
	}
	switch {
	case p.accept(TokKeyword, "IS"):
		neg := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return IsNull{Inner: left, Negate: neg}, nil
	case p.accept(TokKeyword, "IN"):
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return In{Inner: left, List: list, Negate: negate}, nil
	case p.accept(TokKeyword, "BETWEEN"):
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return Between{Inner: left, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.accept(TokKeyword, "LIKE"):
		pat, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return Like{Inner: left, Pattern: pat, Negate: negate}, nil
	}
	return left, nil
}

func (p *parser) addExpr() (Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.accept(TokSymbol, "+"):
			op = OpAdd
		case p.accept(TokSymbol, "-"):
			op = OpSub
		default:
			return left, nil
		}
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.accept(TokSymbol, "*"):
			op = OpMul
		case p.accept(TokSymbol, "/"):
			op = OpDiv
		default:
			return left, nil
		}
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		inner, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Neg{Inner: inner}, nil
	}
	return p.primary()
}

var textModes = map[string]TextMatchMode{
	"CONTAINS": MatchContains, "FUZZY": MatchFuzzy,
	"SYNONYM": MatchSynonym, "MATCHES": MatchAll,
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return Literal{Value: value.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return Literal{Value: value.NewInt(n)}, nil
	case TokString:
		p.next()
		return Literal{Value: value.NewString(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return Literal{Value: value.Null}, nil
		case "TRUE":
			p.next()
			return Literal{Value: value.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return Literal{Value: value.NewBool(false)}, nil
		case "CONTAINS", "FUZZY", "MATCHES", "SYNONYM":
			return p.textMatch(textModes[t.Text])
		}
		return nil, p.errf("unexpected keyword %q in expression", t.Text)
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "*" {
			// COUNT(*) reaches primary through the argument list.
			p.next()
			return Star{}, nil
		}
		return nil, p.errf("unexpected %q in expression", t.Text)
	case TokIdent:
		p.next()
		// Function call?
		if p.accept(TokSymbol, "(") {
			call := Call{Name: strings.ToUpper(t.Text)}
			if !p.accept(TokSymbol, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokSymbol, ",") {
						break
					}
				}
				if _, err := p.expect(TokSymbol, ")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		// Qualified column?
		if p.accept(TokSymbol, ".") {
			c, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			return ColumnRef{Table: t.Text, Column: c.Text}, nil
		}
		return ColumnRef{Column: t.Text}, nil
	default:
		return nil, p.errf("unexpected end of input")
	}
}

// textMatch parses MODE(column, queryExpr). SYNONYM also accepts the
// spelled-out form SYNONYM OF(column, q) for readability.
func (p *parser) textMatch(mode TextMatchMode) (Expr, error) {
	p.next() // consume mode keyword
	if mode == MatchSynonym {
		p.accept(TokKeyword, "OF")
	}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	colTok, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	col := ColumnRef{Column: colTok.Text}
	if p.accept(TokSymbol, ".") {
		c2, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		col = ColumnRef{Table: colTok.Text, Column: c2.Text}
	}
	if _, err := p.expect(TokSymbol, ","); err != nil {
		return nil, err
	}
	q, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return TextMatch{Col: col, Query: q, Mode: mode}, nil
}

func (p *parser) insertStmt() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	s := InsertStmt{Table: t.Text}
	if p.accept(TokSymbol, "(") {
		for {
			c, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, c.Text)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	return s, nil
}

func (p *parser) updateStmt() (Statement, error) {
	p.next() // UPDATE
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	s := UpdateStmt{Table: t.Text}
	if _, err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Set = append(s.Set, Assignment{Column: c.Text, Expr: e})
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	s := DeleteStmt{Table: t.Text}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *parser) createStmt() (Statement, error) {
	p.next() // CREATE
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	s := CreateTableStmt{Table: t.Text}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		if p.accept(TokKeyword, "PRIMARY") {
			if _, err := p.expect(TokKeyword, "KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			for {
				k, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				s.Key = append(s.Key, k.Text)
				if !p.accept(TokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
		} else {
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			typ, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			cd := ColumnDef{Name: name.Text, Type: typ.Text}
			if p.accept(TokKeyword, "NOT") {
				if _, err := p.expect(TokKeyword, "NULL"); err != nil {
					return nil, err
				}
				cd.NotNull = true
			}
			s.Columns = append(s.Columns, cd)
		}
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	if len(s.Columns) == 0 {
		return nil, p.errf("CREATE TABLE %s has no columns", s.Table)
	}
	return s, nil
}
