package federation

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cohera/internal/journal"
	"cohera/internal/obs"
	"cohera/internal/plan"
	"cohera/internal/schema"
	"cohera/internal/storage"
)

// Anti-entropy replica repair. Federated DML is best-effort across
// replicas: statements that cannot reach a copy journal a write intent
// instead (see dml.go). The Reconciler is the background half of that
// contract — it drains journaled intents into recovered replicas,
// detects divergence by comparing content digests, and falls back to
// copying rows from a healthy peer when the journal cannot be trusted
// (torn tail) or was lost entirely. This closes the loop the paper's
// availability stance opens: copies may miss writes while a site is
// down, but they provably converge once it returns.

// stalePenalty is the per-pending-intent price multiplier both
// optimizers apply to a stale replica: price × (1 + stalePenalty × n).
// High enough that one pending write loses against any healthy peer
// under normal load spreads, low enough that a stale replica still
// serves when it is the only copy left.
const stalePenalty = 4.0

var (
	metStaleReads = obs.Default().Counter("cohera_antientropy_stale_reads_total",
		"Fragment reads served by a replica with journaled intents pending.", nil)
	metCopyRepairs = obs.Default().Counter("cohera_antientropy_copy_repairs_total",
		"Replicas repaired by copying rows from a healthy peer.", nil)
	metDivergence = obs.Default().Counter("cohera_antientropy_divergence_total",
		"Replica divergences detected by digest comparison.", nil)
	metConvergence = obs.Default().Histogram("cohera_antientropy_convergence_seconds",
		"Time from detecting a replica divergence to its convergence.", nil)
	metLastSuccess = obs.Default().Gauge("cohera_reconciler_last_success_unix",
		"Unix time of the last reconciliation pass that completed without error.", nil)
)

// metRepairSeconds is the per-kind repair latency histogram: "replay"
// times one journaled intent's application, "copy" one full
// copy-repair of a divergent replica.
func metRepairSeconds(kind string) *obs.Histogram {
	return obs.Default().Histogram("cohera_antientropy_repair_seconds",
		"Anti-entropy repair latency, by kind (replay = one journaled intent, copy = one replica rebuild).",
		obs.Labels{"kind": kind})
}

// RepairReport summarizes one reconciliation pass.
type RepairReport struct {
	// Replayed counts journaled intents applied to recovered replicas.
	Replayed int
	// CopyRepaired counts replicas rebuilt from a healthy peer.
	CopyRepaired int
	// Divergent counts replicas whose digest disagreed with their
	// fragment's repair source during this pass (before repair).
	Divergent int
	// Pending is the journal backlog remaining after the pass.
	Pending int
	// Skipped counts repair opportunities deferred because a replica
	// was unavailable or not yet healthy — the breaker gating that
	// keeps repair traffic off half-open sites.
	Skipped int
}

// ReplicaState is one replica's repair view, for tests and debugging.
type ReplicaState struct {
	Table    string
	Fragment string
	Site     string
	Pending  int
	Lost     bool
	Healthy  bool
	Digest   storage.TableDigest
}

// Reconciler runs anti-entropy passes over a federation. Create with
// NewReconciler; run synchronously with RunOnce (tests, chaos
// harnesses) or in the background with Start/Stop.
type Reconciler struct {
	// Interval is the background loop period; 0 means 50ms.
	Interval time.Duration
	// Clock supplies timestamps for convergence latency; nil means
	// time.Now. Injectable for deterministic tests.
	Clock func() time.Time

	f *Federation

	mu sync.Mutex
	// staleSince records when a replica ("table/frag@site") was first
	// seen divergent, feeding the convergence latency histogram.
	staleSince map[string]time.Time

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewReconciler builds a reconciler for f.
func NewReconciler(f *Federation) *Reconciler {
	return &Reconciler{
		f:          f,
		staleSince: make(map[string]time.Time),
		stopCh:     make(chan struct{}),
	}
}

func (r *Reconciler) now() time.Time {
	if r.Clock != nil {
		return r.Clock()
	}
	return time.Now()
}

// Start launches the background repair loop. It stops when ctx is
// cancelled or Stop is called.
func (r *Reconciler) Start(ctx context.Context) {
	iv := r.Interval
	if iv <= 0 {
		iv = 50 * time.Millisecond
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		tick := time.NewTicker(iv)
		defer tick.Stop()
		for {
			select {
			case <-r.stopCh:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				//lint:ignore errdrop background repair failures are retried next tick; progress and backlog are surfaced via the antientropy metrics
				_, _ = r.RunOnce(ctx)
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to
// call more than once, and a no-op if Start was never called.
func (r *Reconciler) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.wg.Wait()
}

// RunOnce performs one full reconciliation pass: for every global
// table, drain journaled intents into available replicas, then compare
// replica digests per fragment and copy-repair divergent copies whose
// journal has nothing (trustworthy) left to say.
func (r *Reconciler) RunOnce(ctx context.Context) (RepairReport, error) {
	// Repair passes register in the in-flight registry like queries do:
	// /debug/queries shows a long-running pass, and an operator cancel
	// stops it between repairs with a typed cause.
	if !r.f.DisableQueryObservability {
		var aq *obs.ActiveQuery
		ctx, aq = obs.ActiveQueries().Register(ctx, "repair", "anti-entropy pass")
		defer aq.Finish()
	}
	var rep RepairReport
	for _, gt := range r.f.GlobalTables() {
		if err := ctx.Err(); err != nil {
			rep.Pending = r.f.Journal().PendingTotal()
			return rep, context.Cause(ctx)
		}
		frags := r.f.FragmentsOf(gt)
		r.drainTable(ctx, gt, frags, &rep)
		wholeTable := allDedicated(frags, gt)
		for _, frag := range frags {
			r.repairFragment(ctx, gt, frags, frag, wholeTable, &rep)
		}
	}
	rep.Pending = r.f.Journal().PendingTotal()
	metLastSuccess.Set(r.now().Unix())
	return rep, nil
}

// drainTable replays pending intents for every replica site of a
// table. The site-level gate is Available (alive and breaker not
// open); each individual intent then passes CheckAvailable, which
// consumes the breaker's half-open probe quota — so replay into a
// recovering site is bounded probe traffic, never a hammer.
func (r *Reconciler) drainTable(ctx context.Context, gt *GlobalTable, frags []*Fragment, rep *RepairReport) {
	for _, site := range replicaSites(frags) {
		grp := r.f.Journal().PeekGroup(site.Name(), gt.Def.Name)
		if grp == nil || grp.Pending() == 0 {
			continue
		}
		if grp.Lost() {
			continue // copy-repair path; replaying a torn log could double-apply
		}
		if !site.Available() {
			rep.Skipped++
			continue
		}
		n, err := grp.Drain(ctx, func(it journal.Intent) error {
			return r.applyIntent(ctx, site, gt, it)
		})
		rep.Replayed += n
		if err != nil {
			// Mid-drain failure (probe quota exhausted, site dropped
			// again): the rest of the backlog stays pending for the
			// next pass.
			rep.Skipped++
		}
	}
}

// applyIntent applies one journaled intent to a replica.
func (r *Reconciler) applyIntent(ctx context.Context, site *Site, gt *GlobalTable, it journal.Intent) error {
	if err := site.CheckAvailable(ctx); err != nil {
		return err
	}
	defer func(start time.Time) { metRepairSeconds("replay").Observe(time.Since(start)) }(time.Now())
	switch it.Op {
	case journal.OpUpsert:
		// The WAL-aware path: a replayed intent is durable at the
		// replica before the journal marks it applied.
		if err := site.DB().UpsertRow(gt.Def.Clone(gt.Def.Name), storage.Row(it.Row)); err != nil {
			return err
		}
	case journal.OpSQL:
		if _, err := site.DB().Exec(it.SQL); err != nil {
			if errors.Is(err, schema.ErrNoTable) {
				return nil // replica never materialized the table: live no-op
			}
			return err
		}
	default:
		return fmt.Errorf("federation: unknown intent op %q", it.Op)
	}
	site.Breaker().RecordSuccess()
	return nil
}

// repairFragment compares one fragment's replica digests and
// copy-repairs divergent replicas from a healthy, journal-clean peer.
func (r *Reconciler) repairFragment(ctx context.Context, gt *GlobalTable, frags []*Fragment, frag *Fragment, wholeTable bool, rep *RepairReport) {
	replicas := frag.Replicas()
	if len(replicas) < 2 {
		return // nothing to compare against
	}
	// The repair source must be fully healthy (closed breaker — repair
	// reads never lean on a recovering site) with a clean, fully
	// drained journal: its content then reflects every accepted write.
	type candidate struct {
		site   *Site
		digest storage.TableDigest
		grp    *journal.Group
	}
	var source *candidate
	var others []*candidate
	for _, site := range replicas {
		if site.HealthScore() < 1 {
			rep.Skipped++
			continue
		}
		c := &candidate{site: site, grp: r.f.Journal().PeekGroup(site.Name(), gt.Def.Name)}
		c.digest = r.fragmentDigest(site, gt, frags, frag, wholeTable)
		clean := c.grp == nil || (c.grp.Pending() == 0 && !c.grp.Lost())
		if source == nil && clean {
			source = c
		} else {
			others = append(others, c)
		}
	}
	if source == nil {
		rep.Skipped++ // no trustworthy copy to compare against yet
		return
	}
	for _, c := range others {
		key := gt.Def.Name + "/" + frag.ID + "@" + c.site.Name()
		if c.digest.Equal(source.digest) && (c.grp == nil || (c.grp.Pending() == 0 && !c.grp.Lost())) {
			r.noteConverged(key)
			continue
		}
		if c.grp != nil && c.grp.Pending() > 0 && !c.grp.Lost() {
			// Lagging but journaled: the drain will close the gap; a
			// copy here would race the backlog.
			continue
		}
		rep.Divergent++
		r.noteDivergent(key)
		if err := ctx.Err(); err != nil {
			return
		}
		if err := r.copyRepair(gt, frags, frag, wholeTable, source.site, c.site); err != nil {
			rep.Skipped++
			continue
		}
		rep.CopyRepaired++
		metCopyRepairs.Inc()
		r.noteConverged(key)
	}
}

// copyRepair rebuilds the target replica's fragment content from the
// source replica, under the target group's exclusive lock so no
// foreground write interleaves with the copy. On success the target's
// journal group is reset: the copied content already reflects every
// write the journal could have replayed.
func (r *Reconciler) copyRepair(gt *GlobalTable, frags []*Fragment, frag *Fragment, wholeTable bool, src, dst *Site) error {
	defer func(start time.Time) { metRepairSeconds("copy").Observe(time.Since(start)) }(time.Now())
	grp := r.f.Journal().Group(dst.Name(), gt.Def.Name)
	return grp.Exclusive(func(pending int, lost bool) error {
		if pending > 0 && !lost {
			// A write slipped in between our check and the lock; let
			// the drain handle it and repair next pass.
			return fmt.Errorf("federation: copy-repair raced a journaled write at %s", dst.Name())
		}
		rows, err := r.fragmentRows(src, gt, frags, frag, wholeTable)
		if err != nil {
			return err
		}
		// Remove the target's in-scope rows, then install the source's.
		// Fragment scope means only the rows routeRow assigns here are
		// doomed; whole-table scope truncates. Either way the swap runs
		// through RestoreRows so it lands in the target's WAL as one
		// commit-latch batch — a crash mid-repair replays to a state the
		// next pass repairs again, never a half-written one it trusts.
		var doomed []int64
		if !wholeTable {
			dstTbl, err := dst.DB().Table(gt.Def.Name)
			if err == nil {
				ev := &plan.Evaluator{}
				var scanErr error
				dstTbl.Scan(func(id int64, row storage.Row) bool {
					routed, rerr := routeRow(frags, gt.Def, row, ev)
					if rerr != nil {
						scanErr = rerr
						return false
					}
					if routed == frag {
						doomed = append(doomed, id)
					}
					return true
				})
				if scanErr != nil {
					return scanErr
				}
			} else if !errors.Is(err, schema.ErrNoTable) {
				return err
			}
		}
		return dst.DB().RestoreRows(gt.Def.Clone(gt.Def.Name), wholeTable, doomed, rows)
	})
}

// fragmentDigest computes a replica's content digest at fragment
// scope. With wholeTable scope (every replica of every fragment is
// dedicated) the maintained O(1) table digest is used; otherwise the
// fragment's membership is decided by routeRow — the same rule INSERT
// uses to place rows — so digest scope and copy scope always agree. A
// replica without the table digests as empty.
func (r *Reconciler) fragmentDigest(site *Site, gt *GlobalTable, frags []*Fragment, frag *Fragment, wholeTable bool) storage.TableDigest {
	tbl, err := site.DB().Table(gt.Def.Name)
	if err != nil {
		return storage.TableDigest{}
	}
	if wholeTable {
		return tbl.Digest()
	}
	ev := &plan.Evaluator{}
	return tbl.DigestFunc(func(row storage.Row) bool {
		routed, rerr := routeRow(frags, gt.Def, row, ev)
		return rerr == nil && routed == frag
	})
}

// fragmentRows snapshots the source replica's rows for a fragment.
func (r *Reconciler) fragmentRows(site *Site, gt *GlobalTable, frags []*Fragment, frag *Fragment, wholeTable bool) ([]storage.Row, error) {
	tbl, err := site.DB().Table(gt.Def.Name)
	if err != nil {
		if errors.Is(err, schema.ErrNoTable) {
			return nil, nil // source holds nothing: the copy empties the target
		}
		return nil, err
	}
	var out []storage.Row
	ev := &plan.Evaluator{}
	var scanErr error
	tbl.Scan(func(_ int64, row storage.Row) bool {
		if !wholeTable {
			routed, rerr := routeRow(frags, gt.Def, row, ev)
			if rerr != nil {
				scanErr = rerr
				return false
			}
			if routed != frag {
				return true
			}
		}
		out = append(out, row)
		return true
	})
	return out, scanErr
}

// noteDivergent records the first sighting of a divergent replica.
func (r *Reconciler) noteDivergent(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, seen := r.staleSince[key]; !seen {
		r.staleSince[key] = r.now()
		metDivergence.Inc()
	}
}

// noteConverged closes a divergence episode, feeding its duration into
// the convergence latency histogram.
func (r *Reconciler) noteConverged(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if since, seen := r.staleSince[key]; seen {
		metConvergence.Observe(r.now().Sub(since))
		delete(r.staleSince, key)
	}
}

// Status reports every replica's repair state, for tests and the
// chaos harness.
func (r *Reconciler) Status() []ReplicaState {
	var out []ReplicaState
	for _, gt := range r.f.GlobalTables() {
		frags := r.f.FragmentsOf(gt)
		wholeTable := allDedicated(frags, gt)
		for _, frag := range frags {
			for _, site := range frag.Replicas() {
				st := ReplicaState{
					Table: gt.Def.Name, Fragment: frag.ID, Site: site.Name(),
					Healthy: site.HealthScore() == 1,
					Digest:  r.fragmentDigest(site, gt, frags, frag, wholeTable),
				}
				if grp := r.f.Journal().PeekGroup(site.Name(), gt.Def.Name); grp != nil {
					st.Pending = grp.Pending()
					st.Lost = grp.Lost()
				}
				out = append(out, st)
			}
		}
	}
	return out
}

// allDedicated reports whether every replica site of every fragment
// hosts exactly one fragment of the table — the layout where a site's
// local table IS the fragment and the O(1) whole-table digest applies.
// Any co-hosting site forces routeRow-scoped digests for the whole
// table so replicas with different layouts remain comparable.
func allDedicated(frags []*Fragment, gt *GlobalTable) bool {
	hostCount := make(map[*Site]int)
	for _, frag := range frags {
		for _, site := range frag.Replicas() {
			hostCount[site]++
		}
	}
	for _, n := range hostCount {
		if n > 1 {
			return false
		}
	}
	return true
}

// replicaSites returns the distinct sites hosting any of the
// fragments, in stable name order.
func replicaSites(frags []*Fragment) []*Site {
	seen := make(map[*Site]bool)
	var out []*Site
	for _, frag := range frags {
		for _, site := range frag.Replicas() {
			if !seen[site] {
				seen[site] = true
				out = append(out, site)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
