// Package errdrop is a coheralint fixture for the errdrop analyzer:
// blank-discarded and bare-call-dropped errors, the never-fails
// exemptions, and the //lint:ignore suppression path.
package errdrop

import (
	"fmt"
	"os"
	"strings"
)

func fails() error { return nil }

func failsWith() (int, error) { return 0, nil }

func dropBlank() {
	_ = fails() // want `error result of fails discarded with _`
}

func dropTuple() {
	n, _ := failsWith() // want `error result of failsWith discarded with _`
	use(n)
}

func dropBare() {
	fails() // want `error result of fails dropped by bare call`
}

func kept() error {
	if err := fails(); err != nil { // negative: error is checked
		return err
	}
	return nil
}

func deferred(f *os.File) {
	defer f.Close() // negative: deferred calls are exempt by idiom
}

func neverFailing() string {
	var b strings.Builder
	b.WriteString("never fails") // negative: strings.Builder never fails
	fmt.Println(b.String())      // negative: fmt print family is exempt
	return b.String()
}

func suppressed() {
	//lint:ignore errdrop fixture exercises suppression of a deliberate drop
	_ = fails() // negative: the directive above covers this line
}

func wildcard() {
	//lint:ignore * a wildcard directive suppresses every analyzer
	fails() // negative: wildcard suppression
}

func wrongName() {
	//lint:ignore sleepsync the analyzer name must match for suppression
	_ = fails() // want `error result of fails discarded with _`
}

func use(int) {}
