package federation

import (
	"context"
	"strings"
	"testing"
	"time"

	"cohera/internal/obs"
)

// TestAgoricObservedLatencyPrior is the feedback-loop proof: a site
// whose cost model promises speed but whose *measured* latency is bad
// loses the auction once enough observations accumulate.
func TestAgoricObservedLatencyPrior(t *testing.T) {
	liar := NewSite("prior-liar") // cheap model, slow in practice
	honest := NewSite("prior-honest")
	liar.SetCost(CostModel{Latency: time.Millisecond})
	honest.SetCost(CostModel{Latency: 2 * time.Millisecond})
	frag := NewFragment("f", nil, liar, honest)
	a := NewAgoric()
	ctx := context.Background()

	// Cold start: no observations, so the model alone ranks the liar first.
	ranked := a.Rank(ctx, frag, 10)
	if len(ranked) != 2 || ranked[0] != liar {
		t.Fatalf("cold ranking should follow the model, got %v", names(ranked))
	}
	if a.PrioredBids() != 0 {
		t.Fatalf("no bids should be priored before observations, got %d", a.PrioredBids())
	}

	// Reality disagrees with the model: the liar measures 50ms, the
	// honest site 100µs. Feed past PriorMinSamples.
	for i := 0; i < 2*a.PriorMinSamples; i++ {
		liar.ObserveLatency(50 * time.Millisecond)
		honest.ObserveLatency(100 * time.Microsecond)
	}
	ranked = a.Rank(ctx, frag, 10)
	if len(ranked) != 2 || ranked[0] != honest {
		t.Errorf("observed latency should demote the liar, got %v", names(ranked))
	}
	if a.PrioredBids() == 0 {
		t.Error("priored-bid counter should move once the prior engages")
	}

	// The prior can be disabled: zero weight restores pure model ranking.
	off := &Agoric{BidTimeout: 50 * time.Millisecond, Greed: 1.0}
	ranked = off.Rank(ctx, frag, 10)
	if len(ranked) != 2 || ranked[0] != liar {
		t.Errorf("PriorWeight 0 should ignore observations, got %v", names(ranked))
	}
}

// TestSitePriorIsolation: the prior histogram is per-Site, so another
// site reusing the same name (shared /metrics series) cannot poison
// this site's ranking.
func TestSitePriorIsolation(t *testing.T) {
	a := NewSite("prior-shared-name")
	b := NewSite("prior-shared-name")
	for i := 0; i < 16; i++ {
		a.ObserveLatency(time.Second)
	}
	if _, n := b.ObservedLatency(); n != 0 {
		t.Errorf("site b observed %d samples from site a", n)
	}
	if p50, n := a.ObservedLatency(); n != 16 || p50 <= 0 {
		t.Errorf("site a prior = (%v, %d)", p50, n)
	}
}

// TestSiteLatencyHistogramExported: SubQuery feeds the shared
// cohera_site_subquery_seconds series that /metrics exposes.
func TestSiteLatencyHistogramExported(t *testing.T) {
	fed, _, _ := twoFragFed(t)
	if _, err := fed.Query(context.Background(), "SELECT sku FROM parts"); err != nil {
		t.Fatal(err)
	}
	h := obs.Default().Histogram("cohera_site_subquery_seconds",
		"Observed wall-clock latency of subqueries served per site.",
		obs.Labels{"site": "east-1"})
	if h.Count() == 0 {
		t.Error("shared per-site histogram did not record the subquery")
	}
	var b strings.Builder
	if err := obs.Default().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `cohera_site_subquery_seconds_bucket{site="east-1",le=`) {
		t.Error("per-site latency series missing from the exposition")
	}
}

func TestQueryTracedCarriesTraceID(t *testing.T) {
	fed, _, _ := twoFragFed(t)
	_, trace, err := fed.QueryTraced(context.Background(), "SELECT sku FROM parts WHERE region = 'east'")
	if err != nil {
		t.Fatal(err)
	}
	if trace.TraceID == "" {
		t.Fatal("select trace must name its span tree")
	}
	spans := obs.DefaultTracer().Spans(trace.TraceID)
	if len(spans) == 0 {
		t.Fatal("no spans recorded under the trace id")
	}
	var sawSelect, sawGather, sawSub bool
	for _, sp := range spans {
		switch sp.Name {
		case "federation.select":
			sawSelect = true
		case "federation.gather", "federation.gatherstream":
			sawGather = true
		case "site.subquery", "site.subquerystream":
			sawSub = true
		}
	}
	if !sawSelect || !sawGather || !sawSub {
		t.Errorf("span names incomplete: select=%v gather=%v subquery=%v", sawSelect, sawGather, sawSub)
	}
}

func TestExecTracedDML(t *testing.T) {
	fed, _, fragWest := twoFragFed(t)
	ctx := context.Background()

	// INSERT: the trace names every replica written.
	_, dr, trace, err := fed.ExecTraced(ctx,
		"INSERT INTO parts (sku, name, price, region) VALUES ('W9', 'saw', 10.0, 'west')")
	if err != nil || dr.Rows != 1 {
		t.Fatalf("insert: %+v, %v", dr, err)
	}
	if trace.TraceID == "" {
		t.Error("insert trace must carry a trace id")
	}
	sites := trace.FragmentSites["parts/west"]
	if sites != "west-1,west-2" {
		t.Errorf("insert FragmentSites = %q, want both replicas", sites)
	}
	if len(obs.DefaultTracer().Spans(trace.TraceID)) == 0 {
		t.Error("insert recorded no spans")
	}

	// UPDATE with a predicate disjoint from east: east prunes, west writes.
	_, dr, trace, err = fed.ExecTraced(ctx,
		"UPDATE parts SET price = 11.0 WHERE region = 'west'")
	if err != nil {
		t.Fatal(err)
	}
	if dr.Rows == 0 {
		t.Errorf("update affected no rows: %+v", dr)
	}
	if trace.PrunedFragments != 1 {
		t.Errorf("pruned = %d, want 1 (east disjoint)", trace.PrunedFragments)
	}
	if got := trace.FragmentSites["parts/west"]; got != "west-1,west-2" {
		t.Errorf("update FragmentSites = %q", got)
	}

	// A down replica shows up as a failover in the trace.
	fragWest.Replicas()[0].SetDown(true)
	_, _, trace, err = fed.ExecTraced(ctx, "DELETE FROM parts WHERE region = 'west'")
	if err != nil {
		t.Fatal(err)
	}
	if trace.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", trace.Failovers)
	}
	if got := trace.FragmentSites["parts/west"]; got != "west-2" {
		t.Errorf("delete FragmentSites = %q, want only the live replica", got)
	}

	// SELECT through ExecTraced still yields the select trace.
	res, dr, trace, err := fed.ExecTraced(ctx, "SELECT sku FROM parts WHERE region = 'east'")
	if err != nil || dr != nil || res == nil {
		t.Fatalf("select via ExecTraced: res=%v dr=%v err=%v", res, dr, err)
	}
	if trace == nil || trace.TraceID == "" {
		t.Error("select via ExecTraced lost its trace")
	}
}
