package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegisterCancelFinishLifecycle(t *testing.T) {
	reg := NewQueryRegistry()
	ctx, aq := reg.Register(context.Background(), "select", "SELECT 1")
	if aq == nil || aq.ID() == 0 {
		t.Fatal("registration returned no handle")
	}
	if reg.Len() != 1 {
		t.Fatalf("Len = %d, want 1", reg.Len())
	}
	snaps := reg.Snapshot()
	if len(snaps) != 1 || snaps[0].SQL != "SELECT 1" || snaps[0].Kind != "select" {
		t.Fatalf("snapshot = %+v", snaps)
	}
	if !reg.Cancel(aq.ID()) {
		t.Fatal("Cancel reported unknown id for a live query")
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("context not canceled after registry Cancel")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, ErrQueryCanceled) {
		t.Fatalf("cause = %v, want ErrQueryCanceled", cause)
	}
	// A canceled query stays listed until its owner observes the
	// cancellation and finishes; Finish then unregisters, idempotently.
	if reg.Len() != 1 {
		t.Fatalf("canceled query dropped early: Len = %d", reg.Len())
	}
	aq.Finish()
	aq.Finish()
	if reg.Len() != 0 {
		t.Fatalf("Len after Finish = %d, want 0", reg.Len())
	}
	if reg.Cancel(aq.ID()) {
		t.Fatal("Cancel found a finished query")
	}
}

func TestFinishWithoutCancelReleasesCleanly(t *testing.T) {
	reg := NewQueryRegistry()
	ctx, aq := reg.Register(context.Background(), "select", "SELECT 2")
	aq.Finish()
	// Finish releases the context node with a plain cause: consumers
	// must never see an operator cancel they didn't ask for.
	if cause := context.Cause(ctx); errors.Is(cause, ErrQueryCanceled) {
		t.Fatalf("Finish installed ErrQueryCanceled: %v", cause)
	}
}

func TestNestedRegisterIsGuarded(t *testing.T) {
	reg := NewQueryRegistry()
	ctx, outer := reg.Register(context.Background(), "explain", "EXPLAIN ANALYZE SELECT 1")
	inner, nested := reg.Register(ctx, "select", "SELECT 1")
	if nested != nil {
		t.Fatalf("nested registration returned a handle: %+v", nested)
	}
	if inner != ctx {
		t.Fatal("nested registration replaced the context")
	}
	// The nil handle must be fully inert.
	nested.SetTraceID("tr-x")
	nested.Cancel()
	nested.Finish()
	if reg.Len() != 1 {
		t.Fatalf("nil handle disturbed the outer registration: Len = %d", reg.Len())
	}
	// Stages opened in the nested scope land in the OUTER query's tree.
	_, st := StartStage(inner, "merge", "")
	st.AddRows(3)
	snaps := outer.Stages().Snapshot()
	if len(snaps) != 1 || snaps[0].Stage != "merge" || snaps[0].Rows != 3 {
		t.Fatalf("outer stages = %+v", snaps)
	}
	outer.Finish()
}

func TestMarkDegradedAndStaleReachOuterQuery(t *testing.T) {
	// No-ops outside a registered query.
	MarkDegraded(context.Background())
	MarkStale(context.Background())

	reg := NewQueryRegistry()
	ctx, aq := reg.Register(context.Background(), "select", "SELECT 3")
	defer aq.Finish()
	// Marks travel from nested stage contexts back to the query.
	sctx, _ := StartStage(ctx, "fragment", "f0")
	MarkDegraded(sctx)
	MarkStale(sctx)
	snaps := reg.Snapshot()
	if len(snaps) != 1 || !snaps[0].Degraded || !snaps[0].Stale {
		t.Fatalf("snapshot = %+v", snaps)
	}
}

func TestStageTreeParenting(t *testing.T) {
	reg := NewQueryRegistry()
	ctx, aq := reg.Register(context.Background(), "select", "SELECT 4")
	defer aq.Finish()
	mctx, merge := StartStage(ctx, "merge", "")
	_, fragA := StartStage(mctx, "fragment", "hotels/f0")
	_, fragB := StartStage(mctx, "fragment", "hotels/f1")
	fragA.AddRows(1)
	fragB.AddRows(2)
	merge.AddRows(3)
	snaps := aq.Stages().Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("stages = %d, want 3", len(snaps))
	}
	if snaps[0].Stage != "merge" || snaps[0].Parent != -1 {
		t.Fatalf("root stage = %+v", snaps[0])
	}
	for _, s := range snaps[1:] {
		if s.Stage != "fragment" || s.Parent != snaps[0].ID {
			t.Fatalf("child stage not parented under merge: %+v", s)
		}
	}
}

func TestStageStatsNilSafe(t *testing.T) {
	var s *StageStats
	s.AddRows(5)
	s.AddBatch(2, 100)
	s.BlockedUpstream(time.Second)
	s.BlockedDownstream(time.Second)
	s.NotePeak(9)
	s.SetDetail("x")
	s.Fail(errors.New("boom"))
	s.Done()
	if got := s.Snapshot(); got.Rows != 0 || got.Parent != -1 {
		t.Fatalf("nil snapshot = %+v", got)
	}
	if s.Name() != "" {
		t.Fatal("nil Name")
	}
}

func TestStageStatsCounters(t *testing.T) {
	s := NewStage("scan", "hotels")
	s.AddRows(10)
	s.AddBatch(5, 512)
	s.BlockedUpstream(2 * time.Millisecond)
	s.BlockedDownstream(3 * time.Millisecond)
	s.NotePeak(7)
	s.NotePeak(4) // watermark never regresses
	s.Done()
	snap := s.Snapshot()
	if snap.Rows != 15 || snap.Batches != 1 || snap.Bytes != 512 {
		t.Fatalf("counters = %+v", snap)
	}
	if snap.FirstRowNs == 0 {
		t.Fatal("time-to-first-row not stamped")
	}
	if snap.BlockedUpstreamNs < (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("blocked upstream = %d", snap.BlockedUpstreamNs)
	}
	if snap.BlockedDownstreamNs < (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("blocked downstream = %d", snap.BlockedDownstreamNs)
	}
	if snap.PeakBuffered != 7 {
		t.Fatalf("peak = %d, want 7", snap.PeakBuffered)
	}
	if !snap.Done {
		t.Fatal("stage not done")
	}
	wall := snap.WallNs
	time.Sleep(time.Millisecond)
	s.Done() // idempotent: the wall clock stays frozen
	if again := s.Snapshot().WallNs; again != wall {
		t.Fatalf("Done moved the wall clock: %d -> %d", wall, again)
	}
}

func TestStageStatsFail(t *testing.T) {
	s := NewStage("wrapper.fetch", "")
	s.Fail(errors.New("site down"))
	snap := s.Snapshot()
	if snap.Err != "site down" || !snap.Done {
		t.Fatalf("failed stage = %+v", snap)
	}
}

func TestTopStagesOrdersByBlockedUpstream(t *testing.T) {
	mk := func(name string, blocked int64) StageSnapshot {
		return StageSnapshot{Stage: name, BlockedUpstreamNs: blocked}
	}
	in := []StageSnapshot{mk("a", 10), mk("b", 40), mk("c", 20), mk("d", 30)}
	top := TopStages(in, 3)
	if len(top) != 3 || top[0].Stage != "b" || top[1].Stage != "d" || top[2].Stage != "c" {
		t.Fatalf("top = %+v", top)
	}
	if got := TopStages(nil, 3); got != nil {
		t.Fatalf("TopStages(nil) = %+v", got)
	}
	if got := TopStages(in, 0); got != nil {
		t.Fatalf("TopStages(n=0) = %+v", got)
	}
	if in[0].Stage != "a" {
		t.Fatal("TopStages mutated its input")
	}
}

// TestRegistryRaceHammer drives register/stage/cancel/snapshot/finish
// from many goroutines at once; its value is the -race run in CI.
func TestRegistryRaceHammer(t *testing.T) {
	reg := NewQueryRegistry()
	const workers = 8
	const rounds = 50
	stop := make(chan struct{})

	// Observer goroutines: snapshot and cancel whatever is in flight
	// while the workers churn.
	var observers sync.WaitGroup
	for i := 0; i < 2; i++ {
		observers.Add(1)
		go func() {
			defer observers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, q := range reg.Snapshot() {
					if q.ID%3 == 0 {
						reg.Cancel(q.ID)
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ctx, aq := reg.Register(context.Background(), "select",
					fmt.Sprintf("SELECT %d FROM w%d", i, w))
				sctx, st := StartStage(ctx, "merge", "")
				_, child := StartStage(sctx, "fragment", "f0")
				child.AddBatch(4, 64)
				st.AddRows(4)
				MarkDegraded(sctx)
				aq.SetTraceID(fmt.Sprintf("tr-%d-%d", w, i))
				child.Done()
				st.Done()
				aq.Finish()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	observers.Wait()
	if reg.Len() != 0 {
		t.Fatalf("registry not drained: %d in flight", reg.Len())
	}
}
