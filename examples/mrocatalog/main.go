// MRO catalog integration — the paper's first vignette. A distributor
// integrates supplier catalogs published as CSV, XML and scraped HTML:
// wrappers parse each format (the HTML one trained from two labeled
// examples), a shared pipeline normalizes currencies and delivery
// promises, products are classified into the MRO taxonomy, and the
// integrated catalog answers synonym, fuzzy and hierarchical queries.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"cohera/internal/core"
	"cohera/internal/schema"
	"cohera/internal/taxonomy"
	"cohera/internal/transform"
	"cohera/internal/value"
	"cohera/internal/workload"
	"cohera/internal/wrapper"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// rawDef is the shared shape all three wrappers emit.
func rawDef() *schema.Table {
	return schema.MustTable("raw_feed", []schema.Column{
		{Name: "part_no", Kind: value.KindString},
		{Name: "description", Kind: value.KindString},
		{Name: "unit_price", Kind: value.KindMoney},
		{Name: "lead_time", Kind: value.KindDuration},
		{Name: "on_hand", Kind: value.KindInt},
	})
}

func run() error {
	ctx := context.Background()
	in := core.New(core.Options{})
	in.DefineTaxonomy(workload.MROTaxonomy())
	for _, p := range workload.MROVocabulary() {
		in.Synonyms().Declare(append([]string{p.Canonical}, p.Variants...)...)
	}

	catalog := workload.CatalogDef()
	suppliers := workload.Suppliers(6, 12, 0.05, 2026)
	var specs []core.FragmentSpec
	for _, s := range suppliers {
		if _, err := in.AddSite(s.Name); err != nil {
			return err
		}
		specs = append(specs, core.FragmentSpec{ID: s.Name, Replicas: []string{s.Name}})
	}
	frags, err := in.DefineTable(catalog, specs...)
	if err != nil {
		return err
	}

	// Train the HTML wrapper once on the first HTML supplier's page.
	var htmlTpl wrapper.LRTemplate
	for _, s := range suppliers {
		if s.Format != workload.FormatHTML {
			continue
		}
		page := workload.RenderHTML(s)
		htmlTpl, err = wrapper.Induce(page,
			[]string{"part_no", "description", "unit_price", "lead_time", "on_hand"},
			[]wrapper.Example{label(s, 0), label(s, 1)})
		if err != nil {
			return fmt.Errorf("training wrapper: %w", err)
		}
		fmt.Printf("trained HTML wrapper on %s from 2 labeled records\n", s.Name)
		break
	}

	// Ingest every supplier through format wrapper + normalization +
	// taxonomy classification.
	totalDisc := 0
	for i, s := range suppliers {
		src, err := sourceFor(s, htmlTpl)
		if err != nil {
			return err
		}
		p, err := pipelineFor(in, s)
		if err != nil {
			return err
		}
		disc, err := in.Ingest(ctx, "catalog", frags[i], src, p)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		totalDisc += len(disc)
	}
	res, err := in.Query(ctx, "SELECT COUNT(*) FROM catalog")
	if err != nil {
		return err
	}
	fmt.Printf("integrated %s rows from %d suppliers (3 formats, 4 currencies); %d discrepancies for review\n\n",
		res.Rows[0][0], len(suppliers), totalDisc)

	// 1. The synonym query from the paper: black ink ≡ India ink.
	res, err = in.Query(ctx,
		"SELECT supplier, name, price FROM catalog WHERE SYNONYM(name, 'black ink') ORDER BY supplier LIMIT 5")
	if err != nil {
		return err
	}
	fmt.Println("vendors supplying black ink (SYNONYM search):")
	for _, r := range res.Rows {
		fmt.Printf("  %-12s %-28s %s\n", r[0].Str(), r[1].Str(), r[2])
	}

	// 2. The fuzzy probe.
	res, err = in.Query(ctx,
		"SELECT supplier, name FROM catalog WHERE FUZZY(name, 'drlls crdlss') LIMIT 5")
	if err != nil {
		return err
	}
	fmt.Println("\n'drlls: crdlss' (FUZZY):")
	for _, r := range res.Rows {
		fmt.Printf("  %-12s %s\n", r[0].Str(), r[1].Str())
	}

	// 3. Hierarchical taxonomy query: "refills" expands to the subtree.
	codes, err := in.ExpandCategories("mro", "refills")
	if err != nil {
		return err
	}
	res, err = in.Query(ctx, fmt.Sprintf(
		"SELECT supplier, name, category FROM catalog WHERE category IN ('%s') ORDER BY category LIMIT 6",
		strings.Join(codes, "', '")))
	if err != nil {
		return err
	}
	fmt.Printf("\n'refills' expands to %v; matching catalog entries:\n", codes)
	for _, r := range res.Rows {
		fmt.Printf("  %-12s %-28s %s\n", r[0].Str(), r[1].Str(), r[2].Str())
	}

	// 4. Comparable delivery promises: normalized calendar durations.
	res, err = in.Query(ctx,
		"SELECT supplier, name, delivery FROM catalog WHERE CONTAINS(name, 'drill') ORDER BY delivery LIMIT 4")
	if err != nil {
		return err
	}
	fmt.Println("\nfastest drill deliveries (normalized across day semantics):")
	for _, r := range res.Rows {
		fmt.Printf("  %-12s %-28s %s\n", r[0].Str(), r[1].Str(), r[2])
	}
	return nil
}

// sourceFor builds the format-appropriate wrapper for a supplier.
func sourceFor(s workload.Supplier, htmlTpl wrapper.LRTemplate) (wrapper.Source, error) {
	raw := rawDef()
	switch s.Format {
	case workload.FormatCSV:
		return wrapper.NewCSVSource(s.Name, raw,
			wrapper.StaticFetcher(map[string]string{"u": workload.RenderCSV(s)}), "u",
			[]wrapper.FieldMapping{
				{Column: "part_no", From: "Part No"},
				{Column: "description", From: "Description"},
				{Column: "unit_price", From: "Unit Price"},
				{Column: "lead_time", From: "Lead Time"},
				{Column: "on_hand", From: "On Hand"},
			}), nil
	case workload.FormatXML:
		return wrapper.NewXMLSource(s.Name, raw,
			wrapper.StaticFetcher(map[string]string{"u": workload.RenderXML(s)}), "u",
			"/feed/item", []wrapper.FieldMapping{
				{Column: "part_no", From: "@code"},
				{Column: "description", From: "desc"},
				{Column: "unit_price", From: "price"},
				{Column: "lead_time", From: "lead"},
				{Column: "on_hand", From: "stock"},
			}), nil
	default:
		return wrapper.NewHTMLSource(s.Name, raw,
			wrapper.StaticFetcher(map[string]string{"u": workload.RenderHTML(s)}), "u",
			htmlTpl, nil), nil
	}
}

// pipelineFor builds the per-supplier normalization pipeline, including
// taxonomy classification of the free-text name.
func pipelineFor(in *core.Integrator, s workload.Supplier) (*transform.Pipeline, error) {
	p := transform.NewPipeline(rawDef(), workload.CatalogDef())
	sku, err := transform.NewExpr("sku", fmt.Sprintf("'%s/' + part_no", s.Name))
	if err != nil {
		return nil, err
	}
	sup, err := transform.NewExpr("supplier", fmt.Sprintf("'%s'", s.Name))
	if err != nil {
		return nil, err
	}
	tax, err := in.Taxonomy("mro")
	if err != nil {
		return nil, err
	}
	classifier := taxonomy.NewClassifier(tax)
	p.MustAdd(
		sku, sup,
		transform.Copy{To: "name", From: "description"},
		transform.Func{To: "category", Fn: func(ctx *transform.RowContext) (value.Value, error) {
			name, err := ctx.Get("description")
			if err != nil || name.IsNull() {
				return value.Null, err
			}
			code, _, err := classifier.Classify(name.Str())
			if err != nil {
				return value.Null, nil // unclassified is acceptable
			}
			return value.NewString(code), nil
		}},
		transform.Currency{To: "price", From: "unit_price", Into: "USD", Rates: in.Rates()},
		transform.Delivery{To: "delivery", From: "lead_time"},
		transform.Copy{To: "qty", From: "on_hand"},
	)
	return p, nil
}

// label produces an induction example from a rendered record.
func label(s workload.Supplier, i int) wrapper.Example {
	it := s.Items[i]
	price := fmt.Sprintf("%d.%02d %s", it.PriceCents/100, it.PriceCents%100, s.Currency)
	if s.Currency == "USD" {
		price = fmt.Sprintf("$%d.%02d", it.PriceCents/100, it.PriceCents%100)
	}
	var lead string
	switch s.DeliverySemantics {
	case value.BusinessDays:
		lead = fmt.Sprintf("%d business days", it.Days)
	case value.NoSundayDays:
		lead = fmt.Sprintf("%d days (Sunday excluded)", it.Days)
	default:
		lead = fmt.Sprintf("%d days", it.Days)
	}
	return wrapper.Example{Values: []string{it.SKU, it.Name, price, lead, fmt.Sprintf("%d", it.Qty)}}
}
