package plan

import (
	"strings"
	"testing"

	"cohera/internal/sqlparse"
	"cohera/internal/value"
)

func evalStr(t *testing.T, expr string, env Env) value.Value {
	t.Helper()
	e, err := sqlparse.ParseExpr(expr)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", expr, err)
	}
	var ev Evaluator
	v, err := ev.Eval(e, env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", expr, err)
	}
	return v
}

func env(t *testing.T) *RowEnv {
	t.Helper()
	return NewRowEnv(
		[]string{"p.sku", "p.name", "p.price", "p.qty", "s.name"},
		[]value.Value{
			value.NewString("SKU-1"), value.NewString("black ink"),
			value.NewFloat(12.5), value.NewInt(10), value.NewString("Acme"),
		},
	)
}

func TestResolve(t *testing.T) {
	e := env(t)
	v, err := e.Resolve(sqlparse.ColumnRef{Table: "p", Column: "qty"})
	if err != nil || v.Int() != 10 {
		t.Errorf("qualified resolve = %v, %v", v, err)
	}
	v, err = e.Resolve(sqlparse.ColumnRef{Column: "QTY"})
	if err != nil || v.Int() != 10 {
		t.Errorf("bare resolve = %v, %v", v, err)
	}
	if _, err := e.Resolve(sqlparse.ColumnRef{Column: "name"}); err == nil {
		t.Error("ambiguous bare name should fail")
	}
	if _, err := e.Resolve(sqlparse.ColumnRef{Column: "ghost"}); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := e.Resolve(sqlparse.ColumnRef{Table: "x", Column: "qty"}); err == nil {
		t.Error("wrong qualifier should fail")
	}
}

func TestArithmetic(t *testing.T) {
	e := env(t)
	if v := evalStr(t, "p.qty + 5", e); v.Int() != 15 {
		t.Errorf("qty+5 = %v", v)
	}
	if v := evalStr(t, "p.qty * 2 - 1", e); v.Int() != 19 {
		t.Errorf("qty*2-1 = %v", v)
	}
	if v := evalStr(t, "p.price * 2", e); v.Float() != 25 {
		t.Errorf("price*2 = %v", v)
	}
	if v := evalStr(t, "10 / 4", e); v.Float() != 2.5 {
		t.Errorf("10/4 = %v", v)
	}
	if v := evalStr(t, "-p.qty", e); v.Int() != -10 {
		t.Errorf("-qty = %v", v)
	}
	if v := evalStr(t, "'a' + 'b'", e); v.Str() != "ab" {
		t.Errorf("string concat = %v", v)
	}
	// Division by zero errors.
	ex, _ := sqlparse.ParseExpr("1 / 0")
	var ev Evaluator
	if _, err := ev.Eval(ex, e); err == nil {
		t.Error("division by zero should error")
	}
}

func TestMoneyArithmetic(t *testing.T) {
	menv := NewRowEnv([]string{"price"}, []value.Value{value.NewMoney(1000, "USD")})
	var ev Evaluator
	eval := func(s string) (value.Value, error) {
		e, err := sqlparse.ParseExpr(s)
		if err != nil {
			t.Fatal(err)
		}
		return ev.Eval(e, menv)
	}
	v, err := eval("price * 2")
	if err != nil {
		t.Fatal(err)
	}
	if m, c := v.Money(); m != 2000 || c != "USD" {
		t.Errorf("price*2 = %v", v)
	}
	v, err = eval("price / 4")
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := v.Money(); m != 250 {
		t.Errorf("price/4 = %v", v)
	}
	v, err = eval("price + price")
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := v.Money(); m != 2000 {
		t.Errorf("price+price = %v", v)
	}
	if _, err := eval("price * price"); err == nil {
		t.Error("money*money should fail")
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	e := env(t)
	truthy := []string{
		"p.qty = 10", "p.qty <> 9", "p.qty > 5", "p.qty >= 10",
		"p.qty < 11", "p.qty <= 10", "5 < p.qty AND p.qty < 15",
		"p.qty = 1 OR p.qty = 10", "NOT (p.qty = 1)",
		"p.name = 'black ink'", "p.qty BETWEEN 5 AND 15",
		"p.qty IN (1, 5, 10)", "p.qty NOT IN (1, 2)",
		"p.name LIKE 'black%'", "p.name LIKE '%INK'", "p.name LIKE '_lack ink'",
		"p.name NOT LIKE 'x%'", "p.sku IS NOT NULL",
		"p.qty NOT BETWEEN 11 AND 20",
	}
	for _, s := range truthy {
		if v := evalStr(t, s, e); !v.Truthy() {
			t.Errorf("%q = %v, want true", s, v)
		}
	}
	falsy := []string{
		"p.qty = 9", "p.qty > 10", "p.name LIKE 'ink%'",
		"p.qty IN (1, 2)", "p.sku IS NULL",
	}
	for _, s := range falsy {
		if v := evalStr(t, s, e); v.Truthy() {
			t.Errorf("%q = %v, want false", s, v)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	e := NewRowEnv([]string{"x", "y"}, []value.Value{value.Null, value.NewInt(1)})
	// NULL comparisons are NULL.
	if v := evalStr(t, "x = 1", e); !v.IsNull() {
		t.Errorf("NULL = 1 → %v", v)
	}
	// unknown AND false = false; unknown OR true = true.
	if v := evalStr(t, "x = 1 AND y = 2", e); v.Truthy() || v.IsNull() {
		t.Errorf("unknown AND false = %v, want false", v)
	}
	if v := evalStr(t, "x = 1 OR y = 1", e); !v.Truthy() {
		t.Errorf("unknown OR true = %v, want true", v)
	}
	// unknown AND true = unknown.
	if v := evalStr(t, "x = 1 AND y = 1", e); !v.IsNull() {
		t.Errorf("unknown AND true = %v, want NULL", v)
	}
	if v := evalStr(t, "NOT (x = 1)", e); !v.IsNull() {
		t.Errorf("NOT unknown = %v, want NULL", v)
	}
	if v := evalStr(t, "x IN (1, 2)", e); !v.IsNull() {
		t.Errorf("NULL IN = %v, want NULL", v)
	}
	if v := evalStr(t, "y IN (2, NULL)", e); !v.IsNull() {
		t.Errorf("1 IN (2, NULL) = %v, want NULL", v)
	}
	if v := evalStr(t, "x IS NULL", e); !v.Truthy() {
		t.Errorf("NULL IS NULL = %v", v)
	}
}

func TestStringNumberCoercionInCompare(t *testing.T) {
	e := NewRowEnv([]string{"qty"}, []value.Value{value.NewString("42")})
	if v := evalStr(t, "qty = 42", e); !v.Truthy() {
		t.Errorf("'42' = 42 → %v", v)
	}
}

func TestBuiltinFunctions(t *testing.T) {
	e := env(t)
	cases := map[string]string{
		"UPPER(p.name)":           "BLACK INK",
		"LOWER('ABC')":            "abc",
		"TRIM('  x ')":            "x",
		"SUBSTR(p.name, 1, 5)":    "black",
		"SUBSTR(p.name, 7, 100)":  "ink",
		"CONCAT(p.sku, '/', 'x')": "SKU-1/x",
		"COALESCE(NULL, 'y')":     "y",
	}
	for sql, want := range cases {
		if v := evalStr(t, sql, e); v.Str() != want {
			t.Errorf("%s = %q, want %q", sql, v.Str(), want)
		}
	}
	if v := evalStr(t, "LENGTH(p.name)", e); v.Int() != 9 {
		t.Errorf("LENGTH = %v", v)
	}
	if v := evalStr(t, "ABS(-5)", e); v.Int() != 5 {
		t.Errorf("ABS = %v", v)
	}
	if v := evalStr(t, "ABS(-2.5)", e); v.Float() != 2.5 {
		t.Errorf("ABS float = %v", v)
	}
	if v := evalStr(t, "ROUND(2.6)", e); v.Int() != 3 {
		t.Errorf("ROUND = %v", v)
	}
	if v := evalStr(t, "SIMILARITY('drlls', 'drills')", e); v.Float() < 0.8 {
		t.Errorf("SIMILARITY = %v", v)
	}
	// Error cases.
	var ev Evaluator
	for _, bad := range []string{"NOSUCHFN(1)", "UPPER(1)", "UPPER('a','b')", "SUM(p.qty)"} {
		x, err := sqlparse.ParseExpr(bad)
		if err != nil {
			t.Fatalf("parse %q: %v", bad, err)
		}
		if _, err := ev.Eval(x, e); err == nil {
			t.Errorf("Eval(%q) should fail", bad)
		}
	}
}

func TestCustomFunc(t *testing.T) {
	ev := Evaluator{Funcs: map[string]func([]value.Value) (value.Value, error){
		"DOUBLE": func(args []value.Value) (value.Value, error) {
			return value.NewInt(args[0].Int() * 2), nil
		},
	}}
	x, _ := sqlparse.ParseExpr("DOUBLE(21)")
	v, err := ev.Eval(x, env(t))
	if err != nil || v.Int() != 42 {
		t.Errorf("DOUBLE(21) = %v, %v", v, err)
	}
}

func TestTextMatchHook(t *testing.T) {
	called := false
	ev := Evaluator{Text: func(tm sqlparse.TextMatch, env Env) (bool, error) {
		called = true
		return tm.Mode == sqlparse.MatchFuzzy, nil
	}}
	x, _ := sqlparse.ParseExpr("FUZZY(name, 'drlls')")
	v, err := ev.Eval(x, env(t))
	if err != nil || !v.Truthy() || !called {
		t.Errorf("TextMatch hook = %v, %v, called=%v", v, err, called)
	}
	// Without a hook, text predicates error.
	var plain Evaluator
	if _, err := plain.Eval(x, env(t)); err == nil {
		t.Error("TextMatch without hook should fail")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"black ink", "black%", true},
		{"black ink", "%ink", true},
		{"black ink", "%lac%", true},
		{"black ink", "_lack ink", true},
		{"black ink", "ink%", false},
		{"abc", "a%b%c", true},
		{"abc", "", false},
		{"", "%", true},
		{"abc", "%%", true},
		{"a", "_", true},
		{"ab", "_", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestWalkAndColumns(t *testing.T) {
	e, _ := sqlparse.ParseExpr("p.a = 1 AND (b + p.a > 2 OR FUZZY(p.name, 'x')) AND c IN (1,2)")
	cols := Columns(e)
	var names []string
	for _, c := range cols {
		names = append(names, c.String())
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"p.a", "b", "p.name", "c"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Columns = %v missing %s", names, want)
		}
	}
	if len(cols) != 4 {
		t.Errorf("Columns = %v, want 4 distinct", names)
	}
	// Walk prune: stop at the top.
	count := 0
	Walk(e, func(sqlparse.Expr) bool { count++; return false })
	if count != 1 {
		t.Errorf("pruned walk visited %d", count)
	}
}

func TestAggregateDetection(t *testing.T) {
	e, _ := sqlparse.ParseExpr("SUM(x) + 1")
	if !ContainsAggregate(e) {
		t.Error("ContainsAggregate missed SUM")
	}
	if !IsAggregateCall(e.(sqlparse.Binary).Left) {
		t.Error("IsAggregateCall failed")
	}
	e2, _ := sqlparse.ParseExpr("UPPER(x)")
	if ContainsAggregate(e2) {
		t.Error("UPPER is not an aggregate")
	}
}
