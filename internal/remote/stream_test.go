package remote

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
	"cohera/internal/wrapper"
)

// numbersTable builds a table with n rows for chunking tests.
func numbersTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	def := schema.MustTable("numbers", []schema.Column{
		{Name: "id", Kind: value.KindInt, NotNull: true},
		{Name: "bucket", Kind: value.KindInt},
	}, "id")
	tbl := storage.NewTable(def)
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(storage.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 5))}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func streamSource(t *testing.T, hs *httptest.Server, opts ...DialOption) *Source {
	t.Helper()
	c := Dial(hs.URL, "", opts...)
	srcs, err := c.Tables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 1 {
		t.Fatalf("got %d sources", len(srcs))
	}
	return srcs[0].(*Source)
}

// TestFetchStreamRoundTrip asserts the streaming path returns exactly
// the rows the one-shot path does, across multiple chunks.
func TestFetchStreamRoundTrip(t *testing.T) {
	srv := NewServer()
	srv.StreamBatchRows = 7 // force many chunks for 100 rows
	srv.PublishTable(numbersTable(t, 100), "id")
	hs := httptest.NewServer(srv)
	defer hs.Close()
	src := streamSource(t, hs)

	want, err := src.Fetch(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := src.FetchStream(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Columns(); len(got) != 2 || got[0] != "id" {
		t.Fatalf("Columns = %v", got)
	}
	rows, err := storage.CollectRows(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Fatalf("stream %d rows, fetch %d", len(rows), len(want))
	}
	for i := range rows {
		if rows[i][0].Int() != want[i][0].Int() {
			t.Fatalf("row %d: stream %v, fetch %v", i, rows[i], want[i])
		}
	}
}

// TestFetchStreamPushdownAndRecheck asserts pushed and unpushed filters
// both apply.
func TestFetchStreamPushdownAndRecheck(t *testing.T) {
	srv := NewServer()
	srv.PublishTable(numbersTable(t, 50), "id")
	hs := httptest.NewServer(srv)
	defer hs.Close()
	src := streamSource(t, hs)

	// "bucket" is not pushable: the client must re-check it locally.
	st, err := src.FetchStream(context.Background(), []wrapper.Filter{
		{Column: "bucket", Value: value.NewInt(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := storage.CollectRows(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("bucket filter: got %d rows, want 10", len(rows))
	}
	// "id" is pushable.
	st, err = src.FetchStream(context.Background(), []wrapper.Filter{
		{Column: "id", Value: value.NewInt(7)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err = storage.CollectRows(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 7 {
		t.Fatalf("id filter: got %v", rows)
	}
}

// TestFetchStreamReuseAfterClose pins the reuse-after-Close contract on
// the network stream: Next must fail typed, and a second Close must be
// a safe no-op (not a double body close).
func TestFetchStreamReuseAfterClose(t *testing.T) {
	srv := NewServer()
	srv.PublishTable(numbersTable(t, 20), "id")
	hs := httptest.NewServer(srv)
	defer hs.Close()
	src := streamSource(t, hs)

	st, err := src.FetchStream(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
	if _, err := st.Next(); !errors.Is(err, storage.ErrStreamClosed) {
		t.Fatalf("Next after Close = %v, want ErrStreamClosed", err)
	}
}

// TestFetchStreamTruncation asserts a body that ends without the eof
// terminator surfaces ErrTruncated — never a silent short result.
func TestFetchStreamTruncation(t *testing.T) {
	// A fake server that sends one valid chunk and hangs up without the
	// terminator.
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/tables" {
			fmt.Fprint(w, `[{"name":"numbers","columns":[{"name":"id","kind":"int","not_null":true}],"key":["id"]}]`)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprint(w, `{"rows":[[{"k":"int","i":1}],[{"k":"int","i":2}]]}`+"\n")
	}))
	defer hs.Close()
	src := streamSource(t, hs)

	st, err := src.FetchStream(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 2; i++ {
		if _, err := st.Next(); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	if _, err := st.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated stream Next = %v, want ErrTruncated", err)
	}
	// Terminal errors are sticky.
	if _, err := st.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("second Next = %v, want sticky ErrTruncated", err)
	}
}

// TestFetchStreamServerError asserts a mid-stream server failure
// arrives as an error chunk, typed as a failure rather than EOF.
func TestFetchStreamServerError(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/tables" {
			fmt.Fprint(w, `[{"name":"numbers","columns":[{"name":"id","kind":"int","not_null":true}],"key":["id"]}]`)
			return
		}
		fmt.Fprint(w, `{"rows":[[{"k":"int","i":1}]]}`+"\n")
		fmt.Fprint(w, `{"error":"disk on fire"}`+"\n")
	}))
	defer hs.Close()
	src := streamSource(t, hs)

	st, err := src.FetchStream(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	_, err = st.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("server error surfaced as %v", err)
	}
	if !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("error %q does not carry the server message", err)
	}
}

// TestFetchStreamNotFound asserts unknown tables fail at open, with the
// server's message.
func TestFetchStreamNotFound(t *testing.T) {
	srv := NewServer()
	srv.PublishTable(numbersTable(t, 1), "id")
	hs := httptest.NewServer(srv)
	defer hs.Close()
	src := streamSource(t, hs)
	src.def = schema.MustTable("ghosts", []schema.Column{
		{Name: "id", Kind: value.KindInt, NotNull: true},
	}, "id")
	if _, err := src.FetchStream(context.Background(), nil); err == nil {
		t.Fatal("expected open error for unknown table")
	}
}

// TestClampBatchRows pins the batch-size negotiation table.
func TestClampBatchRows(t *testing.T) {
	for _, tc := range []struct{ asked, serverDefault, want int }{
		{0, 0, storage.DefaultBatchRows},
		{0, 64, 64},
		{16, 64, 16},
		{1 << 20, 0, maxStreamBatchRows},
		{-3, 0, storage.DefaultBatchRows},
	} {
		if got := clampBatchRows(tc.asked, tc.serverDefault); got != tc.want {
			t.Errorf("clampBatchRows(%d, %d) = %d, want %d", tc.asked, tc.serverDefault, got, tc.want)
		}
	}
}
