package federation

import (
	"context"
	"fmt"
	"testing"

	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// wideFed builds a federation with a 10-column table on one site.
func wideFed(t *testing.T) (*Federation, *Fragment) {
	t.Helper()
	cols := []schema.Column{{Name: "id", Kind: value.KindInt, NotNull: true}}
	for i := 0; i < 9; i++ {
		cols = append(cols, schema.Column{Name: fmt.Sprintf("c%d", i), Kind: value.KindString})
	}
	def := schema.MustTable("wide", cols, "id")
	fed := New(NewAgoric())
	s := NewSite("s")
	if err := fed.AddSite(s); err != nil {
		t.Fatal(err)
	}
	frag := NewFragment("f", nil, s)
	if _, err := fed.DefineTable(def, frag); err != nil {
		t.Fatal(err)
	}
	var rows []storage.Row
	for i := int64(0); i < 20; i++ {
		r := storage.Row{value.NewInt(i)}
		for j := 0; j < 9; j++ {
			r = append(r, value.NewString(fmt.Sprintf("v%d-%d", j, i)))
		}
		rows = append(rows, r)
	}
	if err := fed.LoadFragment("wide", frag, rows); err != nil {
		t.Fatal(err)
	}
	return fed, frag
}

func TestProjectionPushdownShipsFewerCells(t *testing.T) {
	fed, _ := wideFed(t)
	ctx := context.Background()
	res, trace, err := fed.QueryTraced(ctx, "SELECT c1 FROM wide WHERE id < 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 || res.Rows[0][0].Str()[:3] != "v1-" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Only id (key) and c1 ship: 2 of 10 columns.
	if trace.CellsShipped != 10*2 {
		t.Errorf("cells shipped = %d, want 20", trace.CellsShipped)
	}
	if trace.CellsWithoutPushdown != 10*10 {
		t.Errorf("cells without pushdown = %d, want 100", trace.CellsWithoutPushdown)
	}
}

func TestProjectionPushdownDisabled(t *testing.T) {
	fed, _ := wideFed(t)
	fed.DisableProjectionPushdown = true
	_, trace, err := fed.QueryTraced(context.Background(), "SELECT c1 FROM wide WHERE id < 10")
	if err != nil {
		t.Fatal(err)
	}
	if trace.CellsShipped != 10*10 {
		t.Errorf("ablation cells = %d, want full width 100", trace.CellsShipped)
	}
}

func TestProjectionPushdownStarFetchesAll(t *testing.T) {
	fed, _ := wideFed(t)
	res, trace, err := fed.QueryTraced(context.Background(), "SELECT * FROM wide WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 10 {
		t.Fatalf("star rows = %v", res.Rows)
	}
	if trace.CellsShipped != trace.CellsWithoutPushdown {
		t.Errorf("star query should ship full width: %d vs %d",
			trace.CellsShipped, trace.CellsWithoutPushdown)
	}
}

func TestProjectionPushdownAggregates(t *testing.T) {
	fed, _ := wideFed(t)
	res, trace, err := fed.QueryTraced(context.Background(),
		"SELECT c2, COUNT(*) FROM wide GROUP BY c2 ORDER BY c2 LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// id (key) + c2.
	if trace.CellsShipped != 20*2 {
		t.Errorf("agg cells = %d, want 40", trace.CellsShipped)
	}
}

func TestProjectionPushdownJoinCorrectness(t *testing.T) {
	fed, _ := wideFed(t)
	// A second table joined on c0: both sides prune independently.
	def2 := schema.MustTable("labels", []schema.Column{
		{Name: "ckey", Kind: value.KindString, NotNull: true},
		{Name: "label", Kind: value.KindString},
		{Name: "unused", Kind: value.KindString},
	}, "ckey")
	s, _ := fed.Site("s")
	frag2 := NewFragment("l", nil, s)
	if _, err := fed.DefineTable(def2, frag2); err != nil {
		t.Fatal(err)
	}
	if err := fed.LoadFragment("labels", frag2, []storage.Row{
		{value.NewString("v0-3"), value.NewString("three"), value.NewString("x")},
	}); err != nil {
		t.Fatal(err)
	}
	res, trace, err := fed.QueryTraced(context.Background(), `
		SELECT w.c1, l.label FROM wide w JOIN labels l ON w.c0 = l.ckey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Str() != "three" {
		t.Fatalf("join rows = %v", res.Rows)
	}
	// wide ships id,c0,c1 (3 of 10) for 20 rows; labels ships key,label
	// (2 of 3) for 1 row.
	want := 20*3 + 1*2
	if trace.CellsShipped != want {
		t.Errorf("join cells = %d, want %d", trace.CellsShipped, want)
	}
}

func TestProjectionPushdownTextPredicate(t *testing.T) {
	// A FullText column referenced only inside MATCHES must still ship so
	// the coordinator's inverted index can serve the predicate.
	def := schema.MustTable("docs", []schema.Column{
		{Name: "id", Kind: value.KindInt, NotNull: true},
		{Name: "body", Kind: value.KindString, FullText: true},
		{Name: "extra", Kind: value.KindString},
	}, "id")
	fed := New(NewAgoric())
	s := NewSite("s")
	_ = fed.AddSite(s)
	frag := NewFragment("f", nil, s)
	if _, err := fed.DefineTable(def, frag); err != nil {
		t.Fatal(err)
	}
	if err := fed.LoadFragment("docs", frag, []storage.Row{
		{value.NewInt(1), value.NewString("cordless drill"), value.NewString("x")},
		{value.NewInt(2), value.NewString("ink"), value.NewString("y")},
	}); err != nil {
		t.Fatal(err)
	}
	res, trace, err := fed.QueryTraced(context.Background(),
		"SELECT id FROM docs WHERE CONTAINS(body, 'drill')")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("text rows = %v", res.Rows)
	}
	// id + body ship; extra pruned.
	if trace.CellsShipped != 2*2 {
		t.Errorf("text cells = %d, want 4", trace.CellsShipped)
	}
}
