package workload

import (
	"fmt"
	"math/rand"

	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/taxonomy"
	"cohera/internal/value"
)

// HotelsDef is the global schema of the travel vignette: fifty-odd
// reservation systems, each owning its chain's rows.
func HotelsDef() *schema.Table {
	return schema.MustTable("hotels", []schema.Column{
		{Name: "hotel", Kind: value.KindString, NotNull: true},
		{Name: "chain", Kind: value.KindString},
		{Name: "city", Kind: value.KindString},
		{Name: "miles_to_airport", Kind: value.KindFloat},
		{Name: "health_club", Kind: value.KindBool},
		{Name: "corporate_rate", Kind: value.KindMoney},
		{Name: "available", Kind: value.KindInt},
	}, "hotel")
}

// Hotel is one generated property.
type Hotel struct {
	Name      string
	Chain     string
	City      string
	Miles     float64
	Club      bool
	RateCents int64
	Available int64
}

// Hotels generates chains × perChain properties across a city list, a
// third of them near the airport with health clubs and corporate rates
// spanning the $120–$320 band (so the paper's "<$200, <10 miles, health
// club" query selects a meaningful subset).
func Hotels(chains, perChain int, seed int64) [][]Hotel {
	rng := rand.New(rand.NewSource(seed))
	cities := []string{"Atlanta", "Chicago", "Denver", "Boston"}
	out := make([][]Hotel, chains)
	for c := 0; c < chains; c++ {
		chain := fmt.Sprintf("chain-%02d", c)
		for h := 0; h < perChain; h++ {
			out[c] = append(out[c], Hotel{
				Name:      fmt.Sprintf("%s-hotel-%02d", chain, h),
				Chain:     chain,
				City:      cities[rng.Intn(len(cities))],
				Miles:     0.5 + rng.Float64()*24.5,
				Club:      rng.Intn(3) != 0,
				RateCents: 12000 + int64(rng.Intn(20000)),
				Available: int64(rng.Intn(20)),
			})
		}
	}
	return out
}

// HotelRow converts a hotel to its schema row.
func HotelRow(h Hotel) storage.Row {
	return storage.Row{
		value.NewString(h.Name), value.NewString(h.Chain), value.NewString(h.City),
		value.NewFloat(h.Miles), value.NewBool(h.Club),
		value.NewMoney(h.RateCents, "USD"), value.NewInt(h.Available),
	}
}

// AvailabilityChurn deterministically mutates availability on live hotel
// tables: each step picks a random hotel and books or releases rooms.
// It returns a step function; calling it applies one update and reports
// which table changed.
func AvailabilityChurn(tables []*storage.Table, seed int64) func() error {
	rng := rand.New(rand.NewSource(seed))
	return func() error {
		if len(tables) == 0 {
			return fmt.Errorf("workload: no tables to churn")
		}
		t := tables[rng.Intn(len(tables))]
		n := t.Len()
		if n == 0 {
			return nil
		}
		// Pick a random row by scanning to a random offset (tables are
		// small per chain).
		target := rng.Intn(n)
		var id int64 = -1
		var row storage.Row
		i := 0
		t.Scan(func(rid int64, r storage.Row) bool {
			if i == target {
				id = rid
				row = r
				return false
			}
			i++
			return true
		})
		if id < 0 {
			return nil
		}
		availIdx := t.Def().ColumnIndex("available")
		cur := row[availIdx].Int()
		delta := int64(rng.Intn(3) + 1)
		if rng.Intn(2) == 0 {
			cur -= delta
			if cur < 0 {
				cur = 0
			}
		} else {
			cur += delta
		}
		row[availIdx] = value.NewInt(cur)
		return t.Update(id, row)
	}
}

// SupplyChainDef is the schema of the supply-chain vignette: each tier's
// suppliers advertise spare capacity for the parts they make.
func SupplyChainDef() *schema.Table {
	return schema.MustTable("capacity", []schema.Column{
		{Name: "supplier", Kind: value.KindString, NotNull: true},
		{Name: "tier", Kind: value.KindInt},
		{Name: "part", Kind: value.KindString},
		{Name: "spare_units", Kind: value.KindInt},
		{Name: "feeds", Kind: value.KindString}, // upstream supplier this one feeds
	}, "supplier")
}

// ChainSupplier is one node of the generated supply chain.
type ChainSupplier struct {
	Name  string
	Tier  int
	Part  string
	Spare int64
	Feeds string
}

// SupplyChain generates a tree of tiers: tier 0 is the manufacturer,
// each tier-i supplier feeds one tier-(i-1) node. Spare capacity shrinks
// with depth so feasibility questions have non-trivial answers.
func SupplyChain(tiers, fanout int, seed int64) []ChainSupplier {
	rng := rand.New(rand.NewSource(seed))
	parts := []string{"chassis", "motor", "gearbox", "bearing", "casting", "bolt"}
	var out []ChainSupplier
	out = append(out, ChainSupplier{Name: "manufacturer", Tier: 0, Part: "product", Spare: 100})
	prev := []string{"manufacturer"}
	for tier := 1; tier <= tiers; tier++ {
		var cur []string
		for _, parent := range prev {
			for f := 0; f < fanout; f++ {
				name := fmt.Sprintf("t%d-%s-%d", tier, parent, f)
				out = append(out, ChainSupplier{
					Name: name, Tier: tier,
					Part:  parts[rng.Intn(len(parts))],
					Spare: int64(rng.Intn(50)),
					Feeds: parent,
				})
				cur = append(cur, name)
			}
		}
		prev = cur
	}
	return out
}

// ChainRow converts a supplier node to its schema row.
func ChainRow(c ChainSupplier) storage.Row {
	return storage.Row{
		value.NewString(c.Name), value.NewInt(int64(c.Tier)),
		value.NewString(c.Part), value.NewInt(c.Spare), value.NewString(c.Feeds),
	}
}

// MROTaxonomy builds the integrator's taxonomy matching MROVocabulary's
// category codes.
func MROTaxonomy() *taxonomy.Taxonomy {
	t := taxonomy.New("mro")
	add := func(code, name, parent string, syn ...string) { t.MustAdd(code, name, parent, syn...) }
	add("44", "Office supplies", "")
	add("44.10", "Ink and lead refills", "44", "refills")
	add("44.10.01", "India ink", "44.10", "black ink")
	add("44.10.02", "Lead refills", "44.10")
	add("44.20", "Writing instruments", "44")
	add("44.20.01", "Ballpoint pens", "44.20")
	add("44.30", "Desk supplies", "44")
	add("44.30.01", "Writing pads", "44.30", "legal pad")
	add("44.30.02", "Staplers", "44.30")
	add("27", "Tools and machinery", "")
	add("27.11", "Power tools", "27")
	add("27.11.01", "Cordless drills", "27.11", "drills cordless")
	add("27.11.02", "Corded drills", "27.11")
	add("27.11.03", "Circular saws", "27.11")
	add("27.12", "Hand tools", "27")
	add("27.12.01", "Hammers", "27.12", "claw hammer")
	add("27.12.02", "Wrench sets", "27.12", "socket wrench")
	add("39", "Electrical and lighting", "")
	add("39.10", "Lamps and bulbs", "39")
	add("39.10.01", "Incandescent bulbs", "39.10", "lightbulb")
	add("39.10.02", "Fluorescent tubes", "39.10")
	add("39.20", "Wiring accessories", "39")
	add("39.20.01", "Extension cords", "39.20")
	add("24", "Material handling", "")
	add("24.10", "Industrial trucks", "24")
	add("24.10.01", "Forklifts", "24.10", "lift truck")
	add("24.10.02", "Hand trucks", "24.10", "dolly")
	add("46", "Safety equipment", "")
	add("46.18", "Personal protection", "46")
	add("46.18.01", "Safety goggles", "46.18", "protective eyewear")
	add("46.18.02", "Work gloves", "46.18")
	add("46.18.03", "Hard hats", "46.18", "safety helmet")
	add("31", "Packaging", "")
	add("31.20", "Shipping supplies", "31")
	add("31.20.01", "Packing tape", "31.20", "parcel tape")
	add("31.20.02", "Corrugated boxes", "31.20", "cardboard carton")
	add("27.12.03", "Utility knives", "27.12", "box cutter")
	add("27.12.04", "Hex keys", "27.12", "allen wrench")
	add("39.10.03", "Flashlights", "39.10", "electric torch")
	add("39.20.02", "Cable ties", "39.20", "zip fasteners")
	return t
}

// SyntheticTaxonomy generates a UN/SPSC-shaped taxonomy: `branch`
// children per node to `depth` levels, with labels composed from a
// product-word vocabulary so sibling labels are related but distinct.
// Used to measure taxonomy tooling at catalog scale (E7's size sweep).
func SyntheticTaxonomy(branch, depth int, seed int64) *taxonomy.Taxonomy {
	rng := rand.New(rand.NewSource(seed))
	words := []string{
		"industrial", "office", "electrical", "safety", "packaging",
		"fastener", "abrasive", "hydraulic", "pneumatic", "lighting",
		"cutting", "measuring", "welding", "plumbing", "janitorial",
		"adhesive", "bearing", "filter", "gasket", "valve",
	}
	t := taxonomy.New(fmt.Sprintf("synthetic-%d", seed))
	var build func(parent string, prefix string, level int)
	build = func(parent, prefix string, level int) {
		if level > depth {
			return
		}
		for i := 0; i < branch; i++ {
			code := fmt.Sprintf("%s%02d", prefix, i)
			label := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))] +
				fmt.Sprintf(" %02d", i)
			t.MustAdd(code, label, parent)
			build(code, code+".", level+1)
		}
	}
	build("", "", 1)
	return t
}

// NoisyTaxonomy derives a vendor taxonomy from a source taxonomy: codes
// are renamed, labels perturbed with probability noise, and synonyms
// dropped — with the ground-truth mapping returned for scoring a matcher
// (E7).
func NoisyTaxonomy(src *taxonomy.Taxonomy, noise float64, seed int64) (*taxonomy.Taxonomy, map[string]string) {
	rng := rand.New(rand.NewSource(seed))
	dst := taxonomy.New(src.Name + "-vendor")
	truth := make(map[string]string)
	var walk func(code, parent string)
	walk = func(code, parent string) {
		cat, err := src.Get(code)
		if err != nil {
			return
		}
		vendorCode := "V-" + code
		label := cat.Name
		if rng.Float64() < noise {
			label = Typo(label, rng)
		}
		dst.MustAdd(vendorCode, label, parent)
		truth[vendorCode] = code
		//lint:ignore errdrop the walk only visits codes reachable from src's roots, so Children cannot fail
		kids, _ := src.Children(code)
		for _, k := range kids {
			walk(k, vendorCode)
		}
	}
	for _, r := range src.Roots() {
		walk(r, "")
	}
	return dst, truth
}

// SearchQueries returns (query, relevant-canonical-name) pairs exercising
// retrieval against an integrated catalog (E6). Catalog rows carry
// vendor *variant* names, so the three probe kinds stress different
// machinery:
//
//   - "verbatim": the query is a variant that appears in the data —
//     plain term search suffices;
//   - "canonical": the query is the integrator's canonical name, which
//     for term-disjoint pairs ("flashlight" vs "electric torch") only
//     synonym expansion can bridge;
//   - "typo": a corrupted canonical name — the paper's "drlls: crdlss" —
//     needing fuzzy matching (and synonyms, when also term-disjoint).
func SearchQueries(seed int64, n int) []SearchQuery {
	rng := rand.New(rand.NewSource(seed))
	vocab := MROVocabulary()
	out := make([]SearchQuery, 0, n)
	for i := 0; i < n; i++ {
		p := vocab[rng.Intn(len(vocab))]
		q := SearchQuery{Canonical: p.Canonical}
		switch i % 3 {
		case 0:
			q.Query = p.Canonical
			q.Kind = "canonical"
		case 1:
			q.Query = p.Variants[rng.Intn(len(p.Variants))]
			q.Kind = "verbatim"
		default: // possibly severe — the paper's "drlls: crdlss"
			q.Query = Typo(Typo(p.Canonical, rng), rng)
			q.Kind = "typo"
		}
		out = append(out, q)
	}
	return out
}

// SearchQuery is one retrieval probe with its ground truth.
type SearchQuery struct {
	Query     string
	Canonical string
	Kind      string // verbatim | canonical | typo
}

// Zipf returns a deterministic Zipf sampler over [0, n) with skew s>1.
func Zipf(n int, s float64, seed int64) func() int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}
