package core

import (
	"context"
	"net/http/httptest"
	"testing"

	"cohera/internal/remote"
	"cohera/internal/storage"
	"cohera/internal/value"
	"cohera/internal/workload"
)

func TestAttachRemote(t *testing.T) {
	// A remote enterprise serving its catalog over HTTP.
	def := workload.CatalogDef()
	tbl := storage.NewTable(def.Clone("catalog"))
	sup := workload.Suppliers(1, 7, 0, 555)[0]
	rows, err := workload.GroundTruthRows(sup, value.DefaultCurrencyTable())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		r[0] = value.NewString("remote/" + r[0].Str())
		if _, err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	srv := remote.NewServer()
	srv.Token = "sesame"
	srv.PublishTable(tbl, "sku")
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// The integrator already has a local fragment of the same table.
	in, _ := buildIntegrator(t, Options{})
	ctx := context.Background()
	base, err := in.Query(ctx, "SELECT COUNT(*) FROM catalog")
	if err != nil {
		t.Fatal(err)
	}
	attached, err := in.AttachRemote(ctx, hs.URL, "sesame")
	if err != nil {
		t.Fatalf("AttachRemote: %v", err)
	}
	if len(attached) != 1 || attached[0] != "catalog" {
		t.Fatalf("attached = %v", attached)
	}
	res, err := in.Query(ctx, "SELECT COUNT(*) FROM catalog")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != base.Rows[0][0].Int()+7 {
		t.Errorf("count after attach = %v, want +7 over %v", res.Rows[0][0], base.Rows[0][0])
	}
	// Live: a remote insert is visible on the next federated query.
	extra := rows[0].Clone()
	extra[0] = value.NewString("remote/EXTRA")
	if _, err := tbl.Insert(extra); err != nil {
		t.Fatal(err)
	}
	res, _ = in.Query(ctx, "SELECT COUNT(*) FROM catalog")
	if res.Rows[0][0].Int() != base.Rows[0][0].Int()+8 {
		t.Errorf("remote insert invisible: %v", res.Rows[0][0])
	}
	// Wrong token fails cleanly.
	if _, err := in.AttachRemote(ctx, hs.URL, "wrong"); err == nil {
		t.Error("bad token should fail")
	}
	// Unreachable server fails cleanly.
	if _, err := in.AttachRemote(ctx, "http://127.0.0.1:1", ""); err == nil {
		t.Error("dead server should fail")
	}
}
