package exec

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cohera/internal/wal"
)

// TestCrashPointMatrix drives a workload with a crash hook installed at
// every named point of the append and checkpoint protocols, captures a
// byte-for-byte copy of the WAL directory at each firing (exactly what
// kill -9 would leave), and recovers every image into a fresh engine.
// Each recovered state must be a legal boundary: the state just before
// or just after the operation the crash interrupted — never a partial
// or doubled application.
//
// The table is keyless with deliberately duplicated rows, so a
// double-applied put changes the row count: the "checkpoint.renamed"
// images (checkpoint durable, log not yet truncated) are the regression
// test that records at or below the checkpoint LSN are skipped on
// replay instead of applied a second time.
func TestCrashPointMatrix(t *testing.T) {
	ops := []string{
		"CREATE TABLE ledger (body TEXT, n INTEGER)",
		"INSERT INTO ledger (body, n) VALUES ('a', 1)",
		"INSERT INTO ledger (body, n) VALUES ('a', 1)", // duplicate row: double-apply detector
		"CHECKPOINT",
		"INSERT INTO ledger (body, n) VALUES ('b', 2)",
		"UPDATE ledger SET n = 9 WHERE body = 'b'",
		"CHECKPOINT",
		"DELETE FROM ledger WHERE n = 1",
		"INSERT INTO ledger (body, n) VALUES ('c', 3)",
	}

	// Reference run, no WAL: refDig[k]/refLen[k] is the state after the
	// first k operations (k=0 is the empty engine, digest sentinel 0).
	refDig := make([]uint64, len(ops)+1)
	refLen := make([]int, len(ops)+1)
	ref := NewDatabase()
	for k, sql := range ops {
		if sql != "CHECKPOINT" {
			execSQL(t, ref, sql)
		}
		refDig[k+1] = digestOrZero(t, ref)
		refLen[k+1] = lenOrZero(ref)
	}

	// Instrumented run: copy the WAL dir at every crash point.
	type image struct {
		dir   string
		op    int
		point string
	}
	var images []image
	opIdx := -1 // set before each op; hooks fire synchronously in Exec
	dir := t.TempDir()
	db, l := newWALDB(t, dir)
	l.SetCrashHook(func(point string) {
		if opIdx < 0 {
			return // setup traffic, not part of the matrix
		}
		img := filepath.Join(t.TempDir(), fmt.Sprintf("op%d-%s", opIdx, point))
		copyDir(t, dir, img)
		images = append(images, image{dir: img, op: opIdx, point: point})
	})
	for k, sql := range ops {
		opIdx = k
		if sql == "CHECKPOINT" {
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("checkpoint at op %d: %v", k, err)
			}
			continue
		}
		execSQL(t, db, sql)
	}
	opIdx = -1
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if len(images) < 2*len(ops) {
		t.Fatalf("only %d crash images captured for %d ops", len(images), len(ops))
	}

	for _, img := range images {
		l2, rec, err := wal.Open(img.dir, wal.Options{})
		if err != nil {
			t.Fatalf("%s op %d: Open: %v", img.point, img.op, err)
		}
		db2 := NewDatabase()
		if _, err := db2.Recover(rec); err != nil {
			t.Fatalf("%s op %d: Recover: %v", img.point, img.op, err)
		}
		got, gotLen := digestOrZero(t, db2), lenOrZero(db2)
		before, after := img.op, img.op+1
		switch img.point {
		case "append.before":
			// The interrupted record never reached disk.
			if got != refDig[before] || gotLen != refLen[before] {
				t.Errorf("%s op %d: digest %x len %d, want pre-op %x/%d",
					img.point, img.op, got, gotLen, refDig[before], refLen[before])
			}
		case "append.after":
			// The record is on disk (page cache survives kill -9).
			if got != refDig[after] || gotLen != refLen[after] {
				t.Errorf("%s op %d: digest %x len %d, want post-op %x/%d",
					img.point, img.op, got, gotLen, refDig[after], refLen[after])
			}
		case "checkpoint.staged", "checkpoint.renamed":
			// A checkpoint never changes engine state; renamed-but-not-
			// truncated is where a broken LSN skip would double-apply.
			if got != refDig[before] || gotLen != refLen[before] {
				t.Errorf("%s op %d: digest %x len %d, want %x/%d (double-apply?)",
					img.point, img.op, got, gotLen, refDig[before], refLen[before])
			}
		default:
			t.Errorf("unknown crash point %q", img.point)
		}
		// Every recovered image must accept new writes.
		db2.AttachWAL(l2)
		if gotLen > 0 {
			execSQL(t, db2, "INSERT INTO ledger (body, n) VALUES ('post', 0)")
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("%s op %d: Close: %v", img.point, img.op, err)
		}
	}
}

// digestOrZero returns the ledger digest, or 0 when the table does not
// exist yet (images captured before the CREATE landed).
func digestOrZero(t *testing.T, db *Database) uint64 {
	t.Helper()
	d, err := db.TableDigest("ledger")
	if err != nil {
		return 0
	}
	return d.Hash
}

func lenOrZero(db *Database) int {
	tbl, err := db.Table("ledger")
	if err != nil {
		return 0
	}
	return tbl.Len()
}

// copyDir copies every regular file of src into dst — the moral
// equivalent of the page-cache image kill -9 leaves behind.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
