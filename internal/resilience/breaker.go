package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int32

// The three breaker states. Closed passes traffic and counts
// consecutive failures; Open rejects traffic until OpenTimeout has
// elapsed; HalfOpen passes probe traffic and closes again after enough
// consecutive successes.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String renders the state for logs and metric labels.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a per-target circuit breaker. The zero value is usable:
// unset knobs fall back to the defaults documented on each field.
// Configuration fields must be set before the breaker sees traffic;
// they are read without synchronization.
type Breaker struct {
	// FailureThreshold is the number of consecutive failures that trips
	// a closed breaker (default 5).
	FailureThreshold int
	// OpenTimeout is how long an open breaker rejects traffic before
	// letting a probe through (default 5s).
	OpenTimeout time.Duration
	// HalfOpenSuccesses is the number of consecutive successful probes
	// that close a half-open breaker (default 2).
	HalfOpenSuccesses int
	// Clock supplies the current time; nil means time.Now. Injected by
	// the chaos harness so open→half-open timing is deterministic.
	Clock func() time.Time
	// OnTransition, when set, observes every state change. It is called
	// outside the breaker's lock, so it may safely call back into the
	// breaker; ordering of concurrent transitions is not guaranteed.
	OnTransition func(from, to State)

	mu        sync.Mutex
	state     State
	failures  int
	successes int
	openedAt  time.Time
	// probesIssued counts Allow grants in the current half-open
	// window; the half-open contract is a bounded trial, so racing
	// callers share one quota of HalfOpenSuccesses probes instead of
	// each being waved through.
	probesIssued int
	// probeWindowAt is when the current probe window was armed or the
	// last half-open outcome was recorded, whichever is later; after
	// OpenTimeout with no recorded outcome the budget re-arms, so
	// probes whose callers vanished cannot wedge the breaker, while
	// slow-but-live probes keep the window from re-arming under them.
	probeWindowAt time.Time
}

func (b *Breaker) threshold() int {
	if b.FailureThreshold > 0 {
		return b.FailureThreshold
	}
	return 5
}

func (b *Breaker) openTimeout() time.Duration {
	if b.OpenTimeout > 0 {
		return b.OpenTimeout
	}
	return 5 * time.Second
}

func (b *Breaker) probes() int {
	if b.HalfOpenSuccesses > 0 {
		return b.HalfOpenSuccesses
	}
	return 2
}

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

// transitionLocked moves the breaker to a new state and returns the
// notification to fire once the lock is released (zero when unchanged).
func (b *Breaker) transitionLocked(to State) (from, end State, fire bool) {
	if b.state == to {
		return 0, 0, false
	}
	from = b.state
	b.state = to
	b.failures = 0
	b.successes = 0
	b.probesIssued = 0
	if to == Open {
		b.openedAt = b.now()
	}
	if to == HalfOpen {
		b.probeWindowAt = b.now()
	}
	return from, to, true
}

// Allow reports whether a call may proceed. An open breaker whose
// OpenTimeout has elapsed transitions to half-open and admits the call
// as a probe. Half-open admits at most HalfOpenSuccesses probes per
// window — concurrent callers racing the transition share that quota
// rather than dogpiling the recovering target — and re-arms the quota
// after OpenTimeout of recorded silence so leaked probes (callers that
// never report an outcome) cannot wedge the breaker shut.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var from, to State
	fire := false
	allowed := true
	switch b.state {
	case Closed:
		// pass
	case HalfOpen:
		now := b.now()
		if b.probesIssued < b.probes() {
			b.probesIssued++
		} else if now.Sub(b.probeWindowAt) >= b.openTimeout() {
			b.probesIssued = 1
			b.probeWindowAt = now
		} else {
			allowed = false
		}
	case Open:
		if b.now().Sub(b.openedAt) >= b.openTimeout() {
			from, to, fire = b.transitionLocked(HalfOpen)
			// This caller is the first probe of the new window.
			b.probesIssued = 1
		} else {
			allowed = false
		}
	}
	b.mu.Unlock()
	if fire && b.OnTransition != nil {
		b.OnTransition(from, to)
	}
	return allowed
}

// RecordSuccess feeds one successful call into the breaker.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	var from, to State
	fire := false
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		b.successes++
		// A recorded outcome is proof the probes are alive: push the
		// re-arm out so the quota really measures recorded silence and
		// slow probes cannot be joined by extras past the budget.
		b.probeWindowAt = b.now()
		if b.successes >= b.probes() {
			from, to, fire = b.transitionLocked(Closed)
		}
	case Open:
		// A straggler from before the trip; ignore.
	}
	b.mu.Unlock()
	if fire && b.OnTransition != nil {
		b.OnTransition(from, to)
	}
}

// RecordFailure feeds one failed call into the breaker.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	var from, to State
	fire := false
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.threshold() {
			from, to, fire = b.transitionLocked(Open)
		}
	case HalfOpen:
		// The probe failed: reopen immediately.
		from, to, fire = b.transitionLocked(Open)
	case Open:
		// Already open; nothing to count.
	}
	b.mu.Unlock()
	if fire && b.OnTransition != nil {
		b.OnTransition(from, to)
	}
}

// State returns the breaker's current position without consuming a
// probe slot (an expired open breaker still reports Open until Allow
// observes the timeout).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// ConsecutiveFailures reports the current closed-state failure streak.
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.failures
}

// Reset forces the breaker closed and clears its counters — an
// operator override, not part of the normal lifecycle.
func (b *Breaker) Reset() {
	b.mu.Lock()
	from, to, fire := b.transitionLocked(Closed)
	b.failures = 0
	b.successes = 0
	b.mu.Unlock()
	if fire && b.OnTransition != nil {
		b.OnTransition(from, to)
	}
}
