package federation

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Centralized is the compile-time, statistics-snapshot, cost-based
// optimizer the paper argues cannot provide the required scalability or
// adaptivity (§3.2, Characteristic 8). It models the behaviour of a
// classical distributed DBMS optimizer:
//
//   - it plans from a *statistics snapshot* refreshed by polling every
//     registered site serially (RefreshStats), so optimization-time cost
//     grows linearly with federation size and a per-site probe latency;
//   - between refreshes it prices replicas with the *stale* load figures
//     in the snapshot, so it keeps routing to a site that has become hot
//     or slow until the next refresh;
//   - it does not consult sites at plan time at all — a down site is only
//     noticed at execution (triggering failover) or at the next refresh.
//
// Both deficiencies are intrinsic to the design, not bugs: they are what
// E3 (optimization-time scaling) and E4 (adaptivity under skew) measure.
type Centralized struct {
	fed *Federation
	// ProbeLatency is the simulated per-site statistics RPC (default
	// 200µs) charged serially during RefreshStats.
	ProbeLatency time.Duration
	// StatsTTL is how long a snapshot is considered fresh (default 10s);
	// Rank triggers a refresh when the snapshot is older.
	StatsTTL time.Duration

	mu        sync.Mutex
	snapshot  map[string]siteStats
	takenAt   time.Time
	refreshes int
}

type siteStats struct {
	load   int64
	alive  bool
	health float64
	cost   CostModel
}

// NewCentralized returns the baseline optimizer bound to a federation
// (it needs the registry to enumerate sites, exactly like a catalog-driven
// optimizer enumerates its node table).
func NewCentralized(fed *Federation) *Centralized {
	return &Centralized{
		fed:          fed,
		ProbeLatency: 200 * time.Microsecond,
		StatsTTL:     10 * time.Second,
	}
}

// Name implements Optimizer.
func (c *Centralized) Name() string { return "centralized" }

// Refreshes reports how many full statistics sweeps have run.
func (c *Centralized) Refreshes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refreshes
}

// RefreshStats polls every site serially, charging ProbeLatency per site.
// This is the cost a compile-time optimizer pays to know about N sites.
// A cancelled context abandons the sweep, keeping the previous snapshot.
func (c *Centralized) RefreshStats(ctx context.Context) {
	sites := c.fed.Sites()
	snap := make(map[string]siteStats, len(sites))
	for _, s := range sites {
		if c.ProbeLatency > 0 {
			probe := time.NewTimer(c.ProbeLatency)
			select {
			case <-probe.C:
			case <-ctx.Done():
				probe.Stop()
				return
			}
		}
		// "alive" in the snapshot is the scoreboard's view: down or
		// breaker-open sites are excluded until the next refresh — which
		// is exactly the staleness E4 measures.
		snap[s.Name()] = siteStats{load: s.Load(), alive: s.Available(), health: s.HealthScore(), cost: s.Cost()}
	}
	c.mu.Lock()
	c.snapshot = snap
	c.takenAt = time.Now()
	c.refreshes++
	c.mu.Unlock()
}

// Rank implements Optimizer: price each replica using the snapshot's
// (possibly stale) load and liveness, refreshing first when the snapshot
// expired.
func (c *Centralized) Rank(ctx context.Context, frag *Fragment, estRows int) []*Site {
	c.mu.Lock()
	stale := c.snapshot == nil || time.Since(c.takenAt) > c.StatsTTL
	c.mu.Unlock()
	if stale {
		c.RefreshStats(ctx)
	}
	c.mu.Lock()
	snap := c.snapshot
	c.mu.Unlock()

	type scored struct {
		site  *Site
		price float64
	}
	var cands []scored
	for _, s := range frag.Replicas() {
		st, known := snap[s.Name()]
		if known && !st.alive {
			continue // snapshot says down (may itself be stale)
		}
		var price float64
		if known {
			base := float64(st.cost.Latency + time.Duration(estRows)*st.cost.PerRow)
			if base == 0 {
				base = float64(time.Microsecond)
			}
			price = base * (1 + float64(st.load)) // stale load!
			if st.health > 0 && st.health < 1 {
				price /= st.health // half-open at snapshot time: rank last-ish
			}
		} else {
			// Unknown site (joined after the snapshot): a compile-time
			// optimizer has no statistics for it, so it ranks last.
			price = 1 << 40
		}
		// Deprioritize stale replicas (pending journaled intents) the
		// same way the agoric bidders do, so both optimizers prefer
		// converged copies. Pending counts are live, not snapshotted:
		// freshness is a correctness signal, not a cost statistic.
		if p := frag.PendingAt(s); p > 0 {
			price *= 1 + stalePenalty*float64(p)
		}
		cands = append(cands, scored{site: s, price: price})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].price != cands[j].price {
			return cands[i].price < cands[j].price
		}
		return cands[i].site.Name() < cands[j].site.Name()
	})
	out := make([]*Site, len(cands))
	for i, sc := range cands {
		out[i] = sc.site
	}
	return out
}
