package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment in quick mode and sanity
// checks the table shapes and the qualitative claims the paper makes.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run(Quick())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tb.ID != e.ID || len(tb.Headers) == 0 || len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table %+v", e.ID, tb)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Headers) {
					t.Errorf("%s: row width %d != headers %d", e.ID, len(row), len(tb.Headers))
				}
			}
			var sb strings.Builder
			tb.Print(&sb)
			if !strings.Contains(sb.String(), e.ID) {
				t.Errorf("%s: Print lost the id", e.ID)
			}
		})
	}
}

// TestE1Shape verifies the paper's core claim quantitatively: federated
// answers are never stale; warehouse answers are stale in proportion to
// volatility.
func TestE1Shape(t *testing.T) {
	staleWH, staleFed, extracted, err := runE1(7, 5, 4, 80, 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	if staleFed != 0 {
		t.Errorf("federated staleness = %f, want 0", staleFed)
	}
	if staleWH < 0.2 {
		t.Errorf("warehouse staleness = %f, want substantial under heavy churn", staleWH)
	}
	if extracted == 0 {
		t.Error("warehouse extracted nothing")
	}
	// Zero volatility → warehouse is fine too.
	staleWH, _, _, err = runE1(7, 5, 4, 40, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if staleWH != 0 {
		t.Errorf("warehouse staleness with no churn = %f", staleWH)
	}
}

// TestE3Shape verifies the scaling gap grows with site count.
func TestE3Shape(t *testing.T) {
	a16, c16, err := runE3(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	a256, c256, err := runE3(1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if c256 <= c16 {
		t.Errorf("centralized cost should grow with sites: %v vs %v", c16, c256)
	}
	// The centralized/agoric gap at 256 sites should be large.
	if float64(c256)/float64(a256) < 4 {
		t.Errorf("gap at 256 sites = %.1fx, want ≥ 4x (a=%v c=%v)", float64(c256)/float64(a256), a256, c256)
	}
	_ = a16
}

// TestE5Shape verifies the dominance ordering of placements.
func TestE5Shape(t *testing.T) {
	tb, err := E5Availability(Quick())
	if err != nil {
		t.Fatal(err)
	}
	avail := map[string]string{}
	for _, row := range tb.Rows {
		avail[row[0]] = row[1]
	}
	if avail["fragmented+replicated"] <= avail["central"] {
		t.Errorf("frag+repl (%s) should beat central (%s)", avail["fragmented+replicated"], avail["central"])
	}
}
