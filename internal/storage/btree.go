// Package storage implements the single-site data store each federation
// member runs: heap tables with row ids, B+tree and hash secondary
// indexes, inverted text indexes kept consistent with updates, and table
// statistics for the optimizers.
//
// The paper's architecture places a full-function local engine at every
// site ("text indexing as a local site capability", §3.2); the federated
// layer in internal/federation composes many of these.
package storage

import (
	"cohera/internal/value"
)

// btreeDegree is the maximum number of children of an interior node.
// 32 keeps nodes cache-friendly while exercising real splits in tests.
const btreeDegree = 32

// BTree is an in-memory B+tree mapping Value keys to sets of row ids.
// Duplicate keys are supported (secondary index semantics): each leaf
// entry carries the row ids sharing that key. Keys must be mutually
// comparable (same typed column).
//
// BTree is not safe for concurrent mutation; Table serializes access.
type BTree struct {
	root   *btreeNode
	height int
	size   int // number of distinct keys
}

type btreeNode struct {
	leaf     bool
	keys     []value.Value
	children []*btreeNode // interior only; len = len(keys)+1
	rows     [][]int64    // leaf only; parallel to keys
	next     *btreeNode   // leaf chain for range scans
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &btreeNode{leaf: true}, height: 1}
}

// Len returns the number of distinct keys in the tree.
func (t *BTree) Len() int { return t.size }

// Insert associates rowID with key. Inserting the same (key,row) pair
// twice is a no-op.
func (t *BTree) Insert(key value.Value, rowID int64) {
	mid, right := t.insert(t.root, key, rowID)
	if right != nil {
		newRoot := &btreeNode{
			keys:     []value.Value{mid},
			children: []*btreeNode{t.root, right},
		}
		t.root = newRoot
		t.height++
	}
}

// insert descends into n; on child split it returns the separator key and
// new right sibling to install in the parent.
func (t *BTree) insert(n *btreeNode, key value.Value, rowID int64) (value.Value, *btreeNode) {
	if n.leaf {
		i := n.search(key)
		if i < len(n.keys) && n.keys[i].MustCompare(key) == 0 {
			for _, r := range n.rows[i] {
				if r == rowID {
					return value.Null, nil
				}
			}
			n.rows[i] = append(n.rows[i], rowID)
			return value.Null, nil
		}
		n.keys = append(n.keys, value.Null)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.rows = append(n.rows, nil)
		copy(n.rows[i+1:], n.rows[i:])
		n.rows[i] = []int64{rowID}
		t.size++
		if len(n.keys) < btreeDegree {
			return value.Null, nil
		}
		return t.splitLeaf(n)
	}
	i := n.search(key)
	if i < len(n.keys) && n.keys[i].MustCompare(key) <= 0 {
		i++
	}
	mid, right := t.insert(n.children[i], key, rowID)
	if right == nil {
		return value.Null, nil
	}
	n.keys = append(n.keys, value.Null)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = mid
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.children) <= btreeDegree {
		return value.Null, nil
	}
	return t.splitInterior(n)
}

func (t *BTree) splitLeaf(n *btreeNode) (value.Value, *btreeNode) {
	mid := len(n.keys) / 2
	right := &btreeNode{
		leaf: true,
		keys: append([]value.Value(nil), n.keys[mid:]...),
		rows: append([][]int64(nil), n.rows[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.rows = n.rows[:mid]
	n.next = right
	return right.keys[0], right
}

func (t *BTree) splitInterior(n *btreeNode) (value.Value, *btreeNode) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &btreeNode{
		keys:     append([]value.Value(nil), n.keys[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sep, right
}

// search returns the first index i with keys[i] >= key.
func (n *btreeNode) search(key value.Value) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		m := (lo + hi) / 2
		if n.keys[m].MustCompare(key) < 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// Delete removes the association of rowID with key. It returns whether the
// pair existed. The tree does not rebalance on delete — index workloads in
// the integrator are insert-heavy and lookups stay correct; a full rebuild
// (Table.Reindex) compacts when needed.
func (t *BTree) Delete(key value.Value, rowID int64) bool {
	leaf, i := t.findLeaf(key)
	if leaf == nil {
		return false
	}
	rows := leaf.rows[i]
	for j, r := range rows {
		if r == rowID {
			leaf.rows[i] = append(rows[:j], rows[j+1:]...)
			if len(leaf.rows[i]) == 0 {
				leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
				leaf.rows = append(leaf.rows[:i], leaf.rows[i+1:]...)
				t.size--
			}
			return true
		}
	}
	return false
}

// findLeaf locates the leaf and slot holding key, or (nil,0).
func (t *BTree) findLeaf(key value.Value) (*btreeNode, int) {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && n.keys[i].MustCompare(key) <= 0 {
			i++
		}
		n = n.children[i]
	}
	i := n.search(key)
	if i < len(n.keys) && n.keys[i].MustCompare(key) == 0 {
		return n, i
	}
	return nil, 0
}

// Lookup returns the row ids stored under key.
func (t *BTree) Lookup(key value.Value) []int64 {
	leaf, i := t.findLeaf(key)
	if leaf == nil {
		return nil
	}
	out := make([]int64, len(leaf.rows[i]))
	copy(out, leaf.rows[i])
	return out
}

// Range visits every (key,rows) pair with lo <= key <= hi in key order.
// A NULL bound is open on that side. The visitor returns false to stop.
func (t *BTree) Range(lo, hi value.Value, visit func(key value.Value, rows []int64) bool) {
	n := t.root
	for !n.leaf {
		i := 0
		if !lo.IsNull() {
			i = n.search(lo)
			if i < len(n.keys) && n.keys[i].MustCompare(lo) <= 0 {
				i++
			}
		}
		n = n.children[i]
	}
	start := 0
	if !lo.IsNull() {
		start = n.search(lo)
	}
	for ; n != nil; n = n.next {
		for i := start; i < len(n.keys); i++ {
			if !hi.IsNull() && n.keys[i].MustCompare(hi) > 0 {
				return
			}
			if !visit(n.keys[i], n.rows[i]) {
				return
			}
		}
		start = 0
	}
}

// Keys returns all keys in order — used by tests and statistics.
func (t *BTree) Keys() []value.Value {
	var out []value.Value
	t.Range(value.Null, value.Null, func(k value.Value, _ []int64) bool {
		out = append(out, k)
		return true
	})
	return out
}
