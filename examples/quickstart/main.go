// Quickstart: integrate two suppliers — one CSV feed normalized through a
// transformation pipeline, one live ERP gateway — and query across both
// with fuzzy text search. This is the smallest end-to-end use of the
// public API.
package main

import (
	"context"
	"fmt"
	"log"

	"cohera/internal/core"
	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/transform"
	"cohera/internal/value"
	"cohera/internal/wrapper"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	in := core.New(core.Options{})

	// The integrator's normalized catalog schema.
	catalog := schema.MustTable("catalog", []schema.Column{
		{Name: "sku", Kind: value.KindString, NotNull: true},
		{Name: "name", Kind: value.KindString, FullText: true},
		{Name: "price", Kind: value.KindMoney},
		{Name: "qty", Kind: value.KindInt},
	}, "sku")

	// Two sites, one fragment each.
	if _, err := in.AddSite("acme"); err != nil {
		return err
	}
	if _, err := in.AddSite("bolt"); err != nil {
		return err
	}
	frags, err := in.DefineTable(catalog,
		core.FragmentSpec{ID: "acme", Replicas: []string{"acme"}},
		core.FragmentSpec{ID: "bolt", Replicas: []string{"bolt"}},
	)
	if err != nil {
		return err
	}

	// Supplier 1: a CSV feed quoting francs, normalized on ingest.
	feed := "ref,produit,prix,stock\n" +
		"A1,perceuse sans fil,729.00 FRF,12\n" + // a cordless drill
		"A2,encre de Chine,25.50 FRF,80\n" // India ink
	raw := schema.MustTable("acme_feed", []schema.Column{
		{Name: "ref", Kind: value.KindString},
		{Name: "produit", Kind: value.KindString},
		{Name: "prix", Kind: value.KindMoney},
		{Name: "stock", Kind: value.KindInt},
	})
	csvSrc := wrapper.NewCSVSource("acme-feed", raw,
		wrapper.StaticFetcher(map[string]string{"feed.csv": feed}), "feed.csv", nil)
	p := transform.NewPipeline(raw, catalog)
	sku, err := transform.NewExpr("sku", "'ACME-' + ref")
	if err != nil {
		return err
	}
	p.MustAdd(
		sku,
		transform.Lookup{To: "name", From: "produit", Table: map[string]string{
			"perceuse sans fil": "cordless drill",
			"encre de chine":    "India ink",
		}},
		transform.Currency{To: "price", From: "prix", Into: "USD", Rates: in.Rates()},
		transform.Copy{To: "qty", From: "stock"},
	)
	disc, err := in.Ingest(ctx, "catalog", frags[0], csvSrc, p)
	if err != nil {
		return err
	}
	fmt.Printf("ingested acme feed (%d discrepancies)\n", len(disc))

	// Supplier 2: a live ERP table, queried on demand.
	erpTable := storage.NewTable(catalog.Clone("catalog"))
	for _, row := range []storage.Row{
		{value.NewString("BOLT-1"), value.NewString("corded drill"), value.NewMoney(4500, "USD"), value.NewInt(4)},
		{value.NewString("BOLT-2"), value.NewString("black ballpoint pen"), value.NewMoney(120, "USD"), value.NewInt(900)},
	} {
		if _, err := erpTable.Insert(row); err != nil {
			return err
		}
	}
	if err := in.RegisterSource("bolt", wrapper.NewERPSource("bolt-erp", erpTable), nil); err != nil {
		return err
	}

	// One query spanning both suppliers, with the paper's typo probe.
	res, err := in.Query(ctx, "SELECT sku, name, price FROM catalog WHERE FUZZY(name, 'drlls') ORDER BY sku")
	if err != nil {
		return err
	}
	fmt.Println("\nFUZZY(name, 'drlls') across both suppliers:")
	for _, r := range res.Rows {
		fmt.Printf("  %-8s %-22s %s\n", r[0].Str(), r[1].Str(), r[2])
	}

	// Live data: the owner sells out; the next query sees it instantly.
	id, row, err := erpTable.GetByKey(value.NewString("BOLT-1"))
	if err != nil {
		return err
	}
	row[3] = value.NewInt(0)
	if err := erpTable.Update(id, row); err != nil {
		return err
	}
	res, err = in.Query(ctx, "SELECT sku, qty FROM catalog WHERE sku = 'BOLT-1'")
	if err != nil {
		return err
	}
	fmt.Printf("\nafter the owner sells out (fetch on demand): %s qty=%s\n",
		res.Rows[0][0].Str(), res.Rows[0][1])
	return nil
}
