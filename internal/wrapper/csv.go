package wrapper

import (
	"context"
	"encoding/csv"
	"fmt"
	"strings"

	"cohera/internal/schema"
	"cohera/internal/storage"
	"cohera/internal/value"
)

// CSVSource wraps a delimited-text feed — the simplest arms-length supplier
// relationship: the owner periodically exports a file or serves it over
// HTTP. Field mappings bind header names to schema columns.
type CSVSource struct {
	name     string
	def      *schema.Table
	fetch    Fetcher
	url      string
	mappings []FieldMapping
	comma    rune
	volatile bool
}

// NewCSVSource builds a CSV wrapper. mappings may be nil, in which case
// headers are matched to schema columns by (case-insensitive) name.
func NewCSVSource(name string, def *schema.Table, fetch Fetcher, url string, mappings []FieldMapping) *CSVSource {
	return &CSVSource{
		name: name, def: def, fetch: fetch, url: url,
		mappings: mappings, comma: ',',
	}
}

// SetComma overrides the delimiter (e.g. '\t' or ';' for European feeds).
func (s *CSVSource) SetComma(c rune) { s.comma = c }

// SetVolatile marks the feed as volatile.
func (s *CSVSource) SetVolatile(v bool) { s.volatile = v }

// Name implements Source.
func (s *CSVSource) Name() string { return s.name }

// Schema implements Source.
func (s *CSVSource) Schema() *schema.Table { return s.def }

// Capabilities implements Source. CSV feeds cannot filter remotely.
func (s *CSVSource) Capabilities() Capabilities {
	return Capabilities{Volatile: s.volatile}
}

// Fetch implements Source: it downloads the document, parses rows, maps
// fields and applies the filters locally.
func (s *CSVSource) Fetch(ctx context.Context, filters []Filter) ([]storage.Row, error) {
	body, err := s.fetch.Get(ctx, s.url)
	if err != nil {
		return nil, err
	}
	r := csv.NewReader(strings.NewReader(body))
	r.Comma = s.comma
	r.TrimLeadingSpace = true
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("wrapper: csv %s: %w", s.name, err)
	}
	if len(records) == 0 {
		return nil, nil
	}
	header := records[0]
	colFor := make([]int, len(header)) // header index → schema ordinal (-1 skip)
	for i := range colFor {
		colFor[i] = -1
	}
	if len(s.mappings) == 0 {
		for i, h := range header {
			colFor[i] = s.def.ColumnIndex(strings.TrimSpace(h))
		}
	} else {
		byHeader := make(map[string]string, len(s.mappings))
		for _, m := range s.mappings {
			byHeader[strings.ToLower(m.From)] = m.Column
		}
		for i, h := range header {
			if col, ok := byHeader[strings.ToLower(strings.TrimSpace(h))]; ok {
				ci := s.def.ColumnIndex(col)
				if ci < 0 {
					return nil, fmt.Errorf("wrapper: csv %s maps to unknown column %q", s.name, col)
				}
				colFor[i] = ci
			}
		}
	}
	var rows []storage.Row
	for lineNo, rec := range records[1:] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := make(storage.Row, len(s.def.Columns))
		for i := range row {
			row[i] = value.Null
		}
		for i, cell := range rec {
			if i >= len(colFor) || colFor[i] < 0 {
				continue
			}
			ci := colFor[i]
			v, err := value.Parse(s.def.Columns[ci].Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("wrapper: csv %s line %d: %w", s.name, lineNo+2, err)
			}
			row[ci] = v
		}
		rows = append(rows, row)
	}
	return applyFilters(s.def, rows, filters), nil
}
