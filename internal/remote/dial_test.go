package remote

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cohera/internal/obs"
)

func TestDialTimeoutOption(t *testing.T) {
	if c := Dial("http://x", ""); c.http.Timeout != DefaultTimeout {
		t.Errorf("default timeout = %v, want %v", c.http.Timeout, DefaultTimeout)
	}
	if c := Dial("http://x", "", WithTimeout(3*time.Second)); c.http.Timeout != 3*time.Second {
		t.Errorf("timeout = %v, want 3s", c.http.Timeout)
	}
	// Negative means disabled, not a panic inside net/http.
	if c := Dial("http://x", "", WithTimeout(-1)); c.http.Timeout != 0 {
		t.Errorf("negative timeout = %v, want 0 (disabled)", c.http.Timeout)
	}
}

func TestDialTimeoutEnforced(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	c := Dial(slow.URL, "", WithTimeout(50*time.Millisecond))
	start := time.Now()
	if _, err := c.do(context.Background(), http.MethodGet, "/healthz", nil, false); err == nil {
		t.Fatal("expected timeout error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("call took %v despite 50ms timeout", d)
	}
}

func TestStatusClass(t *testing.T) {
	cases := map[int]string{200: "2xx", 204: "2xx", 404: "4xx", 500: "5xx", 99: "other", 600: "other"}
	for code, want := range cases {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestClientStatusClassCounters(t *testing.T) {
	okBefore := obs.Default().Counter("cohera_remote_client_requests_total",
		"Remote client calls by status class (error = transport failure).",
		obs.Labels{"class": "2xx"}).Value()
	errBefore := obs.Default().Counter("cohera_remote_client_requests_total",
		"Remote client calls by status class (error = transport failure).",
		obs.Labels{"class": "error"}).Value()

	srv := NewServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	if !Dial(ts.URL, "").Healthy(ctx) {
		t.Fatal("server should be healthy")
	}
	// A dead endpoint records a transport error, not a status class.
	if Dial("http://127.0.0.1:1", "", WithTimeout(time.Second)).Healthy(ctx) {
		t.Fatal("dead server reported healthy")
	}

	if got := metClientReqs("2xx").Value(); got <= okBefore {
		t.Errorf("2xx counter did not move: %d -> %d", okBefore, got)
	}
	if got := metClientReqs("error").Value(); got <= errBefore {
		t.Errorf("error counter did not move: %d -> %d", errBefore, got)
	}
}
