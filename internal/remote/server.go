package remote

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cohera/internal/admission"
	"cohera/internal/obs"
	"cohera/internal/plan"
	"cohera/internal/storage"
	"cohera/internal/wrapper"
)

// metServerReqs counts served requests per endpoint and status class.
// Unknown paths collapse to "other" so clients probing random URLs
// cannot grow the label space without bound.
func metServerReqs(path, class string) *obs.Counter {
	switch path {
	case "/healthz", "/tables", "/fetch", "/fetchstream", "/digest", "/debug/replication":
	default:
		path = "other"
	}
	return obs.Default().Counter("cohera_remote_server_requests_total",
		"Remote server requests by endpoint and status class.",
		obs.Labels{"path": path, "class": class})
}

var metServerSeconds = obs.Default().Histogram("cohera_remote_server_seconds",
	"Remote server request handling latency.", nil)

// Server exposes a set of tables (anything implementing wrapper.Source —
// stored tables, wrapped ERPs, even other federations' views) over HTTP:
//
//	GET  /tables             → JSON list of wireSchema
//	POST /fetch              → {table, filters[]} → {rows}
//	POST /fetchstream        → {table, filters[], batch_rows} → NDJSON chunks
//	POST /digest             → {table} → {hash, rows} content digest
//	GET  /debug/replication  → per-table digests for operator comparison
//	GET  /healthz            → 200 ok
//
// An optional bearer token gates every endpoint; cross-enterprise feeds
// are not anonymous.
type Server struct {
	// Token, when non-empty, must arrive as "Authorization: Bearer ..".
	// It must be set before the server starts serving; handlers read it
	// without synchronization.
	Token string
	// StreamBatchRows is the rows-per-chunk /fetchstream uses when the
	// client does not ask for a size; 0 means storage.DefaultBatchRows.
	// Like Token it must be set before serving.
	StreamBatchRows int
	// DisablePushdown makes the server behave like one that predates
	// capability-aware pushdown: /tables advertises no push capabilities
	// and /fetchstream ignores the where/cols/limit request fields and
	// sends no ack. Compatibility-fallback tests flip it; like Token it
	// must be set before serving.
	DisablePushdown bool
	// Admission, when set, gates the data-plane endpoints (/fetch and
	// /fetchstream): requests past the site's capacity are refused with
	// HTTP 429 plus a Retry-After header instead of queueing without
	// bound. The tenant arrives in the X-Cohera-Tenant header; a
	// /fetchstream slot is held for the whole transfer, so a slow
	// reader throttles the site rather than inflating its buffers.
	// Like Token it must be set before serving; nil disables the gate.
	Admission *admission.Controller

	mu      sync.RWMutex
	sources map[string]wrapper.Source
	// tables keeps the raw stored tables published via PublishTable;
	// /digest and /debug/replication read content digests from them
	// (a generic wrapper.Source has no digestable row identity).
	tables map[string]*storage.Table
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		sources: make(map[string]wrapper.Source),
		tables:  make(map[string]*storage.Table),
	}
}

// Publish exposes a source under its schema name, instrumented so
// server-side fetches appear in the shared metrics and traces.
func (s *Server) Publish(src wrapper.Source) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources[strings.ToLower(src.Schema().Name)] = wrapper.Instrument(src)
}

// PublishTable exposes a stored table directly, with equality pushdown on
// its indexed columns.
func (s *Server) PublishTable(t *storage.Table, pushdownEq ...string) {
	s.Publish(wrapper.NewERPSource(t.Def().Name, t, pushdownEq...))
	s.mu.Lock()
	s.tables[strings.ToLower(t.Def().Name)] = t
	s.mu.Unlock()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Adopt the caller's trace (X-Cohera-Trace-Id / X-Cohera-Span-Id) so
	// spans recorded while serving join the federated query's tree.
	if sc, ok := obs.SpanContextFromHeaders(r.Header); ok {
		r = r.WithContext(obs.ContextWith(r.Context(), sc))
	}
	ctx, sp := obs.StartSpan(r.Context(), "remote.serve")
	sp.Set("path", r.URL.Path)
	r = r.WithContext(ctx)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	defer func() {
		metServerSeconds.Observe(time.Since(start))
		metServerReqs(r.URL.Path, statusClass(sw.status)).Inc()
		sp.Set("status", statusClass(sw.status))
		sp.End()
	}()

	if s.Token != "" {
		if r.Header.Get("Authorization") != "Bearer "+s.Token {
			http.Error(sw, `{"error":"unauthorized"}`, http.StatusUnauthorized)
			return
		}
	}
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		fmt.Fprintln(sw, "ok")
	case r.Method == http.MethodGet && r.URL.Path == "/tables":
		s.handleTables(sw)
	case r.Method == http.MethodPost && r.URL.Path == "/fetch":
		release, ok := s.admit(sw, r)
		if !ok {
			return
		}
		defer release()
		s.handleFetch(sw, r)
	case r.Method == http.MethodPost && r.URL.Path == "/fetchstream":
		// The stream handler writes the entire transfer before
		// returning, so deferring the release holds the admission slot
		// for the stream's whole lifetime — backpressure from a slow
		// client reaches the gate, not the buffers.
		release, ok := s.admit(sw, r)
		if !ok {
			return
		}
		defer release()
		s.handleFetchStream(sw, r)
	case r.Method == http.MethodPost && r.URL.Path == "/digest":
		s.handleDigest(sw, r)
	case r.Method == http.MethodGet && r.URL.Path == "/debug/replication":
		s.handleReplication(sw)
	default:
		http.Error(sw, `{"error":"not found"}`, http.StatusNotFound)
	}
}

// admit charges the server's admission gate for one data-plane
// request, tagging it with the client-declared tenant. On a shed it
// writes the 429 refusal — Retry-After in whole seconds (ceiling, so a
// sub-second hint never rounds to "retry immediately"), the shed
// reason in ShedReasonHeader, and the typed detail in the JSON body —
// and reports ok=false. With no gate installed it is a no-op grant.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.Admission == nil {
		return func() {}, true
	}
	ctx := admission.WithTenant(r.Context(), r.Header.Get(TenantHeader))
	release, err := s.Admission.Admit(ctx)
	if err == nil {
		return release, true
	}
	oe, isShed := admission.AsOverload(err)
	if !isShed {
		// The client hung up while queued; it is not listening for a
		// status, but 429 is still the honest close-out.
		oe = &admission.OverloadError{Tenant: admission.TenantOf(ctx), Reason: "canceled", RetryAfter: time.Second}
	}
	secs := int(math.Ceil(oe.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set(ShedReasonHeader, oe.Reason)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	//lint:ignore errdrop the refusal body is best-effort; the status code already carries the decision
	_ = json.NewEncoder(w).Encode(errorResponse{Error: oe.Error()})
	return nil, false
}

// statusWriter remembers the status code for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) handleTables(w http.ResponseWriter) {
	s.mu.RLock()
	names := make([]string, 0, len(s.sources))
	for n := range s.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []wireSchema
	for _, n := range names {
		src := s.sources[n]
		caps := src.Capabilities()
		ws := encodeSchema(src.Schema(), caps.PushdownEq, caps.Volatile)
		// The server fuses anything its source cannot apply, so every
		// published table supports full σ/π/limit pushdown regardless of
		// the underlying connector's own capabilities.
		if !s.DisablePushdown {
			ws.Push = encodePushCaps(plan.FullPushCaps())
		}
		out = append(out, ws)
	}
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	if err := writeJSON(w, out); err != nil {
		http.Error(w, `{"error":"encode failure"}`, http.StatusInternalServerError)
	}
}

func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, `{"error":"bad body"}`, http.StatusBadRequest)
		return
	}
	var req fetchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, `{"error":"bad json"}`, http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	src, ok := s.sources[strings.ToLower(req.Table)]
	s.mu.RUnlock()
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		//lint:ignore errdrop the status line is already committed; nothing useful can be done with an encode failure
		_ = writeJSON(w, errorResponse{Error: fmt.Sprintf("no table %q", req.Table)})
		return
	}
	var filters []wrapper.Filter
	for _, wf := range req.Filters {
		v, err := decodeValue(wf.Value)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			//lint:ignore errdrop the status line is already committed; nothing useful can be done with an encode failure
			_ = writeJSON(w, errorResponse{Error: err.Error()})
			return
		}
		filters = append(filters, wrapper.Filter{Column: wf.Column, Value: v})
	}
	rows, err := src.Fetch(r.Context(), filters)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		//lint:ignore errdrop the status line is already committed; nothing useful can be done with an encode failure
		_ = writeJSON(w, errorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := writeJSON(w, fetchResponse{Rows: encodeRows(rows)}); err != nil {
		http.Error(w, `{"error":"encode failure"}`, http.StatusInternalServerError)
	}
}

// handleDigest serves POST /digest: the order-independent content
// digest of one published stored table, so a remote reconciler can
// compare replicas without shipping rows.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		http.Error(w, `{"error":"bad body"}`, http.StatusBadRequest)
		return
	}
	var req digestRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, `{"error":"bad json"}`, http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	t, ok := s.tables[strings.ToLower(req.Table)]
	s.mu.RUnlock()
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		//lint:ignore errdrop the status line is already committed; nothing useful can be done with an encode failure
		_ = writeJSON(w, errorResponse{Error: fmt.Sprintf("no stored table %q", req.Table)})
		return
	}
	d := t.Digest()
	w.Header().Set("Content-Type", "application/json")
	if err := writeJSON(w, digestResponse{Hash: fmt.Sprintf("%016x", d.Hash), Rows: d.Rows}); err != nil {
		http.Error(w, `{"error":"encode failure"}`, http.StatusInternalServerError)
	}
}

// handleReplication serves GET /debug/replication: every published
// stored table's digest in one page, the operator view for eyeballing
// whether two sites agree (compare hashes across daemons).
func (s *Server) handleReplication(w http.ResponseWriter) {
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	st := replicationStatus{Tables: make([]tableReplication, 0, len(names))}
	for _, n := range names {
		d := s.tables[n].Digest()
		st.Tables = append(st.Tables, tableReplication{
			Name: n, Digest: fmt.Sprintf("%016x", d.Hash), Rows: d.Rows,
		})
	}
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	if err := writeJSON(w, st); err != nil {
		http.Error(w, `{"error":"encode failure"}`, http.StatusInternalServerError)
	}
}
